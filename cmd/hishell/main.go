// Command hishell is an interactive SQL shell over HiEngine, with the
// storage-centric baseline registered as a second engine so the vertical
// multi-engine deployment (Figure 3, left) can be driven by hand:
//
//	CREATE TABLE fast (id INT, v TEXT, PRIMARY KEY(id)) WITH ENGINE=hiengine
//	CREATE TABLE slow (id INT, v TEXT, PRIMARY KEY(id)) WITH ENGINE=innodb
//	INSERT INTO fast VALUES (1, 'hello')
//	SELECT * FROM fast WHERE id = 1
//	BEGIN / COMMIT / ROLLBACK
//
// With -connect host:port the same REPL drives a remote hiserver through
// the pooled wire-protocol client instead of an in-process engine;
// \stats is served via the stats opcode. Engine-maintenance meta commands
// (\checkpoint, \gc, \compact) are in-process only.
//
// Meta commands: \q quit, \stats engine counters, \trace on|off (remote:
// per-statement stage breakdown), \fetchsize [n] (remote: rows-per-page
// hint for streamed SELECTs), \checkpoint, \gc, \compact.
//
// Remote SELECTs outside a transaction stream through the cursor protocol
// (OpScanOpen/OpScanNext), so results of any size print page by page
// instead of tripping the server's one-shot response cap.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"hiengine/internal/adapt"
	"hiengine/internal/baseline/innosim"
	"hiengine/internal/client"
	"hiengine/internal/core"
	"hiengine/internal/delay"
	"hiengine/internal/sqlfront"
	"hiengine/internal/srss"
	"hiengine/internal/wire"
)

// session abstracts the REPL's backend: an in-process sqlfront session or
// a remote wire-protocol session.
type session interface {
	Exec(sql string, args ...core.Value) (*wire.Result, error)
	InTxn() bool
	Stats() (string, error)
}

func main() {
	connect := flag.String("connect", "", "drive a remote hiserver at host:port instead of an in-process engine")
	flag.Parse()

	var (
		sess   session
		local  *localBackend
		remote *client.Session
	)
	if *connect != "" {
		cl, err := client.New(client.Options{Addr: *connect})
		if err != nil {
			fmt.Fprintln(os.Stderr, "hishell:", err)
			os.Exit(1)
		}
		defer cl.Close()
		s, err := cl.Session()
		if err != nil {
			fmt.Fprintln(os.Stderr, "hishell: connect:", err)
			os.Exit(1)
		}
		defer s.Close()
		if err := s.Ping(); err != nil {
			fmt.Fprintln(os.Stderr, "hishell: connect:", err)
			os.Exit(1)
		}
		fmt.Printf("HiEngine shell -- connected to %s. \\q to quit.\n", *connect)
		remote = s
		sess = &remoteBackend{s: s, stmts: make(map[string]*client.Stmt)}
	} else {
		var err error
		local, err = newLocalBackend()
		if err != nil {
			fmt.Fprintln(os.Stderr, "hishell:", err)
			os.Exit(1)
		}
		defer local.close()
		fmt.Println("HiEngine shell -- engines: hiengine (default), innodb. \\q to quit.")
		sess = local
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var lastShown *client.TraceResult
	for {
		if sess.InTxn() {
			fmt.Print("hiengine*> ")
		} else {
			fmt.Print("hiengine> ")
		}
		if !sc.Scan() {
			return
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case line == `\q` || line == "exit" || line == "quit":
			return
		case line == `\stats`:
			text, err := sess.Stats()
			if err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Print(text)
			}
			continue
		case line == `\trace on` || line == `\trace off`:
			if remote == nil {
				fmt.Println("error: \\trace needs a remote session (-connect)")
				continue
			}
			on := line == `\trace on`
			remote.Trace(on)
			if on {
				fmt.Println("tracing on: each statement's terminal response prints its stage breakdown")
			} else {
				fmt.Println("tracing off")
			}
			continue
		case line == `\fetchsize` || strings.HasPrefix(line, `\fetchsize `):
			if remote == nil {
				fmt.Println("error: \\fetchsize needs a remote session (-connect)")
				continue
			}
			arg := strings.TrimSpace(strings.TrimPrefix(line, `\fetchsize`))
			if arg == "" {
				fmt.Printf("fetch size: %d rows per page\n", remote.FetchSize())
				continue
			}
			var n int
			if _, err := fmt.Sscanf(arg, "%d", &n); err != nil || n <= 0 {
				fmt.Println("error: \\fetchsize wants a positive row count")
				continue
			}
			remote.SetFetchSize(n)
			fmt.Printf("fetch size: %d rows per page\n", n)
			continue
		case line == `\checkpoint`:
			if local == nil {
				fmt.Println("error: \\checkpoint is in-process only")
				continue
			}
			csn, err := local.engine.Checkpoint()
			if err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Printf("checkpoint at CSN %d\n", csn)
			}
			continue
		case line == `\gc`:
			if local == nil {
				fmt.Println("error: \\gc is in-process only")
				continue
			}
			fmt.Printf("reclaimed %d versions\n", local.engine.RunGC())
			continue
		case line == `\compact`:
			if local == nil {
				fmt.Println("error: \\compact is in-process only")
				continue
			}
			stats, err := local.engine.CompactFull()
			if err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Printf("rewrote %d records (%d B), dropped %d segments, reclaimed %d B\n",
					stats.RecordsRewritten, stats.BytesRewritten, stats.SegmentsDropped, stats.BytesReclaimed)
			}
			continue
		}
		// Remote SELECTs outside a transaction stream through the cursor
		// protocol: results of any size print page by page. Inside a
		// transaction the server refuses cursors (the pinned snapshot
		// would not see the transaction's own writes), so fall through to
		// the one-shot path.
		if remote != nil && !remote.InTxn() && isSelectText(line) {
			rows, err := remote.Query(line)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			n := 0
			for rows.Next() {
				row := rows.Row()
				parts := make([]string, len(row))
				for i, v := range row {
					parts[i] = v.String()
				}
				fmt.Println(strings.Join(parts, " | "))
				n++
			}
			if err := rows.Close(); err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Printf("(%d rows)\n", n)
			continue
		}
		res, err := sess.Exec(line)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		for _, row := range res.Rows {
			parts := make([]string, len(row))
			for i, v := range row {
				parts[i] = v.String()
			}
			fmt.Println(strings.Join(parts, " | "))
		}
		if len(res.Rows) > 0 {
			fmt.Printf("(%d rows)\n", len(res.Rows))
		} else if res.Affected > 0 {
			fmt.Printf("OK, %d affected\n", res.Affected)
		} else {
			fmt.Println("OK")
		}
		// A traced unit completes on its terminal response (an autocommit
		// statement, or COMMIT/ROLLBACK closing a transaction); print each
		// completed breakdown once.
		if remote != nil {
			if lt := remote.LastTrace(); lt != nil && lt != lastShown {
				lastShown = lt
				printTrace(lt)
			}
		}
	}
}

// isSelectText reports whether the statement text is a SELECT (the only
// streamable statement class).
func isSelectText(sql string) bool {
	s := strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(sql), ";"))
	return len(s) >= 6 && strings.EqualFold(s[:6], "SELECT")
}

// printTrace renders one completed traced unit as a stage table.
func printTrace(lt *client.TraceResult) {
	info := lt.Info
	fmt.Printf("trace %d: server %v", info.TraceID, time.Duration(info.TotalNS))
	if info.HasShard {
		fmt.Printf(", shard %d", info.Shard)
		if info.Hop > 0 {
			fmt.Printf(" hop %d", info.Hop)
		}
	}
	if lt.ClientNS > 0 {
		fmt.Printf(", client %v, network+queue %v", time.Duration(lt.ClientNS), time.Duration(lt.NetworkNS()))
	}
	if info.Batch > 0 {
		fmt.Printf(", commit batch %d", info.Batch)
	}
	switch {
	case info.PlanHit && info.PlanMiss:
		fmt.Print(", plan cache mixed")
	case info.PlanHit:
		fmt.Print(", plan cache hit")
	case info.PlanMiss:
		fmt.Print(", plan cache miss")
	}
	fmt.Println()
	for _, st := range info.Stages {
		fmt.Printf("  %-14s @%-10v %v\n", st.Stage.String(), time.Duration(st.BeginNS), time.Duration(st.DurNS))
	}
}

// remoteBackend drives a remote hiserver through prepared statements: the
// first execution of a SQL text prepares it (one parse, server-side), and
// re-running the same text -- the common REPL pattern -- ships only the
// statement id. BEGIN/COMMIT/ROLLBACK go through the session's text
// routing so transaction state tracking stays with the client session.
type remoteBackend struct {
	s     *client.Session
	stmts map[string]*client.Stmt
}

// remoteStmtCacheSize bounds the shell's prepared handles well below the
// server's per-connection statement-table bound.
const remoteStmtCacheSize = 64

func (r *remoteBackend) Exec(sql string, args ...core.Value) (*wire.Result, error) {
	switch strings.ToUpper(strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(sql), ";"))) {
	case "BEGIN", "COMMIT", "ROLLBACK":
		return r.s.Exec(sql, args...)
	}
	st, ok := r.stmts[sql]
	if !ok {
		var err error
		st, err = r.s.Prepare(sql)
		if err != nil {
			return nil, err
		}
		if len(r.stmts) >= remoteStmtCacheSize {
			for k, old := range r.stmts { // evict an arbitrary entry
				old.Close()
				delete(r.stmts, k)
				break
			}
		}
		r.stmts[sql] = st
	}
	return st.Exec(args...)
}

func (r *remoteBackend) InTxn() bool { return r.s.InTxn() }

func (r *remoteBackend) Stats() (string, error) { return r.s.Stats() }

// localBackend is the in-process deployment: engine + baseline behind one
// SQL frontend, as before the network layer existed.
type localBackend struct {
	engine *core.Engine
	inno   *innosim.DB
	sess   *sqlfront.Session
}

func newLocalBackend() (*localBackend, error) {
	model := delay.CloudProfile()
	engine, err := core.Open(core.Config{
		Service: srss.New(srss.Config{Model: model}),
		Workers: 8,
	})
	if err != nil {
		return nil, err
	}
	inno, err := innosim.New(innosim.Config{Service: srss.New(srss.Config{Model: model})})
	if err != nil {
		engine.Close()
		return nil, err
	}
	front := sqlfront.NewFrontend("hiengine", adapt.New(engine))
	front.Register("innodb", inno)
	return &localBackend{engine: engine, inno: inno, sess: front.NewSession(0)}, nil
}

func (l *localBackend) close() {
	l.inno.Close()
	l.engine.Close()
}

func (l *localBackend) InTxn() bool { return l.sess.InTxn() }

func (l *localBackend) Exec(sql string, args ...core.Value) (*wire.Result, error) {
	res, err := l.sess.Exec(sql, args...)
	if err != nil {
		return nil, err
	}
	return &wire.Result{Rows: res.Rows, Columns: res.Columns, Affected: res.Affected}, nil
}

func (l *localBackend) Stats() (string, error) {
	s := l.engine.Stats()
	head := fmt.Sprintf("commits=%d aborts=%d conflicts=%d reclaimed=%d checkpoints=%d compactions=%d log=%dB\n",
		s.Commits.Load(), s.Aborts.Load(), s.Conflicts.Load(),
		s.ReclaimedVersions.Load(), s.Checkpoints.Load(), s.Compactions.Load(),
		l.engine.Log().TotalBytes())
	return head + l.engine.Obs().Snapshot().String(), nil
}
