// Command hishell is an interactive SQL shell over HiEngine, with the
// storage-centric baseline registered as a second engine so the vertical
// multi-engine deployment (Figure 3, left) can be driven by hand:
//
//	CREATE TABLE fast (id INT, v TEXT, PRIMARY KEY(id)) WITH ENGINE=hiengine
//	CREATE TABLE slow (id INT, v TEXT, PRIMARY KEY(id)) WITH ENGINE=innodb
//	INSERT INTO fast VALUES (1, 'hello')
//	SELECT * FROM fast WHERE id = 1
//	BEGIN / COMMIT / ROLLBACK
//
// Meta commands: \q quit, \stats engine counters, \checkpoint, \gc, \compact.
package main

import (
	"bufio"
	"fmt"
	"os"
	"strings"

	"hiengine/internal/adapt"
	"hiengine/internal/baseline/innosim"
	"hiengine/internal/core"
	"hiengine/internal/delay"
	"hiengine/internal/sqlfront"
	"hiengine/internal/srss"
)

func main() {
	model := delay.CloudProfile()
	engine, err := core.Open(core.Config{
		Service: srss.New(srss.Config{Model: model}),
		Workers: 8,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "hishell:", err)
		os.Exit(1)
	}
	defer engine.Close()

	inno, err := innosim.New(innosim.Config{Service: srss.New(srss.Config{Model: model})})
	if err != nil {
		fmt.Fprintln(os.Stderr, "hishell:", err)
		os.Exit(1)
	}
	defer inno.Close()

	front := sqlfront.NewFrontend("hiengine", adapt.New(engine))
	front.Register("innodb", inno)
	sess := front.NewSession(0)

	fmt.Println("HiEngine shell -- engines: hiengine (default), innodb. \\q to quit.")
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		if sess.InTxn() {
			fmt.Print("hiengine*> ")
		} else {
			fmt.Print("hiengine> ")
		}
		if !sc.Scan() {
			return
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case line == `\q` || line == "exit" || line == "quit":
			return
		case line == `\stats`:
			s := engine.Stats()
			fmt.Printf("commits=%d aborts=%d conflicts=%d reclaimed=%d checkpoints=%d compactions=%d log=%dB\n",
				s.Commits.Load(), s.Aborts.Load(), s.Conflicts.Load(),
				s.ReclaimedVersions.Load(), s.Checkpoints.Load(), s.Compactions.Load(),
				engine.Log().TotalBytes())
			fmt.Print(engine.Obs().Snapshot())
			continue
		case line == `\checkpoint`:
			csn, err := engine.Checkpoint()
			if err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Printf("checkpoint at CSN %d\n", csn)
			}
			continue
		case line == `\gc`:
			fmt.Printf("reclaimed %d versions\n", engine.RunGC())
			continue
		case line == `\compact`:
			stats, err := engine.CompactFull()
			if err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Printf("rewrote %d records (%d B), dropped %d segments, reclaimed %d B\n",
					stats.RecordsRewritten, stats.BytesRewritten, stats.SegmentsDropped, stats.BytesReclaimed)
			}
			continue
		}
		res, err := sess.Exec(line)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		for _, row := range res.Rows {
			parts := make([]string, len(row))
			for i, v := range row {
				parts[i] = v.String()
			}
			fmt.Println(strings.Join(parts, " | "))
		}
		if len(res.Rows) > 0 {
			fmt.Printf("(%d rows)\n", len(res.Rows))
		} else if res.Affected > 0 {
			fmt.Printf("OK, %d affected\n", res.Affected)
		} else {
			fmt.Println("OK")
		}
	}
}
