// Command hirecover demonstrates HiEngine's dataless checkpoints and
// parallel recovery (Section 4.3) end to end: it loads a TPC-C dataset,
// runs traffic to generate a multi-stream redo log, optionally checkpoints,
// "crashes", and then recovers with a sweep of replay thread counts,
// printing the RTO breakdown for each.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"hiengine/internal/adapt"
	"hiengine/internal/core"
	"hiengine/internal/srss"
	"hiengine/internal/workload/tpcc"
)

func main() {
	var (
		warehouses = flag.Int("warehouses", 4, "TPC-C warehouses")
		threads    = flag.Int("threads", 4, "workload threads")
		runFor     = flag.Duration("run", 2*time.Second, "traffic duration before the crash")
		checkpoint = flag.Bool("checkpoint", false, "take a dataless checkpoint before the crash")
		maxReplay  = flag.Int("max-replay", 8, "maximum replay thread count in the sweep")
	)
	flag.Parse()

	svc := srss.New(srss.Config{})
	engine, err := core.Open(core.Config{Service: svc, Workers: *threads + 2, SegmentSize: 4 << 20})
	if err != nil {
		fail(err)
	}
	db := adapt.New(engine)
	sc := tpcc.BenchScale()

	fmt.Printf("loading %d warehouses...\n", *warehouses)
	if err := tpcc.Load(db, *warehouses, sc, *threads); err != nil {
		fail(err)
	}
	fmt.Printf("running traffic for %v...\n", *runFor)
	d := tpcc.NewDriver(tpcc.Config{
		DB: db, Warehouses: *warehouses, Threads: *threads, Scale: sc,
		Duration: *runFor, Partitioned: true, PipelineDepth: 8,
	})
	res, err := d.Run()
	if err != nil {
		fail(err)
	}
	fmt.Printf("  %v\n", res)
	if *checkpoint {
		csn, err := engine.Checkpoint()
		if err != nil {
			fail(err)
		}
		fmt.Printf("dataless checkpoint at CSN %d\n", csn)
	}
	logMB := float64(engine.Log().TotalBytes()) / (1 << 20)
	segments := len(engine.Log().Segments())
	manifest := engine.ManifestID()
	engine.Close()
	fmt.Printf("CRASH. (%.1f MB of log across %d segments)\n\n", logMB, segments)

	fmt.Printf("%-14s  %-14s  %-14s  %-10s\n", "replay threads", "PIA replay", "index rebuild", "speedup")
	var serial time.Duration
	for rt := 1; rt <= *maxReplay; rt *= 2 {
		e2, stats, err := core.Recover(core.Config{Service: svc, Workers: 4, SegmentSize: 4 << 20},
			manifest, core.RecoverOptions{ReplayThreads: rt})
		if err != nil {
			fail(err)
		}
		if rt == 1 {
			serial = stats.ReplayDuration
		}
		fmt.Printf("%-14d  %-14v  %-14v  %.2fx\n",
			rt,
			stats.ReplayDuration.Round(time.Microsecond),
			stats.IndexDuration.Round(time.Microsecond),
			float64(serial)/float64(stats.ReplayDuration))
		if rt*2 > *maxReplay {
			// Validate the final recovered instance with the TPC-C
			// consistency checks before exiting.
			d2 := tpcc.NewDriver(tpcc.Config{DB: adapt.New(e2), Warehouses: *warehouses, Scale: sc})
			if err := d2.Verify(); err != nil {
				fail(fmt.Errorf("recovered state inconsistent: %w", err))
			}
			fmt.Println("\nrecovered state passes TPC-C consistency checks")
		}
		e2.Close()
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "hirecover:", err)
	os.Exit(1)
}
