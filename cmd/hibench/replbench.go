// Replica read fan-out mode: one primary plus N log-shipping read
// replicas, all in-process over loopback TCP, measuring read throughput
// as routed clients fan SELECTs out across 0..N replicas.
//
//	hibench -replicas 2 -clients 8 -duration 3s
//
// Writes route to the primary; reads carry the read-your-writes token, so
// every client observes its own writes no matter which replica answers.
// The scaling series is written to BENCH_replica.json so the perf
// trajectory of the replication path is recorded per run.
package main

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"hiengine/internal/adapt"
	"hiengine/internal/client"
	"hiengine/internal/core"
	"hiengine/internal/delay"
	"hiengine/internal/obs"
	"hiengine/internal/replica"
	"hiengine/internal/server"
	"hiengine/internal/sqlfront"
	"hiengine/internal/srss"
)

const replBenchRows = 2000

// replReport is the BENCH_replica.json document.
type replReport struct {
	SchemaVersion int               `json:"schema_version"`
	Bench         string            `json:"bench"`
	Clients       int               `json:"clients"`
	DurationS     float64           `json:"duration_s"`
	Rows          int               `json:"rows"`
	Series        []replSeriesPoint `json:"series"`
	Timestamp     string            `json:"timestamp"`
}

type replSeriesPoint struct {
	Replicas int     `json:"replicas"`
	Reads    int64   `json:"reads"`
	ReadsPS  float64 `json:"reads_per_s"`
}

// replicaStack is one in-process replica: follower + wire server.
type replicaStack struct {
	follower *replica.Follower
	rep      *core.Replica
	srv      *server.Server
	addr     string
}

func startReplicaStack(primaryAddr string, workers int) (*replicaStack, error) {
	reg := obs.NewRegistry("replbench-replica")
	f, rep, err := replica.Bootstrap(primaryAddr, core.Config{
		Service: srss.New(srss.Config{Model: delay.Zero()}),
		Workers: workers,
		Obs:     reg,
	}, core.RecoverOptions{}, reg)
	if err != nil {
		return nil, err
	}
	engine := rep.Engine()
	front := sqlfront.NewFrontend("hiengine", adapt.New(engine))
	for _, name := range engine.Tables() {
		t, terr := engine.Table(name)
		if terr != nil {
			continue
		}
		if err := front.Adopt("hiengine", t.Schema); err != nil {
			rep.Close()
			return nil, err
		}
	}
	srv, err := server.New(server.Config{
		Frontend:    front,
		WorkerSlots: engine.Workers(),
		Replica: &server.ReplicaConfig{
			PrimaryAddr: primaryAddr,
			AppliedCSN:  f.AppliedCSN,
			WaitCSN:     f.WaitCSN,
		},
		Epoch:        engine.Epoch,
		ObserveEpoch: engine.ObserveEpoch,
	})
	if err != nil {
		rep.Close()
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		rep.Close()
		return nil, err
	}
	go srv.Serve(ln)
	f.SetInterval(2 * time.Millisecond)
	f.Start()
	return &replicaStack{follower: f, rep: rep, srv: srv, addr: ln.Addr().String()}, nil
}

func (rs *replicaStack) close() {
	rs.srv.Close()
	rs.follower.Stop()
	rs.rep.Close()
}

// replBench runs the fan-out experiment and writes BENCH_replica.json.
func replBench(nReplicas, nClients, workers int, d time.Duration) error {
	// --- primary ---------------------------------------------------------
	engine, err := core.Open(core.Config{
		Service: srss.New(srss.Config{Model: delay.Zero()}),
		Workers: workers,
	})
	if err != nil {
		return err
	}
	defer engine.Close()
	front := sqlfront.NewFrontend("hiengine", adapt.New(engine))
	srv, err := server.New(server.Config{
		Frontend:    front,
		WorkerSlots: engine.Workers(),
		ReplSource:  replica.NewSource(engine),
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go srv.Serve(ln)
	defer srv.Close()
	primaryAddr := ln.Addr().String()

	seed, err := client.New(client.Options{Addr: primaryAddr})
	if err != nil {
		return err
	}
	defer seed.Close()
	if _, err := seed.Exec("CREATE TABLE replbench (id INT, c TEXT, PRIMARY KEY(id))"); err != nil {
		return err
	}
	for i := 0; i < replBenchRows; i++ {
		if _, err := seed.Exec("INSERT INTO replbench VALUES (?, ?)",
			core.I(int64(i)), core.S("replica-fanout-row")); err != nil {
			return fmt.Errorf("preload row %d: %w", i, err)
		}
	}
	loadCSN := seed.LastCSN()

	// --- replicas --------------------------------------------------------
	var stacks []*replicaStack
	defer func() {
		for _, rs := range stacks {
			rs.close()
		}
	}()
	var addrs []string
	for i := 0; i < nReplicas; i++ {
		rs, err := startReplicaStack(primaryAddr, workers)
		if err != nil {
			return fmt.Errorf("replica %d: %w", i, err)
		}
		stacks = append(stacks, rs)
		addrs = append(addrs, rs.addr)
		if !rs.follower.WaitCSN(loadCSN, 30*time.Second) {
			return fmt.Errorf("replica %d never caught up to CSN %d (applied %d)",
				i, loadCSN, rs.follower.AppliedCSN())
		}
	}

	// --- measure 0..N replica fan-out ------------------------------------
	rep := replReport{
		SchemaVersion: benchSchemaVersion,
		Bench:         "replica_read_fanout",
		Clients:       nClients,
		DurationS:     d.Seconds(),
		Rows:          replBenchRows,
		Timestamp:     time.Now().UTC().Format(time.RFC3339),
	}
	for k := 0; k <= nReplicas; k++ {
		cl, err := client.New(client.Options{
			Addr:         primaryAddr,
			PoolSize:     nClients,
			ReplicaAddrs: addrs[:k],
		})
		if err != nil {
			return err
		}
		reads, err := replDrive(cl, nClients, d)
		cl.Close()
		if err != nil {
			return err
		}
		pt := replSeriesPoint{Replicas: k, Reads: reads, ReadsPS: float64(reads) / d.Seconds()}
		rep.Series = append(rep.Series, pt)
		fmt.Printf("replbench replicas=%-2d clients=%-3d dur=%-5v reads=%-8d thru=%8.0f reads/s\n",
			k, nClients, d, pt.Reads, pt.ReadsPS)
	}

	return writeBenchReport("BENCH_replica.json", &rep)
}

// replDrive runs nClients goroutines of point SELECTs through the routed
// client for d, returning the number of completed reads.
func replDrive(cl *client.Client, nClients int, d time.Duration) (int64, error) {
	var (
		reads int64
		stop  atomic.Bool
		wg    sync.WaitGroup
		errs  = make(chan error, nClients)
	)
	for i := 0; i < nClients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := int64(i); !stop.Load(); j++ {
				key := j % replBenchRows
				res, err := cl.Exec("SELECT c FROM replbench WHERE id = ?", core.I(key))
				if err != nil {
					errs <- fmt.Errorf("client %d read: %w", i, err)
					return
				}
				if len(res.Rows) != 1 {
					errs <- fmt.Errorf("client %d read key %d: %d rows", i, key, len(res.Rows))
					return
				}
				atomic.AddInt64(&reads, 1)
			}
		}(i)
	}
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	select {
	case err := <-errs:
		return 0, err
	default:
	}
	return reads, nil
}
