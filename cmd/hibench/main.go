// Command hibench regenerates the tables and figures of the HiEngine paper's
// evaluation (Section 6). Each experiment builds the engines it compares in
// a simulated cloud deployment, runs the paper's workload, and prints the
// measured series next to the paper's expected shape.
//
// Usage:
//
//	hibench -exp all              # every experiment, full scale
//	hibench -exp fig5a            # one experiment
//	hibench -exp fig6 -quick      # reduced scale (CI-sized)
//	hibench -list                 # list experiment IDs
//
// Networked mode (wire-protocol throughput, see netbench.go):
//
//	hibench -serve :7609                    # run a server and block
//	hibench -connect host:port -clients 8   # drive a remote server
//	hibench -netlocal -clients 8            # loopback vs in-process
//	hibench -replicas 2 -clients 8          # read fan-out across replicas
//	hibench -failover -clients 4            # failover cost (promote + write gap)
//	hibench -scanrows 50000 -batch 128      # streamed scans + batch writes (BENCH_scan.json)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"hiengine/internal/bench"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id (see -list) or 'all'")
		quick    = flag.Bool("quick", false, "reduced dataset sizes and durations")
		threads  = flag.Int("threads", 0, "override worker thread count (0 = per-experiment default)")
		duration = flag.Duration("duration", 0, "override per-measurement duration (0 = default)")
		stats    = flag.Bool("stats", false, "append the HiEngine obs snapshot (latency percentiles, batch sizes, GC) to each report")
		list     = flag.Bool("list", false, "list experiments and exit")
		verbose  = flag.Bool("v", false, "print progress lines")

		serve    = flag.String("serve", "", "networked mode: listen on this address and serve")
		connect  = flag.String("connect", "", "networked mode: drive the server at host:port")
		netlocal = flag.Bool("netlocal", false, "networked mode: loopback server vs in-process comparison")
		clients  = flag.Int("clients", 8, "networked mode: concurrent client sessions")
		prepared = flag.Bool("prepared", false, "networked mode: use prepared statements (OpPrepare/OpExecStmt) instead of per-call SQL text")
		trace    = flag.Bool("trace", false, "networked mode: trace every transaction and append a per-stage latency table to the report; sharded mode: finish with one traced cross-shard 2PC transaction and its per-hop table")
		replicas = flag.Int("replicas", 0, "networked mode: spin N read replicas and measure SELECT fan-out scaling (writes BENCH_replica.json)")
		failover = flag.Bool("failover", false, "networked mode: kill the primary under load, promote a replica, and measure time-to-promote and client write gaps (writes BENCH_failover.json)")
		shards   = flag.Int("shards", 0, "sharded mode: spin N shard nodes and measure routed + 2PC scaling vs a 1-shard baseline (writes BENCH_shard.json)")
		scanRows = flag.Int("scanrows", 0, "scan mode: load N rows (single vs batched) and stream them back through the cursor protocol (writes BENCH_scan.json)")
		batchSz  = flag.Int("batch", 0, "scan mode: statements per OpExecBatch frame (default 128)")
		crossPct = flag.Int("cross", 10, "sharded mode: percent of transactions that are cross-shard 2PC transfers")
		outDir   = flag.String("out", "", "directory for BENCH_*.json documents (default: current directory)")
	)
	flag.Parse()
	benchOutDir = *outDir

	if *serve != "" || *connect != "" || *netlocal || *replicas > 0 || *failover || *shards > 0 || *scanRows > 0 || *batchSz > 0 {
		workers := *threads
		if workers <= 0 {
			workers = 8
		}
		d := *duration
		if d <= 0 {
			d = 3 * time.Second
		}
		var err error
		switch {
		case *scanRows > 0 || *batchSz > 0:
			rows, batch := *scanRows, *batchSz
			if rows <= 0 {
				rows = 50000
			}
			if batch <= 0 {
				batch = 128
			}
			err = scanBench(rows, batch, workers)
		case *shards > 0:
			err = shardBench(*shards, *clients, workers, *crossPct, d, *trace)
		case *failover:
			err = failoverBench(*clients, workers, d)
		case *replicas > 0:
			err = replBench(*replicas, *clients, workers, d)
		case *serve != "":
			err = netServe(*serve, workers)
		case *connect != "":
			err = netConnect(*connect, *clients, d, *prepared, *trace)
		default:
			err = netLocal(*clients, workers, d, *prepared, *trace)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "hibench:", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, r := range bench.All() {
			fmt.Printf("%-8s %s\n", r.ID, r.Title)
		}
		return
	}

	opts := bench.Options{Quick: *quick, Threads: *threads, Duration: *duration, Stats: *stats}
	if *verbose {
		opts.Progress = func(s string) { fmt.Fprintln(os.Stderr, "  ..", s) }
	}

	var runners []bench.Runner
	if *exp == "all" {
		runners = bench.All()
	} else {
		r, ok := bench.Find(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "hibench: unknown experiment %q (use -list)\n", *exp)
			os.Exit(2)
		}
		runners = []bench.Runner{r}
	}

	for _, r := range runners {
		start := time.Now()
		rep, err := r.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hibench: %s failed: %v\n", r.ID, err)
			os.Exit(1)
		}
		fmt.Println(rep)
		fmt.Printf("(%s completed in %v)\n\n", r.ID, time.Since(start).Round(time.Millisecond))
	}

	// Default mode always ends with the machine-readable single-node
	// baseline: BENCH_core.json (txn/s plus per-stage commit latency).
	workers := *threads
	if workers <= 0 {
		workers = 8
	}
	d := *duration
	if d <= 0 {
		d = 2 * time.Second
		if *quick {
			d = 500 * time.Millisecond
		}
	}
	if err := coreBench(*clients, workers, d); err != nil {
		fmt.Fprintf(os.Stderr, "hibench: core report: %v\n", err)
		os.Exit(1)
	}
}
