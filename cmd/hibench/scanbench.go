// Streaming-scan and batch-write report (BENCH_scan.json): loads a table
// two ways -- N single-row INSERT round trips vs OpExecBatch frames of
// -batch statements -- then streams the whole table back through the cursor
// protocol (OpScanOpen/OpScanNext). The document records both load rates,
// the batch speedup, and the streamed scan rate, so CI has a trend line for
// the wire paths the one-shot protocol could not serve at all (any result
// over wire.MaxPayload used to die with bad_request).
package main

import (
	"fmt"
	"net"
	"time"

	"hiengine/internal/client"
	"hiengine/internal/core"
	"hiengine/internal/server"
	"hiengine/internal/wire"
)

// scanReport is the BENCH_scan.json document.
type scanReport struct {
	SchemaVersion int     `json:"schema_version"`
	Bench         string  `json:"bench"`
	Workers       int     `json:"workers"`
	ScanRows      int     `json:"scan_rows"`
	BatchSize     int     `json:"batch_size"`
	FetchSize     int     `json:"fetch_size"`
	SingleRowsPS  float64 `json:"single_insert_rows_per_s"`
	BatchRowsPS   float64 `json:"batch_insert_rows_per_s"`
	BatchSpeedup  float64 `json:"batch_speedup"`
	ScanRowsPS    float64 `json:"scan_rows_per_s"`
	ScanS         float64 `json:"scan_s"`
	Timestamp     string  `json:"timestamp"`
}

// scanBench loads scanRows rows (half single-statement, half batched),
// streams them back, and writes BENCH_scan.json.
func scanBench(scanRows, batchSize, workers int) error {
	if scanRows < 2 {
		return fmt.Errorf("scanbench: -scanrows %d too small", scanRows)
	}
	front, engine, err := netFrontend(workers)
	if err != nil {
		return err
	}
	defer engine.Close()
	srv, err := server.New(server.Config{
		Frontend:    front,
		WorkerSlots: workers,
		Obs:         engine.Obs(),
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go srv.Serve(ln)

	cl, err := client.New(client.Options{Addr: ln.Addr().String(), PoolSize: 2})
	if err != nil {
		return err
	}
	defer cl.Close()
	if _, err := cl.Exec(netbenchSchema); err != nil {
		return err
	}
	s, err := cl.Session()
	if err != nil {
		return err
	}
	defer s.Close()

	// Load, phase 1: one INSERT per round trip.
	half := scanRows / 2
	start := time.Now()
	for i := 0; i < half; i++ {
		if _, err := s.Exec("INSERT INTO netbench VALUES (?, ?)", core.I(int64(i)), core.S("v")); err != nil {
			return fmt.Errorf("scanbench: single insert %d: %w", i, err)
		}
	}
	singleD := time.Since(start)

	// Load, phase 2: the same statement shape, batchSize per frame.
	start = time.Now()
	for i := half; i < scanRows; i += batchSize {
		n := batchSize
		if i+n > scanRows {
			n = scanRows - i
		}
		stmts := make([]wire.BatchStmt, n)
		for j := range stmts {
			stmts[j] = wire.BatchStmt{
				SQL:  "INSERT INTO netbench VALUES (?, ?)",
				Args: []core.Value{core.I(int64(i + j)), core.S("v")},
			}
		}
		if _, err := s.ExecBatch(stmts); err != nil {
			return fmt.Errorf("scanbench: batch at %d: %w", i, err)
		}
	}
	batchD := time.Since(start)

	// Stream everything back through the cursor protocol.
	start = time.Now()
	rows, err := cl.Query("SELECT * FROM netbench")
	if err != nil {
		return fmt.Errorf("scanbench: open scan: %w", err)
	}
	n := 0
	for rows.Next() {
		n++
	}
	if err := rows.Close(); err != nil {
		return fmt.Errorf("scanbench: scan: %w", err)
	}
	scanD := time.Since(start)
	if n != scanRows {
		return fmt.Errorf("scanbench: streamed %d rows, want %d", n, scanRows)
	}

	singlePS := float64(half) / singleD.Seconds()
	batchPS := float64(scanRows-half) / batchD.Seconds()
	rep := scanReport{
		SchemaVersion: benchSchemaVersion,
		Bench:         "scan_batch",
		Workers:       workers,
		ScanRows:      scanRows,
		BatchSize:     batchSize,
		FetchSize:     s.FetchSize(),
		SingleRowsPS:  singlePS,
		BatchRowsPS:   batchPS,
		BatchSpeedup:  batchPS / singlePS,
		ScanRowsPS:    float64(n) / scanD.Seconds(),
		ScanS:         scanD.Seconds(),
		Timestamp:     time.Now().UTC().Format(time.RFC3339),
	}
	fmt.Printf("scanbench rows=%d batch=%d  single=%8.0f rows/s  batched=%8.0f rows/s (%.1fx)  scan=%8.0f rows/s\n",
		scanRows, batchSize, singlePS, batchPS, rep.BatchSpeedup, rep.ScanRowsPS)
	return writeBenchReport("BENCH_scan.json", &rep)
}
