// Core-engine baseline report: the default (experiment) mode finishes by
// running a short fixed workload over the loopback wire server with every
// transaction traced, and writes BENCH_core.json -- overall txn/s plus
// p50/p99 per server-side commit stage -- so CI has one machine-readable
// trend document for the single-node engine next to the human-readable
// experiment tables.
package main

import (
	"net"
	"time"

	"hiengine/internal/client"
	"hiengine/internal/core"
	"hiengine/internal/obs"
	"hiengine/internal/server"
)

// coreReport is the BENCH_core.json document.
type coreReport struct {
	SchemaVersion int         `json:"schema_version"`
	Bench         string      `json:"bench"`
	Clients       int         `json:"clients"`
	Workers       int         `json:"workers"`
	DurationS     float64     `json:"duration_s"`
	Txns          int64       `json:"txns"`
	TxnsPS        float64     `json:"txns_per_s"`
	P50MS         float64     `json:"p50_ms"`
	P99MS         float64     `json:"p99_ms"`
	Stages        []coreStage `json:"stages"`
	Timestamp     string      `json:"timestamp"`
}

// coreStage is one server-side commit stage's latency profile.
type coreStage struct {
	Stage string  `json:"stage"`
	P50MS float64 `json:"p50_ms"`
	P99MS float64 `json:"p99_ms"`
	MaxMS float64 `json:"max_ms"`
}

func ms(ns int64) float64 { return float64(ns) / 1e6 }

// coreBench runs the traced loopback workload and writes BENCH_core.json.
func coreBench(nClients, workers int, d time.Duration) error {
	front, engine, err := netFrontend(workers)
	if err != nil {
		return err
	}
	defer engine.Close()
	srv, err := server.New(server.Config{
		Frontend:    front,
		WorkerSlots: workers,
		Obs:         engine.Obs(),
		Tracer:      obs.NewTracer(obs.TracerConfig{Registry: engine.Obs()}),
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go srv.Serve(ln)

	cl, err := client.New(client.Options{Addr: ln.Addr().String(), PoolSize: nClients})
	if err != nil {
		return err
	}
	defer cl.Close()
	if _, err := cl.Exec(netbenchSchema); err != nil {
		return err
	}
	agg := &stageAgg{}
	txns, lat, err := netDrive(nClients, d, 1, func(i int) (netSession, error) {
		s, err := cl.Session()
		if err != nil {
			return netSession{}, err
		}
		s.Trace(true)
		return netSession{
			txn: func(k1, k2 int64) error {
				if err := s.Begin(); err != nil {
					return err
				}
				if _, err := s.Exec("INSERT INTO netbench VALUES (?, ?)", core.I(k1), core.S("v")); err != nil {
					s.Rollback()
					return err
				}
				if _, err := s.Exec("INSERT INTO netbench VALUES (?, ?)", core.I(k2), core.S("v")); err != nil {
					s.Rollback()
					return err
				}
				return s.Commit()
			},
			query: func(k int64) error {
				_, err := s.Exec("SELECT c FROM netbench WHERE id = ?", core.I(k))
				return err
			},
			close: s.Close,
		}.traced(agg, s), nil
	})
	if err != nil {
		return err
	}

	rep := coreReport{
		SchemaVersion: benchSchemaVersion,
		Bench:         "core_commit_stages",
		Clients:       nClients,
		Workers:       workers,
		DurationS:     d.Seconds(),
		Txns:          txns,
		TxnsPS:        float64(txns) / d.Seconds(),
		P50MS:         ms(lat.Quantile(0.50)),
		P99MS:         ms(lat.Quantile(0.99)),
		Timestamp:     time.Now().UTC().Format(time.RFC3339),
	}
	for i := range agg.stages {
		h := &agg.stages[i]
		if h.Count() == 0 || h.Max() == 0 {
			continue
		}
		rep.Stages = append(rep.Stages, coreStage{
			Stage: obs.Stage(i).String(),
			P50MS: ms(h.Quantile(0.50)),
			P99MS: ms(h.Quantile(0.99)),
			MaxMS: ms(h.Max()),
		})
	}
	printNetReport("core (traced)", nClients, d, txns, lat)
	return writeBenchReport("BENCH_core.json", &rep)
}
