// Sharded scale-out mode: N in-process shard nodes (engine + wire server
// per shard, loopback TCP), driven through the internal/shard router with
// a mix of single-shard autocommit transactions and cross-shard 2PC
// transfers.
//
//	hibench -shards 3 -clients 8 -duration 2s
//	hibench -shards 3 -cross 20   # 20% cross-shard transactions
//
// The run measures the same workload at one shard first (every 2PC
// candidate collapses to a single-shard transaction there), so the
// document shows scaling against the unsharded baseline, plus the p50/p99
// split between the cheap single-shard path and the two-round-trip 2PC
// path. Written to BENCH_shard.json.
package main

import (
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hiengine/internal/adapt"
	"hiengine/internal/client"
	"hiengine/internal/core"
	"hiengine/internal/delay"
	"hiengine/internal/obs"
	"hiengine/internal/server"
	"hiengine/internal/shard"
	"hiengine/internal/sqlfront"
	"hiengine/internal/srss"
	"hiengine/internal/wire"
)

// shardReport is the BENCH_shard.json document.
type shardReport struct {
	SchemaVersion int     `json:"schema_version"`
	Bench         string  `json:"bench"`
	Shards        int     `json:"shards"`
	Clients       int     `json:"clients"`
	Workers       int     `json:"workers"`
	DurationS     float64 `json:"duration_s"`
	CrossPct      int     `json:"cross_pct"`
	// CPUs is GOMAXPROCS at run time. All shard nodes share this budget
	// (the cluster is in-process), so on a single-core machine ScalingX
	// measures pure coordination overhead and cannot exceed 1.0; capacity
	// scaling only shows when the 1-shard baseline is core-limited below
	// the machine's total.
	CPUs   int          `json:"cpus"`
	Series []shardPoint `json:"series"`
	// ScalingX is throughput at full shard count over the 1-shard baseline.
	ScalingX  float64 `json:"scaling_x"`
	Timestamp string  `json:"timestamp"`
}

// shardPoint is one shard count's measurement.
type shardPoint struct {
	Shards      int     `json:"shards"`
	Txns        int64   `json:"txns"`
	TxnsPS      float64 `json:"txns_per_s"`
	CrossTxns   int64   `json:"cross_txns"`
	BusyRejects int64   `json:"busy_rejects"`
	SingleP50MS float64 `json:"single_p50_ms"`
	SingleP99MS float64 `json:"single_p99_ms"`
	CrossP50MS  float64 `json:"cross_p50_ms"`
	CrossP99MS  float64 `json:"cross_p99_ms"`
}

// shardNode is one in-process shard: engine + frontend + wire server.
type shardNode struct {
	engine *core.Engine
	srv    *server.Server
}

func (n *shardNode) close() {
	n.srv.Close()
	n.engine.Close()
}

// startShardCluster brings up n nodes over pre-reserved loopback listeners
// and returns the routed topology. With trace on, each node carries a
// tracer that answers client-forced traces only (no sampling), so the
// final traced transaction gets per-hop stage blocks back while the
// measured run is untouched.
func startShardCluster(n, workers int, trace bool) (*shard.Map, []*shardNode, error) {
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, nil, err
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	m, err := shard.NewMap(1, addrs)
	if err != nil {
		return nil, nil, err
	}
	var nodes []*shardNode
	for i := range lns {
		// Unlike netbench (zero-delay: the wire is the experiment), shard
		// mode models the cloud deployment: commits wait on replicated
		// storage latency, so worker slots are genuinely scarce and the
		// 1-shard baseline saturates -- the thing scale-out is for.
		engine, err := core.Open(core.Config{
			Service: srss.New(srss.Config{Model: delay.CloudProfile()}),
			Workers: workers,
		})
		if err != nil {
			for _, nd := range nodes {
				nd.close()
			}
			return nil, nil, err
		}
		sm := m.ShardMap
		sm.SelfID = uint32(i)
		mapB := (&shard.Map{ShardMap: sm}).Encode()
		if err := engine.SetShardMap(mapB); err != nil {
			engine.Close()
			for _, nd := range nodes {
				nd.close()
			}
			return nil, nil, err
		}
		front := sqlfront.NewFrontend("hiengine", adapt.New(engine))
		var tracer *obs.Tracer
		if trace {
			tracer = obs.NewTracer(obs.TracerConfig{})
		}
		srv, err := server.New(server.Config{
			Frontend:    front,
			WorkerSlots: engine.Workers(),
			Tracer:      tracer,
			ShardInfo: func() *wire.ShardMap {
				sm, err := wire.DecodeShardMap(mapB)
				if err != nil {
					return nil
				}
				return sm
			},
			TwoPC: shard.EngineHooks(engine),
		})
		if err != nil {
			engine.Close()
			for _, nd := range nodes {
				nd.close()
			}
			return nil, nil, err
		}
		go srv.Serve(lns[i])
		nodes = append(nodes, &shardNode{engine: engine, srv: srv})
	}
	return m, nodes, nil
}

// shardDrive runs the mixed workload for d: each client owns a disjoint
// key range; crossPct percent of its transactions are two-key transfers
// placed on two distinct shards (when the map has them).
func shardDrive(m *shard.Map, nClients, crossPct int, d time.Duration) (*shardPoint, error) {
	r := shard.NewRouter(m, client.Options{Addr: "routed", PoolSize: nClients}, nil)
	defer r.Close()

	var (
		txns, crossTxns atomic.Int64
		busyRejects     atomic.Int64
		singleLat       obs.Histogram
		crossLat        obs.Histogram
		latMu           sync.Mutex
		stop            atomic.Bool
		wg              sync.WaitGroup
		errs            = make(chan error, nClients)
	)
	// A saturated node answers with the busy code once its worker slots and
	// slot-wait budget are gone; that is admission control doing its job,
	// not a benchmark failure. Count it and move on.
	tolerate := func(err error) bool {
		return errors.Is(err, wire.ErrServerBusy)
	}
	for i := 0; i < nClients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			base := int64(i) << 40
			for j := int64(0); !stop.Load(); j++ {
				k1 := base + 2*j
				k2 := base + 2*j + 1
				cross := m.N() > 1 && int(j%100) < crossPct
				start := time.Now()
				if cross {
					// Force the two keys onto distinct shards so the
					// transaction really exercises 2PC.
					for m.ShardOfInt(k2) == m.ShardOfInt(k1) {
						k2++
					}
					// Touch shards in ascending id order. Every participant
					// session holds a worker slot for the whole transaction,
					// so 2PC writers that acquired slots in arbitrary order
					// could form a circular wait across shards and collapse
					// the run into slot-wait timeouts; canonical ordering
					// makes the cycle impossible.
					if m.ShardOfInt(k2) < m.ShardOfInt(k1) {
						k1, k2 = k2, k1
					}
					tx := r.Begin()
					_, err := tx.Exec(k1, "INSERT INTO shardbench VALUES (?, ?)", core.I(k1), core.I(j))
					if err == nil {
						_, err = tx.Exec(k2, "INSERT INTO shardbench VALUES (?, ?)", core.I(k2), core.I(j))
					}
					if err != nil {
						tx.Rollback()
						if tolerate(err) {
							busyRejects.Add(1)
							continue
						}
						errs <- fmt.Errorf("client %d cross txn: %w", i, err)
						return
					}
					if err := tx.Commit(); err != nil {
						if tolerate(err) {
							busyRejects.Add(1)
							continue
						}
						errs <- fmt.Errorf("client %d cross commit: %w", i, err)
						return
					}
					crossTxns.Add(1)
				} else {
					// Explicit transaction, same shape as the cross path:
					// the worker slot is held until the commit is durable,
					// which is what makes per-node capacity finite under
					// the cloud latency model (and scale-out measurable).
					tx := r.Begin()
					_, err := tx.Exec(k1, "INSERT INTO shardbench VALUES (?, ?)", core.I(k1), core.I(j))
					if err == nil {
						err = tx.Commit()
					} else {
						tx.Rollback()
					}
					if err != nil {
						if tolerate(err) {
							busyRejects.Add(1)
							continue
						}
						errs <- fmt.Errorf("client %d single txn: %w", i, err)
						return
					}
				}
				ns := time.Since(start).Nanoseconds()
				latMu.Lock()
				if cross {
					crossLat.Record(ns)
				} else {
					singleLat.Record(ns)
				}
				latMu.Unlock()
				txns.Add(1)
			}
		}(i)
	}
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	select {
	case err := <-errs:
		return nil, err
	default:
	}
	pt := &shardPoint{
		Shards:      m.N(),
		Txns:        txns.Load(),
		TxnsPS:      float64(txns.Load()) / d.Seconds(),
		CrossTxns:   crossTxns.Load(),
		BusyRejects: busyRejects.Load(),
		SingleP50MS: ms(singleLat.Quantile(0.50)),
		SingleP99MS: ms(singleLat.Quantile(0.99)),
		CrossP50MS:  ms(crossLat.Quantile(0.50)),
		CrossP99MS:  ms(crossLat.Quantile(0.99)),
	}
	return pt, nil
}

// shardTrace runs one traced cross-shard transfer through the router and
// prints the stitched distributed trace as a per-hop table: coordinator
// wall time decomposed into the 2PC phases, each hop tagged (shard,
// opcode) with the participant's own stage timings.
func shardTrace(m *shard.Map) error {
	r := shard.NewRouter(m, client.Options{Addr: "routed"}, nil)
	defer r.Close()
	r.Trace(true)
	k1 := int64(1) << 50
	k2 := k1 + 1
	for m.ShardOfInt(k2) == m.ShardOfInt(k1) {
		k2++
	}
	if m.ShardOfInt(k2) < m.ShardOfInt(k1) {
		k1, k2 = k2, k1
	}
	tx := r.Begin()
	_, err := tx.Exec(k1, "INSERT INTO shardbench VALUES (?, ?)", core.I(k1), core.I(0))
	if err == nil {
		_, err = tx.Exec(k2, "INSERT INTO shardbench VALUES (?, ?)", core.I(k2), core.I(0))
	}
	if err != nil {
		tx.Rollback()
		return err
	}
	if err := tx.Commit(); err != nil {
		return err
	}
	t := r.LastDistTrace()
	if t == nil {
		return fmt.Errorf("no distributed trace assembled")
	}
	us := func(d time.Duration) time.Duration { return d.Round(time.Microsecond) }
	fmt.Printf("shardbench trace %d: total=%v prepare=%v decide=%v fanout=%v shards=%d hops=%d\n",
		t.TraceID, us(t.Total), us(t.Prepare), us(t.Decide), us(t.Fanout), t.Shards, len(t.Hops))
	fmt.Printf("  %3s  %5s  %-10s  %9s  %9s  %9s  stages\n",
		"hop", "shard", "op", "offset", "rtt", "server")
	for _, h := range t.Hops {
		shardS := "-"
		if h.HasShard {
			shardS = fmt.Sprintf("%d", h.Shard)
		}
		var server time.Duration
		stages := ""
		if h.Info != nil {
			server = time.Duration(h.Info.TotalNS)
			for _, st := range h.Info.Stages {
				stages += fmt.Sprintf(" %s=%v", st.Stage, us(time.Duration(st.DurNS)))
			}
		}
		fmt.Printf("  %3d  %5s  %-10s  %9v  %9v  %9v %s\n",
			h.Hop, shardS, h.Op, us(h.Start), us(h.RTT), us(server), stages)
	}
	return nil
}

// shardBench measures the workload at 1 shard and at nShards, and writes
// BENCH_shard.json with the scaling factor. With trace on, the full-count
// run finishes with one traced cross-shard transaction and its per-hop
// table.
func shardBench(nShards, nClients, workers, crossPct int, d time.Duration, trace bool) error {
	if nShards < 1 {
		return fmt.Errorf("-shards must be >= 1")
	}
	rep := shardReport{
		SchemaVersion: benchSchemaVersion,
		Bench:         "shard_scaling_2pc",
		Shards:        nShards,
		Clients:       nClients,
		Workers:       workers,
		DurationS:     d.Seconds(),
		CrossPct:      crossPct,
		CPUs:          runtime.GOMAXPROCS(0),
		Timestamp:     time.Now().UTC().Format(time.RFC3339),
	}
	counts := []int{1}
	if nShards > 1 {
		counts = append(counts, nShards)
	}
	for _, n := range counts {
		m, nodes, err := startShardCluster(n, workers, trace)
		if err != nil {
			return err
		}
		// Create the bench table on every shard.
		for id := 0; id < m.N(); id++ {
			cl, err := client.New(client.Options{Addr: m.Addr(uint32(id))})
			if err == nil {
				_, err = cl.Exec("CREATE TABLE shardbench (id INT, v INT, PRIMARY KEY(id))")
				cl.Close()
			}
			if err != nil {
				for _, nd := range nodes {
					nd.close()
				}
				return fmt.Errorf("shard %d create: %w", id, err)
			}
		}
		pt, err := shardDrive(m, nClients, crossPct, d)
		if err == nil {
			rep.Series = append(rep.Series, *pt)
			fmt.Printf("shardbench shards=%-2d clients=%-3d dur=%-5v txns=%-8d thru=%8.0f txn/s  cross=%d (single p50=%.2fms p99=%.2fms, cross p50=%.2fms p99=%.2fms)\n",
				n, nClients, d, pt.Txns, pt.TxnsPS, pt.CrossTxns,
				pt.SingleP50MS, pt.SingleP99MS, pt.CrossP50MS, pt.CrossP99MS)
			if trace && n > 1 {
				if terr := shardTrace(m); terr != nil {
					fmt.Printf("shardbench trace: %v\n", terr)
				}
			}
		}
		for _, nd := range nodes {
			nd.close()
		}
		if err != nil {
			return err
		}
	}
	if len(rep.Series) == 2 && rep.Series[0].TxnsPS > 0 {
		rep.ScalingX = rep.Series[1].TxnsPS / rep.Series[0].TxnsPS
		fmt.Printf("shardbench scaling: %.2fx at %d shards over the 1-shard baseline\n", rep.ScalingX, nShards)
	}
	return writeBenchReport("BENCH_shard.json", &rep)
}
