// Networked benchmark mode: measures throughput through the wire protocol
// (hiserver + pooled client) against the same workload run in-process, so
// the cost of the network service layer is a number, not a guess.
//
//	hibench -serve :7609                  # run a server and block
//	hibench -connect host:port -clients 8 # drive a remote server
//	hibench -netlocal -clients 8          # loopback server + in-process baseline
//	hibench -netlocal -prepared           # same, via prepared statements
//
// The workload is a fixed OLTP-ish mix per client: an explicit
// transaction of two inserts (committed through the pipelined path),
// then a point select. Clients own disjoint key ranges, so the measured
// number is service-layer cost, not conflict behavior.
package main

import (
	"fmt"
	"net"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"hiengine/internal/adapt"
	"hiengine/internal/client"
	"hiengine/internal/core"
	"hiengine/internal/delay"
	"hiengine/internal/obs"
	"hiengine/internal/server"
	"hiengine/internal/sqlfront"
	"hiengine/internal/srss"
)

const netbenchSchema = "CREATE TABLE netbench (id INT, c TEXT, PRIMARY KEY(id))"

func netFrontend(workers int) (*sqlfront.Frontend, *core.Engine, error) {
	engine, err := core.Open(core.Config{
		Service: srss.New(srss.Config{Model: delay.Zero()}),
		Workers: workers,
	})
	if err != nil {
		return nil, nil, err
	}
	return sqlfront.NewFrontend("hiengine", adapt.New(engine)), engine, nil
}

// netServe runs a plain server (zero latency model: the wire is the
// experiment) and blocks until SIGINT/SIGTERM drains it.
func netServe(addr string, workers int) error {
	front, engine, err := netFrontend(workers)
	if err != nil {
		return err
	}
	defer engine.Close()
	srv, err := server.New(server.Config{
		Frontend:    front,
		WorkerSlots: engine.Workers(),
		Obs:         engine.Obs(),
		// A policy-free tracer: nothing is head-sampled, but clients that
		// flag their requests (hibench -trace) get full stage timings.
		Tracer: obs.NewTracer(obs.TracerConfig{Registry: engine.Obs()}),
		Stats: func() string {
			s := engine.Stats()
			return fmt.Sprintf("commits=%d aborts=%d conflicts=%d\n",
				s.Commits.Load(), s.Aborts.Load(), s.Conflicts.Load())
		},
	})
	if err != nil {
		return err
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sig
		srv.Close()
	}()
	fmt.Fprintf(os.Stderr, "hibench: serving on %s (SIGINT to drain)\n", addr)
	return srv.ListenAndServe(addr)
}

// netConnect drives a remote server with nClients sessions for d and
// prints the throughput report. With prepared, each session prepares the
// workload's two statements once and executes by statement id, so the
// server never re-parses.
func netConnect(addr string, nClients int, d time.Duration, prepared, traced bool) error {
	cl, err := client.New(client.Options{Addr: addr, PoolSize: nClients})
	if err != nil {
		return err
	}
	defer cl.Close()
	if err := cl.Ping(); err != nil {
		return fmt.Errorf("ping %s: %v", addr, err)
	}
	if _, err := cl.Exec(netbenchSchema); err != nil {
		// A table left over from a previous run is fine: keys are salted.
		fmt.Fprintf(os.Stderr, "hibench: create table: %v (continuing)\n", err)
	}
	base := time.Now().UnixNano() % (1 << 40) // salt keys across runs
	var agg *stageAgg
	if traced {
		agg = &stageAgg{}
	}
	txns, lat, err := netDrive(nClients, d, base, func(i int) (netSession, error) {
		s, err := cl.Session()
		if err != nil {
			return netSession{}, err
		}
		if traced {
			s.Trace(true)
		}
		if prepared {
			ins, err := s.Prepare("INSERT INTO netbench VALUES (?, ?)")
			if err != nil {
				s.Close()
				return netSession{}, err
			}
			sel, err := s.Prepare("SELECT c FROM netbench WHERE id = ?")
			if err != nil {
				s.Close()
				return netSession{}, err
			}
			return netSession{
				txn: func(k1, k2 int64) error {
					if err := s.Begin(); err != nil {
						return err
					}
					if _, err := ins.Exec(core.I(k1), core.S("v")); err != nil {
						s.Rollback()
						return err
					}
					if _, err := ins.Exec(core.I(k2), core.S("v")); err != nil {
						s.Rollback()
						return err
					}
					return s.Commit()
				},
				query: func(k int64) error {
					_, err := sel.Exec(core.I(k))
					return err
				},
				close: s.Close,
			}.traced(agg, s), nil
		}
		return netSession{
			txn: func(k1, k2 int64) error {
				if err := s.Begin(); err != nil {
					return err
				}
				if _, err := s.Exec("INSERT INTO netbench VALUES (?, ?)", core.I(k1), core.S("v")); err != nil {
					s.Rollback()
					return err
				}
				if _, err := s.Exec("INSERT INTO netbench VALUES (?, ?)", core.I(k2), core.S("v")); err != nil {
					s.Rollback()
					return err
				}
				return s.Commit()
			},
			query: func(k int64) error {
				_, err := s.Exec("SELECT c FROM netbench WHERE id = ?", core.I(k))
				return err
			},
			close: s.Close,
		}.traced(agg, s), nil
	})
	if err != nil {
		return err
	}
	label := "wire " + addr
	if prepared {
		label = "wire+prep " + addr
	}
	printNetReport(label, nClients, d, txns, lat)
	agg.print()
	return nil
}

// netLocal runs the loopback comparison: the identical workload through a
// 127.0.0.1 server and directly against the in-process frontend. With
// prepared, both sides execute through prepared handles.
func netLocal(nClients, workers int, d time.Duration, prepared, traced bool) error {
	// --- over the wire ---------------------------------------------------
	front, engine, err := netFrontend(workers)
	if err != nil {
		return err
	}
	srv, err := server.New(server.Config{
		Frontend:    front,
		WorkerSlots: workers,
		Obs:         engine.Obs(),
		Tracer:      obs.NewTracer(obs.TracerConfig{Registry: engine.Obs()}),
	})
	if err != nil {
		engine.Close()
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		engine.Close()
		return err
	}
	go srv.Serve(ln)
	err = netConnect(ln.Addr().String(), nClients, d, prepared, traced)
	srv.Close()
	engine.Close()
	if err != nil {
		return err
	}

	// --- in-process ------------------------------------------------------
	front2, engine2, err := netFrontend(workers)
	if err != nil {
		return err
	}
	defer engine2.Close()
	if _, err := front2.NewSession(0).Exec(netbenchSchema); err != nil {
		return err
	}
	// Worker slots are leased per transaction, exactly as the server
	// leases them, so nClients may exceed workers here too.
	slots := make(chan int, workers)
	for i := 0; i < workers; i++ {
		slots <- i
	}
	txns, lat, err := netDrive(nClients, d, 1<<41, func(i int) (netSession, error) {
		sess := front2.NewSession(0)
		if prepared {
			ins, err := sess.Prepare("INSERT INTO netbench VALUES (?, ?)")
			if err != nil {
				return netSession{}, err
			}
			sel, err := sess.Prepare("SELECT c FROM netbench WHERE id = ?")
			if err != nil {
				return netSession{}, err
			}
			return netSession{
				txn: func(k1, k2 int64) error {
					slot := <-slots
					defer func() { slots <- slot }()
					sess.SetWorker(slot)
					if err := sess.Begin(); err != nil {
						return err
					}
					if _, err := ins.Exec(core.I(k1), core.S("v")); err != nil {
						sess.Rollback()
						return err
					}
					if _, err := ins.Exec(core.I(k2), core.S("v")); err != nil {
						sess.Rollback()
						return err
					}
					_, err := sess.Exec("COMMIT")
					return err
				},
				query: func(k int64) error {
					slot := <-slots
					defer func() { slots <- slot }()
					sess.SetWorker(slot)
					_, err := sel.Exec(core.I(k))
					return err
				},
				close: func() {},
			}, nil
		}
		return netSession{
			txn: func(k1, k2 int64) error {
				slot := <-slots
				defer func() { slots <- slot }()
				sess.SetWorker(slot)
				for _, stmt := range []struct {
					sql  string
					args []core.Value
				}{
					{"BEGIN", nil},
					{"INSERT INTO netbench VALUES (?, ?)", []core.Value{core.I(k1), core.S("v")}},
					{"INSERT INTO netbench VALUES (?, ?)", []core.Value{core.I(k2), core.S("v")}},
					{"COMMIT", nil},
				} {
					if _, err := sess.Exec(stmt.sql, stmt.args...); err != nil {
						if sess.InTxn() {
							sess.Rollback()
						}
						return err
					}
				}
				return nil
			},
			query: func(k int64) error {
				slot := <-slots
				defer func() { slots <- slot }()
				sess.SetWorker(slot)
				_, err := sess.Exec("SELECT c FROM netbench WHERE id = ?", core.I(k))
				return err
			},
			close: func() {},
		}, nil
	})
	if err != nil {
		return err
	}
	label := "in-process"
	if prepared {
		label = "in-process+prep"
	}
	printNetReport(label, nClients, d, txns, lat)
	return nil
}

// netSession is the driver-facing shape shared by both backends.
type netSession struct {
	txn   func(k1, k2 int64) error
	query func(k int64) error
	close func()
}

// netDrive runs the fixed mix on nClients concurrent sessions for d.
func netDrive(nClients int, d time.Duration, keyBase int64, open func(i int) (netSession, error)) (int64, *obs.Histogram, error) {
	var (
		txns int64
		lat  obs.Histogram
		stop atomic.Bool
		wg   sync.WaitGroup
		errs = make(chan error, nClients)
	)
	for i := 0; i < nClients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := open(i)
			if err != nil {
				errs <- err
				return
			}
			defer s.close()
			key := keyBase + int64(i)<<22
			for j := int64(0); !stop.Load(); j++ {
				start := time.Now()
				k1, k2 := key+2*j, key+2*j+1
				if err := s.txn(k1, k2); err != nil {
					errs <- fmt.Errorf("client %d txn: %w", i, err)
					return
				}
				if err := s.query(k1); err != nil {
					errs <- fmt.Errorf("client %d query: %w", i, err)
					return
				}
				lat.Record(time.Since(start).Nanoseconds())
				atomic.AddInt64(&txns, 1)
			}
		}(i)
	}
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	select {
	case err := <-errs:
		return 0, nil, err
	default:
	}
	return txns, &lat, nil
}

func printNetReport(label string, nClients int, d time.Duration, txns int64, lat *obs.Histogram) {
	fmt.Printf("netbench %-20s clients=%-3d dur=%-5v txns=%-8d thru=%8.0f txn/s  p50=%v p95=%v p99=%v max=%v\n",
		label, nClients, d, txns, float64(txns)/d.Seconds(),
		time.Duration(lat.Quantile(0.50)), time.Duration(lat.Quantile(0.95)),
		time.Duration(lat.Quantile(0.99)), time.Duration(lat.Max()))
}

// stageAgg folds per-stage timings across every traced transaction so the
// report can show where commit latency is spent server-side.
type stageAgg struct {
	stages  [obs.NumStages]obs.Histogram
	total   obs.Histogram
	network obs.Histogram
	count   atomic.Int64
}

func (a *stageAgg) record(lt *client.TraceResult) {
	if a == nil || lt == nil {
		return
	}
	a.count.Add(1)
	a.total.Record(lt.Info.TotalNS)
	a.network.Record(lt.NetworkNS())
	for _, st := range lt.Info.Stages {
		if int(st.Stage) < len(a.stages) {
			a.stages[st.Stage].Record(st.DurNS)
		}
	}
}

// traced wraps the transaction closure so each successful commit folds its
// server stage breakdown into agg (identity when tracing is off).
func (ns netSession) traced(agg *stageAgg, s *client.Session) netSession {
	if agg == nil {
		return ns
	}
	inner := ns.txn
	ns.txn = func(k1, k2 int64) error {
		err := inner(k1, k2)
		if err == nil {
			agg.record(s.LastTrace())
		}
		return err
	}
	return ns
}

// print appends the per-stage latency table to the report.
func (a *stageAgg) print() {
	if a == nil {
		return
	}
	n := a.count.Load()
	if n == 0 {
		fmt.Println("  trace: no traced transactions returned stage timings (server tracer missing?)")
		return
	}
	fmt.Printf("  per-stage server latency over %d traced txns:\n", n)
	fmt.Printf("    %-16s %10s %10s %10s %10s\n", "stage", "p50", "p95", "p99", "max")
	row := func(name string, h *obs.Histogram) {
		// Skip stages that never ran or report only zeros (respond is
		// always zero client-side: the block is encoded before the write).
		if h.Count() == 0 || h.Max() == 0 {
			return
		}
		fmt.Printf("    %-16s %10v %10v %10v %10v\n", name,
			time.Duration(h.Quantile(0.50)), time.Duration(h.Quantile(0.95)),
			time.Duration(h.Quantile(0.99)), time.Duration(h.Max()))
	}
	for i := range a.stages {
		row(obs.Stage(i).String(), &a.stages[i])
	}
	row("server total", &a.total)
	row("network+queue", &a.network)
}
