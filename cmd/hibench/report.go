// Shared machine-readable report plumbing: every BENCH_*.json document is
// written through writeBenchReport so the -out directory and the schema
// version stamp are uniform across benchmark modes. Downstream tooling
// (perf dashboards, CI trend checks) keys on schema_version to know which
// fields to expect; bump benchSchemaVersion whenever any document's shape
// changes incompatibly.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// benchSchemaVersion stamps every BENCH_*.json document. Version history:
//
//	1: implicit (documents predating the stamp carry no field)
//	2: schema_version added; BENCH_core.json and BENCH_shard.json introduced
//	3: BENCH_scan.json introduced (streamed scans + batch writes)
const benchSchemaVersion = 3

// benchOutDir is the -out flag: the directory receiving BENCH_*.json
// documents ("" = current directory).
var benchOutDir string

// writeBenchReport renders doc and writes it under the -out directory.
func writeBenchReport(name string, doc any) error {
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	path := name
	if benchOutDir != "" {
		if err := os.MkdirAll(benchOutDir, 0o755); err != nil {
			return err
		}
		path = filepath.Join(benchOutDir, name)
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("hibench: wrote %s\n", path)
	return nil
}
