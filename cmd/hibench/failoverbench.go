// Failover mode: measure what a primary crash costs the write path. One
// primary plus one log-shipping replica run in-process over loopback TCP;
// pooled failover clients hammer autocommit inserts while the primary is
// killed and the replica promoted. Two numbers come out per trial:
//
//   - time-to-promote: kill-to-writable on the promoted node (final
//     catch-up drain + tail seal + epoch bump + role flip);
//
//   - per-client write gap: the longest ack-to-ack silence each client
//     observed, i.e. the outage as the application felt it, including
//     rediscovery and backoff.
//
// Usage:
//
//	hibench -failover -clients 4 -duration 2s
//
// The trial series is written to BENCH_failover.json so the failover
// cost trajectory is recorded per run.
package main

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hiengine/internal/adapt"
	"hiengine/internal/client"
	"hiengine/internal/core"
	"hiengine/internal/delay"
	"hiengine/internal/replica"
	"hiengine/internal/server"
	"hiengine/internal/sqlfront"
	"hiengine/internal/srss"
)

const failoverTrials = 3

// failoverReport is the BENCH_failover.json document.
type failoverReport struct {
	SchemaVersion int             `json:"schema_version"`
	Bench         string          `json:"bench"`
	Clients       int             `json:"clients"`
	DurationS     float64         `json:"duration_s"`
	Trials        []failoverTrial `json:"trials"`
	// Aggregates across every client of every trial.
	WriteGapP50MS float64 `json:"write_gap_p50_ms"`
	WriteGapMaxMS float64 `json:"write_gap_max_ms"`
	Timestamp     string  `json:"timestamp"`
}

type failoverTrial struct {
	TimeToPromoteMS float64 `json:"time_to_promote_ms"`
	// WriteGapMS is each client's longest ack-to-ack gap (ms).
	WriteGapMS  []float64 `json:"client_write_gap_ms"`
	AckedBefore int64     `json:"acked_before_kill"`
	AckedAfter  int64     `json:"acked_after_promote"`
}

// failoverBench runs the kill/promote experiment and writes
// BENCH_failover.json. Each half of a trial (before the kill, after
// reconvergence) runs for d.
func failoverBench(nClients, workers int, d time.Duration) error {
	rep := failoverReport{
		SchemaVersion: benchSchemaVersion,
		Bench:         "failover_promote",
		Clients:       nClients,
		DurationS:     d.Seconds(),
		Timestamp:     time.Now().UTC().Format(time.RFC3339),
	}
	for trial := 0; trial < failoverTrials; trial++ {
		tr, err := failoverTrialRun(trial, nClients, workers, d)
		if err != nil {
			return fmt.Errorf("trial %d: %w", trial, err)
		}
		rep.Trials = append(rep.Trials, tr)
		fmt.Printf("failover trial=%d clients=%-3d promote=%6.1fms gaps(ms)=%v\n",
			trial, nClients, tr.TimeToPromoteMS, tr.WriteGapMS)
	}
	var gaps []float64
	for _, tr := range rep.Trials {
		gaps = append(gaps, tr.WriteGapMS...)
	}
	sort.Float64s(gaps)
	if n := len(gaps); n > 0 {
		rep.WriteGapP50MS = gaps[n/2]
		rep.WriteGapMaxMS = gaps[n-1]
	}

	return writeBenchReport("BENCH_failover.json", &rep)
}

// failoverClientStat is one writer's view of the outage.
type failoverClientStat struct {
	maxGap      time.Duration
	ackedBefore int64
	ackedAfter  int64
}

func failoverTrialRun(trial, nClients, workers int, d time.Duration) (failoverTrial, error) {
	var out failoverTrial

	// --- primary ---------------------------------------------------------
	engine, err := core.Open(core.Config{
		Service:    srss.New(srss.Config{Model: delay.Zero()}),
		Workers:    workers,
		LogStreams: 1, // prefix-exact shipped watermark (see failover tests)
	})
	if err != nil {
		return out, err
	}
	defer engine.Close()
	front := sqlfront.NewFrontend("hiengine", adapt.New(engine))
	srv, err := server.New(server.Config{
		Frontend:     front,
		WorkerSlots:  engine.Workers(),
		ReplSource:   replica.NewSource(engine),
		Epoch:        engine.Epoch,
		ObserveEpoch: engine.ObserveEpoch,
		DrainTimeout: 500 * time.Millisecond,
	})
	if err != nil {
		return out, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return out, err
	}
	go srv.Serve(ln)
	primaryAddr := ln.Addr().String()

	seed, err := client.New(client.Options{Addr: primaryAddr})
	if err != nil {
		return out, err
	}
	if _, err := seed.Exec("CREATE TABLE failover (id INT, c TEXT, PRIMARY KEY(id))"); err != nil {
		seed.Close()
		return out, err
	}
	seed.Close()

	// --- replica ---------------------------------------------------------
	rs, err := startReplicaStack(primaryAddr, workers)
	if err != nil {
		return out, err
	}
	defer rs.close()

	// --- writers ---------------------------------------------------------
	var (
		stop  atomic.Bool
		phase atomic.Uint64 // 0 = old primary, 1 = promoted
		wg    sync.WaitGroup
		stats = make([]failoverClientStat, nClients)
		errs  = make(chan error, nClients)
	)
	for i := 0; i < nClients; i++ {
		cl, err := client.New(client.Options{
			Addr:            primaryAddr,
			ReplicaAddrs:    []string{rs.addr},
			DialTimeout:     500 * time.Millisecond,
			MaxRetries:      2,
			FailoverRetries: 12,
			FailoverBase:    5 * time.Millisecond,
			FailoverMax:     100 * time.Millisecond,
			Seed:            uint64(trial*100 + i + 1),
		})
		if err != nil {
			stop.Store(true)
			wg.Wait()
			return out, err
		}
		defer cl.Close()
		wg.Add(1)
		go func(i int, cl *client.Client) {
			defer wg.Done()
			st := &stats[i]
			lastAck := time.Now()
			for seq := int64(0); !stop.Load(); seq++ {
				key := int64(trial)*1_000_000_000 + int64(i)*1_000_000 + seq
				p := phase.Load()
				_, err := cl.Exec("INSERT INTO failover VALUES (?, ?)", core.I(key), core.S("x"))
				if err != nil {
					continue // outage window; the gap clock keeps running
				}
				now := time.Now()
				if gap := now.Sub(lastAck); gap > st.maxGap {
					st.maxGap = gap
				}
				lastAck = now
				if p == 0 {
					st.ackedBefore++
				} else {
					st.ackedAfter++
				}
			}
		}(i, cl)
	}

	// Phase 0: steady state on the old primary.
	time.Sleep(d)

	// Kill and promote; time-to-promote is kill-to-writable.
	t0 := time.Now()
	srv.Close()
	var epoch uint64
	for attempt := 0; ; attempt++ {
		if epoch, err = rs.follower.Promote(); err == nil {
			break
		}
		if attempt > 10 {
			stop.Store(true)
			wg.Wait()
			return out, fmt.Errorf("promote: %w", err)
		}
	}
	_ = epoch
	rs.srv.Promote(replica.NewSource(rs.rep.Engine()))
	out.TimeToPromoteMS = float64(time.Since(t0)) / float64(time.Millisecond)
	phase.Store(1)

	// Phase 1: steady state on the promoted node, then stop.
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	select {
	case err := <-errs:
		return out, err
	default:
	}

	for i := range stats {
		st := &stats[i]
		if st.ackedAfter == 0 {
			return out, fmt.Errorf("client %d never reconverged on the promoted node", i)
		}
		out.WriteGapMS = append(out.WriteGapMS, float64(st.maxGap)/float64(time.Millisecond))
		out.AckedBefore += st.ackedBefore
		out.AckedAfter += st.ackedAfter
	}
	return out, nil
}
