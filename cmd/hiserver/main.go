// Command hiserver runs HiEngine as a network daemon: the cloud-service
// shape of the paper's Figure 3, one SQL frontend in front of registered
// storage engines, serving remote sessions over the internal/wire
// protocol. The storage-centric baseline is registered as a second engine
// (WITH ENGINE=innodb) so a remote session can drive the vertical
// multi-engine deployment.
//
// Usage:
//
//	hiserver -addr :7609
//	hiserver -addr :7609 -http :7610    # + HTTP admin plane
//	hishell -connect localhost:7609     # remote REPL
//	hibench -connect localhost:7609 ... # remote load
//
// The admin plane (-http) serves /metrics (Prometheus), /statusz (JSON),
// /traces (recent/slow request traces; ?distributed=1 for stitched
// multi-hop trees), /clusterz (the whole cluster's merged status; peers
// named by -peer-admin), /healthz (readiness: 503 when fenced, draining,
// or lagging past -ready-max-lag) and /debug/pprof. Request tracing is
// configured with -trace-sample and -trace-slow; client-flagged requests
// are always traced.
//
// SIGINT/SIGTERM triggers a graceful drain: the listener closes, new
// requests are refused with the fatal wire code, and in-flight commits
// finish durably before the process exits; the final metrics snapshot is
// dumped to stderr so a scrape-less deployment still gets its numbers.
//
// A replica process (-replica-of) can be promoted to primary at runtime
// with SIGUSR1 or POST /promote on the admin plane: the follower drains
// a final catch-up, the engine seals the shipped log tail and starts
// writing at a bumped epoch, and the wire server flips to the primary
// role -- clients rediscover it through greetings, and the fenced old
// primary refuses writes with the stale-epoch code.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"hiengine/internal/adapt"
	"hiengine/internal/admin"
	"hiengine/internal/baseline/innosim"
	"hiengine/internal/chaos"
	"hiengine/internal/core"
	"hiengine/internal/delay"
	"hiengine/internal/obs"
	"hiengine/internal/replica"
	"hiengine/internal/server"
	"hiengine/internal/shard"
	"hiengine/internal/sqlfront"
	"hiengine/internal/srss"
	"hiengine/internal/wire"
)

// parseShardMap turns the -shard-map flag into the address list: either a
// comma-separated list inline, or "@path" naming a file with one address
// per line (blank lines and #-comments ignored).
func parseShardMap(v string) ([]string, error) {
	if v == "" {
		return nil, nil
	}
	if strings.HasPrefix(v, "@") {
		b, err := os.ReadFile(v[1:])
		if err != nil {
			return nil, fmt.Errorf("read shard map: %w", err)
		}
		var addrs []string
		for _, line := range strings.Split(string(b), "\n") {
			line = strings.TrimSpace(line)
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			addrs = append(addrs, line)
		}
		return addrs, nil
	}
	var addrs []string
	for _, a := range strings.Split(v, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	return addrs, nil
}

// parsePeerAdmin turns the -peer-admin flag (same comma/@file shape as
// -shard-map) into the /clusterz peer list. Each entry is name=host:port;
// a bare host:port names itself.
func parsePeerAdmin(v string) ([]admin.Peer, error) {
	entries, err := parseShardMap(v)
	if err != nil {
		return nil, err
	}
	var peers []admin.Peer
	for _, e := range entries {
		name, addr, ok := strings.Cut(e, "=")
		if !ok {
			name, addr = e, e
		}
		if addr == "" {
			return nil, fmt.Errorf("peer-admin: empty address in %q", e)
		}
		peers = append(peers, admin.Peer{Name: name, Addr: addr})
	}
	return peers, nil
}

func main() {
	var (
		addr        = flag.String("addr", ":7609", "listen address")
		httpAddr    = flag.String("http", "", "HTTP admin-plane listen address (empty = off)")
		workers     = flag.Int("workers", 8, "engine worker slots (max concurrent transactions)")
		maxConns    = flag.Int("max-conns", 256, "max concurrent connections")
		maxInflight = flag.Int("max-inflight", 4096, "max admitted unanswered requests")
		drain       = flag.Duration("drain", 5*time.Second, "graceful-drain timeout on shutdown")
		profile     = flag.String("profile", "cloud", "latency model: cloud or zero")
		statsEvery  = flag.Duration("stats-interval", 0, "periodic one-line stats summary to stderr (0 = off)")
		traceSample = flag.Int("trace-sample", 0, "trace 1 in N requests (0 = head sampling off)")
		traceSlow   = flag.Duration("trace-slow", 0, "always capture traces slower than this (0 = off)")
		replicaOf   = flag.String("replica-of", "", "primary wire address to follow as a read replica")
		replicaPoll = flag.Duration("replica-poll", 10*time.Millisecond, "replica log-shipping poll interval")
		shardID     = flag.Uint("shard-id", 0, "this node's shard id in -shard-map")
		shardMap    = flag.String("shard-map", "", "cluster shard map: comma-separated node addresses (index = shard id), or @file with one address per line")
		nodeName    = flag.String("name", "", "node name in /clusterz (default: shard<id>, replica, or primary)")
		peerAdmin   = flag.String("peer-admin", "", "peer admin addresses for /clusterz: comma-separated name=host:port entries (name optional), or @file with one entry per line")
		readyMaxLag = flag.Int64("ready-max-lag", 0, "replica readiness: /healthz answers 503 once lag_csn exceeds this (0 = lag never gates readiness)")
	)
	flag.Parse()

	shardAddrs, err := parseShardMap(*shardMap)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hiserver:", err)
		os.Exit(1)
	}
	peers, err := parsePeerAdmin(*peerAdmin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hiserver:", err)
		os.Exit(1)
	}
	if len(shardAddrs) > 0 && int(*shardID) >= len(shardAddrs) {
		fmt.Fprintf(os.Stderr, "hiserver: -shard-id %d out of range for %d-shard map\n", *shardID, len(shardAddrs))
		os.Exit(1)
	}

	model := delay.CloudProfile()
	if *profile == "zero" {
		model = delay.Zero()
	}
	var eng *chaos.Engine
	if seed, ok := chaos.SeedFromEnv(); ok {
		eng = chaos.New(seed)
		fmt.Fprintf(os.Stderr, "hiserver: chaos enabled, seed %d\n", seed)
	}

	reg := obs.NewRegistry("hiserver")
	var tracer *obs.Tracer
	if *traceSample > 0 || *traceSlow > 0 || *httpAddr != "" {
		// With the admin plane up, keep a tracer around even if both
		// policies are off: client-forced traces still work and /traces
		// stays live, at zero cost to untraced requests.
		tracer = obs.NewTracer(obs.TracerConfig{
			SampleEvery:   *traceSample,
			SlowThreshold: *traceSlow,
			Registry:      reg,
		})
	}

	var (
		engine      *core.Engine
		follower    *replica.Follower
		roleMu      sync.Mutex
		catalogSync func() error // replica mode: frontend catalog re-sync
	)
	role := "primary"
	getRole := func() string { roleMu.Lock(); defer roleMu.Unlock(); return role }
	if *replicaOf != "" {
		// Replica mode: mirror the primary's PLogs into a fresh local
		// SRSS deployment, open a read-only engine over the mirror, and
		// follow the primary's log.
		role = "replica"
		f, rep, err := replica.Bootstrap(*replicaOf, core.Config{
			Service: srss.New(srss.Config{Model: model}),
			Workers: *workers,
			Obs:     reg,
		}, core.RecoverOptions{}, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hiserver: replica bootstrap:", err)
			os.Exit(1)
		}
		follower, engine = f, rep.Engine()
		fmt.Fprintf(os.Stderr, "hiserver: replica of %s, applied CSN %d\n",
			*replicaOf, follower.AppliedCSN())
	} else {
		var err error
		engine, err = core.Open(core.Config{
			Service: srss.New(srss.Config{Model: model, Chaos: eng}),
			Workers: *workers,
			Obs:     reg,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "hiserver:", err)
			os.Exit(1)
		}
	}
	defer engine.Close()

	// Sharded deployment: persist the flag-supplied topology (stamped with
	// this node's shard id) as the newest manifest record, and serve
	// whatever the manifest holds over OpShardMap so clients and resolvers
	// can self-bootstrap from any member. A restart without the flags keeps
	// serving the persisted map; a replica inherits its primary's record
	// through log shipping.
	if len(shardAddrs) > 0 {
		if follower != nil {
			fmt.Fprintln(os.Stderr, "hiserver: -shard-map is a primary flag; replicas inherit the map from their primary")
			os.Exit(1)
		}
		m, err := shard.NewMap(1, shardAddrs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hiserver:", err)
			os.Exit(1)
		}
		m.SelfID = uint32(*shardID)
		persist := true
		if prev := engine.ShardMapPayload(); prev != nil {
			if pm, err := shard.DecodeMap(prev); err == nil {
				m.Version = pm.Version
				if string(prev) == string(m.Encode()) {
					persist = false // unchanged topology: keep the record
				} else {
					m.Version = pm.Version + 1
				}
			}
		}
		if persist {
			if err := engine.SetShardMap(m.Encode()); err != nil {
				fmt.Fprintln(os.Stderr, "hiserver: persist shard map:", err)
				os.Exit(1)
			}
		}
	}
	shardInfo := func() *wire.ShardMap {
		b := engine.ShardMapPayload()
		if b == nil {
			return nil
		}
		sm, err := wire.DecodeShardMap(b)
		if err != nil {
			return nil
		}
		return sm
	}

	front := sqlfront.NewFrontend("hiengine", adapt.New(engine))
	if follower != nil {
		// Adopt the primary's tables into the frontend catalog (the
		// replica never runs DDL; its catalog is the recovered manifest).
		// Replay keeps creating tables after bootstrap, so the sync
		// repeats on a ticker below and once more during promotion.
		syncCatalog := func() error {
			var schemas []*core.Schema
			for _, name := range engine.Tables() {
				t, err := engine.Table(name)
				if err != nil {
					continue
				}
				schemas = append(schemas, t.Schema)
			}
			_, err := front.AdoptAll("hiengine", schemas)
			return err
		}
		if err := syncCatalog(); err != nil {
			fmt.Fprintln(os.Stderr, "hiserver: adopt:", err)
			os.Exit(1)
		}
		catalogSync = syncCatalog
		go func() {
			tick := time.NewTicker(*replicaPoll)
			defer tick.Stop()
			for range tick.C {
				if err := syncCatalog(); err != nil {
					fmt.Fprintln(os.Stderr, "hiserver: adopt:", err)
				}
			}
		}()
		follower.SetInterval(*replicaPoll)
		follower.Start()
		defer follower.Stop()
	} else {
		inno, err := innosim.New(innosim.Config{Service: srss.New(srss.Config{Model: model})})
		if err != nil {
			fmt.Fprintln(os.Stderr, "hiserver:", err)
			os.Exit(1)
		}
		defer inno.Close()
		front.Register("innodb", inno)
	}

	statsLine := func() string {
		s := engine.Stats()
		return fmt.Sprintf("commits=%d aborts=%d conflicts=%d reclaimed=%d checkpoints=%d compactions=%d log=%dB",
			s.Commits.Load(), s.Aborts.Load(), s.Conflicts.Load(),
			s.ReclaimedVersions.Load(), s.Checkpoints.Load(), s.Compactions.Load(),
			engine.Log().TotalBytes())
	}

	scfg := server.Config{
		Frontend:     front,
		WorkerSlots:  engine.Workers(),
		MaxConns:     *maxConns,
		MaxInFlight:  *maxInflight,
		DrainTimeout: *drain,
		Obs:          reg,
		Tracer:       tracer,
		Chaos:        eng,
		Stats:        func() string { return statsLine() + "\n" },
		Epoch:        engine.Epoch,
		ObserveEpoch: engine.ObserveEpoch,
		ShardInfo:    shardInfo,
		// The 2PC participant surface is wired unconditionally: a promoted
		// replica adopts its primary's prepared transactions and must serve
		// OpTxnRecover/OpTxnDecide for coordinator recovery.
		TwoPC: shard.EngineHooks(engine),
	}
	if follower != nil {
		scfg.Replica = &server.ReplicaConfig{
			PrimaryAddr: *replicaOf,
			AppliedCSN:  follower.AppliedCSN,
			WaitCSN:     follower.WaitCSN,
		}
	} else {
		scfg.ReplSource = replica.NewSource(engine)
	}
	srv, err := server.New(scfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hiserver:", err)
		os.Exit(1)
	}

	// promote transitions a replica process to primary: the follower seals
	// its shipped log and the engine starts writing at a bumped epoch, then
	// the wire server flips roles so greetings advertise the new primary.
	// Serialized and idempotent; nil on a process started as primary.
	var promote func() (uint64, error)
	if follower != nil {
		var promoteMu sync.Mutex
		promote = func() (uint64, error) {
			promoteMu.Lock()
			defer promoteMu.Unlock()
			epoch, err := follower.Promote()
			if err != nil {
				return 0, err
			}
			// The final catch-up drain may have applied DDL; make it
			// visible before the first post-promotion statement lands.
			if err := catalogSync(); err != nil {
				return 0, fmt.Errorf("catalog sync: %w", err)
			}
			srv.Promote(replica.NewSource(engine))
			roleMu.Lock()
			role = "primary (promoted)"
			roleMu.Unlock()
			return epoch, nil
		}
	}

	status := func() map[string]any {
		st := map[string]any{
			"role":         getRole(),
			"epoch":        engine.Epoch(),
			"fenced_by":    engine.FencedBy(),
			"fenced":       engine.Fenced(),
			"cursors_open": srv.CursorsOpen(),
		}
		if follower != nil {
			st["applied_csn"] = follower.AppliedCSN()
			st["lag_csn"] = follower.LagCSN()
			if err := follower.Err(); err != nil {
				st["poll_error"] = err.Error()
			}
			if ti := follower.LastFetchTrace(); ti != nil {
				st["repl_fetch_us"] = ti.TotalNS / 1000
			}
		}
		if sm := shardInfo(); sm != nil {
			st["shard"] = map[string]any{
				"id":          sm.SelfID,
				"shards":      len(sm.Addrs),
				"map_version": sm.Version,
				"addrs":       sm.Addrs,
			}
		}
		st["indoubt_2pc"] = engine.InDoubt()
		return st
	}

	// Readiness: a fenced engine, a draining server, or a replica lagging
	// past -ready-max-lag answers /healthz with 503 and the reason, so load
	// balancers stop routing to a node that would refuse or serve stale.
	ready := func() error {
		if engine.Fenced() {
			return fmt.Errorf("fenced by epoch %d (own epoch %d)", engine.FencedBy(), engine.Epoch())
		}
		if srv.Draining() {
			return fmt.Errorf("draining")
		}
		if follower != nil && *readyMaxLag > 0 {
			if lag := follower.LagCSN(); lag > *readyMaxLag {
				return fmt.Errorf("replica lagging: lag_csn %d > %d", lag, *readyMaxLag)
			}
		}
		return nil
	}

	name := *nodeName
	if name == "" {
		switch {
		case len(shardAddrs) > 0:
			name = fmt.Sprintf("shard%d", *shardID)
		case follower != nil:
			name = "replica"
		default:
			name = "primary"
		}
	}

	var adm *admin.Server
	if *httpAddr != "" {
		adm = admin.New(admin.Config{
			Registry: reg,
			Tracer:   tracer,
			Info: map[string]string{
				"name":    name,
				"addr":    *addr,
				"profile": *profile,
				"primary": *replicaOf,
			},
			Status:  status,
			Ready:   ready,
			Peers:   func() []admin.Peer { return peers },
			Promote: promote,
		})
		aln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hiserver: admin:", err)
			os.Exit(1)
		}
		go func() {
			if err := adm.Serve(aln); err != nil {
				fmt.Fprintln(os.Stderr, "hiserver: admin:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "hiserver: admin plane on http://%s (/metrics /statusz /traces /clusterz /healthz /debug/pprof)\n",
			aln.Addr())
	}

	// Periodic one-line operational summary; the ticker goroutine dies
	// with the process.
	if *statsEvery > 0 {
		go func() {
			tick := time.NewTicker(*statsEvery)
			defer tick.Stop()
			for range tick.C {
				fmt.Fprintf(os.Stderr, "hiserver: %s\n", statsLine())
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "hiserver: draining...")
		if err := srv.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "hiserver: drain:", err)
		}
	}()

	// SIGUSR1 promotes a replica process to primary (same path as the
	// admin plane's POST /promote).
	if promote != nil {
		promoteSig := make(chan os.Signal, 1)
		signal.Notify(promoteSig, syscall.SIGUSR1)
		go func() {
			for range promoteSig {
				if epoch, err := promote(); err != nil {
					fmt.Fprintln(os.Stderr, "hiserver: promote:", err)
				} else {
					fmt.Fprintf(os.Stderr, "hiserver: promoted to primary at epoch %d\n", epoch)
				}
			}
		}()
	}

	if follower != nil {
		fmt.Fprintf(os.Stderr, "hiserver: read replica of %s; listening on %s\n", *replicaOf, *addr)
	} else {
		fmt.Fprintf(os.Stderr, "hiserver: engines hiengine (default), innodb; listening on %s\n", *addr)
	}
	if sm := shardInfo(); sm != nil {
		fmt.Fprintf(os.Stderr, "hiserver: shard %d of %d (map version %d)\n", sm.SelfID, len(sm.Addrs), sm.Version)
	}
	if err := srv.ListenAndServe(*addr); err != nil {
		fmt.Fprintln(os.Stderr, "hiserver:", err)
		os.Exit(1)
	}
	// Serve returned after drain: wait for Close to finish tearing down,
	// then dump the full metrics snapshot so the run's numbers survive it.
	srv.Close()
	if adm != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		adm.Shutdown(ctx)
		cancel()
	}
	fmt.Fprintln(os.Stderr, "hiserver: final stats:", statsLine())
	fmt.Fprint(os.Stderr, reg.Snapshot().String())
	fmt.Fprintln(os.Stderr, "hiserver: drained, bye")
}
