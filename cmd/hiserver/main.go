// Command hiserver runs HiEngine as a network daemon: the cloud-service
// shape of the paper's Figure 3, one SQL frontend in front of registered
// storage engines, serving remote sessions over the internal/wire
// protocol. The storage-centric baseline is registered as a second engine
// (WITH ENGINE=innodb) so a remote session can drive the vertical
// multi-engine deployment.
//
// Usage:
//
//	hiserver -addr :7609
//	hishell -connect localhost:7609     # remote REPL
//	hibench -connect localhost:7609 ... # remote load
//
// SIGINT/SIGTERM triggers a graceful drain: the listener closes, new
// requests are refused with the fatal wire code, and in-flight commits
// finish durably before the process exits.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hiengine/internal/adapt"
	"hiengine/internal/baseline/innosim"
	"hiengine/internal/chaos"
	"hiengine/internal/core"
	"hiengine/internal/delay"
	"hiengine/internal/obs"
	"hiengine/internal/server"
	"hiengine/internal/sqlfront"
	"hiengine/internal/srss"
)

func main() {
	var (
		addr        = flag.String("addr", ":7609", "listen address")
		workers     = flag.Int("workers", 8, "engine worker slots (max concurrent transactions)")
		maxConns    = flag.Int("max-conns", 256, "max concurrent connections")
		maxInflight = flag.Int("max-inflight", 4096, "max admitted unanswered requests")
		drain       = flag.Duration("drain", 5*time.Second, "graceful-drain timeout on shutdown")
		profile     = flag.String("profile", "cloud", "latency model: cloud or zero")
	)
	flag.Parse()

	model := delay.CloudProfile()
	if *profile == "zero" {
		model = delay.Zero()
	}
	var eng *chaos.Engine
	if seed, ok := chaos.SeedFromEnv(); ok {
		eng = chaos.New(seed)
		fmt.Fprintf(os.Stderr, "hiserver: chaos enabled, seed %d\n", seed)
	}

	reg := obs.NewRegistry("hiserver")
	engine, err := core.Open(core.Config{
		Service: srss.New(srss.Config{Model: model, Chaos: eng}),
		Workers: *workers,
		Obs:     reg,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "hiserver:", err)
		os.Exit(1)
	}
	defer engine.Close()

	inno, err := innosim.New(innosim.Config{Service: srss.New(srss.Config{Model: model})})
	if err != nil {
		fmt.Fprintln(os.Stderr, "hiserver:", err)
		os.Exit(1)
	}
	defer inno.Close()

	front := sqlfront.NewFrontend("hiengine", adapt.New(engine))
	front.Register("innodb", inno)

	srv, err := server.New(server.Config{
		Frontend:     front,
		WorkerSlots:  engine.Workers(),
		MaxConns:     *maxConns,
		MaxInFlight:  *maxInflight,
		DrainTimeout: *drain,
		Obs:          reg,
		Chaos:        eng,
		Stats: func() string {
			s := engine.Stats()
			return fmt.Sprintf("commits=%d aborts=%d conflicts=%d reclaimed=%d checkpoints=%d compactions=%d log=%dB\n",
				s.Commits.Load(), s.Aborts.Load(), s.Conflicts.Load(),
				s.ReclaimedVersions.Load(), s.Checkpoints.Load(), s.Compactions.Load(),
				engine.Log().TotalBytes())
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "hiserver:", err)
		os.Exit(1)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "hiserver: draining...")
		if err := srv.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "hiserver: drain:", err)
		}
	}()

	fmt.Fprintf(os.Stderr, "hiserver: engines hiengine (default), innodb; listening on %s\n", *addr)
	if err := srv.ListenAndServe(*addr); err != nil {
		fmt.Fprintln(os.Stderr, "hiserver:", err)
		os.Exit(1)
	}
	// Serve returned after drain: wait for Close to finish tearing down.
	srv.Close()
	fmt.Fprintln(os.Stderr, "hiserver: drained, bye")
}
