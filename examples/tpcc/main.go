// TPC-C on HiEngine: loads the full nine-table schema and runs the standard
// five-transaction mix (NewOrder 45 / Payment 43 / OrderStatus 4 / Delivery
// 4 / StockLevel 4) with pipelined commits, then verifies the TPC-C
// consistency conditions.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"hiengine/internal/adapt"
	"hiengine/internal/core"
	"hiengine/internal/delay"
	"hiengine/internal/srss"
	"hiengine/internal/workload/tpcc"
)

func main() {
	var (
		warehouses = flag.Int("warehouses", 4, "warehouse count")
		threads    = flag.Int("threads", 4, "terminal threads (bound to warehouses)")
		duration   = flag.Duration("duration", 3*time.Second, "measurement duration")
		full       = flag.Bool("full-scale", false, "specification-scale data (100k items, 3k customers/district)")
	)
	flag.Parse()

	engine, err := core.Open(core.Config{
		Service: srss.New(srss.Config{Model: delay.CloudProfile()}),
		Workers: *threads + 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer engine.Close()
	db := adapt.New(engine)

	scale := tpcc.BenchScale()
	if *full {
		scale = tpcc.FullScale()
	}
	fmt.Printf("loading %d warehouses (%d items, %d customers/district)...\n",
		*warehouses, scale.Items, scale.Customers)
	start := time.Now()
	if err := tpcc.Load(db, *warehouses, scale, *threads); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded in %v (%0.1f MB of log)\n",
		time.Since(start).Round(time.Millisecond),
		float64(engine.Log().TotalBytes())/(1<<20))

	driver := tpcc.NewDriver(tpcc.Config{
		DB:            db,
		Warehouses:    *warehouses,
		Threads:       *threads,
		Scale:         scale,
		Duration:      *duration,
		Partitioned:   true,
		PipelineDepth: 8,
	})
	fmt.Printf("running the 45/43/4/4/4 mix for %v...\n", *duration)
	res, err := driver.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res)
	fmt.Printf("engine: %d commits, %d aborts, %d conflicts, %d versions reclaimed\n",
		engine.Stats().Commits.Load(), engine.Stats().Aborts.Load(),
		engine.Stats().Conflicts.Load(), engine.Stats().ReclaimedVersions.Load())

	if err := driver.Verify(); err != nil {
		log.Fatalf("TPC-C consistency check failed: %v", err)
	}
	fmt.Println("TPC-C consistency conditions hold")
}
