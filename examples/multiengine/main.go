// Multi-engine deployment (Figure 3, left): one MySQL-flavored SQL layer in
// front of two storage engines. Hot tables are declared WITH
// ENGINE=hiengine; cold tables stay on the InnoDB-like storage-centric
// engine. The example measures the commit-latency gap between the two
// engines under the same cloud latency profile -- the core argument for
// compute-side persistence.
package main

import (
	"fmt"
	"log"
	"time"

	"hiengine/internal/adapt"
	"hiengine/internal/baseline/innosim"
	"hiengine/internal/core"
	"hiengine/internal/delay"
	"hiengine/internal/sqlfront"
	"hiengine/internal/srss"
)

func main() {
	model := delay.CloudProfile()
	engine, err := core.Open(core.Config{Service: srss.New(srss.Config{Model: model}), Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer engine.Close()
	inno, err := innosim.New(innosim.Config{Service: srss.New(srss.Config{Model: model}), BatchMax: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer inno.Close()

	front := sqlfront.NewFrontend("hiengine", adapt.New(engine))
	front.Register("innodb", inno)
	sess := front.NewSession(0)

	mustExec := func(sql string, args ...core.Value) *sqlfront.Result {
		res, err := sess.Exec(sql, args...)
		if err != nil {
			log.Fatalf("%s: %v", sql, err)
		}
		return res
	}

	mustExec("CREATE TABLE orders_hot (id INT, item TEXT, qty INT, PRIMARY KEY(id)) WITH ENGINE=hiengine")
	mustExec("CREATE TABLE orders_archive (id INT, item TEXT, qty INT, PRIMARY KEY(id)) WITH ENGINE=innodb")
	fmt.Println("created orders_hot (hiengine) and orders_archive (innodb) behind one SQL layer")

	// Same statements, different engines, one session.
	timeInserts := func(table string, n int) time.Duration {
		ins, err := sess.Prepare(fmt.Sprintf("INSERT INTO %s VALUES (?, ?, ?)", table))
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		for i := 0; i < n; i++ {
			if _, err := ins.Exec(core.I(int64(i)), core.S("widget"), core.I(int64(i%7))); err != nil {
				log.Fatal(err)
			}
		}
		return time.Since(start) / time.Duration(n)
	}
	const n = 200
	hot := timeInserts("orders_hot", n)
	cold := timeInserts("orders_archive", n)
	fmt.Printf("avg commit latency: hiengine %v vs innodb %v (%.1fx) -- compute-side vs cross-layer persistence\n",
		hot.Round(time.Microsecond), cold.Round(time.Microsecond), float64(cold)/float64(hot))

	// Reads route transparently.
	r1 := mustExec("SELECT item, qty FROM orders_hot WHERE id = 42")
	r2 := mustExec("SELECT item, qty FROM orders_archive WHERE id = 42")
	fmt.Printf("orders_hot[42] = %v; orders_archive[42] = %v\n", r1.Rows[0], r2.Rows[0])

	// Transactions bind to one engine; spanning both is rejected
	// (Section 3.4's current limitation).
	mustExec("BEGIN")
	mustExec("INSERT INTO orders_hot VALUES (1000, 'txn', 1)")
	if _, err := sess.Exec("INSERT INTO orders_archive VALUES (1000, 'txn', 1)"); err != nil {
		fmt.Printf("cross-engine statement rejected as expected: %v\n", err)
	}
	mustExec("ROLLBACK")

	r3 := mustExec("SELECT * FROM orders_hot WHERE id = 1000")
	fmt.Printf("after rollback, orders_hot[1000] has %d rows\n", len(r3.Rows))
}
