// Read-only replicas (Section 3.1): spawn additional compute-side instances
// on demand from the shared log. The replica recovers from the primary's
// manifest (dataless: pointers only), then follows the log with CatchUp;
// freshness is whatever the catch-up cadence buys. Meanwhile the primary
// destages sealed log segments to the storage tier in the background for
// archival and cross-AZ reliability.
package main

import (
	"errors"
	"fmt"
	"log"

	"hiengine/internal/core"
	"hiengine/internal/srss"
)

func main() {
	svc := srss.New(srss.Config{})
	primary, err := core.Open(core.Config{Name: "primary", Service: svc, Workers: 4, SegmentSize: 1 << 20})
	if err != nil {
		log.Fatal(err)
	}
	defer primary.Close()

	tbl, err := primary.CreateTable(&core.Schema{
		Name: "readings",
		Columns: []core.Column{
			{Name: "sensor", Kind: core.KindInt},
			{Name: "value", Kind: core.KindFloat},
		},
		Indexes: []core.IndexDef{{Name: "pk", Columns: []int{0}, Unique: true}},
	})
	if err != nil {
		log.Fatal(err)
	}
	write := func(sensor int64, value float64) {
		tx, _ := primary.Begin(0)
		if _, _, err := tx.GetByKey(tbl, 0, core.I(sensor)); errors.Is(err, core.ErrNotFound) {
			_, err = tx.Insert(tbl, core.Row{core.I(sensor), core.F(value)})
			if err != nil {
				log.Fatal(err)
			}
		} else {
			rid, _, _ := tx.GetByKey(tbl, 0, core.I(sensor))
			if err := tx.Update(tbl, rid, core.Row{core.I(sensor), core.F(value)}); err != nil {
				log.Fatal(err)
			}
		}
		if err := tx.Commit(); err != nil {
			log.Fatal(err)
		}
	}
	for i := int64(0); i < 1000; i++ {
		write(i%100, float64(i))
	}
	if _, err := primary.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("primary: 1000 writes committed, checkpoint taken")

	// Spawn a replica from the shared log.
	rep, stats, err := core.OpenReplica(core.Config{Name: "replica", Service: svc, Workers: 2, SegmentSize: 1 << 20},
		primary.ManifestID(), core.RecoverOptions{ReplayThreads: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer rep.Close()
	fmt.Printf("replica spawned: checkpoint entries=%d, segments skipped=%d, replay %v\n",
		stats.CheckpointEntries, stats.SegmentsSkipped, stats.ReplayDuration)

	rtbl, _ := rep.Engine().Table("readings")
	readReplica := func(sensor int64) (float64, bool) {
		tx, _ := rep.Engine().Begin(0)
		defer tx.Commit()
		_, row, err := tx.GetByKey(rtbl, 0, core.I(sensor))
		if err != nil {
			return 0, false
		}
		return row[1].Float(), true
	}
	v, _ := readReplica(42)
	fmt.Printf("replica reads sensor 42 = %.0f\n", v)

	// Primary keeps writing; the replica lags until it catches up.
	for i := int64(1000); i < 1500; i++ {
		write(i%100, float64(i))
	}
	stale, _ := readReplica(42)
	n, err := rep.CatchUp()
	if err != nil {
		log.Fatal(err)
	}
	fresh, _ := readReplica(42)
	fmt.Printf("sensor 42: replica lagged at %.0f, caught up %d records, now %.0f (applied CSN %d)\n",
		stale, n, fresh, rep.AppliedCSN())

	// Writes on the replica are rejected.
	tx, _ := rep.Engine().Begin(1)
	if _, err := tx.Insert(rtbl, core.Row{core.I(9999), core.F(0)}); !errors.Is(err, core.ErrReadOnlyReplica) {
		log.Fatalf("replica accepted a write: %v", err)
	}
	tx.Commit()
	fmt.Println("replica rejects writes (read-only)")

	// Background destaging: sealed segments are archived to the storage
	// tier while compute-side copies keep serving reads.
	segs, err := primary.DestageLog()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("destaged %d sealed log segments to the storage tier (%d storage-tier PLogs total)\n",
		segs, len(svc.List(srss.TierStorage)))
}
