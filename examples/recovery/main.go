// Recovery walkthrough: demonstrates HiEngine's "log is the database"
// durability pipeline end to end -- redo-only multi-stream logging, a
// dataless checkpoint, a simulated compute-node failure mid-write (the
// SRSS PLog seals and the log manager retries on fresh replicas), a crash,
// and parallel newest-CSN-wins replay that reconstructs the indirection
// arrays without loading record data.
package main

import (
	"fmt"
	"log"

	"hiengine/internal/core"
	"hiengine/internal/srss"
)

func main() {
	svc := srss.New(srss.Config{ComputeNodes: 4})
	engine, err := core.Open(core.Config{Service: svc, Workers: 4, SegmentSize: 1 << 20})
	if err != nil {
		log.Fatal(err)
	}

	schema := &core.Schema{
		Name: "events",
		Columns: []core.Column{
			{Name: "id", Kind: core.KindInt},
			{Name: "kind", Kind: core.KindString},
			{Name: "payload", Kind: core.KindString},
		},
		Indexes: []core.IndexDef{{Name: "pk", Columns: []int{0}, Unique: true}},
	}
	events, err := engine.CreateTable(schema)
	if err != nil {
		log.Fatal(err)
	}

	// Phase 1: committed data before the checkpoint.
	for i := int64(0); i < 500; i++ {
		tx, _ := engine.Begin(int(i % 4))
		if _, err := tx.Insert(events, core.Row{core.I(i), core.S("pre"), core.S("checkpointed")}); err != nil {
			log.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			log.Fatal(err)
		}
	}
	csn, err := engine.Checkpoint()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataless checkpoint at CSN %d (only PIA entries were persisted)\n", csn)

	// Phase 2: a compute node fails mid-traffic. Appends to PLogs hosted
	// on it seal; the log manager transparently rotates to segments on
	// healthy replicas (Section 2.2's seal-and-retry contract).
	svc.ComputeNode(0).Fail()
	fmt.Println("compute node 0 FAILED; continuing to commit through surviving replicas")
	for i := int64(500); i < 800; i++ {
		tx, _ := engine.Begin(int(i % 4))
		if _, err := tx.Insert(events, core.Row{core.I(i), core.S("post"), core.S("survived node failure")}); err != nil {
			log.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			log.Fatal(err)
		}
	}
	// Update a slice of pre-checkpoint rows so replay must override
	// checkpointed addresses (newest-CSN-wins).
	for i := int64(0); i < 100; i += 10 {
		tx, _ := engine.Begin(0)
		rid, _, err := tx.GetByKey(events, 0, core.I(i))
		if err != nil {
			log.Fatal(err)
		}
		if err := tx.Update(events, rid, core.Row{core.I(i), core.S("pre"), core.S("updated after ckpt")}); err != nil {
			log.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			log.Fatal(err)
		}
	}

	// Phase 3: a transaction that never commits -- it must not survive.
	tx, _ := engine.Begin(1)
	if _, err := tx.Insert(events, core.Row{core.I(9999), core.S("ghost"), core.S("uncommitted")}); err != nil {
		log.Fatal(err)
	}
	manifest := engine.ManifestID()
	engine.Close()
	fmt.Println("CRASH (one transaction was left uncommitted)")

	// Phase 4: recover with parallel replay.
	engine2, stats, err := core.Recover(core.Config{Service: svc, Workers: 4, SegmentSize: 1 << 20},
		manifest, core.RecoverOptions{ReplayThreads: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer engine2.Close()
	fmt.Printf("recovered: checkpoint entries=%d, segments=%d, records scanned=%d applied=%d\n",
		stats.CheckpointEntries, stats.SegmentsScanned, stats.RecordsScanned, stats.RecordsApplied)
	fmt.Printf("replay %v (PIAs only), index rebuild %v\n", stats.ReplayDuration, stats.IndexDuration)

	events2, _ := engine2.Table("events")
	check, _ := engine2.Begin(0)
	count := 0
	updated := 0
	check.ScanKey(events2, 0, nil, nil, func(_ core.RID, row core.Row) bool {
		count++
		if row[2].Str() == "updated after ckpt" {
			updated++
		}
		if row[1].Str() == "ghost" {
			log.Fatal("uncommitted data resurrected!")
		}
		return true
	})
	check.Commit()
	fmt.Printf("recovered %d rows (%d post-checkpoint updates won over checkpointed versions)\n", count, updated)
	if count != 800 || updated != 10 {
		log.Fatalf("unexpected recovered state: count=%d updated=%d", count, updated)
	}
	fmt.Println("state verified: committed data intact, uncommitted data gone")
}
