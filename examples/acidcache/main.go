// ACID cache (Figure 3, right): HiEngine deployed as a transparent
// transactional cache in front of the storage-centric engine. Cold rows
// fault in on first access (installed as bulk-loaded data, visible to every
// snapshot), hot traffic runs at memory speed with snapshot isolation, and
// committed changes propagate to the backing engine (write-through here;
// write-behind also supported).
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"hiengine/internal/adapt"
	"hiengine/internal/baseline/innosim"
	"hiengine/internal/cache"
	"hiengine/internal/core"
	"hiengine/internal/delay"
	"hiengine/internal/engineapi"
	"hiengine/internal/srss"
)

func main() {
	model := delay.CloudProfile()
	front, err := core.Open(core.Config{Service: srss.New(srss.Config{Model: model}), Workers: 8})
	if err != nil {
		log.Fatal(err)
	}
	defer front.Close()
	back, err := innosim.New(innosim.Config{Service: srss.New(srss.Config{Model: model}), BatchMax: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer back.Close()

	db, err := cache.New(cache.Config{Front: adapt.New(front), Back: back, Mode: cache.WriteThrough})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	schema := &core.Schema{
		Name: "catalog",
		Columns: []core.Column{
			{Name: "sku", Kind: core.KindInt},
			{Name: "name", Kind: core.KindString},
			{Name: "stock", Kind: core.KindInt},
		},
		Indexes: []core.IndexDef{{Name: "pk", Columns: []int{0}, Unique: true}},
	}
	if err := db.CreateTable(schema); err != nil {
		log.Fatal(err)
	}

	// Seed "legacy" data directly in the backing engine: this is the
	// pre-existing dataset the cache sits in front of.
	for i := 0; i < 1000; i++ {
		tx, _ := back.Begin(0)
		if err := tx.Insert("catalog", core.Row{core.I(int64(i)), core.S(fmt.Sprintf("sku-%d", i)), core.I(100)}); err != nil {
			log.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("seeded 1000 rows directly in the backing (InnoDB-like) engine")

	// First access: cold, faults in from the back.
	t0 := time.Now()
	tx, _ := db.Begin(0)
	row, err := tx.GetByKey("catalog", 0, core.I(42))
	if err != nil {
		log.Fatal(err)
	}
	tx.Commit()
	cold := time.Since(t0)

	// Hot accesses: served from HiEngine.
	t0 = time.Now()
	const hotReads = 200
	for i := 0; i < hotReads; i++ {
		tx, _ := db.Begin(0)
		if _, err := tx.GetByKey("catalog", 0, core.I(42)); err != nil {
			log.Fatal(err)
		}
		tx.Commit()
	}
	hot := time.Since(t0) / hotReads
	fmt.Printf("row %v: cold read %v (fault-in), hot read %v (%.0fx faster)\n",
		row[1].Str(), cold.Round(time.Microsecond), hot.Round(time.Microsecond), float64(cold)/float64(hot))

	// Transactional decrement through the cache, write-through to the back.
	tx2, _ := db.Begin(1)
	row, _ = tx2.GetByKey("catalog", 0, core.I(42))
	if err := tx2.UpdateByKey("catalog", 0, []core.Value{core.I(42)},
		core.Row{core.I(42), row[1], core.I(row[2].Int() - 1)}); err != nil {
		log.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		log.Fatal(err)
	}
	// Verify the backing engine saw the committed post-image.
	btx, _ := back.Begin(1)
	brow, err := btx.GetByKey("catalog", 0, core.I(42))
	if err != nil {
		log.Fatal(err)
	}
	btx.Commit()
	fmt.Printf("after cached txn: back engine stock = %d (write-through)\n", brow[2].Int())

	// Conflicts behave transactionally through the cache.
	c1, _ := db.Begin(2)
	c2, _ := db.Begin(3)
	_ = mustUpdate(c1, 42, 90)
	if err := mustUpdate(c2, 42, 80); !errors.Is(err, engineapi.ErrConflict) {
		log.Fatalf("expected conflict, got %v", err)
	}
	if err := c1.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("write-write conflict through the cache aborted the loser (first committer wins)")

	// Preload enables scans.
	n, err := db.Preload("catalog")
	if err != nil {
		log.Fatal(err)
	}
	tx3, _ := db.Begin(0)
	count := 0
	tx3.ScanPrefix("catalog", 0, nil, func(core.Row) bool { count++; return true })
	tx3.Commit()
	fmt.Printf("preloaded %d additional rows; full scan through the cache sees %d rows\n", n, count)
}

func mustUpdate(tx engineapi.Txn, sku, stock int64) error {
	row, err := tx.GetByKey("catalog", 0, core.I(sku))
	if err != nil {
		return err
	}
	return tx.UpdateByKey("catalog", 0, []core.Value{core.I(sku)},
		core.Row{core.I(sku), row[1], core.I(stock)})
}
