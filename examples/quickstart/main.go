// Quickstart: open a HiEngine instance, create a table, and run
// transactions against the core engine API -- snapshot-isolated MVCC over
// "the log is the database" storage with compute-side persistence.
package main

import (
	"errors"
	"fmt"
	"log"

	"hiengine/internal/core"
	"hiengine/internal/delay"
	"hiengine/internal/srss"
)

func main() {
	// A simulated cloud deployment: three compute nodes with persistent
	// memory, three storage nodes, realistic latencies.
	svc := srss.New(srss.Config{Model: delay.CloudProfile()})
	engine, err := core.Open(core.Config{Service: svc, Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer engine.Close()

	accounts, err := engine.CreateTable(&core.Schema{
		Name: "accounts",
		Columns: []core.Column{
			{Name: "id", Kind: core.KindInt},
			{Name: "owner", Kind: core.KindString},
			{Name: "balance", Kind: core.KindInt},
		},
		Indexes: []core.IndexDef{
			{Name: "pk", Columns: []int{0}, Unique: true},
			{Name: "by_owner", Columns: []int{1}},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Insert two accounts. Commit returns once the redo log is persisted
	// and replicated across the compute tier (microseconds, not a storage
	// round trip).
	tx, _ := engine.Begin(0)
	ada, err := tx.Insert(accounts, core.Row{core.I(1), core.S("ada"), core.I(100)})
	if err != nil {
		log.Fatal(err)
	}
	bob, err := tx.Insert(accounts, core.Row{core.I(2), core.S("bob"), core.I(50)})
	if err != nil {
		log.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inserted accounts at RIDs %v and %v\n", ada, bob)

	// A snapshot reader does not observe a concurrent transfer.
	reader, _ := engine.Begin(1)
	transfer, _ := engine.Begin(2)
	row, _ := transfer.Get(accounts, ada)
	_ = transfer.Update(accounts, ada, core.Row{core.I(1), core.S("ada"), core.I(row[2].Int() - 30)})
	row, _ = transfer.Get(accounts, bob)
	_ = transfer.Update(accounts, bob, core.Row{core.I(2), core.S("bob"), core.I(row[2].Int() + 30)})
	if err := transfer.Commit(); err != nil {
		log.Fatal(err)
	}
	row, _ = reader.Get(accounts, ada)
	fmt.Printf("snapshot reader still sees ada = %d (transfer committed meanwhile)\n", row[2].Int())
	reader.Commit()

	// A fresh transaction sees the transfer; lookups go through the
	// primary index.
	fresh, _ := engine.Begin(1)
	_, row, err = fresh.GetByKey(accounts, 0, core.I(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fresh reader sees ada = %d\n", row[2].Int())

	// Secondary-index scan.
	fmt.Println("accounts by owner:")
	_ = fresh.ScanKey(accounts, 1, nil, nil, func(_ core.RID, row core.Row) bool {
		fmt.Printf("  %-4s balance=%d\n", row[1].Str(), row[2].Int())
		return true
	})
	fresh.Commit()

	// Write-write conflicts abort under first-committer-wins.
	t1, _ := engine.Begin(1)
	t2, _ := engine.Begin(2)
	_ = t1.Update(accounts, ada, core.Row{core.I(1), core.S("ada"), core.I(1000)})
	err = t2.Update(accounts, ada, core.Row{core.I(1), core.S("ada"), core.I(2000)})
	fmt.Printf("concurrent writer got: %v\n", err)
	if !errors.Is(err, core.ErrConflict) {
		log.Fatal("expected a write-write conflict")
	}
	if err := t1.Commit(); err != nil {
		log.Fatal(err)
	}

	// The engine's dataless checkpoint persists only indirection arrays.
	csn, err := engine.Checkpoint()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataless checkpoint at CSN %d; log holds %d bytes\n", csn, engine.Log().TotalBytes())
	fmt.Printf("engine stats: %d commits, %d aborts\n",
		engine.Stats().Commits.Load(), engine.Stats().Aborts.Load())
}
