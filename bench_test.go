// Package hiengine_test holds the repository-level benchmark harness: one
// benchmark per table/figure of the paper's evaluation (Section 6) plus the
// ablation benchmarks for the design decisions called out in DESIGN.md.
// Full figure regeneration (sweeps, series, expected-shape comparisons) is
// cmd/hibench; these benchmarks measure the per-operation cost of each
// figure's workload unit so `go test -bench` gives ns/op and allocs for the
// same code paths.
package hiengine_test

import (
	"fmt"
	"testing"
	"time"

	"hiengine/internal/adapt"
	"hiengine/internal/baseline/innosim"
	"hiengine/internal/baseline/memocc"
	"hiengine/internal/bench"
	"hiengine/internal/clock"
	"hiengine/internal/core"
	"hiengine/internal/delay"
	"hiengine/internal/engineapi"
	"hiengine/internal/index"
	"hiengine/internal/numa"
	"hiengine/internal/pia"
	"hiengine/internal/sqlfront"
	"hiengine/internal/srss"
	"hiengine/internal/workload/tpcc"
)

// --- Table 1 ---------------------------------------------------------------

func BenchmarkTable1Architectures(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := bench.Table1(bench.Options{Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Rows) != 9 {
			b.Fatal("bad table")
		}
	}
}

// --- Figure 5: sysbench through the SQL layer -------------------------------

func fig5Frontend(b *testing.B, engine string) *sqlfront.Frontend {
	b.Helper()
	model := delay.CloudProfile()
	var db engineapi.DB
	switch engine {
	case "hiengine":
		e, err := core.Open(core.Config{Service: srss.New(srss.Config{Model: model}), Workers: 32})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(e.Close)
		db = adapt.New(e)
	case "dbms-t":
		d, err := innosim.New(innosim.Config{Service: srss.New(srss.Config{Model: model})})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(d.Close)
		db = d
	case "mysql":
		d, err := innosim.New(innosim.Config{Service: srss.New(srss.Config{Model: model}),
			Variant: innosim.VariantMySQL})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(d.Close)
		db = d
	}
	front := sqlfront.NewFrontend(engine, db)
	sess := front.NewSession(0)
	if _, err := sess.Exec("CREATE TABLE sbtest (id INT, k INT, c TEXT, pad TEXT, PRIMARY KEY(id))"); err != nil {
		b.Fatal(err)
	}
	ins, err := sess.Prepare("INSERT INTO sbtest VALUES (?, ?, ?, ?)")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if _, err := ins.Exec(core.I(int64(i+1)), core.I(int64(i%97)),
			core.S("sysbench-value"), core.S("pad")); err != nil {
			b.Fatal(err)
		}
	}
	return front
}

func BenchmarkFig5aInterpreted(b *testing.B) {
	for _, engine := range []string{"hiengine", "dbms-t", "mysql"} {
		for _, mode := range []string{"read", "write"} {
			b.Run(engine+"/"+mode, func(b *testing.B) {
				front := fig5Frontend(b, engine)
				sess := front.NewSession(1)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					id := core.I(int64(i%1000 + 1))
					var err error
					if mode == "write" {
						_, err = sess.Exec("UPDATE sbtest SET c = ? WHERE id = ?", core.S("v"), id)
					} else {
						_, err = sess.Exec("SELECT c FROM sbtest WHERE id = ?", id)
					}
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkFig5bCompiled(b *testing.B) {
	for _, engine := range []string{"hiengine", "dbms-t", "mysql"} {
		for _, mode := range []string{"read", "write"} {
			b.Run(engine+"/"+mode, func(b *testing.B) {
				front := fig5Frontend(b, engine)
				sess := front.NewSession(1)
				sel, err := sess.Prepare("SELECT c FROM sbtest WHERE id = ?")
				if err != nil {
					b.Fatal(err)
				}
				upd, err := sess.Prepare("UPDATE sbtest SET c = ? WHERE id = ?")
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					id := core.I(int64(i%1000 + 1))
					if mode == "write" {
						_, err = upd.Exec(core.S("v"), id)
					} else {
						_, err = sel.Exec(id)
					}
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- Figure 6/7: TPC-C transaction units ------------------------------------

func tpccDriver(b *testing.B, engine string) *tpcc.Driver {
	b.Helper()
	model := delay.CloudProfile()
	var db engineapi.DB
	pipeline := 0
	switch engine {
	case "hiengine":
		e, err := core.Open(core.Config{Service: srss.New(srss.Config{Model: model}),
			Workers: 8, SegmentSize: 64 << 20})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(e.Close)
		db = adapt.New(e)
		pipeline = 8
	case "dbms-m":
		d, err := memocc.New(memocc.Config{Service: srss.New(srss.Config{Model: model}),
			Workers: 8, SegmentSize: 64 << 20})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(d.Close)
		db = d
	}
	sc := tpcc.SmallScale()
	if err := tpcc.Load(db, 2, sc, 4); err != nil {
		b.Fatal(err)
	}
	return tpcc.NewDriver(tpcc.Config{
		DB: db, Warehouses: 2, Threads: 1, Scale: sc,
		Partitioned: true, PipelineDepth: pipeline, Seed: 1,
	})
}

func BenchmarkFig6TPCC(b *testing.B) {
	for _, engine := range []string{"hiengine", "dbms-m"} {
		for _, tt := range []tpcc.TxnType{tpcc.TxnNewOrder, tpcc.TxnPayment} {
			b.Run(fmt.Sprintf("%s/%v", engine, tt), func(b *testing.B) {
				d := tpccDriver(b, engine)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := d.RunOne(0, tt, 0); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				if err := d.DrainSessions(); err != nil {
					b.Fatal(err)
				}
			})
		}
	}
}

func BenchmarkFig7NumaAccess(b *testing.B) {
	topo := numa.ARMKunpeng920()
	acct := numa.NewAccountant(topo, nil)
	cases := []struct {
		name string
		core numa.Core
		die  int
	}{
		{"local", topo.Core(0), 0},
		{"remote-die", topo.Core(0), 1},
		{"remote-socket", topo.Core(0), 2},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				acct.Access(c.core, c.die)
			}
		})
	}
}

// --- Figure 8: recovery ------------------------------------------------------

func BenchmarkFig8Recovery(b *testing.B) {
	// One shared crashed instance; each iteration recovers it fully.
	svc := srss.New(srss.Config{})
	e, err := core.Open(core.Config{Service: svc, Workers: 8, SegmentSize: 2 << 20})
	if err != nil {
		b.Fatal(err)
	}
	db := adapt.New(e)
	sc := tpcc.SmallScale()
	if err := tpcc.Load(db, 2, sc, 4); err != nil {
		b.Fatal(err)
	}
	d := tpcc.NewDriver(tpcc.Config{DB: db, Warehouses: 2, Threads: 4, Scale: sc,
		Duration: 300 * time.Millisecond, Partitioned: true})
	if _, err := d.Run(); err != nil {
		b.Fatal(err)
	}
	manifest := e.ManifestID()
	e.Close()

	for _, threads := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("replay-threads-%d", threads), func(b *testing.B) {
			var records int64
			for i := 0; i < b.N; i++ {
				e2, stats, err := core.Recover(core.Config{Service: svc, Workers: 2, SegmentSize: 2 << 20},
					manifest, core.RecoverOptions{ReplayThreads: threads, SkipIndexRebuild: true})
				if err != nil {
					b.Fatal(err)
				}
				records = stats.RecordsScanned
				e2.Close()
			}
			b.ReportMetric(float64(records), "records")
		})
	}
}

// --- Section 5.3: clocks -------------------------------------------------------

func BenchmarkClockGrant(b *testing.B) {
	b.Run("logical-rdma-3nodes", func(b *testing.B) {
		lc := clock.NewLogicalClock(&delay.Model{RDMAFetchAdd: 40 * time.Microsecond}, nil, 1_500_000)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			lc.Next()
		}
	})
	b.Run("global-eps10us", func(b *testing.B) {
		gc := clock.NewGlobalClock(10*time.Microsecond, nil)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			gc.Next()
		}
	})
	b.Run("global-eps20us", func(b *testing.B) {
		gc := clock.NewGlobalClock(20*time.Microsecond, nil)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			gc.Next()
		}
	})
	b.Run("local-counter", func(b *testing.B) {
		c := clock.NewCounter(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Next()
		}
	})
}

// --- Ablation: PIA vs alternatives (DESIGN.md #1) ----------------------------

func BenchmarkAblationPIA(b *testing.B) {
	const n = 1 << 16
	type rec struct{ v int64 }
	b.Run("pia", func(b *testing.B) {
		m := pia.New[rec](pia.Config{SlotBits: 20})
		rids := make([]pia.RID, n)
		for i := 0; i < n; i++ {
			rids[i], _ = m.Alloc()
			m.Store(rids[i], &rec{v: int64(i)})
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if m.Get(rids[i&(n-1)]) == nil {
				b.Fatal("miss")
			}
		}
	})
	b.Run("gomap", func(b *testing.B) {
		m := make(map[uint64]*rec, n)
		for i := 0; i < n; i++ {
			m[uint64(i)] = &rec{v: int64(i)}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if m[uint64(i&(n-1))] == nil {
				b.Fatal("miss")
			}
		}
	})
	b.Run("static-slice", func(b *testing.B) {
		m := make([]*rec, n)
		for i := 0; i < n; i++ {
			m[i] = &rec{v: int64(i)}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if m[i&(n-1)] == nil {
				b.Fatal("miss")
			}
		}
	})
}

// --- Ablation: commit pipelining (DESIGN.md #2) --------------------------------

func ablationEngine(b *testing.B, tier srss.Tier, batch int) (*core.Engine, *core.Table) {
	b.Helper()
	e, err := core.Open(core.Config{
		Service:          srss.New(srss.Config{Model: delay.CloudProfile()}),
		Workers:          64,
		LogTier:          tier,
		GroupCommitBatch: batch,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(e.Close)
	tbl, err := e.CreateTable(&core.Schema{
		Name:    "t",
		Columns: []core.Column{{Name: "id", Kind: core.KindInt}, {Name: "v", Kind: core.KindString}},
		Indexes: []core.IndexDef{{Name: "pk", Columns: []int{0}, Unique: true}},
	})
	if err != nil {
		b.Fatal(err)
	}
	return e, tbl
}

func BenchmarkAblationPipeline(b *testing.B) {
	b.Run("sync-commit", func(b *testing.B) {
		e, tbl := ablationEngine(b, srss.TierCompute, 64)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tx, err := e.Begin(0)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := tx.Insert(tbl, core.Row{core.I(int64(i)), core.S("v")}); err != nil {
				b.Fatal(err)
			}
			if err := tx.Commit(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pipelined-commit", func(b *testing.B) {
		e, tbl := ablationEngine(b, srss.TierCompute, 64)
		window := make(chan struct{}, 8)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tx, err := e.Begin(0)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := tx.Insert(tbl, core.Row{core.I(int64(i)), core.S("v")}); err != nil {
				b.Fatal(err)
			}
			window <- struct{}{}
			if err := tx.CommitAsync(func(error) { <-window }); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		for i := 0; i < cap(window); i++ {
			window <- struct{}{}
		}
	})
}

// --- Ablation: compute-side vs storage-side commit (DESIGN.md #3) ---------------

func BenchmarkAblationCommitSide(b *testing.B) {
	for _, c := range []struct {
		name string
		tier srss.Tier
	}{{"compute-side", srss.TierCompute}, {"storage-side", srss.TierStorage}} {
		b.Run(c.name, func(b *testing.B) {
			e, tbl := ablationEngine(b, c.tier, 64)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tx, err := e.Begin(0)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := tx.Insert(tbl, core.Row{core.I(int64(i)), core.S("v")}); err != nil {
					b.Fatal(err)
				}
				if err := tx.Commit(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablation: dataless vs full-data checkpoint (DESIGN.md #4) ------------------

func BenchmarkAblationCheckpoint(b *testing.B) {
	setup := func(b *testing.B) (*core.Engine, *core.Table) {
		e, tbl := ablationEngine(b, srss.TierCompute, 64)
		for i := 0; i < 20000; i++ {
			tx, _ := e.Begin(0)
			if _, err := tx.Insert(tbl, core.Row{core.I(int64(i)), core.S("payload-payload-payload-payload")}); err != nil {
				b.Fatal(err)
			}
			if err := tx.Commit(); err != nil {
				b.Fatal(err)
			}
		}
		return e, tbl
	}
	b.Run("dataless", func(b *testing.B) {
		e, _ := setup(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.Checkpoint(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full-data", func(b *testing.B) {
		// What a conventional checkpoint would write: every live row's
		// payload, not just its address.
		e, tbl := setup(b)
		svc := e.Service()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			plog, err := svc.Create(srss.TierCompute)
			if err != nil {
				b.Fatal(err)
			}
			tx, _ := e.Begin(1)
			buf := make([]byte, 0, 64<<10)
			err = tx.ScanKey(tbl, 0, nil, nil, func(_ core.RID, row core.Row) bool {
				buf = core.EncodeRow(buf, row)
				if len(buf) >= 64<<10 {
					if _, err := plog.Append(buf); err != nil {
						b.Fatal(err)
					}
					buf = buf[:0]
				}
				return true
			})
			if err != nil {
				b.Fatal(err)
			}
			if len(buf) > 0 {
				if _, err := plog.Append(buf); err != nil {
					b.Fatal(err)
				}
			}
			tx.Commit()
			svc.Delete(plog.ID())
		}
	})
}

// --- Ablation: group commit batch size (DESIGN.md #6) ---------------------------

// Group commit engages when multiple in-flight commits share one log stream
// (the paper's per-core I/O thread serving a pipelining worker), so the
// ablation drives one worker with a deep pipeline and varies the batch cap.
func BenchmarkAblationGroupCommit(b *testing.B) {
	for _, batch := range []int{1, 16, 64} {
		b.Run(fmt.Sprintf("batch-%d", batch), func(b *testing.B) {
			e, tbl := ablationEngine(b, srss.TierCompute, batch)
			window := make(chan struct{}, 32)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tx, err := e.Begin(0)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := tx.Insert(tbl, core.Row{core.I(int64(i)), core.S("v")}); err != nil {
					b.Fatal(err)
				}
				window <- struct{}{}
				if err := tx.CommitAsync(func(error) { <-window }); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			for i := 0; i < cap(window); i++ {
				window <- struct{}{}
			}
		})
	}
}

// --- Ablation: LSM index component count ----------------------------------------

func BenchmarkAblationIndexComponents(b *testing.B) {
	build := func(b *testing.B, freezes int) *index.Index {
		svc := srss.New(srss.Config{})
		ix := index.New(index.Config{Service: svc})
		per := 30000 / (freezes + 1)
		n := 0
		for f := 0; f <= freezes; f++ {
			for i := 0; i < per; i++ {
				key := core.EncodeKey(nil, core.I(int64(n)))
				if err := ix.Insert(key, uint64(n+1)); err != nil {
					b.Fatal(err)
				}
				n++
			}
			if f < freezes {
				if err := ix.Freeze(); err != nil {
					b.Fatal(err)
				}
			}
		}
		return ix
	}
	for _, comps := range []int{0, 1, 3} {
		b.Run(fmt.Sprintf("frozen-components-%d", comps), func(b *testing.B) {
			ix := build(b, comps)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				key := core.EncodeKey(nil, core.I(int64(i%30000)))
				if _, ok, err := ix.Get(key); err != nil || !ok {
					b.Fatalf("miss at %d: %v", i%30000, err)
				}
			}
		})
	}
}
