module hiengine

go 1.22
