// Package engineapi defines the engine-neutral transactional interface that
// the workload drivers (sysbench, TPC-C) run against. HiEngine, the
// storage-centric baseline (innosim, standing in for InnoDB-backed DBMS-T
// and vanilla MySQL) and the memory-optimized OCC baseline (memocc, standing
// in for DBMS-M) each provide an adapter, so every experiment executes the
// same logical workload through the same call shapes.
package engineapi

import (
	"errors"

	"hiengine/internal/core"
	"hiengine/internal/obs"
)

// Traceable is implemented by transactions that can carry a per-request
// trace through the commit pipeline (see internal/obs). Callers type-assert:
// engines without pipeline instrumentation simply don't implement it.
type Traceable interface {
	SetTrace(*obs.Trace)
}

// Canonical error categories. Engines wrap their native errors around these
// sentinels so drivers can classify failures uniformly with errors.Is.
var (
	// ErrConflict marks retryable concurrency failures (write-write
	// conflicts, OCC validation aborts, lock conflicts). The transaction
	// has been aborted; the driver may retry it.
	ErrConflict = errors.New("engineapi: conflict")
	// ErrDuplicate marks unique-constraint violations.
	ErrDuplicate = errors.New("engineapi: duplicate key")
	// ErrNotFound marks missing rows.
	ErrNotFound = errors.New("engineapi: not found")
)

// DB is a transactional engine under benchmark.
type DB interface {
	// CreateTable registers a table. Engines that do not support
	// secondary indexes may reject schemas that declare them.
	CreateTable(schema *core.Schema) error
	// Begin starts a transaction on a worker slot.
	Begin(worker int) (Txn, error)
	// Name identifies the engine in reports.
	Name() string
}

// AsyncCommitter is optionally implemented by transactions that support
// pipelined commits (HiEngine, Section 4.2): CommitAsync makes the
// transaction's effects visible, frees the worker immediately, and invokes
// cb once the log records are durable. Engines that must hold locks across
// the log force (the OCC baseline) do not implement it.
type AsyncCommitter interface {
	CommitAsync(cb func(error)) error
}

// Preparer is optionally implemented by transactions that can act as a
// two-phase-commit participant. PrepareAsync durably logs the transaction's
// writes under the global transaction id gtid and invokes cb once the
// prepare record is durable: readOnly reports that the transaction wrote
// nothing (a read-only "yes" vote that owes the coordinator no decision);
// err is the participant's "no" vote (the transaction has been aborted).
// After a successful non-read-only prepare the transaction is in-doubt:
// Commit and Abort fail, and only the engine-level decision path can finish
// it.
type Preparer interface {
	PrepareAsync(gtid string, cb func(readOnly bool, err error)) error
}

// CSNReporter is optionally implemented by transactions that can report the
// commit sequence number they committed at. The service layer uses it to
// hand clients a read-your-writes token they can present to a replica.
type CSNReporter interface {
	// CSN returns the transaction's commit sequence number: nonzero once
	// the transaction has (pre)committed a write, 0 for read-only commits
	// and uncommitted transactions.
	CSN() uint64
}

// Importer is optionally implemented by engines that can install rows as
// bulk-loaded data visible to every snapshot (HiEngine's load CSN). The
// ACID-cache deployment uses it to fault in cold rows from a backing engine
// without snapshot-visibility anomalies.
type Importer interface {
	Import(table string, row core.Row) error
}

// Txn is one transaction.
type Txn interface {
	Commit() error
	Abort() error

	// Insert adds a row.
	Insert(table string, row core.Row) error
	// GetByKey reads a row through unique index idx.
	GetByKey(table string, idx int, key ...core.Value) (core.Row, error)
	// UpdateByKey replaces the row matching key on unique index idx.
	UpdateByKey(table string, idx int, key []core.Value, newRow core.Row) error
	// DeleteByKey deletes the row matching key on the primary index.
	DeleteByKey(table string, key ...core.Value) error
	// ScanPrefix visits rows whose index-idx key starts with prefix, in
	// key order, until fn returns false.
	ScanPrefix(table string, idx int, prefix []core.Value, fn func(row core.Row) bool) error
}
