package numa

import (
	"testing"

	"hiengine/internal/delay"
)

func TestTopologyShapes(t *testing.T) {
	arm := ARMKunpeng920()
	if got := arm.TotalCores(); got != 128 {
		t.Fatalf("ARM cores = %d, want 128", got)
	}
	if got := arm.TotalDies(); got != 4 {
		t.Fatalf("ARM dies = %d, want 4", got)
	}
	x86 := X86Xeon()
	if got := x86.TotalCores(); got != 48 {
		t.Fatalf("x86 cores = %d, want 48", got)
	}
	if arm.RemoteSocket <= arm.LocalAccess {
		t.Fatal("remote socket access not slower than local")
	}
	if arm.RemoteSocket <= x86.RemoteSocket {
		t.Fatal("paper: ARM NUMA effect should exceed x86's")
	}
}

func TestCorePlacement(t *testing.T) {
	arm := ARMKunpeng920()
	c0 := arm.Core(0)
	if c0.Die != 0 || c0.Socket != 0 {
		t.Fatalf("core 0: %+v", c0)
	}
	c32 := arm.Core(32)
	if c32.Die != 1 || c32.Socket != 0 {
		t.Fatalf("core 32: %+v (die 1, socket 0 expected)", c32)
	}
	c64 := arm.Core(64)
	if c64.Die != 2 || c64.Socket != 1 {
		t.Fatalf("core 64: %+v (die 2, socket 1 expected)", c64)
	}
	c127 := arm.Core(127)
	if c127.Die != 3 || c127.Socket != 1 {
		t.Fatalf("core 127: %+v", c127)
	}
}

func TestPolicyPlacement(t *testing.T) {
	if got := PolicyLocal.Place(5, 2, 4); got != 2 {
		t.Fatalf("local: %d", got)
	}
	if got := PolicyInterleave.Place(5, 2, 4); got != 1 {
		t.Fatalf("interleave: %d", got)
	}
	if got := PolicyRemote.Place(5, 2, 4); got == 2 {
		t.Fatal("remote policy placed locally")
	}
}

func TestAccountantCountsAndCharges(t *testing.T) {
	var w delay.CountingWaiter
	arm := ARMKunpeng920()
	a := NewAccountant(arm, &w)
	a.Access(arm.Core(0), 0) // local
	a.Access(arm.Core(0), 1) // remote die, same socket
	a.Access(arm.Core(0), 2) // remote socket
	l, rd, rs := a.Counts()
	if l != 1 || rd != 1 || rs != 1 {
		t.Fatalf("counts: %d %d %d", l, rd, rs)
	}
	want := arm.LocalAccess + arm.RemoteDie + arm.RemoteSocket
	if w.Total() != want {
		t.Fatalf("charged %v, want %v", w.Total(), want)
	}
	if f := a.RemoteFraction(); f < 0.66 || f > 0.67 {
		t.Fatalf("remote fraction = %f", f)
	}
	if f := a.CrossSocketFraction(); f < 0.33 || f > 0.34 {
		t.Fatalf("cross socket fraction = %f", f)
	}
	a.Reset()
	if f := a.RemoteFraction(); f != 0 {
		t.Fatalf("fraction after reset = %f", f)
	}
}
