// Package numa models the multi-socket, multi-die processor topologies of
// the paper's evaluation platforms (Section 6.1, 6.3): a 2-socket, 128-core
// Kunpeng 920 ARM server with 4 dies, and a 2-socket, 48-core (96
// hyperthread) x86 Xeon server. ARM manycore parts offer more cores but
// exhibit a more severe NUMA effect (Section 2.1); Figures 6 and 7 study how
// thread placement, memory placement and workload partitioning interact
// through the fraction of cross-socket remote accesses.
//
// The model is intentionally simple and causal: worker goroutines are
// logically bound to cores; tracked data structures have a home die; every
// tracked access from core c to home die d charges the local or remote
// latency and increments the corresponding counter. The paper's empirical
// law -- roughly 5% tpmC lost per additional 10% of remote accesses --
// emerges from the charged latency rather than being hard-coded.
package numa

import (
	"fmt"
	"sync/atomic"
	"time"

	"hiengine/internal/delay"
)

// Topology describes a processor.
type Topology struct {
	Name          string
	Sockets       int
	DiesPerSocket int
	CoresPerDie   int
	// LocalAccess is charged for an access whose home die matches the
	// accessing core's die.
	LocalAccess time.Duration
	// RemoteDie is charged for an access to another die on the same
	// socket.
	RemoteDie time.Duration
	// RemoteSocket is charged for a cross-socket access.
	RemoteSocket time.Duration
}

// ARMKunpeng920 is the paper's TaiShan 200 server: 2 sockets x 2 dies x 32
// cores = 128 cores, with a pronounced remote-access penalty.
func ARMKunpeng920() Topology {
	return Topology{
		Name:          "arm-kunpeng920",
		Sockets:       2,
		DiesPerSocket: 2,
		CoresPerDie:   32,
		LocalAccess:   90 * time.Nanosecond,
		RemoteDie:     200 * time.Nanosecond,
		RemoteSocket:  500 * time.Nanosecond,
	}
}

// X86Xeon is the paper's dual-socket Xeon: 2 sockets x 1 die x 24 physical
// cores (48 cores, 96 hyperthreads); fewer cores, milder NUMA penalty.
func X86Xeon() Topology {
	return Topology{
		Name:          "x86-xeon",
		Sockets:       2,
		DiesPerSocket: 1,
		CoresPerDie:   24,
		LocalAccess:   80 * time.Nanosecond,
		RemoteDie:     80 * time.Nanosecond,
		RemoteSocket:  220 * time.Nanosecond,
	}
}

// TotalCores returns the core count.
func (t Topology) TotalCores() int { return t.Sockets * t.DiesPerSocket * t.CoresPerDie }

// TotalDies returns the die count.
func (t Topology) TotalDies() int { return t.Sockets * t.DiesPerSocket }

// Core identifies one logical core's placement.
type Core struct {
	ID     int
	Die    int // global die index
	Socket int
}

// Core returns the placement of core id (cores are numbered die-major, so
// core IDs [0,CoresPerDie) are die 0, and so on).
func (t Topology) Core(id int) Core {
	die := id / t.CoresPerDie % t.TotalDies()
	return Core{ID: id, Die: die, Socket: die / t.DiesPerSocket}
}

// DieOfSocket returns the global die index for (socket, die-in-socket).
func (t Topology) DieOfSocket(socket, die int) int { return socket*t.DiesPerSocket + die }

// Policy selects how data is placed on memory nodes (dies).
type Policy int

const (
	// PolicyLocal places each datum on its owner's die (optimal when the
	// workload is partitioned and threads are bound to owning dies).
	PolicyLocal Policy = iota
	// PolicyInterleave stripes data across all active dies.
	PolicyInterleave
	// PolicyRemote deliberately places data on a different die than its
	// owner (Figure 7's worst case: 69% remote accesses).
	PolicyRemote
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case PolicyLocal:
		return "local"
	case PolicyInterleave:
		return "interleave"
	case PolicyRemote:
		return "remote"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Place computes the home die for a partition (e.g. a TPC-C warehouse)
// owned by ownerDie under the policy, with activeDies dies in use.
func (p Policy) Place(partition, ownerDie, activeDies int) int {
	switch p {
	case PolicyLocal:
		return ownerDie
	case PolicyInterleave:
		return partition % activeDies
	case PolicyRemote:
		return (ownerDie + 1) % activeDies
	default:
		return ownerDie
	}
}

// Accountant charges and counts memory accesses for one run.
type Accountant struct {
	topo   Topology
	waiter delay.Waiter

	local        atomic.Int64
	remoteDie    atomic.Int64
	remoteSocket atomic.Int64
}

// NewAccountant builds an accountant over a topology. A nil waiter waits for
// real (spun) time.
func NewAccountant(topo Topology, waiter delay.Waiter) *Accountant {
	if waiter == nil {
		waiter = delay.SleepWaiter{}
	}
	return &Accountant{topo: topo, waiter: waiter}
}

// Topology returns the accountant's topology.
func (a *Accountant) Topology() Topology { return a.topo }

// Access charges one tracked access from core to a datum homed on homeDie.
func (a *Accountant) Access(core Core, homeDie int) {
	switch {
	case core.Die == homeDie:
		a.local.Add(1)
		a.waiter.Wait(a.topo.LocalAccess)
	case homeDie/a.topo.DiesPerSocket == core.Socket:
		a.remoteDie.Add(1)
		a.waiter.Wait(a.topo.RemoteDie)
	default:
		a.remoteSocket.Add(1)
		a.waiter.Wait(a.topo.RemoteSocket)
	}
}

// Counts returns (local, remote-die, remote-socket) access counts.
func (a *Accountant) Counts() (local, remoteDie, remoteSocket int64) {
	return a.local.Load(), a.remoteDie.Load(), a.remoteSocket.Load()
}

// RemoteFraction returns the fraction of accesses that crossed a die or
// socket boundary (0 when no accesses were recorded).
func (a *Accountant) RemoteFraction() float64 {
	l, rd, rs := a.Counts()
	total := l + rd + rs
	if total == 0 {
		return 0
	}
	return float64(rd+rs) / float64(total)
}

// CrossSocketFraction returns the fraction of accesses crossing sockets.
func (a *Accountant) CrossSocketFraction() float64 {
	l, rd, rs := a.Counts()
	total := l + rd + rs
	if total == 0 {
		return 0
	}
	return float64(rs) / float64(total)
}

// Reset zeroes the counters.
func (a *Accountant) Reset() {
	a.local.Store(0)
	a.remoteDie.Store(0)
	a.remoteSocket.Store(0)
}
