package srss

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"hiengine/internal/delay"
)

func testService(t *testing.T) *Service {
	t.Helper()
	return New(Config{MaxPLogSize: 1 << 20, ChunkSize: 256})
}

func TestAppendRead(t *testing.T) {
	s := testService(t)
	p, err := s.Create(TierCompute)
	if err != nil {
		t.Fatal(err)
	}
	off1, err := p.Append([]byte("hello "))
	if err != nil {
		t.Fatal(err)
	}
	off2, err := p.Append([]byte("world"))
	if err != nil {
		t.Fatal(err)
	}
	if off1 != 0 || off2 != 6 {
		t.Fatalf("offsets = %d, %d; want 0, 6", off1, off2)
	}
	buf := make([]byte, 11)
	if _, err := p.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello world" {
		t.Fatalf("read %q", buf)
	}
}

func TestAppendCrossesChunks(t *testing.T) {
	s := New(Config{MaxPLogSize: 1 << 20, ChunkSize: 8})
	p, _ := s.Create(TierStorage)
	data := []byte("0123456789abcdefghij") // 20 bytes across 8-byte chunks
	if _, err := p.Append(data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := p.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q want %q", got, data)
	}
	// Unaligned read crossing a chunk boundary.
	got = make([]byte, 10)
	if _, err := p.ReadAt(got, 5); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[5:15]) {
		t.Fatalf("got %q want %q", got, data[5:15])
	}
}

func TestReadOutOfRange(t *testing.T) {
	s := testService(t)
	p, _ := s.Create(TierCompute)
	p.Append([]byte("abc"))
	buf := make([]byte, 4)
	if _, err := p.ReadAt(buf, 0); err == nil {
		t.Fatal("read past durable end succeeded")
	}
	if _, err := p.ReadAt(buf[:1], -1); err == nil {
		t.Fatal("negative offset read succeeded")
	}
}

func TestReplicasIdentical(t *testing.T) {
	s := testService(t)
	p, _ := s.Create(TierCompute)
	for i := 0; i < 100; i++ {
		if _, err := p.Append([]byte(fmt.Sprintf("rec-%04d;", i))); err != nil {
			t.Fatal(err)
		}
	}
	if !p.CheckReplicas() {
		t.Fatal("replicas diverged")
	}
}

func TestConcurrentAppendsAtomic(t *testing.T) {
	s := testService(t)
	p, _ := s.Create(TierCompute)
	const workers, per = 8, 200
	rec := func(w, i int) []byte { return []byte(fmt.Sprintf("[w%02d-i%03d]", w, i)) }
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := p.Append(rec(w, i)); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if !p.CheckReplicas() {
		t.Fatal("replicas diverged under concurrency")
	}
	// Every record must appear intact (appends are atomic, no interleaving).
	all := make([]byte, p.Size())
	if _, err := p.ReadAt(all, 0); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < workers; w++ {
		for i := 0; i < per; i++ {
			if !bytes.Contains(all, rec(w, i)) {
				t.Fatalf("record w=%d i=%d torn or missing", w, i)
			}
		}
	}
}

func TestSealOnNodeFailure(t *testing.T) {
	s := testService(t)
	p, _ := s.Create(TierCompute)
	if _, err := p.Append([]byte("before")); err != nil {
		t.Fatal(err)
	}
	// Fail one of the replica nodes: by construction the plog has all 3.
	s.ComputeNode(0).Fail()
	s.ComputeNode(1).Fail()
	s.ComputeNode(2).Fail()
	if _, err := p.Append([]byte("after")); err == nil {
		t.Fatal("append with failed replica succeeded")
	} else if !p.Sealed() {
		t.Fatalf("plog not sealed after failed write: %v", err)
	}
	// Sealed plogs stay readable.
	buf := make([]byte, 6)
	if _, err := p.ReadAt(buf, 0); err != nil || string(buf) != "before" {
		t.Fatalf("read after seal: %q, %v", buf, err)
	}
	// Heal and create a fresh plog: retry path.
	s.ComputeNode(0).Heal()
	s.ComputeNode(1).Heal()
	s.ComputeNode(2).Heal()
	p2, err := s.Create(TierCompute)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p2.Append([]byte("after")); err != nil {
		t.Fatal(err)
	}
}

func TestSealedIsImmutable(t *testing.T) {
	s := testService(t)
	p, _ := s.Create(TierStorage)
	p.Append([]byte("x"))
	p.Seal()
	if _, err := p.Append([]byte("y")); err == nil {
		t.Fatal("append to sealed plog succeeded")
	}
	if p.Size() != 1 {
		t.Fatalf("sealed plog grew to %d", p.Size())
	}
}

func TestMaxSize(t *testing.T) {
	s := New(Config{MaxPLogSize: 10, ChunkSize: 8})
	p, _ := s.Create(TierCompute)
	if _, err := p.Append(make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Append(make([]byte, 3)); err == nil {
		t.Fatal("append past max size succeeded")
	}
	// Exactly filling is allowed.
	if _, err := p.Append(make([]byte, 2)); err != nil {
		t.Fatal(err)
	}
}

func TestOpenDelete(t *testing.T) {
	s := testService(t)
	p, _ := s.Create(TierStorage)
	got, err := s.Open(p.ID())
	if err != nil || got != p {
		t.Fatalf("open: %v", err)
	}
	if err := s.Delete(p.ID()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Open(p.ID()); err == nil {
		t.Fatal("open after delete succeeded")
	}
	if _, err := p.Append([]byte("x")); err == nil {
		t.Fatal("append after delete succeeded")
	}
	if err := s.Delete(p.ID()); err == nil {
		t.Fatal("double delete succeeded")
	}
}

func TestList(t *testing.T) {
	s := testService(t)
	c1, _ := s.Create(TierCompute)
	s.Create(TierStorage)
	s.Create(TierStorage)
	if got := len(s.List(TierCompute)); got != 1 {
		t.Fatalf("compute list = %d, want 1", got)
	}
	if got := len(s.List(TierStorage)); got != 2 {
		t.Fatalf("storage list = %d, want 2", got)
	}
	s.Delete(c1.ID())
	if got := len(s.List(TierCompute)); got != 0 {
		t.Fatalf("compute list after delete = %d", got)
	}
}

func TestMmapViewZeroCopyAndStability(t *testing.T) {
	s := New(Config{MaxPLogSize: 1 << 20, ChunkSize: 64})
	p, _ := s.Create(TierCompute)
	p.Append(bytes.Repeat([]byte("a"), 32))
	v := p.Mmap()
	b, err := v.At(0, 32)
	if err != nil {
		t.Fatal(err)
	}
	// Later appends must not disturb the earlier view.
	p.Append(bytes.Repeat([]byte("b"), 200))
	for _, c := range b {
		if c != 'a' {
			t.Fatal("view mutated by later append")
		}
	}
	// Cross-chunk read: [16,80) straddles the 64-byte chunk boundary and
	// covers the a->b transition at offset 32.
	b2, err := v.At(16, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range b2 {
		want := byte('a')
		if 16+i >= 32 {
			want = 'b'
		}
		if c != want {
			t.Fatalf("cross-chunk view byte %d = %c, want %c", i, c, want)
		}
	}
	if _, err := v.At(0, int(v.Len())+1); err == nil {
		t.Fatal("view read past end succeeded")
	}
}

func TestDestage(t *testing.T) {
	s := testService(t)
	p, _ := s.Create(TierCompute)
	data := bytes.Repeat([]byte("destage-me;"), 1000)
	p.Append(data)
	dst, err := s.Destage(p)
	if err != nil {
		t.Fatal(err)
	}
	if dst.Tier() != TierStorage {
		t.Fatalf("destaged to %v", dst.Tier())
	}
	got := make([]byte, dst.Size())
	dst.ReadAt(got, 0)
	if !bytes.Equal(got, data) {
		t.Fatal("destaged bytes differ")
	}
	if _, err := s.Destage(dst); err == nil {
		t.Fatal("destaging a storage-tier plog succeeded")
	}
}

func TestLatencyCharging(t *testing.T) {
	var w delay.CountingWaiter
	m := &delay.Model{
		ComputePMAppend: 1 * time.Microsecond,
		IntraComputeRTT: 5 * time.Microsecond,
		CrossLayerRTT:   20 * time.Microsecond,
		IntraStorageRTT: 5 * time.Microsecond,
		SSDWrite:        80 * time.Microsecond,
	}
	s := New(Config{Model: m, Waiter: &w, MaxPLogSize: 1 << 20})
	pc, _ := s.Create(TierCompute)
	pc.Append([]byte("x"))
	if got := w.Total(); got != 6*time.Microsecond {
		t.Fatalf("compute append charged %v, want 6µs", got)
	}
	ps, _ := s.Create(TierStorage)
	ps.Append([]byte("x"))
	if got := w.Total(); got != (6+105)*time.Microsecond {
		t.Fatalf("storage append charged %v total, want 111µs", got)
	}
	if s.Stats().CrossLayerOps.Load() != 1 {
		t.Fatalf("cross-layer ops = %d", s.Stats().CrossLayerOps.Load())
	}
}

func TestNotEnoughHealthyNodes(t *testing.T) {
	s := New(Config{ComputeNodes: 3, MaxPLogSize: 1 << 20})
	s.ComputeNode(1).Fail()
	if _, err := s.Create(TierCompute); err == nil {
		t.Fatal("create with 2/3 healthy nodes succeeded (need 3 replicas)")
	}
	s.ComputeNode(1).Heal()
	if _, err := s.Create(TierCompute); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyAppendReadRoundTrip(t *testing.T) {
	s := New(Config{MaxPLogSize: 1 << 24, ChunkSize: 97}) // odd chunk size
	p, _ := s.Create(TierStorage)
	var offsets []int64
	var payloads [][]byte
	f := func(data []byte) bool {
		if len(data) == 0 {
			data = []byte{0}
		}
		off, err := p.Append(data)
		if err != nil {
			return false
		}
		offsets = append(offsets, off)
		payloads = append(payloads, append([]byte(nil), data...))
		// Re-read a random earlier payload.
		i := len(offsets) / 2
		got := make([]byte, len(payloads[i]))
		if _, err := p.ReadAt(got, offsets[i]); err != nil {
			return false
		}
		return bytes.Equal(got, payloads[i])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	if !p.CheckReplicas() {
		t.Fatal("replicas diverged")
	}
}

func TestWellKnownRegistry(t *testing.T) {
	s := testService(t)
	if _, ok := s.WellKnown("engine"); ok {
		t.Fatal("empty registry resolved a name")
	}
	p, _ := s.Create(TierCompute)
	s.SetWellKnown("engine", p.ID())
	id, ok := s.WellKnown("engine")
	if !ok || id != p.ID() {
		t.Fatalf("lookup: %v %v", id, ok)
	}
	// Re-anchoring overwrites.
	p2, _ := s.Create(TierCompute)
	s.SetWellKnown("engine", p2.ID())
	if id, _ := s.WellKnown("engine"); id != p2.ID() {
		t.Fatal("re-anchor did not overwrite")
	}
}
