package srss

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"hiengine/internal/chaos"
)

// TestReadFallbackWithFailedReplicas: reads must succeed from any surviving
// replica when one or two replica nodes are Fail()ed, including on sealed
// PLogs.
func TestReadFallbackWithFailedReplicas(t *testing.T) {
	for _, failN := range []int{1, 2} {
		for _, seal := range []bool{false, true} {
			s := New(Config{ComputeNodes: 3, MaxPLogSize: 1 << 20, ChunkSize: 64})
			p, err := s.Create(TierCompute)
			if err != nil {
				t.Fatal(err)
			}
			data := bytes.Repeat([]byte("fallback"), 40)
			if _, err := p.Append(data); err != nil {
				t.Fatal(err)
			}
			if seal {
				p.Seal()
			}
			for i, id := range p.ReplicaNodes() {
				if i < failN {
					s.ComputeNode(id).Fail()
				}
			}
			got := make([]byte, len(data))
			if _, err := p.ReadAt(got, 0); err != nil {
				t.Fatalf("failN=%d seal=%v: ReadAt: %v", failN, seal, err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("failN=%d seal=%v: read mismatch", failN, seal)
			}
			// Mmap views route the same way.
			v := p.Mmap()
			b, err := v.At(8, 16)
			if err != nil {
				t.Fatalf("failN=%d seal=%v: View.At: %v", failN, seal, err)
			}
			if !bytes.Equal(b, data[8:24]) {
				t.Fatalf("failN=%d seal=%v: view mismatch", failN, seal)
			}
		}
	}
}

// TestRepairAfterNodeFailure: a node failing mid-write seals the PLog; the
// repairer re-replicates onto a spare and the PLog stays readable with the
// failed node permanently down.
func TestRepairAfterNodeFailure(t *testing.T) {
	s := New(Config{ComputeNodes: 5, MaxPLogSize: 1 << 20, ChunkSize: 64})
	p, err := s.Create(TierCompute)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("x"), 1000)
	if _, err := p.Append(data); err != nil {
		t.Fatal(err)
	}
	victim := p.ReplicaNodes()[0]
	s.ComputeNode(victim).Fail()
	// Next append hits the failed replica: PLog seals.
	if _, err := p.Append([]byte("more")); !errors.Is(err, ErrSealed) {
		t.Fatalf("append on degraded plog: %v, want ErrSealed", err)
	}
	if !p.Sealed() {
		t.Fatal("plog did not seal on replica failure")
	}
	n, err := s.RepairOnce()
	if err != nil {
		t.Fatalf("RepairOnce: %v", err)
	}
	if n != 1 {
		t.Fatalf("RepairOnce replaced %d replicas, want 1", n)
	}
	// The failed node stays down; the new set must exclude it.
	for _, id := range p.ReplicaNodes() {
		if id == victim {
			t.Fatalf("repaired set %v still contains failed node %d", p.ReplicaNodes(), victim)
		}
	}
	if got := s.Stats().Repairs.Load(); got != 1 {
		t.Fatalf("Repairs stat = %d, want 1", got)
	}
	if got := s.Stats().RepairedPLogs.Load(); got != 1 {
		t.Fatalf("RepairedPLogs stat = %d, want 1", got)
	}
	// Full redundancy: all replicas byte-identical and on healthy nodes.
	if !p.CheckReplicas() {
		t.Fatal("replicas diverge after repair")
	}
	got := make([]byte, len(data))
	if _, err := p.ReadAt(got, 0); err != nil {
		t.Fatalf("ReadAt after repair: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data mismatch after repair")
	}
	// Idempotent: a second sweep finds nothing degraded.
	if n, err := s.RepairOnce(); err != nil || n != 0 {
		t.Fatalf("second RepairOnce = %d, %v; want 0, nil", n, err)
	}
}

// TestRepairNoSpares: with every non-replica node failed, repair reports a
// PlacementError but leaves the PLog readable.
func TestRepairNoSpares(t *testing.T) {
	s := New(Config{ComputeNodes: 3, MaxPLogSize: 1 << 20, ChunkSize: 64})
	p, err := s.Create(TierCompute)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Append([]byte("payload")); err != nil {
		t.Fatal(err)
	}
	s.ComputeNode(p.ReplicaNodes()[0]).Fail()
	n, err := s.RepairOnce()
	if n != 0 {
		t.Fatalf("repaired %d replicas with no spares", n)
	}
	var pe *PlacementError
	if !errors.As(err, &pe) || !errors.Is(err, ErrNoHealthyNodes) {
		t.Fatalf("RepairOnce error = %v, want PlacementError wrapping ErrNoHealthyNodes", err)
	}
	got := make([]byte, 7)
	if _, err := p.ReadAt(got, 0); err != nil {
		t.Fatalf("degraded read: %v", err)
	}
}

// TestBackgroundRepairer: StartRepairer heals a degraded PLog without an
// explicit sweep.
func TestBackgroundRepairer(t *testing.T) {
	s := New(Config{ComputeNodes: 4, MaxPLogSize: 1 << 20, ChunkSize: 64})
	p, err := s.Create(TierCompute)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Append([]byte("bg-repair")); err != nil {
		t.Fatal(err)
	}
	stop := s.StartRepairer(time.Millisecond)
	defer stop()
	victim := p.ReplicaNodes()[0]
	s.ComputeNode(victim).Fail()
	deadline := time.Now().Add(2 * time.Second)
	for {
		degradedStill := false
		for _, id := range p.ReplicaNodes() {
			if id == victim {
				degradedStill = true
			}
		}
		if !degradedStill {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background repairer never healed the plog")
		}
		time.Sleep(time.Millisecond)
	}
	if !p.CheckReplicas() {
		t.Fatal("replicas diverge after background repair")
	}
}

// TestPlacementErrorTyped: pickNodes surfaces the typed error and counts the
// failure.
func TestPlacementErrorTyped(t *testing.T) {
	s := New(Config{ComputeNodes: 3, MaxPLogSize: 1 << 20})
	s.ComputeNode(0).Fail()
	_, err := s.Create(TierCompute)
	var pe *PlacementError
	if !errors.As(err, &pe) {
		t.Fatalf("Create error = %T %v, want *PlacementError", err, err)
	}
	if pe.Tier != TierCompute || pe.Need != 3 || pe.Have != 2 {
		t.Fatalf("PlacementError = %+v", pe)
	}
	if !errors.Is(err, ErrNoHealthyNodes) {
		t.Fatal("PlacementError does not unwrap to ErrNoHealthyNodes")
	}
	if got := s.Stats().PlacementFailures.Load(); got != 1 {
		t.Fatalf("PlacementFailures = %d, want 1", got)
	}
}

// TestTornAppend: a chaos-injected torn write seals the PLog, marks it torn,
// leaves divergent replica prefixes with the longest visible as the physical
// extent, and repair preserves the longest prefix.
func TestTornAppend(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		ch := chaos.New(seed)
		ch.Arm(chaos.Rule{Site: SiteAppendTear, Action: chaos.Tear, OnHit: 2})
		s := New(Config{ComputeNodes: 5, MaxPLogSize: 1 << 20, ChunkSize: 64, Chaos: ch})
		p, err := s.Create(TierCompute)
		if err != nil {
			t.Fatal(err)
		}
		first := bytes.Repeat([]byte("a"), 100)
		if _, err := p.Append(first); err != nil {
			t.Fatalf("seed %d: first append: %v", seed, err)
		}
		second := bytes.Repeat([]byte("b"), 200)
		_, err = p.Append(second)
		if !errors.Is(err, chaos.ErrCrashed) {
			t.Fatalf("seed %d: torn append error = %v", seed, err)
		}
		if !p.Torn() || !p.Sealed() {
			t.Fatalf("seed %d: torn=%v sealed=%v", seed, p.Torn(), p.Sealed())
		}
		if s.Stats().TornAppends.Load() != 1 {
			t.Fatalf("seed %d: TornAppends = %d", seed, s.Stats().TornAppends.Load())
		}
		// Physical size = 100 + longest kept prefix, in (100, 300).
		size := p.Size()
		if size <= 100 || size >= 300 {
			t.Fatalf("seed %d: post-tear size %d outside (100,300)", seed, size)
		}
		var maxExt int64
		divergent := false
		for i := 0; i < p.Replicas(); i++ {
			ext := p.ReplicaExtent(i)
			if ext > maxExt {
				maxExt = ext
			}
			if ext != p.ReplicaExtent(0) {
				divergent = true
			}
		}
		if maxExt != size {
			t.Fatalf("seed %d: longest extent %d != size %d", seed, maxExt, size)
		}
		// Replica prefixes of the same write never diverge in content, so
		// consistency is exactly extent agreement -- at any offset.
		if got := p.ReplicasConsistentFrom(100); got != !divergent {
			t.Fatalf("seed %d: ReplicasConsistentFrom=%v with divergent=%v", seed, got, divergent)
		}
		// The acked prefix is always consistent and readable (post-restart,
		// so the crash latch is cleared first).
		ch.ClearCrash()
		got := make([]byte, 100)
		if _, err := p.ReadAt(got, 0); err != nil {
			t.Fatalf("seed %d: read acked prefix: %v", seed, err)
		}
		if !bytes.Equal(got, first) {
			t.Fatalf("seed %d: acked prefix mismatch", seed)
		}
		// Repair of a torn PLog copies the longest replica everywhere.
		s.ComputeNode(p.ReplicaNodes()[0]).Fail()
		if _, err := s.RepairOnce(); err != nil {
			t.Fatalf("seed %d: RepairOnce: %v", seed, err)
		}
		longest := 0
		for i := 0; i < p.Replicas(); i++ {
			if p.ReplicaExtent(i) > p.ReplicaExtent(longest) {
				longest = i
			}
		}
		if p.ReplicaExtent(longest) != size {
			t.Fatalf("seed %d: repair lost the longest prefix: %d != %d",
				seed, p.ReplicaExtent(longest), size)
		}
	}
}

// TestAppendCrashSites: the before/after crash sites lose exactly the ack
// (after) or the whole append (before).
func TestAppendCrashSites(t *testing.T) {
	// Crash before replication: nothing persisted.
	ch := chaos.New(1)
	ch.Arm(chaos.Rule{Site: SiteAppendBefore, Action: chaos.Crash, OnHit: 1})
	s := New(Config{MaxPLogSize: 1 << 20, Chaos: ch})
	p, _ := s.Create(TierCompute)
	if _, err := p.Append([]byte("lost")); !errors.Is(err, chaos.ErrCrashed) {
		t.Fatalf("before-site: %v", err)
	}
	if p.Size() != 0 {
		t.Fatalf("before-site persisted %d bytes", p.Size())
	}
	ch.ClearCrash()

	// Crash after replication: durable but unacked.
	ch2 := chaos.New(2)
	ch2.Arm(chaos.Rule{Site: SiteAppendAfter, Action: chaos.Crash, OnHit: 1})
	s2 := New(Config{MaxPLogSize: 1 << 20, Chaos: ch2})
	p2, _ := s2.Create(TierCompute)
	if _, err := p2.Append([]byte("durable")); !errors.Is(err, chaos.ErrCrashed) {
		t.Fatalf("after-site: %v", err)
	}
	if p2.Size() != 7 {
		t.Fatalf("after-site size %d, want 7 (durable but unacked)", p2.Size())
	}
	ch2.ClearCrash()
	got := make([]byte, 7)
	if _, err := p2.ReadAt(got, 0); err != nil || string(got) != "durable" {
		t.Fatalf("after-site read: %q %v", got, err)
	}
	if !p2.CheckReplicas() {
		t.Fatal("after-site replicas diverge")
	}
}
