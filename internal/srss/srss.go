// Package srss simulates SRSS, Huawei's shared reliable storage service that
// HiEngine is built on (Sections 2.2-2.3 of the paper).
//
// SRSS exposes one abstraction: the persistent log (PLog), a contiguous
// fixed-maximum-size append-only chunk. PLogs can be created, opened,
// appended to, read, sealed and deleted; in-place update is impossible by
// construction. Writes are replicated synchronously to three nodes and
// acknowledged only when all three replicas are durable. If a replica node
// fails during a write, the PLog is permanently sealed and the application
// retries the append on a fresh PLog placed on healthy nodes.
//
// SRSS spans two tiers. Compute-tier PLogs live in persistent memory on
// compute nodes and are replicated over the fast intra-compute RDMA network;
// this is the compute-side persistence that lets HiEngine commit at
// microsecond latency. Storage-tier PLogs live on SSDs behind the slower
// cross-layer network. Either tier supports mmap-style read-only views.
//
// The simulation materializes every replica independently (so replication
// bugs are observable), charges tier-appropriate latencies through a
// delay.Model, and supports failure injection on individual nodes.
package srss

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hiengine/internal/chaos"
	"hiengine/internal/delay"
	"hiengine/internal/obs"
)

// Chaos injection sites owned by this package. See internal/chaos and the
// DESIGN.md fault-model section for rule semantics.
const (
	// SiteAppendBefore fires before any replica receives bytes: a crash
	// here loses the append entirely (nothing persisted, nothing acked).
	SiteAppendBefore = "srss.append.before"
	// SiteAppendTear fires mid-replication: each replica keeps an
	// independently chosen prefix of the data, the PLog seals and is
	// marked torn, and the crash latches. Recovery must detect and
	// truncate the resulting checksum-invalid tail.
	SiteAppendTear = "srss.append.tear"
	// SiteAppendAfter fires after all replicas are durable but before the
	// offset is returned: the data survives recovery, the ack is lost.
	SiteAppendAfter = "srss.append.after"
	// SiteRead fires on PLog reads and mmap-view accesses (crash or
	// transient slowness on the read path).
	SiteRead = "srss.read"
	// SiteDestageMid fires between destage copy batches: a crash leaves a
	// partial, unregistered storage-tier PLog behind.
	SiteDestageMid = "srss.destage.mid"
)

func init() {
	chaos.RegisterSite(SiteAppendBefore, "crash before replication: append lost entirely")
	chaos.RegisterSite(SiteAppendTear, "torn replicated write: divergent replica prefixes, PLog seals, crash latches")
	chaos.RegisterSite(SiteAppendAfter, "crash after replication: append durable, ack lost")
	chaos.RegisterSite(SiteRead, "crash or slowness on PLog read / mmap access")
	chaos.RegisterSite(SiteDestageMid, "crash between destage copy batches: partial archive PLog")
}

// Tier identifies where a PLog's replicas are placed.
type Tier int

const (
	// TierCompute places replicas in persistent memory on compute nodes.
	TierCompute Tier = iota
	// TierStorage places replicas on SSDs on storage nodes.
	TierStorage
)

// String returns the tier name.
func (t Tier) String() string {
	switch t {
	case TierCompute:
		return "compute"
	case TierStorage:
		return "storage"
	default:
		return fmt.Sprintf("tier(%d)", int(t))
	}
}

// PLogID identifies a PLog. SRSS uses 24-byte identifiers (Section 4.2);
// the simulation packs a tier tag and a sequence number into the same width.
type PLogID [24]byte

// String renders the ID compactly for logs and errors.
func (id PLogID) String() string {
	return fmt.Sprintf("plog-%x", id[:8])
}

// IsZero reports whether the ID is the zero (invalid) ID.
func (id PLogID) IsZero() bool { return id == PLogID{} }

// Errors returned by the service.
var (
	// ErrSealed is returned when appending to a sealed PLog. The caller
	// must create a new PLog and retry the write (Section 2.2).
	ErrSealed = errors.New("srss: plog is sealed")
	// ErrFull is returned when an append would exceed the PLog max size.
	ErrFull = errors.New("srss: plog is full")
	// ErrNotFound is returned when opening an unknown PLog.
	ErrNotFound = errors.New("srss: plog not found")
	// ErrOutOfRange is returned for reads past the durable end of a PLog.
	ErrOutOfRange = errors.New("srss: read out of range")
	// ErrNoHealthyNodes is returned when a tier has fewer healthy nodes
	// than the replication factor.
	ErrNoHealthyNodes = errors.New("srss: not enough healthy nodes")
	// ErrDeleted is returned when operating on a deleted PLog.
	ErrDeleted = errors.New("srss: plog deleted")
)

// PlacementError is the typed failure of replica placement: a tier had
// fewer healthy nodes than the replication factor. It unwraps to
// ErrNoHealthyNodes, so errors.Is checks keep working.
type PlacementError struct {
	Tier Tier
	Need int // replication factor requested
	Have int // healthy nodes available
}

// Error renders the placement failure.
func (e *PlacementError) Error() string {
	return fmt.Sprintf("srss: not enough healthy nodes: tier %v needs %d, have %d healthy",
		e.Tier, e.Need, e.Have)
}

// Unwrap ties the typed error into the ErrNoHealthyNodes chain.
func (e *PlacementError) Unwrap() error { return ErrNoHealthyNodes }

// Config configures a simulated SRSS deployment.
type Config struct {
	// Model is the latency model; nil means delay.Zero().
	Model *delay.Model
	// Waiter charges latencies; nil means a real sleeping waiter.
	Waiter delay.Waiter
	// ComputeNodes and StorageNodes size the two tiers. Defaults: 3 and 3.
	ComputeNodes int
	StorageNodes int
	// Replicas is the replication factor (default 3).
	Replicas int
	// MaxPLogSize caps each PLog (paper: 4 GiB). Tests use small values.
	MaxPLogSize int64
	// ChunkSize is the allocation granularity of replica buffers. Reads
	// wholly inside one chunk are zero-copy. Default 256 KiB.
	ChunkSize int
	// Chaos is the fault-injection engine driving the deployment's fault
	// schedule. Nil (the default) disables injection entirely; layers
	// above SRSS (wal, core) share this engine via Service.Chaos so one
	// seed governs the whole stack.
	Chaos *chaos.Engine
}

func (c *Config) fill() {
	if c.Model == nil {
		c.Model = delay.Zero()
	}
	if c.Waiter == nil {
		c.Waiter = delay.SleepWaiter{}
	}
	if c.ComputeNodes == 0 {
		c.ComputeNodes = 3
	}
	if c.StorageNodes == 0 {
		c.StorageNodes = 3
	}
	if c.Replicas == 0 {
		c.Replicas = 3
	}
	if c.MaxPLogSize == 0 {
		c.MaxPLogSize = 4 << 30
	}
	if c.ChunkSize == 0 {
		c.ChunkSize = 256 << 10
	}
}

// Stats counts service activity; all fields are updated atomically.
type Stats struct {
	Appends        atomic.Int64
	AppendBytes    atomic.Int64
	Reads          atomic.Int64
	ReadBytes      atomic.Int64
	Seals          atomic.Int64
	CrossLayerOps  atomic.Int64
	ComputeTierOps atomic.Int64
	// TornAppends counts chaos-injected torn replicated writes.
	TornAppends atomic.Int64
	// Repairs counts replicas re-replicated onto healthy nodes.
	Repairs atomic.Int64
	// RepairedPLogs counts PLogs restored to a fully healthy replica set.
	RepairedPLogs atomic.Int64
	// PlacementFailures counts replica placements rejected for lack of
	// healthy nodes (PLog creation and repair).
	PlacementFailures atomic.Int64
}

// Service is a simulated SRSS deployment: a set of compute nodes and storage
// nodes hosting replicated PLogs.
type Service struct {
	cfg    Config
	nextID atomic.Uint64

	mu    sync.RWMutex
	plogs map[PLogID]*PLog

	computeNodes []*Node
	storageNodes []*Node

	// rr provides round-robin placement per tier.
	rrCompute atomic.Uint64
	rrStorage atomic.Uint64

	// wellKnown is the management-node registry (Section 4.2: bootstrap
	// PLog IDs are "stored in a well-known location such as management
	// nodes"). Applications register the identity of metadata PLogs here
	// so the identity survives PLog seal-and-migrate cycles.
	wkMu      sync.RWMutex
	wellKnown map[string]PLogID

	// obsM holds observability handles; an atomic pointer because an
	// engine may attach a registry while another engine is already
	// driving traffic through the shared service.
	obsM atomic.Pointer[obsMetrics]

	stats Stats
}

// obsMetrics is the set of handles recorded on the service hot paths.
type obsMetrics struct {
	appendLatency     *obs.Histogram // charged append+replication latency, ns
	readLatency       *obs.Histogram // charged read latency, ns
	crossLayerOps     *obs.Counter
	computeOps        *obs.Counter
	seals             *obs.Counter
	tornAppends       *obs.Counter
	repairs           *obs.Counter
	placementFailures *obs.Counter
}

// AttachObs wires the service's hot paths to an observability registry.
// The first attachment wins; later calls (e.g. a replica engine sharing
// the deployment) are no-ops so counters are not split across registries.
func (s *Service) AttachObs(reg *obs.Registry) {
	if reg == nil {
		return
	}
	m := &obsMetrics{
		appendLatency:     reg.Histogram("srss.append_latency_ns"),
		readLatency:       reg.Histogram("srss.read_latency_ns"),
		crossLayerOps:     reg.Counter("srss.cross_layer_ops"),
		computeOps:        reg.Counter("srss.compute_tier_ops"),
		seals:             reg.Counter("srss.seals"),
		tornAppends:       reg.Counter("srss.torn_appends"),
		repairs:           reg.Counter("srss.repairs"),
		placementFailures: reg.Counter("srss.placement_failures"),
	}
	s.obsM.CompareAndSwap(nil, m)
}

// Node is one simulated compute or storage node.
type Node struct {
	ID     int
	Tier   Tier
	failed atomic.Bool
}

// Fail marks the node failed: subsequent replicated writes touching it seal
// their PLogs.
func (n *Node) Fail() { n.failed.Store(true) }

// Heal clears the failed state.
func (n *Node) Heal() { n.failed.Store(false) }

// Failed reports whether the node is marked failed.
func (n *Node) Failed() bool { return n.failed.Load() }

// New builds a service from cfg.
func New(cfg Config) *Service {
	cfg.fill()
	s := &Service{
		cfg:       cfg,
		plogs:     make(map[PLogID]*PLog),
		wellKnown: make(map[string]PLogID),
	}
	for i := 0; i < cfg.ComputeNodes; i++ {
		s.computeNodes = append(s.computeNodes, &Node{ID: i, Tier: TierCompute})
	}
	for i := 0; i < cfg.StorageNodes; i++ {
		s.storageNodes = append(s.storageNodes, &Node{ID: i, Tier: TierStorage})
	}
	return s
}

// Stats exposes the service counters.
func (s *Service) Stats() *Stats { return &s.stats }

// SetWellKnown registers a named bootstrap PLog ID with the management
// nodes.
func (s *Service) SetWellKnown(name string, id PLogID) {
	s.wkMu.Lock()
	s.wellKnown[name] = id
	s.wkMu.Unlock()
}

// WellKnown resolves a named bootstrap PLog ID.
func (s *Service) WellKnown(name string) (PLogID, bool) {
	s.wkMu.RLock()
	defer s.wkMu.RUnlock()
	id, ok := s.wellKnown[name]
	return id, ok
}

// Model exposes the latency model so co-simulated devices (e.g. the
// baseline engine's buffer pool) charge consistent costs.
func (s *Service) Model() *delay.Model { return s.cfg.Model }

// Waiter exposes the latency sink.
func (s *Service) Waiter() delay.Waiter { return s.cfg.Waiter }

// Chaos exposes the fault-injection engine (nil when injection is off).
// The wal and core layers share it so one seed drives the whole stack.
func (s *Service) Chaos() *chaos.Engine { return s.cfg.Chaos }

// ComputeNode returns compute node i (for failure injection in tests).
func (s *Service) ComputeNode(i int) *Node { return s.computeNodes[i] }

// StorageNode returns storage node i.
func (s *Service) StorageNode(i int) *Node { return s.storageNodes[i] }

// MaxPLogSize reports the configured PLog capacity.
func (s *Service) MaxPLogSize() int64 { return s.cfg.MaxPLogSize }

func (s *Service) newID(tier Tier) PLogID {
	n := s.nextID.Add(1)
	var id PLogID
	id[0] = 'P'
	id[1] = 'L'
	id[2] = byte(tier) + 1
	for i := 0; i < 8; i++ {
		id[8+i] = byte(n >> (8 * (7 - i)))
	}
	return id
}

// pickNodes selects replica hosts for a new PLog, skipping failed nodes.
func (s *Service) pickNodes(tier Tier) ([]*Node, error) {
	var pool []*Node
	var rr *atomic.Uint64
	if tier == TierCompute {
		pool, rr = s.computeNodes, &s.rrCompute
	} else {
		pool, rr = s.storageNodes, &s.rrStorage
	}
	start := int(rr.Add(1))
	var picked []*Node
	for i := 0; i < len(pool) && len(picked) < s.cfg.Replicas; i++ {
		n := pool[(start+i)%len(pool)]
		if !n.Failed() {
			picked = append(picked, n)
		}
	}
	if len(picked) < s.cfg.Replicas {
		s.stats.PlacementFailures.Add(1)
		if om := s.obsM.Load(); om != nil {
			om.placementFailures.Inc()
		}
		return nil, &PlacementError{Tier: tier, Need: s.cfg.Replicas, Have: len(picked)}
	}
	return picked, nil
}

// Create allocates a new PLog in the given tier and returns it open.
func (s *Service) Create(tier Tier) (*PLog, error) {
	nodes, err := s.pickNodes(tier)
	if err != nil {
		return nil, err
	}
	p := &PLog{
		id:   s.newID(tier),
		tier: tier,
		svc:  s,
	}
	reps := make([]*replica, 0, len(nodes))
	for _, n := range nodes {
		reps = append(reps, &replica{node: n, chunkSize: s.cfg.ChunkSize})
	}
	p.reps.Store(&reps)
	s.mu.Lock()
	s.plogs[p.id] = p
	s.mu.Unlock()
	return p, nil
}

// ImportPLog creates (or reopens) a PLog under a caller-supplied ID. Log
// shipping uses it: a replica process mirrors the primary's PLogs into its
// own SRSS deployment under the same identities, so the WAL directory and
// manifest it ships refer to valid local PLogs. Idempotent: importing an
// existing ID returns the existing PLog. The internal ID counter is bumped
// past the imported counter so locally-created PLogs never collide with
// later imports.
func (s *Service) ImportPLog(id PLogID, tier Tier) (*PLog, error) {
	s.mu.Lock()
	if p, ok := s.plogs[id]; ok {
		s.mu.Unlock()
		if p.deleted.Load() {
			return nil, fmt.Errorf("%w: %v", ErrDeleted, id)
		}
		return p, nil
	}
	s.mu.Unlock()
	nodes, err := s.pickNodes(tier)
	if err != nil {
		return nil, err
	}
	p := &PLog{id: id, tier: tier, svc: s}
	reps := make([]*replica, 0, len(nodes))
	for _, n := range nodes {
		reps = append(reps, &replica{node: n, chunkSize: s.cfg.ChunkSize})
	}
	p.reps.Store(&reps)
	s.mu.Lock()
	if existing, ok := s.plogs[id]; ok { // lost a race with another import
		s.mu.Unlock()
		return existing, nil
	}
	s.plogs[id] = p
	s.mu.Unlock()
	// Keep newID ahead of the imported counter (bytes 8..15 of the ID).
	var ctr uint64
	for i := 0; i < 8; i++ {
		ctr = ctr<<8 | uint64(id[8+i])
	}
	for {
		cur := s.nextID.Load()
		if cur >= ctr || s.nextID.CompareAndSwap(cur, ctr) {
			break
		}
	}
	return p, nil
}

// Open returns an existing PLog by ID.
func (s *Service) Open(id PLogID) (*PLog, error) {
	s.mu.RLock()
	p, ok := s.plogs[id]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrNotFound, id)
	}
	if p.deleted.Load() {
		return nil, fmt.Errorf("%w: %v", ErrDeleted, id)
	}
	return p, nil
}

// Delete removes a PLog and frees its replicas. Space reclaimed this way is
// how log compaction discards dead segments.
func (s *Service) Delete(id PLogID) error {
	s.mu.Lock()
	p, ok := s.plogs[id]
	if ok {
		delete(s.plogs, id)
	}
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %v", ErrNotFound, id)
	}
	p.deleted.Store(true)
	return nil
}

// List returns the IDs of all live PLogs in a tier (directory bootstrap and
// tests).
func (s *Service) List(tier Tier) []PLogID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var ids []PLogID
	for id, p := range s.plogs {
		if p.tier == tier && !p.deleted.Load() {
			ids = append(ids, id)
		}
	}
	return ids
}

// chargeAppend applies the tier-appropriate append latency for n bytes.
func (s *Service) chargeAppend(tier Tier, n int) {
	m := s.cfg.Model
	var d time.Duration
	if tier == TierCompute {
		// Local PM persist plus parallel RDMA replication to the two
		// peers: the synchronous wait is the slower of the two.
		d = m.ComputePMAppend + m.IntraComputeRTT
		s.stats.ComputeTierOps.Add(1)
	} else {
		// Cross the compute->storage network, then the primary
		// replicates inside the storage tier and persists to SSD.
		d = m.CrossLayerRTT + m.IntraStorageRTT + m.SSDWrite
		s.stats.CrossLayerOps.Add(1)
	}
	d += time.Duration(n) * m.PerByteAppend
	if om := s.obsM.Load(); om != nil {
		om.appendLatency.Record(int64(d))
		if tier == TierCompute {
			om.computeOps.Inc()
		} else {
			om.crossLayerOps.Inc()
		}
	}
	s.cfg.Waiter.Wait(d)
}

// chargeRead applies the tier-appropriate read latency.
func (s *Service) chargeRead(tier Tier, n int) {
	m := s.cfg.Model
	var d time.Duration
	if tier == TierCompute {
		d = m.PMRead
		s.stats.ComputeTierOps.Add(1)
	} else {
		d = m.CrossLayerRTT + m.SSDRead
		s.stats.CrossLayerOps.Add(1)
	}
	if om := s.obsM.Load(); om != nil {
		om.readLatency.Record(int64(d))
		if tier == TierCompute {
			om.computeOps.Inc()
		} else {
			om.crossLayerOps.Inc()
		}
	}
	s.cfg.Waiter.Wait(d)
	_ = n
}

// replica is one node's copy of a PLog, stored in fixed-size chunks so that
// committed bytes never move (append-only => stable zero-copy views).
type replica struct {
	node      *Node
	chunkSize int

	mu     sync.RWMutex
	chunks [][]byte
	size   int64
}

func (r *replica) append(data []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	off := 0
	for off < len(data) {
		last := len(r.chunks) - 1
		if last < 0 || len(r.chunks[last]) == cap(r.chunks[last]) {
			r.chunks = append(r.chunks, make([]byte, 0, r.chunkSize))
			last++
		}
		c := r.chunks[last]
		n := copy(c[len(c):cap(c)], data[off:])
		r.chunks[last] = c[:len(c)+n]
		off += n
	}
	r.size += int64(len(data))
}

// extent returns the replica's persisted length. Replica extents can
// diverge from the PLog size (and from each other) only after a torn
// write.
func (r *replica) extent() int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.size
}

// readAt copies len(p) bytes at off into p. The caller validated the range.
func (r *replica) readAt(p []byte, off int64) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	cs := int64(r.chunkSize)
	for len(p) > 0 {
		ci := off / cs
		co := off % cs
		c := r.chunks[ci]
		n := copy(p, c[co:])
		p = p[n:]
		off += int64(n)
	}
}

// slice returns a zero-copy view of [off, off+n) when it fits in one chunk,
// else a copy. Safe because appended bytes are immutable.
func (r *replica) slice(off int64, n int) []byte {
	r.mu.RLock()
	cs := int64(r.chunkSize)
	ci := off / cs
	co := off % cs
	if co+int64(n) <= int64(len(r.chunks[ci])) {
		b := r.chunks[ci][co : co+int64(n) : co+int64(n)]
		r.mu.RUnlock()
		return b
	}
	r.mu.RUnlock()
	out := make([]byte, n)
	r.readAt(out, off)
	return out
}

// PLog is one replicated persistent log.
type PLog struct {
	id   PLogID
	tier Tier
	svc  *Service

	mu      sync.Mutex // serializes appends and repair (SRSS appends are atomic)
	size    atomic.Int64
	sealed  atomic.Bool
	deleted atomic.Bool
	// torn marks a chaos-injected torn write: replica extents (and the
	// bytes past the last acked append) may diverge; readers must route
	// by extent and recovery must truncate the invalid tail.
	torn atomic.Bool
	// reps is the current replica set, an immutable slice swapped
	// atomically so readers never lock; repair replaces failed-node
	// replicas under p.mu (serialized against appends).
	reps atomic.Pointer[[]*replica]
}

// replicaList returns the current replica set (immutable snapshot).
func (p *PLog) replicaList() []*replica { return *p.reps.Load() }

// ID returns the PLog's identifier.
func (p *PLog) ID() PLogID { return p.id }

// Tier returns the tier the PLog lives in.
func (p *PLog) Tier() Tier { return p.tier }

// Size returns the durable length in bytes.
func (p *PLog) Size() int64 { return p.size.Load() }

// Sealed reports whether the PLog has been permanently sealed.
func (p *PLog) Sealed() bool { return p.sealed.Load() }

// Seal permanently closes the PLog to writes. Reads remain valid.
func (p *PLog) Seal() {
	if !p.sealed.Swap(true) {
		p.svc.stats.Seals.Add(1)
		if om := p.svc.obsM.Load(); om != nil {
			om.seals.Inc()
		}
	}
}

// Append atomically appends data to the PLog, replicating it to all replica
// nodes before returning the offset at which the data landed.
//
// If any replica node has failed, the PLog is sealed and ErrSealed is
// returned; per the SRSS contract the caller must create a fresh PLog and
// retry the append there.
func (p *PLog) Append(data []byte) (int64, error) {
	off, _, err := p.AppendTimed(data)
	return off, err
}

// AppendTimed is Append, additionally reporting the wall-clock nanoseconds
// spent in the replication fan-out (the modeled per-tier latency charge
// plus writing every replica). Tracing uses this to carve the replication
// cost out of the enclosing group-commit flush span.
func (p *PLog) AppendTimed(data []byte) (off int64, replicateNS int64, err error) {
	if len(data) == 0 {
		return p.size.Load(), 0, nil
	}
	ch := p.svc.cfg.Chaos
	if err := ch.Check(SiteAppendBefore); err != nil {
		// Crash before replication: the append is lost entirely.
		return 0, 0, fmt.Errorf("append to %v: %w", p.id, err)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.deleted.Load() {
		return 0, 0, fmt.Errorf("%w: %v", ErrDeleted, p.id)
	}
	if p.sealed.Load() {
		return 0, 0, fmt.Errorf("%w: %v", ErrSealed, p.id)
	}
	off = p.size.Load()
	if off+int64(len(data)) > p.svc.cfg.MaxPLogSize {
		return 0, 0, fmt.Errorf("%w: %v (size %d + %d > %d)",
			ErrFull, p.id, off, len(data), p.svc.cfg.MaxPLogSize)
	}
	reps := p.replicaList()
	for _, r := range reps {
		if r.node.Failed() {
			p.sealTornLocked(false)
			return 0, 0, fmt.Errorf("%w: %v (replica node %d failed mid-write)",
				ErrSealed, p.id, r.node.ID)
		}
	}
	if cuts, torn := ch.TearPlan(SiteAppendTear, len(data), len(reps)); torn {
		// Torn replicated write: the writer died mid-replication. Each
		// replica keeps its own prefix; the physical extent recovery will
		// scan is the longest prefix, and it was never acked.
		ext := 0
		for i, r := range reps {
			if cuts[i] > 0 {
				r.append(data[:cuts[i]])
			}
			if cuts[i] > ext {
				ext = cuts[i]
			}
		}
		p.sealTornLocked(true)
		p.size.Store(off + int64(ext))
		p.svc.stats.TornAppends.Add(1)
		if om := p.svc.obsM.Load(); om != nil {
			om.tornAppends.Inc()
		}
		return 0, 0, fmt.Errorf("torn append to %v (%d/%d bytes replicated): %w",
			p.id, ext, len(data), chaos.ErrCrashed)
	}
	replStart := time.Now()
	p.svc.chargeAppend(p.tier, len(data))
	for _, r := range reps {
		r.append(data)
	}
	replicateNS = int64(time.Since(replStart))
	p.size.Store(off + int64(len(data)))
	p.svc.stats.Appends.Add(1)
	p.svc.stats.AppendBytes.Add(int64(len(data)))
	if err := ch.Check(SiteAppendAfter); err != nil {
		// Crash after replication: the bytes are durable on every
		// replica (recovery will see them) but the ack never reaches the
		// caller -- the classic ambiguous-commit window.
		return 0, 0, fmt.Errorf("append to %v durable but unacked: %w", p.id, err)
	}
	return off, replicateNS, nil
}

// sealTornLocked seals the PLog (and optionally marks it torn) under p.mu,
// keeping the seal stats in one place.
func (p *PLog) sealTornLocked(torn bool) {
	if torn {
		p.torn.Store(true)
	}
	if !p.sealed.Swap(true) {
		p.svc.stats.Seals.Add(1)
		if om := p.svc.obsM.Load(); om != nil {
			om.seals.Inc()
		}
	}
}

// Torn reports whether a torn write was injected into this PLog: replica
// contents past the last acked append may diverge.
func (p *PLog) Torn() bool { return p.torn.Load() }

// SealTorn seals the PLog and marks it torn. Log shipping uses it to mirror
// a primary PLog's torn state onto the follower's local copy, so the
// follower's tail classification truncates at the same offset recovery
// would.
func (p *PLog) SealTorn() {
	p.mu.Lock()
	p.sealTornLocked(true)
	p.mu.Unlock()
}

// replicaFor returns a replica whose extent covers [0, end), preferring
// healthy nodes; if none covers it (possible only on torn PLogs), the
// longest replica wins. Data outlives node liveness in the simulation, so
// an all-failed replica set still serves reads.
func (p *PLog) replicaFor(end int64) *replica {
	reps := p.replicaList()
	var anyCovering, longest *replica
	var longestExt int64 = -1
	for _, r := range reps {
		ext := r.extent()
		if ext > longestExt {
			longest, longestExt = r, ext
		}
		if ext < end {
			continue
		}
		if !r.node.Failed() {
			return r
		}
		if anyCovering == nil {
			anyCovering = r
		}
	}
	if anyCovering != nil {
		return anyCovering
	}
	return longest
}

// ReadAt copies len(b) bytes from offset off into b, charging read latency.
// Reads can be served by any replica (routed to a healthy one).
func (p *PLog) ReadAt(b []byte, off int64) (int, error) {
	if err := p.svc.cfg.Chaos.Check(SiteRead); err != nil {
		return 0, fmt.Errorf("read of %v: %w", p.id, err)
	}
	if p.deleted.Load() {
		return 0, fmt.Errorf("%w: %v", ErrDeleted, p.id)
	}
	if off < 0 || off+int64(len(b)) > p.size.Load() {
		return 0, fmt.Errorf("%w: [%d,+%d) of %d", ErrOutOfRange, off, len(b), p.size.Load())
	}
	p.svc.chargeRead(p.tier, len(b))
	r := p.replicaFor(off + int64(len(b)))
	if r.extent() < off+int64(len(b)) {
		// Only reachable on a torn PLog: no replica covers the range.
		return 0, fmt.Errorf("%w: [%d,+%d) torn at %d", ErrOutOfRange, off, len(b), r.extent())
	}
	r.readAt(b, off)
	p.svc.stats.Reads.Add(1)
	p.svc.stats.ReadBytes.Add(int64(len(b)))
	return len(b), nil
}

// Mmap returns a read-only view of the PLog, mirroring the SRSS kernel
// module's mmap support (Section 2.3). Views are cheap; each access charges
// the tier read latency once per "page fault"-sized access.
func (p *PLog) Mmap() *View {
	return &View{plog: p}
}

// View is a read-only mmap-style window into a PLog.
type View struct {
	plog *PLog
}

// Len returns the durable length visible through the view.
func (v *View) Len() int64 { return v.plog.size.Load() }

// PLog returns the underlying PLog.
func (v *View) PLog() *PLog { return v.plog }

// At returns n bytes at offset off. The returned slice is valid forever
// (append-only storage) and is zero-copy when the range does not straddle an
// internal chunk boundary.
func (v *View) At(off int64, n int) ([]byte, error) {
	p := v.plog
	if err := p.svc.cfg.Chaos.Check(SiteRead); err != nil {
		return nil, fmt.Errorf("view read of %v: %w", p.id, err)
	}
	if p.deleted.Load() {
		return nil, fmt.Errorf("%w: %v", ErrDeleted, p.id)
	}
	if off < 0 || off+int64(n) > p.size.Load() {
		return nil, fmt.Errorf("%w: [%d,+%d) of %d", ErrOutOfRange, off, n, p.size.Load())
	}
	p.svc.chargeRead(p.tier, n)
	r := p.replicaFor(off + int64(n))
	if r.extent() < off+int64(n) {
		return nil, fmt.Errorf("%w: [%d,+%d) torn at %d", ErrOutOfRange, off, n, r.extent())
	}
	p.svc.stats.Reads.Add(1)
	p.svc.stats.ReadBytes.Add(int64(n))
	return r.slice(off, n), nil
}

// replicasEqual verifies that all replicas hold identical bytes over the
// full durable extent; used by invariant tests. Torn PLogs fail this check
// by design (replica extents diverge past the last acked append).
func (p *PLog) replicasEqual() bool {
	return p.ReplicasConsistentFrom(0)
}

// CheckReplicas is the exported invariant hook for tests.
func (p *PLog) CheckReplicas() bool { return p.replicasEqual() }

// Replicas returns the current replica count.
func (p *PLog) Replicas() int { return len(p.replicaList()) }

// ReplicaNodes returns the node IDs currently hosting replicas, in replica
// order. Repair changes this set.
func (p *PLog) ReplicaNodes() []int {
	reps := p.replicaList()
	ids := make([]int, len(reps))
	for i, r := range reps {
		ids[i] = r.node.ID
	}
	return ids
}

// ReplicaExtent returns the persisted length of replica i. Extents diverge
// from Size (and from each other) only on torn PLogs.
func (p *PLog) ReplicaExtent(i int) int64 {
	reps := p.replicaList()
	if i < 0 || i >= len(reps) {
		return -1
	}
	return reps[i].extent()
}

// ReadReplicaAt reads from one specific replica, bypassing routing; recovery
// uses it to cross-check replicas around a suspected torn tail. Returns the
// number of bytes the replica could serve (short on torn replicas).
func (p *PLog) ReadReplicaAt(i int, b []byte, off int64) (int, error) {
	reps := p.replicaList()
	if i < 0 || i >= len(reps) {
		return 0, fmt.Errorf("%w: replica %d of %d", ErrOutOfRange, i, len(reps))
	}
	r := reps[i]
	ext := r.extent()
	if off < 0 || off > ext {
		return 0, fmt.Errorf("%w: replica %d offset %d of %d", ErrOutOfRange, i, off, ext)
	}
	n := len(b)
	if int64(n) > ext-off {
		n = int(ext - off)
	}
	if n > 0 {
		r.readAt(b[:n], off)
	}
	return n, nil
}

// ReplicasConsistentFrom reports whether every replica agrees byte-for-byte
// from off to the physical end of the PLog: equal extents and equal
// contents. A torn write leaves divergent suffixes, so recovery calls this
// to distinguish "record half-written then crashed" (inconsistent or short
// replicas => truncate) from genuine corruption.
func (p *PLog) ReplicasConsistentFrom(off int64) bool {
	reps := p.replicaList()
	if len(reps) == 0 {
		return true
	}
	ext := reps[0].extent()
	for _, r := range reps[1:] {
		if r.extent() != ext {
			return false
		}
	}
	if off >= ext {
		return true
	}
	n := ext - off
	ref := make([]byte, n)
	reps[0].readAt(ref, off)
	buf := make([]byte, n)
	for _, r := range reps[1:] {
		r.readAt(buf, off)
		if !bytes.Equal(ref, buf) {
			return false
		}
	}
	return true
}

// Destage copies a compute-tier PLog into a new storage-tier PLog and
// returns it. HiEngine destages the log tail to the storage tier in the
// background for archival and cross-AZ durability (Section 3.1).
func (s *Service) Destage(p *PLog) (*PLog, error) {
	if p.tier != TierCompute {
		return nil, fmt.Errorf("srss: destage of %v plog", p.tier)
	}
	dst, err := s.Create(TierStorage)
	if err != nil {
		return nil, err
	}
	const batch = 1 << 20
	buf := make([]byte, batch)
	size := p.Size()
	for off := int64(0); off < size; {
		if off > 0 {
			if err := s.cfg.Chaos.Check(SiteDestageMid); err != nil {
				// Crash between copy batches: dst is a partial,
				// unregistered storage PLog the directory never records.
				return nil, fmt.Errorf("destage of %v at %d/%d: %w", p.id, off, size, err)
			}
		}
		n := batch
		if int64(n) > size-off {
			n = int(size - off)
		}
		if _, err := p.ReadAt(buf[:n], off); err != nil {
			return nil, err
		}
		if _, err := dst.Append(buf[:n]); err != nil {
			return nil, err
		}
		off += int64(n)
	}
	return dst, nil
}

// ---------------------------------------------------------------------------
// Replica repair
//
// When a replica node fails, the PLog seals and the writer moves on to a
// fresh PLog -- but the sealed PLog keeps serving reads with a degraded
// replica set. The repairer restores full redundancy in the background: for
// each PLog with a failed replica node it copies the longest replica's
// extent onto a healthy spare node and swaps the new replica into the set.
// ---------------------------------------------------------------------------

// degraded reports whether any replica sits on a failed node.
func (p *PLog) degraded() bool {
	for _, r := range p.replicaList() {
		if r.node.Failed() {
			return true
		}
	}
	return false
}

// spareNodes returns healthy nodes in p's tier not already hosting a
// replica of p.
func (s *Service) spareNodes(p *PLog) []*Node {
	pool := s.computeNodes
	if p.tier == TierStorage {
		pool = s.storageNodes
	}
	hosting := make(map[int]bool)
	for _, r := range p.replicaList() {
		hosting[r.node.ID] = true
	}
	var spares []*Node
	for _, n := range pool {
		if !n.Failed() && !hosting[n.ID] {
			spares = append(spares, n)
		}
	}
	return spares
}

// repairPLog re-replicates p onto healthy spare nodes until every replica
// is healthy (or spares run out). It returns the number of replicas
// replaced. Runs under p.mu so repair serializes with appends; readers keep
// going lock-free against the old immutable replica slice until the swap.
func (s *Service) repairPLog(p *PLog) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.deleted.Load() {
		return 0, nil
	}
	old := p.replicaList()
	// Source: the longest replica. After a torn write the longest prefix is
	// the physical extent recovery scans, so repair must preserve it; node
	// failure does not destroy data in the simulation (or in SRSS, where
	// "failed" means unreachable, not erased), so reading from a failed
	// node's replica is the degraded-but-correct path when it is longest.
	var src *replica
	for _, r := range old {
		if src == nil || r.extent() > src.extent() {
			src = r
		}
	}
	if src == nil {
		return 0, nil
	}
	spares := s.spareNodes(p)
	replaced := 0
	next := make([]*replica, len(old))
	copy(next, old)
	for i, r := range next {
		if !r.node.Failed() {
			continue
		}
		if len(spares) == 0 {
			break
		}
		node := spares[0]
		spares = spares[1:]
		nr := &replica{node: node, chunkSize: s.cfg.ChunkSize}
		ext := src.extent()
		const batch = 1 << 20
		buf := make([]byte, batch)
		for off := int64(0); off < ext; {
			n := batch
			if int64(n) > ext-off {
				n = int(ext - off)
			}
			src.readAt(buf[:n], off)
			nr.append(buf[:n])
			off += int64(n)
		}
		s.chargeAppend(p.tier, int(ext))
		next[i] = nr
		replaced++
		s.stats.Repairs.Add(1)
		if om := s.obsM.Load(); om != nil {
			om.repairs.Inc()
		}
	}
	if replaced == 0 {
		if len(s.spareNodes(p)) == 0 {
			return 0, &PlacementError{Tier: p.tier, Need: s.cfg.Replicas, Have: len(spares)}
		}
		return 0, nil
	}
	p.reps.Store(&next)
	healthy := true
	for _, r := range next {
		if r.node.Failed() {
			healthy = false
			break
		}
	}
	if healthy {
		p.svc.stats.RepairedPLogs.Add(1)
	}
	return replaced, nil
}

// RepairOnce sweeps every live PLog and re-replicates degraded ones onto
// healthy spares. It returns the number of replicas replaced. PLogs that
// cannot be repaired (no spares) are skipped, not failed: the sweep is
// best-effort and the next pass retries.
func (s *Service) RepairOnce() (int, error) {
	s.mu.RLock()
	var degraded []*PLog
	for _, p := range s.plogs {
		if !p.deleted.Load() && p.degraded() {
			degraded = append(degraded, p)
		}
	}
	s.mu.RUnlock()
	total := 0
	var firstErr error
	for _, p := range degraded {
		n, err := s.repairPLog(p)
		total += n
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return total, firstErr
}

// StartRepairer runs RepairOnce every interval until the returned stop
// function is called. Stop blocks until the loop exits.
func (s *Service) StartRepairer(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	done := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				s.RepairOnce() //nolint:errcheck // best-effort sweep; next tick retries
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			<-exited
		})
	}
}
