package clock

import (
	"sync"
	"testing"
	"time"

	"hiengine/internal/delay"
)

func TestCounterMonotonicUnique(t *testing.T) {
	c := NewCounter(0)
	const workers, per = 8, 1000
	var mu sync.Mutex
	seen := make(map[CSN]bool, workers*per)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]CSN, 0, per)
			for i := 0; i < per; i++ {
				local = append(local, c.Next())
			}
			mu.Lock()
			for _, csn := range local {
				if seen[csn] {
					t.Errorf("duplicate CSN %d", csn)
				}
				seen[csn] = true
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	if got := c.Now(); got != workers*per {
		t.Fatalf("Now = %d, want %d", got, workers*per)
	}
}

func TestCounterNowDoesNotAdvance(t *testing.T) {
	c := NewCounter(5)
	if c.Now() != 5 || c.Now() != 5 {
		t.Fatal("Now advanced the counter")
	}
	if c.Next() != 6 {
		t.Fatal("Next did not advance from 5")
	}
}

func TestCounterAdvanceTo(t *testing.T) {
	c := NewCounter(10)
	c.AdvanceTo(100)
	if c.Now() != 100 {
		t.Fatalf("AdvanceTo(100): Now = %d", c.Now())
	}
	c.AdvanceTo(50) // must not regress
	if c.Now() != 100 {
		t.Fatalf("AdvanceTo(50) regressed to %d", c.Now())
	}
}

func TestLogicalClockChargesRDMA(t *testing.T) {
	var w delay.CountingWaiter
	m := &delay.Model{RDMAFetchAdd: 13 * time.Microsecond}
	lc := NewLogicalClock(m, &w, 0)
	lc.Next()
	lc.Next()
	lc.Now()
	if got := w.Total(); got != 39*time.Microsecond {
		t.Fatalf("charged %v, want 39µs (3 RDMA ops)", got)
	}
	if got := lc.Now(); got != 2 {
		t.Fatalf("counter = %d, want 2", got)
	}
}

func TestLogicalClockNICCapQueues(t *testing.T) {
	var w delay.CountingWaiter
	lc := NewLogicalClock(delay.Zero(), &w, 10) // tiny cap: 10 grants/sec
	for i := 0; i < 15; i++ {
		lc.Next()
	}
	// 5 grants over the cap must have been charged queueing delay.
	if w.Total() == 0 {
		t.Fatal("saturated NIC charged no queueing delay")
	}
}

func TestGlobalClockMonotone(t *testing.T) {
	g := NewGlobalClock(0, &delay.CountingWaiter{})
	prev := g.Now()
	for i := 0; i < 10000; i++ {
		cur := g.Now()
		if cur <= prev {
			t.Fatalf("timestamp regressed: %d after %d", cur, prev)
		}
		prev = cur
	}
}

func TestGlobalClockCommitWait(t *testing.T) {
	var w delay.CountingWaiter
	eps := 10 * time.Microsecond
	g := NewGlobalClock(eps, &w)
	g.Next()
	g.Next()
	if got := w.Total(); got != 2*eps {
		t.Fatalf("commit wait charged %v, want %v", got, 2*eps)
	}
}

func TestGlobalClockFasterThanLogicalAtPaperParams(t *testing.T) {
	// Section 5.3: global clock grant (epsilon 10-20µs) beats the logical
	// clock's ~40µs RDMA grant at 3 nodes. Validate via charged latency.
	var wl, wg delay.CountingWaiter
	m := &delay.Model{RDMAFetchAdd: 40 * time.Microsecond}
	lc := NewLogicalClock(m, &wl, 0)
	gc := NewGlobalClock(20*time.Microsecond, &wg)
	for i := 0; i < 100; i++ {
		lc.Next()
		gc.Next()
	}
	if wg.Total()*2 > wl.Total() {
		t.Fatalf("global clock (%v) not ~2x faster than logical (%v)", wg.Total(), wl.Total())
	}
}

func TestSourcesImplementInterface(t *testing.T) {
	var _ Source = NewCounter(0)
	var _ Source = NewLogicalClock(delay.Zero(), &delay.CountingWaiter{}, 0)
	var _ Source = NewGlobalClock(0, &delay.CountingWaiter{})
}
