// Package clock provides the timestamp-allocation mechanisms HiEngine uses
// for MVCC ordering: a process-local CSN counter (the standalone mode used by
// the single-master engine), a distributed logical clock modeled as a
// centralized atomic advanced over one-sided RDMA, and a high-precision
// global clock with a bounded time-uncertainty epsilon (Section 5.3).
package clock

import (
	"sync"
	"sync/atomic"
	"time"

	"hiengine/internal/delay"
)

// CSN is a commit sequence number: a logical timestamp that totally orders
// transaction commits. CSN 0 is reserved ("never"), and the loader uses CSN 1
// for bulk-loaded data.
type CSN = uint64

// Source grants begin timestamps and commit sequence numbers.
type Source interface {
	// Now returns the current timestamp without advancing the clock
	// (transaction begin).
	Now() CSN
	// Next advances the clock and returns a fresh, globally unique
	// timestamp (transaction commit).
	Next() CSN
}

// Counter is the standalone CSN source: a single atomic counter. Now() is a
// load, Next() a fetch-add, exactly as Section 3.5 describes.
type Counter struct {
	csn atomic.Uint64
}

// NewCounter returns a counter whose first Next() call returns start+1.
func NewCounter(start CSN) *Counter {
	c := &Counter{}
	c.csn.Store(start)
	return c
}

// Now implements Source.
func (c *Counter) Now() CSN { return c.csn.Load() }

// Next implements Source.
func (c *Counter) Next() CSN { return c.csn.Add(1) }

// AdvanceTo raises the counter to at least csn. Used by recovery to resume
// allocation above the highest replayed commit.
func (c *Counter) AdvanceTo(csn CSN) {
	for {
		cur := c.csn.Load()
		if cur >= csn || c.csn.CompareAndSwap(cur, csn) {
			return
		}
	}
}

// LogicalClock models the distributed logical clock of Section 5.3: a global
// centralized atomic variable hosted on one node and advanced by every other
// node with a one-sided RDMA fetch-and-add. Each grant therefore pays the
// RDMA round trip, and the hosting NIC caps aggregate grant throughput at
// its packets-per-second limit (the paper: ~1.5M PPS, ~40us average at 3
// nodes and degrading as nodes are added).
type LogicalClock struct {
	counter atomic.Uint64
	model   *delay.Model
	waiter  delay.Waiter

	// NIC packet-per-second cap on the hosting node. Zero disables the cap.
	nicPPS int64

	mu           sync.Mutex
	windowStart  time.Time
	windowGrants int64
}

// NewLogicalClock builds a logical clock over the given latency model.
// nicPPS caps grant throughput (0 = uncapped).
func NewLogicalClock(model *delay.Model, waiter delay.Waiter, nicPPS int64) *LogicalClock {
	if waiter == nil {
		waiter = delay.SleepWaiter{}
	}
	return &LogicalClock{model: model, waiter: waiter, nicPPS: nicPPS}
}

// Now performs a remote read of the counter (one RDMA round trip).
func (l *LogicalClock) Now() CSN {
	l.charge()
	return l.counter.Load()
}

// Next performs a remote fetch-and-add (one RDMA round trip, subject to the
// NIC PPS cap).
func (l *LogicalClock) Next() CSN {
	l.charge()
	return l.counter.Add(1)
}

// charge applies the RDMA latency and, when the NIC is saturated, the
// queueing delay implied by the PPS cap.
func (l *LogicalClock) charge() {
	l.waiter.Wait(l.model.RDMAFetchAdd)
	if l.nicPPS <= 0 {
		return
	}
	l.mu.Lock()
	now := time.Now()
	if l.windowStart.IsZero() || now.Sub(l.windowStart) >= time.Second {
		l.windowStart = now
		l.windowGrants = 0
	}
	l.windowGrants++
	over := l.windowGrants - l.nicPPS
	l.mu.Unlock()
	if over > 0 {
		// Saturated: each excess packet queues behind the cap.
		l.waiter.Wait(time.Duration(over) * time.Second / time.Duration(l.nicPPS))
	}
}

// GlobalClock models the high-precision synchronized hardware clock of
// Section 5.3. Reading it is local (no network), but every timestamp carries
// an uncertainty bound epsilon; to guarantee external consistency a commit
// must wait out the uncertainty window before its timestamp is exposed
// (Spanner-style commit wait). The paper reports epsilon of 10us with atomic
// clocks and 20us without, about 2x faster than the logical clock and free
// of the NIC bottleneck.
type GlobalClock struct {
	epsilon time.Duration
	waiter  delay.Waiter
	// last ensures timestamps are strictly monotone even if the physical
	// clock is read twice in the same nanosecond.
	last atomic.Uint64
}

// NewGlobalClock builds a global clock with uncertainty epsilon.
func NewGlobalClock(epsilon time.Duration, waiter delay.Waiter) *GlobalClock {
	if waiter == nil {
		waiter = delay.SleepWaiter{}
	}
	return &GlobalClock{epsilon: epsilon, waiter: waiter}
}

// Epsilon returns the clock's uncertainty bound.
func (g *GlobalClock) Epsilon() time.Duration { return g.epsilon }

// Now returns the current physical timestamp (monotone, nanoseconds).
func (g *GlobalClock) Now() CSN {
	ts := uint64(time.Now().UnixNano())
	for {
		last := g.last.Load()
		if ts <= last {
			ts = last + 1
		}
		if g.last.CompareAndSwap(last, ts) {
			return ts
		}
	}
}

// Next grants a commit timestamp: it reads the physical clock and waits out
// the uncertainty interval so that the timestamp is in the past on every
// node when released.
func (g *GlobalClock) Next() CSN {
	ts := g.Now()
	g.waiter.Wait(g.epsilon)
	return ts
}
