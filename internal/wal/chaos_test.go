package wal

import (
	"errors"
	"testing"

	"hiengine/internal/chaos"
	"hiengine/internal/obs"
	"hiengine/internal/srss"
)

// TestAppendGiveupWhenTierDown: with every storage node failed, the bounded
// retry loop gives up with an error wrapping srss.ErrNoHealthyNodes instead
// of spinning forever.
func TestAppendGiveupWhenTierDown(t *testing.T) {
	svc := srss.New(srss.Config{MaxPLogSize: 1 << 20, ComputeNodes: 3})
	m, err := Open(Config{Service: svc, Streams: 1, Obs: obs.NewRegistry("test")})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for i := 0; i < 3; i++ {
		svc.ComputeNode(i).Fail()
	}
	buf, off := AppendRecord(nil, OpInsert, 1, 1, []byte("doomed"))
	PatchCSN(buf, off, 1)
	_, aerr := m.AppendSync(0, buf)
	if !errors.Is(aerr, srss.ErrNoHealthyNodes) {
		t.Fatalf("append with tier down: %v, want wrapped ErrNoHealthyNodes", aerr)
	}
	if got := m.mGiveups.Load(); got != 1 {
		t.Fatalf("giveups = %d, want 1", got)
	}
	// The stream survives the giveup: heal the tier and the next append
	// succeeds on a fresh segment.
	for i := 0; i < 3; i++ {
		svc.ComputeNode(i).Heal()
	}
	if _, err := m.AppendSync(0, buf); err != nil {
		t.Fatalf("append after heal: %v", err)
	}
}

// TestFlushCrashSites: the before-site fails the batch with nothing durable;
// the after-site fails the batch but recovery sees the records.
func TestFlushCrashSites(t *testing.T) {
	for _, site := range []string{SiteFlushBefore, SiteFlushAfter} {
		ch := chaos.New(11)
		ch.Arm(chaos.Rule{Site: site, Action: chaos.Crash, OnHit: 1})
		svc := srss.New(srss.Config{MaxPLogSize: 1 << 20, Chaos: ch})
		m, err := Open(Config{Service: svc, Streams: 1})
		if err != nil {
			t.Fatal(err)
		}
		buf, off := AppendRecord(nil, OpInsert, 1, 7, []byte("batch"))
		PatchCSN(buf, off, 5)
		_, aerr := m.AppendSync(0, buf)
		if !errors.Is(aerr, chaos.ErrCrashed) {
			t.Fatalf("%s: append error = %v", site, aerr)
		}
		m.Close()
		ch.ClearCrash()

		// "Restart": reopen via the metadata PLog and count durable records.
		m2, err := Reopen(Config{Service: svc, Streams: 1}, m.Directory().MetaID())
		if err != nil {
			t.Fatalf("%s: reopen: %v", site, err)
		}
		seen := 0
		for _, seg := range m2.Segments() {
			if err := m2.ScanSegment(seg, func(_ Addr, _ Record) bool { seen++; return true }); err != nil {
				t.Fatalf("%s: scan: %v", site, err)
			}
		}
		want := 0
		if site == SiteFlushAfter {
			want = 1 // durable but unacked
		}
		if seen != want {
			t.Fatalf("%s: %d records after recovery, want %d", site, seen, want)
		}
		m2.Close()
	}
}

// TestTornTailTruncation: a torn final append is detected by the scan, which
// truncates at the last valid record instead of erroring, and counts the
// truncation.
func TestTornTailTruncation(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		ch := chaos.New(seed)
		svc := srss.New(srss.Config{MaxPLogSize: 1 << 20, ComputeNodes: 5, Chaos: ch})
		m, err := Open(Config{Service: svc, Streams: 1})
		if err != nil {
			t.Fatal(err)
		}
		// Two good records, then a torn third.
		var good []Addr
		for i := 0; i < 2; i++ {
			buf, off := AppendRecord(nil, OpInsert, 1, uint64(i), []byte("intact-record-payload"))
			PatchCSN(buf, off, uint64(i+1))
			a, err := m.AppendSync(0, buf)
			if err != nil {
				t.Fatalf("seed %d: good append %d: %v", seed, i, err)
			}
			good = append(good, a)
		}
		ch.Arm(chaos.Rule{Site: srss.SiteAppendTear, Action: chaos.Tear, OnHit: ch.Hits(srss.SiteAppendTear) + 1})
		buf, off := AppendRecord(nil, OpInsert, 1, 99, []byte("this-record-will-be-torn-apart"))
		PatchCSN(buf, off, 3)
		if _, err := m.AppendSync(0, buf); !errors.Is(err, chaos.ErrCrashed) {
			t.Fatalf("seed %d: torn append error = %v", seed, err)
		}
		m.Close()
		ch.ClearCrash()
		ch.Disarm(srss.SiteAppendTear)

		m2, err := Reopen(Config{Service: svc, Streams: 1}, m.Directory().MetaID())
		if err != nil {
			t.Fatalf("seed %d: reopen: %v", seed, err)
		}
		var got []Addr
		var end int64
		for _, seg := range m2.Segments() {
			e, err := m2.ScanSegmentFrom(seg, 0, func(a Addr, _ Record) bool {
				got = append(got, a)
				return true
			})
			if err != nil {
				t.Fatalf("seed %d: scan segment %d: %v", seed, seg, err)
			}
			if len(got) > 0 && e > end {
				end = e
			}
		}
		if len(got) != 2 || got[0] != good[0] || got[1] != good[1] {
			t.Fatalf("seed %d: replay saw %v, want %v", seed, got, good)
		}
		cnt, bytes := m2.TailTruncations()
		if cnt != 1 || bytes <= 0 {
			t.Fatalf("seed %d: truncations = %d/%d bytes, want 1/>0", seed, cnt, bytes)
		}
		m2.Close()
	}
}

// TestGenuineCorruptionStillFails: a checksum-flip on a consistent,
// untorn segment must NOT be silently truncated.
func TestGenuineCorruptionStillFails(t *testing.T) {
	svc := srss.New(srss.Config{MaxPLogSize: 1 << 20})
	m, err := Open(Config{Service: svc, Streams: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	buf, off := AppendRecord(nil, OpInsert, 1, 1, []byte("valid"))
	PatchCSN(buf, off, 1)
	if _, err := m.AppendSync(0, buf); err != nil {
		t.Fatal(err)
	}
	// Append garbage that decodes to nothing, replicated identically (so
	// replicas are consistent and the plog is not torn).
	seg := m.Stream(0).seg
	id, _ := m.Directory().Lookup(seg)
	p, err := svc.Open(id)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Append([]byte{0xff, 0xff, 0xff, 0xff}); err != nil {
		t.Fatal(err)
	}
	err = m.ScanSegment(seg, func(_ Addr, _ Record) bool { return true })
	if err == nil {
		t.Fatal("consistent corruption was silently truncated")
	}
	if cnt, _ := m.TailTruncations(); cnt != 0 {
		t.Fatalf("truncation counted for genuine corruption: %d", cnt)
	}
}
