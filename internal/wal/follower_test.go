package wal

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"hiengine/internal/chaos"
	"hiengine/internal/obs"
	"hiengine/internal/srss"
)

// TestFollowerLiveTailSoak races a committing writer against a read-only
// follower catch-up-scanning the active segment: every acked commit must
// be observed exactly once, in commit order, and the in-flight tail must
// never be misread as torn (zero truncations). Run with -race.
func TestFollowerLiveTailSoak(t *testing.T) {
	const total = 1500
	svc := srss.New(srss.Config{MaxPLogSize: 1 << 20})
	w, err := Open(Config{Service: svc, Streams: 1, SegmentSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	f, err := OpenReadOnly(Config{Service: svc, Streams: 1, Obs: obs.NewRegistry("follower")},
		w.Directory().MetaID())
	if err != nil {
		t.Fatal(err)
	}

	// Writer: commit CSNs 1..total; acked publishes the durable horizon.
	var acked atomic.Uint64
	writeErr := make(chan error, 1)
	go func() {
		defer close(writeErr)
		for i := uint64(1); i <= total; i++ {
			buf, off := AppendRecord(nil, OpInsert, 1, i, []byte("soak-payload-of-nontrivial-length"))
			PatchCSN(buf, off, i)
			if _, err := w.AppendSync(0, buf); err != nil {
				writeErr <- err
				return
			}
			acked.Store(i)
		}
	}()

	// Follower: poll-scan segments from saved offsets while the writer
	// runs. The single writer fills segments strictly in order, so
	// scanning segments in ascending order yields global commit order.
	applied := make(map[uint16]int64)
	var got []uint64
	deadline := time.Now().Add(30 * time.Second)
	for {
		if err := f.RefreshDirectory(); err != nil {
			t.Fatal(err)
		}
		for _, seg := range f.Segments() {
			next, err := f.ScanSegmentFrom(seg, applied[seg], func(_ Addr, rec Record) bool {
				got = append(got, rec.CSN)
				return true
			})
			if err != nil {
				t.Fatalf("segment %d: %v", seg, err)
			}
			applied[seg] = next
		}
		if len(got) > 0 && got[len(got)-1] >= total {
			break
		}
		select {
		case err, ok := <-writeErr:
			if ok && err != nil {
				t.Fatal(err)
			}
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower stalled: saw %d records, acked %d", len(got), acked.Load())
		}
	}
	if err, ok := <-writeErr; ok && err != nil {
		t.Fatal(err)
	}

	// Exactly once, in order: the observed CSNs are precisely 1..total.
	if len(got) != total {
		t.Fatalf("observed %d records, want %d", len(got), total)
	}
	for i, csn := range got {
		if csn != uint64(i+1) {
			t.Fatalf("record %d has CSN %d, want %d (out of order or duplicated)", i, csn, i+1)
		}
	}
	if cnt, bytes := f.TailTruncations(); cnt != 0 || bytes != 0 {
		t.Fatalf("spurious tail truncations during live tail: %d (%d bytes)", cnt, bytes)
	}
	w.Close()
}

// TestTailTruncationCountedOnce repeats catch-up scans over the same torn
// segment on one manager: the truncation is counted exactly once, not once
// per scan.
func TestTailTruncationCountedOnce(t *testing.T) {
	ch := chaos.New(3)
	svc := srss.New(srss.Config{MaxPLogSize: 1 << 20, ComputeNodes: 5, Chaos: ch})
	m, err := Open(Config{Service: svc, Streams: 1})
	if err != nil {
		t.Fatal(err)
	}
	buf, off := AppendRecord(nil, OpInsert, 1, 1, []byte("good-record"))
	PatchCSN(buf, off, 1)
	if _, err := m.AppendSync(0, buf); err != nil {
		t.Fatal(err)
	}
	ch.Arm(chaos.Rule{Site: srss.SiteAppendTear, Action: chaos.Tear, OnHit: ch.Hits(srss.SiteAppendTear) + 1})
	buf, off = AppendRecord(nil, OpInsert, 1, 2, []byte("torn-record-payload"))
	PatchCSN(buf, off, 2)
	if _, err := m.AppendSync(0, buf); !errors.Is(err, chaos.ErrCrashed) {
		t.Fatalf("torn append error = %v", err)
	}
	m.Close()
	ch.ClearCrash()
	ch.Disarm(srss.SiteAppendTear)

	m2, err := Reopen(Config{Service: svc, Streams: 1}, m.Directory().MetaID())
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	seg := m2.Segments()[0]
	for scan := 0; scan < 3; scan++ {
		if _, err := m2.ScanSegmentFrom(seg, 0, func(_ Addr, _ Record) bool { return true }); err != nil {
			t.Fatalf("scan %d: %v", scan, err)
		}
	}
	if cnt, bytes := m2.TailTruncations(); cnt != 1 || bytes <= 0 {
		t.Fatalf("truncations after 3 scans = %d/%d bytes, want 1/>0", cnt, bytes)
	}
}

// TestDropSegmentFencesScans: DropSegment blocks while a scan holds the
// segment, and later scans of the dropped segment fail with the typed
// ErrSegmentDropped a follower treats as "restart from the directory".
func TestDropSegmentFencesScans(t *testing.T) {
	svc := srss.New(srss.Config{MaxPLogSize: 1 << 20})
	m, err := Open(Config{Service: svc, Streams: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for i := uint64(1); i <= 3; i++ {
		buf, off := AppendRecord(nil, OpInsert, 1, i, []byte("fenced"))
		PatchCSN(buf, off, i)
		if _, err := m.AppendSync(0, buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.RotateAll(); err != nil {
		t.Fatal(err)
	}
	seg := m.SealedSegments()[0]

	// Park a scan mid-segment, then drop concurrently: the drop must not
	// complete (delete the backing PLog under the scan) until the scan
	// finishes.
	inScan := make(chan struct{})
	unblock := make(chan struct{})
	scanDone := make(chan error, 1)
	go func() {
		_, err := m.ScanSegmentFrom(seg, 0, func(_ Addr, _ Record) bool {
			inScan <- struct{}{}
			<-unblock
			return false // stop after the first record
		})
		scanDone <- err
	}()
	<-inScan
	dropDone := make(chan error, 1)
	go func() { dropDone <- m.DropSegment(seg) }()
	select {
	case err := <-dropDone:
		t.Fatalf("drop completed under an in-progress scan: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(unblock)
	if err := <-scanDone; err != nil {
		t.Fatalf("fenced scan: %v", err)
	}
	if err := <-dropDone; err != nil {
		t.Fatalf("drop after scan release: %v", err)
	}

	// The segment is gone: scans fail typed, and the count stays clean.
	if _, err := m.ScanSegmentFrom(seg, 0, func(_ Addr, _ Record) bool { return true }); !errors.Is(err, ErrSegmentDropped) {
		t.Fatalf("scan of dropped segment: %v, want ErrSegmentDropped", err)
	}
	if cnt, _ := m.TailTruncations(); cnt != 0 {
		t.Fatalf("drop fencing counted %d truncations, want 0", cnt)
	}
}
