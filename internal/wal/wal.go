// Package wal implements HiEngine's reliable, scalable redo-only logging
// (Section 4.2): a database write-ahead log architected on top of SRSS
// PLogs.
//
// Instead of a centralized log buffer, the manager maintains multiple log
// streams (one per transaction worker in the paper). Workers accumulate log
// records in private buffers during forward processing; at commit time the
// encoded buffer is handed to the stream's I/O goroutine, which batches
// pending commits (group commit / commit pipelining, Johnson et al.'s
// Aether) into a single replicated PLog append and then notifies each
// transaction of its durable location. Only committed transactions ever
// reach the log, so the log is redo-only and doubles as version storage:
// every operation record is a full record version addressed by a stable
// 8-byte address.
//
// Physically the log is a sequence of fixed-size segments, each backed by
// one PLog (the paper's current implementation does the same). A 16-bit
// segment ID and a 32-bit offset form the permanent address of a log
// record (Figure 4b). The segment-ID -> PLog-ID mapping is itself persisted
// by appending to a designated metadata PLog whose ID is the bootstrap
// handle for recovery.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hiengine/internal/chaos"
	"hiengine/internal/obs"
	"hiengine/internal/srss"
)

// Chaos injection sites owned by this package. The engine comes from the
// backing srss.Service (Service.Chaos), so one seed drives the whole stack.
const (
	// SiteFlushBefore fires in the I/O goroutine before the group append:
	// a crash here loses the whole batch (nothing durable, all commits
	// failed).
	SiteFlushBefore = "wal.flush.before_append"
	// SiteFlushAfter fires after the group append is durable but before
	// any commit is acknowledged: recovery replays the batch, but every
	// caller saw an error -- the ambiguous-commit window at batch
	// granularity.
	SiteFlushAfter = "wal.flush.after_append"
)

func init() {
	chaos.RegisterSite(SiteFlushBefore, "crash before group append: batch lost, commits failed")
	chaos.RegisterSite(SiteFlushAfter, "crash after group append: batch durable, acks lost")
}

// Addr is the permanent address of a log record: segment ID in bits [48,64),
// runtime metadata in bits [32,48) (unused on disk), and the byte offset
// into the segment's PLog in bits [0,32).
type Addr uint64

// InvalidAddr is the zero address; no record ever lives at it because every
// segment PLog begins with a segment header byte.
const InvalidAddr Addr = 0

// MakeAddr packs a segment ID and offset.
func MakeAddr(seg uint16, off uint32) Addr {
	return Addr(uint64(seg)<<48 | uint64(off))
}

// Segment extracts the segment ID.
func (a Addr) Segment() uint16 { return uint16(a >> 48) }

// Offset extracts the offset within the segment.
func (a Addr) Offset() uint32 { return uint32(a) }

// Add returns the address rel bytes further into the same segment. It
// panics if the offset addition wraps uint32: a wrapped sum would silently
// produce a bogus but well-formed address (e.g. from a corrupt logOff),
// and every later read through it would return the wrong record.
func (a Addr) Add(rel uint32) Addr {
	off := a.Offset() + rel
	if off < a.Offset() {
		panic(fmt.Sprintf("wal: address offset overflow: %v + %d wraps uint32", a, rel))
	}
	return MakeAddr(a.Segment(), off)
}

// String renders seg@off.
func (a Addr) String() string { return fmt.Sprintf("%d@%d", a.Segment(), a.Offset()) }

// Op tags for log records.
const (
	OpInsert byte = 'I'
	OpUpdate byte = 'U'
	OpDelete byte = 'D'
	// OpPrepare is a 2PC prepare record: its payload wraps the gtid plus
	// the transaction's whole (unstamped) write buffer, so the prepared
	// writes become durable in one group-commit append without becoming
	// visible. Table/RID are 0 and the CSN field stays 0 -- visibility is
	// deferred to the decision.
	OpPrepare byte = 'P'
	// OpDecide is a 2PC decision record: payload carries the gtid and the
	// commit/abort verdict; the CSN field carries the decision CSN (commit
	// and abort both consume one, so checkpoint fencing can order every
	// decision against the checkpoint horizon).
	OpDecide byte = 'G'
	// OpForget is a 2PC tombstone: payload carries a gtid whose decision
	// the coordinator has confirmed durably applied at every participant.
	// Recovery and followers drop the gtid's retained 2PC entry, releasing
	// the checkpoint-fence and compaction protection on its prepare and
	// decision segments. The CSN field stays 0.
	OpForget byte = 'F'
)

// Record is one decoded log record: a full record version (or a delete
// marker) tagged with its creating transaction's CSN.
type Record struct {
	Op      byte
	CSN     uint64
	Table   uint32
	RID     uint64
	Payload []byte
}

// fnv1a hashes b with FNV-1a (records carry an integrity checksum; storage
// and network corruption must not replay as valid data).
func fnv1a(h uint32, b []byte) uint32 {
	if h == 0 {
		h = 2166136261
	}
	for _, c := range b {
		h = (h ^ uint32(c)) * 16777619
	}
	return h
}

// AppendRecord encodes r onto buf and returns the extended buffer plus the
// record's offset within buf. Workers call this while building their private
// transaction buffer; the CSN field is patched at commit time via PatchCSN,
// so it is a fixed-width field excluded from the integrity checksum.
func AppendRecord(buf []byte, op byte, table uint32, rid uint64, payload []byte) ([]byte, int) {
	off := len(buf)
	buf = append(buf, op)
	// Fixed-width CSN so commit can patch it in place.
	var csn [8]byte
	buf = append(buf, csn[:]...)
	body := len(buf)
	buf = binary.AppendUvarint(buf, uint64(table))
	buf = binary.AppendUvarint(buf, rid)
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	sum := fnv1a(uint32(op)+1, buf[body:])
	buf = binary.LittleEndian.AppendUint32(buf, sum)
	return buf, off
}

// PatchCSN stamps the commit sequence number into a record previously
// encoded at off by AppendRecord.
func PatchCSN(buf []byte, off int, csn uint64) {
	binary.LittleEndian.PutUint64(buf[off+1:off+9], csn)
}

// DecodeRecord parses the record at buf[0:] and returns it together with its
// encoded length. The returned payload aliases buf.
func DecodeRecord(buf []byte) (Record, int, error) {
	if len(buf) < 10 {
		return Record{}, 0, errors.New("wal: short record")
	}
	r := Record{Op: buf[0]}
	switch r.Op {
	case OpInsert, OpUpdate, OpDelete, OpPrepare, OpDecide, OpForget:
	default:
		return Record{}, 0, fmt.Errorf("wal: bad op tag %#x", buf[0])
	}
	r.CSN = binary.LittleEndian.Uint64(buf[1:9])
	pos := 9
	tbl, n := binary.Uvarint(buf[pos:])
	if n <= 0 {
		return Record{}, 0, errors.New("wal: bad table id")
	}
	pos += n
	r.Table = uint32(tbl)
	rid, n := binary.Uvarint(buf[pos:])
	if n <= 0 {
		return Record{}, 0, errors.New("wal: bad rid")
	}
	pos += n
	r.RID = rid
	plen, n := binary.Uvarint(buf[pos:])
	if n <= 0 {
		return Record{}, 0, errors.New("wal: bad payload len")
	}
	pos += n
	if pos+int(plen) > len(buf) {
		return Record{}, 0, errors.New("wal: truncated payload")
	}
	r.Payload = buf[pos : pos+int(plen)]
	pos += int(plen)
	if pos+4 > len(buf) {
		return Record{}, 0, errors.New("wal: missing checksum")
	}
	want := binary.LittleEndian.Uint32(buf[pos : pos+4])
	if got := fnv1a(uint32(r.Op)+1, buf[9:pos]); got != want {
		return Record{}, 0, fmt.Errorf("wal: record checksum mismatch (%08x != %08x)", got, want)
	}
	return r, pos + 4, nil
}

// segmentHeader is the first byte of every segment PLog, ensuring offset 0
// is never a record address.
const segmentHeader byte = 'S'

// Config configures a Manager.
type Config struct {
	// Service is the SRSS deployment backing the log.
	Service *srss.Service
	// Tier is where log segments are placed. HiEngine commits against
	// TierCompute; the commit-side ablation flips this to TierStorage.
	Tier srss.Tier
	// Streams is the number of independent log streams (paper: one per
	// worker core). Default 4.
	Streams int
	// SegmentSize caps each segment (paper: 128 MiB). Default 8 MiB so
	// tests exercise rotation; benchmarks raise it.
	SegmentSize int64
	// BatchMax bounds the number of commits folded into one group append.
	// Default 64. A value of 1 disables group commit (ablation).
	BatchMax int
	// QueueDepth is the per-stream commit queue length. Default 256.
	QueueDepth int
	// OnMetaChange is invoked when the directory's metadata PLog migrates
	// to a new identity after a seal (node failure); the caller persists
	// the new bootstrap ID (e.g. in its manifest and the management-node
	// registry).
	OnMetaChange func(srss.PLogID) error
	// Obs receives commit-path metrics (latency, batch sizes, rotations).
	// Nil disables recording.
	Obs *obs.Registry
}

func (c *Config) fill() error {
	if c.Service == nil {
		return errors.New("wal: Config.Service is required")
	}
	if c.Streams <= 0 {
		c.Streams = 4
	}
	if c.SegmentSize <= 0 {
		c.SegmentSize = 8 << 20
	}
	if c.SegmentSize > c.Service.MaxPLogSize() {
		c.SegmentSize = c.Service.MaxPLogSize()
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 64
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	return nil
}

// Directory maintains the segment-ID -> PLog-ID mapping, persisted in a
// designated metadata PLog (Section 4.2). If the metadata PLog itself is
// sealed by a node failure, the directory migrates: the full mapping is
// rewritten into a fresh PLog and the new identity is reported through
// onMetaChange so the caller can re-anchor its bootstrap reference (the
// "well-known location" of Section 4.2).
type Directory struct {
	svc          *srss.Service
	onMetaChange func(srss.PLogID) error

	mu   sync.RWMutex
	m    map[uint16]srss.PLogID
	meta *srss.PLog

	// metaID mirrors meta.ID() so MetaID never takes d.mu: the manifest
	// migration path reads it from inside an onMetaChange callback that
	// already holds d.mu (same goroutine), and an RLock there would
	// self-deadlock.
	metaID atomic.Pointer[srss.PLogID]
}

func newDirectory(svc *srss.Service, meta *srss.PLog) *Directory {
	d := &Directory{svc: svc, m: make(map[uint16]srss.PLogID), meta: meta}
	id := meta.ID()
	d.metaID.Store(&id)
	return d
}

func encodeMapping(seg uint16, id srss.PLogID) [2 + 24]byte {
	var buf [2 + 24]byte
	binary.LittleEndian.PutUint16(buf[:2], seg)
	copy(buf[2:], id[:])
	return buf
}

// appendMapping writes one record, migrating the metadata PLog on seal.
// Caller holds d.mu.
func (d *Directory) appendMapping(seg uint16, id srss.PLogID) error {
	buf := encodeMapping(seg, id)
	_, err := d.meta.Append(buf[:])
	if err == nil {
		return nil
	}
	if !errors.Is(err, srss.ErrSealed) && !errors.Is(err, srss.ErrFull) {
		return err
	}
	// Migrate: rewrite the whole mapping (it is small -- at most 65536
	// entries) into a fresh PLog on healthy replicas.
	fresh, cerr := d.svc.Create(d.meta.Tier())
	if cerr != nil {
		return cerr
	}
	for s, pid := range d.m {
		b := encodeMapping(s, pid)
		if _, werr := fresh.Append(b[:]); werr != nil {
			return werr
		}
	}
	b := encodeMapping(seg, id)
	if _, werr := fresh.Append(b[:]); werr != nil {
		return werr
	}
	d.meta = fresh
	fid := fresh.ID()
	d.metaID.Store(&fid)
	if d.onMetaChange != nil {
		// The callback may itself migrate (e.g. a sealed manifest) and read
		// MetaID; MetaID is lock-free so this re-entry is safe even though
		// d.mu is still held here.
		if nerr := d.onMetaChange(fid); nerr != nil {
			return nerr
		}
	}
	return nil
}

// record persists and registers one mapping.
func (d *Directory) record(seg uint16, id srss.PLogID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.appendMapping(seg, id); err != nil {
		return err
	}
	d.m[seg] = id
	return nil
}

// drop persists a tombstone mapping for seg and removes it from the map.
func (d *Directory) drop(seg uint16) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	// Zero PLog ID = tombstone; load() interprets it as a drop.
	if err := d.appendMapping(seg, srss.PLogID{}); err != nil {
		return err
	}
	delete(d.m, seg)
	return nil
}

// Lookup resolves a segment ID to its PLog ID.
func (d *Directory) Lookup(seg uint16) (srss.PLogID, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	id, ok := d.m[seg]
	return id, ok
}

// Segments returns all registered segment IDs in ascending order.
func (d *Directory) Segments() []uint16 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]uint16, 0, len(d.m))
	for s := range d.m {
		out = append(out, s)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// MetaID returns the bootstrap PLog ID holding the directory. It is
// lock-free (atomic mirror of d.meta) because manifest migration can call
// it from inside the onMetaChange callback while d.mu is held.
func (d *Directory) MetaID() srss.PLogID {
	return *d.metaID.Load()
}

// RefreshDirectory re-reads the metadata PLog, picking up segments created
// by another manager (the primary) since the last load. Read-only managers
// call this before catch-up scans.
func (m *Manager) RefreshDirectory() error { return m.dir.load() }

// load rebuilds the mapping from the metadata PLog.
func (d *Directory) load() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	size := d.meta.Size()
	const recLen = 2 + 24
	buf := make([]byte, recLen)
	for off := int64(0); off+recLen <= size; off += recLen {
		if _, err := d.meta.ReadAt(buf, off); err != nil {
			return err
		}
		seg := binary.LittleEndian.Uint16(buf[:2])
		var id srss.PLogID
		copy(id[:], buf[2:])
		if id.IsZero() {
			delete(d.m, seg) // tombstone written by DropSegment
		} else {
			d.m[seg] = id
		}
	}
	return nil
}

// commitReq is one transaction buffer queued for durability, or a rotation
// request (payload nil, rotate true).
type commitReq struct {
	payload []byte
	done    func(base Addr, err error)
	rotate  bool
	// enqueuedNS is the wall-clock enqueue time; the I/O goroutine records
	// the commit-to-durable latency against it at completion.
	enqueuedNS int64
	// tr, when non-nil, is the request's trace. The channel send transfers
	// ownership to the I/O goroutine, which attributes enqueue wait, group
	// commit, and replication, then hands it back through done.
	tr *obs.Trace
}

// Stream is one log stream with its own open segment and I/O goroutine.
type Stream struct {
	id  int
	mgr *Manager

	ch   chan commitReq
	wg   sync.WaitGroup
	once sync.Once

	// I/O-goroutine-owned state.
	seg    uint16
	plog   *srss.PLog
	offset int64
	batch  []commitReq
	concat []byte
	// backoff draws jitter for placement-failure retries; seeded from the
	// chaos engine (or 0) so schedules stay reproducible.
	backoff *chaos.Rand

	// Stats.
	appends      atomic.Int64
	batchedTxns  atomic.Int64
	bytesWritten atomic.Int64
}

// Manager is the log manager.
type Manager struct {
	cfg     Config
	dir     *Directory
	streams []*Stream

	// Metric handles cached at build time; nil-safe no-ops when no
	// registry is configured (see internal/obs).
	mCommitLatency *obs.Histogram // commit-to-durable, nanoseconds
	mBatchTxns     *obs.Histogram // transactions per group append
	mBatchBytes    *obs.Histogram // bytes per group append
	mRotates       *obs.Counter
	mRetries       *obs.Counter // sealed/full appends retried on a fresh segment
	mOversized     *obs.Counter // transactions rejected with ErrTooLarge
	mGiveups       *obs.Counter // appends abandoned after exhausting retries
	mTornTails     *obs.Counter // checksum-invalid tails truncated during scans

	// Torn-tail truncation totals (also mirrored to obs); recovery reports
	// them in its stats. truncSeen dedups the counting: a follower's
	// repeated catch-up scans re-hit the same torn tail every poll, and each
	// distinct truncation must count exactly once.
	tailTruncs     atomic.Int64
	tailTruncBytes atomic.Int64
	truncMu        sync.Mutex
	truncSeen      map[uint16]int64 // segment -> counted truncation offset

	// liveTail marks read-only follower managers: the segment under a scan
	// may still be growing (a live writer, or a log shipper materializing
	// records chunk by chunk), so a decode failure on an unsealed PLog is
	// "end of available log, retry later", never torn-tail truncation and
	// never corruption. Once the PLog seals the strict classification
	// applies again. Atomic because Promote clears it while follower scans
	// may still be classifying tails.
	liveTail atomic.Bool

	nextSeg atomic.Uint32

	mu    sync.RWMutex
	views map[uint16]*srss.View

	// scanMu fences DropSegment against in-progress scans: a drop marks the
	// segment and waits for its scanRefs to drain before deleting the
	// backing PLog, and later scans of the segment fail with
	// ErrSegmentDropped instead of an unclassified read error.
	scanMu      sync.Mutex
	scanCond    *sync.Cond
	scanRefs    map[uint16]int
	droppedSegs map[uint16]bool

	destageMu sync.Mutex
	destaged  map[uint16]srss.PLogID

	closed atomic.Bool
}

// ErrClosed is returned for operations on a closed manager.
var ErrClosed = errors.New("wal: manager closed")

// ErrTooLarge is returned when one transaction's log exceeds the segment
// size.
var ErrTooLarge = errors.New("wal: transaction log exceeds segment size")

// ErrSegmentDropped is returned when a scan targets a segment whose backing
// PLog has been (or is being) dropped -- by this manager's DropSegment, or
// by the primary underneath a read-only follower. A follower treats it as
// "restart from the directory": forget the segment's progress, refresh the
// directory, and continue with the segments that remain.
var ErrSegmentDropped = errors.New("wal: segment dropped")

// Open creates a fresh log with a new metadata PLog.
func Open(cfg Config) (*Manager, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	meta, err := cfg.Service.Create(cfg.Tier)
	if err != nil {
		return nil, err
	}
	dir := newDirectory(cfg.Service, meta)
	dir.onMetaChange = cfg.OnMetaChange
	return build(cfg, dir, 0)
}

// OpenReadOnly attaches to an existing log for reading only: the directory
// is loaded but no streams (and hence no new segments) are created. Used by
// read-only replicas that follow a primary's log (Section 3.1).
func OpenReadOnly(cfg Config, metaID srss.PLogID) (*Manager, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	meta, err := cfg.Service.Open(metaID)
	if err != nil {
		return nil, err
	}
	dir := newDirectory(cfg.Service, meta)
	if err := dir.load(); err != nil {
		return nil, err
	}
	m := &Manager{cfg: cfg, dir: dir, views: make(map[uint16]*srss.View)}
	m.liveTail.Store(true)
	m.mTornTails = cfg.Obs.Counter("wal.torn_tail_truncations")
	return m, nil
}

// Reopen attaches to an existing log via its metadata PLog ID (recovery).
// The returned manager appends new segments after the highest existing one.
// Every segment the dead lineage left unsealed is sealed torn first, exactly
// as Promote does for a shipped log: the new lineage appends only to fresh
// segments, so the old ones can never grow again, and sealing them makes a
// crash-time partial trailing record classify as a truncatable torn tail --
// and, just as important, makes the old segments eligible for checkpoint
// fences and compaction drops. Leaving them unsealed would strand them
// outside every future fence, so a checkpoint could fence a 2PC decision
// logged by the new lineage while the matching prepare stayed scan-visible
// in an old segment forever -- recovery would then resurrect the decided
// transaction as in-doubt (an orphan prepare).
func Reopen(cfg Config, metaID srss.PLogID) (*Manager, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	meta, err := cfg.Service.Open(metaID)
	if err != nil {
		return nil, err
	}
	dir := newDirectory(cfg.Service, meta)
	dir.onMetaChange = cfg.OnMetaChange
	if err := dir.load(); err != nil {
		return nil, err
	}
	next := uint32(0)
	for _, s := range dir.Segments() {
		if uint32(s)+1 > next {
			next = uint32(s) + 1
		}
		id, ok := dir.Lookup(s)
		if !ok {
			continue
		}
		p, err := cfg.Service.Open(id)
		if err != nil {
			return nil, err
		}
		if !p.Sealed() {
			p.SealTorn()
		}
	}
	return build(cfg, dir, next)
}

func build(cfg Config, dir *Directory, nextSeg uint32) (*Manager, error) {
	m := &Manager{cfg: cfg, dir: dir, views: make(map[uint16]*srss.View)}
	m.nextSeg.Store(nextSeg)
	if err := m.startStreams(); err != nil {
		return nil, err
	}
	return m, nil
}

// startStreams caches the write-path metric handles and spins up the
// group-commit streams, each opening a fresh segment. Called at build time
// and again by Promote when a read-only follower manager becomes writable.
func (m *Manager) startStreams() error {
	cfg := m.cfg
	m.mCommitLatency = cfg.Obs.Histogram("wal.commit_latency_ns")
	m.mBatchTxns = cfg.Obs.Histogram("wal.batch_txns")
	m.mBatchBytes = cfg.Obs.Histogram("wal.batch_bytes")
	m.mRotates = cfg.Obs.Counter("wal.rotates")
	m.mRetries = cfg.Obs.Counter("wal.append_retries")
	m.mOversized = cfg.Obs.Counter("wal.oversized_rejects")
	m.mGiveups = cfg.Obs.Counter("wal.append_giveups")
	m.mTornTails = cfg.Obs.Counter("wal.torn_tail_truncations")
	var seed uint64
	if ch := cfg.Service.Chaos(); ch != nil {
		seed = ch.Seed()
	}
	for i := 0; i < cfg.Streams; i++ {
		st := &Stream{id: i, mgr: m, ch: make(chan commitReq, cfg.QueueDepth)}
		st.backoff = chaos.NewRand(seed, fmt.Sprintf("wal.stream.%d.backoff", i))
		if err := st.rotate(); err != nil {
			return err
		}
		st.wg.Add(1)
		go st.ioLoop()
		m.streams = append(m.streams, st)
	}
	return nil
}

// Promote transitions a read-only follower manager into a writable primary
// log. The shipped log's tail is sealed: every segment PLog the dead
// primary left unsealed is sealed torn, so a partially-shipped final record
// classifies as a crash tail (truncate at the last valid record) rather
// than staying a live tail forever. New commits then land in fresh segments
// numbered after the highest shipped one, appended by newly-started group
// commit streams; the mirrored segments are never appended to, so their
// byte-for-byte identity with the dead primary's log is preserved.
// onMetaChange re-anchors the directory's bootstrap reference exactly as on
// a writable open. The caller must have finished (and stopped) all catch-up
// application first.
func (m *Manager) Promote(onMetaChange func(srss.PLogID) error) error {
	if m.closed.Load() {
		return ErrClosed
	}
	if len(m.streams) != 0 {
		return errors.New("wal: manager already writable")
	}
	// Final directory refresh, then seal the shipped tail. Unsealed mirrors
	// are sealed torn: acked-but-unshipped suffixes of the dead primary are
	// crash tails here, and only the torn flag makes a trailing partial
	// record truncate instead of failing scans as corruption (the local
	// mirror's replicas never diverge).
	if err := m.dir.load(); err != nil {
		return err
	}
	next := uint32(0)
	for _, seg := range m.dir.Segments() {
		if uint32(seg)+1 > next {
			next = uint32(seg) + 1
		}
		id, ok := m.dir.Lookup(seg)
		if !ok {
			continue
		}
		p, err := m.cfg.Service.Open(id)
		if err != nil {
			return err
		}
		if !p.Sealed() {
			p.SealTorn()
		}
	}
	if cur := m.nextSeg.Load(); cur > next {
		next = cur
	}
	m.nextSeg.Store(next)
	m.dir.onMetaChange = onMetaChange
	m.cfg.OnMetaChange = onMetaChange
	// Strict tail classification from here on: the log has a writer again.
	m.liveTail.Store(false)
	return m.startStreams()
}

// Directory exposes the segment directory.
func (m *Manager) Directory() *Directory { return m.dir }

// Streams returns the stream count.
func (m *Manager) Streams() int { return len(m.streams) }

// Stream returns stream i.
func (m *Manager) Stream(i int) *Stream { return m.streams[i] }

// ErrReadOnly is returned when appending through a read-only manager.
var ErrReadOnly = errors.New("wal: manager is read-only")

// Append queues a pre-encoded transaction buffer on stream i. done is
// invoked from the I/O goroutine with the base address of the buffer once
// it is durable (or with an error). The payload must not be reused until
// done fires.
func (m *Manager) Append(stream int, payload []byte, done func(base Addr, err error)) {
	m.AppendTraced(stream, payload, nil, done)
}

// AppendTraced is Append with an optional trace. Enqueue marks the
// wal_enqueue stage; the I/O goroutine closes it when the request joins a
// group flush. Trace ownership transfers with the request: the caller must
// not touch tr again until done fires (done runs on the I/O goroutine with
// the trace handed back).
func (m *Manager) AppendTraced(stream int, payload []byte, tr *obs.Trace, done func(base Addr, err error)) {
	if m.closed.Load() {
		done(InvalidAddr, ErrClosed)
		return
	}
	if len(m.streams) == 0 {
		done(InvalidAddr, ErrReadOnly)
		return
	}
	tr.Begin(obs.StageWALEnqueue)
	st := m.streams[stream%len(m.streams)]
	st.ch <- commitReq{payload: payload, done: done, enqueuedNS: time.Now().UnixNano(), tr: tr}
}

// AppendSync appends and waits for durability.
func (m *Manager) AppendSync(stream int, payload []byte) (Addr, error) {
	type res struct {
		base Addr
		err  error
	}
	ch := make(chan res, 1)
	m.Append(stream, payload, func(base Addr, err error) { ch <- res{base, err} })
	r := <-ch
	return r.base, r.err
}

// Close drains and stops all streams. Pending commits complete first.
func (m *Manager) Close() {
	if m.closed.Swap(true) {
		return
	}
	for _, st := range m.streams {
		st.once.Do(func() { close(st.ch) })
		st.wg.Wait()
	}
}

// rotate opens a fresh segment (PLog) for the stream. Called by the I/O
// goroutine and during setup.
func (st *Stream) rotate() error {
	if st.plog != nil {
		st.plog.Seal()
	}
	seg := uint16(st.mgr.nextSeg.Add(1) - 1)
	p, err := st.mgr.cfg.Service.Create(st.mgr.cfg.Tier)
	if err != nil {
		return err
	}
	if _, err := p.Append([]byte{segmentHeader}); err != nil {
		return err
	}
	if err := st.mgr.dir.record(seg, p.ID()); err != nil {
		return err
	}
	st.seg, st.plog, st.offset = seg, p, 1
	st.mgr.mRotates.Inc()
	return nil
}

// ioLoop is the stream's I/O goroutine: drain a batch, append once, notify.
func (st *Stream) ioLoop() {
	defer st.wg.Done()
	for req := range st.ch {
		if req.rotate {
			// Rotation requests (checkpoint/compaction fencing) skip
			// streams whose segment is still empty -- there is nothing
			// to fence and rotating would litter one-byte segments.
			var err error
			if st.offset > 1 {
				err = st.rotate()
			}
			req.done(InvalidAddr, err)
			continue
		}
		st.batch = st.batch[:0]
		st.batch = append(st.batch, req)
		for len(st.batch) < st.mgr.cfg.BatchMax {
			select {
			case r, ok := <-st.ch:
				if !ok {
					st.flushBatch()
					return
				}
				if r.rotate {
					st.flushBatch()
					var rerr error
					if st.offset > 1 {
						rerr = st.rotate()
					}
					r.done(InvalidAddr, rerr)
					st.batch = st.batch[:0]
					goto next
				}
				st.batch = append(st.batch, r)
			default:
				goto drained
			}
		}
	drained:
		st.flushBatch()
	next:
	}
}

// flushBatch persists the gathered batch as one append (splitting only at
// segment boundaries) and completes each request.
func (st *Stream) flushBatch() {
	if len(st.batch) == 0 {
		return
	}
	segSize := st.mgr.cfg.SegmentSize
	i := 0
	for i < len(st.batch) {
		// Take the largest prefix of requests fitting the open segment.
		st.concat = st.concat[:0]
		j := i
		for j < len(st.batch) {
			pl := int64(len(st.batch[j].payload))
			if pl+1 > segSize {
				// Can never fit: fail this request. The done guard
				// matters: an oversized record appended with a nil
				// callback must not panic (and wedge) the I/O goroutine.
				if j == i {
					if st.batch[j].done != nil {
						st.batch[j].done(InvalidAddr, ErrTooLarge)
					}
					st.mgr.mOversized.Inc()
					i++
					j++
					continue
				}
				break
			}
			if st.offset+int64(len(st.concat))+pl > segSize {
				break
			}
			st.concat = append(st.concat, st.batch[j].payload...)
			j++
		}
		if len(st.concat) == 0 {
			// Open segment too full for even one request: rotate.
			if err := st.rotate(); err != nil {
				st.failRest(i, err)
				return
			}
			continue
		}
		// Traced requests leave the enqueue stage as the group flush picks
		// them up; the flush itself -- including any injected pre-append
		// fault latency, which models a slow storage append -- is the
		// group-commit stage.
		for k := i; k < j; k++ {
			if tr := st.batch[k].tr; tr != nil {
				tr.End(obs.StageWALEnqueue)
				tr.Begin(obs.StageGroupCommit)
			}
		}
		ch := st.mgr.cfg.Service.Chaos()
		if err := ch.Check(SiteFlushBefore); err != nil {
			// Crash before the group append: the whole batch is lost.
			st.failRest(i, err)
			return
		}
		base, replNS, err := st.appendWithRetry(st.concat)
		if err != nil {
			st.failRest(i, err)
			return
		}
		if err := ch.Check(SiteFlushAfter); err != nil {
			// Crash after the append: the batch is durable (recovery will
			// replay it) but no commit is ever acknowledged.
			st.failRest(i, err)
			return
		}
		off := uint32(base)
		durableNS := time.Now().UnixNano()
		for k := i; k < j; k++ {
			if tr := st.batch[k].tr; tr != nil {
				// Carve the replication fan-out (shared by the whole batch)
				// out of this trace's group-commit span, then open the
				// durable stage: it closes when the commit callback runs.
				now := tr.Since()
				tr.End(obs.StageGroupCommit)
				tr.Adjust(obs.StageGroupCommit, -replNS)
				tr.AddSpan(obs.StageSRSSReplicate, now-replNS, replNS)
				tr.SetBatch(j - i)
				tr.Begin(obs.StageDurable)
			}
			if st.batch[k].done != nil {
				st.batch[k].done(MakeAddr(st.seg, off), nil)
			}
			st.mgr.mCommitLatency.Record(durableNS - st.batch[k].enqueuedNS)
			off += uint32(len(st.batch[k].payload))
		}
		st.mgr.mBatchTxns.Record(int64(j - i))
		st.mgr.mBatchBytes.Record(int64(len(st.concat)))
		st.appends.Add(1)
		st.batchedTxns.Add(int64(j - i))
		st.bytesWritten.Add(int64(len(st.concat)))
		i = j
	}
}

// maxAppendAttempts bounds appendWithRetry. Each failed attempt backs off
// with seeded jitter, so a transient no-healthy-nodes window (nodes failing
// and healing, or repair racing placement) can clear; if the outage
// persists the stream gives up with a wrapped srss.ErrNoHealthyNodes that
// the engine's fail-stop path latches.
const maxAppendAttempts = 8

// appendWithRetry appends data to the open segment, transparently retrying
// on a sealed PLog (node failure) by rotating to a fresh segment, per the
// SRSS contract. Retries are bounded: after maxAppendAttempts the append
// fails with an error wrapping srss.ErrNoHealthyNodes rather than looping
// while the whole tier is down.
func (st *Stream) appendWithRetry(data []byte) (off, replicateNS int64, err error) {
	var lastErr error
	for attempt := 1; attempt <= maxAppendAttempts; attempt++ {
		off, replNS, err := st.plog.AppendTimed(data)
		if err == nil {
			st.offset = off + int64(len(data))
			return off, replNS, nil
		}
		if errors.Is(err, chaos.ErrCrashed) {
			// Simulated crash: the process is dead, retrying is meaningless.
			return 0, 0, err
		}
		if !errors.Is(err, srss.ErrSealed) && !errors.Is(err, srss.ErrFull) {
			return 0, 0, err
		}
		st.mgr.mRetries.Inc()
		rerr := st.rotate()
		if rerr == nil {
			continue
		}
		if errors.Is(rerr, chaos.ErrCrashed) {
			return 0, 0, rerr
		}
		if !errors.Is(rerr, srss.ErrNoHealthyNodes) {
			return 0, 0, rerr
		}
		// Transient placement failure: back off with seeded jitter before
		// retrying (a node may heal or repair may free a spare).
		lastErr = rerr
		d := time.Duration(attempt)*50*time.Microsecond +
			time.Duration(st.backoff.Intn(150))*time.Microsecond
		time.Sleep(d)
	}
	st.mgr.mGiveups.Inc()
	if lastErr == nil {
		// Every rotation succeeded but every append hit a freshly failed
		// node: the tier is effectively unavailable.
		lastErr = srss.ErrNoHealthyNodes
	}
	return 0, 0, fmt.Errorf("wal: stream %d gave up after %d append attempts: %w",
		st.id, maxAppendAttempts, lastErr)
}

func (st *Stream) failRest(from int, err error) {
	for k := from; k < len(st.batch); k++ {
		if st.batch[k].done != nil {
			st.batch[k].done(InvalidAddr, err)
		}
	}
}

// Stats reports a stream's activity.
func (st *Stream) Stats() (appends, txns, bytes int64) {
	return st.appends.Load(), st.batchedTxns.Load(), st.bytesWritten.Load()
}

// view returns (and caches) an mmap view of a segment.
func (m *Manager) view(seg uint16) (*srss.View, error) {
	m.mu.RLock()
	v, ok := m.views[seg]
	m.mu.RUnlock()
	if ok {
		return v, nil
	}
	id, ok := m.dir.Lookup(seg)
	if !ok {
		return nil, fmt.Errorf("wal: unknown segment %d", seg)
	}
	p, err := m.cfg.Service.Open(id)
	if err != nil {
		return nil, err
	}
	v = p.Mmap()
	m.mu.Lock()
	m.views[seg] = v
	m.mu.Unlock()
	return v, nil
}

// ReadRecord materializes the log record at addr through the segment's mmap
// view. This is the path that serves reads of evicted versions (Section
// 4.2): the returned payload references storage-backed memory.
func (m *Manager) ReadRecord(addr Addr) (Record, error) {
	v, err := m.view(addr.Segment())
	if err != nil {
		return Record{}, err
	}
	// Read a bounded window; extend if the record is larger.
	want := 512
	for {
		n := int64(want)
		if rem := v.Len() - int64(addr.Offset()); n > rem {
			n = rem
		}
		b, err := v.At(int64(addr.Offset()), int(n))
		if err != nil {
			return Record{}, err
		}
		rec, _, derr := DecodeRecord(b)
		if derr == nil {
			return rec, nil
		}
		if int64(want) >= v.Len()-int64(addr.Offset()) {
			return Record{}, derr
		}
		want *= 4
	}
}

// ScanSegment iterates the records of one segment in append order, calling
// fn with each record's permanent address. Replay threads run one scan per
// segment in parallel (Section 4.3).
func (m *Manager) ScanSegment(seg uint16, fn func(addr Addr, rec Record) bool) error {
	_, err := m.ScanSegmentFrom(seg, 0, fn)
	return err
}

// ScanSegmentFrom scans a segment starting at byte offset from (0 = the
// beginning) and returns the offset just past the last record seen, which a
// follower passes back on its next catch-up scan.
func (m *Manager) ScanSegmentFrom(seg uint16, from int64, fn func(addr Addr, rec Record) bool) (int64, error) {
	if err := m.beginScan(seg); err != nil {
		return from, err
	}
	defer m.endScan(seg)
	v, err := m.view(seg)
	if err != nil {
		return from, m.mapSegErr(seg, err)
	}
	size := v.Len()
	if size == 0 || from >= size {
		return from, nil
	}
	if from == 0 {
		from = 1 // skip the segment header byte
		h, err := v.At(0, 1)
		if err != nil {
			return 0, m.mapSegErr(seg, err)
		}
		if h[0] != segmentHeader {
			return 0, fmt.Errorf("wal: segment %d missing header", seg)
		}
	}
	// One bulk read: replay is a sequential scan, the cheapest access
	// pattern on log-structured storage.
	b, err := v.At(from, int(size-from))
	if err != nil {
		return from, m.mapSegErr(seg, err)
	}
	pos := 0
	for pos < len(b) {
		rec, n, err := DecodeRecord(b[pos:])
		if err != nil {
			abs := from + int64(pos)
			switch m.classifyTail(v.PLog(), abs) {
			case tailTorn:
				// Torn tail: the writer died mid-replication, leaving a
				// partially materialized final record. Truncate the scan at
				// the last valid record; the bytes past abs were never
				// acked to any committer, so dropping them is correct.
				m.countTailTrunc(seg, abs, size)
				return abs, nil
			case tailLive:
				// End of the currently-available log: the record past abs is
				// still being appended (or shipped). Not torn, not corrupt --
				// the follower retries from abs on its next poll.
				return abs, nil
			}
			return abs, fmt.Errorf("wal: segment %d at %d: %w", seg, abs, err)
		}
		if !fn(MakeAddr(seg, uint32(from+int64(pos))), rec) {
			return from + int64(pos), nil
		}
		pos += n
	}
	return from + int64(pos), nil
}

type tailClass int

const (
	tailCorrupt tailClass = iota // genuine corruption: fail the scan
	tailTorn                     // crash-time torn write: truncate here
	tailLive                     // in-flight append: retry later
)

// classifyTail classifies a decode failure at absolute offset abs of segment
// PLog p. A tail is torn when the PLog recorded a torn write, or when it is
// sealed with replicas disagreeing from abs onward -- divergent replica
// suffixes on a sealed PLog can only be left by a writer dying
// mid-replication, because acknowledged appends are replica-identical by
// construction. On an UNSEALED PLog the same divergence is expected in
// steady state: a live reader can observe a record mid-replication, so the
// tail is merely incomplete and the scan must retry later rather than
// "truncate" bytes that are about to become durable. Follower managers
// (liveTail) extend the retry classification to every unsealed tail, since
// log shipping materializes records chunk by chunk with all local replicas
// consistent; once the shipped PLog seals, the strict rules resume.
func (m *Manager) classifyTail(p *srss.PLog, abs int64) tailClass {
	if p == nil {
		return tailCorrupt
	}
	if p.Torn() {
		return tailTorn
	}
	if !p.Sealed() {
		if m.liveTail.Load() || !p.ReplicasConsistentFrom(abs) {
			return tailLive
		}
		return tailCorrupt
	}
	if !p.ReplicasConsistentFrom(abs) {
		return tailTorn
	}
	return tailCorrupt
}

// countTailTrunc records one torn-tail truncation at (seg, abs), exactly
// once: repeated catch-up scans re-hit the same truncation every poll and
// must not re-increment the counters the torture harness asserts on.
func (m *Manager) countTailTrunc(seg uint16, abs, size int64) {
	m.truncMu.Lock()
	if prev, ok := m.truncSeen[seg]; ok && prev == abs {
		m.truncMu.Unlock()
		return
	}
	if m.truncSeen == nil {
		m.truncSeen = make(map[uint16]int64)
	}
	m.truncSeen[seg] = abs
	m.truncMu.Unlock()
	m.mTornTails.Inc()
	m.tailTruncs.Add(1)
	m.tailTruncBytes.Add(size - abs)
}

// beginScan takes a scan reference on seg, failing fast if the segment has
// been dropped. endScan releases it and wakes any fenced DropSegment.
func (m *Manager) beginScan(seg uint16) error {
	m.scanMu.Lock()
	defer m.scanMu.Unlock()
	if m.droppedSegs[seg] {
		return fmt.Errorf("wal: segment %d: %w", seg, ErrSegmentDropped)
	}
	if m.scanRefs == nil {
		m.scanRefs = make(map[uint16]int)
	}
	m.scanRefs[seg]++
	return nil
}

func (m *Manager) endScan(seg uint16) {
	m.scanMu.Lock()
	m.scanRefs[seg]--
	if m.scanRefs[seg] <= 0 {
		delete(m.scanRefs, seg)
		if m.scanCond != nil {
			m.scanCond.Broadcast()
		}
	}
	m.scanMu.Unlock()
}

// mapSegErr converts "the PLog vanished underneath us" storage errors into
// the typed ErrSegmentDropped a follower knows how to handle, and drops the
// stale cached view so a later directory refresh starts clean.
func (m *Manager) mapSegErr(seg uint16, err error) error {
	if errors.Is(err, srss.ErrDeleted) || errors.Is(err, srss.ErrNotFound) {
		m.mu.Lock()
		delete(m.views, seg)
		m.mu.Unlock()
		return fmt.Errorf("wal: segment %d: %w", seg, ErrSegmentDropped)
	}
	return err
}

// TailTruncations reports how many checksum-invalid segment tails scans have
// truncated, and how many bytes were dropped.
func (m *Manager) TailTruncations() (count, bytes int64) {
	return m.tailTruncs.Load(), m.tailTruncBytes.Load()
}

// RotateAll forces every stream onto a fresh segment and returns once all
// rotations are complete. Log compaction calls this to fence the "old"
// segment set: all subsequent commits land in new segments (Section 4.4).
func (m *Manager) RotateAll() error {
	if m.closed.Load() {
		return ErrClosed
	}
	type res struct{ err error }
	ch := make(chan res, len(m.streams))
	for _, st := range m.streams {
		st.ch <- commitReq{rotate: true, done: func(_ Addr, err error) { ch <- res{err} }}
	}
	var first error
	for range m.streams {
		if r := <-ch; r.err != nil && first == nil {
			first = r.err
		}
	}
	return first
}

// DropSegment removes a segment from the directory (persisting a tombstone
// mapping) and deletes its backing PLog, reclaiming its storage. The caller
// guarantees no live record address still points into the segment. The drop
// is fenced against in-progress scans: it marks the segment dropped (so new
// scans fail with ErrSegmentDropped) and waits for current scan references
// to drain before deleting the backing PLog.
func (m *Manager) DropSegment(seg uint16) error {
	id, ok := m.dir.Lookup(seg)
	if !ok {
		return fmt.Errorf("wal: unknown segment %d", seg)
	}
	m.scanMu.Lock()
	if m.droppedSegs == nil {
		m.droppedSegs = make(map[uint16]bool)
	}
	if m.droppedSegs[seg] {
		m.scanMu.Unlock()
		return fmt.Errorf("wal: segment %d: %w", seg, ErrSegmentDropped)
	}
	m.droppedSegs[seg] = true
	if m.scanCond == nil {
		m.scanCond = sync.NewCond(&m.scanMu)
	}
	for m.scanRefs[seg] > 0 {
		m.scanCond.Wait()
	}
	m.scanMu.Unlock()
	if err := m.dir.drop(seg); err != nil {
		return err
	}
	m.mu.Lock()
	delete(m.views, seg)
	m.mu.Unlock()
	return m.cfg.Service.Delete(id)
}

// Segments lists all segment IDs known to the directory.
func (m *Manager) Segments() []uint16 { return m.dir.Segments() }

// SealedSegments lists segments whose PLogs are sealed: they can never
// receive another record, so a checkpoint taken after RotateAll may fence
// them for recovery.
func (m *Manager) SealedSegments() []uint16 {
	var out []uint16
	for _, seg := range m.dir.Segments() {
		id, ok := m.dir.Lookup(seg)
		if !ok {
			continue
		}
		p, err := m.cfg.Service.Open(id)
		if err != nil || !p.Sealed() {
			continue
		}
		out = append(out, seg)
	}
	return out
}

// DestageSealed copies every sealed, not-yet-destaged segment to the
// storage tier (Section 3.1: the log is flushed to the storage layer in the
// background for archival and cross-AZ reliability; reads keep being served
// from the compute side). Returns the number of segments destaged. Safe to
// call periodically.
func (m *Manager) DestageSealed() (int, error) {
	if m.cfg.Tier != srss.TierCompute {
		return 0, nil // already storage-resident
	}
	n := 0
	for _, seg := range m.dir.Segments() {
		m.destageMu.Lock()
		_, done := m.destaged[seg]
		m.destageMu.Unlock()
		if done {
			continue
		}
		id, ok := m.dir.Lookup(seg)
		if !ok {
			continue
		}
		p, err := m.cfg.Service.Open(id)
		if err != nil {
			continue // dropped concurrently
		}
		if !p.Sealed() {
			continue // still the open segment of some stream
		}
		archive, err := m.cfg.Service.Destage(p)
		if err != nil {
			return n, err
		}
		m.destageMu.Lock()
		if m.destaged == nil {
			m.destaged = make(map[uint16]srss.PLogID)
		}
		m.destaged[seg] = archive.ID()
		m.destageMu.Unlock()
		n++
	}
	return n, nil
}

// DestagedSegments returns the segment -> archive PLog mapping.
func (m *Manager) DestagedSegments() map[uint16]srss.PLogID {
	m.destageMu.Lock()
	defer m.destageMu.Unlock()
	out := make(map[uint16]srss.PLogID, len(m.destaged))
	for k, v := range m.destaged {
		out[k] = v
	}
	return out
}

// TotalBytes sums bytes written across streams.
func (m *Manager) TotalBytes() int64 {
	var n int64
	for _, st := range m.streams {
		n += st.bytesWritten.Load()
	}
	return n
}
