package wal

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"hiengine/internal/obs"
	"hiengine/internal/srss"
)

func testManager(t *testing.T, cfg Config) (*srss.Service, *Manager) {
	t.Helper()
	svc := srss.New(srss.Config{MaxPLogSize: 1 << 20})
	cfg.Service = svc
	m, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return svc, m
}

func TestAddrPacking(t *testing.T) {
	a := MakeAddr(0x1234, 0xdeadbeef)
	if a.Segment() != 0x1234 || a.Offset() != 0xdeadbeef {
		t.Fatalf("pack/unpack: %v", a)
	}
	if a.Add(0x11).Offset() != 0xdeadbf00 {
		t.Fatalf("Add: %v", a.Add(0x11))
	}
}

func TestRecordRoundTrip(t *testing.T) {
	buf, off := AppendRecord(nil, OpInsert, 7, 42, []byte("payload"))
	PatchCSN(buf, off, 99)
	rec, n, err := DecodeRecord(buf[off:])
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Fatalf("decoded length %d, want %d", n, len(buf))
	}
	if rec.Op != OpInsert || rec.CSN != 99 || rec.Table != 7 || rec.RID != 42 || string(rec.Payload) != "payload" {
		t.Fatalf("round trip: %+v", rec)
	}
}

func TestRecordDecodeErrors(t *testing.T) {
	if _, _, err := DecodeRecord([]byte{'I', 0}); err == nil {
		t.Fatal("short record accepted")
	}
	buf, off := AppendRecord(nil, OpUpdate, 1, 2, []byte("xyz"))
	PatchCSN(buf, off, 1)
	buf[0] = 'Z'
	if _, _, err := DecodeRecord(buf); err == nil {
		t.Fatal("bad op tag accepted")
	}
	buf[0] = 'U'
	if _, _, err := DecodeRecord(buf[:len(buf)-1]); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

func TestMultipleRecordsOneBuffer(t *testing.T) {
	var buf []byte
	var offs []int
	for i := 0; i < 5; i++ {
		var off int
		buf, off = AppendRecord(buf, OpInsert, 1, uint64(i), []byte(fmt.Sprintf("v%d", i)))
		offs = append(offs, off)
	}
	for i, off := range offs {
		PatchCSN(buf, off, uint64(100+i))
	}
	pos := 0
	for i := 0; pos < len(buf); i++ {
		rec, n, err := DecodeRecord(buf[pos:])
		if err != nil {
			t.Fatal(err)
		}
		if pos != offs[i] {
			t.Fatalf("record %d at %d, expected %d", i, pos, offs[i])
		}
		if rec.RID != uint64(i) || rec.CSN != uint64(100+i) {
			t.Fatalf("record %d: %+v", i, rec)
		}
		pos += n
	}
}

func TestAppendSyncAndReadRecord(t *testing.T) {
	_, m := testManager(t, Config{Streams: 2, SegmentSize: 1 << 16})
	buf, off := AppendRecord(nil, OpInsert, 3, 11, []byte("hello"))
	PatchCSN(buf, off, 5)
	base, err := m.AppendSync(0, buf)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := m.ReadRecord(base)
	if err != nil {
		t.Fatal(err)
	}
	if rec.RID != 11 || string(rec.Payload) != "hello" || rec.CSN != 5 {
		t.Fatalf("read back: %+v", rec)
	}
}

func TestGroupCommitBatches(t *testing.T) {
	_, m := testManager(t, Config{Streams: 1, SegmentSize: 1 << 18, BatchMax: 64})
	const n = 200
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		buf, off := AppendRecord(nil, OpInsert, 1, uint64(i), bytes.Repeat([]byte{byte(i)}, 20))
		PatchCSN(buf, off, uint64(i+1))
		wg.Add(1)
		m.Append(0, buf, func(base Addr, err error) {
			if err != nil {
				t.Errorf("commit: %v", err)
			}
			wg.Done()
		})
	}
	wg.Wait()
	appends, txns, _ := m.Stream(0).Stats()
	if txns != n {
		t.Fatalf("txns = %d, want %d", txns, n)
	}
	if appends >= txns {
		t.Fatalf("no batching: %d appends for %d txns", appends, txns)
	}
}

func TestSegmentRotation(t *testing.T) {
	_, m := testManager(t, Config{Streams: 1, SegmentSize: 512})
	var addrs []Addr
	for i := 0; i < 50; i++ {
		buf, off := AppendRecord(nil, OpInsert, 1, uint64(i), bytes.Repeat([]byte("x"), 40))
		PatchCSN(buf, off, uint64(i+1))
		a, err := m.AppendSync(0, buf)
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, a)
	}
	segs := map[uint16]bool{}
	for _, a := range addrs {
		segs[a.Segment()] = true
	}
	if len(segs) < 2 {
		t.Fatalf("expected rotation across segments, got %d segment(s)", len(segs))
	}
	// All records still readable across segments.
	for i, a := range addrs {
		rec, err := m.ReadRecord(a)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if rec.RID != uint64(i) {
			t.Fatalf("record %d: rid %d", i, rec.RID)
		}
	}
}

func TestTooLargeTxn(t *testing.T) {
	_, m := testManager(t, Config{Streams: 1, SegmentSize: 128})
	if _, err := m.AppendSync(0, make([]byte, 256)); err == nil {
		t.Fatal("oversize txn accepted")
	}
	// Manager still usable.
	buf, off := AppendRecord(nil, OpInsert, 1, 1, []byte("ok"))
	PatchCSN(buf, off, 1)
	if _, err := m.AppendSync(0, buf); err != nil {
		t.Fatal(err)
	}
}

func TestScanSegmentSequential(t *testing.T) {
	_, m := testManager(t, Config{Streams: 1, SegmentSize: 1 << 18})
	const n = 100
	for i := 0; i < n; i++ {
		buf, off := AppendRecord(nil, OpUpdate, 2, uint64(i), []byte(fmt.Sprintf("val-%d", i)))
		PatchCSN(buf, off, uint64(i+1))
		if _, err := m.AppendSync(0, buf); err != nil {
			t.Fatal(err)
		}
	}
	var got []uint64
	for _, seg := range m.Segments() {
		err := m.ScanSegment(seg, func(addr Addr, rec Record) bool {
			if addr.Segment() != seg {
				t.Fatalf("addr segment mismatch")
			}
			got = append(got, rec.RID)
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != n {
		t.Fatalf("scanned %d records, want %d", len(got), n)
	}
	for i, rid := range got {
		if rid != uint64(i) {
			t.Fatalf("out of order at %d: %d", i, rid)
		}
	}
}

func TestConcurrentStreams(t *testing.T) {
	_, m := testManager(t, Config{Streams: 4, SegmentSize: 1 << 16})
	const workers, per = 4, 200
	var wg sync.WaitGroup
	addrs := make([][]Addr, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				buf, off := AppendRecord(nil, OpInsert, uint32(w), uint64(i), []byte("d"))
				PatchCSN(buf, off, uint64(w*per+i+1))
				a, err := m.AppendSync(w, buf)
				if err != nil {
					t.Errorf("append: %v", err)
					return
				}
				addrs[w] = append(addrs[w], a)
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		for i, a := range addrs[w] {
			rec, err := m.ReadRecord(a)
			if err != nil || rec.Table != uint32(w) || rec.RID != uint64(i) {
				t.Fatalf("w=%d i=%d: %+v err=%v", w, i, rec, err)
			}
		}
	}
}

func TestReopenRecoversDirectory(t *testing.T) {
	svc := srss.New(srss.Config{MaxPLogSize: 1 << 20})
	m, err := Open(Config{Service: svc, Streams: 2, SegmentSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	var addrs []Addr
	for i := 0; i < 40; i++ {
		buf, off := AppendRecord(nil, OpInsert, 1, uint64(i), bytes.Repeat([]byte("y"), 60))
		PatchCSN(buf, off, uint64(i+1))
		a, err := m.AppendSync(i%2, buf)
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, a)
	}
	metaID := m.Directory().MetaID()
	oldSegs := len(m.Segments())
	m.Close()

	m2, err := Reopen(Config{Service: svc, Streams: 2, SegmentSize: 4096}, metaID)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	// All old records readable.
	for i, a := range addrs {
		rec, err := m2.ReadRecord(a)
		if err != nil || rec.RID != uint64(i) {
			t.Fatalf("recovered record %d: %+v err=%v", i, rec, err)
		}
	}
	// New segments do not collide with old ones.
	if got := len(m2.Segments()); got <= oldSegs {
		t.Fatalf("reopen created no fresh segments: %d <= %d", got, oldSegs)
	}
	buf, off := AppendRecord(nil, OpInsert, 1, 999, []byte("post"))
	PatchCSN(buf, off, 1000)
	a, err := m2.AppendSync(0, buf)
	if err != nil {
		t.Fatal(err)
	}
	if rec, err := m2.ReadRecord(a); err != nil || rec.RID != 999 {
		t.Fatalf("post-reopen append: %+v err=%v", rec, err)
	}
}

func TestSealRetryOnNodeFailureThenHeal(t *testing.T) {
	svc := srss.New(srss.Config{MaxPLogSize: 1 << 20, ComputeNodes: 4})
	m, err := Open(Config{Service: svc, Streams: 1, SegmentSize: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	buf, off := AppendRecord(nil, OpInsert, 1, 1, []byte("pre"))
	PatchCSN(buf, off, 1)
	if _, err := m.AppendSync(0, buf); err != nil {
		t.Fatal(err)
	}
	// Fail one node: the open segment's plog seals on next write; the
	// stream must rotate to a plog on the remaining healthy nodes.
	svc.ComputeNode(0).Fail()
	buf2, off2 := AppendRecord(nil, OpInsert, 1, 2, []byte("during"))
	PatchCSN(buf2, off2, 2)
	a, err := m.AppendSync(0, buf2)
	if err != nil {
		t.Fatalf("append during failure: %v", err)
	}
	if rec, err := m.ReadRecord(a); err != nil || rec.RID != 2 {
		t.Fatalf("record after seal-retry: %+v err=%v", rec, err)
	}
}

func TestLogIsRedoOnly(t *testing.T) {
	// The log must contain exactly the records handed to Append -- loser
	// transactions are simply never appended (their buffers are dropped
	// by the engine). Verify the scan reproduces the committed set.
	_, m := testManager(t, Config{Streams: 2, SegmentSize: 1 << 16})
	committed := map[uint64]bool{}
	for i := 0; i < 50; i++ {
		if i%3 == 0 {
			continue // "aborted": never appended
		}
		buf, off := AppendRecord(nil, OpInsert, 1, uint64(i), []byte("c"))
		PatchCSN(buf, off, uint64(i+1))
		if _, err := m.AppendSync(i%2, buf); err != nil {
			t.Fatal(err)
		}
		committed[uint64(i)] = true
	}
	seen := map[uint64]bool{}
	for _, seg := range m.Segments() {
		m.ScanSegment(seg, func(_ Addr, rec Record) bool {
			seen[rec.RID] = true
			return true
		})
	}
	if len(seen) != len(committed) {
		t.Fatalf("log has %d records, want %d", len(seen), len(committed))
	}
	for rid := range committed {
		if !seen[rid] {
			t.Fatalf("committed rid %d missing from log", rid)
		}
	}
}

func TestDestageSealed(t *testing.T) {
	svc := srss.New(srss.Config{MaxPLogSize: 1 << 20})
	m, err := Open(Config{Service: svc, Streams: 1, SegmentSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for i := 0; i < 40; i++ {
		buf, off := AppendRecord(nil, OpInsert, 1, uint64(i), bytes.Repeat([]byte("z"), 40))
		PatchCSN(buf, off, uint64(i+1))
		if _, err := m.AppendSync(0, buf); err != nil {
			t.Fatal(err)
		}
	}
	if len(m.Segments()) < 3 {
		t.Fatalf("expected several segments, got %d", len(m.Segments()))
	}
	before := len(svc.List(srss.TierStorage))
	n, err := m.DestageSealed()
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("nothing destaged despite sealed segments")
	}
	after := len(svc.List(srss.TierStorage))
	if after != before+n {
		t.Fatalf("storage tier plogs %d -> %d for %d destaged", before, after, n)
	}
	// Archive content matches the compute-side segment.
	for seg, archID := range m.DestagedSegments() {
		srcID, _ := m.Directory().Lookup(seg)
		src, err := svc.Open(srcID)
		if err != nil {
			t.Fatal(err)
		}
		arch, err := svc.Open(archID)
		if err != nil {
			t.Fatal(err)
		}
		if arch.Size() != src.Size() {
			t.Fatalf("archive size %d != segment size %d", arch.Size(), src.Size())
		}
		a := make([]byte, arch.Size())
		b := make([]byte, src.Size())
		arch.ReadAt(a, 0)
		src.ReadAt(b, 0)
		if !bytes.Equal(a, b) {
			t.Fatalf("archive of segment %d differs", seg)
		}
	}
	// Idempotent: nothing new to destage.
	n2, err := m.DestageSealed()
	if err != nil {
		t.Fatal(err)
	}
	if n2 != 0 {
		t.Fatalf("second destage moved %d segments", n2)
	}
}

func TestScanSegmentFromResumes(t *testing.T) {
	_, m := testManager(t, Config{Streams: 1, SegmentSize: 1 << 18})
	var want []uint64
	for i := 0; i < 20; i++ {
		buf, off := AppendRecord(nil, OpInsert, 1, uint64(i), []byte("r"))
		PatchCSN(buf, off, uint64(i+1))
		if _, err := m.AppendSync(0, buf); err != nil {
			t.Fatal(err)
		}
		want = append(want, uint64(i))
	}
	seg := m.Segments()[0]
	var got []uint64
	next, err := m.ScanSegmentFrom(seg, 0, func(_ Addr, rec Record) bool {
		got = append(got, rec.RID)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	// More records appended after the scan position.
	for i := 20; i < 30; i++ {
		buf, off := AppendRecord(nil, OpInsert, 1, uint64(i), []byte("r"))
		PatchCSN(buf, off, uint64(i+1))
		if _, err := m.AppendSync(0, buf); err != nil {
			t.Fatal(err)
		}
		want = append(want, uint64(i))
	}
	next2, err := m.ScanSegmentFrom(seg, next, func(_ Addr, rec Record) bool {
		got = append(got, rec.RID)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if next2 <= next {
		t.Fatalf("resume offset did not advance: %d -> %d", next, next2)
	}
	if len(got) != len(want) {
		t.Fatalf("resumed scan saw %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: got %d want %d", i, got[i], want[i])
		}
	}
	// Resuming at the end yields nothing.
	n := 0
	if _, err := m.ScanSegmentFrom(seg, next2, func(Addr, Record) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("scan past end saw %d records", n)
	}
}

func TestOpenReadOnlyRejectsAppends(t *testing.T) {
	svc := srss.New(srss.Config{MaxPLogSize: 1 << 20})
	m, err := Open(Config{Service: svc, Streams: 1, SegmentSize: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	buf, off := AppendRecord(nil, OpInsert, 1, 1, []byte("x"))
	PatchCSN(buf, off, 1)
	addr, err := m.AppendSync(0, buf)
	if err != nil {
		t.Fatal(err)
	}
	metaID := m.Directory().MetaID()
	segsBefore := len(m.Segments())

	ro, err := OpenReadOnly(Config{Service: svc}, metaID)
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	// Reading works; appending does not; no segments were created.
	if rec, err := ro.ReadRecord(addr); err != nil || rec.RID != 1 {
		t.Fatalf("read-only read: %+v %v", rec, err)
	}
	if _, err := ro.AppendSync(0, buf); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("read-only append: %v", err)
	}
	if got := len(ro.Segments()); got != segsBefore {
		t.Fatalf("read-only open changed segment count: %d != %d", got, segsBefore)
	}
	// The follower picks up segments the primary creates later.
	for i := 0; i < 100; i++ {
		big, boff := AppendRecord(nil, OpInsert, 1, uint64(i+10), bytes.Repeat([]byte("y"), 800))
		PatchCSN(big, boff, uint64(i+2))
		if _, err := m.AppendSync(0, big); err != nil {
			t.Fatal(err)
		}
	}
	m.Close()
	if err := ro.RefreshDirectory(); err != nil {
		t.Fatal(err)
	}
	if got := len(ro.Segments()); got <= segsBefore {
		t.Fatalf("refresh found no new segments: %d", got)
	}
}

func TestDirectoryMetaMigrationOnSeal(t *testing.T) {
	// Seal the directory's metadata PLog via node failure: the directory
	// must migrate the full mapping to a fresh PLog, report the new
	// bootstrap ID through OnMetaChange, and stay recoverable from it.
	svc := srss.New(srss.Config{MaxPLogSize: 1 << 20, ComputeNodes: 4})
	var newMeta srss.PLogID
	m, err := Open(Config{Service: svc, Streams: 1, SegmentSize: 2048,
		OnMetaChange: func(id srss.PLogID) error { newMeta = id; return nil }})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	oldMeta := m.Directory().MetaID()
	var addrs []Addr
	for i := 0; i < 10; i++ {
		buf, off := AppendRecord(nil, OpInsert, 1, uint64(i), bytes.Repeat([]byte("a"), 100))
		PatchCSN(buf, off, uint64(i+1))
		a, err := m.AppendSync(0, buf)
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, a)
	}
	// Fail a node in the metadata PLog's replica set (placement is
	// round-robin and the meta PLog is created first, so with 4 nodes it
	// lives on nodes 1..3): the next directory append must migrate.
	svc.ComputeNode(1).Fail()
	for i := 10; i < 120 && newMeta.IsZero(); i++ {
		buf, off := AppendRecord(nil, OpInsert, 1, uint64(i), bytes.Repeat([]byte("b"), 100))
		PatchCSN(buf, off, uint64(i+1))
		a, err := m.AppendSync(0, buf)
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, a)
	}
	if newMeta.IsZero() {
		t.Fatal("metadata migration never triggered")
	}
	if newMeta == oldMeta {
		t.Fatal("OnMetaChange reported the old identity")
	}
	if m.Directory().MetaID() != newMeta {
		t.Fatal("directory did not adopt the migrated PLog")
	}
	// Reopening from the NEW bootstrap ID sees every mapping.
	ro, err := OpenReadOnly(Config{Service: svc}, newMeta)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range addrs {
		rec, err := ro.ReadRecord(a)
		if err != nil || rec.RID != uint64(i) {
			t.Fatalf("record %d via migrated directory: %+v %v", i, rec, err)
		}
	}
	// Either way, all records remain readable through the live manager.
	for i, a := range addrs {
		rec, err := m.ReadRecord(a)
		if err != nil || rec.RID != uint64(i) {
			t.Fatalf("record %d: %+v %v", i, rec, err)
		}
	}
}

func TestRecordChecksumDetectsCorruption(t *testing.T) {
	buf, off := AppendRecord(nil, OpInsert, 3, 7, []byte("integrity"))
	PatchCSN(buf, off, 42)
	// Sanity: intact record decodes, CSN patch does not break the sum.
	if _, _, err := DecodeRecord(buf); err != nil {
		t.Fatal(err)
	}
	// Flip one payload bit.
	for _, pos := range []int{10, len(buf) - 6, len(buf) / 2} {
		corrupt := append([]byte(nil), buf...)
		corrupt[pos] ^= 0x40
		if _, _, err := DecodeRecord(corrupt); err == nil {
			t.Fatalf("corruption at byte %d undetected", pos)
		}
	}
	// The op tag participates in the checksum seed.
	swapped := append([]byte(nil), buf...)
	swapped[0] = OpUpdate
	if _, _, err := DecodeRecord(swapped); err == nil {
		t.Fatal("op tag swap undetected")
	}
}

func TestAddrAddOverflowPanics(t *testing.T) {
	// In range: offset can reach the 32-bit maximum exactly.
	if got := MakeAddr(1, ^uint32(0)-1).Add(1).Offset(); got != ^uint32(0) {
		t.Fatalf("Add to max offset: got %#x", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Add past the 32-bit offset limit did not panic")
		}
	}()
	MakeAddr(1, ^uint32(0)-1).Add(2) // wraps: must panic, not mint a bogus address
}

// Regression: the ErrTooLarge path in flushBatch invoked the completion
// callback unconditionally; an oversized fire-and-forget append (nil done)
// panicked and wedged the stream's I/O goroutine, hanging every later commit
// on that stream.
func TestOversizedAppendNilDoneDoesNotWedgeStream(t *testing.T) {
	reg := obs.NewRegistry("wal-test")
	_, m := testManager(t, Config{Streams: 1, SegmentSize: 1 << 12, Obs: reg})

	m.Append(0, make([]byte, 1<<13), nil) // oversized, no callback

	// The I/O goroutine must survive and keep serving the stream.
	if _, err := m.AppendSync(0, []byte("after-oversized")); err != nil {
		t.Fatalf("stream wedged after oversized nil-done append: %v", err)
	}
	// With a callback the same condition is reported, not panicked.
	if _, err := m.AppendSync(0, make([]byte, 1<<13)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized append: got %v, want ErrTooLarge", err)
	}
	m.Close() // drain so metric writes are visible
	if got := reg.Counter("wal.oversized_rejects").Load(); got != 2 {
		t.Fatalf("oversized_rejects = %d, want 2", got)
	}
}

// The group-commit batch-size histogram must agree with the streams' own
// accounting: Sum == total batched transactions, Count == physical appends.
func TestBatchHistogramMatchesStreamStats(t *testing.T) {
	reg := obs.NewRegistry("wal-test")
	_, m := testManager(t, Config{Streams: 2, Obs: reg})

	const n = 400
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		m.Append(i%2, []byte(fmt.Sprintf("txn-%04d-payload", i)), func(_ Addr, err error) {
			if err != nil {
				t.Error(err)
			}
			wg.Done()
		})
	}
	wg.Wait()
	m.Close() // metric records land before ioLoop exit; Close joins it

	var appends, txns int64
	for i := 0; i < m.Streams(); i++ {
		a, tx, _ := m.Stream(i).Stats()
		appends += a
		txns += tx
	}
	if txns != n {
		t.Fatalf("stream stats report %d txns, want %d", txns, n)
	}
	h := reg.Histogram("wal.batch_txns")
	if h.Sum() != txns {
		t.Fatalf("batch_txns histogram sum = %d, want %d (stream stats)", h.Sum(), txns)
	}
	if h.Count() != appends {
		t.Fatalf("batch_txns histogram count = %d, want %d physical appends", h.Count(), appends)
	}
	if lat := reg.Histogram("wal.commit_latency_ns"); lat.Count() != n {
		t.Fatalf("commit_latency_ns count = %d, want one sample per txn (%d)", lat.Count(), n)
	}
}
