package obs

import (
	"encoding/json"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry("t")
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if c.Load() != 5 {
		t.Fatalf("counter = %d, want 5", c.Load())
	}
	if r.Counter("c") != c {
		t.Fatal("counter registration not idempotent")
	}
	g := r.Gauge("g")
	g.Set(10)
	g.Add(-3)
	if g.Load() != 7 {
		t.Fatalf("gauge = %d, want 7", g.Load())
	}
	r.GaugeFunc("gf", func() int64 { return c.Load() + g.Load() })
	s := r.Snapshot()
	byName := map[string]Metric{}
	for _, m := range s.Metrics {
		byName[m.Name] = m
	}
	if byName["gf"].Value != 12 {
		t.Fatalf("gauge func = %d, want 12", byName["gf"].Value)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Add(1)
	c.Inc()
	g := r.Gauge("x")
	g.Set(1)
	g.Add(1)
	h := r.Histogram("x")
	h.Record(1)
	r.GaugeFunc("x", func() int64 { return 1 })
	if c.Load() != 0 || g.Load() != 0 || h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil metrics must be inert")
	}
	if s := r.Snapshot(); len(s.Metrics) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
}

// TestHistogramPercentileOracle checks the power-of-two estimate against a
// sorted-slice oracle: for every quantile, oracle <= estimate < 2*oracle+1
// (the bucket upper bound can never undershoot a value in its bucket, and a
// bucket spans less than one doubling).
func TestHistogramPercentileOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h := &Histogram{}
	var vals []int64
	for i := 0; i < 10000; i++ {
		var v int64
		switch i % 3 {
		case 0:
			v = rng.Int63n(100)
		case 1:
			v = rng.Int63n(100000)
		default:
			v = rng.Int63n(10000000)
		}
		vals = append(vals, v)
		h.Record(v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, q := range []float64{0.5, 0.95, 0.99, 1.0} {
		rank := int(q*float64(len(vals)) + 0.9999999)
		if rank < 1 {
			rank = 1
		}
		oracle := vals[rank-1]
		got := h.Quantile(q)
		if got < oracle {
			t.Fatalf("q=%v: estimate %d below oracle %d", q, got, oracle)
		}
		if got > 2*oracle+1 {
			t.Fatalf("q=%v: estimate %d exceeds 2*oracle+1 (%d)", q, got, 2*oracle+1)
		}
	}
	if h.Max() != vals[len(vals)-1] {
		t.Fatalf("max = %d, want %d", h.Max(), vals[len(vals)-1])
	}
}

func TestHistogramEdgeValues(t *testing.T) {
	h := &Histogram{}
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile != 0")
	}
	h.Record(0)
	h.Record(-5) // clamps to 0
	if h.Count() != 2 || h.Sum() != 0 || h.Quantile(1.0) != 0 {
		t.Fatalf("zero-value histogram: count=%d sum=%d", h.Count(), h.Sum())
	}
	h.Record(1 << 40)
	if h.Max() != 1<<40 {
		t.Fatalf("max = %d", h.Max())
	}
	// Quantile is clamped to the exact max, not the bucket upper bound.
	if q := h.Quantile(1.0); q != 1<<40 {
		t.Fatalf("p100 = %d, want %d", q, int64(1)<<40)
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines; run
// under -race this exercises the lock-free recording path, and the final
// count/sum must be exact.
func TestHistogramConcurrent(t *testing.T) {
	h := &Histogram{}
	const goroutines = 8
	const per = 20000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(int64(g*per + i))
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != goroutines*per {
		t.Fatalf("count = %d, want %d", h.Count(), goroutines*per)
	}
	want := int64(goroutines*per) * int64(goroutines*per-1) / 2
	if h.Sum() != want {
		t.Fatalf("sum = %d, want %d", h.Sum(), want)
	}
	if h.Max() != goroutines*per-1 {
		t.Fatalf("max = %d, want %d", h.Max(), goroutines*per-1)
	}
}

// TestSnapshotDeterminism registers the same metrics in two different
// orders and expects identical snapshot ordering and rendering.
func TestSnapshotDeterminism(t *testing.T) {
	build := func(names []string) Snapshot {
		r := NewRegistry("det")
		for _, n := range names {
			switch n[0] {
			case 'c':
				r.Counter(n).Add(1)
			case 'g':
				r.Gauge(n).Set(2)
			default:
				r.Histogram(n).Record(3)
			}
		}
		return r.Snapshot()
	}
	a := build([]string{"c.one", "g.two", "h.three", "c.zero"})
	b := build([]string{"h.three", "c.zero", "c.one", "g.two"})
	if len(a.Metrics) != len(b.Metrics) {
		t.Fatalf("metric counts differ: %d vs %d", len(a.Metrics), len(b.Metrics))
	}
	for i := range a.Metrics {
		if a.Metrics[i].Name != b.Metrics[i].Name {
			t.Fatalf("order differs at %d: %q vs %q", i, a.Metrics[i].Name, b.Metrics[i].Name)
		}
	}
	if a.String() != b.String() {
		t.Fatal("renderings differ")
	}
	for i := 1; i < len(a.Metrics); i++ {
		if a.Metrics[i-1].Name >= a.Metrics[i].Name {
			t.Fatalf("snapshot not sorted: %q >= %q", a.Metrics[i-1].Name, a.Metrics[i].Name)
		}
	}
}

// TestRecordingAllocFree is the acceptance check that hot-path recording
// performs zero allocations.
func TestRecordingAllocFree(t *testing.T) {
	r := NewRegistry("alloc")
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	var i int64
	allocs := testing.AllocsPerRun(1000, func() {
		i++
		c.Add(1)
		g.Set(i)
		h.Record(i)
	})
	if allocs != 0 {
		t.Fatalf("recording allocates %v times per op, want 0", allocs)
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry("json")
	r.Counter("core.commits").Add(7)
	h := r.Histogram("wal.batch_txns")
	for i := int64(1); i <= 16; i++ {
		h.Record(i)
	}
	var decoded struct {
		Name    string `json:"name"`
		Metrics []struct {
			Name  string `json:"name"`
			Kind  string `json:"kind"`
			Value int64  `json:"value"`
			Hist  *struct {
				Count int64 `json:"count"`
				P50   int64 `json:"p50"`
			} `json:"hist"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(r.Snapshot().JSON()), &decoded); err != nil {
		t.Fatalf("snapshot JSON does not parse: %v", err)
	}
	if decoded.Name != "json" || len(decoded.Metrics) != 2 {
		t.Fatalf("decoded %+v", decoded)
	}
	if decoded.Metrics[0].Name != "core.commits" || decoded.Metrics[0].Value != 7 {
		t.Fatalf("counter decoded as %+v", decoded.Metrics[0])
	}
	if decoded.Metrics[1].Hist == nil || decoded.Metrics[1].Hist.Count != 16 {
		t.Fatalf("histogram decoded as %+v", decoded.Metrics[1])
	}
}
