package obs

import (
	"testing"
	"time"
)

func TestTraceStageAccounting(t *testing.T) {
	reg := NewRegistry("test")
	tr := NewTracer(TracerConfig{SampleEvery: 1, Registry: reg})

	tc := tr.Start(42, true)
	if tc == nil {
		t.Fatal("Start returned nil with sampling on")
	}
	if tc.ID() != 42 {
		t.Fatalf("ID = %d, want 42", tc.ID())
	}
	tc.Begin(StageFrameRead)
	time.Sleep(time.Millisecond)
	tc.End(StageFrameRead)
	tc.Begin(StagePlanCache)
	tc.PlanCache(false)
	time.Sleep(time.Millisecond)
	tc.End(StagePlanCache)
	tc.Begin(StageExec)
	time.Sleep(time.Millisecond)
	tc.End(StageExec)
	tc.AddSpan(StageSRSSReplicate, tc.Since(), 12345)
	tc.SetBatch(7)
	tc.Finish()

	recs := tr.Recent()
	if len(recs) != 1 {
		t.Fatalf("Recent len = %d, want 1", len(recs))
	}
	rec := recs[0]
	if rec.ID != 42 || !rec.Forced || rec.Batch != 7 || !rec.PlanMiss || rec.PlanHit {
		t.Fatalf("record fields wrong: %+v", rec)
	}
	if rec.TotalNS < int64(3*time.Millisecond) {
		t.Fatalf("TotalNS = %d, want >= 3ms", rec.TotalNS)
	}
	want := []Stage{StageFrameRead, StagePlanCache, StageExec, StageSRSSReplicate}
	if len(rec.Stages) != len(want) {
		t.Fatalf("stages = %+v, want %v", rec.Stages, want)
	}
	var prevBegin int64 = -1
	for i, sp := range rec.Stages {
		if sp.Stage != want[i] {
			t.Fatalf("stage[%d] = %v, want %v", i, sp.Stage, want[i])
		}
		if sp.Name != want[i].String() {
			t.Fatalf("stage[%d] name = %q, want %q", i, sp.Name, want[i].String())
		}
		if sp.DurNS <= 0 {
			t.Fatalf("stage[%d] dur = %d, want > 0", i, sp.DurNS)
		}
		if sp.BeginNS < prevBegin {
			t.Fatalf("stage[%d] begin %d < previous %d", i, sp.BeginNS, prevBegin)
		}
		prevBegin = sp.BeginNS
	}
	// Per-stage histograms fed regardless of publication.
	if h := reg.Histogram("trace.stage.exec_ns"); h.Count() != 1 {
		t.Fatalf("exec stage histogram count = %d, want 1", h.Count())
	}
	if h := reg.Histogram("trace.total_ns"); h.Count() != 1 {
		t.Fatalf("total histogram count = %d, want 1", h.Count())
	}
}

func TestTraceHeadSampling(t *testing.T) {
	tr := NewTracer(TracerConfig{SampleEvery: 4})
	published := 0
	for i := 0; i < 16; i++ {
		tc := tr.Start(0, false)
		if tc != nil {
			tc.Begin(StageExec)
			tc.End(StageExec)
			tc.Finish()
			published++
		}
	}
	if published != 4 {
		t.Fatalf("published %d of 16 with SampleEvery=4, want 4", published)
	}
	if got := len(tr.Recent()); got != 4 {
		t.Fatalf("Recent len = %d, want 4", got)
	}
}

func TestTraceSlowCapture(t *testing.T) {
	// Head sampling effectively off; slow threshold catches the trace.
	tr := NewTracer(TracerConfig{SampleEvery: 1 << 30, SlowThreshold: time.Millisecond})
	tc := tr.Start(0, false)
	if tc == nil {
		t.Fatal("Start returned nil despite slow threshold")
	}
	if tc.sampled {
		t.Fatal("trace unexpectedly head-sampled")
	}
	tc.Begin(StageExec)
	time.Sleep(2 * time.Millisecond)
	tc.End(StageExec)
	tc.Finish()
	slow := tr.Slow()
	if len(slow) != 1 || !slow[0].Slow {
		t.Fatalf("Slow ring = %+v, want one slow record", slow)
	}
	if len(tr.Recent()) != 1 {
		t.Fatalf("slow trace should also land in Recent")
	}

	// A fast unsampled trace publishes nothing.
	tc = tr.Start(0, false)
	tc.Begin(StageExec)
	tc.End(StageExec)
	tc.Finish()
	if len(tr.Recent()) != 1 {
		t.Fatal("fast unsampled trace was published")
	}
}

func TestTraceSamplingOffReturnsNil(t *testing.T) {
	tr := NewTracer(TracerConfig{})
	if tc := tr.Start(0, false); tc != nil {
		t.Fatal("Start should return nil with all sinks off")
	}
	// Forced traces are captured even with sampling off.
	if tc := tr.Start(9, true); tc == nil {
		t.Fatal("forced Start returned nil")
	} else {
		tc.Finish()
	}
	if got := len(tr.Recent()); got != 1 {
		t.Fatalf("Recent len = %d, want 1", got)
	}
}

func TestTraceNilSafety(t *testing.T) {
	var tr *Tracer
	tc := tr.Start(1, true)
	if tc != nil {
		t.Fatal("nil tracer produced a trace")
	}
	// All methods must be nil-receiver safe.
	tc.Begin(StageExec)
	tc.End(StageExec)
	tc.AddSpan(StageExec, 0, 1)
	tc.Adjust(StageExec, -1)
	tc.PlanCache(true)
	tc.SetBatch(3)
	tc.VisitStages(func(Stage, int64, int64) { t.Fatal("visit on nil") })
	_ = tc.Since()
	_ = tc.ID()
	_ = tc.Forced()
	tc.Finish()
	tc.Discard()
	if tr.Recent() != nil || tr.Slow() != nil {
		t.Fatal("nil tracer rings not nil")
	}
}

func TestTraceRingWraps(t *testing.T) {
	tr := NewTracer(TracerConfig{SampleEvery: 1, RingSize: 8})
	for i := 0; i < 100; i++ {
		tc := tr.Start(uint64(i)+1, false)
		tc.Finish()
	}
	recs := tr.Recent()
	if len(recs) != 8 {
		t.Fatalf("ring len = %d, want 8", len(recs))
	}
	for i, rec := range recs {
		if want := uint64(93 + i); rec.ID != want {
			t.Fatalf("ring[%d].ID = %d, want %d (oldest-first)", i, rec.ID, want)
		}
	}
}

func TestTraceAdjustCarvesSubSpan(t *testing.T) {
	tr := NewTracer(TracerConfig{SampleEvery: 1})
	tc := tr.Start(0, false)
	tc.AddSpan(StageGroupCommit, 0, 1000)
	tc.AddSpan(StageSRSSReplicate, 200, 300)
	tc.Adjust(StageGroupCommit, -300)
	tc.Finish()
	rec := tr.Recent()[0]
	if rec.Stages[0].Stage != StageGroupCommit || rec.Stages[0].DurNS != 700 {
		t.Fatalf("group_commit span = %+v, want dur 700", rec.Stages[0])
	}
	if rec.Stages[1].Stage != StageSRSSReplicate || rec.Stages[1].DurNS != 300 {
		t.Fatalf("replicate span = %+v, want dur 300", rec.Stages[1])
	}
}

// TestTraceRecordAllocs gates the hot path: both the sampled-out skip path
// and the measured-but-unpublished path must not allocate.
func TestTraceRecordAllocs(t *testing.T) {
	reg := NewRegistry("alloc")

	// Sampling off entirely: Start returns nil, every method is a branch.
	off := NewTracer(TracerConfig{Registry: reg})
	skip := testing.AllocsPerRun(1000, func() {
		tc := off.Start(0, false)
		tc.Begin(StageFrameRead)
		tc.End(StageFrameRead)
		tc.Finish()
	})
	if skip > 0.05 {
		t.Fatalf("sampling-off path allocates %.2f allocs/op, want 0", skip)
	}

	// Slow threshold set but never crossed: full measurement, pooled trace,
	// nothing published — still zero allocations.
	slow := NewTracer(TracerConfig{SampleEvery: 1 << 30, SlowThreshold: time.Hour, Registry: reg})
	for i := 0; i < 8; i++ { // warm the pool
		slow.Start(0, false).Finish()
	}
	measured := testing.AllocsPerRun(1000, func() {
		tc := slow.Start(0, false)
		tc.Begin(StageFrameRead)
		tc.End(StageFrameRead)
		tc.Begin(StageExec)
		tc.End(StageExec)
		tc.AddSpan(StageSRSSReplicate, 10, 20)
		tc.SetBatch(4)
		tc.Finish()
	})
	if measured > 0.05 {
		t.Fatalf("measured-unpublished path allocates %.2f allocs/op, want 0", measured)
	}
}

func BenchmarkTraceSampledOut(b *testing.B) {
	tr := NewTracer(TracerConfig{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tc := tr.Start(0, false)
		tc.Begin(StageFrameRead)
		tc.End(StageFrameRead)
		tc.Finish()
	}
}

func BenchmarkTraceMeasured(b *testing.B) {
	tr := NewTracer(TracerConfig{SampleEvery: 1 << 30, SlowThreshold: time.Hour})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tc := tr.Start(0, false)
		tc.Begin(StageFrameRead)
		tc.End(StageFrameRead)
		tc.Begin(StageExec)
		tc.End(StageExec)
		tc.Finish()
	}
}
