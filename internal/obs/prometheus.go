package obs

import (
	"fmt"
	"strings"
)

// promSanitize maps a dotted metric name to the Prometheus metric-name
// alphabet [a-zA-Z0-9_:]; every other byte becomes '_'. A leading digit
// gets a '_' prefix.
func promSanitize(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// Prometheus renders the snapshot in the Prometheus text exposition format
// (version 0.0.4). Metric names are prefixed with the sanitized registry
// name; histograms become cumulative `_bucket` series (with an explicit
// `+Inf` bucket) plus `_sum` and `_count`. Counters gain no suffix: the
// names in this codebase already carry their unit ("..._ns", "..._bytes").
func (s Snapshot) Prometheus() string {
	var b strings.Builder
	prefix := ""
	if s.Name != "" {
		prefix = promSanitize(s.Name) + "_"
	}
	for _, m := range s.Metrics {
		name := prefix + promSanitize(m.Name)
		switch m.Kind {
		case KindHistogram:
			h := m.Hist
			fmt.Fprintf(&b, "# TYPE %s histogram\n", name)
			var cum int64
			for _, bk := range h.Buckets {
				cum += bk.Count
				fmt.Fprintf(&b, "%s_bucket{le=\"%d\"} %d\n", name, bk.Le, cum)
			}
			fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count)
			fmt.Fprintf(&b, "%s_sum %d\n", name, h.Sum)
			fmt.Fprintf(&b, "%s_count %d\n", name, h.Count)
		case KindCounter:
			fmt.Fprintf(&b, "# TYPE %s counter\n", name)
			fmt.Fprintf(&b, "%s %d\n", name, m.Value)
		default:
			fmt.Fprintf(&b, "# TYPE %s gauge\n", name)
			fmt.Fprintf(&b, "%s %d\n", name, m.Value)
		}
	}
	return b.String()
}
