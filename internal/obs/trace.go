// Per-request stage tracing: a pooled, allocation-free-on-hot-path span
// recorder for the commit pipeline.
//
// HiEngine's headline claim is microsecond commit latency from compute-side
// log persistence and commit pipelining; aggregate histograms cannot say
// *where* a slow commit spent its time. A Trace attributes one request's
// wall time to a fixed enum of pipeline stages (frame read, worker-slot
// admission, plan cache, execution, WAL enqueue, group-commit flush, SRSS
// replication fan-out, durability callback, respond). Stage accounting is a
// fixed array of monotonic-clock deltas — no maps, no slices, no locks —
// and Trace objects are pooled, so the traced hot path does not allocate.
//
// Sampling follows the Dapper model: 1-in-N head sampling decided at Start,
// plus tail capture of any trace whose total latency crosses a slow-query
// threshold (so the outliers that motivate tracing are never sampled away),
// plus client-forced traces (the wire protocol carries a trace id). Every
// finished trace — sampled or not — feeds per-stage duration histograms in
// the shared Registry, so aggregates come for free; only published traces
// materialize a TraceRecord into the lock-free recent/slow ring buffers.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Stage identifies one pipeline stage. The numeric order is the pipeline
// order: a correctly instrumented trace has non-decreasing stage begin
// offsets in enum order. Values are wire-stable (the server returns stage
// timings to the client on traced responses); append only.
type Stage uint8

// Pipeline stages, in pipeline order.
const (
	// StageFrameRead: reading one request frame off the connection.
	StageFrameRead Stage = iota
	// StageSlotWait: admission — waiting to lease a worker slot.
	StageSlotWait
	// StagePlanCache: SQL-text plan-cache lookup (and compile on miss).
	StagePlanCache
	// StageExec: executing the compiled statement against the engine.
	StageExec
	// StageWALEnqueue: commit log record queued, waiting for the group
	// committer to pick it up.
	StageWALEnqueue
	// StageGroupCommit: group-commit flush — batch concat + segment append,
	// excluding the replication fan-out (reported separately).
	StageGroupCommit
	// StageSRSSReplicate: SRSS replication fan-out inside the flush.
	StageSRSSReplicate
	// StageDurable: from durability to the commit callback running.
	StageDurable
	// StageRespond: encoding + writing the response frame.
	StageRespond
	// StageCursorOpen: opening a streaming cursor — planning the SELECT and
	// starting its producer goroutine (OpScanOpen). Appended after
	// StageRespond for wire stability, so cursor traces are the one case
	// where enum order is not strict pipeline order.
	StageCursorOpen
	// StageCursorProduce: pulling rows from the cursor's producer for one
	// page (OpScanOpen's first page and every OpScanNext).
	StageCursorProduce

	// NumStages is the number of pipeline stages.
	NumStages = int(StageCursorProduce) + 1
)

// stageNames uses only Prometheus/identifier-safe characters.
var stageNames = [NumStages]string{
	"frame_read",
	"slot_wait",
	"plan_cache",
	"exec",
	"wal_enqueue",
	"group_commit",
	"srss_replicate",
	"durable",
	"respond",
	"cursor_open",
	"cursor_produce",
}

// String returns the stage's snake_case name.
func (s Stage) String() string {
	if int(s) < NumStages {
		return stageNames[s]
	}
	return "unknown"
}

// stageSpan accumulates one stage inside a Trace. A stage may be entered
// several times (e.g. plan_cache once per statement of a transaction);
// beginNS keeps the first entry offset and durNS the accumulated time.
type stageSpan struct {
	begun   bool
	open    bool
	openNS  int64 // Since() at the pending Begin
	beginNS int64 // Since() at the first Begin
	durNS   int64 // accumulated duration
}

// Trace records one request's stage timings. It is owned by exactly one
// goroutine at a time; ownership transfers (conn goroutine → WAL group
// committer → durability callback) must happen through a channel send or
// equivalent happens-before edge. All methods are nil-receiver safe so
// untraced requests pay a single branch.
type Trace struct {
	tr       *Tracer
	id       uint64
	t0       time.Time
	forced   bool // client-requested: always published
	sampled  bool // head-sampled at Start
	planHit  bool
	planMis  bool
	hasShard bool   // shard identity tagged (SetShard)
	hop      uint32 // span id within a distributed trace (0 = untagged)
	shard    uint32 // reporting node's shard id, valid iff hasShard
	batch    int32  // group-commit batch size (txns), 0 if never set
	op       string // terminal opcode name (last tagged wins)
	stages   [NumStages]stageSpan
}

// ID returns the trace id (0 for nil).
func (t *Trace) ID() uint64 {
	if t == nil {
		return 0
	}
	return t.id
}

// Since returns nanoseconds elapsed since the trace started.
func (t *Trace) Since() int64 {
	if t == nil {
		return 0
	}
	return int64(time.Since(t.t0))
}

// Begin marks stage s as entered now. Unbalanced or repeated Begins are
// tolerated (the previous open interval is closed first).
func (t *Trace) Begin(s Stage) {
	if t == nil {
		return
	}
	now := t.Since()
	sp := &t.stages[s]
	if sp.open {
		sp.durNS += now - sp.openNS
	}
	if !sp.begun {
		sp.begun = true
		sp.beginNS = now
	}
	sp.open = true
	sp.openNS = now
}

// End closes the open interval of stage s, accumulating its duration.
// An End without a matching Begin is a no-op.
func (t *Trace) End(s Stage) {
	if t == nil {
		return
	}
	sp := &t.stages[s]
	if !sp.open {
		return
	}
	sp.open = false
	sp.durNS += t.Since() - sp.openNS
}

// AddSpan records a completed interval for stage s at an explicit offset,
// for stages measured by a sub-component (e.g. replication time measured
// inside the group-commit flush).
func (t *Trace) AddSpan(s Stage, beginNS, durNS int64) {
	if t == nil {
		return
	}
	sp := &t.stages[s]
	if !sp.begun {
		sp.begun = true
		sp.beginNS = beginNS
	}
	sp.durNS += durNS
}

// Adjust adds delta to stage s's accumulated duration (used to carve a
// sub-span out of an enclosing stage: Adjust(enclosing, -subDur)).
func (t *Trace) Adjust(s Stage, delta int64) {
	if t == nil {
		return
	}
	sp := &t.stages[s]
	if sp.begun {
		sp.durNS += delta
		if sp.durNS < 0 {
			sp.durNS = 0
		}
	}
}

// PlanCache records a plan-cache hit or miss.
func (t *Trace) PlanCache(hit bool) {
	if t == nil {
		return
	}
	if hit {
		t.planHit = true
	} else {
		t.planMis = true
	}
}

// SetBatch records the group-commit batch size (in transactions) this
// trace's commit rode in.
func (t *Trace) SetBatch(n int) {
	if t == nil {
		return
	}
	t.batch = int32(n)
}

// Batch returns the recorded group-commit batch size (0 if never set).
func (t *Trace) Batch() int {
	if t == nil {
		return 0
	}
	return int(t.batch)
}

// SetHop tags the trace with its span id within a distributed trace (the
// hop id carried on the request frame).
func (t *Trace) SetHop(h uint32) {
	if t == nil {
		return
	}
	t.hop = h
}

// Hop returns the tagged hop id (0 for nil or untagged).
func (t *Trace) Hop() uint32 {
	if t == nil {
		return 0
	}
	return t.hop
}

// SetShard tags the trace with the reporting node's shard id.
func (t *Trace) SetShard(id uint32) {
	if t == nil {
		return
	}
	t.shard = id
	t.hasShard = true
}

// Shard returns the tagged shard id, if any.
func (t *Trace) Shard() (uint32, bool) {
	if t == nil {
		return 0, false
	}
	return t.shard, t.hasShard
}

// SetOp tags the trace with an opcode name; the last tag (the traced
// unit's terminal request) wins.
func (t *Trace) SetOp(name string) {
	if t == nil {
		return
	}
	t.op = name
}

// Op returns the tagged opcode name ("" for nil or untagged).
func (t *Trace) Op() string {
	if t == nil {
		return ""
	}
	return t.op
}

// PlanCacheSeen reports whether the trace saw plan-cache hits / misses.
func (t *Trace) PlanCacheSeen() (hit, miss bool) {
	if t == nil {
		return false, false
	}
	return t.planHit, t.planMis
}

// Forced reports whether the trace was client-requested.
func (t *Trace) Forced() bool { return t != nil && t.forced }

// VisitStages calls fn for every begun stage in pipeline (enum) order.
// Open stages are reported with their accumulated duration so far.
func (t *Trace) VisitStages(fn func(s Stage, beginNS, durNS int64)) {
	if t == nil {
		return
	}
	for i := 0; i < NumStages; i++ {
		sp := &t.stages[i]
		if sp.begun {
			fn(Stage(i), sp.beginNS, sp.durNS)
		}
	}
}

// reset clears the trace for reuse.
func (t *Trace) reset() {
	t.id = 0
	t.forced = false
	t.sampled = false
	t.planHit = false
	t.planMis = false
	t.hasShard = false
	t.hop = 0
	t.shard = 0
	t.batch = 0
	t.op = ""
	for i := range t.stages {
		t.stages[i] = stageSpan{}
	}
}

// Finish completes the trace: total and per-stage durations feed the
// tracer's histograms unconditionally; a TraceRecord is materialized into
// the ring buffers only if the trace was head-sampled, client-forced, or
// crossed the slow threshold. The trace is returned to the pool — the
// caller must not touch it afterwards.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	tr := t.tr
	total := t.Since()
	tr.mTotal.Record(total)
	for i := 0; i < NumStages; i++ {
		if sp := &t.stages[i]; sp.begun {
			d := sp.durNS
			if sp.open {
				d += total - sp.openNS
			}
			tr.mStage[i].Record(d)
		}
	}
	tr.mFinished.Inc()
	slow := tr.cfg.SlowThreshold > 0 && total >= int64(tr.cfg.SlowThreshold)
	if t.sampled || t.forced || slow {
		rec := t.record(total, slow)
		tr.recent.push(rec)
		if slow {
			tr.slow.push(rec)
			tr.mSlow.Inc()
		}
		tr.mPublished.Inc()
	}
	t.reset()
	tr.pool.Put(t)
}

// Discard returns an unfinished trace to the pool without recording
// anything (connection teardown mid-request).
func (t *Trace) Discard() {
	if t == nil {
		return
	}
	t.reset()
	t.tr.pool.Put(t)
}

// record materializes an immutable TraceRecord (allocates; off hot path).
func (t *Trace) record(total int64, slow bool) *TraceRecord {
	rec := &TraceRecord{
		ID:       t.id,
		Hop:      t.hop,
		Shard:    t.shard,
		HasShard: t.hasShard,
		Op:       t.op,
		Start:    t.t0,
		TotalNS:  total,
		Batch:    int(t.batch),
		PlanHit:  t.planHit,
		PlanMiss: t.planMis,
		Forced:   t.forced,
		Sampled:  t.sampled,
		Slow:     slow,
	}
	for i := 0; i < NumStages; i++ {
		if sp := &t.stages[i]; sp.begun {
			d := sp.durNS
			if sp.open {
				d += total - sp.openNS
			}
			rec.Stages = append(rec.Stages, StageSpan{
				Stage: Stage(i), Name: Stage(i).String(),
				BeginNS: sp.beginNS, DurNS: d,
			})
		}
	}
	return rec
}

// StageSpan is one stage of a completed trace.
type StageSpan struct {
	Stage   Stage  `json:"-"`
	Name    string `json:"stage"`
	BeginNS int64  `json:"begin_ns"`
	DurNS   int64  `json:"dur_ns"`
}

// TraceRecord is an immutable completed trace, as published to the rings.
type TraceRecord struct {
	ID       uint64      `json:"id"`
	Hop      uint32      `json:"hop,omitempty"`
	Shard    uint32      `json:"shard"`
	HasShard bool        `json:"has_shard,omitempty"`
	Op       string      `json:"op,omitempty"`
	Start    time.Time   `json:"start"`
	TotalNS  int64       `json:"total_ns"`
	Batch    int         `json:"batch,omitempty"`
	PlanHit  bool        `json:"plan_hit,omitempty"`
	PlanMiss bool        `json:"plan_miss,omitempty"`
	Forced   bool        `json:"forced,omitempty"`
	Sampled  bool        `json:"sampled,omitempty"`
	Slow     bool        `json:"slow,omitempty"`
	Stages   []StageSpan `json:"stages"`
}

// DistHopRecord is one participant's contribution to an assembled
// distributed trace: the hop id the coordinator stamped on the request,
// the shard that answered, and that shard's stage timings.
type DistHopRecord struct {
	Hop      uint32      `json:"hop"`
	Shard    uint32      `json:"shard"`
	HasShard bool        `json:"has_shard,omitempty"`
	Op       string      `json:"op"`
	BeginNS  int64       `json:"begin_ns"` // send offset from the trace start
	RTTNS    int64       `json:"rtt_ns"`   // coordinator-observed round trip
	ServerNS int64       `json:"server_ns"`
	Stages   []StageSpan `json:"stages,omitempty"`
}

// DistTraceRecord is one assembled multi-hop distributed transaction
// trace: the coordinator's wall time decomposed into the 2PC phases, plus
// every participant hop's tagged stage timings.
type DistTraceRecord struct {
	TraceID   uint64          `json:"id"`
	Start     time.Time       `json:"start"`
	TotalNS   int64           `json:"total_ns"`
	PrepareNS int64           `json:"prepare_ns,omitempty"`
	DecideNS  int64           `json:"decide_ns,omitempty"`
	FanoutNS  int64           `json:"fanout_ns,omitempty"`
	Shards    int             `json:"shards"`
	Slow      bool            `json:"slow,omitempty"`
	Hops      []DistHopRecord `json:"hops"`
}

// ring is a lock-free overwrite-on-wrap buffer of completed records.
type ring[T any] struct {
	slots []atomic.Pointer[T]
	cur   atomic.Uint64 // next slot index
}

func newRing[T any](n int) ring[T] {
	if n <= 0 {
		n = defaultRingSize
	}
	// Round up to a power of two so index masking is a single AND.
	size := 1
	for size < n {
		size <<= 1
	}
	return ring[T]{slots: make([]atomic.Pointer[T], size)}
}

func (r *ring[T]) push(rec *T) {
	i := r.cur.Add(1) - 1
	r.slots[i&uint64(len(r.slots)-1)].Store(rec)
}

// dump returns the ring contents, oldest first.
func (r *ring[T]) dump() []*T {
	n := len(r.slots)
	cur := r.cur.Load()
	out := make([]*T, 0, n)
	for k := 0; k < n; k++ {
		if rec := r.slots[(cur+uint64(k))&uint64(n-1)].Load(); rec != nil {
			out = append(out, rec)
		}
	}
	return out
}

// defaultRingSize is the default capacity of the recent and slow rings.
const defaultRingSize = 256

// TracerConfig configures a Tracer.
type TracerConfig struct {
	// SampleEvery head-samples 1 in N traces (0 disables head sampling).
	SampleEvery int
	// SlowThreshold always publishes traces at least this slow (0 disables).
	SlowThreshold time.Duration
	// RingSize is the capacity of the recent and slow rings (rounded up to
	// a power of two; default 256).
	RingSize int
	// Registry receives the per-stage and total duration histograms and
	// tracer counters (nil for none — histograms become no-ops).
	Registry *Registry
}

// Tracer creates, samples, and collects Traces.
type Tracer struct {
	cfg    TracerConfig
	seq    atomic.Uint64 // head-sampling counter
	idSeq  atomic.Uint64 // server-generated trace ids
	pool   sync.Pool
	recent ring[TraceRecord]
	slow   ring[TraceRecord]
	dist   ring[DistTraceRecord]

	mStarted       *Counter
	mFinished      *Counter
	mPublished     *Counter
	mSlow          *Counter
	mDistPublished *Counter
	mTotal         *Histogram
	mStage         [NumStages]*Histogram
}

// NewTracer builds a Tracer. A nil return is never produced; callers that
// want tracing off hold a nil *Tracer instead.
func NewTracer(cfg TracerConfig) *Tracer {
	t := &Tracer{cfg: cfg}
	t.recent = newRing[TraceRecord](cfg.RingSize)
	t.slow = newRing[TraceRecord](cfg.RingSize)
	t.dist = newRing[DistTraceRecord](cfg.RingSize)
	t.pool.New = func() any { return &Trace{tr: t} }
	r := cfg.Registry
	t.mStarted = r.Counter("trace.started")
	t.mFinished = r.Counter("trace.finished")
	t.mPublished = r.Counter("trace.published")
	t.mSlow = r.Counter("trace.slow")
	t.mDistPublished = r.Counter("trace.dist_published")
	t.mTotal = r.Histogram("trace.total_ns")
	for i := 0; i < NumStages; i++ {
		t.mStage[i] = r.Histogram("trace.stage." + stageNames[i] + "_ns")
	}
	return t
}

// Start begins a trace for one request. id is the client-provided trace id
// when forced (0 lets the tracer assign one). Returns nil — zero further
// overhead — on a nil tracer, or when the request is neither forced nor
// head-sampled and no slow threshold is set: with every publish sink off,
// stage bookkeeping would buy nothing, so "tracing compiled in, sampling
// off" costs one atomic add per request. When a slow threshold is set the
// trace must be measured even if unsampled, since slowness is only known
// at Finish.
func (tr *Tracer) Start(id uint64, forced bool) *Trace {
	if tr == nil {
		return nil
	}
	sampled := false
	if n := tr.cfg.SampleEvery; n > 0 {
		sampled = tr.seq.Add(1)%uint64(n) == 0
	}
	if !forced && !sampled && tr.cfg.SlowThreshold <= 0 {
		// No sink can ever publish this trace; skip the bookkeeping
		// entirely so "tracing on, sampling off" is nearly free.
		return nil
	}
	t := tr.pool.Get().(*Trace)
	t.t0 = time.Now()
	t.forced = forced
	t.sampled = sampled
	if id == 0 {
		id = tr.idSeq.Add(1)
	}
	t.id = id
	tr.mStarted.Inc()
	return t
}

// Recent returns the recent-trace ring, oldest first.
func (tr *Tracer) Recent() []*TraceRecord {
	if tr == nil {
		return nil
	}
	return tr.recent.dump()
}

// Slow returns the slow-trace ring, oldest first.
func (tr *Tracer) Slow() []*TraceRecord {
	if tr == nil {
		return nil
	}
	return tr.slow.dump()
}

// SlowThreshold returns the configured slow threshold (0 when unset or the
// tracer is nil).
func (tr *Tracer) SlowThreshold() time.Duration {
	if tr == nil {
		return 0
	}
	return tr.cfg.SlowThreshold
}

// PublishDistributed records one assembled multi-hop distributed trace,
// mirroring Finish's publication policy: a forced (client/coordinator
// requested) tree always publishes; otherwise only trees over the slow
// threshold do. Marks rec.Slow as a side effect.
func (tr *Tracer) PublishDistributed(rec *DistTraceRecord, forced bool) {
	if tr == nil || rec == nil {
		return
	}
	rec.Slow = tr.cfg.SlowThreshold > 0 && rec.TotalNS >= int64(tr.cfg.SlowThreshold)
	if !forced && !rec.Slow {
		return
	}
	tr.dist.push(rec)
	tr.mDistPublished.Inc()
}

// Distributed returns the distributed-trace ring, oldest first.
func (tr *Tracer) Distributed() []*DistTraceRecord {
	if tr == nil {
		return nil
	}
	return tr.dist.dump()
}
