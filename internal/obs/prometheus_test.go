package obs

import "testing"

func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry("db")
	r.Counter("reqs.total").Add(5)
	r.Gauge("conns-open").Set(2)
	r.GaugeFunc("queue.depth", func() int64 { return 7 })
	h := r.Histogram("lat_ns")
	h.Record(0)
	h.Record(3)
	h.Record(100)

	want := `# TYPE db_conns_open gauge
db_conns_open 2
# TYPE db_lat_ns histogram
db_lat_ns_bucket{le="0"} 1
db_lat_ns_bucket{le="3"} 2
db_lat_ns_bucket{le="100"} 3
db_lat_ns_bucket{le="+Inf"} 3
db_lat_ns_sum 103
db_lat_ns_count 3
# TYPE db_queue_depth gauge
db_queue_depth 7
# TYPE db_reqs_total counter
db_reqs_total 5
`
	got := r.Snapshot().Prometheus()
	if got != want {
		t.Fatalf("Prometheus output mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestPrometheusSanitize(t *testing.T) {
	cases := map[string]string{
		"wal.commit_latency_ns": "wal_commit_latency_ns",
		"srss:tier-compute":     "srss:tier_compute",
		"9lives":                "_9lives",
		"a b\tc":                "a_b_c",
	}
	for in, want := range cases {
		if got := promSanitize(in); got != want {
			t.Errorf("promSanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestPrometheusCumulativeBuckets(t *testing.T) {
	r := NewRegistry("")
	h := r.Histogram("h")
	for i := 0; i < 10; i++ {
		h.Record(int64(i * 1000))
	}
	out := r.Snapshot().Prometheus()
	// The +Inf bucket must equal the total count, and with an empty
	// registry name there is no prefix.
	wantInf := `h_bucket{le="+Inf"} 10`
	if !contains(out, wantInf) {
		t.Fatalf("output missing %q:\n%s", wantInf, out)
	}
	if !contains(out, "h_count 10") {
		t.Fatalf("output missing h_count 10:\n%s", out)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
