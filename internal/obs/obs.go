// Package obs is HiEngine's unified observability layer: a zero-dependency
// metrics registry with atomic counters, gauges and lock-free power-of-two
// latency histograms.
//
// The paper's headline claims (Section 5, Figures 5-8) are all *measured*
// claims -- pipelined vs synchronous commit latency, group-commit batch
// sizes, GC interleaving, replication cost -- and logging/persistence
// trade-offs are only visible through latency distributions, not means.
// Every hot-path recording operation is a handful of atomic adds into fixed
// bucket arrays: no locks, no allocation, so instrumentation does not
// distort the microsecond-scale latency model in internal/delay.
//
// Components register metrics under dotted names ("wal.commit_latency_ns")
// in a shared Registry; Snapshot() produces a deterministic, ordered view
// with percentile estimates that renders as text or JSON. All metric
// methods are nil-receiver safe, so instrumented code can hold nil metric
// pointers when no registry is attached and pay only a predictable branch.
package obs

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. Safe on a nil receiver (no-op).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value (0 for a nil receiver).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores v. Safe on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by n. Safe on a nil receiver.
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Load returns the current value (0 for a nil receiver).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the fixed bucket count: bucket 0 holds the value 0 and
// bucket i (i >= 1) holds values v with bits.Len64(v) == i, i.e.
// v in [2^(i-1), 2^i - 1]. 64 buckets cover every non-negative int64.
const histBuckets = 64

// Histogram is a lock-free power-of-two histogram. Record is wait-free
// except for the bounded CAS loop maintaining the exact maximum; all state
// lives in fixed arrays so recording never allocates.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Record adds one observation. Negative values clamp to zero. Safe on a nil
// receiver (no-op), so hot paths can record unconditionally.
func (h *Histogram) Record(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of recorded observations.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Max returns the exact maximum observation (0 when empty).
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max.Load()
}

// bucketUpper is the largest value bucket i can hold.
func bucketUpper(i int) int64 {
	if i == 0 {
		return 0
	}
	if i >= 63 {
		return int64(^uint64(0) >> 1) // math.MaxInt64
	}
	return (int64(1) << uint(i)) - 1
}

// Quantile estimates the q-quantile (0 < q <= 1) as the upper bound of the
// bucket holding the rank-ceil(q*count) observation, clamped to the exact
// maximum. The estimate E of a true value T satisfies T <= E < 2*T (power
// of two bucketing). Returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q*float64(total) + 0.9999999)
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= rank {
			u := bucketUpper(i)
			if m := h.max.Load(); u > m {
				u = m
			}
			return u
		}
	}
	return h.max.Load()
}

// gaugeFunc wraps a callback evaluated at snapshot time.
type gaugeFunc func() int64

// Registry is a named collection of metrics. Metric registration is
// idempotent by name; lookups on the hot path should be done once at setup
// and the returned pointers cached.
type Registry struct {
	name string

	mu     sync.Mutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	funcs  map[string]gaugeFunc
	hists  map[string]*Histogram
}

// NewRegistry creates an empty registry with the given name.
func NewRegistry(name string) *Registry {
	return &Registry{
		name:   name,
		counts: make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		funcs:  make(map[string]gaugeFunc),
		hists:  make(map[string]*Histogram),
	}
}

// Name returns the registry name.
func (r *Registry) Name() string {
	if r == nil {
		return ""
	}
	return r.name
}

// Counter returns (creating if needed) the counter with the given name.
// Returns nil on a nil registry, which yields a no-op metric.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counts[name]
	if !ok {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the gauge with the given name.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a callback evaluated at snapshot time (e.g. a lag
// derived from two counters). Re-registering a name replaces the callback.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.funcs[name] = fn
	r.mu.Unlock()
}

// Histogram returns (creating if needed) the histogram with the given name.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Kind tags a snapshot metric.
type Kind string

// Metric kinds.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Bucket is one non-empty histogram bucket: Count observations <= Le (and
// greater than the previous bucket's Le).
type Bucket struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistValue is a point-in-time view of a histogram.
type HistValue struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Max     int64    `json:"max"`
	P50     int64    `json:"p50"`
	P95     int64    `json:"p95"`
	P99     int64    `json:"p99"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Mean returns the arithmetic mean (0 when empty).
func (h HistValue) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Metric is one metric in a snapshot.
type Metric struct {
	Name  string     `json:"name"`
	Kind  Kind       `json:"kind"`
	Value int64      `json:"value,omitempty"`
	Hist  *HistValue `json:"hist,omitempty"`
}

// Snapshot is a deterministic, name-ordered view of a registry.
type Snapshot struct {
	Name    string   `json:"name"`
	Metrics []Metric `json:"metrics"`
}

// snapshotHist materializes one histogram.
func snapshotHist(h *Histogram) *HistValue {
	hv := &HistValue{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
	for i := 0; i < histBuckets; i++ {
		if n := h.buckets[i].Load(); n > 0 {
			le := bucketUpper(i)
			if le > hv.Max {
				le = hv.Max
			}
			hv.Buckets = append(hv.Buckets, Bucket{Le: le, Count: n})
		}
	}
	return hv
}

// Snapshot captures every metric, ordered by name. The capture is not an
// atomic cut across metrics (concurrent recording continues), but each
// individual metric is read atomically and the output ordering is
// deterministic. A nil registry yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	s := Snapshot{Name: r.name}
	for name, c := range r.counts {
		s.Metrics = append(s.Metrics, Metric{Name: name, Kind: KindCounter, Value: c.Load()})
	}
	for name, g := range r.gauges {
		s.Metrics = append(s.Metrics, Metric{Name: name, Kind: KindGauge, Value: g.Load()})
	}
	fns := make(map[string]gaugeFunc, len(r.funcs))
	for name, fn := range r.funcs {
		fns[name] = fn
	}
	for name, h := range r.hists {
		s.Metrics = append(s.Metrics, Metric{Name: name, Kind: KindHistogram, Hist: snapshotHist(h)})
	}
	r.mu.Unlock()
	// Callbacks run outside the registry lock: they may read engine state
	// that itself registers metrics.
	for name, fn := range fns {
		s.Metrics = append(s.Metrics, Metric{Name: name, Kind: KindGauge, Value: fn()})
	}
	sort.Slice(s.Metrics, func(i, j int) bool { return s.Metrics[i].Name < s.Metrics[j].Name })
	return s
}

// String renders the snapshot as aligned text, one metric per line.
// Histograms show count/mean/percentiles/max plus the non-empty buckets.
func (s Snapshot) String() string {
	var b strings.Builder
	if s.Name != "" {
		fmt.Fprintf(&b, "--- obs: %s ---\n", s.Name)
	}
	w := 0
	for _, m := range s.Metrics {
		if len(m.Name) > w {
			w = len(m.Name)
		}
	}
	for _, m := range s.Metrics {
		switch m.Kind {
		case KindHistogram:
			h := m.Hist
			fmt.Fprintf(&b, "%-*s  count=%d mean=%.0f p50=%d p95=%d p99=%d max=%d",
				w, m.Name, h.Count, h.Mean(), h.P50, h.P95, h.P99, h.Max)
			if len(h.Buckets) > 0 {
				b.WriteString(" buckets[")
				for i, bk := range h.Buckets {
					if i > 0 {
						b.WriteByte(' ')
					}
					fmt.Fprintf(&b, "<=%d:%d", bk.Le, bk.Count)
				}
				b.WriteByte(']')
			}
			b.WriteByte('\n')
		default:
			fmt.Fprintf(&b, "%-*s  %d\n", w, m.Name, m.Value)
		}
	}
	return b.String()
}

// JSON renders the snapshot as a JSON object. Hand-rolled so the package
// stays dependency-free of encoding/json's reflection on the hot render
// path and the field order matches the deterministic snapshot order.
func (s Snapshot) JSON() string {
	var b strings.Builder
	b.WriteByte('{')
	fmt.Fprintf(&b, "%q:%q,%q:[", "name", s.Name, "metrics")
	for i, m := range s.Metrics {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "{%q:%q,%q:%q", "name", m.Name, "kind", m.Kind)
		if m.Kind == KindHistogram {
			h := m.Hist
			fmt.Fprintf(&b, ",%q:{%q:%d,%q:%d,%q:%d,%q:%d,%q:%d,%q:%d,%q:[",
				"hist", "count", h.Count, "sum", h.Sum, "max", h.Max,
				"p50", h.P50, "p95", h.P95, "p99", h.P99, "buckets")
			for j, bk := range h.Buckets {
				if j > 0 {
					b.WriteByte(',')
				}
				fmt.Fprintf(&b, "{%q:%d,%q:%d}", "le", bk.Le, "count", bk.Count)
			}
			b.WriteString("]}")
		} else {
			fmt.Fprintf(&b, ",%q:%d", "value", m.Value)
		}
		b.WriteByte('}')
	}
	b.WriteString("]}")
	return b.String()
}
