package core

import "sync"

// statusMap maps in-flight transaction IDs to their Txn objects. Readers
// that encounter a TID-stamped tmin consult it to learn whether the writer
// has precommitted (and with which CSN), aborted, or is still active
// (Section 5.1/5.2). Entries are removed once the owner has stamped its
// versions with real CSNs, so the map stays small.
type statusMap struct {
	shards [64]statusShard
}

type statusShard struct {
	mu sync.Mutex
	m  map[uint64]*Txn
}

func newStatusMap() *statusMap {
	s := &statusMap{}
	for i := range s.shards {
		s.shards[i].m = make(map[uint64]*Txn)
	}
	return s
}

func (s *statusMap) shard(tid uint64) *statusShard {
	return &s.shards[tid&63]
}

func (s *statusMap) register(t *Txn) {
	sh := s.shard(t.tid)
	sh.mu.Lock()
	sh.m[t.tid] = t
	sh.mu.Unlock()
}

func (s *statusMap) lookup(tid uint64) *Txn {
	sh := s.shard(tid)
	sh.mu.Lock()
	t := sh.m[tid]
	sh.mu.Unlock()
	return t
}

func (s *statusMap) remove(tid uint64) {
	sh := s.shard(tid)
	sh.mu.Lock()
	delete(sh.m, tid)
	sh.mu.Unlock()
}
