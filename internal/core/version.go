package core

import (
	"sync/atomic"

	"hiengine/internal/wal"
)

// tidFlag marks a timestamp word as a transaction ID rather than a CSN
// (Section 5.1: uncommitted versions carry their creator's TID in tmin so
// readers can skip or speculate on them).
const tidFlag uint64 = 1 << 63

func isTID(ts uint64) bool { return ts&tidFlag != 0 }

// Version is one record version, chained new-to-old from the record's PIA
// entry (Section 4). All mutable fields are atomics: versions are read
// lock-free by any transaction.
type Version struct {
	// tmin is the creating transaction: TID (flagged) while uncommitted,
	// then the creator's CSN.
	tmin atomic.Uint64
	// tmax is the superseding transaction: 0 while this is the newest
	// version, then the CSN of the update/delete that replaced it.
	tmax atomic.Uint64
	// next points to the previous (older) version.
	next atomic.Pointer[Version]
	// addr is the version's permanent address in the log, set when the
	// creating transaction's log records become durable. A version with
	// addr 0 exists only in memory (not yet durable).
	addr atomic.Uint64
	// data holds the full row payload (Section 4.2: updates write
	// complete record contents). It may be evicted (set to nil) for
	// durable versions; readers then reload it through the log's mmap
	// view using addr.
	data atomic.Pointer[[]byte]
	// tomb marks delete markers (immutable after creation).
	tomb bool
}

func newVersion(tid uint64, payload []byte, tomb bool, next *Version) *Version {
	v := &Version{tomb: tomb}
	v.tmin.Store(tid)
	if payload != nil {
		p := payload
		v.data.Store(&p)
	}
	v.next.Store(next)
	return v
}

// Tomb reports whether the version is a delete marker.
func (v *Version) Tomb() bool { return v.tomb }

// Addr returns the version's permanent log address (0 if not yet durable).
func (v *Version) Addr() wal.Addr { return wal.Addr(v.addr.Load()) }

// CSN returns the creation CSN, or 0 while uncommitted.
func (v *Version) CSN() uint64 {
	ts := v.tmin.Load()
	if isTID(ts) {
		return 0
	}
	return ts
}

// Next returns the next older version.
func (v *Version) Next() *Version { return v.next.Load() }

// payload returns the row bytes, reloading evicted data from the log
// through the engine's mmap read path (the partial-memory story of Section
// 4.2). Loaded data is cached back into the version.
func (v *Version) payload(e *Engine) ([]byte, error) {
	if p := v.data.Load(); p != nil {
		return *p, nil
	}
	if v.tomb {
		return nil, nil
	}
	rec, err := e.log.ReadRecord(wal.Addr(v.addr.Load()))
	if err != nil {
		return nil, err
	}
	p := rec.Payload
	v.data.Store(&p)
	return p, nil
}

// Evict drops the in-memory payload of a durable version. Returns false if
// the version is not durable yet (evicting it would lose data).
func (v *Version) Evict() bool {
	if v.addr.Load() == 0 || v.tomb {
		return false
	}
	v.data.Store(nil)
	return true
}

// txn status words, packed as state<<62 | csn.
const (
	txActive uint64 = iota
	txPrecommitted
	txCommitted
	txAborted
)

const (
	statusShift = 62
	csnMask     = 1<<statusShift - 1
)

func packStatus(state, csn uint64) uint64 { return state<<statusShift | csn&csnMask }
func statusState(w uint64) uint64         { return w >> statusShift }
func statusCSN(w uint64) uint64           { return w & csnMask }
