package core

import (
	"errors"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// TestSerialEquivalencePerKey validates the MVCC protocol against a serial
// reference: concurrent read-modify-write transactions on a small key space
// record (CSN, key, read value, written value); replaying the committed
// history in CSN order, every transaction's read must equal the previous
// committed write to that key. Under snapshot isolation with
// first-committer-wins this must hold exactly -- a stale read that survived
// to commit would be a lost update.
func TestSerialEquivalencePerKey(t *testing.T) {
	const keys = 8
	const workers = 8
	const attempts = 400

	e := testEngine(t)
	tbl := mustTable(t, e, usersSchema())
	rids := make([]RID, keys)
	for i := 0; i < keys; i++ {
		rids[i] = insertUser(t, e, tbl, 0, int64(i), "k", 0)
	}

	type event struct {
		csn   uint64
		key   int
		read  int64
		wrote int64
	}
	var mu sync.Mutex
	var events []event

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			local := make([]event, 0, attempts)
			for i := 0; i < attempts; i++ {
				k := rng.Intn(keys)
				tx, err := e.Begin(w)
				if err != nil {
					t.Error(err)
					return
				}
				row, err := tx.Get(tbl, rids[k])
				if err != nil {
					tx.Abort()
					continue
				}
				read := row[2].Int()
				wrote := read + 1
				if err := tx.Update(tbl, rids[k], Row{I(int64(k)), S("k"), I(wrote)}); err != nil {
					if !errors.Is(err, ErrConflict) {
						t.Errorf("update: %v", err)
						return
					}
					continue
				}
				if err := tx.Commit(); err != nil {
					t.Errorf("commit: %v", err)
					return
				}
				local = append(local, event{csn: tx.CSN(), key: k, read: read, wrote: wrote})
			}
			mu.Lock()
			events = append(events, local...)
			mu.Unlock()
		}(w)
	}
	wg.Wait()

	sort.Slice(events, func(i, j int) bool { return events[i].csn < events[j].csn })
	last := make([]int64, keys)
	for i, ev := range events {
		if ev.csn == 0 {
			t.Fatalf("committed txn without CSN at %d", i)
		}
		if i > 0 && events[i-1].csn == ev.csn {
			t.Fatalf("duplicate CSN %d", ev.csn)
		}
		if ev.read != last[ev.key] {
			t.Fatalf("serial equivalence violated at CSN %d: key %d read %d, serial value %d",
				ev.csn, ev.key, ev.read, last[ev.key])
		}
		last[ev.key] = ev.wrote
	}
	// The final engine state equals the serial outcome.
	check, _ := e.Begin(0)
	for k := 0; k < keys; k++ {
		row, err := check.Get(tbl, rids[k])
		if err != nil {
			t.Fatal(err)
		}
		if row[2].Int() != last[k] {
			t.Fatalf("final state key %d = %d, serial %d", k, row[2].Int(), last[k])
		}
	}
	commit(t, check)
	if len(events) == 0 {
		t.Fatal("no transactions committed")
	}
	t.Logf("validated %d committed RMW transactions", len(events))
}

// TestReadOnlySnapshotStability: a long-running read-only transaction sees
// one frozen snapshot across many concurrent writers.
func TestReadOnlySnapshotStability(t *testing.T) {
	e := testEngine(t)
	tbl := mustTable(t, e, usersSchema())
	const keys = 10
	rids := make([]RID, keys)
	for i := 0; i < keys; i++ {
		rids[i] = insertUser(t, e, tbl, 0, int64(i), "s", 100)
	}
	reader, _ := e.Begin(15)

	// Writers shuffle balances around (sum-preserving) while the reader
	// repeatedly sums: the reader's sum must never change.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				a, b := rng.Intn(keys), rng.Intn(keys)
				if a == b {
					continue
				}
				transfer(e, tbl, w, rids[a], rids[b], int64(a), int64(b), 5)
			}
		}(w)
	}
	for round := 0; round < 50; round++ {
		for k := 0; k < keys; k++ {
			row, err := reader.Get(tbl, rids[k])
			if err != nil {
				t.Fatal(err)
			}
			if row[2].Int() != 100 {
				t.Fatalf("round %d: reader saw key %d = %d (snapshot moved)", round, k, row[2].Int())
			}
		}
	}
	close(stop)
	wg.Wait()
	commit(t, reader)

	// A fresh reader still sees a sum-preserving state.
	fresh, _ := e.Begin(15)
	sum := int64(0)
	for k := 0; k < keys; k++ {
		row, _ := fresh.Get(tbl, rids[k])
		sum += row[2].Int()
	}
	commit(t, fresh)
	if sum != keys*100 {
		t.Fatalf("total drifted to %d", sum)
	}
}
