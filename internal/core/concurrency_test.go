package core

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
)

// TestConcurrentTransfersPreserveTotal is the classic bank invariant: under
// snapshot isolation with first-committer-wins, concurrent transfers may
// abort but the total balance must never change.
func TestConcurrentTransfersPreserveTotal(t *testing.T) {
	const accounts = 20
	const workers = 8
	const transfersPerWorker = 300
	const initial = 1000

	e := testEngine(t)
	tbl := mustTable(t, e, usersSchema())
	rids := make([]RID, accounts)
	for i := 0; i < accounts; i++ {
		rids[i] = insertUser(t, e, tbl, 0, int64(i), "acct", initial)
	}

	var wg sync.WaitGroup
	var committed, aborted int64
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			var ok, fail int64
			for i := 0; i < transfersPerWorker; i++ {
				from := rng.Intn(accounts)
				to := rng.Intn(accounts)
				if from == to {
					continue
				}
				amount := int64(rng.Intn(50) + 1)
				err := transfer(e, tbl, w, rids[from], rids[to], int64(from), int64(to), amount)
				if err == nil {
					ok++
				} else if errors.Is(err, ErrConflict) {
					fail++
				} else {
					t.Errorf("transfer: %v", err)
					return
				}
			}
			mu.Lock()
			committed += ok
			aborted += fail
			mu.Unlock()
		}(w)
	}
	wg.Wait()

	total := int64(0)
	tx, _ := e.Begin(0)
	if err := tx.ScanKey(tbl, 0, nil, nil, func(_ RID, row Row) bool {
		total += row[2].Int()
		return true
	}); err != nil {
		t.Fatal(err)
	}
	commit(t, tx)
	if total != accounts*initial {
		t.Fatalf("total = %d, want %d (committed=%d aborted=%d)", total, accounts*initial, committed, aborted)
	}
	if committed == 0 {
		t.Fatal("no transfer ever committed")
	}
	t.Logf("committed=%d aborted=%d", committed, aborted)
}

func transfer(e *Engine, tbl *Table, worker int, fromRID, toRID RID, fromID, toID, amount int64) error {
	tx, err := e.Begin(worker)
	if err != nil {
		return err
	}
	fromRow, err := tx.Get(tbl, fromRID)
	if err != nil {
		tx.Abort()
		return err
	}
	toRow, err := tx.Get(tbl, toRID)
	if err != nil {
		tx.Abort()
		return err
	}
	if err := tx.Update(tbl, fromRID, Row{I(fromID), S("acct"), I(fromRow[2].Int() - amount)}); err != nil {
		return err // Update aborts on conflict
	}
	if err := tx.Update(tbl, toRID, Row{I(toID), S("acct"), I(toRow[2].Int() + amount)}); err != nil {
		return err
	}
	return tx.Commit()
}

// TestConcurrentInsertsSamePK verifies that concurrent inserts of the same
// primary key admit exactly one winner.
func TestConcurrentInsertsSamePK(t *testing.T) {
	e := testEngine(t)
	tbl := mustTable(t, e, usersSchema())
	const workers = 8
	var wins int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tx, err := e.Begin(w)
			if err != nil {
				t.Error(err)
				return
			}
			_, err = tx.Insert(tbl, Row{I(42), S("racer"), I(int64(w))})
			if err == nil {
				err = tx.Commit()
			}
			if err == nil {
				mu.Lock()
				wins++
				mu.Unlock()
			} else if !errors.Is(err, ErrDuplicateKey) && !errors.Is(err, ErrConflict) {
				t.Errorf("unexpected: %v", err)
			}
		}(w)
	}
	wg.Wait()
	if wins != 1 {
		t.Fatalf("winners = %d, want exactly 1", wins)
	}
	tx, _ := e.Begin(0)
	n := 0
	tx.ScanKey(tbl, 0, nil, nil, func(RID, Row) bool { n++; return true })
	commit(t, tx)
	if n != 1 {
		t.Fatalf("visible rows = %d, want 1", n)
	}
}

// TestConcurrentMixedWorkloadWithGC runs inserts, updates, deletes, point
// reads and scans concurrently with periodic GC and checkpoints, then
// checks structural sanity.
func TestConcurrentMixedWorkloadWithGC(t *testing.T) {
	e := testEngine(t, func(c *Config) { c.GCEveryNCommits = 8 })
	tbl := mustTable(t, e, usersSchema())
	const keys = 200
	for i := int64(0); i < keys; i++ {
		insertUser(t, e, tbl, 0, i, "init", 0)
	}
	const workers = 8
	var workerWG sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < workers; w++ {
		workerWG.Add(1)
		go func(w int) {
			defer workerWG.Done()
			rng := rand.New(rand.NewSource(int64(w + 100)))
			for i := 0; i < 400; i++ {
				id := int64(rng.Intn(keys))
				tx, err := e.Begin(w)
				if err != nil {
					t.Error(err)
					return
				}
				switch rng.Intn(10) {
				case 0, 1: // delete
					if rid, _, err := tx.GetByKey(tbl, 0, I(id)); err == nil {
						if err := tx.Delete(tbl, rid); err != nil {
							continue // aborted on conflict
						}
					}
				case 2: // reinsert
					if _, err := tx.Insert(tbl, Row{I(id), S("re"), I(int64(i))}); err != nil {
						continue // duplicate or conflict: txn aborted
					}
				case 3, 4, 5: // update
					if rid, _, err := tx.GetByKey(tbl, 0, I(id)); err == nil {
						if err := tx.Update(tbl, rid, Row{I(id), S("upd"), I(int64(i))}); err != nil {
							continue
						}
					}
				default: // read / scan
					tx.GetByKey(tbl, 0, I(id))
					if rng.Intn(20) == 0 {
						cnt := 0
						tx.ScanKey(tbl, 0, []Value{I(id)}, []Value{I(id + 10)}, func(RID, Row) bool {
							cnt++
							return cnt < 20
						})
					}
				}
				if !tx.finished {
					if err := tx.Commit(); err != nil {
						t.Errorf("commit: %v", err)
						return
					}
				}
			}
		}(w)
	}
	// Checkpointer goroutine runs concurrently with the storm.
	ckptDone := make(chan struct{})
	go func() {
		defer close(ckptDone)
		for {
			select {
			case <-stop:
				return
			default:
				if _, err := e.Checkpoint(); err != nil {
					t.Errorf("checkpoint: %v", err)
					return
				}
			}
		}
	}()
	workerWG.Wait()
	close(stop)
	<-ckptDone

	// Sanity: every visible row decodes, and scan count matches point
	// lookups.
	tx, _ := e.Begin(0)
	seen := map[int64]bool{}
	if err := tx.ScanKey(tbl, 0, nil, nil, func(_ RID, row Row) bool {
		id := row[0].Int()
		if seen[id] {
			t.Fatalf("duplicate id %d in scan", id)
		}
		seen[id] = true
		return true
	}); err != nil {
		t.Fatal(err)
	}
	for id := range seen {
		if _, _, err := tx.GetByKey(tbl, 0, I(id)); err != nil {
			t.Fatalf("scan/point divergence on %d: %v", id, err)
		}
	}
	commit(t, tx)

	// The engine survives recovery after the storm.
	want := snapshotTable(t, e, "users")
	e2, _ := recoverEngine(t, e, RecoverOptions{ReplayThreads: 4})
	got := snapshotTable(t, e2, "users")
	if len(got) != len(want) {
		t.Fatalf("post-storm recovery: %d rows, want %d", len(got), len(want))
	}
	for id, w := range want {
		if got[id] != w {
			t.Fatalf("post-storm recovery row %d: got %v want %v", id, got[id], w)
		}
	}
}
