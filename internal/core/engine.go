package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hiengine/internal/chaos"
	"hiengine/internal/clock"
	"hiengine/internal/delay"
	"hiengine/internal/index"
	"hiengine/internal/obs"
	"hiengine/internal/pia"
	"hiengine/internal/srss"
	"hiengine/internal/wal"
)

// Chaos injection sites owned by this package. The engine inherits the
// fault schedule from its SRSS service (srss.Config.Chaos).
const (
	// SiteCommitBegin fires at the head of the commit pipeline, before the
	// CSN is acquired or any version is stamped: a crash here aborts the
	// transaction cleanly -- nothing became visible and nothing was logged.
	SiteCommitBegin = "core.commit.begin"
	// SiteCheckpointMid fires between checkpoint-image flushes: a crash
	// leaves a partial, unregistered checkpoint PLog; the previous
	// checkpoint (if any) remains the recovery anchor.
	SiteCheckpointMid = "core.checkpoint.mid"
)

func init() {
	chaos.RegisterSite(SiteCommitBegin, "crash at commit start: clean abort, nothing visible or logged")
	chaos.RegisterSite(SiteCheckpointMid, "crash between checkpoint flushes: partial unregistered image")
}

// Errors surfaced by the engine.
var (
	// ErrConflict is a write-write conflict (first-committer-wins under
	// snapshot isolation); the transaction has been aborted.
	ErrConflict = errors.New("core: write-write conflict")
	// ErrDuplicateKey is a unique-index violation.
	ErrDuplicateKey = errors.New("core: duplicate key")
	// ErrNotFound means no visible version of the record exists.
	ErrNotFound = errors.New("core: record not found")
	// ErrTxnDone is returned for operations on a finished transaction.
	ErrTxnDone = errors.New("core: transaction already finished")
	// ErrWorkerBusy means the worker slot already has an active txn.
	ErrWorkerBusy = errors.New("core: worker slot busy")
	// ErrDependencyAborted means a speculatively-read transaction aborted,
	// cascading the abort (Section 5.2 register-and-report).
	ErrDependencyAborted = errors.New("core: commit dependency aborted")
	// ErrNoTable is returned for unknown table names/IDs.
	ErrNoTable = errors.New("core: no such table")
	// ErrClosed is returned after Engine.Close.
	ErrClosed = errors.New("core: engine closed")
	// ErrDurabilityLost is returned by Begin and Commit after a commit's
	// log append failed durability: the in-memory state may already have
	// diverged from what any recovery can reconstruct, so the engine
	// fail-stops rather than silently acknowledging more transactions.
	ErrDurabilityLost = errors.New("core: durability failure; engine is fail-stopped")
)

// Config configures an Engine.
type Config struct {
	// Name identifies this engine instance in the SRSS management-node
	// registry (well-known bootstrap location). Default "hiengine".
	Name string
	// Service is the SRSS deployment; one is created (with Model) if nil.
	Service *srss.Service
	// Model is the latency model used when Service is nil.
	Model *delay.Model
	// Workers is the number of session slots (paper: transaction worker
	// threads bound to cores). Default 8.
	Workers int
	// LogStreams is the number of WAL streams (default = Workers).
	LogStreams int
	// SegmentSize for log segments (default 8 MiB).
	SegmentSize int64
	// GroupCommitBatch bounds commits per group append (default 64; 1
	// disables group commit).
	GroupCommitBatch int
	// LogTier places the log (default TierCompute = compute-side
	// persistence; TierStorage models a storage-centric deployment).
	LogTier srss.Tier
	// Clock is the CSN source (default a local counter, the standalone
	// mode of Section 5.3).
	Clock clock.Source
	// SpeculativeReads enables reading uncommitted versions with
	// register-and-report commit dependencies (Section 5.2).
	SpeculativeReads bool
	// PIASlotBits sizes indirection-array partitions (default 20).
	PIASlotBits uint
	// IndexFreezeThreshold / IndexMaxComponents configure index
	// persistence (0 disables auto freeze/merge).
	IndexFreezeThreshold int
	IndexMaxComponents   int
	// GCEveryNCommits interleaves incremental garbage collection with
	// forward processing every N commits per worker (default 64; 0
	// disables automatic GC).
	GCEveryNCommits int
	// RepairInterval starts the SRSS background replica repairer with the
	// given sweep period: PLogs degraded by node failures are
	// re-replicated onto healthy spares. 0 (the default) disables it;
	// tests drive srss.Service.RepairOnce directly.
	RepairInterval time.Duration
	// Obs is the observability registry the engine (and the WAL and SRSS
	// layers under it) records into. A fresh registry named after the
	// engine is created when nil.
	Obs *obs.Registry
}

func (c *Config) fill() {
	if c.Name == "" {
		c.Name = "hiengine"
	}
	if c.Service == nil {
		if c.Model == nil {
			c.Model = delay.Zero()
		}
		c.Service = srss.New(srss.Config{Model: c.Model})
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.LogStreams <= 0 {
		c.LogStreams = c.Workers
	}
	if c.SegmentSize <= 0 {
		c.SegmentSize = 8 << 20
	}
	if c.GroupCommitBatch <= 0 {
		c.GroupCommitBatch = 64
	}
	if c.Clock == nil {
		c.Clock = clock.NewCounter(1)
	}
	if c.GCEveryNCommits == 0 {
		c.GCEveryNCommits = 64
	}
	if c.Obs == nil {
		c.Obs = obs.NewRegistry(c.Name)
	}
}

// Stats counts engine activity.
type Stats struct {
	Commits           atomic.Int64
	Aborts            atomic.Int64
	Conflicts         atomic.Int64
	ReclaimedVersions atomic.Int64
	Checkpoints       atomic.Int64
	Compactions       atomic.Int64
}

// workerSlot is per-worker state: the active transaction's begin timestamp
// (the worker's readCSN of Section 4.4) and the garbage-collection bag.
type workerSlot struct {
	activeBegin atomic.Uint64 // 0 = idle
	lastRead    atomic.Uint64 // last refreshed readCSN

	mu            sync.Mutex
	retired       []retiredVersion
	commitCounter int
}

// Engine is a HiEngine instance.
type Engine struct {
	cfg Config
	svc *srss.Service
	log *wal.Manager
	clk clock.Source

	// counter is non-nil when clk is the local counter (recovery advances
	// it past replayed CSNs).
	counter *clock.Counter

	mu         sync.RWMutex
	tables     map[string]*Table
	tablesByID map[uint32]*Table
	nextTable  uint32

	manifestMu sync.Mutex
	manifest   *srss.PLog
	// lastCkptPayload caches the newest checkpoint manifest record so a
	// manifest migration can reproduce it.
	lastCkptPayload []byte
	// lastShardPayload caches the newest shard-map manifest record (opaque
	// to core; internal/shard owns the encoding) for the same reason.
	lastShardPayload []byte

	tidSeq atomic.Uint64
	status *statusMap

	// pend2pc tracks global (2PC) transactions prepared on this node, keyed
	// by gtid. Undecided entries are the in-doubt list; decided entries are
	// retained so the node keeps answering TxnStatus across restarts (their
	// decision segments are excluded from checkpoint fences).
	pendMu  sync.Mutex
	pend2pc map[string]*pend2pcEntry

	workers []workerSlot

	ckptMu sync.Mutex // serializes checkpoint/compaction
	// lastCkpt tracks the newest checkpoint CSN (diagnostics).
	lastCkpt atomic.Uint64

	// commitsStarted/commitsDurable implement the checkpoint durability
	// barrier: a checkpoint waits until every commit started before the
	// barrier has its permanent addresses stamped, so every version with
	// CSN <= ckptCSN is durable when the image is walked and replay can
	// skip all records at or below the checkpoint CSN.
	commitsStarted atomic.Int64
	commitsDurable atomic.Int64

	// durabilityLost latches the fail-stop state: once any commit's log
	// append fails durability, every subsequent Begin/Commit returns
	// ErrDurabilityLost (the sticky durability-error contract; see
	// DESIGN.md).
	durabilityLost atomic.Bool

	// obs is the unified metrics registry; the handles below are cached
	// so hot paths record without map lookups.
	obs             *obs.Registry
	mCommits        *obs.Counter
	mAborts         *obs.Counter
	mConflicts      *obs.Counter
	mDepAborts      *obs.Counter
	mDurabilityFail *obs.Counter
	mReclaimed      *obs.Counter
	mCheckpoints    *obs.Counter
	mGCPause        *obs.Histogram // nanoseconds per GC drain
	mCheckpointDur  *obs.Histogram // nanoseconds per checkpoint

	// stopRepair halts the background replica repairer (nil when
	// RepairInterval is 0).
	stopRepair func()

	stats  Stats
	closed atomic.Bool

	// readOnly marks replica engines: write operations are rejected, and
	// index scans always verify entry keys (a follower applies no GC, so
	// stale entries from key-changing updates can linger). Atomic because
	// promotion clears it while reads are in flight.
	readOnly atomic.Bool

	// epoch is the primary epoch of this node's write lineage, persisted in
	// the manifest and bumped on every promotion. fencedBy latches the
	// highest epoch observed from another node; once it exceeds epoch the
	// node is fenced -- demoted to read-only, refusing writes and repl
	// fetches with ErrStaleEpoch -- so a revived old primary can never
	// accept acked writes the new lineage would lose.
	epoch    atomic.Uint64
	fencedBy atomic.Uint64
}

// Open creates a fresh engine instance.
func Open(cfg Config) (*Engine, error) {
	cfg.fill()
	e := &Engine{
		cfg:        cfg,
		svc:        cfg.Service,
		clk:        cfg.Clock,
		tables:     make(map[string]*Table),
		tablesByID: make(map[uint32]*Table),
		status:     newStatusMap(),
		workers:    make([]workerSlot, cfg.Workers),
		pend2pc:    make(map[string]*pend2pcEntry),
	}
	if c, ok := cfg.Clock.(*clock.Counter); ok {
		e.counter = c
	}
	e.initObs()
	manifest, err := e.svc.Create(srss.TierCompute)
	if err != nil {
		return nil, err
	}
	e.manifest = manifest
	e.svc.SetWellKnown(cfg.Name, manifest.ID())
	log, err := wal.Open(wal.Config{
		Service:     e.svc,
		Tier:        cfg.LogTier,
		Streams:     cfg.LogStreams,
		SegmentSize: cfg.SegmentSize,
		BatchMax:    cfg.GroupCommitBatch,
		OnMetaChange: func(id srss.PLogID) error {
			return e.appendManifest(manifestWAL, id[:])
		},
		Obs: e.obs,
	})
	if err != nil {
		return nil, err
	}
	e.log = log
	metaID := log.Directory().MetaID()
	if err := e.appendManifest(manifestWAL, metaID[:]); err != nil {
		return nil, err
	}
	// A fresh primary starts its write lineage at epoch 1.
	e.epoch.Store(1)
	if err := e.appendManifest(manifestEpoch, binary.AppendUvarint(nil, 1)); err != nil {
		return nil, err
	}
	if cfg.RepairInterval > 0 {
		e.stopRepair = e.svc.StartRepairer(cfg.RepairInterval)
	}
	return e, nil
}

// initObs caches metric handles and hooks the engine into the registry
// (along with the SRSS service under it). All handles are nil-safe, so an
// explicitly-nil registry simply disables recording.
func (e *Engine) initObs() {
	reg := e.cfg.Obs
	e.obs = reg
	e.mCommits = reg.Counter("core.commits")
	e.mAborts = reg.Counter("core.aborts")
	e.mConflicts = reg.Counter("core.conflicts")
	e.mDepAborts = reg.Counter("core.dependency_aborts")
	e.mDurabilityFail = reg.Counter("core.durability_failures")
	e.mReclaimed = reg.Counter("core.gc_reclaimed_versions")
	e.mCheckpoints = reg.Counter("core.checkpoints")
	e.mGCPause = reg.Histogram("core.gc_pause_ns")
	e.mCheckpointDur = reg.Histogram("core.checkpoint_ns")
	// Durability lag: commits acknowledged to the pipeline but not yet
	// durable (commitsStarted - commitsDurable), sampled at snapshot time.
	reg.GaugeFunc("core.durability_lag", func() int64 {
		return e.commitsStarted.Load() - e.commitsDurable.Load()
	})
	// Prepared-but-undecided global transactions awaiting a coordinator.
	reg.GaugeFunc("core.indoubt_2pc", e.inDoubtCount)
	e.svc.AttachObs(reg)
}

// Service returns the underlying SRSS deployment.
func (e *Engine) Service() *srss.Service { return e.svc }

// Log returns the WAL manager.
func (e *Engine) Log() *wal.Manager { return e.log }

// Stats returns the engine counters.
func (e *Engine) Stats() *Stats { return &e.stats }

// Obs returns the engine's observability registry (nil when disabled).
func (e *Engine) Obs() *obs.Registry { return e.obs }

// DurabilityLost reports whether the engine has fail-stopped after a
// durability failure.
func (e *Engine) DurabilityLost() bool { return e.durabilityLost.Load() }

// ManifestID returns the bootstrap PLog ID used by Recover.
func (e *Engine) ManifestID() srss.PLogID {
	e.manifestMu.Lock()
	defer e.manifestMu.Unlock()
	return e.manifest.ID()
}

// LastCheckpointCSN returns the CSN of the newest completed checkpoint (0
// if none was taken).
func (e *Engine) LastCheckpointCSN() uint64 { return e.lastCkpt.Load() }

// CurrentCSN returns the engine clock's current commit sequence number
// without advancing it. A primary reports this to replicas so they can
// compute their lag.
func (e *Engine) CurrentCSN() uint64 { return uint64(e.clk.Now()) }

// Workers returns the session-slot count.
func (e *Engine) Workers() int { return len(e.workers) }

// Epoch returns the node's primary epoch: the lineage number of the write
// history it serves (or, for a replica, follows).
func (e *Engine) Epoch() uint64 { return e.epoch.Load() }

// FencedBy returns the highest foreign primary epoch this node has
// observed (0 if none).
func (e *Engine) FencedBy() uint64 { return e.fencedBy.Load() }

// Fenced reports whether the node has observed a newer primary lineage
// than its own and must therefore refuse writes and repl fetches.
func (e *Engine) Fenced() bool { return e.fencedBy.Load() > e.epoch.Load() }

// ReadOnly reports whether the engine rejects writes (replica mode).
func (e *Engine) ReadOnly() bool { return e.readOnly.Load() }

// ObserveEpoch folds a primary epoch observed from a remote node into the
// fencing state and reports whether this node is now fenced. Observing an
// epoch above our own demotes the node: the latch is monotonic and
// persisted to the manifest (best-effort -- fencing is enforced from the
// atomic even if the append fails) so a restart cannot forget it.
func (e *Engine) ObserveEpoch(remote uint64) bool {
	if remote > e.epoch.Load() {
		for {
			cur := e.fencedBy.Load()
			if remote <= cur {
				break
			}
			if e.fencedBy.CompareAndSwap(cur, remote) {
				_ = e.appendManifest(manifestFence, binary.AppendUvarint(nil, remote))
				break
			}
		}
	}
	return e.Fenced()
}

// writeBlocked classifies why a write must be refused right now: a fenced
// node surfaces the stale-epoch sentinel (rediscover the primary), a
// replica the read-only one (redirect to the primary). nil means writes
// are admitted.
func (e *Engine) writeBlocked() error {
	if e.Fenced() {
		return ErrStaleEpoch
	}
	if e.readOnly.Load() {
		return ErrReadOnlyReplica
	}
	return nil
}

// Close shuts down the engine. In-flight commits are drained first.
func (e *Engine) Close() {
	if e.closed.Swap(true) {
		return
	}
	if e.stopRepair != nil {
		e.stopRepair()
	}
	e.log.Close()
}

// --- manifest ------------------------------------------------------------

// Manifest record types. Each record is: type(1) | uvarint len | payload.
const (
	manifestWAL        = 'W' // payload: 24-byte WAL metadata PLog ID
	manifestTable      = 'T' // payload: uvarint tableID | schema JSON
	manifestCheckpoint = 'C' // payload: 24-byte ckpt PLog ID | uvarint csn | uvarint entries
	manifestEpoch      = 'E' // payload: uvarint primary epoch of this lineage
	manifestFence      = 'F' // payload: uvarint foreign epoch this node is fenced by
	manifestShard      = 'S' // payload: opaque versioned shard-map bytes (wire encoding)
)

func (e *Engine) appendManifest(typ byte, payload []byte) error {
	buf := make([]byte, 0, len(payload)+12)
	buf = append(buf, typ)
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	e.manifestMu.Lock()
	defer e.manifestMu.Unlock()
	if typ == manifestCheckpoint {
		e.lastCkptPayload = append([]byte(nil), payload...)
	}
	if typ == manifestShard {
		e.lastShardPayload = append([]byte(nil), payload...)
	}
	_, err := e.manifest.Append(buf)
	if err == nil {
		return nil
	}
	if !errors.Is(err, srss.ErrSealed) && !errors.Is(err, srss.ErrFull) {
		return err
	}
	// The manifest PLog was sealed by a node failure (or filled up):
	// migrate by rewriting the catalog, the current WAL bootstrap ID and
	// the newest checkpoint record into a fresh PLog, then re-anchor the
	// well-known identity in the management nodes (Section 4.2).
	fresh, cerr := e.svc.Create(srss.TierCompute)
	if cerr != nil {
		return cerr
	}
	write := func(typ byte, payload []byte) error {
		b := make([]byte, 0, len(payload)+12)
		b = append(b, typ)
		b = binary.AppendUvarint(b, uint64(len(payload)))
		b = append(b, payload...)
		_, werr := fresh.Append(b)
		return werr
	}
	e.mu.RLock()
	type tbl struct {
		id uint32
		s  *Schema
	}
	var tbls []tbl
	for id, t := range e.tablesByID {
		tbls = append(tbls, tbl{id: id, s: t.Schema})
	}
	e.mu.RUnlock()
	for _, t := range tbls {
		js, merr := t.s.marshal()
		if merr != nil {
			return merr
		}
		p := binary.AppendUvarint(nil, uint64(t.id))
		p = append(p, js...)
		if werr := write(manifestTable, p); werr != nil {
			return werr
		}
	}
	if e.log != nil {
		metaID := e.log.Directory().MetaID()
		if werr := write(manifestWAL, metaID[:]); werr != nil {
			return werr
		}
	}
	if e.lastCkptPayload != nil {
		if werr := write(manifestCheckpoint, e.lastCkptPayload); werr != nil {
			return werr
		}
	}
	if e.lastShardPayload != nil {
		if werr := write(manifestShard, e.lastShardPayload); werr != nil {
			return werr
		}
	}
	if ep := e.epoch.Load(); ep != 0 {
		if werr := write(manifestEpoch, binary.AppendUvarint(nil, ep)); werr != nil {
			return werr
		}
	}
	if fb := e.fencedBy.Load(); fb != 0 {
		if werr := write(manifestFence, binary.AppendUvarint(nil, fb)); werr != nil {
			return werr
		}
	}
	// Finally the record that triggered the migration (unless it is a
	// stale duplicate of what was just rewritten).
	if werr := write(typ, payload); werr != nil {
		return werr
	}
	e.manifest = fresh
	e.svc.SetWellKnown(e.cfg.Name, fresh.ID())
	return nil
}

// SetShardMap persists an opaque shard-map record in the manifest (the
// versioned topology record of internal/shard). The newest record wins on
// recovery; the bytes are owned by the caller's encoding.
func (e *Engine) SetShardMap(payload []byte) error {
	if e.closed.Load() {
		return ErrClosed
	}
	return e.appendManifest(manifestShard, payload)
}

// ShardMapPayload returns the newest persisted shard-map record (nil if
// none was ever set).
func (e *Engine) ShardMapPayload() []byte {
	e.manifestMu.Lock()
	defer e.manifestMu.Unlock()
	if e.lastShardPayload == nil {
		return nil
	}
	return append([]byte(nil), e.lastShardPayload...)
}

// --- DDL -----------------------------------------------------------------

// CreateTable registers a new table. The definition is persisted in the
// manifest so recovery can rebuild the catalog.
func (e *Engine) CreateTable(s *Schema) (*Table, error) {
	if e.closed.Load() {
		return nil, ErrClosed
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.tables[s.Name]; dup {
		return nil, fmt.Errorf("core: table %q already exists", s.Name)
	}
	e.nextTable++
	t, err := e.buildTable(e.nextTable, s)
	if err != nil {
		return nil, err
	}
	js, err := s.marshal()
	if err != nil {
		return nil, err
	}
	payload := binary.AppendUvarint(nil, uint64(t.ID))
	payload = append(payload, js...)
	if err := e.appendManifest(manifestTable, payload); err != nil {
		return nil, err
	}
	e.tables[s.Name] = t
	e.tablesByID[t.ID] = t
	return t, nil
}

func (e *Engine) buildTable(id uint32, s *Schema) (*Table, error) {
	t := &Table{ID: id, Schema: s, rows: pia.New[Version](pia.Config{SlotBits: e.cfg.PIASlotBits})}
	for range s.Indexes {
		t.indexes = append(t.indexes, index.New(index.Config{
			Service:         e.svc,
			Tier:            srss.TierCompute,
			FreezeThreshold: e.cfg.IndexFreezeThreshold,
			MaxComponents:   e.cfg.IndexMaxComponents,
		}))
	}
	return t, nil
}

// Table looks a table up by name.
func (e *Engine) Table(name string) (*Table, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	t, ok := e.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoTable, name)
	}
	return t, nil
}

func (e *Engine) tableByID(id uint32) (*Table, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	t, ok := e.tablesByID[id]
	return t, ok
}

// Tables returns all table names.
func (e *Engine) Tables() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]string, 0, len(e.tables))
	for n := range e.tables {
		out = append(out, n)
	}
	return out
}

// --- watermark -----------------------------------------------------------

// watermark returns the lowest begin timestamp among active transactions,
// or the current clock reading when none are active (Section 4.4's minimum
// readCSN across workers).
func (e *Engine) watermark() uint64 {
	min := e.clk.Now()
	for i := range e.workers {
		if b := e.workers[i].activeBegin.Load(); b != 0 && b < min {
			min = b
		}
	}
	return min
}

// DestageLog archives sealed log segments to the storage tier in the
// background (Section 3.1: the log is batched and flushed periodically to
// the storage layer for reliability and archival; compute-side copies keep
// serving reads). Returns the number of segments destaged.
func (e *Engine) DestageLog() (int, error) {
	if e.closed.Load() {
		return 0, ErrClosed
	}
	return e.log.DestageSealed()
}

// ImportRow installs a row as bulk-loaded data: its version carries the
// reserved load CSN (1), making it visible to every snapshot, including
// transactions already running. The ACID-cache deployment (Figure 3, right)
// uses this to fault cold rows in from a backing engine -- such rows
// logically predate the cache, so backdating them is the correct
// visibility. The row is logged (CSN 1) and participates in checkpoints,
// recovery and GC like any other version; later updates supersede it
// normally under newest-wins replay.
func (e *Engine) ImportRow(tbl *Table, row Row) (RID, error) {
	if e.closed.Load() {
		return 0, ErrClosed
	}
	if len(row) != len(tbl.Schema.Columns) {
		return 0, fmt.Errorf("core: row arity %d != %d columns", len(row), len(tbl.Schema.Columns))
	}
	pk, err := tbl.keyOf(0, row)
	if err != nil {
		return 0, err
	}
	primary := tbl.indexes[0]
	unlock := primary.LockKey(pk)
	defer unlock()
	if ridU, ok, err := primary.Get(pk); err != nil {
		return 0, err
	} else if ok {
		if head := tbl.rows.Get(RID(ridU)); head != nil && !head.tomb {
			return 0, fmt.Errorf("%w: import of existing key", ErrDuplicateKey)
		}
	}
	payload := EncodeRow(nil, row)
	const loadCSN = 1
	v := newVersion(loadCSN, payload, false, nil)
	rid, err := tbl.rows.Alloc()
	if err != nil {
		return 0, err
	}
	if err := tbl.rows.Store(rid, v); err != nil {
		return 0, err
	}
	if err := primary.Insert(pk, uint64(rid)); err != nil {
		return 0, err
	}
	for i := 1; i < len(tbl.indexes); i++ {
		k, err := tbl.indexKey(i, row, rid)
		if err != nil {
			return 0, err
		}
		if err := tbl.indexes[i].Insert(k, uint64(rid)); err != nil {
			return 0, err
		}
	}
	buf, off := wal.AppendRecord(nil, wal.OpInsert, tbl.ID, uint64(rid), payload)
	wal.PatchCSN(buf, off, loadCSN)
	base, err := e.log.AppendSync(0, buf)
	if err != nil {
		return 0, err
	}
	v.addr.Store(uint64(base.Add(uint32(off))))
	tbl.liveRows.Add(1)
	return rid, nil
}

// Evict drops in-memory payloads of all durable versions of a table,
// simulating memory pressure; subsequent reads reload them through SRSS
// mmap views (the partial-memory story of Section 4.2).
func (e *Engine) Evict(tableName string) (int, error) {
	t, err := e.Table(tableName)
	if err != nil {
		return 0, err
	}
	n := 0
	t.rows.Range(func(_ RID, v *Version) bool {
		for ; v != nil; v = v.next.Load() {
			if v.Evict() {
				n++
			}
		}
		return true
	})
	return n, nil
}
