package core

import (
	"errors"
	"fmt"
	"testing"
)

func TestReplicaFollowsPrimary(t *testing.T) {
	primary := testEngine(t)
	tbl := mustTable(t, primary, usersSchema())
	for i := int64(0); i < 100; i++ {
		insertUser(t, primary, tbl, int(i%4), i, "v0", i)
	}
	if _, err := primary.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// Spawn the replica from the primary's manifest.
	rep, stats, err := OpenReplica(Config{Service: primary.Service(), Workers: 4, SegmentSize: 1 << 20},
		primary.ManifestID(), RecoverOptions{ReplayThreads: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	if stats.CheckpointEntries == 0 {
		t.Fatal("replica recovery did not use the checkpoint")
	}
	rtbl, err := rep.Engine().Table("users")
	if err != nil {
		t.Fatal(err)
	}
	// Replica serves the recovered state.
	tx, err := rep.Engine().Begin(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, row, err := tx.GetByKey(rtbl, 0, I(5)); err != nil || row[1].Str() != "v0" {
		t.Fatalf("replica read: %v %v", row, err)
	}
	// Writes are rejected.
	if _, err := tx.Insert(rtbl, Row{I(999), S("x"), I(0)}); !errors.Is(err, ErrReadOnlyReplica) {
		t.Fatalf("replica insert: %v", err)
	}
	commit(t, tx)

	// Primary keeps writing: new inserts, updates (with key change on the
	// secondary index) and deletes.
	for i := int64(100); i < 150; i++ {
		insertUser(t, primary, tbl, int(i%4), i, "fresh", i)
	}
	for i := int64(0); i < 20; i++ {
		ptx, _ := primary.Begin(0)
		rid, _, err := ptx.GetByKey(tbl, 0, I(i))
		if err != nil {
			t.Fatal(err)
		}
		if err := ptx.Update(tbl, rid, Row{I(i), S("renamed"), I(i * 2)}); err != nil {
			t.Fatal(err)
		}
		commit(t, ptx)
	}
	ptx, _ := primary.Begin(0)
	rid, _, _ := ptx.GetByKey(tbl, 0, I(50))
	if err := ptx.Delete(tbl, rid); err != nil {
		t.Fatal(err)
	}
	commit(t, ptx)

	// Catch the replica up and verify every change arrived.
	applied, err := rep.CatchUp()
	if err != nil {
		t.Fatal(err)
	}
	if applied == 0 {
		t.Fatal("catch-up applied nothing")
	}
	tx2, _ := rep.Engine().Begin(0)
	if _, row, err := tx2.GetByKey(rtbl, 0, I(120)); err != nil || row[1].Str() != "fresh" {
		t.Fatalf("replica missed insert: %v %v", row, err)
	}
	if _, row, err := tx2.GetByKey(rtbl, 0, I(3)); err != nil || row[1].Str() != "renamed" || row[2].Int() != 6 {
		t.Fatalf("replica missed update: %v %v", row, err)
	}
	if _, _, err := tx2.GetByKey(rtbl, 0, I(50)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("replica missed delete: %v", err)
	}
	// Secondary-index scan on the replica: renamed rows found under the
	// new key, not the old one (stale entries are verified away).
	renamed, stale := 0, 0
	tx2.ScanPrefix(rtbl, 1, []Value{S("renamed")}, func(_ RID, row Row) bool {
		renamed++
		return true
	})
	tx2.ScanPrefix(rtbl, 1, []Value{S("v0")}, func(_ RID, row Row) bool {
		if row[0].Int() < 20 {
			stale++
		}
		return true
	})
	if renamed != 20 {
		t.Fatalf("replica secondary scan found %d renamed rows, want 20", renamed)
	}
	if stale != 0 {
		t.Fatalf("replica served %d stale index entries", stale)
	}
	commit(t, tx2)

	// Idempotence: another catch-up with no new primary activity applies
	// nothing.
	applied, err = rep.CatchUp()
	if err != nil {
		t.Fatal(err)
	}
	if applied != 0 {
		t.Fatalf("idle catch-up applied %d records", applied)
	}
	if rep.AppliedCSN() == 0 {
		t.Fatal("replica has no freshness horizon")
	}
}

func TestReplicaSeesSegmentsCreatedAfterSpawn(t *testing.T) {
	primary := testEngine(t, func(c *Config) { c.SegmentSize = 4096 })
	tbl := mustTable(t, primary, usersSchema())
	insertUser(t, primary, tbl, 0, 0, "seed", 0)

	rep, _, err := OpenReplica(Config{Service: primary.Service(), Workers: 2, SegmentSize: 4096},
		primary.ManifestID(), RecoverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()

	// Enough traffic to rotate into brand-new segments the replica's
	// directory snapshot has never seen.
	for i := int64(1); i < 200; i++ {
		insertUser(t, primary, tbl, 0, i, fmt.Sprintf("gen-%d", i), i)
	}
	if _, err := rep.CatchUp(); err != nil {
		t.Fatal(err)
	}
	rtbl, _ := rep.Engine().Table("users")
	tx, _ := rep.Engine().Begin(0)
	n := 0
	tx.ScanKey(rtbl, 0, nil, nil, func(RID, Row) bool { n++; return true })
	commit(t, tx)
	if n != 200 {
		t.Fatalf("replica sees %d rows, want 200", n)
	}
}
