package core

import (
	"errors"
	"fmt"
	"testing"
)

func TestReplicaFollowsPrimary(t *testing.T) {
	primary := testEngine(t)
	tbl := mustTable(t, primary, usersSchema())
	for i := int64(0); i < 100; i++ {
		insertUser(t, primary, tbl, int(i%4), i, "v0", i)
	}
	if _, err := primary.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// Spawn the replica from the primary's manifest.
	rep, stats, err := OpenReplica(Config{Service: primary.Service(), Workers: 4, SegmentSize: 1 << 20},
		primary.ManifestID(), RecoverOptions{ReplayThreads: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	if stats.CheckpointEntries == 0 {
		t.Fatal("replica recovery did not use the checkpoint")
	}
	rtbl, err := rep.Engine().Table("users")
	if err != nil {
		t.Fatal(err)
	}
	// Replica serves the recovered state.
	tx, err := rep.Engine().Begin(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, row, err := tx.GetByKey(rtbl, 0, I(5)); err != nil || row[1].Str() != "v0" {
		t.Fatalf("replica read: %v %v", row, err)
	}
	// Writes are rejected.
	if _, err := tx.Insert(rtbl, Row{I(999), S("x"), I(0)}); !errors.Is(err, ErrReadOnlyReplica) {
		t.Fatalf("replica insert: %v", err)
	}
	commit(t, tx)

	// Primary keeps writing: new inserts, updates (with key change on the
	// secondary index) and deletes.
	for i := int64(100); i < 150; i++ {
		insertUser(t, primary, tbl, int(i%4), i, "fresh", i)
	}
	for i := int64(0); i < 20; i++ {
		ptx, _ := primary.Begin(0)
		rid, _, err := ptx.GetByKey(tbl, 0, I(i))
		if err != nil {
			t.Fatal(err)
		}
		if err := ptx.Update(tbl, rid, Row{I(i), S("renamed"), I(i * 2)}); err != nil {
			t.Fatal(err)
		}
		commit(t, ptx)
	}
	ptx, _ := primary.Begin(0)
	rid, _, _ := ptx.GetByKey(tbl, 0, I(50))
	if err := ptx.Delete(tbl, rid); err != nil {
		t.Fatal(err)
	}
	commit(t, ptx)

	// Catch the replica up and verify every change arrived.
	applied, err := rep.CatchUp()
	if err != nil {
		t.Fatal(err)
	}
	if applied == 0 {
		t.Fatal("catch-up applied nothing")
	}
	tx2, _ := rep.Engine().Begin(0)
	if _, row, err := tx2.GetByKey(rtbl, 0, I(120)); err != nil || row[1].Str() != "fresh" {
		t.Fatalf("replica missed insert: %v %v", row, err)
	}
	if _, row, err := tx2.GetByKey(rtbl, 0, I(3)); err != nil || row[1].Str() != "renamed" || row[2].Int() != 6 {
		t.Fatalf("replica missed update: %v %v", row, err)
	}
	if _, _, err := tx2.GetByKey(rtbl, 0, I(50)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("replica missed delete: %v", err)
	}
	// Secondary-index scan on the replica: renamed rows found under the
	// new key, not the old one (stale entries are verified away).
	renamed, stale := 0, 0
	tx2.ScanPrefix(rtbl, 1, []Value{S("renamed")}, func(_ RID, row Row) bool {
		renamed++
		return true
	})
	tx2.ScanPrefix(rtbl, 1, []Value{S("v0")}, func(_ RID, row Row) bool {
		if row[0].Int() < 20 {
			stale++
		}
		return true
	})
	if renamed != 20 {
		t.Fatalf("replica secondary scan found %d renamed rows, want 20", renamed)
	}
	if stale != 0 {
		t.Fatalf("replica served %d stale index entries", stale)
	}
	commit(t, tx2)

	// Idempotence: another catch-up with no new primary activity applies
	// nothing.
	applied, err = rep.CatchUp()
	if err != nil {
		t.Fatal(err)
	}
	if applied != 0 {
		t.Fatalf("idle catch-up applied %d records", applied)
	}
	if rep.AppliedCSN() == 0 {
		t.Fatal("replica has no freshness horizon")
	}
}

func TestReplicaSeesSegmentsCreatedAfterSpawn(t *testing.T) {
	primary := testEngine(t, func(c *Config) { c.SegmentSize = 4096 })
	tbl := mustTable(t, primary, usersSchema())
	insertUser(t, primary, tbl, 0, 0, "seed", 0)

	rep, _, err := OpenReplica(Config{Service: primary.Service(), Workers: 2, SegmentSize: 4096},
		primary.ManifestID(), RecoverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()

	// Enough traffic to rotate into brand-new segments the replica's
	// directory snapshot has never seen.
	for i := int64(1); i < 200; i++ {
		insertUser(t, primary, tbl, 0, i, fmt.Sprintf("gen-%d", i), i)
	}
	if _, err := rep.CatchUp(); err != nil {
		t.Fatal(err)
	}
	rtbl, _ := rep.Engine().Table("users")
	tx, _ := rep.Engine().Begin(0)
	n := 0
	tx.ScanKey(rtbl, 0, nil, nil, func(RID, Row) bool { n++; return true })
	commit(t, tx)
	if n != 200 {
		t.Fatalf("replica sees %d rows, want 200", n)
	}
}

// TestReplicaTwoPCDecideBeforePrepare is the scan-order contract for 2PC on
// a live follower. Decisions (and forgets) ride worker 0's log stream while
// prepares ride the session worker's stream, and CatchUp scans segments in
// ascending id order -- so with the prepare on worker 1, a single pass
// consumes the DECISION before the PREPARE. The follower must still apply a
// committed gtid's writes (not strand them buffered forever), must not
// resurrect the decided gtid as in-doubt at promotion, and must honor a
// forget that also outran the prepare.
func TestReplicaTwoPCDecideBeforePrepare(t *testing.T) {
	primary := testEngine(t)
	tbl := mustTable(t, primary, usersSchema())
	insertUser(t, primary, tbl, 0, 1, "base", 1)

	rep, _, err := OpenReplica(Config{Service: primary.Service(), Workers: 4, SegmentSize: 1 << 20},
		primary.ManifestID(), RecoverOptions{ReplayThreads: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	if _, err := rep.CatchUp(); err != nil {
		t.Fatal(err)
	}

	// Committed cross-shard write: prepare on worker 1, decide on worker 0.
	txC, _ := primary.Begin(1)
	if _, err := txC.Insert(tbl, Row{I(10), S("committed"), I(10)}); err != nil {
		t.Fatal(err)
	}
	prepare(t, txC, "h0-ooo-commit")
	wantCSN := resolve(t, primary, "h0-ooo-commit", true)

	// Aborted one: prepare on worker 2, decide on worker 0.
	txA, _ := primary.Begin(2)
	if _, err := txA.Insert(tbl, Row{I(11), S("aborted"), I(11)}); err != nil {
		t.Fatal(err)
	}
	prepare(t, txA, "h0-ooo-abort")
	resolve(t, primary, "h0-ooo-abort", false)

	// Committed AND forgotten before the follower sees any of it: the pass
	// scans decide, then forget (both worker 0), then the prepare (worker 3)
	// -- the forget must defer until the prepare is accounted for, then
	// still apply the writes and drop the entry.
	txF, _ := primary.Begin(3)
	if _, err := txF.Insert(tbl, Row{I(12), S("forgotten"), I(12)}); err != nil {
		t.Fatal(err)
	}
	prepare(t, txF, "h0-ooo-forget")
	resolve(t, primary, "h0-ooo-forget", true)
	forget(t, primary, "h0-ooo-forget")

	if _, err := rep.CatchUp(); err != nil {
		t.Fatal(err)
	}
	re := rep.Engine()
	snap := snapshotTable(t, re, "users")
	if snap[10][1].(int64) != 10 {
		t.Fatalf("follower missed a committed 2PC write it saw decide-first: %v", snap)
	}
	if _, ok := snap[11]; ok {
		t.Fatalf("follower applied an aborted 2PC write: %v", snap)
	}
	if snap[12][1].(int64) != 12 {
		t.Fatalf("follower missed a committed+forgotten 2PC write: %v", snap)
	}
	if st, csn := re.TxnStatus("h0-ooo-commit"); st != TxnCommitted || csn != wantCSN {
		t.Fatalf("follower status for decided commit: %v csn=%d want %d", st, csn, wantCSN)
	}
	if st, _ := re.TxnStatus("h0-ooo-abort"); st != TxnAborted {
		t.Fatalf("follower status for decided abort: %v", st)
	}
	if st, _ := re.TxnStatus("h0-ooo-forget"); st != TxnUnknown {
		t.Fatalf("forgotten gtid retained on follower: %v", st)
	}
	if len(rep.pendPrep) != 0 {
		t.Fatalf("prepares stranded in pendPrep: %v", rep.pendPrep)
	}
	if len(rep.pendForget) != 0 {
		t.Fatalf("forgets stranded in pendForget: %v", rep.pendForget)
	}

	// Promotion must not resurrect decided gtids as in-doubt (the old bug:
	// the stranded pendPrep entry overwrote the decided one and a recovery
	// sweep would presume-abort a client-acked commit).
	if _, err := rep.Promote(0); err != nil {
		t.Fatal(err)
	}
	if got := re.InDoubt(); len(got) != 0 {
		t.Fatalf("promotion resurrected decided gtids as in-doubt: %v", got)
	}
	if st, _ := re.TxnStatus("h0-ooo-commit"); st != TxnCommitted {
		t.Fatalf("promoted follower lost a commit decision: %v", st)
	}
	snap = snapshotTable(t, re, "users")
	if snap[10][1].(int64) != 10 || snap[12][1].(int64) != 12 {
		t.Fatalf("promoted follower lost committed 2PC writes: %v", snap)
	}
}

// TestReplicaTwoPCPrepareThenDecide covers the opposite interleaving across
// two passes: the prepare ships (and buffers) in one CatchUp, the decision
// and a later forget arrive in subsequent passes.
func TestReplicaTwoPCPrepareThenDecide(t *testing.T) {
	primary := testEngine(t)
	tbl := mustTable(t, primary, usersSchema())
	insertUser(t, primary, tbl, 0, 1, "base", 1)

	rep, _, err := OpenReplica(Config{Service: primary.Service(), Workers: 4, SegmentSize: 1 << 20},
		primary.ManifestID(), RecoverOptions{ReplayThreads: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()

	tx, _ := primary.Begin(1)
	if _, err := tx.Insert(tbl, Row{I(20), S("staged"), I(20)}); err != nil {
		t.Fatal(err)
	}
	prepare(t, tx, "h0-seq")
	if _, err := rep.CatchUp(); err != nil {
		t.Fatal(err)
	}
	if len(rep.pendPrep) != 1 {
		t.Fatalf("undecided prepare not buffered: %v", rep.pendPrep)
	}
	re := rep.Engine()
	if snap := snapshotTable(t, re, "users"); len(snap) != 1 {
		t.Fatalf("undecided prepare visible on follower: %v", snap)
	}

	resolve(t, primary, "h0-seq", true)
	if _, err := rep.CatchUp(); err != nil {
		t.Fatal(err)
	}
	snap := snapshotTable(t, re, "users")
	if snap[20][1].(int64) != 20 {
		t.Fatalf("decision did not release the buffered prepare: %v", snap)
	}
	if st, _ := re.TxnStatus("h0-seq"); st != TxnCommitted {
		t.Fatalf("follower status: %v", st)
	}

	forget(t, primary, "h0-seq")
	if _, err := rep.CatchUp(); err != nil {
		t.Fatal(err)
	}
	if st, _ := re.TxnStatus("h0-seq"); st != TxnUnknown {
		t.Fatalf("forget did not prune on follower: %v", st)
	}
	if snap := snapshotTable(t, re, "users"); snap[20][1].(int64) != 20 {
		t.Fatalf("forget regressed follower data: %v", snap)
	}
}
