package core

import (
	"errors"
	"fmt"
	"testing"

	"hiengine/internal/srss"
)

// snapshotTable captures id -> (name, balance) of all visible rows.
func snapshotTable(t *testing.T, e *Engine, name string) map[int64][2]interface{} {
	t.Helper()
	tbl, err := e.Table(name)
	if err != nil {
		t.Fatal(err)
	}
	tx, err := e.Begin(0)
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Commit()
	out := make(map[int64][2]interface{})
	if err := tx.ScanKey(tbl, 0, nil, nil, func(_ RID, row Row) bool {
		out[row[0].Int()] = [2]interface{}{row[1].Str(), row[2].Int()}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func recoverEngine(t *testing.T, e *Engine, opt RecoverOptions) (*Engine, *RecoveryStats) {
	t.Helper()
	manifestID := e.ManifestID()
	svc := e.Service()
	e.Close() // simulate crash after draining in-flight I/O
	e2, stats, err := Recover(Config{Service: svc, Workers: 16, SegmentSize: 1 << 20}, manifestID, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e2.Close)
	return e2, stats
}

func TestRecoveryBasicEquivalence(t *testing.T) {
	e := testEngine(t)
	tbl := mustTable(t, e, usersSchema())
	for i := int64(0); i < 200; i++ {
		insertUser(t, e, tbl, int(i%8), i, fmt.Sprintf("user-%d", i), i*3)
	}
	// Mix in updates and deletes.
	for i := int64(0); i < 200; i += 4 {
		tx, _ := e.Begin(int(i % 8))
		rid, _, err := tx.GetByKey(tbl, 0, I(i))
		if err != nil {
			t.Fatal(err)
		}
		if i%8 == 0 {
			if err := tx.Delete(tbl, rid); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := tx.Update(tbl, rid, Row{I(i), S(fmt.Sprintf("upd-%d", i)), I(i * 7)}); err != nil {
				t.Fatal(err)
			}
		}
		commit(t, tx)
	}
	want := snapshotTable(t, e, "users")

	e2, stats := recoverEngine(t, e, RecoverOptions{ReplayThreads: 4})
	got := snapshotTable(t, e2, "users")
	if len(got) != len(want) {
		t.Fatalf("recovered %d rows, want %d", len(got), len(want))
	}
	for id, w := range want {
		if got[id] != w {
			t.Fatalf("row %d: got %v want %v", id, got[id], w)
		}
	}
	if stats.RecordsScanned == 0 {
		t.Fatal("no records replayed")
	}
	// New transactions work after recovery (CSN advanced past replay).
	e2tbl, _ := e2.Table("users")
	tx, err := e2.Begin(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Insert(e2tbl, Row{I(10001), S("post-recovery"), I(1)}); err != nil {
		t.Fatalf("post-recovery insert: %v", err)
	}
	commit(t, tx)
}

func TestRecoveryWithCheckpoint(t *testing.T) {
	e := testEngine(t)
	tbl := mustTable(t, e, usersSchema())
	for i := int64(0); i < 100; i++ {
		insertUser(t, e, tbl, 0, i, "pre-ckpt", i)
	}
	csn, err := e.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if csn == 0 {
		t.Fatal("checkpoint CSN zero")
	}
	// Post-checkpoint activity.
	for i := int64(100); i < 150; i++ {
		insertUser(t, e, tbl, 0, i, "post-ckpt", i)
	}
	for i := int64(0); i < 20; i++ {
		tx, _ := e.Begin(0)
		rid, _, _ := tx.GetByKey(tbl, 0, I(i))
		tx.Update(tbl, rid, Row{I(i), S("updated"), I(-i)})
		commit(t, tx)
	}
	want := snapshotTable(t, e, "users")

	e2, stats := recoverEngine(t, e, RecoverOptions{ReplayThreads: 2})
	if stats.CheckpointEntries == 0 {
		t.Fatal("checkpoint not used")
	}
	got := snapshotTable(t, e2, "users")
	if len(got) != len(want) {
		t.Fatalf("recovered %d rows, want %d", len(got), len(want))
	}
	for id, w := range want {
		if got[id] != w {
			t.Fatalf("row %d: got %v want %v", id, got[id], w)
		}
	}
}

func TestRecoveryParallelReplayOrderInsensitive(t *testing.T) {
	// Property: the recovered state is identical whatever the replay
	// parallelism, because replay resolves conflicts by newest-CSN-wins
	// CAS (Section 4.3).
	build := func() (*Engine, map[int64][2]interface{}) {
		e := testEngine(t, func(c *Config) { c.SegmentSize = 4096 }) // many segments
		tbl := mustTable(t, e, usersSchema())
		for i := int64(0); i < 50; i++ {
			insertUser(t, e, tbl, int(i%8), i, "v0", 0)
		}
		// Heavy update traffic across workers => records for the same
		// RID scattered across many per-stream segments.
		for round := int64(1); round <= 10; round++ {
			for i := int64(0); i < 50; i += 5 {
				tx, _ := e.Begin(int((i + round) % 8))
				rid, _, err := tx.GetByKey(tbl, 0, I(i))
				if err != nil {
					t.Fatal(err)
				}
				tx.Update(tbl, rid, Row{I(i), S(fmt.Sprintf("v%d", round)), I(round)})
				commit(t, tx)
			}
		}
		return e, snapshotTable(t, e, "users")
	}

	e, want := build()
	for _, threads := range []int{1, 4, 8} {
		manifestID := e.ManifestID()
		svc := e.Service()
		e2, _, err := Recover(Config{Service: svc, Workers: 16, SegmentSize: 1 << 20}, manifestID, RecoverOptions{ReplayThreads: threads})
		if err != nil {
			t.Fatal(err)
		}
		got := snapshotTable(t, e2, "users")
		if len(got) != len(want) {
			t.Fatalf("threads=%d: %d rows, want %d", threads, len(got), len(want))
		}
		for id, w := range want {
			if got[id] != w {
				t.Fatalf("threads=%d row %d: got %v want %v", threads, id, got[id], w)
			}
		}
		e2.Close()
	}
	e.Close()
}

func TestRecoverySkipIndexRebuild(t *testing.T) {
	e := testEngine(t)
	tbl := mustTable(t, e, usersSchema())
	rid := insertUser(t, e, tbl, 0, 1, "ada", 10)
	e2, stats := recoverEngine(t, e, RecoverOptions{ReplayThreads: 1, SkipIndexRebuild: true})
	if stats.IndexDuration != 0 {
		t.Fatal("index rebuild ran despite skip")
	}
	tbl2, _ := e2.Table("users")
	// RID access works without indexes (the paper's instant-recovery
	// property: PIAs alone suffice for record access).
	tx, _ := e2.Begin(0)
	row, err := tx.Get(tbl2, rid)
	if err != nil || row[1].Str() != "ada" {
		t.Fatalf("PIA-only access: %v %v", row, err)
	}
	commit(t, tx)
}

func TestRecoveryAfterCompaction(t *testing.T) {
	e := testEngine(t, func(c *Config) { c.GCEveryNCommits = 0 })
	tbl := mustTable(t, e, usersSchema())
	for i := int64(0); i < 50; i++ {
		insertUser(t, e, tbl, 0, i, "x", i)
	}
	for round := 0; round < 5; round++ {
		for i := int64(0); i < 50; i += 3 {
			tx, _ := e.Begin(0)
			rid, _, _ := tx.GetByKey(tbl, 0, I(i))
			tx.Update(tbl, rid, Row{I(i), S("y"), I(int64(round) * 100)})
			commit(t, tx)
		}
	}
	e.RunGC()
	want := snapshotTable(t, e, "users")
	segsBefore := len(e.Log().Segments())
	bytesBefore := e.Log().TotalBytes()

	cs, err := e.CompactFull()
	if err != nil {
		t.Fatal(err)
	}
	if cs.SegmentsDropped == 0 || cs.RecordsRewritten == 0 {
		t.Fatalf("compaction did nothing: %+v", cs)
	}
	_ = segsBefore
	_ = bytesBefore

	// Reads still work post-compaction (addresses updated).
	if n, err := e.Evict("users"); err != nil || n == 0 {
		t.Fatalf("evict: %d %v", n, err)
	}
	got := snapshotTable(t, e, "users")
	for id, w := range want {
		if got[id] != w {
			t.Fatalf("post-compaction row %d: got %v want %v", id, got[id], w)
		}
	}

	// Recovery from the compacted log reproduces the same state.
	e2, _ := recoverEngine(t, e, RecoverOptions{ReplayThreads: 2})
	got2 := snapshotTable(t, e2, "users")
	if len(got2) != len(want) {
		t.Fatalf("recovered %d rows, want %d", len(got2), len(want))
	}
	for id, w := range want {
		if got2[id] != w {
			t.Fatalf("post-compaction recovery row %d: got %v want %v", id, got2[id], w)
		}
	}
}

func TestCompactionReclaimsSpace(t *testing.T) {
	e := testEngine(t, func(c *Config) {
		c.SegmentSize = 8192
		c.GCEveryNCommits = 0
	})
	tbl := mustTable(t, e, usersSchema())
	rid := insertUser(t, e, tbl, 0, 1, "hot", 0)
	// Overwrite one row many times: the log fills with dead versions.
	for i := int64(1); i <= 500; i++ {
		tx, _ := e.Begin(0)
		if err := tx.Update(tbl, rid, Row{I(1), S("hot"), I(i)}); err != nil {
			t.Fatal(err)
		}
		commit(t, tx)
	}
	e.RunGC()
	logBytes := func() int64 {
		var total int64
		for _, seg := range e.Log().Segments() {
			if id, ok := e.Log().Directory().Lookup(seg); ok {
				if p, err := e.Service().Open(id); err == nil {
					total += p.Size()
				}
			}
		}
		return total
	}
	bytesBefore := logBytes()
	cs, err := e.CompactFull()
	if err != nil {
		t.Fatal(err)
	}
	bytesAfter := logBytes()
	if bytesAfter >= bytesBefore {
		t.Fatalf("compaction did not reclaim log space: %d -> %d bytes", bytesBefore, bytesAfter)
	}
	if cs.SegmentsDropped == 0 {
		t.Fatalf("no segments dropped: %+v", cs)
	}
	if cs.BytesReclaimed <= 0 {
		t.Fatalf("no bytes reclaimed: %+v", cs)
	}
	// Value intact.
	tx, _ := e.Begin(0)
	row, err := tx.Get(tbl, rid)
	if err != nil || row[2].Int() != 500 {
		t.Fatalf("post-compaction value: %v %v", row, err)
	}
	commit(t, tx)
}

func TestCompactPartialRewritesWindow(t *testing.T) {
	e := testEngine(t, func(c *Config) { c.GCEveryNCommits = 0 })
	tbl := mustTable(t, e, usersSchema())
	for i := int64(0); i < 20; i++ {
		insertUser(t, e, tbl, 0, i, "x", i)
	}
	mid := e.watermark()
	for i := int64(20); i < 40; i++ {
		insertUser(t, e, tbl, 0, i, "y", i)
	}
	cs, err := e.CompactPartial(mid, e.watermark())
	if err != nil {
		t.Fatal(err)
	}
	if cs.RecordsRewritten != 20 {
		t.Fatalf("partial compaction rewrote %d records, want 20", cs.RecordsRewritten)
	}
}

func TestRecoverRequiresService(t *testing.T) {
	if _, _, err := Recover(Config{}, srss.PLogID{}, RecoverOptions{}); err == nil {
		t.Fatal("Recover without service succeeded")
	}
}

func TestRecoverUnknownManifest(t *testing.T) {
	svc := srss.New(srss.Config{})
	if _, _, err := Recover(Config{Service: svc}, srss.PLogID{1, 2, 3}, RecoverOptions{}); err == nil {
		t.Fatal("Recover with bogus manifest succeeded")
	}
}

func TestLostUncommittedNotRecovered(t *testing.T) {
	// A transaction that never committed must not surface after recovery
	// (redo-only log contains only committed data).
	e := testEngine(t)
	tbl := mustTable(t, e, usersSchema())
	insertUser(t, e, tbl, 0, 1, "committed", 1)
	tx, _ := e.Begin(1)
	if _, err := tx.Insert(tbl, Row{I(2), S("uncommitted"), I(2)}); err != nil {
		t.Fatal(err)
	}
	// Crash without commit: tx simply never reaches the log.
	e2, _ := recoverEngine(t, e, RecoverOptions{ReplayThreads: 2})
	got := snapshotTable(t, e2, "users")
	if len(got) != 1 {
		t.Fatalf("recovered %d rows, want 1: %v", len(got), got)
	}
	if _, ok := got[2]; ok {
		t.Fatal("uncommitted row recovered")
	}
	_ = errors.Is
}
