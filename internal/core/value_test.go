package core

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
	"testing/quick"
)

func TestRowCodecRoundTrip(t *testing.T) {
	rows := []Row{
		{},
		{I(0), I(-1), I(math.MaxInt64), I(math.MinInt64)},
		{F(0), F(-1.5), F(math.Pi), F(math.Inf(1))},
		{S(""), S("hello"), S("日本語")},
		{B(nil), B([]byte{0, 1, 2, 255})},
		{Null, I(7), Null, S("x"), Null},
	}
	for _, row := range rows {
		enc := EncodeRow(nil, row)
		dec, err := DecodeRow(enc)
		if err != nil {
			t.Fatalf("decode %v: %v", row, err)
		}
		if len(dec) != len(row) {
			t.Fatalf("arity: got %d want %d", len(dec), len(row))
		}
		for i := range row {
			if !row[i].Equal(dec[i]) {
				t.Fatalf("col %d: got %v want %v", i, dec[i], row[i])
			}
		}
	}
}

func TestRowCodecPropertyRoundTrip(t *testing.T) {
	f := func(i int64, fl float64, s string, b []byte) bool {
		row := Row{I(i), F(fl), S(s), B(b), Null}
		dec, err := DecodeRow(EncodeRow(nil, row))
		if err != nil || len(dec) != 5 {
			return false
		}
		// NaN != NaN under Equal's == compare; normalize.
		if math.IsNaN(fl) {
			return math.IsNaN(dec[1].Float())
		}
		for i := range row {
			if !row[i].Equal(dec[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRowHostileLength(t *testing.T) {
	// A near-2^64 uvarint payload length must fail as corrupt, not
	// overflow the bounds check into a panicking allocation. These bytes
	// arrive from the network (Exec args), so a panic here is a
	// remote-triggered server crash.
	for _, k := range []Kind{KindString, KindBytes} {
		for _, l := range []uint64{math.MaxUint64, math.MaxUint64 - 7, 1 << 62} {
			buf := []byte{1, byte(k)} // one column of kind k
			buf = binary.AppendUvarint(buf, l)
			row, rest, err := DecodeRowPrefix(buf)
			if err == nil {
				t.Fatalf("kind %v length %d: accepted (row=%v rest=%v)", k, l, row, rest)
			}
		}
	}
}

func TestDecodeRowCorrupt(t *testing.T) {
	if _, err := DecodeRow([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01}); err == nil {
		t.Fatal("absurd column count accepted")
	}
	good := EncodeRow(nil, Row{S("hello")})
	if _, err := DecodeRow(good[:len(good)-2]); err == nil {
		t.Fatal("truncated row accepted")
	}
	bad := append([]byte(nil), good...)
	bad[1] = 99 // bogus kind
	if _, err := DecodeRow(bad); err == nil {
		t.Fatal("bogus kind accepted")
	}
}

// valueLess is the semantic order EncodeKey must preserve (same-kind only).
func cmpVals(a, b Value) int {
	switch {
	case a.IsNull() && b.IsNull():
		return 0
	case a.IsNull():
		return -1
	case b.IsNull():
		return 1
	}
	if a.Kind() != b.Kind() {
		if a.Kind() < b.Kind() {
			return -1
		}
		return 1
	}
	switch a.Kind() {
	case KindInt:
		switch {
		case a.Int() < b.Int():
			return -1
		case a.Int() > b.Int():
			return 1
		}
		return 0
	case KindFloat:
		switch {
		case a.Float() < b.Float():
			return -1
		case a.Float() > b.Float():
			return 1
		}
		return 0
	case KindString:
		switch {
		case a.Str() < b.Str():
			return -1
		case a.Str() > b.Str():
			return 1
		}
		return 0
	case KindBytes:
		return bytes.Compare(a.Bytes(), b.Bytes())
	}
	return 0
}

func TestKeyEncodingOrderInts(t *testing.T) {
	vals := []int64{math.MinInt64, -1000000, -1, 0, 1, 42, 1000000, math.MaxInt64}
	for i := 1; i < len(vals); i++ {
		a := EncodeKey(nil, I(vals[i-1]))
		b := EncodeKey(nil, I(vals[i]))
		if bytes.Compare(a, b) >= 0 {
			t.Fatalf("key order broken: %d !< %d", vals[i-1], vals[i])
		}
	}
}

func TestKeyEncodingOrderFloats(t *testing.T) {
	vals := []float64{math.Inf(-1), -1e100, -1.5, -0.0001, 0, 0.0001, 1.5, 1e100, math.Inf(1)}
	for i := 1; i < len(vals); i++ {
		a := EncodeKey(nil, F(vals[i-1]))
		b := EncodeKey(nil, F(vals[i]))
		if bytes.Compare(a, b) >= 0 {
			t.Fatalf("float key order broken: %g !< %g", vals[i-1], vals[i])
		}
	}
}

func TestKeyEncodingOrderStrings(t *testing.T) {
	vals := []string{"", "a", "a\x00", "a\x00b", "aa", "ab", "b"}
	for i := 1; i < len(vals); i++ {
		a := EncodeKey(nil, S(vals[i-1]))
		b := EncodeKey(nil, S(vals[i]))
		if bytes.Compare(a, b) >= 0 {
			t.Fatalf("string key order broken: %q !< %q", vals[i-1], vals[i])
		}
	}
}

func TestKeyEncodingPropertyOrderPreserving(t *testing.T) {
	f := func(a, b int64, sa, sb string) bool {
		ka := EncodeKey(nil, I(a), S(sa))
		kb := EncodeKey(nil, I(b), S(sb))
		var want int
		if a != b {
			want = cmpVals(I(a), I(b))
		} else {
			want = cmpVals(S(sa), S(sb))
		}
		return bytes.Compare(ka, kb) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestKeyEncodingNoPrefixCollision(t *testing.T) {
	// ("a", "b") must not collide with ("ab", "") style compositions.
	k1 := EncodeKey(nil, S("a"), S("b"))
	k2 := EncodeKey(nil, S("ab"), S(""))
	if bytes.Equal(k1, k2) {
		t.Fatal("composite keys collide")
	}
	if bytes.HasPrefix(k2, EncodeKey(nil, S("a"))) {
		t.Fatal("encoded string is a prefix of a longer one")
	}
}

func TestNullSortsFirst(t *testing.T) {
	n := EncodeKey(nil, Null)
	i := EncodeKey(nil, I(math.MinInt64))
	s := EncodeKey(nil, S(""))
	if bytes.Compare(n, i) >= 0 || bytes.Compare(n, s) >= 0 {
		t.Fatal("NULL does not sort first")
	}
}

func TestKeySuccessor(t *testing.T) {
	cases := []struct{ in, want []byte }{
		{[]byte{1, 2, 3}, []byte{1, 2, 4}},
		{[]byte{1, 0xFF}, []byte{2}},
		{[]byte{0xFF, 0xFF}, []byte{0xFF, 0xFF, 0xFF}},
	}
	for _, c := range cases {
		got := KeySuccessor(c.in)
		if !bytes.Equal(got, c.want) {
			t.Fatalf("KeySuccessor(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	// Property: in < succ, and any extension of in < succ.
	f := func(k []byte) bool {
		if len(k) == 0 {
			return true
		}
		succ := KeySuccessor(k)
		ext := append(append([]byte(nil), k...), 0xFE, 0xFE)
		return bytes.Compare(k, succ) < 0 && bytes.Compare(ext, succ) < 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestRIDSuffix(t *testing.T) {
	k := EncodeRIDSuffix([]byte("base"), 0xdeadbeefcafe)
	if got := DecodeRIDSuffix(k); got != 0xdeadbeefcafe {
		t.Fatalf("rid suffix round trip: %x", got)
	}
	if DecodeRIDSuffix([]byte("shrt")) != 0 {
		t.Fatal("short key suffix not zero")
	}
}
