package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync/atomic"

	"hiengine/internal/index"
	"hiengine/internal/pia"
)

// Column describes one table column.
type Column struct {
	Name string `json:"name"`
	Kind Kind   `json:"kind"`
}

// IndexDef describes one index: the ordered set of column positions forming
// the key. Index 0 of a table is the primary key and must be unique.
type IndexDef struct {
	Name    string `json:"name"`
	Columns []int  `json:"columns"` // positions into Schema.Columns
	Unique  bool   `json:"unique"`
}

// Schema describes a table.
type Schema struct {
	Name    string     `json:"name"`
	Columns []Column   `json:"columns"`
	Indexes []IndexDef `json:"indexes"` // [0] is the primary key
}

// Validate checks structural sanity.
func (s *Schema) Validate() error {
	if s.Name == "" {
		return errors.New("core: schema missing name")
	}
	if len(s.Columns) == 0 {
		return fmt.Errorf("core: table %q has no columns", s.Name)
	}
	if len(s.Indexes) == 0 {
		return fmt.Errorf("core: table %q has no primary key", s.Name)
	}
	if !s.Indexes[0].Unique {
		return fmt.Errorf("core: table %q primary index must be unique", s.Name)
	}
	seen := map[string]bool{}
	for _, c := range s.Columns {
		if c.Name == "" || seen[c.Name] {
			return fmt.Errorf("core: table %q has duplicate/empty column %q", s.Name, c.Name)
		}
		seen[c.Name] = true
	}
	for _, ix := range s.Indexes {
		if len(ix.Columns) == 0 {
			return fmt.Errorf("core: index %q has no columns", ix.Name)
		}
		for _, c := range ix.Columns {
			if c < 0 || c >= len(s.Columns) {
				return fmt.Errorf("core: index %q references column %d of %d", ix.Name, c, len(s.Columns))
			}
		}
	}
	return nil
}

// ColumnIndex returns the position of the named column, or -1.
func (s *Schema) ColumnIndex(name string) int {
	for i, c := range s.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// marshal serializes the schema for the manifest.
func (s *Schema) marshal() ([]byte, error) { return json.Marshal(s) }

func unmarshalSchema(b []byte) (*Schema, error) {
	var s Schema
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, err
	}
	return &s, nil
}

// Table is one HiEngine table: a schema, a partitioned indirection array
// mapping RIDs to version chains, and the table's indexes.
type Table struct {
	ID     uint32
	Schema *Schema

	rows    *pia.Map[Version]
	indexes []*index.Index

	// liveRows approximates the visible row count (diagnostics only).
	liveRows atomic.Int64
}

// RID is re-exported for callers of the engine API.
type RID = pia.RID

// Rows exposes the table's indirection map (used by checkpoint, recovery,
// compaction and tests).
func (t *Table) Rows() *pia.Map[Version] { return t.rows }

// Index returns index i (0 = primary).
func (t *Table) Index(i int) *index.Index { return t.indexes[i] }

// NumIndexes returns the index count.
func (t *Table) NumIndexes() int { return len(t.indexes) }

// indexPos returns the position of ix within the table's indexes, or -1.
func (t *Table) indexPos(ix *index.Index) int {
	for i, x := range t.indexes {
		if x == ix {
			return i
		}
	}
	return -1
}

// LiveRows returns the approximate visible row count.
func (t *Table) LiveRows() int64 { return t.liveRows.Load() }

// keyOf builds the encoded key of index idx for row, without RID suffix.
func (t *Table) keyOf(idx int, row Row) ([]byte, error) {
	return t.keyOfAppend(nil, idx, row)
}

// keyOfAppend is keyOf appending into buf (hot paths reuse scratch buffers).
func (t *Table) keyOfAppend(buf []byte, idx int, row Row) ([]byte, error) {
	def := t.Schema.Indexes[idx]
	for _, c := range def.Columns {
		if c >= len(row) {
			return nil, fmt.Errorf("core: row too short for index %q", def.Name)
		}
		buf = EncodeKey(buf, row[c])
	}
	return buf, nil
}

// indexKey builds the physical index key: unique indexes use the encoded
// key directly; non-unique indexes append the RID so every entry is unique.
func (t *Table) indexKey(idx int, row Row, rid RID) ([]byte, error) {
	return t.indexKeyAppend(nil, idx, row, rid)
}

// indexKeyAppend is indexKey appending into buf.
func (t *Table) indexKeyAppend(buf []byte, idx int, row Row, rid RID) ([]byte, error) {
	k, err := t.keyOfAppend(buf, idx, row)
	if err != nil {
		return nil, err
	}
	if !t.Schema.Indexes[idx].Unique {
		k = EncodeRIDSuffix(k, uint64(rid))
	}
	return k, nil
}
