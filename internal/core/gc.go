package core

import "time"

// Epoch-based garbage collection (Section 4.4). Each worker keeps a bag of
// retired versions stamped with the CSN of the transaction that superseded
// them. A version is reclaimable once that CSN is at or below the low
// watermark -- the minimum begin timestamp across active transactions (the
// minimum readCSN across workers in the paper). Reclamation is interspersed
// with forward processing: workers drain their own bags every
// GCEveryNCommits commits, and RunGC drains everything (the background
// flavor).

type retiredVersion struct {
	// owner is the version whose next pointer still references victim;
	// pruning truncates the chain below owner.
	owner  *Version
	victim *Version
	// retireCSN is the CSN of the superseding transaction.
	retireCSN uint64

	// Delete-specific cleanup: clear the PIA entry (epoch preserved) and
	// tombstone index entries once the delete marker itself is invisible
	// to everyone.
	table    *Table
	rid      RID
	isDelete bool

	// oldKeys are stale index entries to remove alongside the victim.
	oldKeys []oldKey
}

// maybeGC runs an incremental GC pass on the worker's bag every N commits.
func (e *Engine) maybeGC(worker int) {
	if e.cfg.GCEveryNCommits <= 0 {
		return
	}
	slot := &e.workers[worker]
	slot.mu.Lock()
	slot.commitCounter++
	due := slot.commitCounter >= e.cfg.GCEveryNCommits && len(slot.retired) > 0
	if due {
		slot.commitCounter = 0
	}
	slot.mu.Unlock()
	if due {
		e.gcWorker(worker, e.watermark())
	}
}

// RunGC drains every worker's bag against the current watermark and returns
// the number of versions reclaimed.
func (e *Engine) RunGC() int {
	wm := e.watermark()
	n := 0
	for w := range e.workers {
		n += e.gcWorker(w, wm)
	}
	return n
}

// gcWorker reclaims every entry in worker w's bag with retireCSN <= wm.
func (e *Engine) gcWorker(w int, wm uint64) int {
	gcStart := time.Now()
	defer func() { e.mGCPause.Record(int64(time.Since(gcStart))) }()
	slot := &e.workers[w]
	slot.mu.Lock()
	bag := slot.retired
	var keep []retiredVersion
	var reap []retiredVersion
	for _, r := range bag {
		if r.retireCSN <= wm {
			reap = append(reap, r)
		} else {
			keep = append(keep, r)
		}
	}
	slot.retired = keep
	slot.mu.Unlock()

	reclaimed := 0
	for _, r := range reap {
		if r.isDelete {
			// The delete marker is invisible to every active snapshot:
			// clear the indirection entry if the marker is still the
			// head (a later insert may have reused the RID). Clearing
			// unlinks the marker AND every version still chained below
			// it, so count the full chain -- mirroring the update path
			// -- not just the cleared entry.
			if ok, _ := r.table.rows.CompareAndSwap(r.rid, r.victim, nil); ok {
				_ = r.table.rows.Delete(r.rid) // bumps the entry epoch
				for v := r.victim; v != nil; v = v.next.Load() {
					reclaimed++
				}
			}
			for _, ok := range r.oldKeys {
				e.removeStaleKey(r.table, r.rid, ok)
			}
			continue
		}
		// Remove stale index keys BEFORE pruning the chain: readers skip
		// key verification on single-version chains, which is only sound
		// if no stale entry can outlive the chain's extra versions
		// (sequentially consistent atomics make this ordering visible).
		for _, ok := range r.oldKeys {
			e.removeStaleKey(r.table, r.rid, ok)
		}
		// Prune the chain below the superseding version: victim and
		// everything older is unreachable by any current or future
		// snapshot.
		if r.owner != nil && r.owner.next.Load() == r.victim {
			r.owner.next.Store(nil)
			for v := r.victim; v != nil; v = v.next.Load() {
				reclaimed++
			}
		}
	}
	if reclaimed > 0 {
		e.stats.ReclaimedVersions.Add(int64(reclaimed))
		e.mReclaimed.Add(int64(reclaimed))
	}
	return reclaimed
}

// removeStaleKey tombstones an index entry left behind by a key-changing
// update or a delete -- unless the record's current head row still carries
// that key (e.g. an A->B->A key flip re-validated the entry, or the RID was
// reused by a newer insert).
func (e *Engine) removeStaleKey(tbl *Table, rid RID, ok oldKey) {
	cur, found, _ := ok.ix.Get(ok.key)
	if !found || cur != uint64(rid) {
		return
	}
	head := tbl.rows.Get(rid)
	if head != nil && !head.tomb {
		p, err := head.payload(e)
		if err == nil {
			if row, derr := DecodeRow(p); derr == nil {
				pos := tbl.indexPos(ok.ix)
				if pos >= 0 {
					if k, kerr := tbl.indexKey(pos, row, rid); kerr == nil && string(k) == string(ok.key) {
						return // key is live again
					}
				}
			}
		}
	}
	_ = ok.ix.Delete(ok.key)
}
