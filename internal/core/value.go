// Package core implements the HiEngine storage engine: a log-centric MVCC
// engine built on partitioned indirection arrays (Section 4.1), redo-only
// distributed logging with compute-side persistence (Section 4.2), dataless
// checkpoints with parallel recovery (Section 4.3), epoch-based garbage
// collection and log compaction (Section 4.4), LSM-like persistent ART
// indexes (Section 4.5) and a snapshot-isolation MVCC protocol with early
// commit (Section 5).
package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Kind enumerates column types.
type Kind uint8

const (
	// KindInt is a 64-bit signed integer.
	KindInt Kind = iota + 1
	// KindFloat is a 64-bit float.
	KindFloat
	// KindString is a variable-length string.
	KindString
	// KindBytes is a variable-length byte string.
	KindBytes
)

// String returns the type name.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindBytes:
		return "bytes"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is one typed column value. The zero Value is NULL.
type Value struct {
	kind Kind // 0 = NULL
	i    int64
	f    float64
	s    string
	b    []byte
}

// Null is the NULL value.
var Null = Value{}

// I wraps an integer.
func I(v int64) Value { return Value{kind: KindInt, i: v} }

// F wraps a float.
func F(v float64) Value { return Value{kind: KindFloat, f: v} }

// S wraps a string.
func S(v string) Value { return Value{kind: KindString, s: v} }

// B wraps a byte slice (not copied).
func B(v []byte) Value { return Value{kind: KindBytes, b: v} }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.kind == 0 }

// Kind returns the value's type (0 for NULL).
func (v Value) Kind() Kind { return v.kind }

// Int returns the integer payload (0 unless KindInt).
func (v Value) Int() int64 { return v.i }

// Float returns the float payload.
func (v Value) Float() float64 { return v.f }

// Str returns the string payload.
func (v Value) Str() string { return v.s }

// Bytes returns the bytes payload.
func (v Value) Bytes() []byte { return v.b }

// String renders the value for diagnostics.
func (v Value) String() string {
	switch v.kind {
	case 0:
		return "NULL"
	case KindInt:
		return fmt.Sprintf("%d", v.i)
	case KindFloat:
		return fmt.Sprintf("%g", v.f)
	case KindString:
		return fmt.Sprintf("%q", v.s)
	case KindBytes:
		return fmt.Sprintf("x'%x'", v.b)
	default:
		return "?"
	}
}

// Equal compares two values for equality (same kind and payload).
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case 0:
		return true
	case KindInt:
		return v.i == o.i
	case KindFloat:
		return v.f == o.f
	case KindString:
		return v.s == o.s
	case KindBytes:
		return string(v.b) == string(o.b)
	}
	return false
}

// Row is one tuple.
type Row = []Value

// ErrRowCorrupt is returned when a stored payload cannot be decoded.
var ErrRowCorrupt = errors.New("core: corrupt row payload")

// EncodeRow serializes a row. The encoding is compact, not
// order-preserving; ordered index keys use EncodeKey.
//
//	row    := nCols uvarint, col*
//	col    := kindByte [payload]
//	int    := zigzag varint
//	float  := 8 bytes little-endian IEEE bits
//	string := uvarint len, bytes
func EncodeRow(buf []byte, row Row) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(row)))
	for _, v := range row {
		buf = append(buf, byte(v.kind))
		switch v.kind {
		case 0:
		case KindInt:
			buf = binary.AppendVarint(buf, v.i)
		case KindFloat:
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.f))
		case KindString:
			buf = binary.AppendUvarint(buf, uint64(len(v.s)))
			buf = append(buf, v.s...)
		case KindBytes:
			buf = binary.AppendUvarint(buf, uint64(len(v.b)))
			buf = append(buf, v.b...)
		}
	}
	return buf
}

// DecodeRow parses an encoded row. String and bytes payloads are copied so
// the result does not alias storage-backed buffers.
func DecodeRow(buf []byte) (Row, error) {
	row, _, err := DecodeRowPrefix(buf)
	return row, err
}

// DecodeRowPrefix parses an encoded row from the front of buf and returns
// the unconsumed remainder, so callers can decode rows packed back to back
// (the wire protocol's result encoding). Payloads are copied as in
// DecodeRow.
func DecodeRowPrefix(buf []byte) (Row, []byte, error) {
	n, w := binary.Uvarint(buf)
	if w <= 0 || n > 1<<20 {
		return nil, nil, ErrRowCorrupt
	}
	pos := w
	row := make(Row, 0, n)
	for i := uint64(0); i < n; i++ {
		if pos >= len(buf) {
			return nil, nil, ErrRowCorrupt
		}
		k := Kind(buf[pos])
		pos++
		switch k {
		case 0:
			row = append(row, Null)
		case KindInt:
			v, w := binary.Varint(buf[pos:])
			if w <= 0 {
				return nil, nil, ErrRowCorrupt
			}
			pos += w
			row = append(row, I(v))
		case KindFloat:
			if pos+8 > len(buf) {
				return nil, nil, ErrRowCorrupt
			}
			row = append(row, F(math.Float64frombits(binary.LittleEndian.Uint64(buf[pos:]))))
			pos += 8
		case KindString, KindBytes:
			l, w := binary.Uvarint(buf[pos:])
			if w <= 0 {
				return nil, nil, ErrRowCorrupt
			}
			pos += w
			// Compare in uint64: pos+int(l) would overflow for huge l,
			// letting a hostile length pass the bounds check and panic
			// the allocation below.
			if l > uint64(len(buf)-pos) {
				return nil, nil, ErrRowCorrupt
			}
			p := make([]byte, l)
			copy(p, buf[pos:pos+int(l)])
			pos += int(l)
			if k == KindString {
				row = append(row, S(string(p)))
			} else {
				row = append(row, B(p))
			}
		default:
			return nil, nil, ErrRowCorrupt
		}
	}
	return row, buf[pos:], nil
}
