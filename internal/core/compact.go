package core

import (
	"fmt"
	"time"

	"hiengine/internal/wal"
)

// Log compaction (Section 4.4). Append-only storage scatters versions of a
// record across segments and leaves dead versions behind; compaction
// restores locality and reclaims space by rewriting live record versions
// into fresh segments (with their original CSNs, so replay semantics are
// unchanged) and deleting the old segments wholesale.
//
// CompactFull is the paper's full compaction: it fences the current segment
// set by rotating every log stream, rewrites every reachable durable
// version, updates the permanent addresses in the PIAs, and drops the old
// segments. It must not run concurrently with writers whose versions might
// be evicted from memory mid-compaction; the engine serializes it against
// checkpoints.

// CompactionStats reports what a compaction pass did.
type CompactionStats struct {
	RecordsRewritten int64
	BytesRewritten   int64
	SegmentsDropped  int
	BytesReclaimed   int64
}

// CompactFull rewrites all live data into fresh segments and reclaims every
// prior segment.
func (e *Engine) CompactFull() (CompactionStats, error) {
	if e.closed.Load() {
		return CompactionStats{}, ErrClosed
	}
	e.ckptMu.Lock()
	defer e.ckptMu.Unlock()

	var stats CompactionStats

	// Fence: rotate every stream, then take the sealed segment set. A
	// sealed segment can never receive another append -- in particular
	// not the compaction's own rewrites, which land in the streams' open
	// (unsealed) segments.
	if err := e.log.RotateAll(); err != nil {
		return stats, err
	}
	oldSegs := make(map[uint16]bool)
	for _, s := range e.log.SealedSegments() {
		oldSegs[s] = true
	}
	// Wait for in-flight prepare/decision/commit appends so every 2PC
	// record that landed in a sealed segment has registered its segment,
	// then keep those segments: an OpPrepare backing an undecided (or
	// committed) transaction and every retained OpDecide record must
	// survive compaction for recovery.
	// The wait is a bounded sleep-poll, not a Gosched spin: the in-flight
	// appends complete at WAL I/O latency (microseconds to milliseconds),
	// and a spinning compactor would burn a core for that whole window --
	// and live-lock a GOMAXPROCS=1 process if the appender needs the
	// scheduler. If the engine closes mid-wait the stragglers may never
	// drain; fail the compaction rather than hang.
	target := e.commitsStarted.Load()
	for e.commitsDurable.Load() < target {
		if e.closed.Load() {
			return stats, ErrClosed
		}
		time.Sleep(100 * time.Microsecond)
	}
	e.protect2PCSegments(oldSegs)
	oldBytes := int64(0)
	for s := range oldSegs {
		if id, ok := e.log.Directory().Lookup(s); ok {
			if p, err := e.svc.Open(id); err == nil {
				oldBytes += p.Size()
			}
		}
	}

	e.mu.RLock()
	tables := make([]*Table, 0, len(e.tablesByID))
	for _, t := range e.tablesByID {
		tables = append(tables, t)
	}
	e.mu.RUnlock()

	// Rewrite every reachable durable version that lives in an old
	// segment. Versions keep their CSNs; only their permanent addresses
	// change (Figure 4b addresses are updated in place in the PIA chain).
	for _, t := range tables {
		var rerr error
		t.rows.Range(func(rid RID, head *Version) bool {
			for v := head; v != nil; v = v.next.Load() {
				addrRaw := v.addr.Load()
				if addrRaw == 0 {
					continue // not durable yet; lives in memory only
				}
				addr := wal.Addr(addrRaw)
				if !oldSegs[addr.Segment()] {
					continue // already in a fresh segment
				}
				csn := v.tmin.Load()
				if isTID(csn) {
					continue
				}
				op := wal.OpUpdate
				var payload []byte
				if v.tomb {
					op = wal.OpDelete
				} else {
					p, err := v.payload(e)
					if err != nil {
						rerr = fmt.Errorf("core: compaction read %v: %w", addr, err)
						return false
					}
					payload = p
				}
				buf, off := wal.AppendRecord(nil, op, t.ID, uint64(rid), payload)
				wal.PatchCSN(buf, off, csn)
				base, err := e.log.AppendSync(0, buf)
				if err != nil {
					rerr = fmt.Errorf("core: compaction append: %w", err)
					return false
				}
				v.addr.Store(uint64(base.Add(uint32(off))))
				stats.RecordsRewritten++
				stats.BytesRewritten += int64(len(buf))
			}
			return true
		})
		if rerr != nil {
			return stats, rerr
		}
	}

	// Reclaim the fenced segments.
	for s := range oldSegs {
		if err := e.log.DropSegment(s); err != nil {
			return stats, err
		}
		stats.SegmentsDropped++
	}
	stats.BytesReclaimed = oldBytes - stats.BytesRewritten

	// The previous checkpoint's addresses point into the segments just
	// dropped; a crash before the next checkpoint would leave recovery
	// with dangling pointers. Write a fresh checkpoint (post-compaction
	// addresses) as the final step of compaction.
	if _, err := e.checkpointLocked(); err != nil {
		return stats, fmt.Errorf("core: post-compaction checkpoint: %w", err)
	}
	e.stats.Compactions.Add(1)
	return stats, nil
}

// CompactPartial rewrites only versions created in (sinceCSN, untilCSN],
// clustering recent changes without touching cold segments (the paper's
// partial compaction). Old segments are not dropped -- partial compaction
// restores locality for recent data; space reclamation needs CompactFull.
func (e *Engine) CompactPartial(sinceCSN, untilCSN uint64) (CompactionStats, error) {
	if e.closed.Load() {
		return CompactionStats{}, ErrClosed
	}
	e.ckptMu.Lock()
	defer e.ckptMu.Unlock()

	var stats CompactionStats
	e.mu.RLock()
	tables := make([]*Table, 0, len(e.tablesByID))
	for _, t := range e.tablesByID {
		tables = append(tables, t)
	}
	e.mu.RUnlock()

	for _, t := range tables {
		var rerr error
		t.rows.Range(func(rid RID, head *Version) bool {
			for v := head; v != nil; v = v.next.Load() {
				csn := v.tmin.Load()
				if isTID(csn) || csn <= sinceCSN || csn > untilCSN {
					continue
				}
				if v.addr.Load() == 0 || v.tomb {
					continue
				}
				p, err := v.payload(e)
				if err != nil {
					rerr = err
					return false
				}
				buf, off := wal.AppendRecord(nil, wal.OpUpdate, t.ID, uint64(rid), p)
				wal.PatchCSN(buf, off, csn)
				base, err := e.log.AppendSync(0, buf)
				if err != nil {
					rerr = err
					return false
				}
				v.addr.Store(uint64(base.Add(uint32(off))))
				stats.RecordsRewritten++
				stats.BytesRewritten += int64(len(buf))
			}
			return true
		})
		if rerr != nil {
			return stats, rerr
		}
	}
	e.stats.Compactions.Add(1)
	return stats, nil
}
