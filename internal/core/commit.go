package core

import (
	"hiengine/internal/wal"
)

// Commit finishes the transaction and blocks until its log records are
// durable (persisted and replicated by SRSS on the compute side). Visibility
// is pipelined: versions become visible to other transactions as soon as the
// commit sequence number is stamped, while the client acknowledgement waits
// for durability -- HiEngine's early-commit design (Section 5.2). Read-only
// transactions commit without touching the log.
func (t *Txn) Commit() error {
	done := make(chan error, 1)
	started, err := t.commitStart(func(err error) { done <- err })
	if err != nil {
		return err
	}
	if !started {
		return nil // read-only
	}
	return <-done
}

// CommitAsync starts the commit and invokes cb (possibly on an I/O
// goroutine) once the transaction is durable. The worker can immediately
// begin its next transaction -- the commit-pipelining behavior of
// Section 4.2.
func (t *Txn) CommitAsync(cb func(error)) error {
	started, err := t.commitStart(cb)
	if err != nil {
		return err
	}
	if !started {
		cb(nil)
	}
	return nil
}

// commitStart runs the synchronous part of commit: dependency resolution,
// CSN acquisition, version stamping and handing the log buffer to the I/O
// goroutine. durable is invoked (from the I/O goroutine) with the
// durability result; started is false for read-only transactions, which
// touch no log.
func (t *Txn) commitStart(durable func(error)) (bool, error) {
	if t.finished {
		return false, ErrTxnDone
	}
	if t.prepared {
		// A prepared 2PC participant is decided only through Engine.Resolve.
		return false, ErrInDoubt
	}
	// Fail-stop: once any commit's log append has failed durability, no
	// further commit may be acknowledged -- the client-visible history
	// would silently diverge from what recovery can reconstruct.
	if t.e.durabilityLost.Load() {
		_ = t.Abort()
		return false, ErrDurabilityLost
	}
	// A node fenced mid-transaction must not acknowledge buffered writes:
	// the new lineage would lose them.
	if len(t.writes) > 0 {
		if err := t.e.writeBlocked(); err != nil {
			_ = t.Abort()
			return false, err
		}
	}
	// Register-and-report (Section 5.2): wait for every transaction whose
	// uncommitted data we read; abort if any of them aborted.
	for _, dep := range t.deps {
		<-dep.doneCh
		if st, _ := dep.state(); st == txAborted {
			_ = t.Abort()
			t.e.mDepAborts.Inc()
			return false, ErrDependencyAborted
		}
	}
	if len(t.writes) == 0 {
		t.finish(txCommitted, 0)
		t.e.stats.Commits.Add(1)
		t.e.mCommits.Inc()
		return false, nil
	}
	if err := t.e.svc.Chaos().Check(SiteCommitBegin); err != nil {
		// Crash at the head of the commit pipeline: no CSN acquired, no
		// version stamped, nothing handed to the log -- a clean abort.
		_ = t.Abort()
		return false, err
	}

	// Acquire the commit sequence number (atomic fetch-add on the global
	// counter, Section 3.5).
	csn := t.e.clk.Next()
	t.statusWord.Store(packStatus(txPrecommitted, csn))

	// Stamp versions: replace TIDs with the CSN in tmin of new versions
	// and tmax of superseded ones (Section 5.1). After this point other
	// transactions read the new data.
	for i := range t.writes {
		we := &t.writes[i]
		we.newV.tmin.Store(csn)
		if we.oldV != nil {
			we.oldV.tmax.Store(csn)
		}
		wal.PatchCSN(t.logBuf, we.logOff, csn)
	}
	// The status-map entry is only needed while versions still carry the
	// TID; drop it now that stamping is complete.
	t.e.status.remove(t.tid)

	// Hand the buffer to the stream's I/O goroutine; the worker slot is
	// freed immediately (commit pipelining).
	writes := t.writes
	logBuf := t.logBuf
	e := t.e
	worker := t.worker
	e.commitsStarted.Add(1)
	e.log.AppendTraced(worker, logBuf, t.trace, func(base wal.Addr, err error) {
		if err == nil {
			// Stamp permanent addresses: each version now has a home
			// in the replicated log (Figure 4b).
			for i := range writes {
				we := &writes[i]
				we.newV.addr.Store(uint64(base.Add(uint32(we.logOff))))
			}
		} else {
			// The transaction is already visible to other workers, but
			// its log records will never be durable: latch the sticky
			// fail-stop flag so no later Begin/Commit is acknowledged
			// against the diverged state.
			e.durabilityLost.Store(true)
			e.mDurabilityFail.Inc()
		}
		e.commitsDurable.Add(1)
		durable(err)
	})

	t.statusWord.Store(packStatus(txCommitted, csn))
	t.retireWrites(csn)
	t.finishSlot()
	t.markFinished()
	t.e.stats.Commits.Add(1)
	t.e.mCommits.Inc()

	// Interleave incremental GC with forward processing (Section 4.4).
	e.maybeGC(worker)
	return true, nil
}

// Abort rolls the transaction back: installed versions are uninstalled from
// the indirection arrays and index reservations are hidden again.
func (t *Txn) Abort() error {
	if t.finished {
		return ErrTxnDone
	}
	if t.prepared {
		// The write locks outlive the session: a prepared transaction is
		// in-doubt until the coordinator's decision arrives via Resolve.
		return ErrInDoubt
	}
	t.statusWord.Store(packStatus(txAborted, 0))
	// Uninstall in reverse order so chained writes to the same RID unwind
	// correctly.
	for i := len(t.writes) - 1; i >= 0; i-- {
		we := &t.writes[i]
		ok, _ := we.table.rows.CompareAndSwap(we.rid, we.newV, we.oldV)
		_ = ok // the CAS cannot fail: our TID head blocks other writers
		for j := len(we.idxOps) - 1; j >= 0; j-- {
			op := we.idxOps[j]
			_ = op.ix.Delete(op.key)
		}
		if we.oldV == nil {
			we.table.liveRows.Add(-1)
		} else if we.newV.tomb {
			we.table.liveRows.Add(1)
		}
	}
	t.e.status.remove(t.tid)
	t.finish(txAborted, 0)
	t.e.stats.Aborts.Add(1)
	t.e.mAborts.Inc()
	return nil
}

// finish marks the transaction terminal and releases its worker slot.
func (t *Txn) finish(state, csn uint64) {
	t.statusWord.Store(packStatus(state, csn))
	t.e.status.remove(t.tid)
	t.finishSlot()
	t.markFinished()
}

func (t *Txn) finishSlot() {
	slot := &t.e.workers[t.worker]
	slot.lastRead.Store(t.e.clk.Now())
	slot.activeBegin.Store(0)
}

func (t *Txn) markFinished() {
	if !t.finished {
		t.finished = true
		close(t.doneCh)
	}
}

// retireWrites hands superseded versions to the worker's GC bag
// (Section 4.4: stale versions are reclaimed once no snapshot can see them).
func (t *Txn) retireWrites(csn uint64) {
	slot := &t.e.workers[t.worker]
	slot.mu.Lock()
	for i := range t.writes {
		we := &t.writes[i]
		if we.oldV != nil {
			slot.retired = append(slot.retired, retiredVersion{
				owner:     we.newV,
				victim:    we.oldV,
				retireCSN: csn,
				table:     we.table,
				rid:       we.rid,
				oldKeys:   we.oldKeys,
			})
		}
		if we.newV.tomb {
			// A committed delete: once reclaimable, the PIA entry is
			// cleared (epoch preserved) and index entries tombstoned.
			slot.retired = append(slot.retired, retiredVersion{
				victim:    we.newV,
				retireCSN: csn,
				table:     we.table,
				rid:       we.rid,
				isDelete:  true,
				oldKeys:   we.oldKeys,
			})
		}
	}
	slot.mu.Unlock()
}
