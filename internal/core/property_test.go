package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"hiengine/internal/srss"
)

// TestPropertyEngineMatchesReferenceModel drives the engine with a long
// randomized single-session history -- inserts, updates, deletes, point
// reads, scans, plus periodic GC, checkpoints, compaction, eviction and
// even full crash-recovery -- and checks after every step that the visible
// state matches a plain map reference model. This is the repository's
// model-checking test: any divergence in MVCC visibility, index
// maintenance, GC, compaction address rewriting or recovery shows up as a
// mismatch.
func TestPropertyEngineMatchesReferenceModel(t *testing.T) {
	const keys = 120
	const steps = 3000

	svc := newTestService()
	e, err := Open(Config{Service: svc, Workers: 4, SegmentSize: 1 << 18, GCEveryNCommits: 16})
	if err != nil {
		t.Fatal(err)
	}
	tbl := mustTable(t, e, usersSchema())

	ref := make(map[int64][2]interface{}) // id -> (name, balance)
	rng := rand.New(rand.NewSource(20260705))

	verifyPoint := func(id int64) {
		t.Helper()
		tx, err := e.Begin(0)
		if err != nil {
			t.Fatal(err)
		}
		defer tx.Commit()
		_, row, err := tx.GetByKey(tbl, 0, I(id))
		want, exists := ref[id]
		switch {
		case exists && err != nil:
			t.Fatalf("id %d: expected %v, got error %v", id, want, err)
		case !exists && !errors.Is(err, ErrNotFound):
			t.Fatalf("id %d: expected absent, got row %v err %v", id, row, err)
		case exists:
			if row[1].Str() != want[0] || row[2].Int() != want[1] {
				t.Fatalf("id %d: got (%v,%v) want %v", id, row[1].Str(), row[2].Int(), want)
			}
		}
	}
	verifyFull := func(ctx string) {
		t.Helper()
		tx, err := e.Begin(0)
		if err != nil {
			t.Fatal(err)
		}
		got := make(map[int64][2]interface{})
		if err := tx.ScanKey(tbl, 0, nil, nil, func(_ RID, row Row) bool {
			got[row[0].Int()] = [2]interface{}{row[1].Str(), row[2].Int()}
			return true
		}); err != nil {
			t.Fatal(err)
		}
		commit(t, tx)
		if len(got) != len(ref) {
			t.Fatalf("%s: scan has %d rows, model has %d", ctx, len(got), len(ref))
		}
		for id, w := range ref {
			if got[id] != w {
				t.Fatalf("%s: id %d got %v want %v", ctx, id, got[id], w)
			}
		}
	}

	for step := 0; step < steps; step++ {
		id := int64(rng.Intn(keys))
		switch op := rng.Intn(100); {
		case op < 35: // insert
			tx, _ := e.Begin(0)
			name := fmt.Sprintf("n%d", step)
			bal := int64(step)
			_, err := tx.Insert(tbl, Row{I(id), S(name), I(bal)})
			if _, exists := ref[id]; exists {
				if !errors.Is(err, ErrDuplicateKey) {
					t.Fatalf("step %d: duplicate insert of %d: %v", step, id, err)
				}
				// failWith aborted the txn already.
			} else {
				if err != nil {
					t.Fatalf("step %d: insert %d: %v", step, id, err)
				}
				commit(t, tx)
				ref[id] = [2]interface{}{name, bal}
			}
		case op < 60: // update
			tx, _ := e.Begin(0)
			rid, _, err := tx.GetByKey(tbl, 0, I(id))
			if _, exists := ref[id]; !exists {
				if !errors.Is(err, ErrNotFound) {
					t.Fatalf("step %d: ghost row %d: %v", step, id, err)
				}
				tx.Abort()
				break
			}
			if err != nil {
				t.Fatalf("step %d: lookup %d: %v", step, id, err)
			}
			name := fmt.Sprintf("u%d", step)
			bal := int64(-step)
			if err := tx.Update(tbl, rid, Row{I(id), S(name), I(bal)}); err != nil {
				t.Fatalf("step %d: update %d: %v", step, id, err)
			}
			commit(t, tx)
			ref[id] = [2]interface{}{name, bal}
		case op < 75: // delete
			tx, _ := e.Begin(0)
			rid, _, err := tx.GetByKey(tbl, 0, I(id))
			if _, exists := ref[id]; !exists {
				tx.Abort()
				break
			}
			if err != nil {
				t.Fatalf("step %d: lookup %d: %v", step, id, err)
			}
			if err := tx.Delete(tbl, rid); err != nil {
				t.Fatalf("step %d: delete %d: %v", step, id, err)
			}
			commit(t, tx)
			delete(ref, id)
		case op < 78: // aborted multi-op txn leaves no trace
			tx, _ := e.Begin(0)
			freshID := int64(keys + rng.Intn(50))
			if _, err := tx.Insert(tbl, Row{I(freshID), S("ghost"), I(0)}); err == nil {
				tx.Abort()
			}
		case op < 90: // point read
			verifyPoint(id)
		case op < 93: // maintenance: GC
			e.RunGC()
		case op < 95: // maintenance: checkpoint
			if _, err := e.Checkpoint(); err != nil {
				t.Fatalf("step %d: checkpoint: %v", step, err)
			}
		case op < 96: // maintenance: compaction + eviction round trip
			e.RunGC()
			if _, err := e.CompactFull(); err != nil {
				t.Fatalf("step %d: compact: %v", step, err)
			}
			if _, err := e.Evict("users"); err != nil {
				t.Fatalf("step %d: evict: %v", step, err)
			}
			verifyFull(fmt.Sprintf("step %d post-compaction", step))
		case op < 97: // crash + recovery
			manifest := e.ManifestID()
			e.Close()
			e2, _, err := Recover(Config{Service: svc, Workers: 4, SegmentSize: 1 << 18, GCEveryNCommits: 16},
				manifest, RecoverOptions{ReplayThreads: 1 + rng.Intn(4)})
			if err != nil {
				t.Fatalf("step %d: recover: %v", step, err)
			}
			e = e2
			tbl, err = e.Table("users")
			if err != nil {
				t.Fatal(err)
			}
			verifyFull(fmt.Sprintf("step %d post-recovery", step))
		default: // full scan check
			verifyFull(fmt.Sprintf("step %d", step))
		}
	}
	verifyFull("final")
	e.Close()
}

// newTestService builds a zero-latency SRSS deployment for model checking.
func newTestService() *srss.Service {
	return srss.New(srss.Config{})
}
