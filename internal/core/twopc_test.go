package core

import (
	"errors"
	"fmt"
	"testing"
)

// prepare is a test helper: runs Prepare and fails the test on error.
func prepare(t *testing.T, tx *Txn, gtid string) {
	t.Helper()
	ro, err := tx.Prepare(gtid)
	if err != nil {
		t.Fatalf("prepare %s: %v", gtid, err)
	}
	if ro {
		t.Fatalf("prepare %s: unexpected read-only vote", gtid)
	}
}

func resolve(t *testing.T, e *Engine, gtid string, commit bool) uint64 {
	t.Helper()
	type res struct {
		csn uint64
		err error
	}
	ch := make(chan res, 1)
	if err := e.Resolve(gtid, commit, func(csn uint64, err error) { ch <- res{csn, err} }); err != nil {
		t.Fatalf("resolve %s: %v", gtid, err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatalf("resolve %s durability: %v", gtid, r.err)
	}
	return r.csn
}

func TestPrepareCommitVisibility(t *testing.T) {
	e := testEngine(t)
	tbl := mustTable(t, e, usersSchema())
	insertUser(t, e, tbl, 0, 1, "alice", 100)

	tx, err := e.Begin(0)
	if err != nil {
		t.Fatal(err)
	}
	rid, _, err := tx.GetByKey(tbl, 0, I(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Update(tbl, rid, Row{I(1), S("alice"), I(150)}); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Insert(tbl, Row{I(2), S("bob"), I(50)}); err != nil {
		t.Fatal(err)
	}
	prepare(t, tx, "h0-t1")

	// Prepared writes are invisible and hold their locks.
	snap := snapshotTable(t, e, "users")
	if snap[1][1].(int64) != 100 {
		t.Fatalf("prepared update visible early: %v", snap[1])
	}
	if _, ok := snap[2]; ok {
		t.Fatal("prepared insert visible early")
	}
	tx2, _ := e.Begin(1)
	rid2, _, err := tx2.GetByKey(tbl, 0, I(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := tx2.Update(tbl, rid2, Row{I(1), S("alice"), I(999)}); !errors.Is(err, ErrConflict) {
		t.Fatalf("conflicting write on prepared row: err=%v", err)
	}
	// The prepared txn refuses local commit/abort.
	if err := tx.Abort(); !errors.Is(err, ErrInDoubt) {
		t.Fatalf("abort of prepared txn: %v", err)
	}
	if st, _ := e.TxnStatus("h0-t1"); st != TxnInDoubt {
		t.Fatalf("status before decision: %v", st)
	}
	if got := e.InDoubt(); len(got) != 1 || got[0] != "h0-t1" {
		t.Fatalf("in-doubt list: %v", got)
	}

	csn := resolve(t, e, "h0-t1", true)
	if csn == 0 {
		t.Fatal("commit decision returned CSN 0")
	}
	snap = snapshotTable(t, e, "users")
	if snap[1][1].(int64) != 150 || snap[2][1].(int64) != 50 {
		t.Fatalf("committed writes not visible: %v", snap)
	}
	if st, gotCSN := e.TxnStatus("h0-t1"); st != TxnCommitted || gotCSN != csn {
		t.Fatalf("status after commit: %v csn=%d want %d", st, gotCSN, csn)
	}
	// Idempotent re-delivery; conflicting decision rejected.
	if got := resolve(t, e, "h0-t1", true); got != csn {
		t.Fatalf("re-delivered commit csn %d != %d", got, csn)
	}
	if err := e.Resolve("h0-t1", false, func(uint64, error) {}); !errors.Is(err, ErrConflictingDecision) {
		t.Fatalf("conflicting decision: %v", err)
	}
}

func TestPrepareAbortUninstalls(t *testing.T) {
	e := testEngine(t)
	tbl := mustTable(t, e, usersSchema())
	insertUser(t, e, tbl, 0, 1, "alice", 100)

	tx, _ := e.Begin(0)
	rid, _, err := tx.GetByKey(tbl, 0, I(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Delete(tbl, rid); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Insert(tbl, Row{I(3), S("carol"), I(7)}); err != nil {
		t.Fatal(err)
	}
	prepare(t, tx, "h0-t2")
	if csn := resolve(t, e, "h0-t2", false); csn != 0 {
		t.Fatalf("abort decision returned csn %d", csn)
	}
	snap := snapshotTable(t, e, "users")
	if snap[1][1].(int64) != 100 {
		t.Fatalf("aborted delete leaked: %v", snap)
	}
	if _, ok := snap[3]; ok {
		t.Fatal("aborted insert leaked")
	}
	// The lock is released: a new writer succeeds.
	tx2, _ := e.Begin(1)
	rid2, _, err := tx2.GetByKey(tbl, 0, I(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := tx2.Update(tbl, rid2, Row{I(1), S("alice"), I(101)}); err != nil {
		t.Fatal(err)
	}
	commit(t, tx2)
	if st, _ := e.TxnStatus("h0-t2"); st != TxnAborted {
		t.Fatalf("status after abort: %v", st)
	}
	// Presumed abort: aborting an unknown gtid installs a durable FENCE --
	// after it, the gtid answers TxnAborted, a late commit decision is
	// rejected as conflicting, and a late prepare under the same gtid fails.
	if csn := resolve(t, e, "nope", false); csn != 0 {
		t.Fatalf("presumed abort of unknown gtid returned csn %d", csn)
	}
	if st, _ := e.TxnStatus("nope"); st != TxnAborted {
		t.Fatalf("status after unknown-gtid abort fence: %v", st)
	}
	if err := e.Resolve("nope", true, func(uint64, error) {}); !errors.Is(err, ErrConflictingDecision) {
		t.Fatalf("late commit against abort fence: %v", err)
	}
	tx3, _ := e.Begin(0)
	if _, err := tx3.Insert(tbl, Row{I(4), S("dave"), I(4)}); err != nil {
		t.Fatal(err)
	}
	if _, err := tx3.Prepare("nope"); err == nil {
		t.Fatal("late prepare under a fenced gtid succeeded")
	}
	// Committing a NEVER-seen gtid still fails loudly.
	if err := e.Resolve("fresh", true, func(uint64, error) {}); !errors.Is(err, ErrUnknownGTID) {
		t.Fatalf("commit of unknown gtid: %v", err)
	}
}

func TestReadOnlyPrepareVotes(t *testing.T) {
	e := testEngine(t)
	tbl := mustTable(t, e, usersSchema())
	insertUser(t, e, tbl, 0, 1, "alice", 100)
	tx, _ := e.Begin(0)
	if _, _, err := tx.GetByKey(tbl, 0, I(1)); err != nil {
		t.Fatal(err)
	}
	ro, err := tx.Prepare("h0-ro")
	if err != nil || !ro {
		t.Fatalf("read-only prepare: ro=%v err=%v", ro, err)
	}
	// No decision owed; the gtid is unknown.
	if st, _ := e.TxnStatus("h0-ro"); st != TxnUnknown {
		t.Fatalf("read-only prepare left state: %v", st)
	}
}

// TestInDoubtSurvivesRecovery is the core crash-window contract: a prepare
// with no decision recovers as an in-doubt transaction that still holds its
// write locks and still resolves either way.
func TestInDoubtSurvivesRecovery(t *testing.T) {
	for _, decide := range []string{"commit", "abort"} {
		t.Run(decide, func(t *testing.T) {
			e := testEngine(t)
			tbl := mustTable(t, e, usersSchema())
			insertUser(t, e, tbl, 0, 1, "alice", 100)
			insertUser(t, e, tbl, 0, 2, "bob", 200)

			tx, _ := e.Begin(0)
			rid, _, err := tx.GetByKey(tbl, 0, I(1))
			if err != nil {
				t.Fatal(err)
			}
			if err := tx.Update(tbl, rid, Row{I(1), S("alice"), I(111)}); err != nil {
				t.Fatal(err)
			}
			if _, err := tx.Insert(tbl, Row{I(9), S("ivan"), I(9)}); err != nil {
				t.Fatal(err)
			}
			rid2, _, err := tx.GetByKey(tbl, 0, I(2))
			if err != nil {
				t.Fatal(err)
			}
			if err := tx.Delete(tbl, rid2); err != nil {
				t.Fatal(err)
			}
			prepare(t, tx, "h0-crash")

			e2, stats := recoverEngine(t, e, RecoverOptions{ReplayThreads: 2})
			if stats.InDoubt != 1 {
				t.Fatalf("recovered in-doubt count: %d", stats.InDoubt)
			}
			if got := e2.InDoubt(); len(got) != 1 || got[0] != "h0-crash" {
				t.Fatalf("in-doubt after recovery: %v", got)
			}
			// Locks are held again.
			snap := snapshotTable(t, e2, "users")
			if snap[1][1].(int64) != 100 || snap[2][1].(int64) != 200 {
				t.Fatalf("in-doubt writes leaked after recovery: %v", snap)
			}
			tx2, _ := e2.Begin(1)
			tblv, err := e2.Table("users")
			if err != nil {
				t.Fatal(err)
			}
			ridB, _, err := tx2.GetByKey(tblv, 0, I(1))
			if err != nil {
				t.Fatal(err)
			}
			if err := tx2.Update(tblv, ridB, Row{I(1), S("alice"), I(777)}); !errors.Is(err, ErrConflict) {
				t.Fatalf("in-doubt lock not held after recovery: %v", err)
			}

			wantCommit := decide == "commit"
			csn := resolve(t, e2, "h0-crash", wantCommit)
			snap = snapshotTable(t, e2, "users")
			if wantCommit {
				if csn == 0 {
					t.Fatal("commit csn 0")
				}
				if snap[1][1].(int64) != 111 || snap[9][1].(int64) != 9 {
					t.Fatalf("commit after recovery not applied: %v", snap)
				}
				if _, ok := snap[2]; ok {
					t.Fatalf("committed delete not applied: %v", snap)
				}
			} else {
				if snap[1][1].(int64) != 100 || snap[2][1].(int64) != 200 {
					t.Fatalf("abort after recovery leaked writes: %v", snap)
				}
				if _, ok := snap[9]; ok {
					t.Fatal("aborted insert leaked after recovery")
				}
			}

			// The decision itself survives ANOTHER crash.
			e3, _ := recoverEngine(t, e2, RecoverOptions{ReplayThreads: 2})
			st, gotCSN := e3.TxnStatus("h0-crash")
			if wantCommit && (st != TxnCommitted || gotCSN != csn) {
				t.Fatalf("decision lost across second recovery: %v csn=%d want %d", st, gotCSN, csn)
			}
			if !wantCommit && st != TxnAborted {
				t.Fatalf("abort decision lost across second recovery: %v", st)
			}
			snap3 := snapshotTable(t, e3, "users")
			if fmt.Sprint(snap3) != fmt.Sprint(snap) {
				t.Fatalf("state diverged across second recovery:\n  %v\n  %v", snap3, snap)
			}
		})
	}
}

// forget is a test helper: runs Forget and waits for record durability.
func forget(t *testing.T, e *Engine, gtid string) {
	t.Helper()
	ch := make(chan error, 1)
	if err := e.Forget(gtid, func(err error) { ch <- err }); err != nil {
		t.Fatalf("forget %s: %v", gtid, err)
	}
	if err := <-ch; err != nil {
		t.Fatalf("forget %s durability: %v", gtid, err)
	}
}

// TestConcurrentDuplicatePrepare: the gtid is reserved atomically with the
// duplicate check, so two prepares under one gtid can never both pass --
// regardless of interleaving -- and the loser's transaction aborts cleanly
// (its write locks release).
func TestConcurrentDuplicatePrepare(t *testing.T) {
	e := testEngine(t)
	tbl := mustTable(t, e, usersSchema())

	txA, _ := e.Begin(0)
	if _, err := txA.Insert(tbl, Row{I(1), S("a"), I(1)}); err != nil {
		t.Fatal(err)
	}
	txB, _ := e.Begin(1)
	if _, err := txB.Insert(tbl, Row{I(2), S("b"), I(2)}); err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 2)
	for _, tx := range []*Txn{txA, txB} {
		go func(tx *Txn) {
			_, err := tx.Prepare("h0-dup")
			errs <- err
		}(tx)
	}
	var failed, succeeded int
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			failed++
		} else {
			succeeded++
		}
	}
	if succeeded != 1 || failed != 1 {
		t.Fatalf("duplicate prepare: %d succeeded, %d failed; want exactly one each", succeeded, failed)
	}
	// Exactly one prepared transaction exists, and the loser's lock is gone:
	// a new writer can touch both keys' tables freely (the loser's insert
	// was uninstalled).
	if got := e.InDoubt(); len(got) != 1 || got[0] != "h0-dup" {
		t.Fatalf("in-doubt after duplicate prepare: %v", got)
	}
	resolve(t, e, "h0-dup", false)
	snap := snapshotTable(t, e, "users")
	if len(snap) != 0 {
		t.Fatalf("aborted duplicate-prepare writes leaked: %v", snap)
	}
}

// TestForgetPrunesDecided: Forget drops a decided gtid's bookkeeping (the
// participant answers TxnUnknown afterwards), refuses undecided gtids, and
// no-ops on unknown ones. The forget is logged, so it holds across recovery
// -- while the forgotten transaction's committed DATA does not regress.
func TestForgetPrunesDecided(t *testing.T) {
	e := testEngine(t)
	tbl := mustTable(t, e, usersSchema())

	tx, _ := e.Begin(0)
	if _, err := tx.Insert(tbl, Row{I(1), S("alice"), I(100)}); err != nil {
		t.Fatal(err)
	}
	prepare(t, tx, "h0-f1")
	csn := resolve(t, e, "h0-f1", true)
	if csn == 0 {
		t.Fatal("commit csn 0")
	}

	// Undecided gtids refuse to be forgotten.
	tx2, _ := e.Begin(1)
	if _, err := tx2.Insert(tbl, Row{I(2), S("bob"), I(2)}); err != nil {
		t.Fatal(err)
	}
	prepare(t, tx2, "h0-f2")
	if err := e.Forget("h0-f2", func(error) {}); !errors.Is(err, ErrInDoubt) {
		t.Fatalf("forget of undecided gtid: %v", err)
	}

	// Unknown gtids are a no-op.
	done := false
	if err := e.Forget("never-seen", func(err error) { done = err == nil }); err != nil || !done {
		t.Fatalf("forget of unknown gtid: err=%v done=%v", err, done)
	}

	forget(t, e, "h0-f1")
	if st, _ := e.TxnStatus("h0-f1"); st != TxnUnknown {
		t.Fatalf("status after forget: %v", st)
	}
	if snap := snapshotTable(t, e, "users"); snap[1][1].(int64) != 100 {
		t.Fatalf("forget touched committed data: %v", snap)
	}

	// The forget record replays: the gtid stays forgotten across recovery,
	// the committed writes still apply, and the undecided one is still owed
	// a decision.
	e2, stats := recoverEngine(t, e, RecoverOptions{ReplayThreads: 2})
	if st, _ := e2.TxnStatus("h0-f1"); st != TxnUnknown {
		t.Fatalf("forgotten gtid resurrected by recovery: %v", st)
	}
	if snap := snapshotTable(t, e2, "users"); snap[1][1].(int64) != 100 {
		t.Fatalf("forgotten txn's committed data lost in recovery: %v", snap)
	}
	if stats.InDoubt != 1 {
		t.Fatalf("recovered in-doubt count: %d", stats.InDoubt)
	}
	resolve(t, e2, "h0-f2", true)
	forget(t, e2, "h0-f2")

	// With everything forgotten, a checkpoint fences the whole log; another
	// recovery anchors on the image alone and loses nothing.
	if _, err := e2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	e3, _ := recoverEngine(t, e2, RecoverOptions{ReplayThreads: 2})
	snap := snapshotTable(t, e3, "users")
	if snap[1][1].(int64) != 100 || snap[2][1].(int64) != 2 {
		t.Fatalf("data lost after forget+checkpoint recovery: %v", snap)
	}
	if st, _ := e3.TxnStatus("h0-f1"); st != TxnUnknown {
		t.Fatalf("forgotten gtid resurrected after checkpoint: %v", st)
	}
	if got := e3.InDoubt(); len(got) != 0 {
		t.Fatalf("in-doubt after everything decided and forgotten: %v", got)
	}
}

// TestDecidedTwoPCSurvivesCheckpoint: a checkpoint taken after the decision
// must cover (or fence correctly around) 2PC writes, and an undecided
// prepare must survive a checkpoint + recovery cycle.
func TestTwoPCAcrossCheckpoint(t *testing.T) {
	e := testEngine(t)
	tbl := mustTable(t, e, usersSchema())
	insertUser(t, e, tbl, 0, 1, "alice", 100)

	// One committed, one in-doubt, then checkpoint, then crash.
	tx, _ := e.Begin(0)
	if _, err := tx.Insert(tbl, Row{I(10), S("pre"), I(10)}); err != nil {
		t.Fatal(err)
	}
	prepare(t, tx, "h0-done")
	resolve(t, e, "h0-done", true)

	tx2, _ := e.Begin(1)
	if _, err := tx2.Insert(tbl, Row{I(11), S("pending"), I(11)}); err != nil {
		t.Fatal(err)
	}
	prepare(t, tx2, "h0-open")

	if _, err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// More traffic after the checkpoint.
	insertUser(t, e, tbl, 2, 12, "post", 12)

	e2, _ := recoverEngine(t, e, RecoverOptions{ReplayThreads: 2})
	snap := snapshotTable(t, e2, "users")
	if snap[10][1].(int64) != 10 || snap[12][1].(int64) != 12 {
		t.Fatalf("checkpointed 2PC commit lost: %v", snap)
	}
	if _, ok := snap[11]; ok {
		t.Fatal("undecided prepare visible after recovery")
	}
	if st, _ := e2.TxnStatus("h0-done"); st != TxnCommitted {
		t.Fatalf("decided status lost across checkpointed recovery: %v", st)
	}
	if got := e2.InDoubt(); len(got) != 1 || got[0] != "h0-open" {
		t.Fatalf("in-doubt across checkpoint: %v", got)
	}
	resolve(t, e2, "h0-open", true)
	snap = snapshotTable(t, e2, "users")
	if snap[11][1].(int64) != 11 {
		t.Fatalf("late commit not applied: %v", snap)
	}
}
