package core

import (
	"errors"
	"fmt"
	"testing"
)

// prepare is a test helper: runs Prepare and fails the test on error.
func prepare(t *testing.T, tx *Txn, gtid string) {
	t.Helper()
	ro, err := tx.Prepare(gtid)
	if err != nil {
		t.Fatalf("prepare %s: %v", gtid, err)
	}
	if ro {
		t.Fatalf("prepare %s: unexpected read-only vote", gtid)
	}
}

func resolve(t *testing.T, e *Engine, gtid string, commit bool) uint64 {
	t.Helper()
	type res struct {
		csn uint64
		err error
	}
	ch := make(chan res, 1)
	if err := e.Resolve(gtid, commit, func(csn uint64, err error) { ch <- res{csn, err} }); err != nil {
		t.Fatalf("resolve %s: %v", gtid, err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatalf("resolve %s durability: %v", gtid, r.err)
	}
	return r.csn
}

func TestPrepareCommitVisibility(t *testing.T) {
	e := testEngine(t)
	tbl := mustTable(t, e, usersSchema())
	insertUser(t, e, tbl, 0, 1, "alice", 100)

	tx, err := e.Begin(0)
	if err != nil {
		t.Fatal(err)
	}
	rid, _, err := tx.GetByKey(tbl, 0, I(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Update(tbl, rid, Row{I(1), S("alice"), I(150)}); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Insert(tbl, Row{I(2), S("bob"), I(50)}); err != nil {
		t.Fatal(err)
	}
	prepare(t, tx, "h0-t1")

	// Prepared writes are invisible and hold their locks.
	snap := snapshotTable(t, e, "users")
	if snap[1][1].(int64) != 100 {
		t.Fatalf("prepared update visible early: %v", snap[1])
	}
	if _, ok := snap[2]; ok {
		t.Fatal("prepared insert visible early")
	}
	tx2, _ := e.Begin(1)
	rid2, _, err := tx2.GetByKey(tbl, 0, I(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := tx2.Update(tbl, rid2, Row{I(1), S("alice"), I(999)}); !errors.Is(err, ErrConflict) {
		t.Fatalf("conflicting write on prepared row: err=%v", err)
	}
	// The prepared txn refuses local commit/abort.
	if err := tx.Abort(); !errors.Is(err, ErrInDoubt) {
		t.Fatalf("abort of prepared txn: %v", err)
	}
	if st, _ := e.TxnStatus("h0-t1"); st != TxnInDoubt {
		t.Fatalf("status before decision: %v", st)
	}
	if got := e.InDoubt(); len(got) != 1 || got[0] != "h0-t1" {
		t.Fatalf("in-doubt list: %v", got)
	}

	csn := resolve(t, e, "h0-t1", true)
	if csn == 0 {
		t.Fatal("commit decision returned CSN 0")
	}
	snap = snapshotTable(t, e, "users")
	if snap[1][1].(int64) != 150 || snap[2][1].(int64) != 50 {
		t.Fatalf("committed writes not visible: %v", snap)
	}
	if st, gotCSN := e.TxnStatus("h0-t1"); st != TxnCommitted || gotCSN != csn {
		t.Fatalf("status after commit: %v csn=%d want %d", st, gotCSN, csn)
	}
	// Idempotent re-delivery; conflicting decision rejected.
	if got := resolve(t, e, "h0-t1", true); got != csn {
		t.Fatalf("re-delivered commit csn %d != %d", got, csn)
	}
	if err := e.Resolve("h0-t1", false, func(uint64, error) {}); !errors.Is(err, ErrConflictingDecision) {
		t.Fatalf("conflicting decision: %v", err)
	}
}

func TestPrepareAbortUninstalls(t *testing.T) {
	e := testEngine(t)
	tbl := mustTable(t, e, usersSchema())
	insertUser(t, e, tbl, 0, 1, "alice", 100)

	tx, _ := e.Begin(0)
	rid, _, err := tx.GetByKey(tbl, 0, I(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Delete(tbl, rid); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Insert(tbl, Row{I(3), S("carol"), I(7)}); err != nil {
		t.Fatal(err)
	}
	prepare(t, tx, "h0-t2")
	if csn := resolve(t, e, "h0-t2", false); csn != 0 {
		t.Fatalf("abort decision returned csn %d", csn)
	}
	snap := snapshotTable(t, e, "users")
	if snap[1][1].(int64) != 100 {
		t.Fatalf("aborted delete leaked: %v", snap)
	}
	if _, ok := snap[3]; ok {
		t.Fatal("aborted insert leaked")
	}
	// The lock is released: a new writer succeeds.
	tx2, _ := e.Begin(1)
	rid2, _, err := tx2.GetByKey(tbl, 0, I(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := tx2.Update(tbl, rid2, Row{I(1), S("alice"), I(101)}); err != nil {
		t.Fatal(err)
	}
	commit(t, tx2)
	if st, _ := e.TxnStatus("h0-t2"); st != TxnAborted {
		t.Fatalf("status after abort: %v", st)
	}
	// Presumed abort: aborting an unknown gtid is a no-op, committing fails.
	done := false
	if err := e.Resolve("nope", false, func(uint64, error) { done = true }); err != nil || !done {
		t.Fatalf("presumed abort of unknown gtid: %v done=%v", err, done)
	}
	if err := e.Resolve("nope", true, func(uint64, error) {}); !errors.Is(err, ErrUnknownGTID) {
		t.Fatalf("commit of unknown gtid: %v", err)
	}
}

func TestReadOnlyPrepareVotes(t *testing.T) {
	e := testEngine(t)
	tbl := mustTable(t, e, usersSchema())
	insertUser(t, e, tbl, 0, 1, "alice", 100)
	tx, _ := e.Begin(0)
	if _, _, err := tx.GetByKey(tbl, 0, I(1)); err != nil {
		t.Fatal(err)
	}
	ro, err := tx.Prepare("h0-ro")
	if err != nil || !ro {
		t.Fatalf("read-only prepare: ro=%v err=%v", ro, err)
	}
	// No decision owed; the gtid is unknown.
	if st, _ := e.TxnStatus("h0-ro"); st != TxnUnknown {
		t.Fatalf("read-only prepare left state: %v", st)
	}
}

// TestInDoubtSurvivesRecovery is the core crash-window contract: a prepare
// with no decision recovers as an in-doubt transaction that still holds its
// write locks and still resolves either way.
func TestInDoubtSurvivesRecovery(t *testing.T) {
	for _, decide := range []string{"commit", "abort"} {
		t.Run(decide, func(t *testing.T) {
			e := testEngine(t)
			tbl := mustTable(t, e, usersSchema())
			insertUser(t, e, tbl, 0, 1, "alice", 100)
			insertUser(t, e, tbl, 0, 2, "bob", 200)

			tx, _ := e.Begin(0)
			rid, _, err := tx.GetByKey(tbl, 0, I(1))
			if err != nil {
				t.Fatal(err)
			}
			if err := tx.Update(tbl, rid, Row{I(1), S("alice"), I(111)}); err != nil {
				t.Fatal(err)
			}
			if _, err := tx.Insert(tbl, Row{I(9), S("ivan"), I(9)}); err != nil {
				t.Fatal(err)
			}
			rid2, _, err := tx.GetByKey(tbl, 0, I(2))
			if err != nil {
				t.Fatal(err)
			}
			if err := tx.Delete(tbl, rid2); err != nil {
				t.Fatal(err)
			}
			prepare(t, tx, "h0-crash")

			e2, stats := recoverEngine(t, e, RecoverOptions{ReplayThreads: 2})
			if stats.InDoubt != 1 {
				t.Fatalf("recovered in-doubt count: %d", stats.InDoubt)
			}
			if got := e2.InDoubt(); len(got) != 1 || got[0] != "h0-crash" {
				t.Fatalf("in-doubt after recovery: %v", got)
			}
			// Locks are held again.
			snap := snapshotTable(t, e2, "users")
			if snap[1][1].(int64) != 100 || snap[2][1].(int64) != 200 {
				t.Fatalf("in-doubt writes leaked after recovery: %v", snap)
			}
			tx2, _ := e2.Begin(1)
			tblv, err := e2.Table("users")
			if err != nil {
				t.Fatal(err)
			}
			ridB, _, err := tx2.GetByKey(tblv, 0, I(1))
			if err != nil {
				t.Fatal(err)
			}
			if err := tx2.Update(tblv, ridB, Row{I(1), S("alice"), I(777)}); !errors.Is(err, ErrConflict) {
				t.Fatalf("in-doubt lock not held after recovery: %v", err)
			}

			wantCommit := decide == "commit"
			csn := resolve(t, e2, "h0-crash", wantCommit)
			snap = snapshotTable(t, e2, "users")
			if wantCommit {
				if csn == 0 {
					t.Fatal("commit csn 0")
				}
				if snap[1][1].(int64) != 111 || snap[9][1].(int64) != 9 {
					t.Fatalf("commit after recovery not applied: %v", snap)
				}
				if _, ok := snap[2]; ok {
					t.Fatalf("committed delete not applied: %v", snap)
				}
			} else {
				if snap[1][1].(int64) != 100 || snap[2][1].(int64) != 200 {
					t.Fatalf("abort after recovery leaked writes: %v", snap)
				}
				if _, ok := snap[9]; ok {
					t.Fatal("aborted insert leaked after recovery")
				}
			}

			// The decision itself survives ANOTHER crash.
			e3, _ := recoverEngine(t, e2, RecoverOptions{ReplayThreads: 2})
			st, gotCSN := e3.TxnStatus("h0-crash")
			if wantCommit && (st != TxnCommitted || gotCSN != csn) {
				t.Fatalf("decision lost across second recovery: %v csn=%d want %d", st, gotCSN, csn)
			}
			if !wantCommit && st != TxnAborted {
				t.Fatalf("abort decision lost across second recovery: %v", st)
			}
			snap3 := snapshotTable(t, e3, "users")
			if fmt.Sprint(snap3) != fmt.Sprint(snap) {
				t.Fatalf("state diverged across second recovery:\n  %v\n  %v", snap3, snap)
			}
		})
	}
}

// TestDecidedTwoPCSurvivesCheckpoint: a checkpoint taken after the decision
// must cover (or fence correctly around) 2PC writes, and an undecided
// prepare must survive a checkpoint + recovery cycle.
func TestTwoPCAcrossCheckpoint(t *testing.T) {
	e := testEngine(t)
	tbl := mustTable(t, e, usersSchema())
	insertUser(t, e, tbl, 0, 1, "alice", 100)

	// One committed, one in-doubt, then checkpoint, then crash.
	tx, _ := e.Begin(0)
	if _, err := tx.Insert(tbl, Row{I(10), S("pre"), I(10)}); err != nil {
		t.Fatal(err)
	}
	prepare(t, tx, "h0-done")
	resolve(t, e, "h0-done", true)

	tx2, _ := e.Begin(1)
	if _, err := tx2.Insert(tbl, Row{I(11), S("pending"), I(11)}); err != nil {
		t.Fatal(err)
	}
	prepare(t, tx2, "h0-open")

	if _, err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// More traffic after the checkpoint.
	insertUser(t, e, tbl, 2, 12, "post", 12)

	e2, _ := recoverEngine(t, e, RecoverOptions{ReplayThreads: 2})
	snap := snapshotTable(t, e2, "users")
	if snap[10][1].(int64) != 10 || snap[12][1].(int64) != 12 {
		t.Fatalf("checkpointed 2PC commit lost: %v", snap)
	}
	if _, ok := snap[11]; ok {
		t.Fatal("undecided prepare visible after recovery")
	}
	if st, _ := e2.TxnStatus("h0-done"); st != TxnCommitted {
		t.Fatalf("decided status lost across checkpointed recovery: %v", st)
	}
	if got := e2.InDoubt(); len(got) != 1 || got[0] != "h0-open" {
		t.Fatalf("in-doubt across checkpoint: %v", got)
	}
	resolve(t, e2, "h0-open", true)
	snap = snapshotTable(t, e2, "users")
	if snap[11][1].(int64) != 11 {
		t.Fatalf("late commit not applied: %v", snap)
	}
}
