package core

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// Follower catch-up across full compaction. CompactFull fences the sealed
// segment set, rewrites live versions into fresh segments, and drops the old
// ones -- including segments a mid-catch-up follower still holds scan
// progress for. The follower must observe wal.ErrSegmentDropped, forget its
// per-segment offset, restart from the refreshed directory, and converge
// with zero lost rows (the rewrites carry their original CSNs, so the
// newest-CSN-wins apply discipline makes the re-scan idempotent).

// TestReplicaCatchUpAcrossCompactFull forces the race deterministically:
// the test hook fires between the follower's directory refresh and its
// first segment scan, and runs a full primary-side compaction right there.
// Every sealed segment in the follower's (now stale) directory view is gone
// by the time the scan opens it.
func TestReplicaCatchUpAcrossCompactFull(t *testing.T) {
	primary := testEngine(t, func(c *Config) { c.SegmentSize = 4096 })
	tbl := mustTable(t, primary, usersSchema())
	for i := int64(0); i < 100; i++ {
		insertUser(t, primary, tbl, int(i%4), i, "seed", i)
	}

	rep, _, err := OpenReplica(Config{Service: primary.Service(), Workers: 2, SegmentSize: 4096},
		primary.ManifestID(), RecoverOptions{ReplayThreads: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	if _, err := rep.CatchUp(); err != nil {
		t.Fatal(err)
	}

	// More writes after the replica spawned: with 4 KiB segments these
	// rotate through several fresh segments the replica is NOT fenced on,
	// so the next catch-up records per-segment progress for them.
	for i := int64(100); i < 300; i++ {
		insertUser(t, primary, tbl, int(i%4), i, "live", i*2)
	}
	// A few updates and a delete so compaction rewrites version chains,
	// not just single inserts.
	for i := int64(0); i < 10; i++ {
		tx, err := primary.Begin(0)
		if err != nil {
			t.Fatal(err)
		}
		rid, _, err := tx.GetByKey(tbl, 0, I(i))
		if err != nil {
			t.Fatal(err)
		}
		if i == 3 {
			if err := tx.Delete(tbl, rid); err != nil {
				t.Fatal(err)
			}
		} else if err := tx.Update(tbl, rid, Row{I(i), S("touched"), I(i + 1000)}); err != nil {
			t.Fatal(err)
		}
		commit(t, tx)
	}
	if _, err := rep.CatchUp(); err != nil {
		t.Fatal(err)
	}

	// A third write wave with NO catch-up in between: it appends into (and
	// seals past) segments the replica holds partial progress on. A fully
	// caught-up segment early-returns its scan without reading, so only
	// partial progress makes the next pass actually touch the dropped
	// backing PLog mid-scan.
	for i := int64(300); i < 500; i++ {
		insertUser(t, primary, tbl, int(i%4), i, "tail", i*3)
	}

	// Snapshot the follower's progress table and the primary's segment set
	// before the compaction so we can prove the dropped-segment path ran.
	rep.mu.Lock()
	preApplied := make(map[uint16]int64, len(rep.applied))
	for seg, off := range rep.applied {
		preApplied[seg] = off
	}
	rep.mu.Unlock()
	segsBefore := make(map[uint16]bool)
	for _, s := range primary.log.Segments() {
		segsBefore[s] = true
	}

	// Arm the hook: the first segment scan of the next CatchUp pass runs a
	// full compaction on the primary. The pass's directory view predates
	// the drop, so the scans that follow hit the deleted backing PLogs.
	var once sync.Once
	var stats CompactionStats
	var cerr error
	testHookBeforeSegScan = func(uint16) {
		once.Do(func() { stats, cerr = primary.CompactFull() })
	}
	defer func() { testHookBeforeSegScan = nil }()

	if _, err := rep.CatchUp(); err != nil {
		t.Fatalf("catch-up across compaction: %v", err)
	}
	testHookBeforeSegScan = nil
	if cerr != nil {
		t.Fatalf("compaction: %v", cerr)
	}
	if stats.SegmentsDropped == 0 {
		t.Fatal("compaction dropped no segments; test exercised nothing")
	}

	// The ErrSegmentDropped branch deletes the segment's progress entry;
	// a successful scan would have advanced it instead. At least one
	// segment we held progress on must have been dropped and forgotten.
	segsAfter := make(map[uint16]bool)
	for _, s := range primary.log.Segments() {
		segsAfter[s] = true
	}
	rep.mu.Lock()
	forgotten := 0
	for seg := range preApplied {
		if segsBefore[seg] && !segsAfter[seg] {
			if _, still := rep.applied[seg]; !still {
				forgotten++
			}
		}
	}
	rep.mu.Unlock()
	if forgotten == 0 {
		t.Fatal("no dropped segment was forgotten; ErrSegmentDropped path not exercised")
	}

	// Restart from the directory: subsequent passes pick up the rewrite
	// segments and converge with zero lost rows.
	for i := 0; i < 50; i++ {
		n, err := rep.CatchUp()
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
	}
	want := snapshotTable(t, primary, "users")
	got := snapshotTable(t, rep.Engine(), "users")
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("replica diverged after compaction: %d rows vs primary %d", len(got), len(want))
	}
	if len(want) != 499 { // 500 inserts, one delete
		t.Fatalf("primary has %d rows, want 499", len(want))
	}
}

// TestReplicaCompactionSoak races a continuous writer, a compaction loop,
// and a follower catch-up loop (seeded; run under -race). CatchUp must never
// surface an error -- dropped segments are handled internally -- and once
// the dust settles the replica must hold exactly the primary's rows.
func TestReplicaCompactionSoak(t *testing.T) {
	const seedRows, liveRows = 200, 1500

	primary := testEngine(t, func(c *Config) { c.SegmentSize = 8192; c.Workers = 8 })
	tbl := mustTable(t, primary, usersSchema())
	for i := int64(0); i < seedRows; i++ {
		insertUser(t, primary, tbl, int(i%4), i, "seed", i)
	}
	rep, _, err := OpenReplica(Config{Service: primary.Service(), Workers: 2, SegmentSize: 8192},
		primary.ManifestID(), RecoverOptions{ReplayThreads: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()

	stop := make(chan struct{})
	writerDone := make(chan struct{})
	var wg sync.WaitGroup

	// Writer: worker 5 exclusively, seeded jitter in the values so reruns
	// are reproducible.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(writerDone)
		rng := rand.New(rand.NewSource(0x5eed))
		for i := int64(seedRows); i < seedRows+liveRows; i++ {
			tx, err := primary.Begin(5)
			if err != nil {
				t.Errorf("writer begin: %v", err)
				return
			}
			if _, err := tx.Insert(tbl, Row{I(i), S(fmt.Sprintf("w%d", rng.Intn(1000))), I(i)}); err != nil {
				t.Errorf("writer insert %d: %v", i, err)
				tx.Abort()
				return
			}
			if err := tx.Commit(); err != nil {
				t.Errorf("writer commit %d: %v", i, err)
				return
			}
		}
	}()

	// Compactor: full compactions back-to-back while the writer runs, so
	// segments the follower is mid-scan on keep vanishing.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := primary.CompactFull(); err != nil && !errors.Is(err, ErrClosed) {
				t.Errorf("compact: %v", err)
				return
			}
		}
	}()

	// Follower: catch up continuously until the writer finishes.
loop:
	for {
		select {
		case <-writerDone:
			break loop
		default:
		}
		if _, err := rep.CatchUp(); err != nil {
			t.Fatalf("catch-up during soak: %v", err)
		}
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}

	// Quiesce: one final compaction, then drain until two consecutive
	// passes apply nothing.
	if _, err := primary.CompactFull(); err != nil {
		t.Fatal(err)
	}
	idle := 0
	for i := 0; i < 200 && idle < 2; i++ {
		n, err := rep.CatchUp()
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			idle++
		} else {
			idle = 0
		}
	}
	want := snapshotTable(t, primary, "users")
	got := snapshotTable(t, rep.Engine(), "users")
	if len(want) != seedRows+liveRows {
		t.Fatalf("primary has %d rows, want %d", len(want), seedRows+liveRows)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("replica lost rows across compactions: %d vs primary %d", len(got), len(want))
	}
}
