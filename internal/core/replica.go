package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"hiengine/internal/srss"
	"hiengine/internal/wal"
)

// Read-only replicas (Section 3.1): additional compute-side instances can
// be spawned on demand by loading state from the shared log. A replica
// recovers from the primary's manifest, opens the log read-only, and then
// follows it: CatchUp scans segments appended by the primary since the last
// call and applies them with the same newest-CSN-wins discipline as
// recovery. Replica freshness is whatever the catch-up cadence makes it --
// the paper's point that applications not needing high freshness can run
// cheap replicas.

// ErrReadOnlyReplica is returned for write operations on a replica.
var ErrReadOnlyReplica = errors.New("core: engine is a read-only replica")

// ErrStaleEpoch is returned when a node refuses work because a newer
// primary epoch than its own has been observed: the caller is talking to
// (or is) the losing side of a failover and must rediscover the current
// primary rather than retry here.
var ErrStaleEpoch = errors.New("core: stale primary epoch")

// Replica is a read-only follower of a primary engine sharing the same
// SRSS deployment.
type Replica struct {
	e *Engine

	mu       sync.Mutex
	applied  map[uint16]int64 // segment -> next unread offset
	fenced   map[uint16]bool  // segments covered by the recovery checkpoint
	catalog  map[uint32]*Table
	maxCSN   uint64
	manifest srss.PLogID // current manifest (the primary migrates it; TrackManifest follows)

	// pendPrep buffers OpPrepare records seen while following, keyed by
	// gtid: their embedded writes apply only when the matching OpDecide
	// ships (commit) or are dropped (abort). Prepares still undecided at
	// promotion are adopted as in-doubt transactions.
	pendPrep map[string]replPrepare
	// pendForget holds gtids whose OpForget shipped before this follower
	// consumed both of the gtid's 2PC records (the prepare rides a
	// different log stream than the decision, so a forget can outrun it in
	// segment-scan order). The entry is dropped once prepare and decision
	// are both accounted for.
	pendForget map[string]bool
}

// replPrepare is one buffered prepare record on a follower.
type replPrepare struct {
	addr    wal.Addr
	payload []byte
}

// OpenReplica spawns a read-only replica from the primary's manifest. The
// replica shares the primary's SRSS service (the shared log is the state
// transfer medium); it creates no segments and never writes.
func OpenReplica(cfg Config, manifestID srss.PLogID, opt RecoverOptions) (*Replica, *RecoveryStats, error) {
	opt.readOnly = true
	e, stats, err := Recover(cfg, manifestID, opt)
	if err != nil {
		return nil, nil, err
	}
	r := &Replica{
		e:          e,
		applied:    make(map[uint16]int64),
		fenced:     make(map[uint16]bool),
		catalog:    make(map[uint32]*Table),
		maxCSN:     stats.MaxCSN,
		pendPrep:   make(map[string]replPrepare),
		pendForget: make(map[string]bool),
	}
	for _, seg := range stats.fenced {
		r.fenced[seg] = true
	}
	e.mu.RLock()
	for id, t := range e.tablesByID {
		r.catalog[id] = t
	}
	e.mu.RUnlock()
	r.manifest = manifestID
	return r, stats, nil
}

// TrackManifest records the primary's current manifest PLog ID so catalog
// refreshes read the live manifest even after the primary migrates it to a
// fresh PLog. Followers call this once per poll from the hello response.
func (r *Replica) TrackManifest(id srss.PLogID) {
	if id.IsZero() {
		return
	}
	r.mu.Lock()
	r.manifest = id
	r.mu.Unlock()
}

// refreshCatalogLocked re-scans the manifest for table records the replica
// has not built yet -- DDL that ran on the primary after this replica
// recovered. New tables are registered in the engine catalog (so reads and
// a future promotion see them) and in the replay catalog. Requires r.mu.
func (r *Replica) refreshCatalogLocked() (int, error) {
	p, err := r.e.svc.Open(r.manifest)
	if err != nil {
		return 0, err
	}
	added := 0
	e := r.e
	err = scanManifest(p, func(typ byte, payload []byte) error {
		if typ != manifestTable {
			return nil
		}
		id64, n := binary.Uvarint(payload)
		if n <= 0 {
			return errors.New("core: corrupt table manifest record")
		}
		id := uint32(id64)
		if _, known := r.catalog[id]; known {
			return nil
		}
		s, err := unmarshalSchema(payload[n:])
		if err != nil {
			return err
		}
		e.mu.Lock()
		t, dup := e.tablesByID[id]
		if !dup {
			if t, err = e.buildTable(id, s); err != nil {
				e.mu.Unlock()
				return err
			}
			e.tables[s.Name] = t
			e.tablesByID[id] = t
			if id > e.nextTable {
				e.nextTable = id
			}
			added++
		}
		e.mu.Unlock()
		r.catalog[id] = t
		return nil
	})
	return added, err
}

// Engine returns the replica's engine for read transactions. Writes fail
// with ErrReadOnlyReplica.
func (r *Replica) Engine() *Engine { return r.e }

// Close shuts the replica down.
func (r *Replica) Close() { r.e.Close() }

// AppliedCSN returns the highest commit sequence number applied so far (the
// replica's freshness horizon).
func (r *Replica) AppliedCSN() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.maxCSN
}

// testHookBeforeSegScan, when set, runs before CatchUp scans each segment.
// Tests use it to interleave a primary-side compaction between the
// follower's directory refresh and its segment scan -- the window in which
// a fenced-and-rewritten segment is dropped out from under a mid-catch-up
// follower, forcing the wal.ErrSegmentDropped recovery path below.
var testHookBeforeSegScan func(seg uint16)

// CatchUp scans the shared log for records appended since the last call and
// applies them. Returns the number of records applied. Concurrent reads on
// the replica observe a consistent cut: versions become visible atomically
// per record via the same CAS discipline as recovery.
func (r *Replica) CatchUp() (int64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	// Pick up segments the primary created since we last looked.
	if err := r.e.log.RefreshDirectory(); err != nil {
		return 0, err
	}
	var applied int64
	refreshed := false
	for _, seg := range r.e.log.Segments() {
		if r.fenced[seg] {
			continue
		}
		if h := testHookBeforeSegScan; h != nil {
			h(seg)
		}
		from := r.applied[seg]
		next, err := r.e.log.ScanSegmentFrom(seg, from, func(addr wal.Addr, rec wal.Record) bool {
			// 2PC records carry table 0 and must be handled before the
			// catalog check below (table 0 is never known; the scan would
			// stall on them forever).
			if rec.Op == wal.OpPrepare || rec.Op == wal.OpDecide || rec.Op == wal.OpForget {
				if r.applyTwoPCFollower(addr, rec, &refreshed) {
					applied++
				}
				if rec.CSN > r.maxCSN {
					r.maxCSN = rec.CSN
				}
				return true
			}
			if _, known := r.catalog[rec.Table]; !known {
				// DDL ran on the primary after this replica recovered.
				// The manifest 'T' record precedes any WAL record for the
				// table, so one refresh per pass resolves it -- unless the
				// manifest bytes simply have not shipped yet, in which
				// case stop HERE (offset stays at this record) and retry
				// next pass. Skipping would silently drop the row and
				// advance the watermark over an unapplied commit.
				if !refreshed {
					refreshed = true
					_, _ = r.refreshCatalogLocked()
				}
				if _, known = r.catalog[rec.Table]; !known {
					return false
				}
			}
			if r.applyFollower(addr, rec) {
				applied++
			}
			if rec.CSN > r.maxCSN {
				r.maxCSN = rec.CSN
			}
			return true
		})
		if err != nil {
			if errors.Is(err, wal.ErrSegmentDropped) {
				// The primary dropped this segment (log compaction) under
				// us. Everything it held is covered by a newer checkpoint;
				// forget our progress and restart from the directory on the
				// next pass.
				delete(r.applied, seg)
				continue
			}
			return applied, err
		}
		r.applied[seg] = next
	}
	r.e.advanceClock(r.maxCSN)
	return applied, nil
}

// Promote transitions the replica into a writable primary engine -- the
// paper's "promotion = finish replay, then start writing". The shipped
// log's tail is sealed and group-commit streams start on fresh segments
// (wal.Manager.Promote); the background repairer starts if configured.
// observed is the highest foreign primary epoch seen while following; the
// new lineage's epoch is one past the max of it and the local (recovered)
// epoch, persisted in the manifest BEFORE the first write is admitted so a
// crash right after promotion still recovers into the new lineage.
// Idempotent: promoting an already-writable replica returns the current
// epoch. The caller must have stopped follower application and drained a
// final CatchUp first.
func (r *Replica) Promote(observed uint64) (uint64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.e
	if e.closed.Load() {
		return 0, ErrClosed
	}
	if !e.readOnly.Load() {
		return e.Epoch(), nil
	}
	if err := e.log.Promote(func(id srss.PLogID) error {
		return e.appendManifest(manifestWAL, id[:])
	}); err != nil {
		return 0, err
	}
	epoch := e.epoch.Load()
	if observed > epoch {
		epoch = observed
	}
	epoch++
	if err := e.appendManifest(manifestEpoch, binary.AppendUvarint(nil, epoch)); err != nil {
		return 0, err
	}
	e.epoch.Store(epoch)
	// Adopt prepares that shipped while following but whose decisions never
	// arrived: the new primary re-acquires their write locks as in-doubt
	// transactions so the coordinator can resolve them here (recovery-time
	// prepares were already reconstructed by OpenReplica's Recover).
	for gtid, p := range r.pendPrep {
		if err := e.reconstructInDoubt(gtid, p.addr, p.payload); err != nil {
			return 0, fmt.Errorf("core: adopting in-doubt %q at promotion: %w", gtid, err)
		}
		delete(r.pendPrep, gtid)
	}
	if e.cfg.RepairInterval > 0 && e.stopRepair == nil {
		e.stopRepair = e.svc.StartRepairer(e.cfg.RepairInterval)
	}
	e.readOnly.Store(false)
	return epoch, nil
}

// applyTwoPCFollower applies one 2PC record on the follower. The log is
// striped per worker -- decisions and forgets ride worker 0's stream while
// prepares ride the session worker's stream -- so within one CatchUp pass
// (ascending segment order) a gtid's records can arrive in ANY interleaving:
// prepare-then-decide, decide-then-prepare, even decide-then-forget-then-
// prepare. Application therefore mirrors recovery's order-independent
// matching instead of assuming prepare-first:
//
//   - A prepare with no noted state is buffered (its writes must not become
//     visible before the decision).
//   - A prepare whose decision was already noted applies its embedded writes
//     immediately (commit) or is dropped (abort) -- never buffered, so a
//     client-acked commit is never stranded invisible in pendPrep nor
//     resurrected as in-doubt at promotion.
//   - Decisions resolve a recovery-reconstructed in-doubt transaction or a
//     buffered prepare, and are always remembered so a promoted follower can
//     answer TxnStatus.
//   - Forgets drop the noted entry, deferring via pendForget until both of
//     the gtid's records have been consumed.
//
// Requires r.mu.
func (r *Replica) applyTwoPCFollower(addr wal.Addr, rec wal.Record, refreshed *bool) bool {
	e := r.e
	switch rec.Op {
	case wal.OpPrepare:
		gtid, _, err := decodePreparePayload(rec.Payload)
		if err != nil {
			return false
		}
		e.pendMu.Lock()
		entry := e.pend2pc[gtid]
		e.pendMu.Unlock()
		if entry == nil {
			r.pendPrep[gtid] = replPrepare{addr: addr, payload: append([]byte(nil), rec.Payload...)}
			return true
		}
		// The decision outran the prepare (noteDecision installed a
		// decision-only entry), or recovery already reconstructed this
		// prepare. Attach the prepare to the entry; apply the embedded
		// writes now if a commit was noted without them.
		entry.mu.Lock()
		applyNow := entry.decided && !entry.havePrep && entry.commit
		csn := entry.csn
		if entry.decided && !entry.havePrep {
			entry.havePrep = true
			entry.prepSeg = addr.Segment()
		}
		entry.mu.Unlock()
		if applyNow {
			r.applyPreparedWrites(addr, rec.Payload, csn, refreshed)
		}
		r.forgetIfSettled(gtid)
		return true
	case wal.OpDecide:
		gtid, commit, err := decodeDecidePayload(rec.Payload)
		if err != nil {
			return false
		}
		e.pendMu.Lock()
		entry := e.pend2pc[gtid]
		e.pendMu.Unlock()
		if entry != nil {
			// Recovery reconstructed this prepare as an in-doubt
			// transaction; deliver the decision to it directly.
			entry.mu.Lock()
			if !entry.decided {
				entry.commit = commit
				entry.csn = rec.CSN
				entry.decSeg = addr.Segment()
				e.applyDecisionLocked(entry)
				entry.decided = true
			}
			entry.mu.Unlock()
			r.forgetIfSettled(gtid)
			return true
		}
		p, buffered := r.pendPrep[gtid]
		if buffered {
			delete(r.pendPrep, gtid)
			if commit {
				r.applyPreparedWrites(p.addr, p.payload, rec.CSN, refreshed)
			}
		}
		e.noteDecision(gtid, commit, rec.CSN, addr.Segment(), p.addr.Segment(), buffered)
		r.forgetIfSettled(gtid)
		return true
	case wal.OpForget:
		gtid, err := decodeGTIDPayload(rec.Payload)
		if err != nil {
			return false
		}
		r.pendForget[gtid] = true
		r.forgetIfSettled(gtid)
		return true
	}
	return false
}

// applyPreparedWrites applies the writes embedded in an OpPrepare record's
// payload at the decision CSN, with the same catalog-refresh discipline as
// the plain-record path. addr is the prepare record's address. Requires r.mu.
func (r *Replica) applyPreparedWrites(addr wal.Addr, payload []byte, csn uint64, refreshed *bool) {
	_, body, err := decodePreparePayload(payload)
	if err != nil {
		return
	}
	embBase := prepHeaderLen(len(payload)) + (len(payload) - len(body))
	_ = forEachEmbedded(body, func(off int, emb wal.Record) error {
		if _, known := r.catalog[emb.Table]; !known && !*refreshed {
			*refreshed = true
			_, _ = r.refreshCatalogLocked()
		}
		emb.CSN = csn
		r.applyFollower(addr.Add(uint32(embBase+off)), emb)
		return nil
	})
}

// forgetIfSettled drops a gtid's pend2pc entry if an OpForget has shipped
// for it AND both of its 2PC records have been consumed (decided with the
// prepare accounted for). Forgetting earlier would let the still-unscanned
// record re-enter the empty-state paths -- a late prepare would buffer
// forever, exactly the bug the order-independent matching exists to prevent.
// Requires r.mu.
func (r *Replica) forgetIfSettled(gtid string) {
	if !r.pendForget[gtid] {
		return
	}
	e := r.e
	e.pendMu.Lock()
	entry := e.pend2pc[gtid]
	e.pendMu.Unlock()
	if entry == nil {
		delete(r.pendForget, gtid)
		return
	}
	entry.mu.Lock()
	settled := entry.decided && entry.havePrep
	entry.mu.Unlock()
	if !settled {
		return
	}
	e.pendMu.Lock()
	if e.pend2pc[gtid] == entry {
		delete(e.pend2pc, gtid)
	}
	e.pendMu.Unlock()
	delete(r.pendForget, gtid)
}

// applyFollower applies one log record on the replica: newest-CSN-wins into
// the PIA plus index maintenance (recovery defers index work to a bulk
// rebuild; a live follower must keep indexes current incrementally).
func (r *Replica) applyFollower(addr wal.Addr, rec wal.Record) bool {
	t, ok := r.catalog[rec.Table]
	if !ok {
		// Unreachable from CatchUp (it refreshes the catalog and halts
		// the scan on unknown tables before applying); kept as a guard.
		return false
	}
	if !applyReplay(map[uint32]*Table{rec.Table: t}, addr, rec) {
		return false
	}
	rid := RID(rec.RID)
	head := t.rows.Get(rid)
	switch rec.Op {
	case wal.OpDelete:
		// Clear the tombstone stub (epoch preserved), mirroring the
		// recovery post-pass.
		if head != nil && head.tomb {
			if ok, _ := t.rows.CompareAndSwap(rid, head, nil); ok {
				_ = t.rows.Delete(rid)
			}
		}
	default:
		row, err := DecodeRow(rec.Payload)
		if err != nil {
			return true // count as applied; the index entry is skipped
		}
		for i := 0; i < len(t.indexes); i++ {
			k, err := t.indexKeyAppend(nil, i, row, rid)
			if err != nil {
				continue
			}
			_ = t.indexes[i].Insert(k, uint64(rid))
		}
		if rec.Op == wal.OpInsert {
			t.liveRows.Add(1)
		}
	}
	return true
}
