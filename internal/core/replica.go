package core

import (
	"errors"
	"sync"

	"hiengine/internal/srss"
	"hiengine/internal/wal"
)

// Read-only replicas (Section 3.1): additional compute-side instances can
// be spawned on demand by loading state from the shared log. A replica
// recovers from the primary's manifest, opens the log read-only, and then
// follows it: CatchUp scans segments appended by the primary since the last
// call and applies them with the same newest-CSN-wins discipline as
// recovery. Replica freshness is whatever the catch-up cadence makes it --
// the paper's point that applications not needing high freshness can run
// cheap replicas.

// ErrReadOnlyReplica is returned for write operations on a replica.
var ErrReadOnlyReplica = errors.New("core: engine is a read-only replica")

// Replica is a read-only follower of a primary engine sharing the same
// SRSS deployment.
type Replica struct {
	e *Engine

	mu      sync.Mutex
	applied map[uint16]int64 // segment -> next unread offset
	fenced  map[uint16]bool  // segments covered by the recovery checkpoint
	catalog map[uint32]*Table
	maxCSN  uint64
}

// OpenReplica spawns a read-only replica from the primary's manifest. The
// replica shares the primary's SRSS service (the shared log is the state
// transfer medium); it creates no segments and never writes.
func OpenReplica(cfg Config, manifestID srss.PLogID, opt RecoverOptions) (*Replica, *RecoveryStats, error) {
	opt.readOnly = true
	e, stats, err := Recover(cfg, manifestID, opt)
	if err != nil {
		return nil, nil, err
	}
	r := &Replica{
		e:       e,
		applied: make(map[uint16]int64),
		fenced:  make(map[uint16]bool),
		catalog: make(map[uint32]*Table),
		maxCSN:  stats.MaxCSN,
	}
	for _, seg := range stats.fenced {
		r.fenced[seg] = true
	}
	e.mu.RLock()
	for id, t := range e.tablesByID {
		r.catalog[id] = t
	}
	e.mu.RUnlock()
	return r, stats, nil
}

// Engine returns the replica's engine for read transactions. Writes fail
// with ErrReadOnlyReplica.
func (r *Replica) Engine() *Engine { return r.e }

// Close shuts the replica down.
func (r *Replica) Close() { r.e.Close() }

// AppliedCSN returns the highest commit sequence number applied so far (the
// replica's freshness horizon).
func (r *Replica) AppliedCSN() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.maxCSN
}

// CatchUp scans the shared log for records appended since the last call and
// applies them. Returns the number of records applied. Concurrent reads on
// the replica observe a consistent cut: versions become visible atomically
// per record via the same CAS discipline as recovery.
func (r *Replica) CatchUp() (int64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	// Pick up segments the primary created since we last looked.
	if err := r.e.log.RefreshDirectory(); err != nil {
		return 0, err
	}
	var applied int64
	for _, seg := range r.e.log.Segments() {
		if r.fenced[seg] {
			continue
		}
		from := r.applied[seg]
		next, err := r.e.log.ScanSegmentFrom(seg, from, func(addr wal.Addr, rec wal.Record) bool {
			if r.applyFollower(addr, rec) {
				applied++
			}
			if rec.CSN > r.maxCSN {
				r.maxCSN = rec.CSN
			}
			return true
		})
		if err != nil {
			if errors.Is(err, wal.ErrSegmentDropped) {
				// The primary dropped this segment (log compaction) under
				// us. Everything it held is covered by a newer checkpoint;
				// forget our progress and restart from the directory on the
				// next pass.
				delete(r.applied, seg)
				continue
			}
			return applied, err
		}
		r.applied[seg] = next
	}
	r.e.advanceClock(r.maxCSN)
	return applied, nil
}

// applyFollower applies one log record on the replica: newest-CSN-wins into
// the PIA plus index maintenance (recovery defers index work to a bulk
// rebuild; a live follower must keep indexes current incrementally).
func (r *Replica) applyFollower(addr wal.Addr, rec wal.Record) bool {
	t, ok := r.catalog[rec.Table]
	if !ok {
		// A table created on the primary after the replica spawned; pick
		// it up from the manifest on the next full refresh. (Catalog DDL
		// following is out of scope; skip its records.)
		return false
	}
	if !applyReplay(map[uint32]*Table{rec.Table: t}, addr, rec) {
		return false
	}
	rid := RID(rec.RID)
	head := t.rows.Get(rid)
	switch rec.Op {
	case wal.OpDelete:
		// Clear the tombstone stub (epoch preserved), mirroring the
		// recovery post-pass.
		if head != nil && head.tomb {
			if ok, _ := t.rows.CompareAndSwap(rid, head, nil); ok {
				_ = t.rows.Delete(rid)
			}
		}
	default:
		row, err := DecodeRow(rec.Payload)
		if err != nil {
			return true // count as applied; the index entry is skipped
		}
		for i := 0; i < len(t.indexes); i++ {
			k, err := t.indexKeyAppend(nil, i, row, rid)
			if err != nil {
				continue
			}
			_ = t.indexes[i].Insert(k, uint64(rid))
		}
		if rec.Op == wal.OpInsert {
			t.liveRows.Add(1)
		}
	}
	return true
}
