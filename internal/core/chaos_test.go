package core

import (
	"errors"
	"testing"

	"hiengine/internal/chaos"
	"hiengine/internal/srss"
)

// TestTornTailRecovery injects a torn replicated write into the final log
// append, crashes the engine, and verifies recovery truncates the invalid
// tail and replays every acknowledged commit.
func TestTornTailRecovery(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		ch := chaos.New(seed)
		svc := srss.New(srss.Config{ComputeNodes: 5, Chaos: ch})
		e, err := Open(Config{Name: "torn-test", Service: svc, Workers: 2, LogStreams: 1, SegmentSize: 1 << 16})
		if err != nil {
			t.Fatal(err)
		}
		tbl := mustTable(t, e, usersSchema())
		for i := int64(0); i < 50; i++ {
			insertUser(t, e, tbl, int(i%2), i, "acked", i)
		}
		want := snapshotTable(t, e, "users")

		// Arm the tear for the very next replicated append: the commit's
		// group append is half-replicated when the "process" dies.
		ch.Arm(chaos.Rule{Site: srss.SiteAppendTear, Action: chaos.Tear,
			OnHit: ch.Hits(srss.SiteAppendTear) + 1})
		tx, err := e.Begin(0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tx.Insert(tbl, Row{I(999), S("torn"), I(0)}); err != nil {
			t.Fatal(err)
		}
		if cerr := tx.Commit(); !errors.Is(cerr, chaos.ErrCrashed) {
			t.Fatalf("seed %d: torn commit error = %v, want ErrCrashed", seed, cerr)
		}
		if !e.DurabilityLost() {
			t.Fatalf("seed %d: torn commit did not latch fail-stop", seed)
		}
		e.Close()

		// Restart: clear the crash latch and recover.
		ch.ClearCrash()
		ch.Disarm(srss.SiteAppendTear)
		e2, stats, err := RecoverByName(Config{Name: "torn-test", Service: svc, Workers: 2, LogStreams: 1, SegmentSize: 1 << 16},
			RecoverOptions{ReplayThreads: 2})
		if err != nil {
			t.Fatalf("seed %d: recover: %v", seed, err)
		}
		if stats.TornTails != 1 || stats.TruncatedBytes <= 0 {
			t.Fatalf("seed %d: recovery stats %+v, want 1 torn tail with >0 bytes", seed, stats)
		}
		got := snapshotTable(t, e2, "users")
		if len(got) != len(want) {
			t.Fatalf("seed %d: recovered %d rows, want %d", seed, len(got), len(want))
		}
		for id, w := range want {
			if got[id] != w {
				t.Fatalf("seed %d: row %d: got %v want %v", seed, id, got[id], w)
			}
		}
		// The torn row was never acknowledged; it must not resurrect.
		if _, ok := got[999]; ok {
			t.Fatalf("seed %d: unacknowledged torn insert resurrected", seed)
		}
		// Writable after recovery.
		tbl2, _ := e2.Table("users")
		tx2, err := e2.Begin(0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tx2.Insert(tbl2, Row{I(1000), S("post-recovery"), I(1)}); err != nil {
			t.Fatal(err)
		}
		commit(t, tx2)
		e2.Close()
	}
}

// TestCommitBeginCrashSite: a crash at the head of the commit pipeline
// aborts cleanly -- nothing visible, nothing logged, no fail-stop.
func TestCommitBeginCrashSite(t *testing.T) {
	ch := chaos.New(3)
	svc := srss.New(srss.Config{Chaos: ch})
	e, err := Open(Config{Name: "cb-test", Service: svc, Workers: 2, LogStreams: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	tbl := mustTable(t, e, usersSchema())
	insertUser(t, e, tbl, 0, 1, "before", 1)

	ch.Arm(chaos.Rule{Site: SiteCommitBegin, Action: chaos.Crash,
		OnHit: ch.Hits(SiteCommitBegin) + 1})
	tx, err := e.Begin(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Insert(tbl, Row{I(2), S("crashed"), I(2)}); err != nil {
		t.Fatal(err)
	}
	if cerr := tx.Commit(); !errors.Is(cerr, chaos.ErrCrashed) {
		t.Fatalf("commit error = %v, want ErrCrashed", cerr)
	}
	if e.DurabilityLost() {
		t.Fatal("commit-begin crash latched fail-stop; nothing diverged")
	}
	ch.ClearCrash()
	// The aborted row is invisible; the engine keeps working.
	got := snapshotTable(t, e, "users")
	if len(got) != 1 {
		t.Fatalf("%d rows visible, want 1", len(got))
	}
	insertUser(t, e, tbl, 0, 3, "after", 3)
}

// TestCheckpointMidCrashSite: a crash between checkpoint flushes fails the
// checkpoint; the previous checkpoint stays the recovery anchor and a
// post-restart checkpoint succeeds.
func TestCheckpointMidCrashSite(t *testing.T) {
	ch := chaos.New(4)
	svc := srss.New(srss.Config{Chaos: ch})
	e, err := Open(Config{Name: "ckpt-test", Service: svc, Workers: 2, LogStreams: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	tbl := mustTable(t, e, usersSchema())
	// Enough rows for several 64 KiB image flushes (~10 bytes per entry).
	for i := int64(0); i < 15000; i++ {
		insertUser(t, e, tbl, int(i%2), i, "row-payload-for-checkpoint-size", i)
	}
	first, err := e.Checkpoint()
	if err != nil {
		t.Fatalf("baseline checkpoint: %v", err)
	}
	ch.Arm(chaos.Rule{Site: SiteCheckpointMid, Action: chaos.Crash,
		OnHit: ch.Hits(SiteCheckpointMid) + 1})
	if _, err := e.Checkpoint(); !errors.Is(err, chaos.ErrCrashed) {
		t.Fatalf("mid-crash checkpoint error = %v", err)
	}
	if e.LastCheckpointCSN() != first {
		t.Fatalf("failed checkpoint advanced the anchor: %d != %d", e.LastCheckpointCSN(), first)
	}
	ch.ClearCrash()
	insertUser(t, e, tbl, 0, 20000, "after-crash", 1)
	second, err := e.Checkpoint()
	if err != nil {
		t.Fatalf("checkpoint after restart: %v", err)
	}
	if second <= first {
		t.Fatalf("second checkpoint CSN %d <= first %d", second, first)
	}
}

// TestWalGiveupLatchesFailStop: when the whole compute tier is down, the
// bounded WAL retry gives up and the engine fail-stops with an error
// wrapping srss.ErrNoHealthyNodes.
func TestWalGiveupLatchesFailStop(t *testing.T) {
	svc := srss.New(srss.Config{ComputeNodes: 3})
	e, err := Open(Config{Name: "giveup-test", Service: svc, Workers: 2, LogStreams: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	tbl := mustTable(t, e, usersSchema())
	insertUser(t, e, tbl, 0, 1, "pre", 1)
	for i := 0; i < 3; i++ {
		svc.ComputeNode(i).Fail()
	}
	tx, err := e.Begin(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Insert(tbl, Row{I(2), S("doomed"), I(2)}); err != nil {
		t.Fatal(err)
	}
	cerr := tx.Commit()
	if !errors.Is(cerr, srss.ErrNoHealthyNodes) {
		t.Fatalf("commit with tier down: %v, want wrapped ErrNoHealthyNodes", cerr)
	}
	if !e.DurabilityLost() {
		t.Fatal("WAL giveup did not latch the fail-stop flag")
	}
	if _, err := e.Begin(0); !errors.Is(err, ErrDurabilityLost) {
		t.Fatalf("Begin after giveup: %v, want ErrDurabilityLost", err)
	}
}
