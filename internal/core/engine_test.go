package core

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// usersSchema is the standard test table: id (pk), name, balance, plus a
// non-unique secondary index on name.
func usersSchema() *Schema {
	return &Schema{
		Name: "users",
		Columns: []Column{
			{Name: "id", Kind: KindInt},
			{Name: "name", Kind: KindString},
			{Name: "balance", Kind: KindInt},
		},
		Indexes: []IndexDef{
			{Name: "pk", Columns: []int{0}, Unique: true},
			{Name: "by_name", Columns: []int{1}, Unique: false},
		},
	}
}

func testEngine(t *testing.T, mut ...func(*Config)) *Engine {
	t.Helper()
	cfg := Config{Workers: 16, SegmentSize: 1 << 20, GCEveryNCommits: 4}
	for _, m := range mut {
		m(&cfg)
	}
	e, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

func mustTable(t *testing.T, e *Engine, s *Schema) *Table {
	t.Helper()
	tbl, err := e.CreateTable(s)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func commit(t *testing.T, tx *Txn) {
	t.Helper()
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
}

func insertUser(t *testing.T, e *Engine, tbl *Table, worker int, id int64, name string, bal int64) RID {
	t.Helper()
	tx, err := e.Begin(worker)
	if err != nil {
		t.Fatal(err)
	}
	rid, err := tx.Insert(tbl, Row{I(id), S(name), I(bal)})
	if err != nil {
		t.Fatalf("insert: %v", err)
	}
	commit(t, tx)
	return rid
}

func TestCreateTableValidation(t *testing.T) {
	e := testEngine(t)
	if _, err := e.CreateTable(&Schema{Name: "bad"}); err == nil {
		t.Fatal("empty schema accepted")
	}
	if _, err := e.CreateTable(&Schema{
		Name:    "bad2",
		Columns: []Column{{Name: "a", Kind: KindInt}},
		Indexes: []IndexDef{{Name: "pk", Columns: []int{0}, Unique: false}},
	}); err == nil {
		t.Fatal("non-unique primary accepted")
	}
	mustTable(t, e, usersSchema())
	if _, err := e.CreateTable(usersSchema()); err == nil {
		t.Fatal("duplicate table accepted")
	}
	if _, err := e.Table("users"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Table("ghost"); !errors.Is(err, ErrNoTable) {
		t.Fatalf("ghost lookup: %v", err)
	}
}

func TestInsertGetByRIDAndKey(t *testing.T) {
	e := testEngine(t)
	tbl := mustTable(t, e, usersSchema())
	rid := insertUser(t, e, tbl, 0, 1, "ada", 100)

	tx, _ := e.Begin(0)
	row, err := tx.Get(tbl, rid)
	if err != nil {
		t.Fatal(err)
	}
	if row[0].Int() != 1 || row[1].Str() != "ada" || row[2].Int() != 100 {
		t.Fatalf("row = %v", row)
	}
	rid2, row2, err := tx.GetByKey(tbl, 0, I(1))
	if err != nil || rid2 != rid || row2[1].Str() != "ada" {
		t.Fatalf("GetByKey: %v %v %v", rid2, row2, err)
	}
	if _, _, err := tx.GetByKey(tbl, 0, I(99)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing key: %v", err)
	}
	commit(t, tx)
}

func TestUpdateVisibilityAndSnapshot(t *testing.T) {
	e := testEngine(t)
	tbl := mustTable(t, e, usersSchema())
	rid := insertUser(t, e, tbl, 0, 1, "ada", 100)

	// Reader begins before the update: must keep seeing the old balance.
	reader, _ := e.Begin(1)
	writer, _ := e.Begin(2)
	if err := writer.Update(tbl, rid, Row{I(1), S("ada"), I(250)}); err != nil {
		t.Fatal(err)
	}
	// Uncommitted: invisible to the reader.
	row, err := reader.Get(tbl, rid)
	if err != nil || row[2].Int() != 100 {
		t.Fatalf("reader saw uncommitted data: %v %v", row, err)
	}
	commit(t, writer)
	// Still invisible: snapshot semantics.
	row, err = reader.Get(tbl, rid)
	if err != nil || row[2].Int() != 100 {
		t.Fatalf("snapshot violated: %v %v", row, err)
	}
	commit(t, reader)
	// A fresh transaction sees the new value.
	fresh, _ := e.Begin(1)
	row, err = fresh.Get(tbl, rid)
	if err != nil || row[2].Int() != 250 {
		t.Fatalf("fresh read: %v %v", row, err)
	}
	commit(t, fresh)
}

func TestReadOwnWrites(t *testing.T) {
	e := testEngine(t)
	tbl := mustTable(t, e, usersSchema())
	tx, _ := e.Begin(0)
	rid, err := tx.Insert(tbl, Row{I(1), S("ada"), I(1)})
	if err != nil {
		t.Fatal(err)
	}
	if row, err := tx.Get(tbl, rid); err != nil || row[1].Str() != "ada" {
		t.Fatalf("own insert invisible: %v %v", row, err)
	}
	if err := tx.Update(tbl, rid, Row{I(1), S("ada"), I(2)}); err != nil {
		t.Fatal(err)
	}
	if row, _ := tx.Get(tbl, rid); row[2].Int() != 2 {
		t.Fatal("own update invisible")
	}
	if err := tx.Delete(tbl, rid); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Get(tbl, rid); !errors.Is(err, ErrNotFound) {
		t.Fatal("own delete invisible")
	}
	commit(t, tx)
}

func TestWriteWriteConflictFirstCommitterWins(t *testing.T) {
	e := testEngine(t)
	tbl := mustTable(t, e, usersSchema())
	rid := insertUser(t, e, tbl, 0, 1, "ada", 100)

	t1, _ := e.Begin(1)
	t2, _ := e.Begin(2)
	if err := t1.Update(tbl, rid, Row{I(1), S("ada"), I(200)}); err != nil {
		t.Fatal(err)
	}
	// t2 attempts the same row while t1's write is pending: conflict.
	if err := t2.Update(tbl, rid, Row{I(1), S("ada"), I(300)}); !errors.Is(err, ErrConflict) {
		t.Fatalf("pending-write conflict: %v", err)
	}
	commit(t, t1)

	// A txn that began before t1 committed also conflicts (first
	// committer wins).
	t3, _ := e.Begin(3)
	_ = t3
	t4, _ := e.Begin(2)
	defer t4.Abort()
	// t3 began before t1 committed? No -- begin after. Recreate the case:
	// begin t5 BEFORE a new update commits.
	t5, _ := e.Begin(4)
	t6, _ := e.Begin(5)
	if err := t6.Update(tbl, rid, Row{I(1), S("ada"), I(500)}); err != nil {
		t.Fatal(err)
	}
	commit(t, t6)
	if err := t5.Update(tbl, rid, Row{I(1), S("ada"), I(600)}); !errors.Is(err, ErrConflict) {
		t.Fatalf("first-committer-wins violated: %v", err)
	}
	commit(t, t3)
}

func TestLostUpdatePrevented(t *testing.T) {
	e := testEngine(t)
	tbl := mustTable(t, e, usersSchema())
	rid := insertUser(t, e, tbl, 0, 1, "acct", 100)

	// Two increment transactions on the same snapshot: exactly one wins.
	t1, _ := e.Begin(1)
	t2, _ := e.Begin(2)
	r1, _ := t1.Get(tbl, rid)
	r2, _ := t2.Get(tbl, rid)
	err1 := t1.Update(tbl, rid, Row{I(1), S("acct"), I(r1[2].Int() + 10)})
	if err1 == nil {
		err1 = t1.Commit()
	}
	err2 := t2.Update(tbl, rid, Row{I(1), S("acct"), I(r2[2].Int() + 10)})
	if err2 == nil {
		err2 = t2.Commit()
	}
	if (err1 == nil) == (err2 == nil) {
		t.Fatalf("exactly one increment must win: err1=%v err2=%v", err1, err2)
	}
	check, _ := e.Begin(3)
	row, _ := check.Get(tbl, rid)
	if row[2].Int() != 110 {
		t.Fatalf("balance = %d, want 110", row[2].Int())
	}
	commit(t, check)
}

func TestAbortRollsBack(t *testing.T) {
	e := testEngine(t)
	tbl := mustTable(t, e, usersSchema())
	rid := insertUser(t, e, tbl, 0, 1, "ada", 100)

	tx, _ := e.Begin(1)
	rid2, err := tx.Insert(tbl, Row{I(2), S("bob"), I(50)})
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Update(tbl, rid, Row{I(1), S("ada"), I(999)}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	check, _ := e.Begin(1)
	if _, err := check.Get(tbl, rid2); !errors.Is(err, ErrNotFound) {
		t.Fatal("aborted insert visible")
	}
	if _, _, err := check.GetByKey(tbl, 0, I(2)); !errors.Is(err, ErrNotFound) {
		t.Fatal("aborted insert visible through index")
	}
	row, err := check.Get(tbl, rid)
	if err != nil || row[2].Int() != 100 {
		t.Fatalf("aborted update leaked: %v %v", row, err)
	}
	commit(t, check)

	// The primary key is reusable after the abort.
	insertUser(t, e, tbl, 1, 2, "bob2", 51)
	check2, _ := e.Begin(1)
	if _, row, err := check2.GetByKey(tbl, 0, I(2)); err != nil || row[1].Str() != "bob2" {
		t.Fatalf("key not reusable after abort: %v %v", row, err)
	}
	commit(t, check2)
}

func TestDuplicateKeyRejected(t *testing.T) {
	e := testEngine(t)
	tbl := mustTable(t, e, usersSchema())
	insertUser(t, e, tbl, 0, 1, "ada", 100)
	tx, _ := e.Begin(1)
	if _, err := tx.Insert(tbl, Row{I(1), S("imposter"), I(0)}); !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("duplicate insert: %v", err)
	}
	// failWith aborted the txn.
	if _, err := tx.Insert(tbl, Row{I(3), S("x"), I(0)}); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("txn not aborted after duplicate: %v", err)
	}
}

func TestDeleteThenReinsertSameKey(t *testing.T) {
	e := testEngine(t)
	tbl := mustTable(t, e, usersSchema())
	rid := insertUser(t, e, tbl, 0, 1, "ada", 100)

	tx, _ := e.Begin(1)
	if err := tx.Delete(tbl, rid); err != nil {
		t.Fatal(err)
	}
	commit(t, tx)

	check, _ := e.Begin(1)
	if _, err := check.Get(tbl, rid); !errors.Is(err, ErrNotFound) {
		t.Fatal("deleted row visible")
	}
	commit(t, check)

	// Reinsert the same primary key (RID reuse through the tomb chain).
	tx2, _ := e.Begin(1)
	rid2, err := tx2.Insert(tbl, Row{I(1), S("ada2"), I(7)})
	if err != nil {
		t.Fatalf("reinsert after delete: %v", err)
	}
	commit(t, tx2)
	check2, _ := e.Begin(1)
	_, row, err := check2.GetByKey(tbl, 0, I(1))
	if err != nil || row[1].Str() != "ada2" {
		t.Fatalf("reinserted row: %v %v", row, err)
	}
	commit(t, check2)
	if rid2 != rid {
		// RID reuse is the expected fast path but not mandatory.
		t.Logf("note: reinsert allocated fresh RID %v (old %v)", rid2, rid)
	}
}

func TestDeleteWithinTxnThenInsert(t *testing.T) {
	e := testEngine(t)
	tbl := mustTable(t, e, usersSchema())
	rid := insertUser(t, e, tbl, 0, 1, "ada", 100)
	tx, _ := e.Begin(1)
	if err := tx.Delete(tbl, rid); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Insert(tbl, Row{I(1), S("ada-new"), I(5)}); err != nil {
		t.Fatalf("insert after own delete: %v", err)
	}
	commit(t, tx)
	check, _ := e.Begin(1)
	_, row, err := check.GetByKey(tbl, 0, I(1))
	if err != nil || row[1].Str() != "ada-new" {
		t.Fatalf("row after delete+insert: %v %v", row, err)
	}
	commit(t, check)
}

func TestSecondaryIndexScanAndKeyChange(t *testing.T) {
	e := testEngine(t)
	tbl := mustTable(t, e, usersSchema())
	insertUser(t, e, tbl, 0, 1, "ada", 1)
	insertUser(t, e, tbl, 0, 2, "ada", 2)
	rid3 := insertUser(t, e, tbl, 0, 3, "bob", 3)

	tx, _ := e.Begin(1)
	var ids []int64
	if err := tx.ScanPrefix(tbl, 1, []Value{S("ada")}, func(_ RID, row Row) bool {
		ids = append(ids, row[0].Int())
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 {
		t.Fatalf("scan ada: %v", ids)
	}
	commit(t, tx)

	// Key-changing update: bob -> ada. Old snapshot readers still resolve
	// via the old entry; new snapshots see three adas.
	oldReader, _ := e.Begin(2)
	upd, _ := e.Begin(3)
	if err := upd.Update(tbl, rid3, Row{I(3), S("ada"), I(3)}); err != nil {
		t.Fatal(err)
	}
	commit(t, upd)

	var oldBobs []int64
	oldReader.ScanPrefix(tbl, 1, []Value{S("bob")}, func(_ RID, row Row) bool {
		oldBobs = append(oldBobs, row[0].Int())
		return true
	})
	if len(oldBobs) != 1 || oldBobs[0] != 3 {
		t.Fatalf("old snapshot lost bob: %v", oldBobs)
	}
	commit(t, oldReader)

	newReader, _ := e.Begin(2)
	var adas, bobs []int64
	newReader.ScanPrefix(tbl, 1, []Value{S("ada")}, func(_ RID, row Row) bool {
		adas = append(adas, row[0].Int())
		return true
	})
	newReader.ScanPrefix(tbl, 1, []Value{S("bob")}, func(_ RID, row Row) bool {
		bobs = append(bobs, row[0].Int())
		return true
	})
	if len(adas) != 3 || len(bobs) != 0 {
		t.Fatalf("new snapshot: adas=%v bobs=%v", adas, bobs)
	}
	commit(t, newReader)
}

func TestScanKeyRange(t *testing.T) {
	e := testEngine(t)
	tbl := mustTable(t, e, usersSchema())
	for i := int64(0); i < 100; i++ {
		insertUser(t, e, tbl, 0, i, fmt.Sprintf("u%03d", i), i)
	}
	tx, _ := e.Begin(1)
	var got []int64
	if err := tx.ScanKey(tbl, 0, []Value{I(10)}, []Value{I(20)}, func(_ RID, row Row) bool {
		got = append(got, row[0].Int())
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 || got[0] != 10 || got[9] != 19 {
		t.Fatalf("range scan: %v", got)
	}
	commit(t, tx)
}

func TestGCReclaimsOldVersions(t *testing.T) {
	e := testEngine(t, func(c *Config) { c.GCEveryNCommits = 0 }) // manual GC
	tbl := mustTable(t, e, usersSchema())
	rid := insertUser(t, e, tbl, 0, 1, "ada", 0)
	for i := int64(1); i <= 50; i++ {
		tx, _ := e.Begin(0)
		if err := tx.Update(tbl, rid, Row{I(1), S("ada"), I(i)}); err != nil {
			t.Fatal(err)
		}
		commit(t, tx)
	}
	// Chain is 51 versions deep before GC.
	depth := 0
	for v := tbl.Rows().Get(rid); v != nil; v = v.Next() {
		depth++
	}
	if depth < 50 {
		t.Fatalf("expected deep chain before GC, got %d", depth)
	}
	n := e.RunGC()
	if n == 0 {
		t.Fatal("GC reclaimed nothing")
	}
	depth = 0
	for v := tbl.Rows().Get(rid); v != nil; v = v.Next() {
		depth++
	}
	if depth != 1 {
		t.Fatalf("chain depth after GC = %d, want 1", depth)
	}
	// Data still correct.
	tx, _ := e.Begin(1)
	row, err := tx.Get(tbl, rid)
	if err != nil || row[2].Int() != 50 {
		t.Fatalf("after GC: %v %v", row, err)
	}
	commit(t, tx)
}

func TestGCRespectsActiveSnapshots(t *testing.T) {
	e := testEngine(t, func(c *Config) { c.GCEveryNCommits = 0 })
	tbl := mustTable(t, e, usersSchema())
	rid := insertUser(t, e, tbl, 0, 1, "ada", 1)

	holder, _ := e.Begin(5) // pins the watermark
	for i := int64(2); i <= 10; i++ {
		tx, _ := e.Begin(0)
		tx.Update(tbl, rid, Row{I(1), S("ada"), I(i)})
		commit(t, tx)
	}
	e.RunGC()
	// The holder must still read balance 1.
	row, err := holder.Get(tbl, rid)
	if err != nil || row[2].Int() != 1 {
		t.Fatalf("GC stole an active snapshot's version: %v %v", row, err)
	}
	commit(t, holder)
	// Now GC can clean up.
	if n := e.RunGC(); n == 0 {
		t.Fatal("post-release GC reclaimed nothing")
	}
}

func TestGCDeleteClearsPIAAndIndex(t *testing.T) {
	e := testEngine(t, func(c *Config) { c.GCEveryNCommits = 0 })
	tbl := mustTable(t, e, usersSchema())
	rid := insertUser(t, e, tbl, 0, 1, "ada", 1)
	tx, _ := e.Begin(0)
	tx.Delete(tbl, rid)
	commit(t, tx)
	e.RunGC()
	if tbl.Rows().Get(rid) != nil {
		t.Fatal("PIA entry survives delete GC")
	}
	if _, ok, _ := tbl.Index(0).Get(EncodeKey(nil, I(1))); ok {
		t.Fatal("index entry survives delete GC")
	}
	// Epoch preserved/advanced on the cleared entry (Section 4.3).
	if tbl.Rows().Epoch(rid) == 0 {
		t.Fatal("entry epoch not advanced by delete GC")
	}
}

func TestEvictionReloadsThroughLog(t *testing.T) {
	e := testEngine(t)
	tbl := mustTable(t, e, usersSchema())
	for i := int64(0); i < 20; i++ {
		insertUser(t, e, tbl, 0, i, fmt.Sprintf("u%d", i), i*10)
	}
	n, err := e.Evict("users")
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("nothing evicted")
	}
	// Reads fault data back in through the SRSS mmap path.
	before := e.Service().Stats().Reads.Load()
	tx, _ := e.Begin(1)
	for i := int64(0); i < 20; i++ {
		_, row, err := tx.GetByKey(tbl, 0, I(i))
		if err != nil || row[2].Int() != i*10 {
			t.Fatalf("evicted read %d: %v %v", i, row, err)
		}
	}
	commit(t, tx)
	if e.Service().Stats().Reads.Load() == before {
		t.Fatal("evicted reads did not touch storage")
	}
}

func TestWorkerSlotExclusive(t *testing.T) {
	e := testEngine(t)
	tx, _ := e.Begin(0)
	if _, err := e.Begin(0); !errors.Is(err, ErrWorkerBusy) {
		t.Fatalf("double begin: %v", err)
	}
	commit(t, tx)
	tx2, err := e.Begin(0)
	if err != nil {
		t.Fatal(err)
	}
	commit(t, tx2)
}

func TestTxnDoneGuards(t *testing.T) {
	e := testEngine(t)
	tbl := mustTable(t, e, usersSchema())
	tx, _ := e.Begin(0)
	commit(t, tx)
	if _, err := tx.Insert(tbl, Row{I(1), S("x"), I(0)}); !errors.Is(err, ErrTxnDone) {
		t.Fatal("insert on finished txn")
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxnDone) {
		t.Fatal("double commit")
	}
	if err := tx.Abort(); !errors.Is(err, ErrTxnDone) {
		t.Fatal("abort after commit")
	}
}

func TestSpeculativeReadsAndDependencies(t *testing.T) {
	e := testEngine(t, func(c *Config) { c.SpeculativeReads = true })
	tbl := mustTable(t, e, usersSchema())
	rid := insertUser(t, e, tbl, 0, 1, "ada", 100)

	writer, _ := e.Begin(1)
	if err := writer.Update(tbl, rid, Row{I(1), S("ada"), I(200)}); err != nil {
		t.Fatal(err)
	}
	// Speculative reader sees the uncommitted value and registers a
	// dependency (register-and-report, Section 5.2).
	reader, _ := e.Begin(2)
	row, err := reader.Get(tbl, rid)
	if err != nil || row[2].Int() != 200 {
		t.Fatalf("speculative read: %v %v", row, err)
	}
	// Reader commits only after writer resolves; commit in order here.
	commit(t, writer)
	commit(t, reader)

	// Cascading abort: a reader of an eventually-aborted writer aborts.
	writer2, _ := e.Begin(1)
	writer2.Update(tbl, rid, Row{I(1), S("ada"), I(300)})
	reader2, _ := e.Begin(2)
	row, err = reader2.Get(tbl, rid)
	if err != nil || row[2].Int() != 300 {
		t.Fatalf("speculative read 2: %v %v", row, err)
	}
	writer2.Abort()
	if err := reader2.Commit(); !errors.Is(err, ErrDependencyAborted) {
		t.Fatalf("cascading abort: %v", err)
	}
}

func TestCommitAsyncPipelines(t *testing.T) {
	e := testEngine(t)
	tbl := mustTable(t, e, usersSchema())
	done := make(chan error, 10)
	for i := int64(0); i < 10; i++ {
		tx, err := e.Begin(0) // same worker: pipelining frees the slot
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tx.Insert(tbl, Row{I(i), S("x"), I(i)}); err != nil {
			t.Fatal(err)
		}
		if err := tx.CommitAsync(func(err error) { done <- err }); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		if err := <-done; err != nil {
			t.Fatalf("async commit %d: %v", i, err)
		}
	}
	tx, _ := e.Begin(1)
	cnt := 0
	tx.ScanKey(tbl, 0, nil, nil, func(RID, Row) bool { cnt++; return true })
	if cnt != 10 {
		t.Fatalf("rows after pipelined commits = %d", cnt)
	}
	commit(t, tx)
}

func TestUniqueSecondaryIndex(t *testing.T) {
	e := testEngine(t)
	s := &Schema{
		Name: "emails",
		Columns: []Column{
			{Name: "id", Kind: KindInt},
			{Name: "email", Kind: KindString},
		},
		Indexes: []IndexDef{
			{Name: "pk", Columns: []int{0}, Unique: true},
			{Name: "by_email", Columns: []int{1}, Unique: true},
		},
	}
	tbl := mustTable(t, e, s)
	tx, _ := e.Begin(0)
	if _, err := tx.Insert(tbl, Row{I(1), S("a@x.com")}); err != nil {
		t.Fatal(err)
	}
	commit(t, tx)
	tx2, _ := e.Begin(0)
	if _, err := tx2.Insert(tbl, Row{I(2), S("a@x.com")}); !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("unique secondary violation: %v", err)
	}
	// Lookup through the unique secondary.
	tx3, _ := e.Begin(0)
	_, row, err := tx3.GetByKey(tbl, 1, S("a@x.com"))
	if err != nil || row[0].Int() != 1 {
		t.Fatalf("secondary lookup: %v %v", row, err)
	}
	commit(t, tx3)
}

func TestBackgroundMaintenance(t *testing.T) {
	e := testEngine(t, func(c *Config) { c.SegmentSize = 4096; c.GCEveryNCommits = 0 })
	tbl := mustTable(t, e, usersSchema())
	stop := e.StartMaintenance(MaintenanceConfig{
		CheckpointEvery: 5 * time.Millisecond,
		DestageEvery:    5 * time.Millisecond,
		GCEvery:         5 * time.Millisecond,
		OnError: func(task string, err error) {
			t.Errorf("maintenance %s: %v", task, err)
		},
	})
	defer stop()
	// Generate churn: inserts + repeated updates so GC and destage have
	// work, with enough log volume to rotate segments.
	for i := int64(0); i < 300; i++ {
		insertUser(t, e, tbl, int(i%4), i, "bg", i)
	}
	rid, _ := func() (RID, error) {
		tx, _ := e.Begin(0)
		defer tx.Commit()
		r, _, err := tx.GetByKey(tbl, 0, I(7))
		return r, err
	}()
	for i := int64(0); i < 200; i++ {
		tx, _ := e.Begin(0)
		if err := tx.Update(tbl, rid, Row{I(7), S("bg"), I(i)}); err != nil {
			t.Fatal(err)
		}
		commit(t, tx)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if e.Stats().Checkpoints.Load() > 0 && e.Stats().ReclaimedVersions.Load() > 0 &&
			len(e.Log().DestagedSegments()) > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if e.Stats().Checkpoints.Load() == 0 {
		t.Fatal("background checkpoint never ran")
	}
	if e.Stats().ReclaimedVersions.Load() == 0 {
		t.Fatal("background GC reclaimed nothing")
	}
	if len(e.Log().DestagedSegments()) == 0 {
		t.Fatal("background destage archived nothing")
	}
	stop()
	// Stop is idempotent and the engine still works.
	stop()
	insertUser(t, e, tbl, 0, 9999, "post", 1)
}

func TestLastCheckpointCSNExposed(t *testing.T) {
	e := testEngine(t)
	tbl := mustTable(t, e, usersSchema())
	insertUser(t, e, tbl, 0, 1, "x", 1)
	csn, err := e.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if got := e.LastCheckpointCSN(); got != csn {
		t.Fatalf("LastCheckpointCSN = %d, want %d", got, csn)
	}
}
