package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hiengine/internal/clock"
	"hiengine/internal/srss"
	"hiengine/internal/wal"
)

// Dataless checkpoints and parallel recovery (Section 4.3).
//
// A checkpoint persists only the indirection arrays -- (table, RID,
// permanent log address, CSN) tuples -- never record data. Recovery
// reconstructs the PIAs from the newest checkpoint image and then replays
// log segments in parallel, using a newest-CSN-wins compare-and-swap per
// entry so the scattered multi-stream redo logs can be applied in any
// order. No record data is loaded: entries point back into the replicated
// log, and later accesses fault data in through SRSS mmap views.

const checkpointHeader byte = 'K'

// Checkpoint writes a new checkpoint image and registers it in the
// manifest. It runs concurrently with forward processing: the image is a
// consistent view as of the returned checkpoint CSN.
//
// The checkpoint also fences the log for recovery: every log stream is
// rotated first, so all records in the pre-rotation segments have CSNs at
// or below the checkpoint CSN and are represented by (or superseded within)
// the checkpoint image. Recovery skips replaying fenced segments entirely
// -- they remain in place as version storage for lazy mmap reads ("the log
// is the database"), but contribute nothing to the RTO. This is what makes
// frequent checkpoints bound recovery time (Section 4.3, Figure 8).
func (e *Engine) Checkpoint() (uint64, error) {
	if e.closed.Load() {
		return 0, ErrClosed
	}
	e.ckptMu.Lock()
	defer e.ckptMu.Unlock()
	return e.checkpointLocked()
}

// checkpointLocked is Checkpoint's body; the caller holds ckptMu (log
// compaction takes a fresh checkpoint while already holding it).
func (e *Engine) checkpointLocked() (uint64, error) {
	ckptStart := time.Now()
	defer func() { e.mCheckpointDur.Record(int64(time.Since(ckptStart))) }()
	// Fence: after rotating every stream, all sealed segments are
	// permanently closed, and every record in them carries a CSN below
	// the reading of the clock that follows (appends carry CSNs acquired
	// before they are queued, and rotation drains each stream's queue in
	// order).
	if err := e.log.RotateAll(); err != nil {
		return 0, err
	}
	fence := e.log.SealedSegments()
	ckptCSN := e.clk.Now()
	// Durability barrier: wait until every commit started so far has its
	// permanent addresses stamped. Afterwards every version with
	// CSN <= ckptCSN is durable, the walk below captures a complete image
	// of that prefix, and recovery may skip ALL log records with
	// CSN <= ckptCSN -- which is what makes fencing (and the general
	// skip rule) safe against resurrecting deleted rows whose delete
	// records would otherwise be skipped while their older inserts are
	// replayed.
	target := e.commitsStarted.Load()
	for e.commitsDurable.Load() < target {
		runtime.Gosched()
	}
	// Segments recovery still needs for 2PC state (undecided prepares,
	// retained decisions) must stay outside the fence. The barrier above
	// guarantees every entry whose records reached a sealed segment is
	// registered with stable fields.
	fence = e.filterFence2PC(fence, ckptCSN)
	plog, err := e.svc.Create(srss.TierCompute)
	if err != nil {
		return 0, err
	}
	buf := make([]byte, 0, 64<<10)
	buf = append(buf, checkpointHeader)
	entries := int64(0)
	flushes := 0
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		if flushes > 0 {
			if err := e.svc.Chaos().Check(SiteCheckpointMid); err != nil {
				// Crash between image flushes: the partial checkpoint PLog
				// is never registered in the manifest, so recovery anchors
				// on the previous checkpoint.
				return err
			}
		}
		flushes++
		_, err := plog.Append(buf)
		buf = buf[:0]
		return err
	}

	e.mu.RLock()
	tables := make([]*Table, 0, len(e.tablesByID))
	for _, t := range e.tablesByID {
		tables = append(tables, t)
	}
	e.mu.RUnlock()

	for _, t := range tables {
		var werr error
		t.rows.Range(func(rid RID, head *Version) bool {
			// Walk to the newest durable version visible at ckptCSN.
			for v := head; v != nil; v = v.next.Load() {
				ts := v.tmin.Load()
				if isTID(ts) || ts > ckptCSN {
					continue
				}
				if v.tomb {
					if v.addr.Load() != 0 {
						// Durable delete: omit the record entirely.
						return true
					}
					// Not yet durable: if it is lost in a crash, the
					// record must survive -- fall through to an older
					// durable version.
					continue
				}
				addr := v.addr.Load()
				if addr == 0 {
					// Committed but not yet durable: rely on replay.
					continue
				}
				buf = binary.AppendUvarint(buf, uint64(t.ID))
				buf = binary.AppendUvarint(buf, uint64(rid))
				buf = binary.AppendUvarint(buf, addr)
				buf = binary.AppendUvarint(buf, ts)
				entries++
				if len(buf) >= 64<<10 {
					if werr = flush(); werr != nil {
						return false
					}
				}
				return true
			}
			return true
		})
		if werr != nil {
			return 0, werr
		}
	}
	if err := flush(); err != nil {
		return 0, err
	}
	plog.Seal()

	// Register in the manifest: ckpt PLog ID | csn | entry count | fenced
	// segment list.
	id := plog.ID()
	payload := make([]byte, 0, 24+20+len(fence)*3)
	payload = append(payload, id[:]...)
	payload = binary.AppendUvarint(payload, ckptCSN)
	payload = binary.AppendUvarint(payload, uint64(entries))
	payload = binary.AppendUvarint(payload, uint64(len(fence)))
	for _, seg := range fence {
		payload = binary.AppendUvarint(payload, uint64(seg))
	}
	if err := e.appendManifest(manifestCheckpoint, payload); err != nil {
		return 0, err
	}
	e.lastCkpt.Store(ckptCSN)
	e.stats.Checkpoints.Add(1)
	e.mCheckpoints.Inc()
	return ckptCSN, nil
}

// RecoverOptions tunes recovery.
type RecoverOptions struct {
	// ReplayThreads is the number of parallel replay goroutines (Figure 8
	// sweeps this). Default 1 (serial replay, the baseline).
	ReplayThreads int
	// SkipIndexRebuild leaves indexes empty (PIA-only recovery, the
	// paper's "recovery is finished once the PIAs are set up"). Point
	// reads by RID work immediately; key access requires indexes.
	SkipIndexRebuild bool
	// UseCheckpoint loads the newest checkpoint image before replay
	// (default true via Recover; set false to force full-log replay).
	SkipCheckpoint bool

	// readOnly opens the log without streams and marks the engine a
	// replica (set by OpenReplica).
	readOnly bool
}

// RecoveryStats reports what recovery did.
type RecoveryStats struct {
	CheckpointCSN     uint64
	CheckpointEntries int64
	SegmentsScanned   int
	SegmentsSkipped   int
	RecordsScanned    int64
	RecordsApplied    int64
	MaxCSN            uint64
	ReplayDuration    time.Duration
	IndexDuration     time.Duration
	// TornTails counts checksum-invalid segment tails (torn writes from a
	// crash mid-replication) that replay truncated at the last valid
	// record; TruncatedBytes is the total tail bytes dropped. Truncated
	// bytes were never acknowledged to any committer.
	TornTails      int64
	TruncatedBytes int64
	// InDoubt counts prepared-but-undecided global transactions
	// reconstructed from OpPrepare records (awaiting their coordinator).
	InDoubt int64

	// fenced carries the checkpoint-covered segment set to OpenReplica.
	fenced []uint16
}

// RecoverByName rebuilds an engine whose manifest identity is registered in
// the SRSS management-node registry under cfg.Name (or "hiengine").
func RecoverByName(cfg Config, opt RecoverOptions) (*Engine, *RecoveryStats, error) {
	if cfg.Service == nil {
		return nil, nil, errors.New("core: Recover requires the SRSS service")
	}
	name := cfg.Name
	if name == "" {
		name = "hiengine"
	}
	id, ok := cfg.Service.WellKnown(name)
	if !ok {
		return nil, nil, fmt.Errorf("core: no engine %q registered with the management nodes", name)
	}
	return Recover(cfg, id, opt)
}

// Recover rebuilds an engine from its manifest PLog: catalog, checkpoint
// image, parallel log replay, and (optionally) index rebuild.
func Recover(cfg Config, manifestID srss.PLogID, opt RecoverOptions) (*Engine, *RecoveryStats, error) {
	if cfg.Service == nil {
		return nil, nil, errors.New("core: Recover requires the SRSS service")
	}
	cfg.fill()
	if opt.ReplayThreads <= 0 {
		opt.ReplayThreads = 1
	}
	e := &Engine{
		cfg:        cfg,
		svc:        cfg.Service,
		clk:        cfg.Clock,
		tables:     make(map[string]*Table),
		tablesByID: make(map[uint32]*Table),
		status:     newStatusMap(),
		workers:    make([]workerSlot, cfg.Workers),
		pend2pc:    make(map[string]*pend2pcEntry),
	}
	if c, ok := cfg.Clock.(*clock.Counter); ok {
		e.counter = c
	}
	e.initObs()
	manifest, err := e.svc.Open(manifestID)
	if err != nil {
		return nil, nil, err
	}
	e.manifest = manifest
	e.svc.SetWellKnown(cfg.Name, manifestID)

	var walMeta srss.PLogID
	var ckptID srss.PLogID
	var ckptCSN uint64
	var fenced map[uint16]bool
	haveCkpt := false
	var epoch, fencedBy uint64
	if err := scanManifest(manifest, func(typ byte, payload []byte) error {
		switch typ {
		case manifestWAL:
			copy(walMeta[:], payload)
		case manifestEpoch:
			if e, n := binary.Uvarint(payload); n > 0 && e > epoch {
				epoch = e
			}
		case manifestFence:
			if f, n := binary.Uvarint(payload); n > 0 && f > fencedBy {
				fencedBy = f
			}
		case manifestShard:
			e.lastShardPayload = append([]byte(nil), payload...)
		case manifestTable:
			id, n := binary.Uvarint(payload)
			if n <= 0 {
				return fmt.Errorf("core: corrupt table manifest record")
			}
			s, err := unmarshalSchema(payload[n:])
			if err != nil {
				return err
			}
			t, err := e.buildTable(uint32(id), s)
			if err != nil {
				return err
			}
			e.tables[s.Name] = t
			e.tablesByID[t.ID] = t
			if uint32(id) > e.nextTable {
				e.nextTable = uint32(id)
			}
		case manifestCheckpoint:
			if len(payload) < 24 {
				return fmt.Errorf("core: corrupt checkpoint manifest record")
			}
			e.lastCkptPayload = append([]byte(nil), payload...)
			copy(ckptID[:], payload[:24])
			pos := 24
			csn, n := binary.Uvarint(payload[pos:])
			if n <= 0 {
				return fmt.Errorf("core: corrupt checkpoint CSN")
			}
			pos += n
			ckptCSN = csn
			if _, n = binary.Uvarint(payload[pos:]); n > 0 { // entry count
				pos += n
			}
			fenced = map[uint16]bool{}
			if cnt, n := binary.Uvarint(payload[pos:]); n > 0 {
				pos += n
				for i := uint64(0); i < cnt; i++ {
					seg, n := binary.Uvarint(payload[pos:])
					if n <= 0 {
						return fmt.Errorf("core: corrupt checkpoint fence")
					}
					pos += n
					fenced[uint16(seg)] = true
				}
			}
			haveCkpt = true
		}
		return nil
	}); err != nil {
		return nil, nil, err
	}
	if walMeta.IsZero() {
		return nil, nil, errors.New("core: manifest has no WAL record")
	}
	if epoch == 0 {
		epoch = 1 // pre-epoch manifest: the original lineage
	}
	e.epoch.Store(epoch)
	e.fencedBy.Store(fencedBy)

	walCfg := wal.Config{
		Service:     e.svc,
		Tier:        cfg.LogTier,
		Streams:     cfg.LogStreams,
		SegmentSize: cfg.SegmentSize,
		BatchMax:    cfg.GroupCommitBatch,
		OnMetaChange: func(id srss.PLogID) error {
			return e.appendManifest(manifestWAL, id[:])
		},
		Obs: e.obs,
	}
	var log *wal.Manager
	if opt.readOnly {
		e.readOnly.Store(true)
		log, err = wal.OpenReadOnly(walCfg, walMeta)
	} else {
		log, err = wal.Reopen(walCfg, walMeta)
	}
	if err != nil {
		return nil, nil, err
	}
	e.log = log

	stats := &RecoveryStats{}
	start := time.Now()

	// Phase 1: load the checkpoint image (addresses only -- dataless).
	if haveCkpt && !opt.SkipCheckpoint {
		stats.CheckpointCSN = ckptCSN
		n, err := e.loadCheckpoint(ckptID)
		if err != nil {
			return nil, nil, err
		}
		stats.CheckpointEntries = n
	}

	// Phase 2: parallel replay with newest-CSN-wins CAS conflict
	// resolution. Segments fenced by the checkpoint are skipped: their
	// records are represented in (or superseded by) the checkpoint image;
	// the segments themselves stay available as version storage.
	var skipCSN uint64
	if haveCkpt && !opt.SkipCheckpoint {
		skipCSN = ckptCSN
	}
	var segs []uint16
	for _, seg := range log.Segments() {
		if haveCkpt && !opt.SkipCheckpoint && fenced[seg] {
			stats.SegmentsSkipped++
			stats.fenced = append(stats.fenced, seg)
			continue
		}
		segs = append(segs, seg)
	}
	stats.SegmentsScanned = len(segs)
	// Longest-processing-time-first scheduling: replay threads pull whole
	// segments, so handing out the big ones first balances the tail.
	sort.Slice(segs, func(i, j int) bool {
		return segmentSize(e, segs[i]) > segmentSize(e, segs[j])
	})
	// Snapshot the catalog once: replay resolves tables per record and
	// must not bounce on the engine lock.
	catalog := make(map[uint32]*Table, len(e.tablesByID))
	for id, t := range e.tablesByID {
		catalog[id] = t
	}
	var scanned, applied atomic.Int64
	var maxCSN atomic.Uint64
	segCh := make(chan uint16, len(segs))
	for _, s := range segs {
		segCh <- s
	}
	close(segCh)
	// 2PC records collected during replay. OpPrepare/OpDecide are handled
	// BEFORE the skip-CSN check: a prepare record carries CSN 0 (the skip
	// rule would always drop it) and decision records must always be
	// collected so the node keeps answering TxnStatus.
	type prepRec struct {
		addr    wal.Addr
		payload []byte
	}
	type decRec struct {
		commit bool
		csn    uint64
		seg    uint16
	}
	var twopcMu sync.Mutex
	preps := make(map[string]prepRec)
	decs := make(map[string]decRec)
	forgets := make(map[string]bool)
	var wg sync.WaitGroup
	errCh := make(chan error, opt.ReplayThreads)
	for i := 0; i < opt.ReplayThreads; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Thread-local counters: replay applies millions of records,
			// so shared atomics per record would serialize the threads.
			var localScanned, localApplied int64
			var localMax uint64
			for seg := range segCh {
				err := log.ScanSegment(seg, func(addr wal.Addr, rec wal.Record) bool {
					localScanned++
					if rec.CSN > localMax {
						localMax = rec.CSN
					}
					switch rec.Op {
					case wal.OpPrepare:
						if gtid, _, err := decodePreparePayload(rec.Payload); err == nil {
							twopcMu.Lock()
							preps[gtid] = prepRec{addr: addr, payload: append([]byte(nil), rec.Payload...)}
							twopcMu.Unlock()
						}
						return true
					case wal.OpDecide:
						if gtid, commit, err := decodeDecidePayload(rec.Payload); err == nil {
							twopcMu.Lock()
							decs[gtid] = decRec{commit: commit, csn: rec.CSN, seg: addr.Segment()}
							twopcMu.Unlock()
						}
						return true
					case wal.OpForget:
						if gtid, err := decodeGTIDPayload(rec.Payload); err == nil {
							twopcMu.Lock()
							forgets[gtid] = true
							twopcMu.Unlock()
						}
						return true
					}
					if rec.CSN <= skipCSN {
						// Fully represented by the checkpoint image
						// (durability barrier at checkpoint time).
						return true
					}
					if applyReplay(catalog, addr, rec) {
						localApplied++
					}
					return true
				})
				if err != nil {
					errCh <- err
					return
				}
			}
			scanned.Add(localScanned)
			applied.Add(localApplied)
			for {
				m := maxCSN.Load()
				if localMax <= m || maxCSN.CompareAndSwap(m, localMax) {
					break
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return nil, nil, err
	default:
	}

	// Apply decided 2PC writes: a prepare paired with a commit decision
	// replays its embedded records at the decision CSN (newest-CSN-wins, so
	// re-applying writes a checkpoint image already covers is a no-op). A
	// prepare paired with an abort is dropped. Undecided prepares are
	// reconstructed as in-doubt transactions after the index rebuild below.
	for gtid, p := range preps {
		d, decided := decs[gtid]
		if !decided || !d.commit {
			continue
		}
		if _, body, err := decodePreparePayload(p.payload); err == nil {
			embBase := prepHeaderLen(len(p.payload)) + (len(p.payload) - len(body))
			_ = forEachEmbedded(body, func(off int, rec wal.Record) error {
				rec.CSN = d.csn
				if applyReplay(catalog, p.addr.Add(uint32(embBase+off)), rec) {
					applied.Add(1)
				}
				return nil
			})
		}
		if d.csn > maxCSN.Load() {
			maxCSN.Store(d.csn)
		}
	}
	stats.RecordsScanned = scanned.Load()
	stats.RecordsApplied = applied.Load()
	stats.TornTails, stats.TruncatedBytes = log.TailTruncations()
	stats.MaxCSN = maxCSN.Load()
	if stats.CheckpointCSN > stats.MaxCSN {
		stats.MaxCSN = stats.CheckpointCSN
	}

	// Phase 3: clear tombstone heads (deletes), preserving entry epochs.
	for _, t := range e.tablesByID {
		var live int64
		t.rows.RangeAll(func(rid RID, v *Version, _ uint32) bool {
			if v != nil && v.tomb {
				_, _ = t.rows.CompareAndSwap(rid, v, nil)
				_ = t.rows.Delete(rid)
			} else if v != nil {
				live++
			}
			return true
		})
		t.liveRows.Store(live)
	}
	stats.ReplayDuration = time.Since(start)

	// Resume CSN allocation above everything replayed.
	e.advanceClock(stats.MaxCSN)

	// Phase 4 (optional): rebuild in-memory indexes by scanning the PIAs.
	if !opt.SkipIndexRebuild {
		ixStart := time.Now()
		if err := e.RebuildIndexes(opt.ReplayThreads); err != nil {
			return nil, nil, err
		}
		stats.IndexDuration = time.Since(ixStart)
	}

	// Phase 5: 2PC state. Undecided prepares become in-doubt transactions
	// again -- TID-stamped versions on the heads (re-acquired write locks)
	// plus their index entries -- awaiting the coordinator; decided gtids
	// are remembered so TxnStatus keeps answering across the restart. An
	// OpForget record is the coordinator's tombstone for the whole gtid:
	// forgotten gtids rebuild no state (their committed writes were still
	// applied above -- the forget prunes metadata, never data).
	for gtid, p := range preps {
		if _, decided := decs[gtid]; decided || forgets[gtid] {
			continue
		}
		if err := e.reconstructInDoubt(gtid, p.addr, p.payload); err != nil {
			return nil, nil, fmt.Errorf("core: in-doubt reconstruction of %q: %w", gtid, err)
		}
		stats.InDoubt++
	}
	for gtid, d := range decs {
		if forgets[gtid] {
			continue
		}
		p, havePrep := preps[gtid]
		e.noteDecision(gtid, d.commit, d.csn, d.seg, p.addr.Segment(), havePrep)
	}
	if cfg.RepairInterval > 0 && !opt.readOnly {
		e.stopRepair = e.svc.StartRepairer(cfg.RepairInterval)
	}
	return e, stats, nil
}

// applyReplay applies one log record with newest-CSN-wins semantics.
func applyReplay(catalog map[uint32]*Table, addr wal.Addr, rec wal.Record) bool {
	t, ok := catalog[rec.Table]
	if !ok {
		return false
	}
	rid := RID(rec.RID)
	if err := t.rows.AllocAt(rid); err != nil {
		return false
	}
	stub := &Version{tomb: rec.Op == wal.OpDelete}
	stub.tmin.Store(rec.CSN)
	stub.addr.Store(uint64(addr))
	for {
		cur := t.rows.Get(rid)
		if cur != nil {
			have := cur.tmin.Load()
			if have > rec.CSN {
				return false // a newer record already won
			}
			if have == rec.CSN {
				// The same version at a new address: a compaction rewrite
				// relocated the record (rewrites keep their original CSN).
				// Refresh the permanent address so payload reads stop
				// pointing into the old segment, which the primary drops
				// once the rewrite is durable. Not counted as applied --
				// the version's content and indexes are already in place.
				cur.addr.Store(uint64(addr))
				return false
			}
		}
		if ok, err := t.rows.CompareAndSwap(rid, cur, stub); err != nil {
			return false
		} else if ok {
			return true
		}
	}
}

// loadCheckpoint reads a checkpoint image into the PIAs.
func (e *Engine) loadCheckpoint(id srss.PLogID) (int64, error) {
	plog, err := e.svc.Open(id)
	if err != nil {
		return 0, err
	}
	v := plog.Mmap()
	size := v.Len()
	if size == 0 {
		return 0, nil
	}
	b, err := v.At(0, int(size))
	if err != nil {
		return 0, err
	}
	if b[0] != checkpointHeader {
		return 0, fmt.Errorf("core: bad checkpoint header %#x", b[0])
	}
	pos := 1
	var n int64
	for pos < len(b) {
		tbl, w := binary.Uvarint(b[pos:])
		if w <= 0 {
			return n, fmt.Errorf("core: corrupt checkpoint at %d", pos)
		}
		pos += w
		rid, w := binary.Uvarint(b[pos:])
		if w <= 0 {
			return n, fmt.Errorf("core: corrupt checkpoint rid at %d", pos)
		}
		pos += w
		addr, w := binary.Uvarint(b[pos:])
		if w <= 0 {
			return n, fmt.Errorf("core: corrupt checkpoint addr at %d", pos)
		}
		pos += w
		csn, w := binary.Uvarint(b[pos:])
		if w <= 0 {
			return n, fmt.Errorf("core: corrupt checkpoint csn at %d", pos)
		}
		pos += w
		t, ok := e.tableByID(uint32(tbl))
		if !ok {
			continue
		}
		r := RID(rid)
		if err := t.rows.AllocAt(r); err != nil {
			return n, err
		}
		stub := &Version{}
		stub.tmin.Store(csn)
		stub.addr.Store(addr)
		if err := t.rows.Store(r, stub); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// RebuildIndexes repopulates every table's in-memory indexes from the
// indirection arrays, loading record payloads through the log's mmap views.
func (e *Engine) RebuildIndexes(parallelism int) error {
	if parallelism <= 0 {
		parallelism = 1
	}
	e.mu.RLock()
	tables := make([]*Table, 0, len(e.tablesByID))
	for _, t := range e.tablesByID {
		tables = append(tables, t)
	}
	e.mu.RUnlock()

	type item struct {
		t   *Table
		rid RID
		v   *Version
	}
	ch := make(chan item, 1024)
	var wg sync.WaitGroup
	errCh := make(chan error, parallelism)
	for i := 0; i < parallelism; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := range ch {
				p, err := it.v.payload(e)
				if err != nil {
					errCh <- err
					return
				}
				row, err := DecodeRow(p)
				if err != nil {
					errCh <- err
					return
				}
				for ixn := 0; ixn < len(it.t.indexes); ixn++ {
					k, err := it.t.indexKey(ixn, row, it.rid)
					if err != nil {
						errCh <- err
						return
					}
					if err := it.t.indexes[ixn].Insert(k, uint64(it.rid)); err != nil {
						errCh <- err
						return
					}
				}
			}
		}()
	}
	for _, t := range tables {
		t.rows.Range(func(rid RID, v *Version) bool {
			if !v.tomb {
				ch <- item{t: t, rid: rid, v: v}
			}
			return true
		})
	}
	close(ch)
	wg.Wait()
	select {
	case err := <-errCh:
		return err
	default:
		return nil
	}
}

// segmentSize returns a segment's byte size (0 when unresolvable).
func segmentSize(e *Engine, seg uint16) int64 {
	id, ok := e.log.Directory().Lookup(seg)
	if !ok {
		return 0
	}
	p, err := e.svc.Open(id)
	if err != nil {
		return 0
	}
	return p.Size()
}

// scanManifest iterates manifest records.
func scanManifest(p *srss.PLog, fn func(typ byte, payload []byte) error) error {
	size := p.Size()
	if size == 0 {
		return nil
	}
	b := make([]byte, size)
	if _, err := p.ReadAt(b, 0); err != nil {
		return err
	}
	pos := 0
	for pos < len(b) {
		start := pos
		typ := b[pos]
		pos++
		l, w := binary.Uvarint(b[pos:])
		if w <= 0 || pos+w+int(l) > len(b) {
			// A record cut short at the very tail of a torn (half-replicated)
			// PLog was never acknowledged: the append crashed mid-replication
			// and the operation it was part of failed with it. Truncate
			// logically, exactly like the WAL torn-tail rule. Genuine
			// corruption (replicas agree on the bytes) still errors.
			if p.Torn() || !p.ReplicasConsistentFrom(int64(start)) {
				return nil
			}
			return fmt.Errorf("core: corrupt manifest at %d", pos)
		}
		pos += w
		if err := fn(typ, b[pos:pos+int(l)]); err != nil {
			return err
		}
		pos += int(l)
	}
	return nil
}

// advanceClock raises the local counter (when in use) past csn so new
// transactions order after everything recovered.
func (e *Engine) advanceClock(csn uint64) {
	if e.counter != nil {
		e.counter.AdvanceTo(csn)
		return
	}
	if a, ok := e.clk.(interface{ AdvanceTo(uint64) }); ok {
		a.AdvanceTo(csn)
	}
}
