package core

import (
	"encoding/binary"
	"math"
)

// Order-preserving (memcomparable) key encoding for index keys: encoded keys
// compare bytewise in the same order as the typed tuples they encode.
//
//	NULL    := 0x00
//	int     := 0x01, 8 bytes big-endian with the sign bit flipped
//	float   := 0x02, 8 bytes big-endian IEEE bits, sign-adjusted
//	string  := 0x03, escaped bytes, terminator
//	bytes   := 0x03 (same domain as string for ordering)
//
// Variable-length values are escaped so that no encoded value is a prefix of
// another: 0x00 bytes become 0x00 0xFF, and the value ends with 0x00 0x01.
// NULL sorts before everything; kind tags keep mixed-kind columns ordered
// deterministically.

const (
	keyTagNull  = 0x00
	keyTagInt   = 0x01
	keyTagFloat = 0x02
	keyTagStr   = 0x03
)

// EncodeKey appends the order-preserving encoding of vals to buf.
func EncodeKey(buf []byte, vals ...Value) []byte {
	for _, v := range vals {
		switch v.kind {
		case 0:
			buf = append(buf, keyTagNull)
		case KindInt:
			buf = append(buf, keyTagInt)
			buf = binary.BigEndian.AppendUint64(buf, uint64(v.i)^(1<<63))
		case KindFloat:
			buf = append(buf, keyTagFloat)
			bits := math.Float64bits(v.f)
			if bits&(1<<63) != 0 {
				bits = ^bits // negative floats: invert everything
			} else {
				bits |= 1 << 63 // positive: set sign bit
			}
			buf = binary.BigEndian.AppendUint64(buf, bits)
		case KindString:
			buf = append(buf, keyTagStr)
			buf = escapeAppend(buf, []byte(v.s))
		case KindBytes:
			buf = append(buf, keyTagStr)
			buf = escapeAppend(buf, v.b)
		}
	}
	return buf
}

func escapeAppend(buf, p []byte) []byte {
	for _, c := range p {
		if c == 0x00 {
			buf = append(buf, 0x00, 0xFF)
		} else {
			buf = append(buf, c)
		}
	}
	return append(buf, 0x00, 0x01)
}

// KeySuccessor returns the smallest key strictly greater than every key
// having k as a prefix: k itself is exclusive-range friendly because
// appending 0xFF... forever is approximated by incrementing the last
// possible byte. Used to turn "prefix scan" into a [k, successor) range.
func KeySuccessor(k []byte) []byte {
	out := make([]byte, len(k), len(k)+1)
	copy(out, k)
	for i := len(out) - 1; i >= 0; i-- {
		if out[i] != 0xFF {
			out[i]++
			return out[:i+1]
		}
	}
	// All 0xFF: no successor; return a key longer than any real key.
	return append(out, 0xFF)
}

// EncodeRIDSuffix appends a RID in big-endian to a secondary-index key,
// making duplicate secondary keys unique per record while preserving key
// order grouping.
func EncodeRIDSuffix(buf []byte, rid uint64) []byte {
	return binary.BigEndian.AppendUint64(buf, rid)
}

// DecodeRIDSuffix extracts the trailing RID from a secondary-index key.
func DecodeRIDSuffix(key []byte) uint64 {
	if len(key) < 8 {
		return 0
	}
	return binary.BigEndian.Uint64(key[len(key)-8:])
}
