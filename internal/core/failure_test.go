package core

import (
	"fmt"
	"testing"

	"hiengine/internal/srss"
)

// TestNodeFailureSealMigration exercises the full seal-and-retry story: a
// compute node fails mid-traffic, sealing the open log segments, the
// segment directory's metadata PLog and the engine manifest; all three must
// migrate to healthy replicas and the engine must stay available and
// recoverable through the management-node registry.
func TestNodeFailureSealMigration(t *testing.T) {
	svc := srss.New(srss.Config{ComputeNodes: 4})
	e, err := Open(Config{Name: "failover-test", Service: svc, Workers: 4, SegmentSize: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	tbl := mustTable(t, e, usersSchema())

	for i := int64(0); i < 100; i++ {
		insertUser(t, e, tbl, int(i%4), i, "pre-failure", i)
	}
	manifestBefore := e.ManifestID()

	// Fail a node: every PLog with a replica there seals on next write.
	svc.ComputeNode(0).Fail()
	for i := int64(100); i < 300; i++ {
		insertUser(t, e, tbl, int(i%4), i, "post-failure", i)
	}
	// Checkpoints also allocate fresh PLogs and append to the manifest.
	if _, err := e.Checkpoint(); err != nil {
		t.Fatalf("checkpoint during failure: %v", err)
	}
	id, ok := svc.WellKnown("failover-test")
	if !ok {
		t.Fatal("well-known registration lost")
	}
	if id == manifestBefore {
		// Migration only triggers if the old manifest's replica set
		// included the failed node; if it did seal, the registry must
		// have been re-anchored.
		if p, err := svc.Open(manifestBefore); err == nil && p.Sealed() {
			t.Fatal("manifest sealed but well-known ID not re-anchored")
		}
	}

	want := snapshotTable(t, e, "users")
	if len(want) != 300 {
		t.Fatalf("only %d rows present before crash", len(want))
	}
	e.Close()

	// Recover via the management-node registry (the bootstrap path).
	e2, stats, err := RecoverByName(Config{Name: "failover-test", Service: svc, Workers: 4, SegmentSize: 1 << 16},
		RecoverOptions{ReplayThreads: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	got := snapshotTable(t, e2, "users")
	if len(got) != len(want) {
		t.Fatalf("recovered %d rows, want %d (stats %+v)", len(got), len(want), stats)
	}
	for id, w := range want {
		if got[id] != w {
			t.Fatalf("row %d: got %v want %v", id, got[id], w)
		}
	}
	// Still writable after recovery with the failed node still down.
	tbl2, _ := e2.Table("users")
	tx, err := e2.Begin(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Insert(tbl2, Row{I(9999), S("post-recovery"), I(0)}); err != nil {
		t.Fatal(err)
	}
	commit(t, tx)
}

// TestRecoverByNameUnknown rejects unregistered names.
func TestRecoverByNameUnknown(t *testing.T) {
	svc := srss.New(srss.Config{})
	if _, _, err := RecoverByName(Config{Name: "ghost", Service: svc}, RecoverOptions{}); err == nil {
		t.Fatal("recovered a ghost engine")
	}
	_ = fmt.Sprint() // keep fmt import if assertions change
}
