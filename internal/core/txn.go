package core

import (
	"fmt"
	"sync/atomic"

	"hiengine/internal/index"
	"hiengine/internal/obs"
	"hiengine/internal/wal"
)

// idxOp records an index entry inserted during execution; undo on abort is
// a tombstone hiding the entry again.
type idxOp struct {
	ix  *index.Index
	key []byte
}

// writeEntry records one write for commit stamping, logging, undo and GC.
type writeEntry struct {
	table  *Table
	rid    RID
	newV   *Version
	oldV   *Version // version superseded by newV (nil for a fresh insert)
	logOff int      // offset of the op record in Txn.logBuf
	idxOps []idxOp
	// oldKeys are index keys that become garbage when oldV is reclaimed
	// (key-changing updates and deletes keep old entries alive for old
	// snapshots; GC removes them).
	oldKeys []oldKey
}

type oldKey struct {
	ix  *index.Index
	key []byte
}

// Txn is one transaction. A Txn is not safe for concurrent use; it belongs
// to the session (worker) that began it.
type Txn struct {
	e      *Engine
	worker int
	tid    uint64
	begin  uint64

	statusWord atomic.Uint64 // packStatus(state, csn)

	writes []writeEntry
	logBuf []byte

	deps   map[uint64]*Txn // register-and-report commit dependencies
	doneCh chan struct{}

	finished bool
	// prepared marks a 2PC participant transaction that has voted and now
	// awaits the coordinator's decision: no further operations, commits or
	// aborts are accepted through the Txn; Engine.Resolve owns its fate.
	prepared bool

	// trace, when non-nil, attributes the commit pipeline's WAL and
	// replication stages to this transaction's request trace. Owned by the
	// transaction's worker goroutine until CommitAsync hands it to the WAL
	// I/O goroutine.
	trace *obs.Trace
}

// SetTrace attaches a request trace to the transaction (nil detaches).
// The commit path threads it through the WAL so enqueue, group-commit,
// replication, and durability are attributed per request.
func (t *Txn) SetTrace(tr *obs.Trace) {
	if t == nil {
		return
	}
	t.trace = tr
}

// Begin starts a transaction on a worker slot. Each worker slot can run one
// transaction at a time (the paper binds one worker thread per core).
func (e *Engine) Begin(worker int) (*Txn, error) {
	if e.closed.Load() {
		return nil, ErrClosed
	}
	if e.durabilityLost.Load() {
		return nil, ErrDurabilityLost
	}
	if worker < 0 || worker >= len(e.workers) {
		return nil, fmt.Errorf("core: worker %d out of range [0,%d)", worker, len(e.workers))
	}
	begin := e.clk.Now()
	slot := &e.workers[worker]
	if !slot.activeBegin.CompareAndSwap(0, begin) {
		return nil, ErrWorkerBusy
	}
	t := &Txn{
		e:      e,
		worker: worker,
		tid:    e.tidSeq.Add(1) | tidFlag,
		begin:  begin,
		doneCh: make(chan struct{}),
	}
	t.statusWord.Store(packStatus(txActive, 0))
	e.status.register(t)
	return t, nil
}

// Begin0 begins on worker 0 (convenience for examples and tests).
func (e *Engine) Begin0() (*Txn, error) { return e.Begin(0) }

// TID returns the transaction ID.
func (t *Txn) TID() uint64 { return t.tid }

// BeginTS returns the snapshot timestamp.
func (t *Txn) BeginTS() uint64 { return t.begin }

// CSN returns the commit sequence number (0 while active, after abort, or
// for read-only commits, which consume no CSN).
func (t *Txn) CSN() uint64 {
	st, csn := t.state()
	if st == txPrecommitted || st == txCommitted {
		return csn
	}
	return 0
}

// state returns (state, csn).
func (t *Txn) state() (uint64, uint64) {
	w := t.statusWord.Load()
	return statusState(w), statusCSN(w)
}

// --- visibility ----------------------------------------------------------

// visible reports whether version v is visible to t under snapshot
// isolation, resolving TID-stamped versions through the status map
// (Section 5.1) and, when enabled, registering commit dependencies on
// uncommitted versions (Section 5.2).
func (t *Txn) visible(v *Version) (bool, error) {
	for {
		raw := v.tmin.Load()
		if !isTID(raw) {
			return raw <= t.begin, nil
		}
		if raw == t.tid {
			return true, nil // own write
		}
		owner := t.e.status.lookup(raw)
		if owner == nil {
			// Already stamped (or uninstalled); re-read and resolve.
			if v.tmin.Load() == raw {
				// Still TID and gone from the map: the owner aborted
				// and is uninstalling; invisible.
				return false, nil
			}
			continue
		}
		st, csn := owner.state()
		switch st {
		case txPrecommitted, txCommitted:
			return csn <= t.begin, nil
		case txAborted:
			return false, nil
		default: // active
			if t.e.cfg.SpeculativeReads {
				// Early commit (Section 5.2): read the uncommitted
				// version and register a dependency; we cannot commit
				// before the owner does, and we abort if it aborts.
				t.addDep(owner)
				return true, nil
			}
			return false, nil
		}
	}
}

func (t *Txn) addDep(owner *Txn) {
	if t.deps == nil {
		t.deps = make(map[uint64]*Txn)
	}
	t.deps[owner.tid] = owner
}

// visibleVersion walks the chain from head and returns the first version
// visible to t (nil if none).
func (t *Txn) visibleVersion(head *Version) (*Version, error) {
	for v := head; v != nil; v = v.next.Load() {
		ok, err := t.visible(v)
		if err != nil {
			return nil, err
		}
		if ok {
			return v, nil
		}
	}
	return nil, nil
}

// --- reads ---------------------------------------------------------------

// Get returns the row at rid visible to t.
func (t *Txn) Get(tbl *Table, rid RID) (Row, error) {
	if t.finished {
		return nil, ErrTxnDone
	}
	head := tbl.rows.Get(rid)
	if head == nil {
		return nil, ErrNotFound
	}
	v, err := t.visibleVersion(head)
	if err != nil {
		return nil, err
	}
	if v == nil || v.tomb {
		return nil, ErrNotFound
	}
	p, err := v.payload(t.e)
	if err != nil {
		return nil, err
	}
	return DecodeRow(p)
}

// GetByKey looks a row up through a unique index. vals are the index key
// column values in index order.
func (t *Txn) GetByKey(tbl *Table, idx int, vals ...Value) (RID, Row, error) {
	if t.finished {
		return 0, nil, ErrTxnDone
	}
	def := tbl.Schema.Indexes[idx]
	if !def.Unique {
		return 0, nil, fmt.Errorf("core: GetByKey on non-unique index %q", def.Name)
	}
	key := EncodeKey(nil, vals...)
	ridU, ok, err := tbl.indexes[idx].Get(key)
	if err != nil {
		return 0, nil, err
	}
	if !ok {
		return 0, nil, ErrNotFound
	}
	rid := RID(ridU)
	row, err := t.Get(tbl, rid)
	if err != nil {
		return 0, nil, err
	}
	// Index entries are single-versioned: verify the visible row still
	// carries the probed key (it may be a newer entry for a key this
	// snapshot should not see, or a stale entry for a changed key).
	for i, c := range def.Columns {
		if c >= len(row) || !row[c].Equal(vals[i]) {
			return 0, nil, ErrNotFound
		}
	}
	return rid, row, nil
}

// ScanKey visits visible rows whose index-idx keys fall in [fromVals,
// toVals) in key order. A nil bound is open.
func (t *Txn) ScanKey(tbl *Table, idx int, from, to []Value, fn func(rid RID, row Row) bool) error {
	if t.finished {
		return ErrTxnDone
	}
	var fromK, toK []byte
	if from != nil {
		fromK = EncodeKey(nil, from...)
	}
	if to != nil {
		toK = EncodeKey(nil, to...)
	}
	return t.scanEncoded(tbl, idx, fromK, toK, fn)
}

// ScanPrefix visits visible rows whose index keys start with the given
// values.
func (t *Txn) ScanPrefix(tbl *Table, idx int, prefix []Value, fn func(rid RID, row Row) bool) error {
	if t.finished {
		return ErrTxnDone
	}
	p := EncodeKey(nil, prefix...)
	return t.scanEncoded(tbl, idx, p, KeySuccessor(p), fn)
}

func (t *Txn) scanEncoded(tbl *Table, idx int, fromK, toK []byte, fn func(rid RID, row Row) bool) error {
	var scanErr error
	var kbuf []byte // reused per-row scratch for key verification
	err := tbl.indexes[idx].Scan(fromK, toK, func(key []byte, ridU uint64) bool {
		rid := RID(ridU)
		head := tbl.rows.Get(rid)
		if head == nil {
			return true
		}
		v, err := t.visibleVersion(head)
		if err != nil {
			scanErr = err
			return false
		}
		if v == nil || v.tomb {
			return true // not visible in this snapshot
		}
		p, err := v.payload(t.e)
		if err != nil {
			scanErr = err
			return false
		}
		row, err := DecodeRow(p)
		if err != nil {
			scanErr = err
			return false
		}
		// Verify the entry's key matches the visible row (a stale entry
		// for a changed key, or a newer key this snapshot must not see).
		// A single-version chain whose head is the visible version cannot
		// have stale entries: GC removes stale keys before pruning chains
		// to depth one, so the verification is skipped on that fast path.
		if t.e.readOnly.Load() || v != head || head.next.Load() != nil {
			kbuf, err = tbl.indexKeyAppend(kbuf[:0], idx, row, rid)
			if err != nil {
				scanErr = err
				return false
			}
			if string(kbuf) != string(key) {
				return true
			}
		}
		return fn(rid, row)
	})
	if scanErr != nil {
		return scanErr
	}
	return err
}

// --- writes --------------------------------------------------------------

// Insert adds a new row and returns its RID. Unique-index violations abort
// with ErrDuplicateKey; conflicts with concurrent writers abort with
// ErrConflict.
func (t *Txn) Insert(tbl *Table, row Row) (RID, error) {
	if t.finished {
		return 0, ErrTxnDone
	}
	if err := t.e.writeBlocked(); err != nil {
		return 0, err
	}
	if len(row) != len(tbl.Schema.Columns) {
		return 0, fmt.Errorf("core: row arity %d != %d columns", len(row), len(tbl.Schema.Columns))
	}
	pk, err := tbl.keyOf(0, row)
	if err != nil {
		return 0, err
	}
	primary := tbl.indexes[0]

	// Serialize uniqueness-check + reservation per key.
	unlock := primary.LockKey(pk)
	existing, havePrev, err := t.checkUnique(tbl, primary, pk)
	if err != nil {
		unlock()
		return 0, t.failWith(err)
	}

	payload := EncodeRow(nil, row)
	var rid RID
	var oldV, newV *Version
	var ops []idxOp
	if havePrev {
		// The key maps to a RID whose chain is a visible committed
		// delete: reuse the RID by chaining a fresh version (keeps the
		// index entry stable).
		rid = existing
		head := tbl.rows.Get(rid)
		newV = newVersion(t.tid, payload, false, head)
		okCAS, err := tbl.rows.CompareAndSwap(rid, head, newV)
		if err != nil || !okCAS {
			unlock()
			return 0, t.failWith(ErrConflict)
		}
		oldV = head
	} else {
		rid, err = tbl.rows.Alloc()
		if err != nil {
			unlock()
			return 0, t.failWith(err)
		}
		newV = newVersion(t.tid, payload, false, nil)
		if err := tbl.rows.Store(rid, newV); err != nil {
			unlock()
			return 0, t.failWith(err)
		}
		if err := primary.Insert(pk, uint64(rid)); err != nil {
			unlock()
			return 0, t.failWith(err)
		}
		ops = append(ops, idxOp{ix: primary, key: pk})
	}
	unlock()

	// Secondary indexes.
	for i := 1; i < len(tbl.indexes); i++ {
		k, err := tbl.indexKey(i, row, rid)
		if err != nil {
			return 0, t.failWith(err)
		}
		if tbl.Schema.Indexes[i].Unique {
			ux := tbl.indexes[i]
			unlock := ux.LockKey(k)
			if _, dup, err := t.checkUnique(tbl, ux, k); err != nil {
				unlock()
				return 0, t.failWith(err)
			} else if dup {
				// A visible committed delete on a unique secondary:
				// treat as free (entry will be shadowed).
				_ = dup
			}
			if err := ux.Insert(k, uint64(rid)); err != nil {
				unlock()
				return 0, t.failWith(err)
			}
			unlock()
		} else {
			if err := tbl.indexes[i].Insert(k, uint64(rid)); err != nil {
				return 0, t.failWith(err)
			}
		}
		ops = append(ops, idxOp{ix: tbl.indexes[i], key: k})
	}

	var logOff int
	t.logBuf, logOff = wal.AppendRecord(t.logBuf, wal.OpInsert, tbl.ID, uint64(rid), payload)
	t.writes = append(t.writes, writeEntry{table: tbl, rid: rid, newV: newV, oldV: oldV, logOff: logOff, idxOps: ops})
	tbl.liveRows.Add(1)
	return rid, nil
}

// checkUnique inspects the chain behind an existing index entry for key.
// It returns (rid, reusable) where reusable means the key's record is a
// committed delete visible to t (insert may chain onto it). Errors:
// ErrDuplicateKey for a live or pending record, ErrConflict for an
// uncommitted writer.
func (t *Txn) checkUnique(tbl *Table, ix *index.Index, key []byte) (RID, bool, error) {
	ridU, ok, err := ix.Get(key)
	if err != nil {
		return 0, false, err
	}
	if !ok {
		return 0, false, nil
	}
	rid := RID(ridU)
	head := tbl.rows.Get(rid)
	if head == nil {
		return 0, false, nil // GC already cleared the record; stale entry
	}
	raw := head.tmin.Load()
	if isTID(raw) && raw != t.tid {
		// Pending insert/update by another transaction.
		return 0, false, ErrConflict
	}
	v, err := t.visibleVersion(head)
	if err != nil {
		return 0, false, err
	}
	if v != nil && !v.tomb {
		// Live row under our snapshot... but also guard against a
		// committed-but-invisible newer live version (first-committer
		// wins on insert too).
		return 0, false, ErrDuplicateKey
	}
	// Invisible or deleted. If the newest version is a committed delete,
	// the RID is reusable; if the newest is a live version committed
	// after our snapshot, that is a conflict.
	if !head.tomb && !isTID(head.tmin.Load()) {
		return 0, false, ErrConflict
	}
	if isTID(head.tmin.Load()) && head.tmin.Load() == t.tid && head.tomb {
		// We deleted it ourselves in this transaction: reuse.
		return rid, true, nil
	}
	if head.tomb {
		return rid, true, nil
	}
	return 0, false, ErrConflict
}

// Update replaces the row at rid. The caller supplies the complete new row
// (Section 4.2: versions store full record contents).
func (t *Txn) Update(tbl *Table, rid RID, row Row) error {
	if t.finished {
		return ErrTxnDone
	}
	if err := t.e.writeBlocked(); err != nil {
		return err
	}
	if len(row) != len(tbl.Schema.Columns) {
		return fmt.Errorf("core: row arity %d != %d columns", len(row), len(tbl.Schema.Columns))
	}
	oldRow, head, err := t.fetchForWrite(tbl, rid)
	if err != nil {
		return err
	}
	payload := EncodeRow(nil, row)
	newV := newVersion(t.tid, payload, false, head)
	okCAS, err := tbl.rows.CompareAndSwap(rid, head, newV)
	if err != nil {
		return t.failWith(err)
	}
	if !okCAS {
		return t.failWith(ErrConflict)
	}
	we := writeEntry{table: tbl, rid: rid, newV: newV, oldV: head}
	// Index maintenance for key-changing updates: add entries for the new
	// keys, keep the old entries (older snapshots still resolve through
	// them); old entries die with the old version at GC.
	for i := 0; i < len(tbl.indexes); i++ {
		oldK, err := tbl.indexKey(i, oldRow, rid)
		if err != nil {
			return t.failWith(err)
		}
		newK, err := tbl.indexKey(i, row, rid)
		if err != nil {
			return t.failWith(err)
		}
		if string(oldK) == string(newK) {
			continue
		}
		if tbl.Schema.Indexes[i].Unique {
			ux := tbl.indexes[i]
			unlock := ux.LockKey(newK)
			if _, _, err := t.checkUnique(tbl, ux, newK); err != nil {
				unlock()
				return t.failWith(err)
			}
			if err := ux.Insert(newK, uint64(rid)); err != nil {
				unlock()
				return t.failWith(err)
			}
			unlock()
		} else {
			if err := tbl.indexes[i].Insert(newK, uint64(rid)); err != nil {
				return t.failWith(err)
			}
		}
		we.idxOps = append(we.idxOps, idxOp{ix: tbl.indexes[i], key: newK})
		we.oldKeys = append(we.oldKeys, oldKey{ix: tbl.indexes[i], key: oldK})
	}
	var logOff int
	t.logBuf, logOff = wal.AppendRecord(t.logBuf, wal.OpUpdate, tbl.ID, uint64(rid), payload)
	we.logOff = logOff
	t.writes = append(t.writes, we)
	return nil
}

// Delete removes the row at rid by installing a tombstone version.
func (t *Txn) Delete(tbl *Table, rid RID) error {
	if t.finished {
		return ErrTxnDone
	}
	if err := t.e.writeBlocked(); err != nil {
		return err
	}
	oldRow, head, err := t.fetchForWrite(tbl, rid)
	if err != nil {
		return err
	}
	newV := newVersion(t.tid, nil, true, head)
	okCAS, err := tbl.rows.CompareAndSwap(rid, head, newV)
	if err != nil {
		return t.failWith(err)
	}
	if !okCAS {
		return t.failWith(ErrConflict)
	}
	we := writeEntry{table: tbl, rid: rid, newV: newV, oldV: head}
	// All index entries become garbage once the delete is reclaimable.
	for i := 0; i < len(tbl.indexes); i++ {
		k, err := tbl.indexKey(i, oldRow, rid)
		if err != nil {
			return t.failWith(err)
		}
		we.oldKeys = append(we.oldKeys, oldKey{ix: tbl.indexes[i], key: k})
	}
	var logOff int
	t.logBuf, logOff = wal.AppendRecord(t.logBuf, wal.OpDelete, tbl.ID, uint64(rid), nil)
	we.logOff = logOff
	t.writes = append(t.writes, we)
	tbl.liveRows.Add(-1)
	return nil
}

// fetchForWrite resolves the visible row and performs first-committer-wins
// conflict detection: the newest version must be the visible one.
func (t *Txn) fetchForWrite(tbl *Table, rid RID) (Row, *Version, error) {
	head := tbl.rows.Get(rid)
	if head == nil {
		return nil, nil, ErrNotFound
	}
	raw := head.tmin.Load()
	if isTID(raw) && raw != t.tid {
		t.e.stats.Conflicts.Add(1)
		t.e.mConflicts.Inc()
		return nil, nil, t.failWith(ErrConflict)
	}
	if !isTID(raw) && raw > t.begin {
		// Committed after our snapshot: first committer wins.
		t.e.stats.Conflicts.Add(1)
		t.e.mConflicts.Inc()
		return nil, nil, t.failWith(ErrConflict)
	}
	// head is now our own write or a version visible to us.
	if head.tomb {
		return nil, nil, ErrNotFound
	}
	p, err := head.payload(t.e)
	if err != nil {
		return nil, nil, err
	}
	row, err := DecodeRow(p)
	if err != nil {
		return nil, nil, err
	}
	return row, head, nil
}

// failWith aborts the transaction (if the error demands it) and returns err.
func (t *Txn) failWith(err error) error {
	switch err {
	case ErrConflict, ErrDuplicateKey, ErrDependencyAborted:
		_ = t.Abort()
	}
	return err
}
