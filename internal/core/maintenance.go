package core

import (
	"sync"
	"time"
)

// Background maintenance: the paper's engine runs checkpoints "regularly
// ... in the background without blocking forward processing" (Section 4.3),
// destages the log to the storage tier periodically (Section 3.1), and
// interleaves garbage collection with forward processing or schedules it in
// the background (Section 4.4). StartMaintenance wires those cadences up.

// MaintenanceConfig sets the background cadences; zero durations disable
// the corresponding task.
type MaintenanceConfig struct {
	// CheckpointEvery takes a dataless checkpoint at this interval,
	// bounding recovery time (Figure 8's motivation).
	CheckpointEvery time.Duration
	// DestageEvery archives sealed log segments to the storage tier.
	DestageEvery time.Duration
	// GCEvery drains all workers' retirement bags (in addition to the
	// incremental GC interleaved with commits).
	GCEvery time.Duration
	// OnError observes background task failures (nil = ignore).
	OnError func(task string, err error)
}

// StartMaintenance launches the background maintenance goroutine and
// returns a stop function. Stopping is idempotent; Engine.Close does not
// stop maintenance implicitly, but a stopped engine makes every task a
// no-op error that is reported once and then ceases.
func (e *Engine) StartMaintenance(cfg MaintenanceConfig) (stop func()) {
	stopCh := make(chan struct{})
	var once sync.Once
	var wg sync.WaitGroup

	fail := func(task string, err error) bool {
		if err == nil {
			return false
		}
		if cfg.OnError != nil {
			cfg.OnError(task, err)
		}
		return err == ErrClosed
	}
	run := func(every time.Duration, task string, fn func() error) {
		if every <= 0 {
			return
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			tick := time.NewTicker(every)
			defer tick.Stop()
			for {
				select {
				case <-stopCh:
					return
				case <-tick.C:
					if fail(task, fn()) {
						return // engine closed; stop quietly
					}
				}
			}
		}()
	}

	run(cfg.CheckpointEvery, "checkpoint", func() error {
		_, err := e.Checkpoint()
		return err
	})
	run(cfg.DestageEvery, "destage", func() error {
		_, err := e.DestageLog()
		return err
	})
	run(cfg.GCEvery, "gc", func() error {
		e.RunGC()
		return nil
	})

	return func() {
		once.Do(func() {
			close(stopCh)
			wg.Wait()
		})
	}
}
