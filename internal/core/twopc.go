package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"

	"hiengine/internal/chaos"
	"hiengine/internal/wal"
)

// Two-phase commit participant (sharding). A prepared transaction is the
// paper's commit pipeline cut in half: the synchronous part (dependency
// resolution, conflict validation) runs at prepare, the whole write set is
// logged durably inside a single OpPrepare record on the answered-at-
// durability group-commit path, but NO commit sequence number is acquired
// and no version is stamped -- the writes stay TID-stamped, which is what
// makes a prepared transaction hold its write locks: conflicting writers
// keep hitting ErrConflict on the TID heads, and readers treat the versions
// as uncommitted. The coordinator's later decision appends an OpDecide
// record (also answered at durability); only its durability callback stamps
// the CSN into the versions (commit) or uninstalls them (abort). A crash
// between the two leaves the prepare record in the log without a decision;
// recovery reconstructs the transaction into the in-doubt list, TID stamps
// and all, and the coordinator resolves it on reconnect.
//
// Decision ownership: the gtid encodes a "home" participant. The commit
// point of a cross-shard transaction is the home's durable decision record;
// other participants learn the outcome from the coordinator or, after a
// coordinator crash, by asking the home (TxnStatus). A home with no durable
// decision for a prepared gtid has, by construction, never acknowledged the
// commit to anyone -- so presumed abort is safe.

// Chaos injection sites for the 2PC participant.
const (
	// SitePrepareLog fires before the prepare record is handed to the log:
	// a crash here aborts the transaction cleanly -- nothing durable, the
	// coordinator sees a failed vote.
	SitePrepareLog = "core.prepare.log"
	// SiteDecideLog fires before the decision record is handed to the log:
	// a crash here leaves the transaction prepared and in-doubt.
	SiteDecideLog = "core.decide.log"
)

func init() {
	chaos.RegisterSite(SitePrepareLog, "crash before the prepare record is logged: clean abort, failed vote")
	chaos.RegisterSite(SiteDecideLog, "crash before the decision record is logged: transaction stays in-doubt")
}

// 2PC errors.
var (
	// ErrInDoubt is returned for operations that cannot proceed because the
	// transaction is prepared and awaiting the coordinator's decision.
	ErrInDoubt = errors.New("core: transaction is in-doubt (prepared, awaiting decision)")
	// ErrUnknownGTID is returned by a commit decision for a gtid this
	// participant never prepared (an abort decision for an unknown gtid is
	// a no-op: presumed abort).
	ErrUnknownGTID = errors.New("core: unknown global transaction")
	// ErrConflictingDecision is returned when a decision contradicts one
	// already made for the same gtid.
	ErrConflictingDecision = errors.New("core: conflicting 2PC decision")
)

// TxnState is a participant's knowledge of a global transaction's outcome.
type TxnState int

const (
	// TxnUnknown: no record of the gtid (never prepared here, or prepared
	// on a lineage this node never saw). Presumed abort.
	TxnUnknown TxnState = iota
	// TxnInDoubt: prepared, no durable decision.
	TxnInDoubt
	// TxnCommitted: durable commit decision.
	TxnCommitted
	// TxnAborted: durable abort decision.
	TxnAborted
)

// pend2pcEntry tracks one global transaction this participant prepared (or
// learned a decision for). Entries are retained after the decision so the
// home participant keeps answering TxnStatus across checkpoints; the
// checkpoint fence excludes the backing log segments accordingly (see
// filterFence2PC). Retention ends when the coordinator confirms the
// decision is durably applied everywhere and prunes the entry (Forget);
// entries whose coordinator never confirms (resolver-resolved or
// crash-orphaned gtids) are retained indefinitely.
type pend2pcEntry struct {
	gtid string

	mu  sync.Mutex
	txn *Txn // prepared transaction state; nil once decided (or for decision-only entries)

	havePrep bool
	prepSeg  uint16 // segment holding the OpPrepare record

	deciding bool // decision record handed to the log, not yet durable
	decided  bool // decision durable and applied
	commit   bool
	csn      uint64 // decision CSN (acquired for commit AND abort)
	decSeg   uint16 // segment holding the OpDecide record

	waiters []func(csn uint64, err error)
}

// uvarintLen returns the encoded size of v.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// prepHeaderLen is the encoded header size of an OpPrepare/OpDecide record
// (op + fixed CSN + table 0 + rid 0 + payload length) -- the offset from the
// record's address to its payload.
func prepHeaderLen(payloadLen int) int {
	return 1 + 8 + 1 + 1 + uvarintLen(uint64(payloadLen))
}

// encodePreparePayload wraps a gtid and a transaction's raw log buffer into
// an OpPrepare payload.
func encodePreparePayload(gtid string, logBuf []byte) []byte {
	p := binary.AppendUvarint(make([]byte, 0, len(gtid)+len(logBuf)+4), uint64(len(gtid)))
	p = append(p, gtid...)
	return append(p, logBuf...)
}

// decodePreparePayload splits an OpPrepare payload into the gtid and the
// embedded write buffer. body aliases payload.
func decodePreparePayload(payload []byte) (gtid string, body []byte, err error) {
	n, w := binary.Uvarint(payload)
	if w <= 0 || int(n) <= 0 || w+int(n) > len(payload) {
		return "", nil, errors.New("core: corrupt prepare payload")
	}
	return string(payload[w : w+int(n)]), payload[w+int(n):], nil
}

// encodeDecidePayload builds an OpDecide payload.
func encodeDecidePayload(gtid string, commit bool) []byte {
	p := binary.AppendUvarint(make([]byte, 0, len(gtid)+3), uint64(len(gtid)))
	p = append(p, gtid...)
	if commit {
		return append(p, 1)
	}
	return append(p, 0)
}

// decodeDecidePayload parses an OpDecide payload.
func decodeDecidePayload(payload []byte) (gtid string, commit bool, err error) {
	n, w := binary.Uvarint(payload)
	if w <= 0 || int(n) <= 0 || w+int(n)+1 != len(payload) {
		return "", false, errors.New("core: corrupt decision payload")
	}
	return string(payload[w : w+int(n)]), payload[w+int(n)] == 1, nil
}

// encodeGTIDPayload builds an OpForget payload: just the gtid.
func encodeGTIDPayload(gtid string) []byte {
	p := binary.AppendUvarint(make([]byte, 0, len(gtid)+2), uint64(len(gtid)))
	return append(p, gtid...)
}

// decodeGTIDPayload parses an OpForget payload.
func decodeGTIDPayload(payload []byte) (string, error) {
	n, w := binary.Uvarint(payload)
	if w <= 0 || int(n) <= 0 || w+int(n) != len(payload) {
		return "", errors.New("core: corrupt forget payload")
	}
	return string(payload[w:]), nil
}

// forEachEmbedded walks the standard records embedded in a prepare body.
// off is each record's byte offset within body.
func forEachEmbedded(body []byte, fn func(off int, rec wal.Record) error) error {
	pos := 0
	for pos < len(body) {
		rec, n, err := wal.DecodeRecord(body[pos:])
		if err != nil {
			return err
		}
		if err := fn(pos, rec); err != nil {
			return err
		}
		pos += n
	}
	return nil
}

// Prepared reports whether the transaction has voted in a 2PC prepare and
// now awaits the coordinator's decision.
func (t *Txn) Prepared() bool { return t.prepared }

// Prepare is the synchronous form of PrepareAsync: it blocks until the
// prepare record is durable and returns the vote (readOnly=true means the
// transaction wrote nothing and committed locally; no decision is owed).
func (t *Txn) Prepare(gtid string) (readOnly bool, err error) {
	type vote struct {
		ro  bool
		err error
	}
	done := make(chan vote, 1)
	if err := t.PrepareAsync(gtid, func(ro bool, err error) { done <- vote{ro, err} }); err != nil {
		return false, err
	}
	v := <-done
	return v.ro, v.err
}

// PrepareAsync runs phase one of 2PC on this participant: it validates the
// transaction exactly like commitStart (dependencies, conflicts, fencing),
// then logs the whole write set inside one OpPrepare record and invokes cb
// once that record is durable. The versions stay TID-stamped -- invisible
// to readers, blocking conflicting writers -- until Resolve delivers the
// decision. The worker slot is released immediately (the session moves on;
// the prepared transaction no longer belongs to it). A read-only
// transaction commits locally and votes readOnly=true via cb.
func (t *Txn) PrepareAsync(gtid string, cb func(readOnly bool, err error)) error {
	ro, err := t.prepareStart(gtid, cb)
	if err != nil {
		return err
	}
	if ro {
		cb(true, nil)
	}
	return nil
}

func (t *Txn) prepareStart(gtid string, durable func(readOnly bool, err error)) (bool, error) {
	if gtid == "" {
		return false, errors.New("core: empty gtid")
	}
	if t.finished || t.prepared {
		return false, ErrTxnDone
	}
	if t.e.durabilityLost.Load() {
		_ = t.Abort()
		return false, ErrDurabilityLost
	}
	if len(t.writes) > 0 {
		if err := t.e.writeBlocked(); err != nil {
			_ = t.Abort()
			return false, err
		}
	}
	for _, dep := range t.deps {
		<-dep.doneCh
		if st, _ := dep.state(); st == txAborted {
			_ = t.Abort()
			t.e.mDepAborts.Inc()
			return false, ErrDependencyAborted
		}
	}
	if len(t.writes) == 0 {
		// Nothing to prepare: commit locally, vote read-only. The
		// coordinator excludes this participant from phase two.
		t.finish(txCommitted, 0)
		t.e.stats.Commits.Add(1)
		t.e.mCommits.Inc()
		return true, nil
	}
	e := t.e
	if err := e.svc.Chaos().Check(SitePrepareLog); err != nil {
		// Crash before the prepare record reached the log: nothing durable,
		// clean abort, the coordinator sees a failed vote.
		_ = t.Abort()
		return false, err
	}
	// Reserve the gtid atomically with the duplicate check, BEFORE the
	// record is handed to the log: if registration waited for the
	// durability callback, two concurrent prepares under one gtid could
	// both pass the check and the second entry would overwrite the first,
	// orphaning a prepared transaction that still holds its write locks
	// with no entry left to resolve it. The reservation also fences late
	// prepares against a gtid a recovery sweep already presume-aborted
	// (its decision-only entry trips the duplicate check).
	entry := &pend2pcEntry{gtid: gtid, txn: t}
	e.pendMu.Lock()
	if _, dup := e.pend2pc[gtid]; dup {
		e.pendMu.Unlock()
		_ = t.Abort()
		return false, fmt.Errorf("core: gtid %q already prepared", gtid)
	}
	e.pend2pc[gtid] = entry
	e.pendMu.Unlock()

	payload := encodePreparePayload(gtid, t.logBuf)
	buf, off := wal.AppendRecord(nil, wal.OpPrepare, 0, 0, payload)
	// Byte offset from the OpPrepare record's address to the embedded write
	// buffer: record header, then the gtid length prefix and gtid.
	embBase := off + prepHeaderLen(len(payload)) + uvarintLen(uint64(len(gtid))) + len(gtid)

	t.prepared = true
	writes := t.writes
	worker := t.worker
	e.commitsStarted.Add(1)
	e.log.AppendTraced(worker, buf, t.trace, func(base wal.Addr, err error) {
		if err == nil {
			// Stamp permanent addresses NOW: the embedded records are full
			// WAL records, so each version's home is inside the prepare
			// record. A checkpoint taken after the decision can then cover
			// these writes like any others.
			for i := range writes {
				we := &writes[i]
				we.newV.addr.Store(uint64(base.Add(uint32(embBase + we.logOff))))
			}
			entry.mu.Lock()
			entry.havePrep = true
			entry.prepSeg = base.Segment()
			entry.mu.Unlock()
		} else {
			e.durabilityLost.Store(true)
			e.mDurabilityFail.Inc()
		}
		e.commitsDurable.Add(1)
		durable(false, err)
	})
	// Free the worker slot: the session moves on, the prepared transaction
	// belongs to the coordinator now. Deliberately NOT markFinished -- the
	// doneCh stays open so speculative readers block until the decision.
	t.finishSlot()
	return false, nil
}

// Resolve delivers the coordinator's decision for a prepared gtid. The
// decision record rides the same answered-at-durability log path as commits;
// done fires once it is durable AND applied (versions stamped for commit,
// uninstalled for abort) -- unlike local commits, 2PC visibility is NOT
// pipelined ahead of durability, because the decision CSN must never be
// observable if a crash could still lose the decision record. Idempotent:
// re-delivering the same decision attaches to the outcome; a contradicting
// decision fails with ErrConflictingDecision. An abort for an unknown gtid
// durably installs a decision-only abort entry -- a FENCE, not a no-op: a
// recovery sweep presume-aborting a gtid may be racing a live coordinator
// whose prepare has not reached this node yet, and the fence makes the late
// prepare (duplicate-gtid check) or a late conflicting commit decision fail
// here instead of letting the transaction commit after the sweep already
// aborted other participants. A commit for an unknown gtid fails with
// ErrUnknownGTID.
func (e *Engine) Resolve(gtid string, commit bool, done func(csn uint64, err error)) error {
	if e.closed.Load() {
		return ErrClosed
	}
	e.pendMu.Lock()
	entry := e.pend2pc[gtid]
	if entry == nil {
		if commit {
			e.pendMu.Unlock()
			return ErrUnknownGTID
		}
		entry = &pend2pcEntry{gtid: gtid}
		e.pend2pc[gtid] = entry
	}
	e.pendMu.Unlock()
	entry.mu.Lock()
	if entry.deciding || entry.decided {
		if entry.commit != commit {
			entry.mu.Unlock()
			return ErrConflictingDecision
		}
		if entry.decided {
			csn := uint64(0)
			if entry.commit {
				csn = entry.csn
			}
			entry.mu.Unlock()
			done(csn, nil)
			return nil
		}
		entry.waiters = append(entry.waiters, done)
		entry.mu.Unlock()
		return nil
	}
	if e.durabilityLost.Load() {
		entry.mu.Unlock()
		return ErrDurabilityLost
	}
	if err := e.svc.Chaos().Check(SiteDecideLog); err != nil {
		// Crash before the decision record reached the log: the transaction
		// stays prepared and in-doubt.
		entry.mu.Unlock()
		return err
	}
	// Both verdicts consume a CSN: stamping the decision record with a real
	// CSN keeps the checkpoint fence invariant uniform (every record in a
	// fenced segment has CSN <= the fencing checkpoint's CSN).
	csn := e.clk.Next()
	entry.deciding = true
	entry.commit = commit
	entry.csn = csn
	entry.waiters = append(entry.waiters, done)
	entry.mu.Unlock()

	buf, off := wal.AppendRecord(nil, wal.OpDecide, 0, 0, encodeDecidePayload(gtid, commit))
	wal.PatchCSN(buf, off, csn)
	e.commitsStarted.Add(1)
	e.log.AppendTraced(0, buf, nil, func(base wal.Addr, err error) {
		entry.mu.Lock()
		if err == nil {
			entry.decSeg = base.Segment()
			e.applyDecisionLocked(entry)
			entry.decided = true
			entry.deciding = false
		} else {
			e.durabilityLost.Store(true)
			e.mDurabilityFail.Inc()
		}
		ws := entry.waiters
		entry.waiters = nil
		entry.mu.Unlock()
		e.commitsDurable.Add(1)
		out := uint64(0)
		if err == nil && commit {
			out = csn
		}
		for _, w := range ws {
			w(out, err)
		}
	})
	return nil
}

// applyDecisionLocked applies a durable decision to the prepared transaction
// state. Caller holds entry.mu. For commit, versions are stamped with the
// decision CSN exactly like commitStart's stamping loop; for abort, the
// writes are uninstalled like Abort. Neither path touches the worker slot --
// it was released at prepare and may be running another transaction.
func (e *Engine) applyDecisionLocked(entry *pend2pcEntry) {
	t := entry.txn
	entry.txn = nil
	if t == nil {
		return // decision-only entry (no live prepared state here)
	}
	if entry.commit {
		csn := entry.csn
		t.statusWord.Store(packStatus(txPrecommitted, csn))
		for i := range t.writes {
			we := &t.writes[i]
			we.newV.tmin.Store(csn)
			if we.oldV != nil {
				we.oldV.tmax.Store(csn)
			}
		}
		e.status.remove(t.tid)
		t.statusWord.Store(packStatus(txCommitted, csn))
		t.retireWrites(csn)
		t.markFinished()
		e.stats.Commits.Add(1)
		e.mCommits.Inc()
		return
	}
	t.statusWord.Store(packStatus(txAborted, 0))
	for i := len(t.writes) - 1; i >= 0; i-- {
		we := &t.writes[i]
		_, _ = we.table.rows.CompareAndSwap(we.rid, we.newV, we.oldV)
		for j := len(we.idxOps) - 1; j >= 0; j-- {
			op := we.idxOps[j]
			_ = op.ix.Delete(op.key)
		}
		if we.oldV == nil {
			we.table.liveRows.Add(-1)
		} else if we.newV.tomb {
			we.table.liveRows.Add(1)
		}
	}
	e.status.remove(t.tid)
	t.markFinished()
	e.stats.Aborts.Add(1)
	e.mAborts.Inc()
}

// TxnStatus reports this participant's durable knowledge of a gtid. On the
// transaction's home participant this is the protocol's source of truth: a
// recovering coordinator treats TxnCommitted as commit and everything else
// as abort (presumed abort -- a home without a durable decision has never
// acknowledged the commit).
func (e *Engine) TxnStatus(gtid string) (TxnState, uint64) {
	e.pendMu.Lock()
	entry := e.pend2pc[gtid]
	e.pendMu.Unlock()
	if entry == nil {
		return TxnUnknown, 0
	}
	entry.mu.Lock()
	defer entry.mu.Unlock()
	if !entry.decided {
		return TxnInDoubt, 0
	}
	if entry.commit {
		return TxnCommitted, entry.csn
	}
	return TxnAborted, 0
}

// InDoubt lists gtids prepared here whose decision has not yet been made
// durable, sorted for determinism.
func (e *Engine) InDoubt() []string {
	e.pendMu.Lock()
	var out []string
	for g, entry := range e.pend2pc {
		entry.mu.Lock()
		if !entry.decided {
			out = append(out, g)
		}
		entry.mu.Unlock()
	}
	e.pendMu.Unlock()
	sort.Strings(out)
	return out
}

// inDoubtCount is the gauge body behind core.indoubt_2pc.
func (e *Engine) inDoubtCount() int64 {
	e.pendMu.Lock()
	defer e.pendMu.Unlock()
	var n int64
	for _, entry := range e.pend2pc {
		entry.mu.Lock()
		if !entry.decided {
			n++
		}
		entry.mu.Unlock()
	}
	return n
}

// filterFence2PC removes from a checkpoint's fence list every segment that
// recovery still needs to scan for 2PC state. The caller has already passed
// the durability barrier, so every entry whose records could live in a
// sealed segment is registered and its fields are stable:
//
//   - undecided: the OpPrepare record must replay (it reconstructs the
//     in-doubt transaction), so its segment stays unfenced.
//   - decided: the OpDecide record must replay (it is what lets this node
//     keep answering TxnStatus after a restart), so its segment stays
//     unfenced. A commit whose CSN is above the checkpoint CSN is not
//     covered by the image either, so its prepare segment also stays.
func (e *Engine) filterFence2PC(fence []uint16, ckptCSN uint64) []uint16 {
	e.pendMu.Lock()
	excl := make(map[uint16]bool)
	for _, entry := range e.pend2pc {
		entry.mu.Lock()
		if !entry.decided {
			if entry.havePrep {
				excl[entry.prepSeg] = true
			}
		} else {
			excl[entry.decSeg] = true
			if entry.commit && entry.csn > ckptCSN && entry.havePrep {
				excl[entry.prepSeg] = true
			}
		}
		entry.mu.Unlock()
	}
	e.pendMu.Unlock()
	if len(excl) == 0 {
		return fence
	}
	out := fence[:0]
	for _, s := range fence {
		if !excl[s] {
			out = append(out, s)
		}
	}
	return out
}

// protect2PCSegments removes segments holding live 2PC records from a
// compaction's drop set.
func (e *Engine) protect2PCSegments(drop map[uint16]bool) {
	e.pendMu.Lock()
	for _, entry := range e.pend2pc {
		entry.mu.Lock()
		if entry.havePrep {
			delete(drop, entry.prepSeg)
		}
		if entry.decided || entry.deciding {
			delete(drop, entry.decSeg)
		}
		entry.mu.Unlock()
	}
	e.pendMu.Unlock()
}

// reconstructInDoubt rebuilds a prepared transaction from its OpPrepare
// record during recovery (or replica promotion): TID-stamped versions are
// installed on top of the current heads -- re-acquiring the write locks --
// and index entries are re-inserted for keys the transaction added, exactly
// mirroring the live write path so a later abort uninstalls cleanly.
// Runs single-threaded after replay and index rebuild.
func (e *Engine) reconstructInDoubt(gtid string, addr wal.Addr, payload []byte) error {
	_, body, err := decodePreparePayload(payload)
	if err != nil {
		return err
	}
	embBase := prepHeaderLen(len(payload)) + (len(payload) - len(body))
	t := &Txn{
		e:        e,
		worker:   0,
		tid:      e.tidSeq.Add(1) | tidFlag,
		doneCh:   make(chan struct{}),
		prepared: true,
	}
	t.statusWord.Store(packStatus(txActive, 0))
	e.status.register(t)
	err = forEachEmbedded(body, func(off int, rec wal.Record) error {
		tbl, ok := e.tableByID(rec.Table)
		if !ok {
			return fmt.Errorf("core: prepare record for unknown table %d", rec.Table)
		}
		rid := RID(rec.RID)
		if err := tbl.rows.AllocAt(rid); err != nil {
			return err
		}
		head := tbl.rows.Get(rid)
		tomb := rec.Op == wal.OpDelete
		var pay []byte
		if !tomb {
			pay = append([]byte(nil), rec.Payload...)
		}
		newV := newVersion(t.tid, pay, tomb, head)
		newV.addr.Store(uint64(addr.Add(uint32(embBase + off))))
		if ok, err := tbl.rows.CompareAndSwap(rid, head, newV); err != nil || !ok {
			return fmt.Errorf("core: in-doubt reconstruction lost a CAS on table %d rid %d", rec.Table, rid)
		}
		we := writeEntry{table: tbl, rid: rid, newV: newV, oldV: head}
		switch rec.Op {
		case wal.OpInsert, wal.OpUpdate:
			row, err := DecodeRow(rec.Payload)
			if err != nil {
				return err
			}
			// Mirror the live path's index discipline: inserts (and updates
			// with no visible predecessor) add every key; updates add only
			// keys that changed, so an abort's uninstall never removes a
			// committed row's live entries.
			var oldRow Row
			if rec.Op == wal.OpUpdate && head != nil && !head.tomb {
				if p, err := head.payload(e); err == nil && p != nil {
					oldRow, _ = DecodeRow(p)
				}
			}
			for i := 0; i < len(tbl.indexes); i++ {
				k, err := tbl.indexKey(i, row, rid)
				if err != nil {
					return err
				}
				if oldRow != nil {
					oldK, err := tbl.indexKey(i, oldRow, rid)
					if err == nil && string(oldK) == string(k) {
						continue
					}
				}
				if err := tbl.indexes[i].Insert(k, uint64(rid)); err != nil {
					return err
				}
				we.idxOps = append(we.idxOps, idxOp{ix: tbl.indexes[i], key: k})
			}
			if head == nil {
				tbl.liveRows.Add(1)
			}
		case wal.OpDelete:
			tbl.liveRows.Add(-1)
		}
		t.writes = append(t.writes, we)
		return nil
	})
	if err != nil {
		return err
	}
	entry := &pend2pcEntry{gtid: gtid, txn: t, havePrep: true, prepSeg: addr.Segment()}
	e.pendMu.Lock()
	e.pend2pc[gtid] = entry
	e.pendMu.Unlock()
	return nil
}

// Forget prunes a decided gtid once its coordinator has confirmed the
// decision durably applied at every participant: nobody will ever ask about
// the transaction again, so the entry that kept TxnStatus answering -- and
// kept the backing prepare/decision segments out of checkpoint fences and
// compaction drops -- can be dropped. The forget rides the log as an
// OpForget record (worker 0's stream, strictly after the decision record it
// tombstones) so recovery and live followers drop the entry too; done fires
// once the record is durable and the entry is gone. Forgetting an undecided
// gtid fails with ErrInDoubt; an unknown gtid succeeds as a no-op.
func (e *Engine) Forget(gtid string, done func(err error)) error {
	if e.closed.Load() {
		return ErrClosed
	}
	e.pendMu.Lock()
	entry := e.pend2pc[gtid]
	e.pendMu.Unlock()
	if entry == nil {
		done(nil)
		return nil
	}
	entry.mu.Lock()
	decided := entry.decided
	entry.mu.Unlock()
	if !decided {
		return ErrInDoubt
	}
	if e.durabilityLost.Load() {
		return ErrDurabilityLost
	}
	buf, _ := wal.AppendRecord(nil, wal.OpForget, 0, 0, encodeGTIDPayload(gtid))
	e.commitsStarted.Add(1)
	e.log.AppendTraced(0, buf, nil, func(_ wal.Addr, err error) {
		if err == nil {
			e.pendMu.Lock()
			if e.pend2pc[gtid] == entry {
				delete(e.pend2pc, gtid)
			}
			e.pendMu.Unlock()
		} else {
			e.durabilityLost.Store(true)
			e.mDurabilityFail.Inc()
		}
		e.commitsDurable.Add(1)
		done(err)
	})
	return nil
}

// noteDecision records a durable decision observed during recovery or
// follower replay for a gtid with no live prepared state here.
func (e *Engine) noteDecision(gtid string, commit bool, csn uint64, decSeg uint16, prepSeg uint16, havePrep bool) {
	entry := &pend2pcEntry{
		gtid:     gtid,
		decided:  true,
		commit:   commit,
		csn:      csn,
		decSeg:   decSeg,
		prepSeg:  prepSeg,
		havePrep: havePrep,
	}
	e.pendMu.Lock()
	e.pend2pc[gtid] = entry
	e.pendMu.Unlock()
}
