package core

import (
	"errors"
	"testing"

	"hiengine/internal/srss"
)

// TestDurabilityFailureFailStops exercises the fail-stop contract: when a
// commit's log append fails durability (every compute node down, so sealed
// segments cannot migrate), the engine latches a sticky error and refuses
// all later transactions. Acknowledging them would let the client-visible
// history silently diverge from what recovery can reconstruct.
func TestDurabilityFailureFailStops(t *testing.T) {
	svc := srss.New(srss.Config{ComputeNodes: 3})
	e, err := Open(Config{Name: "failstop-test", Service: svc, Workers: 8, SegmentSize: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	tbl := mustTable(t, e, usersSchema())
	insertUser(t, e, tbl, 0, 1, "pre-failure", 1)

	// A transaction opened before the failure, committed after it.
	straggler, err := e.Begin(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := straggler.Insert(tbl, Row{I(2), S("straggler"), I(0)}); err != nil {
		t.Fatal(err)
	}

	// Fail the whole compute tier: the next append seals the open segment
	// and rotation cannot find a healthy replica set.
	for i := 0; i < 3; i++ {
		svc.ComputeNode(i).Fail()
	}

	tx, err := e.Begin(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Insert(tbl, Row{I(3), S("doomed"), I(0)}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err == nil {
		t.Fatal("commit acknowledged without durability")
	} else if errors.Is(err, ErrDurabilityLost) {
		t.Fatalf("first failing commit should surface the append error, got %v", err)
	}

	if !e.DurabilityLost() {
		t.Fatal("engine did not latch the durability-lost flag")
	}
	if _, err := e.Begin(2); !errors.Is(err, ErrDurabilityLost) {
		t.Fatalf("Begin after durability loss: got %v, want ErrDurabilityLost", err)
	}
	if err := straggler.Commit(); !errors.Is(err, ErrDurabilityLost) {
		t.Fatalf("straggler commit: got %v, want ErrDurabilityLost", err)
	}
	if got := e.Obs().Counter("core.durability_failures").Load(); got < 1 {
		t.Fatalf("durability_failures counter = %d, want >= 1", got)
	}
}

// TestGCDeleteCountsFullChain is a white-box regression for the GC delete
// path: clearing the indirection entry unlinks the delete marker AND every
// version still chained below it, but the accounting only counted one.
// The undercount needs the cross-worker interleaving where the isDelete
// entry is drained without the update-pair entry (which normally prunes the
// chain below the marker first), so the test filters the bag by hand.
func TestGCDeleteCountsFullChain(t *testing.T) {
	e := testEngine(t, func(c *Config) { c.GCEveryNCommits = 0 }) // manual GC
	tbl := mustTable(t, e, usersSchema())
	rid := insertUser(t, e, tbl, 0, 1, "ada", 1)
	tx, _ := e.Begin(0)
	if err := tx.Delete(tbl, rid); err != nil {
		t.Fatal(err)
	}
	commit(t, tx)

	// Keep only the isDelete entry: the delete marker still has the
	// superseded insert version chained below it when the PIA entry is
	// cleared.
	slot := &e.workers[0]
	slot.mu.Lock()
	var only []retiredVersion
	for _, r := range slot.retired {
		if r.isDelete {
			only = append(only, r)
		}
	}
	if len(only) != 1 {
		slot.mu.Unlock()
		t.Fatalf("expected one isDelete bag entry, got %d", len(only))
	}
	slot.retired = only
	slot.mu.Unlock()

	if got := e.RunGC(); got != 2 {
		t.Fatalf("RunGC reclaimed %d versions, want 2 (delete marker + superseded insert)", got)
	}
	if tbl.Rows().Get(rid) != nil {
		t.Fatal("PIA entry survives delete GC")
	}
}

// TestEngineObsSnapshot checks the end-to-end wiring: commits, aborts and
// WAL activity all land in the engine's registry, and the derived
// durability-lag gauge reads zero once everything is durable.
func TestEngineObsSnapshot(t *testing.T) {
	e := testEngine(t)
	tbl := mustTable(t, e, usersSchema())
	for i := int64(1); i <= 10; i++ {
		insertUser(t, e, tbl, 0, i, "row", i)
	}
	tx, _ := e.Begin(1)
	if _, err := tx.Insert(tbl, Row{I(99), S("aborted"), I(0)}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}

	reg := e.Obs()
	if got := reg.Counter("core.commits").Load(); got < 10 {
		t.Fatalf("core.commits = %d, want >= 10", got)
	}
	if got := reg.Counter("core.aborts").Load(); got != 1 {
		t.Fatalf("core.aborts = %d, want 1", got)
	}
	if got := reg.Histogram("wal.commit_latency_ns").Count(); got < 10 {
		t.Fatalf("wal.commit_latency_ns count = %d, want >= 10", got)
	}
	snap := reg.Snapshot()
	lag := int64(-1)
	for _, m := range snap.Metrics {
		if m.Name == "core.durability_lag" {
			lag = m.Value
		}
	}
	if lag != 0 {
		t.Fatalf("core.durability_lag = %d after all commits returned, want 0", lag)
	}
}
