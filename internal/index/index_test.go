package index

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"hiengine/internal/srss"
)

func key(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}

func testIndex(t *testing.T, cfg Config) (*Index, *srss.Service) {
	t.Helper()
	svc := srss.New(srss.Config{MaxPLogSize: 1 << 24})
	cfg.Service = svc
	return New(cfg), svc
}

func TestGetInsertDelete(t *testing.T) {
	ix, _ := testIndex(t, Config{})
	ix.Insert(key(1), 100)
	ix.Insert(key(2), 200)
	if rid, ok, _ := ix.Get(key(1)); !ok || rid != 100 {
		t.Fatalf("get 1: %d %v", rid, ok)
	}
	ix.Delete(key(1))
	if _, ok, _ := ix.Get(key(1)); ok {
		t.Fatal("deleted key still visible")
	}
	if rid, ok, _ := ix.Get(key(2)); !ok || rid != 200 {
		t.Fatalf("get 2: %d %v", rid, ok)
	}
}

func TestFreezeKeepsLookups(t *testing.T) {
	ix, _ := testIndex(t, Config{})
	for i := 0; i < 1000; i++ {
		ix.Insert(key(uint64(i)), uint64(i+1))
	}
	if err := ix.Freeze(); err != nil {
		t.Fatal(err)
	}
	if got := ix.MemLen(); got != 0 {
		t.Fatalf("mem not emptied: %d", got)
	}
	if got := ix.Components(); got != 1 {
		t.Fatalf("components = %d", got)
	}
	for i := 0; i < 1000; i++ {
		if rid, ok, err := ix.Get(key(uint64(i))); err != nil || !ok || rid != uint64(i+1) {
			t.Fatalf("post-freeze get %d: %d %v %v", i, rid, ok, err)
		}
	}
	// New writes land in the fresh mem component and shadow old ones.
	ix.Insert(key(5), 999)
	if rid, _, _ := ix.Get(key(5)); rid != 999 {
		t.Fatalf("shadowing failed: %d", rid)
	}
}

func TestTombstoneMasksFrozenEntry(t *testing.T) {
	ix, _ := testIndex(t, Config{})
	ix.Insert(key(7), 70)
	ix.Freeze()
	ix.Delete(key(7))
	if _, ok, _ := ix.Get(key(7)); ok {
		t.Fatal("tombstone did not mask frozen entry")
	}
	ix.Freeze() // tombstone now lives in its own component
	if _, ok, _ := ix.Get(key(7)); ok {
		t.Fatal("frozen tombstone did not mask older component")
	}
}

func TestMergeDropsTombstonesAndDeadPLogs(t *testing.T) {
	ix, svc := testIndex(t, Config{})
	for i := 0; i < 100; i++ {
		ix.Insert(key(uint64(i)), uint64(i+1))
	}
	ix.Freeze()
	for i := 0; i < 50; i++ {
		ix.Delete(key(uint64(i)))
	}
	ix.Insert(key(200), 201)
	ix.Freeze()
	before := len(svc.List(srss.TierCompute))
	if err := ix.Merge(); err != nil {
		t.Fatal(err)
	}
	if got := ix.Components(); got != 1 {
		t.Fatalf("components after merge = %d", got)
	}
	after := len(svc.List(srss.TierCompute))
	if after >= before {
		t.Fatalf("merged-away plogs not reclaimed: %d -> %d", before, after)
	}
	for i := 0; i < 50; i++ {
		if _, ok, _ := ix.Get(key(uint64(i))); ok {
			t.Fatalf("deleted key %d resurfaced after merge", i)
		}
	}
	for i := 50; i < 100; i++ {
		if rid, ok, _ := ix.Get(key(uint64(i))); !ok || rid != uint64(i+1) {
			t.Fatalf("live key %d lost after merge", i)
		}
	}
	if rid, ok, _ := ix.Get(key(200)); !ok || rid != 201 {
		t.Fatal("newest component entry lost")
	}
}

func TestScanAcrossComponents(t *testing.T) {
	ix, _ := testIndex(t, Config{})
	// Oldest component: evens.
	for i := 0; i < 100; i += 2 {
		ix.Insert(key(uint64(i)), uint64(1000+i))
	}
	ix.Freeze()
	// Middle: odds, plus delete of key 4.
	for i := 1; i < 100; i += 2 {
		ix.Insert(key(uint64(i)), uint64(2000+i))
	}
	ix.Delete(key(4))
	ix.Freeze()
	// Mem: overwrite key 6.
	ix.Insert(key(6), 9999)

	var got []uint64
	var rids []uint64
	err := ix.Scan(key(0), key(20), func(k []byte, rid uint64) bool {
		got = append(got, binary.BigEndian.Uint64(k))
		rids = append(rids, rid)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{0, 1, 2, 3, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19}
	if len(got) != len(want) {
		t.Fatalf("scan got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan got %v want %v", got, want)
		}
	}
	for i, k := range got {
		var expect uint64
		switch {
		case k == 6:
			expect = 9999
		case k%2 == 0:
			expect = 1000 + k
		default:
			expect = 2000 + k
		}
		if rids[i] != expect {
			t.Fatalf("key %d rid = %d want %d", k, rids[i], expect)
		}
	}
}

func TestScanEarlyStop(t *testing.T) {
	ix, _ := testIndex(t, Config{})
	for i := 0; i < 50; i++ {
		ix.Insert(key(uint64(i)), uint64(i))
	}
	n := 0
	ix.Scan(nil, nil, func([]byte, uint64) bool { n++; return n < 7 })
	if n != 7 {
		t.Fatalf("visited %d", n)
	}
}

func TestAutoFreezeAndMerge(t *testing.T) {
	ix, _ := testIndex(t, Config{FreezeThreshold: 100, MaxComponents: 2})
	for i := 0; i < 1000; i++ {
		ix.Insert(key(uint64(i)), uint64(i+1))
	}
	if c := ix.Components(); c > 3 {
		t.Fatalf("auto-merge did not bound components: %d", c)
	}
	if m := ix.MemLen(); m >= 200 {
		t.Fatalf("auto-freeze did not bound mem: %d", m)
	}
	for i := 0; i < 1000; i += 37 {
		if rid, ok, err := ix.Get(key(uint64(i))); err != nil || !ok || rid != uint64(i+1) {
			t.Fatalf("get %d after auto maintenance: %d %v %v", i, rid, ok, err)
		}
	}
}

func TestAttachRoundTrip(t *testing.T) {
	svc := srss.New(srss.Config{MaxPLogSize: 1 << 24})
	ix := New(Config{Service: svc})
	for i := 0; i < 500; i++ {
		ix.Insert(key(uint64(i)), uint64(i+1))
	}
	ix.Freeze()
	metas := ix.Metas()
	if len(metas) != 1 {
		t.Fatalf("metas = %d", len(metas))
	}
	// A fresh index (recovery) reattaches the component.
	ix2 := New(Config{Service: svc})
	if err := ix2.Attach(metas[0]); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i += 13 {
		if rid, ok, err := ix2.Get(key(uint64(i))); err != nil || !ok || rid != uint64(i+1) {
			t.Fatalf("attached get %d: %d %v %v", i, rid, ok, err)
		}
	}
}

func TestFreezeWithoutService(t *testing.T) {
	ix := New(Config{})
	ix.Insert(key(1), 1)
	if err := ix.Freeze(); err == nil {
		t.Fatal("freeze without service succeeded")
	}
}

func TestKeyTooLong(t *testing.T) {
	ix := New(Config{})
	long := make([]byte, 3000)
	if err := ix.Insert(long, 1); err == nil {
		t.Fatal("oversized key accepted")
	}
	if err := ix.Delete(long); err == nil {
		t.Fatal("oversized key delete accepted")
	}
}

func TestConcurrentWritesWithFreezes(t *testing.T) {
	ix, _ := testIndex(t, Config{})
	const workers, per = 4, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				ix.Insert(key(uint64(w*per+i)), uint64(w*per+i+1))
			}
		}(w)
	}
	// Interleave freezes with the writers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if err := ix.Freeze(); err != nil {
				t.Errorf("freeze: %v", err)
			}
		}
	}()
	wg.Wait()
	ix.Freeze()
	missing := 0
	for i := 0; i < workers*per; i++ {
		if rid, ok, err := ix.Get(key(uint64(i))); err != nil || !ok || rid != uint64(i+1) {
			missing++
			if missing < 5 {
				t.Errorf("key %d missing after concurrent freeze (rid=%d ok=%v err=%v)", i, rid, ok, err)
			}
		}
	}
	if missing > 0 {
		t.Fatalf("%d keys lost", missing)
	}
}

func TestScanRandomizedAgainstReference(t *testing.T) {
	ix, _ := testIndex(t, Config{FreezeThreshold: 300, MaxComponents: 3})
	ref := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 3000; i++ {
		k := uint64(rng.Intn(1000))
		if rng.Intn(5) == 0 {
			ix.Delete(key(k))
			delete(ref, k)
		} else {
			ix.Insert(key(k), uint64(i+1))
			ref[k] = uint64(i + 1)
		}
	}
	got := map[uint64]uint64{}
	if err := ix.Scan(nil, nil, func(k []byte, rid uint64) bool {
		got[binary.BigEndian.Uint64(k)] = rid
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ref) {
		t.Fatalf("scan size %d, want %d", len(got), len(ref))
	}
	for k, v := range ref {
		if got[k] != v {
			t.Fatalf("key %d = %d, want %d", k, got[k], v)
		}
	}
	// Point lookups agree too.
	for k, v := range ref {
		rid, ok, err := ix.Get(key(k))
		if err != nil || !ok || rid != v {
			t.Fatalf("get %d: %d %v %v want %d", k, rid, ok, err, v)
		}
	}
	_ = fmt.Sprint(ix) // String smoke test
}

func TestConcurrentReadsDuringMerge(t *testing.T) {
	// Point lookups and scans must stay correct while Freeze and Merge
	// swap the component list underneath them.
	ix, _ := testIndex(t, Config{})
	const n = 2000
	for i := 0; i < n; i++ {
		ix.Insert(key(uint64(i)), uint64(i+1))
		if i%500 == 499 {
			if err := ix.Freeze(); err != nil {
				t.Fatal(err)
			}
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := uint64(rng.Intn(n))
				rid, ok, err := ix.Get(key(k))
				if err != nil || !ok || rid != k+1 {
					t.Errorf("get %d during merge: %d %v %v", k, rid, ok, err)
					return
				}
				if rng.Intn(50) == 0 {
					cnt := 0
					if err := ix.Scan(key(100), key(200), func([]byte, uint64) bool {
						cnt++
						return true
					}); err != nil {
						t.Errorf("scan during merge: %v", err)
						return
					}
					if cnt != 100 {
						t.Errorf("scan during merge saw %d entries, want 100", cnt)
						return
					}
				}
			}
		}(r)
	}
	for i := 0; i < 5; i++ {
		if err := ix.Merge(); err != nil {
			t.Fatal(err)
		}
		if err := ix.Freeze(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
