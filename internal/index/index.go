// Package index implements HiEngine's append-only, partial-memory index
// (Section 4.5): an LSM-like structure with one mutable in-memory ART
// component and a list of immutable, serialized components persisted through
// SRSS and searched in place via mmap-style reads.
//
// Under memory pressure the in-memory component is frozen: serialized into a
// fresh PLog, pushed onto the read-only list, and replaced by an empty tree.
// Lookups probe the in-memory component first, then read-only components
// newest-to-oldest; the first hit (including tombstones) wins. A background
// (or explicitly invoked) merge bounds the component count by folding
// read-only components together, dropping tombstones when merging into the
// oldest component. Because indexes store only key->RID mappings, merges
// move no record data (Section 4.5).
package index

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"hiengine/internal/art"
	"hiengine/internal/srss"
)

// Config configures an Index.
type Config struct {
	// Service persists frozen components; nil disables Freeze (pure
	// in-memory index).
	Service *srss.Service
	// Tier is where frozen components are written (default compute).
	Tier srss.Tier
	// FreezeThreshold freezes the in-memory component automatically when
	// its entry count exceeds this value. Zero disables auto-freeze.
	FreezeThreshold int
	// MaxComponents triggers a merge when the read-only list grows past
	// this length. Zero disables auto-merge. Must be >= 2 when set.
	MaxComponents int
}

// Index is one LSM-like index instance. Point and range operations are safe
// for concurrent use; Freeze, Merge and Compact serialize against each other
// and against writers only for the brief component-list swap.
type Index struct {
	cfg Config

	mu    sync.RWMutex // guards mem swap and comps list
	mem   *memComp
	comps *compList // newest first

	maintMu sync.Mutex // serializes Freeze/Merge/Compact

	// keyLocks stripe-serializes check-then-insert sequences on unique
	// keys (engine uniqueness enforcement).
	keyLocks [64]sync.Mutex
}

// compList is an immutable snapshot of the read-only component list,
// reference-counted so merged-away PLogs are reclaimed only once no reader
// still uses them (the paper: compacted components are "discarded once no
// thread is still using them via mmap"). The list is born with one owner
// reference, dropped when a maintenance operation retires it.
type compList struct {
	comps []*component
	refs  atomic.Int64
	// dead holds the PLogs to delete when the last reference drops.
	dead atomic.Pointer[[]*srss.PLog]
	svc  *srss.Service
}

// memComp wraps the mutable in-memory tree with a writer pin so Freeze can
// wait for in-flight writers before serializing the retired tree (a write
// landing after serialization would be silently lost).
type memComp struct {
	tree    *art.Tree
	writers atomic.Int64
}

// pinWriter returns the current in-memory component with its writer count
// raised; the caller must call release after mutating.
func (ix *Index) pinWriter() *memComp {
	ix.mu.RLock()
	m := ix.mem
	m.writers.Add(1)
	ix.mu.RUnlock()
	return m
}

func (m *memComp) release() { m.writers.Add(-1) }

func newCompList(svc *srss.Service, comps []*component) *compList {
	l := &compList{comps: comps, svc: svc}
	l.refs.Store(1) // owner reference
	return l
}

func (l *compList) unref() {
	if l.refs.Add(-1) != 0 {
		return
	}
	if dead := l.dead.Load(); dead != nil {
		for _, p := range *dead {
			_ = l.svc.Delete(p.ID())
		}
	}
}

// acquire pins the current component list for reading.
func (ix *Index) acquire() (*art.Tree, *compList) {
	ix.mu.RLock()
	mem := ix.mem.tree
	l := ix.comps
	l.refs.Add(1)
	ix.mu.RUnlock()
	return mem, l
}

// component is one immutable serialized component and its backing PLog.
type component struct {
	c    *art.Component
	plog *srss.PLog
	res  art.SerializeResult
}

// ComponentMeta describes a persisted component for manifests.
type ComponentMeta struct {
	PLogID  srss.PLogID
	RootOff int64
	Length  int64
	Count   int64
}

// New builds an empty index.
func New(cfg Config) *Index {
	return &Index{cfg: cfg, mem: &memComp{tree: art.New()}, comps: newCompList(cfg.Service, nil)}
}

// Errors.
var (
	ErrNoService = errors.New("index: no storage service configured")
)

// Insert upserts key -> rid in the in-memory component.
func (ix *Index) Insert(key []byte, rid uint64) error {
	if len(key) > art.MaxKeyLen {
		return art.ErrKeyTooLong
	}
	m := ix.pinWriter()
	m.tree.Insert(key, rid)
	m.release()
	ix.maybeMaintain()
	return nil
}

// Delete records a tombstone for key.
func (ix *Index) Delete(key []byte) error {
	if len(key) > art.MaxKeyLen {
		return art.ErrKeyTooLong
	}
	m := ix.pinWriter()
	m.tree.InsertTombstone(key)
	m.release()
	ix.maybeMaintain()
	return nil
}

// Get returns the RID for key. ok is false when the key is absent or
// deleted.
func (ix *Index) Get(key []byte) (rid uint64, ok bool, err error) {
	mem, l := ix.acquire()
	defer l.unref()
	if rid, found, tomb := mem.Search(key); found {
		return rid, !tomb, nil
	}
	for _, cp := range l.comps {
		rid, found, tomb, err := cp.c.Search(key)
		if err != nil {
			return 0, false, err
		}
		if found {
			return rid, !tomb, nil
		}
	}
	return 0, false, nil
}

// Entry is a key/RID pair produced by Scan.
type Entry = art.Entry

// Scan visits live entries with from <= key < to in ascending key order,
// resolving duplicates newest-component-wins and suppressing tombstones.
func (ix *Index) Scan(from, to []byte, fn func(key []byte, rid uint64) bool) error {
	mem, l := ix.acquire()
	defer l.unref()
	comps := l.comps

	if len(comps) == 0 {
		// Fast path: only the in-memory component exists (no freeze has
		// happened); stream directly without collecting.
		mem.Scan(from, to, func(k []byte, rid uint64, tomb bool) bool {
			if tomb {
				return true
			}
			return fn(k, rid)
		})
		return nil
	}

	// Collect the range from every component (each internally sorted).
	lists := make([][]Entry, 0, len(comps)+1)
	var memList []Entry
	mem.Scan(from, to, func(k []byte, rid uint64, tomb bool) bool {
		memList = append(memList, Entry{Key: append([]byte(nil), k...), RID: rid, Tomb: tomb})
		return true
	})
	lists = append(lists, memList)
	for _, cp := range comps {
		var l []Entry
		if err := cp.c.Scan(from, to, func(k []byte, rid uint64, tomb bool) bool {
			l = append(l, Entry{Key: append([]byte(nil), k...), RID: rid, Tomb: tomb})
			return true
		}); err != nil {
			return err
		}
		lists = append(lists, l)
	}
	for _, e := range mergeLists(lists) {
		if e.Tomb {
			continue
		}
		if !fn(e.Key, e.RID) {
			return nil
		}
	}
	return nil
}

// mergeLists merges sorted entry lists; lists[0] is newest and wins ties.
func mergeLists(lists [][]Entry) []Entry {
	// Simple k-way merge with positional preference; k is small (the
	// component count is bounded by merging).
	pos := make([]int, len(lists))
	var out []Entry
	for {
		best := -1
		for i, l := range lists {
			if pos[i] >= len(l) {
				continue
			}
			if best == -1 || bytes.Compare(l[pos[i]].Key, lists[best][pos[best]].Key) < 0 {
				best = i
			}
		}
		if best == -1 {
			return out
		}
		winner := lists[best][pos[best]]
		// Advance every list sharing this key; the lowest list index
		// (newest component) wins.
		for i, l := range lists {
			if pos[i] < len(l) && bytes.Equal(l[pos[i]].Key, winner.Key) {
				if i < best {
					winner = l[pos[i]]
					best = i
				}
				pos[i]++
			}
		}
		out = append(out, winner)
	}
}

// MemLen returns the entry count of the in-memory component.
func (ix *Index) MemLen() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.mem.tree.Len()
}

// Components returns the number of read-only components.
func (ix *Index) Components() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.comps.comps)
}

// maybeMaintain applies the auto freeze/merge policies.
func (ix *Index) maybeMaintain() {
	if ix.cfg.FreezeThreshold > 0 && ix.MemLen() >= ix.cfg.FreezeThreshold {
		_ = ix.Freeze() // best effort; explicit Freeze reports errors
	}
	if ix.cfg.MaxComponents > 0 && ix.Components() > ix.cfg.MaxComponents {
		_ = ix.Merge()
	}
}

// Freeze serializes the in-memory component to a fresh PLog, pushes it onto
// the read-only list and installs an empty in-memory component. Concurrent
// writers may race a freeze: entries inserted into the old tree after
// serialization begins would be lost, so the swap happens first and the old
// tree is serialized once quiescent.
func (ix *Index) Freeze() error {
	if ix.cfg.Service == nil {
		return ErrNoService
	}
	ix.maintMu.Lock()
	defer ix.maintMu.Unlock()

	ix.mu.Lock()
	old := ix.mem
	if old.tree.Len() == 0 {
		ix.mu.Unlock()
		return nil
	}
	ix.mem = &memComp{tree: art.New()}
	ix.mu.Unlock()
	// Wait for in-flight writers pinned to the retired tree; serializing
	// before they land would lose their entries.
	for old.writers.Load() != 0 {
		runtime.Gosched()
	}

	plog, err := ix.cfg.Service.Create(ix.cfg.Tier)
	if err != nil {
		return err
	}
	res, err := art.SerializeTree(old.tree, plog)
	if err != nil {
		return err
	}
	plog.Seal()
	comp, err := art.OpenComponent(plog.Mmap(), res)
	if err != nil {
		return err
	}
	ix.mu.Lock()
	oldList := ix.comps
	ix.comps = newCompList(ix.cfg.Service,
		append([]*component{{c: comp, plog: plog, res: res}}, oldList.comps...))
	ix.mu.Unlock()
	oldList.unref() // no dead PLogs: freeze only prepends
	return nil
}

// Merge folds all read-only components into a single new component,
// dropping tombstones (the result is the oldest component, so nothing
// remains for a tombstone to mask). Constant memory modulo the key/RID
// stream: inputs are iterated in place and the output is streamed through
// the sorted builder.
func (ix *Index) Merge() error {
	if ix.cfg.Service == nil {
		return ErrNoService
	}
	ix.maintMu.Lock()
	defer ix.maintMu.Unlock()

	ix.mu.RLock()
	comps := append([]*component(nil), ix.comps.comps...)
	ix.mu.RUnlock()
	if len(comps) < 2 {
		return nil
	}
	its := make([]*art.CompIter, len(comps))
	for i, cp := range comps {
		its[i] = cp.c.Iter()
	}
	merged, err := mergeIterators(its)
	if err != nil {
		return err
	}
	// Drop tombstones: this merge produces the oldest component.
	live := merged[:0]
	for _, e := range merged {
		if !e.Tomb {
			live = append(live, e)
		}
	}
	plog, err := ix.cfg.Service.Create(ix.cfg.Tier)
	if err != nil {
		return err
	}
	res, err := art.BuildFromSorted(live, plog)
	if err != nil {
		return err
	}
	plog.Seal()
	comp, err := art.OpenComponent(plog.Mmap(), res)
	if err != nil {
		return err
	}
	var dead []*srss.PLog
	for _, cp := range comps {
		dead = append(dead, cp.plog)
	}
	ix.mu.Lock()
	old := ix.comps
	// Components frozen after the snapshot stay in front of the merged one.
	keep := len(old.comps) - len(comps)
	ix.comps = newCompList(ix.cfg.Service,
		append(old.comps[:keep:keep], &component{c: comp, plog: plog, res: res}))
	ix.mu.Unlock()
	// The merged-away PLogs are reclaimed once the last reader of any list
	// still referencing them drops its pin.
	old.dead.Store(&dead)
	old.unref()
	return nil
}

// mergeIterators k-way merges component iterators; its[0] is newest and
// wins duplicate keys.
func mergeIterators(its []*art.CompIter) ([]Entry, error) {
	cur := make([]*Entry, len(its))
	advance := func(i int) error {
		e, ok := its[i].Next()
		if !ok {
			if err := its[i].Err(); err != nil {
				return err
			}
			cur[i] = nil
			return nil
		}
		cur[i] = &e
		return nil
	}
	for i := range its {
		if err := advance(i); err != nil {
			return nil, err
		}
	}
	var out []Entry
	for {
		best := -1
		for i, e := range cur {
			if e == nil {
				continue
			}
			if best == -1 || bytes.Compare(e.Key, cur[best].Key) < 0 {
				best = i
			}
		}
		if best == -1 {
			return out, nil
		}
		winner := *cur[best]
		key := append([]byte(nil), winner.Key...)
		winner.Key = key
		for i := range cur {
			if cur[i] != nil && bytes.Equal(cur[i].Key, key) {
				if i < best {
					winner = *cur[i]
					winner.Key = key
				}
				if err := advance(i); err != nil {
					return nil, err
				}
			}
		}
		out = append(out, winner)
	}
}

// Metas returns persistence metadata for all read-only components (newest
// first) for inclusion in engine manifests.
func (ix *Index) Metas() []ComponentMeta {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := make([]ComponentMeta, 0, len(ix.comps.comps))
	for _, cp := range ix.comps.comps {
		out = append(out, ComponentMeta{
			PLogID:  cp.plog.ID(),
			RootOff: cp.res.RootOff,
			Length:  cp.res.Length,
			Count:   cp.res.Count,
		})
	}
	return out
}

// Attach re-opens a persisted component from its metadata and appends it to
// the end of the read-only list (oldest position). Recovery reattaches
// components oldest-last by calling Attach in newest-to-oldest order.
func (ix *Index) Attach(meta ComponentMeta) error {
	if ix.cfg.Service == nil {
		return ErrNoService
	}
	plog, err := ix.cfg.Service.Open(meta.PLogID)
	if err != nil {
		return err
	}
	res := art.SerializeResult{RootOff: meta.RootOff, Length: meta.Length, Count: meta.Count}
	comp, err := art.OpenComponent(plog.Mmap(), res)
	if err != nil {
		return err
	}
	ix.mu.Lock()
	old := ix.comps
	ix.comps = newCompList(ix.cfg.Service, append(append([]*component(nil), old.comps...),
		&component{c: comp, plog: plog, res: res}))
	ix.mu.Unlock()
	old.unref()
	return nil
}

// LockKey acquires the stripe lock covering key and returns the unlock
// function. Unique-constraint enforcement wraps its lookup-check-insert
// sequence in this lock so concurrent inserts of the same key serialize.
func (ix *Index) LockKey(key []byte) func() {
	var h uint32 = 2166136261
	for _, c := range key {
		h = (h ^ uint32(c)) * 16777619
	}
	mu := &ix.keyLocks[h&63]
	mu.Lock()
	return mu.Unlock
}

// String summarizes the index shape.
func (ix *Index) String() string {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return fmt.Sprintf("index{mem:%d entries, components:%d}", ix.mem.tree.Len(), len(ix.comps.comps))
}
