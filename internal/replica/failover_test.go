package replica

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hiengine/internal/adapt"
	"hiengine/internal/chaos"
	"hiengine/internal/client"
	"hiengine/internal/core"
	"hiengine/internal/delay"
	"hiengine/internal/obs"
	"hiengine/internal/server"
	"hiengine/internal/sqlfront"
	"hiengine/internal/srss"
	"hiengine/internal/wire"
)

// failoverNode is one wire server over an engine, restartable at a fixed
// address (the crash/restart primitive of the torture harness).
type failoverNode struct {
	engine *core.Engine
	front  *sqlfront.Frontend
	srv    *server.Server
	addr   string
}

// startFailoverPrimary runs a primary whose log layout keeps the shipped
// watermark prefix-exact: one WAL stream and segments large enough that
// the run never rotates, so "applied CSN w" means every commit <= w was
// applied (multi-stream shipping interleaves segments in map order and
// only guarantees eventual completeness, not a prefix cut).
func startFailoverPrimary(t *testing.T) *failoverNode {
	t.Helper()
	engine, err := core.Open(core.Config{
		Service:     srss.New(srss.Config{Model: delay.Zero()}),
		Workers:     4,
		LogStreams:  1,
		SegmentSize: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	n := &failoverNode{
		engine: engine,
		front:  sqlfront.NewFrontend("hiengine", adapt.New(engine)),
	}
	t.Cleanup(engine.Close)
	n.listen(t, "127.0.0.1:0")
	return n
}

// listen (re)starts the node's wire server on addr.
func (n *failoverNode) listen(t *testing.T, addr string) {
	t.Helper()
	srv, err := server.New(server.Config{
		Frontend:     n.front,
		WorkerSlots:  n.engine.Workers(),
		ReplSource:   NewSource(n.engine),
		Epoch:        n.engine.Epoch,
		ObserveEpoch: n.engine.ObserveEpoch,
		DrainTimeout: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	n.srv, n.addr = srv, ln.Addr().String()
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
}

// kill stops the node's wire server (the engine object survives, playing
// the role of the crashed process's durable state).
func (n *failoverNode) kill() { n.srv.Close() }

// startChaosReplica bootstraps a follower of primaryAddr whose local
// service carries the armed chaos engine, serving it behind a wire
// server. Chaos is armed by the caller after bootstrap (so the initial
// mirror itself cannot be torn by the harness).
func startChaosReplica(t *testing.T, primaryAddr string, ch *chaos.Engine) (*Follower, *core.Replica, *server.Server, string, func() error) {
	t.Helper()
	reg := obs.NewRegistry("failover-replica")
	f, rep, err := Bootstrap(primaryAddr, core.Config{
		Service: srss.New(srss.Config{Model: delay.Zero(), Chaos: ch}),
		Workers: 4,
		Obs:     reg,
	}, core.RecoverOptions{}, reg)
	if err != nil {
		t.Fatal(err)
	}
	engine := rep.Engine()
	front := sqlfront.NewFrontend("hiengine", adapt.New(engine))
	// Same catalog sync hiserver runs: replay keeps creating tables after
	// bootstrap, so the frontend re-adopts from the engine's table list.
	syncCatalog := func() error {
		var schemas []*core.Schema
		for _, name := range engine.Tables() {
			tbl, terr := engine.Table(name)
			if terr != nil {
				continue
			}
			schemas = append(schemas, tbl.Schema)
		}
		_, aerr := front.AdoptAll("hiengine", schemas)
		return aerr
	}
	if err := syncCatalog(); err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{
		Frontend:    front,
		WorkerSlots: engine.Workers(),
		Replica: &server.ReplicaConfig{
			PrimaryAddr: primaryAddr,
			AppliedCSN:  f.AppliedCSN,
			WaitCSN:     f.WaitCSN,
		},
		Epoch:        engine.Epoch,
		ObserveEpoch: engine.ObserveEpoch,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	f.SetInterval(2 * time.Millisecond)
	f.Start()
	t.Cleanup(func() {
		srv.Close()
		f.Stop()
		rep.Close()
	})
	return f, rep, srv, ln.Addr().String(), syncCatalog
}

// ackedWrite is one client-acknowledged commit: the oracle's unit.
type ackedWrite struct {
	key uint64
	csn uint64
	// postPromote is true when the write STARTED after promotion
	// completed: it can only have been acked by the new lineage, so it
	// must be readable there regardless of the promoted watermark.
	postPromote bool
}

// failoverWriter hammers autocommit inserts through a pooled failover
// client, recording every acknowledged commit and its CSN.
type failoverWriter struct {
	cl   *client.Client
	id   uint64
	mu   sync.Mutex
	acks []ackedWrite
}

func (w *failoverWriter) run(stop *atomic.Bool, phase *atomic.Uint64) {
	for seq := uint64(0); !stop.Load(); seq++ {
		key := w.id*1_000_000 + seq
		startedPhase := phase.Load()
		_, err := w.cl.Exec("INSERT INTO kv VALUES (?, ?)",
			core.I(int64(key)), core.S(fmt.Sprintf("w%d-%d", w.id, seq)))
		if err != nil {
			continue // the failover window; the oracle counts acks only
		}
		w.mu.Lock()
		w.acks = append(w.acks, ackedWrite{
			key: key, csn: w.cl.LastCSN(), postPromote: startedPhase == 1,
		})
		w.mu.Unlock()
	}
}

func (w *failoverWriter) ackCount() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.acks)
}

func (w *failoverWriter) postPromoteAcks() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := 0
	for _, a := range w.acks {
		if a.postPromote {
			n++
		}
	}
	return n
}

// TestFailoverTorture is the failover acceptance oracle, run across many
// chaos seeds: kill the primary under concurrent client writes, promote
// the follower (with chaos tearing ship fetches, failing applies, and
// failing promotion mid-step), restart the old primary at its old
// address, and verify
//
//   - zero acked-commit loss below the promoted watermark: every write a
//     client saw acknowledged with CSN <= the watermark is readable on
//     the new primary, as is every write acked by the new lineage;
//   - zero dual-primary writes: the revived old primary commits nothing
//     after the kill -- it demotes (fenced) and refuses writes with the
//     stale-epoch code;
//   - pooled clients reconverge on the promoted node with no
//     reconfiguration.
func TestFailoverTorture(t *testing.T) {
	const seeds = 20
	for seed := uint64(1); seed <= seeds; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			tortureOneSeed(t, seed)
		})
	}
}

func tortureOneSeed(t *testing.T, seed uint64) {
	primary := startFailoverPrimary(t)
	seedCl, err := client.New(client.Options{Addr: primary.addr})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := seedCl.Exec("CREATE TABLE kv (k INT, v TEXT, PRIMARY KEY(k))"); err != nil {
		t.Fatal(err)
	}
	seedCl.Close()

	ch := chaos.New(seed)
	follower, rep, replicaSrv, replicaAddr, _ := startChaosReplica(t, primary.addr, ch)
	// Armed after bootstrap: tear shipping fetches and fail apply passes
	// throughout the run, and fail promotion itself up to twice.
	ch.Arm(chaos.Rule{Site: SiteShipFetch, Action: chaos.Fault, Prob: 0.05})
	ch.Arm(chaos.Rule{Site: SiteApply, Action: chaos.Fault, Prob: 0.05})
	// The first promotion attempt always fails mid-step (OnHit), so every
	// seed exercises the promote-retry path.
	ch.Arm(chaos.Rule{Site: SitePromote, Action: chaos.Fault, OnHit: 1})

	// Writers: pooled failover clients hammering unique-key inserts.
	const nWriters = 3
	var (
		stop    atomic.Bool
		phase   atomic.Uint64 // 0 = old lineage, 1 = promotion done
		wg      sync.WaitGroup
		writers [nWriters]*failoverWriter
	)
	for i := range writers {
		cl, err := client.New(client.Options{
			Addr:            primary.addr,
			ReplicaAddrs:    []string{replicaAddr},
			DialTimeout:     500 * time.Millisecond,
			RequestTimeout:  2 * time.Second,
			MaxRetries:      2,
			FailoverRetries: 12,
			FailoverBase:    5 * time.Millisecond,
			FailoverMax:     100 * time.Millisecond,
			Seed:            seed*100 + uint64(i) + 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		writers[i] = &failoverWriter{cl: cl, id: uint64(i)}
		wg.Add(1)
		go func(w *failoverWriter) {
			defer wg.Done()
			w.run(&stop, &phase)
		}(writers[i])
	}

	// Phase 0: accumulate acked traffic on the old lineage.
	waitFor(t, 10*time.Second, "pre-kill acks", func() bool {
		total := 0
		for _, w := range writers {
			total += w.ackCount()
		}
		return total >= 30
	})

	// Kill the primary mid-traffic, then promote the follower. Promotion
	// retries through injected replica.promote faults.
	primary.kill()
	var epoch uint64
	for attempt := 0; ; attempt++ {
		if epoch, err = follower.Promote(); err == nil {
			break
		}
		if attempt > 10 {
			t.Fatalf("promote never succeeded: %v", err)
		}
	}
	if want := uint64(2); epoch != want {
		t.Fatalf("promoted epoch = %d, want %d", epoch, want)
	}
	replicaSrv.Promote(NewSource(rep.Engine()))
	watermark := follower.AppliedCSN()
	phase.Store(1)

	// Clients must reconverge on the promoted node without
	// reconfiguration: every writer acks new traffic against it.
	waitFor(t, 15*time.Second, "client reconvergence", func() bool {
		for _, w := range writers {
			if w.postPromoteAcks() == 0 {
				return false
			}
		}
		return true
	})
	for _, w := range writers {
		if got := w.cl.PrimaryAddr(); got != replicaAddr {
			t.Fatalf("writer still pointed at %s, want promoted %s", got, replicaAddr)
		}
	}

	// Revive the old primary at its old address. The promoted node's
	// fencer (and client probes) must demote it before it commits
	// anything.
	oldCommits := primary.engine.Stats().Commits.Load()
	primary.listen(t, primary.addr)
	waitFor(t, 10*time.Second, "old primary fenced", func() bool {
		return primary.engine.Fenced()
	})

	// A client talking straight to the revived node gets the stale-epoch
	// refusal, not a hung or acked write.
	staleCl, err := client.New(client.Options{Addr: primary.addr})
	if err != nil {
		t.Fatal(err)
	}
	_, err = staleCl.Exec("INSERT INTO kv VALUES (?, ?)", core.I(999_999_999), core.S("stale"))
	staleCl.Close()
	if !errors.Is(err, core.ErrStaleEpoch) {
		t.Fatalf("write on revived old primary: %v, want ErrStaleEpoch", err)
	}
	var we *wire.Error
	if !errors.As(err, &we) || we.Code != wire.CodeStaleEpoch {
		t.Fatalf("write on revived old primary: %v, want CodeStaleEpoch", err)
	}

	stop.Store(true)
	wg.Wait()

	// Oracle 1: no acked commit below the promoted watermark is lost, and
	// nothing acked by the new lineage is lost.
	oracle, err := client.New(client.Options{Addr: replicaAddr})
	if err != nil {
		t.Fatal(err)
	}
	defer oracle.Close()
	checked := 0
	for _, w := range writers {
		w.mu.Lock()
		acks := append([]ackedWrite(nil), w.acks...)
		w.mu.Unlock()
		for _, a := range acks {
			if a.csn > watermark && !a.postPromote {
				continue // acked by the old lineage above the shipped horizon
			}
			res, err := oracle.Exec("SELECT v FROM kv WHERE k = ?", core.I(int64(a.key)))
			if err != nil {
				t.Fatalf("oracle read key %d (csn %d): %v", a.key, a.csn, err)
			}
			if len(res.Rows) != 1 {
				t.Fatalf("acked write lost: key %d csn %d (watermark %d, postPromote %v)",
					a.key, a.csn, watermark, a.postPromote)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("oracle checked zero acked writes")
	}

	// Oracle 2: the old primary acked nothing after the kill.
	if got := primary.engine.Stats().Commits.Load(); got != oldCommits {
		t.Fatalf("dual-primary writes: old primary commits went %d -> %d after kill", oldCommits, got)
	}

	// The promotion chaos site must have actually fired this seed's
	// armed faults (the harness exercised the retry path).
	if ch.Fired(SitePromote) == 0 {
		t.Fatalf("replica.promote chaos site never fired")
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestClientFallbackAllReplicasDown: with every replica endpoint dead,
// read routing falls back to the primary transparently.
func TestClientFallbackAllReplicasDown(t *testing.T) {
	engine, primaryAddr := startPrimary(t)
	_ = engine
	// Two dead endpoints: reserve ports, then close the listeners.
	var dead []string
	for i := 0; i < 2; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		dead = append(dead, ln.Addr().String())
		ln.Close()
	}
	cl, err := client.New(client.Options{
		Addr:         primaryAddr,
		ReplicaAddrs: dead,
		DialTimeout:  250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Exec("CREATE TABLE fb (k INT, v TEXT, PRIMARY KEY(k))"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Exec("INSERT INTO fb VALUES (?, ?)", core.I(1), core.S("one")); err != nil {
		t.Fatal(err)
	}
	res, err := cl.Exec("SELECT v FROM fb WHERE k = ?", core.I(1))
	if err != nil {
		t.Fatalf("read with all replicas down: %v, want primary fallback", err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("read with all replicas down: %d rows, want 1", len(res.Rows))
	}
}

// TestClientGreetingRediscovery: a client configured with a stale
// primary address finds the real primary by following the PrimaryAddr
// hint in a replica's greeting -- the address-change half of failover,
// with no promotion involved.
func TestClientGreetingRediscovery(t *testing.T) {
	engine, primaryAddr := startPrimary(t)
	_ = engine
	seedCl, err := client.New(client.Options{Addr: primaryAddr})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := seedCl.Exec("CREATE TABLE move (k INT, v TEXT, PRIMARY KEY(k))"); err != nil {
		t.Fatal(err)
	}
	seedCl.Close()
	_, _, replicaAddr, _ := startReplica(t, primaryAddr, time.Second)

	// A dead "old" primary address: the cluster moved, the client's
	// config did not. Only the replica endpoint still answers, and its
	// greeting names the real primary (absent from the client's config).
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	staleAddr := ln.Addr().String()
	ln.Close()

	cl, err := client.New(client.Options{
		Addr:            staleAddr,
		ReplicaAddrs:    []string{replicaAddr},
		DialTimeout:     250 * time.Millisecond,
		FailoverRetries: 6,
		FailoverBase:    5 * time.Millisecond,
		FailoverMax:     50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Exec("INSERT INTO move VALUES (?, ?)", core.I(7), core.S("found")); err != nil {
		t.Fatalf("write via greeting rediscovery: %v", err)
	}
	if got := cl.PrimaryAddr(); got != primaryAddr {
		t.Fatalf("client adopted %s, want greeting-named primary %s", got, primaryAddr)
	}
}

// TestPromoteServesPostBootstrapTables: tables created on the primary
// AFTER the replica bootstrapped reach the replica only through replay --
// the engine catalog advances but the SQL frontend's does not. Without
// catalog re-sync a promoted node is writable yet blind to every table
// younger than its bootstrap. Exercises the same AdoptAll sync hiserver
// runs on its poll ticker and inside promote.
func TestPromoteServesPostBootstrapTables(t *testing.T) {
	primary := startFailoverPrimary(t)
	seedCl, err := client.New(client.Options{Addr: primary.addr})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := seedCl.Exec("CREATE TABLE pre (k INT, v TEXT, PRIMARY KEY(k))"); err != nil {
		t.Fatal(err)
	}

	follower, rep, replicaSrv, replicaAddr, syncCatalog := startChaosReplica(t, primary.addr, chaos.New(1))

	// The cluster's schema keeps moving after the replica joined.
	if _, err := seedCl.Exec("CREATE TABLE post (k INT, v TEXT, PRIMARY KEY(k))"); err != nil {
		t.Fatal(err)
	}
	if _, err := seedCl.Exec("INSERT INTO post VALUES (1, 'late')"); err != nil {
		t.Fatal(err)
	}
	lastCSN := seedCl.LastCSN()
	seedCl.Close()
	waitFor(t, 10*time.Second, "replica caught up past the late DDL", func() bool {
		return follower.AppliedCSN() >= lastCSN
	})

	primary.kill()
	if _, err := follower.Promote(); err != nil {
		t.Fatalf("promote: %v", err)
	}
	if err := syncCatalog(); err != nil {
		t.Fatalf("catalog sync: %v", err)
	}
	replicaSrv.Promote(NewSource(rep.Engine()))

	cl, err := client.New(client.Options{Addr: replicaAddr})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	// Both the bootstrap-era and the post-bootstrap table must accept
	// writes and serve reads on the promoted node.
	if _, err := cl.Exec("INSERT INTO post VALUES (2, 'after')"); err != nil {
		t.Fatalf("write to post-bootstrap table on promoted node: %v", err)
	}
	if _, err := cl.Exec("INSERT INTO pre VALUES (1, 'after')"); err != nil {
		t.Fatalf("write to bootstrap-era table on promoted node: %v", err)
	}
	res, err := cl.Exec("SELECT v FROM post WHERE k = 1")
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].Str() != "late" {
		t.Fatalf("replayed row on promoted node: rows=%v err=%v", res, err)
	}
}
