// Package replica implements read replicas by WAL log shipping: the
// paper's "the log is the database" run live (Section 3.1's on-demand
// compute-side replicas, stretched across processes).
//
// The primary exposes its SRSS PLogs over three wire opcodes (hello /
// list / fetch). A replica process runs a Shipper that mirrors every
// primary PLog -- manifest, directory meta, checkpoint images, log
// segments -- byte-for-byte into its own local SRSS service under the
// same PLog IDs, so the primary's manifest references resolve locally
// unchanged. On top of the mirror, a core.Replica (the same machinery
// recovery uses) replays new log records on every poll; the Follower
// binds the two into a loop and publishes the replica's durable-CSN
// watermark, which snapshot reads and the read-your-writes token wait on.
//
// Sealed PLogs are mirrored then sealed; torn PLogs are mirrored up to
// their readable extent then sealed torn, so the follower's tail
// classification truncates exactly where crash recovery would. A PLog
// still growing on the primary is simply left unsealed locally: the
// follower's live-tail scan classification ("end of available log, retry
// later") makes a half-shipped record a retry, never a truncation.
package replica

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"hiengine/internal/chaos"
	"hiengine/internal/core"
	"hiengine/internal/obs"
	"hiengine/internal/srss"
	"hiengine/internal/wire"
)

// Chaos sites on the replication path (see internal/chaos). The failover
// torture harness arms these to tear shipping mid-chunk, fail catch-up
// application, and fail promotion mid-step.
const (
	// SiteShipFetch fires before each log-shipping fetch round trip.
	SiteShipFetch = "replica.ship.fetch"
	// SiteApply fires before each follower catch-up application pass.
	SiteApply = "replica.apply"
	// SitePromote fires mid-promotion: after the final catch-up drain,
	// before the engine transition.
	SitePromote = "replica.promote"
)

func init() {
	chaos.RegisterSite(SiteShipFetch, "before each log-shipping fetch round trip")
	chaos.RegisterSite(SiteApply, "before each follower catch-up application pass")
	chaos.RegisterSite(SitePromote, "mid-promotion, between final drain and engine transition")
}

// --- primary side -----------------------------------------------------------

// Source serves the log-shipping opcodes for a primary engine. It
// implements server.ReplicationSource.
type Source struct {
	e *core.Engine
}

// NewSource exposes a primary engine's PLogs for shipping.
func NewSource(e *core.Engine) *Source { return &Source{e: e} }

// ReplHello identifies the primary: its manifest PLog and current CSN.
func (s *Source) ReplHello() (srss.PLogID, uint64) {
	return s.e.ManifestID(), s.e.CurrentCSN()
}

// stat snapshots one PLog. Sealed/torn are read before size: a PLog never
// grows after sealing, so a true sealed flag guarantees the size read
// after it is final -- the shipper may seal its mirror on the strength of
// this stat alone.
func stat(p *srss.PLog) wire.PLogStat {
	sealed, torn := p.Sealed(), p.Torn()
	return wire.PLogStat{ID: p.ID(), Tier: p.Tier(), Size: p.Size(), Sealed: sealed, Torn: torn}
}

// ReplList enumerates the primary's PLogs across both tiers.
func (s *Source) ReplList() []wire.PLogStat {
	svc := s.e.Service()
	var out []wire.PLogStat
	for _, tier := range []srss.Tier{srss.TierCompute, srss.TierStorage} {
		for _, id := range svc.List(tier) {
			p, err := svc.Open(id)
			if err != nil {
				continue // dropped between list and open
			}
			out = append(out, stat(p))
		}
	}
	return out
}

// ReplFetch reads up to maxBytes from one PLog at offset.
func (s *Source) ReplFetch(id srss.PLogID, offset int64, maxBytes int) (wire.PLogStat, []byte, error) {
	p, err := s.e.Service().Open(id)
	if err != nil {
		return wire.PLogStat{}, nil, err
	}
	st := stat(p)
	n := st.Size - offset
	if n <= 0 {
		return st, nil, nil
	}
	if int64(maxBytes) < n {
		n = int64(maxBytes)
	}
	buf := make([]byte, n)
	if _, err := p.ReadAt(buf, offset); err != nil {
		// On a torn PLog the tail past the surviving extent is
		// unreadable; report the stat with no data so the shipper can
		// seal its mirror torn at what it has.
		return st, nil, err
	}
	return st, buf, nil
}

// --- shipper ----------------------------------------------------------------

// chunkSize bounds one fetch round trip (well under wire.MaxPayload).
const chunkSize = 256 << 10

// Shipper mirrors a primary's PLogs into a local SRSS service over the
// wire protocol. It owns one synchronous connection (log shipping is a
// single-reader stream; multiplexing buys nothing) and is not safe for
// concurrent use.
type Shipper struct {
	addr    string
	svc     *srss.Service
	timeout time.Duration

	nc     net.Conn
	br     *bufio.Reader
	reqSeq uint64

	manifest srss.PLogID
	// Atomic: read by lag gauges while the shipping goroutine advances
	// them mid-poll.
	helloCSN atomic.Uint64
	lagBytes atomic.Int64

	// epoch is the highest primary epoch observed in hello responses,
	// presented on every hello/fetch so a stale server can detect it is
	// fenced. Atomic: status surfaces read it off the shipping goroutine.
	epoch atomic.Uint64

	// Every traceEvery'th fetch round trip is traced (0 disables): the
	// primary's stage timings for the sampled OpReplFetch land in
	// lastTrace, so replication-path latency is attributable to server
	// stages without taxing the steady-state shipping loop.
	traceEvery uint64
	fetchSeq   uint64
	lastTrace  atomic.Pointer[wire.TraceInfo]

	// chaos (nil = inert) arms the replica.ship.fetch site.
	chaos *chaos.Engine
}

// defaultFetchTraceEvery samples one traced OpReplFetch out of this many.
const defaultFetchTraceEvery = 64

// NewShipper ships from the primary at addr into svc.
func NewShipper(addr string, svc *srss.Service) *Shipper {
	sh := &Shipper{addr: addr, svc: svc, timeout: 10 * time.Second,
		traceEvery: defaultFetchTraceEvery}
	if svc != nil {
		sh.chaos = svc.Chaos()
	}
	return sh
}

// Epoch returns the highest primary epoch observed so far.
func (sh *Shipper) Epoch() uint64 { return sh.epoch.Load() }

// SetTraceEvery adjusts the traced-fetch sampling rate (every n'th fetch;
// 0 disables). Call before the shipping loop starts.
func (sh *Shipper) SetTraceEvery(n uint64) { sh.traceEvery = n }

// LastFetchTrace returns the primary's stage-timing block from the most
// recent sampled traced fetch (nil before the first one completes).
func (sh *Shipper) LastFetchTrace() *wire.TraceInfo { return sh.lastTrace.Load() }

// ObserveEpoch raises the shipper's observed epoch (monotonic). Callers
// seed it with the replica's recovered epoch so the first hello already
// presents the lineage being followed.
func (sh *Shipper) ObserveEpoch(e uint64) {
	for {
		cur := sh.epoch.Load()
		if e <= cur || sh.epoch.CompareAndSwap(cur, e) {
			return
		}
	}
}

// Close drops the connection. The next round trip redials.
func (sh *Shipper) Close() {
	if sh.nc != nil {
		sh.nc.Close()
		sh.nc = nil
		sh.br = nil
	}
}

func (sh *Shipper) roundTrip(op wire.Op, payload []byte) ([]byte, error) {
	return sh.roundTripTraced(op, payload, false)
}

func (sh *Shipper) roundTripTraced(op wire.Op, payload []byte, traced bool) ([]byte, error) {
	if sh.nc == nil {
		nc, err := net.DialTimeout("tcp", sh.addr, sh.timeout)
		if err != nil {
			return nil, fmt.Errorf("replica: dial %s: %w", sh.addr, err)
		}
		sh.nc, sh.br = nc, bufio.NewReader(nc)
	}
	sh.reqSeq++
	id := sh.reqSeq
	req := wire.Frame{RequestID: id, Op: op, Payload: payload}
	if traced {
		// The request id doubles as the trace id: shipper traces are
		// single-hop point samples, never stitched across processes.
		req.Traced, req.TraceID, req.Hop = true, id, 1
	}
	sh.nc.SetDeadline(time.Now().Add(sh.timeout))
	if err := wire.WriteFrame(sh.nc, req); err != nil {
		sh.Close()
		return nil, fmt.Errorf("replica: write: %w", err)
	}
	for {
		f, err := wire.ReadFrame(sh.br, false)
		if err != nil {
			sh.Close()
			return nil, fmt.Errorf("replica: read: %w", err)
		}
		if f.RequestID != id {
			continue // the connection greeting (and any stale notice)
		}
		resp := f.Payload
		if f.Traced {
			// Peel the stage block off the front and keep it as the last
			// sampled fetch trace. An untraced response to a traced request
			// is fine (the primary may not be tracing); the reverse never
			// happens.
			ti, rest, terr := wire.DecodeTraceBlock(resp)
			if terr != nil {
				sh.Close()
				return nil, fmt.Errorf("replica: %w", terr)
			}
			ti.TraceID, ti.Hop = f.TraceID, f.Hop
			sh.lastTrace.Store(ti)
			resp = rest
		}
		code, msg, body, err := wire.DecodeResponse(resp)
		if err != nil {
			sh.Close()
			return nil, fmt.Errorf("replica: %w", err)
		}
		if code != wire.CodeOK {
			return nil, wire.FromCode(code, msg)
		}
		// body aliases the read buffer only until the next frame; copy.
		return append([]byte(nil), body...), nil
	}
}

// Hello fetches the primary's manifest identity and current CSN,
// presenting the shipper's observed epoch. A primary answering with a
// LOWER epoch than one already observed is a revived old primary: the
// hello fails with core.ErrStaleEpoch so the follower never applies a
// superseded lineage's log.
func (sh *Shipper) Hello() (srss.PLogID, uint64, error) {
	body, err := sh.roundTrip(wire.OpReplHello, wire.EncodeReplHelloReq(sh.Epoch()))
	if err != nil {
		return srss.PLogID{}, 0, err
	}
	m, csn, epoch, err := wire.DecodeReplHello(body)
	if err != nil {
		return srss.PLogID{}, 0, err
	}
	if epoch != 0 {
		if cur := sh.Epoch(); epoch < cur {
			return srss.PLogID{}, 0, fmt.Errorf("replica: primary %s at epoch %d, already observed %d: %w",
				sh.addr, epoch, cur, core.ErrStaleEpoch)
		}
		sh.ObserveEpoch(epoch)
	}
	sh.manifest = m
	sh.helloCSN.Store(csn)
	return m, csn, nil
}

// Manifest returns the primary's manifest PLog ID (valid after Hello).
func (sh *Shipper) Manifest() srss.PLogID { return sh.manifest }

// HelloCSN returns the primary CSN observed by the last Hello: the
// freshness target the lag gauges measure against.
func (sh *Shipper) HelloCSN() uint64 { return sh.helloCSN.Load() }

// LagBytes returns the bytes the local mirror trailed the primary by at
// the end of the last ShipOnce.
func (sh *Shipper) LagBytes() int64 { return sh.lagBytes.Load() }

// ShipOnce lists the primary's PLogs and pulls every local mirror up to
// date, sealing mirrors of sealed PLogs (torn state mirrored). Returns
// the number of bytes shipped.
func (sh *Shipper) ShipOnce() (int64, error) {
	body, err := sh.roundTrip(wire.OpReplList, nil)
	if err != nil {
		return 0, err
	}
	stats, err := wire.DecodeReplList(body)
	if err != nil {
		return 0, err
	}
	var shipped, lag int64
	for _, st := range stats {
		n, behind, err := sh.shipOne(st)
		shipped += n
		lag += behind
		if err != nil {
			sh.lagBytes.Store(lag)
			return shipped, err
		}
	}
	sh.lagBytes.Store(lag)
	return shipped, nil
}

// shipOne mirrors a single PLog, returning bytes shipped and bytes still
// behind the primary afterwards.
func (sh *Shipper) shipOne(st wire.PLogStat) (shipped, behind int64, err error) {
	p, err := sh.svc.ImportPLog(st.ID, st.Tier)
	if err != nil {
		return 0, 0, err
	}
	for !p.Sealed() && p.Size() < st.Size {
		want := st.Size - p.Size()
		if want > chunkSize {
			want = chunkSize
		}
		cur, data, ferr := sh.fetch(st.ID, p.Size(), int(want))
		if ferr != nil || len(data) == 0 {
			if cur.Torn || st.Torn {
				// The primary's tail past the surviving extent is
				// unreadable: mirror the torn seal at what we hold; the
				// follower truncates at the last valid record like
				// recovery would.
				p.SealTorn()
				return shipped, 0, nil
			}
			if ferr == nil {
				ferr = fmt.Errorf("replica: short fetch of %v at %d", st.ID, p.Size())
			}
			return shipped, st.Size - p.Size(), ferr
		}
		if _, aerr := p.Append(data); aerr != nil {
			return shipped, st.Size - p.Size(), aerr
		}
		shipped += int64(len(data))
		st = cur // the primary may have grown or sealed meanwhile
	}
	if st.Sealed && !p.Sealed() && p.Size() >= st.Size {
		if st.Torn {
			p.SealTorn()
		} else {
			p.Seal()
		}
	}
	if behind = st.Size - p.Size(); behind < 0 {
		behind = 0
	}
	return shipped, behind, nil
}

func (sh *Shipper) fetch(id srss.PLogID, off int64, max int) (wire.PLogStat, []byte, error) {
	if err := sh.chaos.Check(SiteShipFetch); err != nil {
		sh.Close() // injected tear: drop the conn like a real network fault
		return wire.PLogStat{}, nil, err
	}
	sh.fetchSeq++
	traced := sh.traceEvery > 0 && (sh.fetchSeq-1)%sh.traceEvery == 0
	body, err := sh.roundTripTraced(wire.OpReplFetch, wire.EncodeReplFetch(id, off, max, sh.Epoch()), traced)
	if err != nil {
		return wire.PLogStat{}, nil, err
	}
	return wire.DecodeReplChunk(body)
}

// --- follower ---------------------------------------------------------------

// Follower runs the replica loop: ship, replay, publish the watermark.
type Follower struct {
	sh       *Shipper
	rep      *core.Replica
	interval time.Duration
	chaos    *chaos.Engine

	// pollMu serializes Poll rounds (the shipper connection is not safe
	// for concurrent use); the network phase runs under it alone, so
	// watermark readers and waiters never block behind a slow ship.
	pollMu sync.Mutex

	mu        sync.Mutex
	watermark uint64
	target    uint64        // primary CSN at last hello
	wake      chan struct{} // closed and replaced on each watermark advance
	started   bool
	promoted  bool

	stop      chan struct{}
	stopOnce  sync.Once
	done      chan struct{}
	fenceStop chan struct{}
	fenceOnce sync.Once
	err       error

	mPollErrs *obs.Counter
}

// NewFollower binds a shipper and an open core.Replica into a polling
// loop (interval <= 0 defaults to 10ms). Lag gauges land in reg (nil =
// none): replica.applied_csn, replica.lag_csn, replica.lag_bytes.
func NewFollower(sh *Shipper, rep *core.Replica, interval time.Duration, reg *obs.Registry) *Follower {
	if interval <= 0 {
		interval = 10 * time.Millisecond
	}
	f := &Follower{
		sh:        sh,
		rep:       rep,
		interval:  interval,
		chaos:     rep.Engine().Service().Chaos(),
		watermark: rep.AppliedCSN(),
		target:    sh.HelloCSN(),
		wake:      make(chan struct{}),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
		fenceStop: make(chan struct{}),
	}
	// Present at least the lineage we recovered from on every exchange.
	sh.ObserveEpoch(rep.Engine().Epoch())
	f.mPollErrs = reg.Counter("replica.poll_errors")
	if reg != nil {
		reg.GaugeFunc("replica.applied_csn", func() int64 { return int64(f.AppliedCSN()) })
		reg.GaugeFunc("replica.lag_csn", func() int64 { return f.LagCSN() })
		reg.GaugeFunc("replica.lag_bytes", func() int64 { return f.sh.LagBytes() })
	}
	return f
}

// LastFetchTrace returns the primary's stage timings from the most recent
// sampled traced log-shipping fetch (nil before one completes): the
// replication path's contribution to the node's observability surface.
func (f *Follower) LastFetchTrace() *wire.TraceInfo { return f.sh.LastFetchTrace() }

// Epoch returns the highest primary epoch this node knows: its own
// engine's (bumped by promotion) or the highest observed while shipping.
func (f *Follower) Epoch() uint64 {
	e := f.rep.Engine().Epoch()
	if o := f.sh.Epoch(); o > e {
		e = o
	}
	return e
}

// SetInterval adjusts the poll cadence. Call before Start.
func (f *Follower) SetInterval(d time.Duration) {
	if d > 0 {
		f.interval = d
	}
}

// Start launches the follow loop.
func (f *Follower) Start() {
	f.mu.Lock()
	if f.started {
		f.mu.Unlock()
		return
	}
	f.started = true
	f.mu.Unlock()
	go f.run()
}

func (f *Follower) run() {
	defer close(f.done)
	// Consecutive poll errors back off exponentially (jittered, capped at
	// ~10x the configured interval) so a dead primary doesn't produce a
	// tight dial-fail loop; a clean round snaps back to the base cadence.
	rng := chaos.NewRand(f.rep.Engine().Service().Chaos().Seed(), "replica.follower.backoff")
	consecutive := 0
	for {
		// Poll errors are transient (the primary may be restarting or
		// mid-drop): Err keeps the last one visible; retry after backoff.
		if err := f.Poll(); err != nil {
			consecutive++
		} else {
			consecutive = 0
		}
		d := f.interval
		if consecutive > 0 {
			shift := consecutive - 1
			if shift > 4 {
				shift = 4
			}
			d = f.interval << shift
			if max := 10 * f.interval; d > max {
				d = max
			}
			// Full jitter in [d/2, d): failed pollers desynchronize.
			d = d/2 + time.Duration(rng.Uint64()%uint64(d/2+1))
		}
		t := time.NewTimer(d)
		select {
		case <-f.stop:
			t.Stop()
			return
		case <-t.C:
		}
	}
}

// Poll runs one ship+replay round and advances the watermark. Exposed so
// tests (and single-threaded drivers) can pump the follower directly.
func (f *Follower) Poll() error {
	f.pollMu.Lock()
	_, csn, err := f.sh.Hello()
	if err == nil {
		// The hello response names the primary's CURRENT manifest; track
		// it so catch-up catalog refreshes survive manifest migration.
		f.rep.TrackManifest(f.sh.Manifest())
		_, err = f.sh.ShipOnce()
	}
	if err == nil {
		if err = f.chaos.Check(SiteApply); err == nil {
			_, err = f.rep.CatchUp()
		}
	}
	w := f.rep.AppliedCSN()
	f.pollMu.Unlock()

	f.mu.Lock()
	defer f.mu.Unlock()
	if csn > f.target {
		f.target = csn
	}
	if w > f.watermark {
		f.watermark = w
		close(f.wake)
		f.wake = make(chan struct{})
	}
	f.err = err
	if err != nil {
		f.mPollErrs.Inc()
	}
	return err
}

// AppliedCSN returns the replica's durable watermark: every commit at or
// below it is visible to snapshot reads here.
func (f *Follower) AppliedCSN() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.watermark
}

// LagCSN returns how far the watermark trails the primary CSN observed at
// the last hello (0 when caught up).
func (f *Follower) LagCSN() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.target <= f.watermark {
		return 0
	}
	return int64(f.target - f.watermark)
}

// Err returns the last poll error, nil after a clean round.
func (f *Follower) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}

// WaitCSN blocks until the watermark reaches csn or timeout elapses,
// reporting whether it did: the server side of the read-your-writes
// token.
func (f *Follower) WaitCSN(csn uint64, timeout time.Duration) bool {
	f.mu.Lock()
	if f.watermark >= csn {
		f.mu.Unlock()
		return true
	}
	f.mu.Unlock()
	t := time.NewTimer(timeout)
	defer t.Stop()
	for {
		f.mu.Lock()
		if f.watermark >= csn {
			f.mu.Unlock()
			return true
		}
		wake := f.wake
		f.mu.Unlock()
		select {
		case <-wake:
		case <-t.C:
			f.mu.Lock()
			ok := f.watermark >= csn
			f.mu.Unlock()
			return ok
		}
	}
}

// Stop halts the loop (and any promotion fencer) and closes the shipping
// connection. Idempotent, and safe when Start was never called.
func (f *Follower) Stop() {
	f.stopOnce.Do(func() { close(f.stop) })
	f.mu.Lock()
	started := f.started
	f.mu.Unlock()
	if started {
		<-f.done
	}
	f.fenceOnce.Do(func() { close(f.fenceStop) })
	f.sh.Close()
}

// haltPolling stops the poll loop without touching the shipper (Promote
// still needs the connection for the final drain) and waits for the loop
// goroutine to exit so no Poll round races the promotion.
func (f *Follower) haltPolling() {
	f.stopOnce.Do(func() { close(f.stop) })
	f.mu.Lock()
	started := f.started
	f.mu.Unlock()
	if started {
		<-f.done
	}
}

// Promote turns this follower's replica into the new primary: stop
// polling, drain a final catch-up to the end of the shipped log, seal the
// tail, and transition the engine into a writable one at a bumped,
// persisted epoch (core.Replica.Promote). The final hello/ship is
// best-effort -- the primary is normally already dead, and everything it
// acked below the shipped horizon is what promotion preserves.
//
// After the transition a fencer goroutine keeps knocking on the old
// primary's address with the new epoch until any response arrives, so a
// revived old primary demotes immediately instead of waiting to stumble
// over the new lineage. The fencer dies with Stop.
//
// Returns the new primary epoch. Idempotent: a second call returns the
// epoch already won. On error (including an armed replica.promote chaos
// fault) the replica is unchanged and Promote may be retried.
func (f *Follower) Promote() (uint64, error) {
	f.haltPolling()
	f.pollMu.Lock()
	defer f.pollMu.Unlock()
	f.mu.Lock()
	already := f.promoted
	f.mu.Unlock()
	if already {
		return f.rep.Engine().Epoch(), nil
	}
	// Final drain: pull whatever the primary can still serve, then apply
	// everything shipped. Ship errors are expected (dead primary); a
	// catch-up failure is not -- promotion must not lose applied history.
	if _, _, err := f.sh.Hello(); err == nil {
		f.rep.TrackManifest(f.sh.Manifest())
		_, _ = f.sh.ShipOnce()
	}
	if _, err := f.rep.CatchUp(); err != nil {
		return 0, err
	}
	if err := f.chaos.Check(SitePromote); err != nil {
		return 0, err
	}
	epoch, err := f.rep.Promote(f.sh.Epoch())
	if err != nil {
		return 0, err
	}
	w := f.rep.AppliedCSN()
	f.mu.Lock()
	f.promoted = true
	f.err = nil
	if w > f.watermark {
		f.watermark = w
		close(f.wake)
		f.wake = make(chan struct{})
	}
	f.mu.Unlock()
	f.sh.Close()
	go f.fence(f.sh.addr, epoch)
	return epoch, nil
}

// fence presents the promoted epoch at the old primary's address until any
// response crosses the wire. One answered hello is enough: the server
// folds the carried epoch into its fencing state before replying, so a
// revived old primary demotes the moment it comes back -- it never has a
// window to accept writes the new lineage would lose. Dial/read failures
// (the address staying dead) just mean there is nothing to fence yet.
func (f *Follower) fence(addr string, epoch uint64) {
	sh := NewShipper(addr, nil)
	sh.ObserveEpoch(epoch)
	defer sh.Close()
	retry := f.interval * 10
	if retry < 10*time.Millisecond {
		retry = 10 * time.Millisecond
	}
	for {
		_, _, err := sh.Hello()
		var we *wire.Error
		if err == nil || errors.As(err, &we) || errors.Is(err, core.ErrStaleEpoch) {
			return // a response arrived: the old node has observed our epoch
		}
		t := time.NewTimer(retry)
		select {
		case <-f.fenceStop:
			t.Stop()
			return
		case <-t.C:
		}
	}
}

// --- bootstrap --------------------------------------------------------------

// Bootstrap dials the primary, mirrors its PLogs into a fresh local SRSS
// service, and opens a core.Replica over the mirror. The returned
// follower is NOT started; callers wire it into their server first (the
// watermark is valid immediately -- it is the recovery MaxCSN).
func Bootstrap(primaryAddr string, cfg core.Config, opt core.RecoverOptions, reg *obs.Registry) (*Follower, *core.Replica, error) {
	if cfg.Service == nil {
		return nil, nil, errors.New("replica: Bootstrap requires cfg.Service (the local mirror)")
	}
	sh := NewShipper(primaryAddr, cfg.Service)
	manifest, _, err := sh.Hello()
	if err != nil {
		return nil, nil, err
	}
	if _, err := sh.ShipOnce(); err != nil {
		sh.Close()
		return nil, nil, err
	}
	rep, _, err := core.OpenReplica(cfg, manifest, opt)
	if err != nil {
		sh.Close()
		return nil, nil, err
	}
	f := NewFollower(sh, rep, 0, reg)
	return f, rep, nil
}
