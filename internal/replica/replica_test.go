package replica

import (
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"hiengine/internal/adapt"
	"hiengine/internal/client"
	"hiengine/internal/core"
	"hiengine/internal/delay"
	"hiengine/internal/obs"
	"hiengine/internal/server"
	"hiengine/internal/sqlfront"
	"hiengine/internal/srss"
	"hiengine/internal/wire"
)

// startPrimary runs a primary engine behind a wire server with the
// log-shipping source enabled.
func startPrimary(t *testing.T) (*core.Engine, string) {
	t.Helper()
	engine, err := core.Open(core.Config{
		Service:     srss.New(srss.Config{Model: delay.Zero()}),
		Workers:     4,
		SegmentSize: 64 << 10, // small segments so shipping crosses rotations
	})
	if err != nil {
		t.Fatal(err)
	}
	front := sqlfront.NewFrontend("hiengine", adapt.New(engine))
	srv, err := server.New(server.Config{
		Frontend:    front,
		WorkerSlots: engine.Workers(),
		ReplSource:  NewSource(engine),
	})
	if err != nil {
		engine.Close()
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		srv.Close()
		engine.Close()
	})
	return engine, ln.Addr().String()
}

// startReplica bootstraps a replica of the primary and serves it with the
// read-your-writes token honored against the follower's watermark.
func startReplica(t *testing.T, primaryAddr string, tokenWait time.Duration) (*Follower, *core.Replica, string, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry("replicatest")
	f, rep, err := Bootstrap(primaryAddr, core.Config{
		Service: srss.New(srss.Config{Model: delay.Zero()}),
		Workers: 4,
		Obs:     reg,
	}, core.RecoverOptions{}, reg)
	if err != nil {
		t.Fatal(err)
	}
	engine := rep.Engine()
	front := sqlfront.NewFrontend("hiengine", adapt.New(engine))
	for _, name := range engine.Tables() {
		tbl, terr := engine.Table(name)
		if terr != nil {
			t.Fatal(terr)
		}
		if err := front.Adopt("hiengine", tbl.Schema); err != nil {
			t.Fatal(err)
		}
	}
	srv, err := server.New(server.Config{
		Frontend:    front,
		WorkerSlots: engine.Workers(),
		Replica: &server.ReplicaConfig{
			PrimaryAddr: primaryAddr,
			AppliedCSN:  f.AppliedCSN,
			WaitCSN:     f.WaitCSN,
			TokenWait:   tokenWait,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	f.SetInterval(2 * time.Millisecond)
	f.Start()
	t.Cleanup(func() {
		srv.Close()
		f.Stop()
		rep.Close()
	})
	return f, rep, ln.Addr().String(), reg
}

// TestReplicaEndToEnd is the acceptance path: a replica process bootstraps
// from a live primary over the wire, replays its traffic as it commits,
// serves snapshot reads honoring the read-your-writes token, refuses
// writes with the read-only code, and converges its lag -- with zero
// spurious tail truncations on the follower's live-tail scans.
func TestReplicaEndToEnd(t *testing.T) {
	engine, primaryAddr := startPrimary(t)

	seed, err := client.New(client.Options{Addr: primaryAddr})
	if err != nil {
		t.Fatal(err)
	}
	defer seed.Close()
	if _, err := seed.Exec("CREATE TABLE kv (k INT, v TEXT, PRIMARY KEY(k))"); err != nil {
		t.Fatal(err)
	}
	if _, err := seed.Exec("INSERT INTO kv VALUES (?, ?)", core.I(0), core.S("seeded")); err != nil {
		t.Fatal(err)
	}

	follower, rep, replicaAddr, _ := startReplica(t, primaryAddr, time.Second)

	// The bootstrap image already holds the seeded row.
	rcl, err := client.New(client.Options{Addr: replicaAddr})
	if err != nil {
		t.Fatal(err)
	}
	defer rcl.Close()
	res, err := rcl.Exec("SELECT v FROM kv WHERE k = ?", core.I(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("bootstrap read: %d rows, want 1", len(res.Rows))
	}
	if g := rcl.Greeting(); g == nil || g.Role != wire.RoleReplica || g.PrimaryAddr != primaryAddr {
		t.Fatalf("replica greeting = %+v, want replica role pointing at %s", g, primaryAddr)
	}

	// Writes against the replica are refused with the read-only sentinel.
	if _, err := rcl.Exec("INSERT INTO kv VALUES (?, ?)", core.I(999), core.S("nope")); !errors.Is(err, core.ErrReadOnlyReplica) {
		t.Fatalf("write on replica: %v, want ErrReadOnlyReplica", err)
	}

	// Live traffic: a routed client writes through the primary and reads
	// its own writes through the replica (token makes the replica wait).
	cl, err := client.New(client.Options{Addr: primaryAddr, ReplicaAddrs: []string{replicaAddr}})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if pg := cl.Greeting(); pg != nil && pg.Role != wire.RolePrimary {
		t.Fatalf("primary greeting role = %d, want primary", pg.Role)
	}
	for i := 1; i <= 50; i++ {
		if _, err := cl.Exec("INSERT INTO kv VALUES (?, ?)", core.I(int64(i)), core.S(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		if cl.LastCSN() == 0 {
			t.Fatalf("insert %d: commit response carried no CSN token", i)
		}
		res, err := cl.Exec("SELECT v FROM kv WHERE k = ?", core.I(int64(i)))
		if err != nil {
			t.Fatalf("read-your-write %d: %v", i, err)
		}
		if len(res.Rows) != 1 {
			t.Fatalf("read-your-write %d: %d rows, want 1", i, len(res.Rows))
		}
	}

	// Direct token wait on the replica: a session presenting the current
	// token must see the row once the watermark catches up.
	rs, err := rcl.Session()
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	res, err = rs.ExecAt(cl.LastCSN(), "SELECT v FROM kv WHERE k = ?", core.I(50))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("token read: %d rows, want 1", len(res.Rows))
	}

	// A token from the future times out with the retryable busy code (the
	// pooled client's cue to redirect to the primary).
	if _, err := rs.ExecAt(cl.LastCSN()+1_000_000, "SELECT v FROM kv WHERE k = ?", core.I(50)); err == nil {
		t.Fatal("future-token read succeeded, want busy")
	} else {
		var we *wire.Error
		if !errors.As(err, &we) || we.Code != wire.CodeBusy {
			t.Fatalf("future-token read: %v, want CodeBusy", err)
		}
	}

	// Lag converges once traffic stops: the watermark reaches the primary
	// CSN of the last commit.
	deadline := time.Now().Add(10 * time.Second)
	for follower.LagCSN() != 0 || follower.AppliedCSN() < cl.LastCSN() {
		if time.Now().After(deadline) {
			t.Fatalf("lag did not converge: applied=%d target lag=%d", follower.AppliedCSN(), follower.LagCSN())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := follower.Err(); err != nil {
		t.Fatalf("follower poll error after convergence: %v", err)
	}

	// The live tail was never misread as torn on the follower.
	if cnt, bytes := rep.Engine().Log().TailTruncations(); cnt != 0 || bytes != 0 {
		t.Fatalf("replica counted %d tail truncations (%d bytes), want 0", cnt, bytes)
	}
	_ = engine
}

// TestReplicaSoakUnderLiveWrites hammers primary commits while the
// follower polls concurrently, then verifies the replica converged on the
// committed state without a single spurious tail truncation.
func TestReplicaSoakUnderLiveWrites(t *testing.T) {
	engine, primaryAddr := startPrimary(t)
	seed, err := client.New(client.Options{Addr: primaryAddr})
	if err != nil {
		t.Fatal(err)
	}
	defer seed.Close()
	if _, err := seed.Exec("CREATE TABLE soak (k INT, v INT, PRIMARY KEY(k))"); err != nil {
		t.Fatal(err)
	}

	follower, rep, _, _ := startReplica(t, primaryAddr, time.Second)

	// Hammer commits while the follower polls concurrently; then verify
	// the replica holds exactly the committed state.
	const rows = 200
	for i := 0; i < rows; i++ {
		if _, err := seed.Exec("INSERT INTO soak VALUES (?, ?)", core.I(int64(i)), core.I(int64(i*i))); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	target := seed.LastCSN()
	if target == 0 {
		t.Fatal("no CSN token from primary commits")
	}
	if !follower.WaitCSN(target, 10*time.Second) {
		t.Fatalf("follower never reached CSN %d (applied %d)", target, follower.AppliedCSN())
	}
	if cnt, bytes := rep.Engine().Log().TailTruncations(); cnt != 0 || bytes != 0 {
		t.Fatalf("soak counted %d truncations (%d bytes), want 0", cnt, bytes)
	}
	_ = engine
}
