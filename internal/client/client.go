// Package client is the connection-pooled HiEngine wire-protocol client.
//
// A Client owns a bounded pool of TCP connections to one server. Each
// server connection is one server-side session, so session-scoped work
// (BEGIN...COMMIT) leases a connection via Session and pins it until the
// session closes. Requests are multiplexed by request ID: every
// connection runs one reader goroutine that dispatches responses to
// waiting futures, so pipelined requests (several in flight before the
// first response, notably commits answered only at durability) complete
// out of order exactly as the server sends them.
//
// Failure handling mirrors the wire contract:
//
//   - Wire errors rehydrate as *wire.Error, whose Unwrap exposes the
//     originating sentinel: errors.Is(err, engineapi.ErrConflict),
//     errors.Is(err, core.ErrClosed) etc. hold across the wire exactly as
//     in-process.
//   - Retry is limited to the retryable codes (conflict, busy), with
//     seeded-jitter exponential backoff, and only outside transactions
//     (a conflict aborts the server-side transaction; replaying one
//     statement of it would be wrong). Fatal codes -- a closed or
//     fail-stopped engine -- and I/O errors are never retried: a killed
//     server makes clients fail fast, not retry-storm.
//   - A connection that times out, tears a frame, or yields any I/O error
//     is discarded, never returned to the pool.
//
// When ReplicaAddrs is configured the client also handles failover: a
// primary connection failure (or a stale-epoch / read-only refusal)
// triggers primary rediscovery, probing the configured endpoints -- and
// any PrimaryAddr hints their greetings carry -- with jittered
// exponential backoff until a primary at the newest observed epoch
// answers. Writes then resume against the promoted node with no
// reconfiguration; if no primary is reachable within FailoverRetries
// rounds, ErrNoPrimary surfaces.
package client

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hiengine/internal/chaos"
	"hiengine/internal/core"
	"hiengine/internal/wire"
)

// ErrClientClosed is returned by operations on a closed Client.
var ErrClientClosed = errors.New("client: closed")

// ErrStmtClosed is returned by operations on a closed Stmt.
var ErrStmtClosed = errors.New("client: statement closed")

// ErrNoPrimary is returned when primary rediscovery exhausts its retry
// budget without finding a reachable primary at the newest observed
// epoch. The cluster may still be mid-failover; a later call retries
// rediscovery from scratch.
var ErrNoPrimary = errors.New("client: no reachable primary")

// Options configures a Client.
type Options struct {
	// Addr is the server address (host:port). Required.
	Addr string
	// PoolSize bounds pooled connections = concurrent sessions
	// (default 8).
	PoolSize int
	// DialTimeout bounds connection establishment (default 5s).
	DialTimeout time.Duration
	// RequestTimeout bounds each request round trip, and acquiring a
	// session when the pool is exhausted (default 10s).
	RequestTimeout time.Duration
	// MaxRetries bounds retry attempts after a retryable wire error
	// (default 4; 0 disables retry).
	MaxRetries int
	// RetryBase / RetryMax shape the backoff: attempt i sleeps a
	// jittered duration around RetryBase<<i, capped at RetryMax
	// (defaults 2ms / 250ms).
	RetryBase time.Duration
	RetryMax  time.Duration
	// Seed seeds the deterministic backoff jitter (default 1).
	Seed uint64
	// FetchSize is the default rows-per-page hint for streaming queries
	// (Query / Rows), overridable per session with SetFetchSize
	// (default 512). The server additionally bounds every page by bytes.
	FetchSize int
	// ReplicaAddrs lists read-replica endpoints. When non-empty, read-only
	// autocommit statements (SELECT text) issued through Client.Exec are
	// routed round-robin to a replica, carrying the client's last observed
	// commit CSN as a read-your-writes token; a replica that cannot serve
	// the statement (behind the token, unreachable, or refusing writes)
	// falls back to the primary transparently.
	//
	// ReplicaAddrs are also the failover candidates: when the primary
	// becomes unreachable or demotes, rediscovery probes them (and any
	// PrimaryAddr their greetings name) for the new primary.
	ReplicaAddrs []string
	// FailoverRetries bounds primary-rediscovery rounds after a primary
	// failure (default 8; failover runs only when ReplicaAddrs is
	// non-empty). Each round probes every candidate once.
	FailoverRetries int
	// FailoverBase / FailoverMax shape the jittered backoff between
	// rediscovery rounds: round i sleeps around FailoverBase<<i, capped
	// at FailoverMax (defaults 25ms / 1s).
	FailoverBase time.Duration
	FailoverMax  time.Duration
}

func (o *Options) fill() {
	if o.PoolSize <= 0 {
		o.PoolSize = 8
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 10 * time.Second
	}
	if o.MaxRetries < 0 {
		o.MaxRetries = 0
	} else if o.MaxRetries == 0 {
		o.MaxRetries = 4
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 2 * time.Millisecond
	}
	if o.RetryMax <= 0 {
		o.RetryMax = 250 * time.Millisecond
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.FetchSize <= 0 {
		o.FetchSize = 512
	}
	if o.FailoverRetries <= 0 {
		o.FailoverRetries = 8
	}
	if o.FailoverBase <= 0 {
		o.FailoverBase = 25 * time.Millisecond
	}
	if o.FailoverMax <= 0 {
		o.FailoverMax = time.Second
	}
}

// Client is a pooled wire-protocol client for one server.
type Client struct {
	opts     Options
	tokens   chan struct{} // pool capacity
	traceSeq atomic.Uint64 // client-assigned trace ids (nonzero)

	// csn is the highest commit CSN any connection of this client (or of
	// its replica sub-clients -- they share the pointer) has observed: the
	// read-your-writes token presented to replicas.
	csn      *atomic.Uint64
	replicas []*Client     // read-replica sub-clients, sharing csn
	rr       atomic.Uint64 // round-robin cursor over replicas
	greeting atomic.Pointer[Greeting]

	// primary is the current write endpoint, initially Options.Addr and
	// repointed by failover; maxEpoch latches the highest primary epoch
	// any greeting has claimed, so rediscovery never adopts (and probes
	// actively fence) a stale pre-failover primary.
	primary  atomic.Pointer[string]
	maxEpoch atomic.Uint64

	mu     sync.Mutex
	idle   []*wconn
	rng    *chaos.Rand
	closed bool
}

// Greeting is the server's connection greeting: its role, its primary
// epoch (0 from servers that make no epoch claim), and, for a replica,
// where the write endpoint lives.
type Greeting struct {
	Role        byte // wire.RolePrimary or wire.RoleReplica
	PrimaryAddr string
	Epoch       uint64
}

// New builds a client. No connection is dialed until first use.
func New(opts Options) (*Client, error) {
	if opts.Addr == "" {
		return nil, errors.New("client: Options.Addr is required")
	}
	opts.fill()
	c := &Client{
		opts:   opts,
		tokens: make(chan struct{}, opts.PoolSize),
		rng:    chaos.NewRand(opts.Seed, "client.retry"),
		csn:    new(atomic.Uint64),
	}
	addr := opts.Addr
	c.primary.Store(&addr)
	for i := 0; i < opts.PoolSize; i++ {
		c.tokens <- struct{}{}
	}
	for i, ra := range opts.ReplicaAddrs {
		ro := opts
		ro.Addr = ra
		ro.ReplicaAddrs = nil
		ro.Seed = opts.Seed + uint64(i) + 1
		rc, err := New(ro)
		if err != nil {
			return nil, err
		}
		rc.csn = c.csn // one token shared across the fleet
		c.replicas = append(c.replicas, rc)
	}
	return c, nil
}

// Close closes the client and its idle connections. Leased sessions fail
// on their next use.
func (c *Client) Close() {
	c.mu.Lock()
	c.closed = true
	idle := c.idle
	c.idle = nil
	c.mu.Unlock()
	for _, w := range idle {
		w.fail(ErrClientClosed)
	}
	for _, rc := range c.replicas {
		rc.Close()
	}
}

// Greeting returns the most recent connection greeting received from the
// server, or nil before the first connection is established.
func (c *Client) Greeting() *Greeting { return c.greeting.Load() }

// LastCSN returns the highest commit CSN this client has observed: the
// read-your-writes token it presents to replicas.
func (c *Client) LastCSN() uint64 { return c.csn.Load() }

// PrimaryAddr returns the address the client currently writes to:
// Options.Addr until failover repoints it at a promoted node.
func (c *Client) PrimaryAddr() string { return *c.primary.Load() }

// noteEpoch latches a greeting's epoch claim (monotonic max; 0 no-op).
func (c *Client) noteEpoch(v uint64) {
	if v == 0 {
		return
	}
	for {
		cur := c.maxEpoch.Load()
		if v <= cur || c.maxEpoch.CompareAndSwap(cur, v) {
			return
		}
	}
}

// backoff sleeps the jittered exponential backoff for attempt (0-based).
func (c *Client) backoff(attempt int) {
	d := c.opts.RetryBase << uint(attempt)
	if d > c.opts.RetryMax {
		d = c.opts.RetryMax
	}
	c.mu.Lock()
	j := time.Duration(c.rng.Uint64() % uint64(d/2+1))
	c.mu.Unlock()
	time.Sleep(d/2 + j)
}

// retryable reports whether err may be retried (retryable wire codes
// only; I/O and fatal errors fail fast).
func retryable(err error) bool {
	var we *wire.Error
	return errors.As(err, &we) && we.Retryable()
}

// Session leases a pooled connection as a dedicated session. Callers must
// Close it; sessions are not safe for concurrent use.
func (c *Client) Session() (*Session, error) {
	t := time.NewTimer(c.opts.RequestTimeout)
	defer t.Stop()
	select {
	case <-c.tokens:
	case <-t.C:
		// A *wire.Error (not a bare fmt.Errorf wrap of the sentinel) so
		// retryable() classifies pool exhaustion as CodeBusy: retryable
		// with backoff, exactly like server-side admission rejection.
		return nil, &wire.Error{Code: wire.CodeBusy,
			Msg: fmt.Sprintf("client: no session available in %v", c.opts.RequestTimeout)}
	}
	w, err := c.conn()
	if err != nil {
		c.tokens <- struct{}{}
		return nil, err
	}
	return &Session{c: c, w: w}, nil
}

// conn returns an idle pooled connection or dials a fresh one.
func (c *Client) conn() (*wconn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClientClosed
	}
	for len(c.idle) > 0 {
		w := c.idle[len(c.idle)-1]
		c.idle = c.idle[:len(c.idle)-1]
		if w.healthy() {
			c.mu.Unlock()
			return w, nil
		}
	}
	c.mu.Unlock()
	return c.dial()
}

func (c *Client) dial() (*wconn, error) {
	addr := *c.primary.Load()
	nc, err := net.DialTimeout("tcp", addr, c.opts.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	w := &wconn{
		nc:      nc,
		br:      bufio.NewReader(nc),
		pending: make(map[uint64]chan response),
		csn:     c.csn,
		onGreeting: func(role byte, primary string, epoch uint64) {
			c.noteEpoch(epoch)
			c.greeting.Store(&Greeting{Role: role, PrimaryAddr: primary, Epoch: epoch})
		},
	}
	go w.readLoop()
	return w, nil
}

// release returns a session's connection to the pool (healthy) or drops
// it (failed / mid-transaction).
func (c *Client) release(w *wconn, reusable bool) {
	c.mu.Lock()
	if reusable && !c.closed && w.healthy() {
		c.idle = append(c.idle, w)
		w = nil
	}
	c.mu.Unlock()
	if w != nil {
		w.fail(errors.New("client: connection discarded"))
	}
	c.tokens <- struct{}{}
}

// Ping round-trips an empty frame on a pooled connection.
func (c *Client) Ping() error {
	s, err := c.Session()
	if err != nil {
		return err
	}
	defer s.Close()
	_, err = s.do(wire.OpPing, nil)
	return err
}

// Stats fetches the server's stats snapshot text.
func (c *Client) Stats() (string, error) {
	s, err := c.Session()
	if err != nil {
		return "", err
	}
	defer s.Close()
	return s.Stats()
}

// isReadOnlySQL reports whether sql is a statement safe to route to a
// read replica (SELECT text).
func isReadOnlySQL(sql string) bool {
	s := strings.TrimSpace(sql)
	return len(s) >= 6 && strings.EqualFold(s[:6], "SELECT")
}

// execReplica runs one read-only statement on the next replica in
// round-robin order, presenting the client's read-your-writes token. Any
// failure is returned to the caller, who falls back to the primary.
func (c *Client) execReplica(sql string, args []core.Value) (*wire.Result, error) {
	rc := c.replicas[int(c.rr.Add(1))%len(c.replicas)]
	s, err := rc.Session()
	if err != nil {
		return nil, err
	}
	defer s.Close()
	return s.execAt(c.csn.Load(), sql, args)
}

// Exec runs one autocommit statement on a pooled connection, retrying
// retryable wire errors with backoff. When the client has replicas,
// read-only statements route to a replica first and fall back to the
// primary if the replica cannot serve them (behind the read-your-writes
// token, unreachable, or read-only refusal); and a primary failure that
// signals failover (connection loss, stale epoch, demotion) triggers
// primary rediscovery followed by one replay of the statement. The
// replay is at-least-once: a write whose acknowledgement was lost in
// the failover may be applied twice (for inserts, the replay then
// surfaces CodeDuplicate).
func (c *Client) Exec(sql string, args ...core.Value) (*wire.Result, error) {
	if len(c.replicas) > 0 && isReadOnlySQL(sql) {
		if res, err := c.execReplica(sql, args); err == nil {
			return res, nil
		}
	}
	res, err := c.execPrimary(sql, args)
	if err == nil || !c.failoverEnabled() || !failoverable(err) {
		return res, err
	}
	if ferr := c.rediscoverPrimary(); ferr != nil {
		return nil, ferr
	}
	return c.execPrimary(sql, args)
}

// execPrimary runs one autocommit statement against the current primary,
// retrying retryable wire errors with backoff.
func (c *Client) execPrimary(sql string, args []core.Value) (*wire.Result, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		s, err := c.Session()
		if err != nil {
			lastErr = err
		} else {
			var res *wire.Result
			res, lastErr = s.exec(sql, args)
			s.Close()
			if lastErr == nil {
				return res, nil
			}
		}
		if attempt >= c.opts.MaxRetries || !retryable(lastErr) {
			return nil, lastErr
		}
		c.backoff(attempt)
	}
}

// --- failover --------------------------------------------------------------

// failoverEnabled reports whether the client performs primary
// rediscovery: only when it knows other endpoints to probe.
func (c *Client) failoverEnabled() bool {
	return len(c.opts.ReplicaAddrs) > 0 && c.opts.FailoverRetries > 0
}

// failoverable reports whether err signals that the current primary is
// gone or demoted, so rediscovery (not retry-in-place) is the remedy:
// connection-level I/O failures, and the wire codes a losing-side node
// answers with after a failover (stale epoch, read-only demotion, closed
// engine). Retryable codes (conflict, busy) and statement errors stay
// with the current primary.
func failoverable(err error) bool {
	if err == nil || errors.Is(err, ErrClientClosed) {
		return false
	}
	var we *wire.Error
	if errors.As(err, &we) {
		switch we.Code {
		case wire.CodeStaleEpoch, wire.CodeReadOnly, wire.CodeClosed:
			return true
		}
		return false
	}
	return true // dial / read / write / timeout: the connection is gone
}

// rediscoverPrimary probes the candidate endpoints for a primary at the
// newest observed epoch, following PrimaryAddr hints from replica
// greetings, with jittered exponential backoff between rounds. On
// success the client's write endpoint is repointed and pooled
// connections to the old primary are discarded. Exhausting
// FailoverRetries rounds returns ErrNoPrimary.
func (c *Client) rediscoverPrimary() error {
	var lastErr error
	for round := 0; round < c.opts.FailoverRetries; round++ {
		// Candidate queue: current primary (it may have come back), the
		// configured endpoints, plus any greeting hints discovered while
		// probing this round.
		queue := []string{*c.primary.Load(), c.opts.Addr}
		queue = append(queue, c.opts.ReplicaAddrs...)
		if g := c.greeting.Load(); g != nil && g.PrimaryAddr != "" {
			queue = append(queue, g.PrimaryAddr)
		}
		seen := make(map[string]bool)
		var bestAddr string
		var best *Greeting
		for i := 0; i < len(queue); i++ {
			addr := queue[i]
			if addr == "" || seen[addr] {
				continue
			}
			seen[addr] = true
			g, err := c.probe(addr)
			if err != nil {
				lastErr = err
				continue
			}
			c.noteEpoch(g.Epoch)
			if g.PrimaryAddr != "" && !seen[g.PrimaryAddr] {
				queue = append(queue, g.PrimaryAddr)
			}
			if g.Role == wire.RolePrimary && (best == nil || g.Epoch > best.Epoch) {
				bestAddr, best = addr, g
			}
		}
		// Adopt only a primary at the newest epoch any greeting has ever
		// claimed: a not-yet-fenced pre-failover primary presents a lower
		// epoch and is skipped (and was fence-assisted by the probe).
		if best != nil && best.Epoch >= c.maxEpoch.Load() {
			c.adoptPrimary(bestAddr, best)
			return nil
		}
		c.failoverBackoff(round)
	}
	if lastErr != nil {
		return fmt.Errorf("%w after %d rounds (last error: %v)",
			ErrNoPrimary, c.opts.FailoverRetries, lastErr)
	}
	return fmt.Errorf("%w after %d rounds", ErrNoPrimary, c.opts.FailoverRetries)
}

// probe dials addr, reads its greeting, and closes the connection. A
// probed node claiming a primary role at an epoch below the client's
// observed maximum is fence-assisted: the probe presents the newer epoch
// over the replication hello before hanging up, demoting the stale
// primary even before the promoted node's own fencer reaches it.
func (c *Client) probe(addr string) (*Greeting, error) {
	nc, err := net.DialTimeout("tcp", addr, c.opts.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("client: probe %s: %w", addr, err)
	}
	defer nc.Close()
	nc.SetDeadline(time.Now().Add(c.opts.DialTimeout))
	fr := wire.NewFrameReader(bufio.NewReader(nc), false)
	f, err := fr.Read()
	if err != nil {
		return nil, fmt.Errorf("client: probe %s: %w", addr, err)
	}
	code, msg, body, err := wire.DecodeResponse(f.Payload)
	if err != nil {
		return nil, fmt.Errorf("client: probe %s: %w", addr, err)
	}
	if code != wire.CodeOK {
		return nil, fmt.Errorf("client: probe %s: %w", addr, wire.FromCode(code, msg))
	}
	role, primary, epoch, ok := wire.DecodeGreeting(body)
	if !ok {
		return nil, fmt.Errorf("client: probe %s: malformed greeting", addr)
	}
	if max := c.maxEpoch.Load(); role == wire.RolePrimary && epoch < max {
		buf := wire.AppendFrame(nil, wire.Frame{
			RequestID: 1,
			Op:        wire.OpReplHello,
			Payload:   wire.EncodeReplHelloReq(max),
		})
		if _, err := nc.Write(buf); err == nil {
			_, _ = fr.Read() // best effort: wait for the fence to land
		}
	}
	return &Greeting{Role: role, PrimaryAddr: primary, Epoch: epoch}, nil
}

// adoptPrimary repoints the client's write endpoint and drops pooled
// connections to the old one.
func (c *Client) adoptPrimary(addr string, g *Greeting) {
	c.primary.Store(&addr)
	c.greeting.Store(g)
	c.mu.Lock()
	idle := c.idle
	c.idle = nil
	c.mu.Unlock()
	for _, w := range idle {
		w.fail(errors.New("client: primary changed"))
	}
}

// failoverBackoff sleeps the jittered rediscovery backoff for round
// (0-based).
func (c *Client) failoverBackoff(round int) {
	d := c.opts.FailoverBase << uint(round)
	if d > c.opts.FailoverMax || d <= 0 {
		d = c.opts.FailoverMax
	}
	c.mu.Lock()
	j := time.Duration(c.rng.Uint64() % uint64(d/2+1))
	c.mu.Unlock()
	time.Sleep(d/2 + j)
}

// --- session ---------------------------------------------------------------

// Session is one leased server-side session. Statements inside an open
// transaction are never retried; autocommit statements retry retryable
// codes like Client.Exec.
type Session struct {
	c      *Client
	w      *wconn
	stmts  map[uint64]*Stmt
	inTxn  bool
	closed bool
	fetch  int // streaming-page row hint; 0 = Options.FetchSize

	trace      bool // request server-side tracing on every request
	curTraceID uint64
	traceT0    time.Time
	lastTrace  *TraceResult
	dist       *DistTrace // shared distributed trace (overrides trace)
}

// TraceResult is the client-side view of one completed traced unit (an
// autocommit statement or a whole BEGIN..COMMIT transaction): the server's
// stage breakdown plus the client's wall-clock view, whose difference is
// time spent on the network (and in client/server queues).
type TraceResult struct {
	// Info is the server's stage-timing block from the terminal response.
	Info *wire.TraceInfo
	// ClientNS is wall time from the unit's first traced request being
	// written to its terminal response being received.
	ClientNS int64
}

// NetworkNS estimates time outside the server's measured pipeline:
// client wall time minus the server's span (never negative).
func (t *TraceResult) NetworkNS() int64 {
	n := t.ClientNS - t.Info.TotalNS
	if n < 0 {
		n = 0
	}
	return n
}

// Trace enables or disables tracing for this session's requests. While on,
// every request carries a client-assigned trace id, forcing the server to
// trace it regardless of its sampling policy; the terminal response of each
// traced unit returns the server's stage timings (see LastTrace).
func (s *Session) Trace(on bool) {
	s.trace = on
	if !on {
		s.curTraceID = 0
	}
}

// LastTrace returns the stage breakdown of the most recently completed
// traced unit, or nil if none completed yet (tracing off, or the server
// runs without a tracer).
func (s *Session) LastTrace() *TraceResult { return s.lastTrace }

// traceID returns the trace id for the next request: 0 when tracing is off,
// otherwise the current unit's id (allocating one, and stamping the unit's
// start time, when a new unit begins).
func (s *Session) traceID() uint64 {
	if !s.trace {
		return 0
	}
	if s.curTraceID == 0 {
		s.curTraceID = s.c.traceSeq.Add(1)
		s.traceT0 = time.Now()
	}
	return s.curTraceID
}

// traceIDs returns the (trace id, hop id) pair for the next request. An
// attached distributed trace supplies both: the shared trace id and a
// fresh hop id numbering this request within the distributed transaction.
// Otherwise plain per-session tracing applies with hop 0.
func (s *Session) traceIDs() (uint64, uint32) {
	if s.dist != nil {
		if s.traceT0.IsZero() {
			s.traceT0 = time.Now()
		}
		return s.dist.ID(), s.dist.nextHop()
	}
	return s.traceID(), 0
}

// Close rolls back any open transaction, closes any open prepared
// statements, and returns the connection to the pool. Both must
// round-trip before the connection is pooled: a reused connection is the
// same server-side session, so pooling one with an open transaction
// would leak that transaction (and its worker slot) to the next lessee,
// and pooling one with live statement ids would leak server-side
// statement-table entries (and let a stale client Stmt execute against a
// stranger's session). If either cleanup fails the connection is
// discarded instead.
func (s *Session) Close() {
	if s.closed {
		return
	}
	if s.inTxn && s.w.healthy() {
		if _, err := s.do(wire.OpAbort, nil); err == nil {
			s.inTxn = false
		}
	}
	reusable := !s.inTxn
	if len(s.stmts) > 0 && s.w.healthy() {
		// Pipeline the closes: start them all, then collect.
		pend := make([]*Pending, 0, len(s.stmts))
		for id := range s.stmts {
			p, err := s.w.start(wire.OpCloseStmt, wire.EncodeCloseStmt(id), s.c.opts.RequestTimeout, 0, 0)
			if err != nil {
				reusable = false
				break
			}
			pend = append(pend, p)
		}
		for _, p := range pend {
			if _, err := p.wait(); err != nil {
				reusable = false
			}
		}
	}
	for _, st := range s.stmts {
		st.closed = true
	}
	s.stmts = nil
	s.closed = true
	s.c.release(s.w, reusable)
}

// InTxn reports the client-side view of the transaction state.
func (s *Session) InTxn() bool { return s.inTxn }

// do round-trips one request on the pinned connection.
func (s *Session) do(op wire.Op, payload []byte) (response, error) {
	if s.closed {
		return response{}, ErrClientClosed
	}
	tid, hop := s.traceIDs()
	var sent time.Duration
	if s.dist != nil {
		sent = s.dist.Since()
	}
	t0 := time.Now()
	p, err := s.w.start(op, payload, s.c.opts.RequestTimeout, tid, hop)
	if err != nil {
		return response{}, err
	}
	r, err := p.wait()
	if r.trace != nil {
		// Stage timings ride the terminal response of the traced unit;
		// receiving them completes the unit client-side. (A server whose
		// own sampler picked the request can return timings even when this
		// session never asked; then there is no unit start to diff against.)
		var clientNS int64
		if !s.traceT0.IsZero() {
			clientNS = int64(time.Since(s.traceT0))
		}
		s.lastTrace = &TraceResult{Info: r.trace, ClientNS: clientNS}
		s.curTraceID = 0
		s.traceT0 = time.Time{}
		if s.dist != nil {
			s.dist.record(op, sent, time.Since(t0), r.trace)
		}
	}
	return r, err
}

// noteOutcome tracks server-side transaction state: commit/rollback end
// it; conflict and duplicate errors abort it server-side (the session is
// detached there, so mirror that).
func (s *Session) noteOutcome(err error) {
	if err == nil {
		return
	}
	var we *wire.Error
	if errors.As(err, &we) && (we.Code == wire.CodeConflict || we.Code == wire.CodeDuplicate) {
		s.inTxn = false
	}
	if !s.w.healthy() {
		s.inTxn = false
	}
}

// Begin opens the session transaction.
func (s *Session) Begin() error {
	_, err := s.doRetryable(wire.OpBegin, nil)
	if err == nil {
		s.inTxn = true
	}
	return err
}

// Commit commits; the response arrives when the commit is durable. The
// response carries the commit CSN, which becomes the session's client's
// read-your-writes token for subsequent replica reads.
func (s *Session) Commit() error {
	r, err := s.do(wire.OpCommit, nil)
	if err == nil {
		if _, csn, derr := wire.DecodeResultCSN(r.body); derr == nil {
			s.w.noteCSN(csn)
		}
	}
	if err == nil || !s.w.healthy() {
		s.inTxn = false
	}
	s.noteOutcome(err)
	return err
}

// Rollback aborts the session transaction.
func (s *Session) Rollback() error {
	_, err := s.do(wire.OpAbort, nil)
	if err == nil || !s.w.healthy() {
		s.inTxn = false
	}
	return err
}

// ShardMap fetches the server's shard topology (OpShardMap) for router
// bootstrap. With expect=true the request asserts this session is talking
// to the node serving shard id; a mismatch is the typed CodeWrongShard
// refusal, the router's cue that its map is stale.
func (s *Session) ShardMap(expect bool, id uint32) (*wire.ShardMap, error) {
	r, err := s.do(wire.OpShardMap, wire.EncodeShardMapReq(expect, id))
	if err != nil {
		return nil, err
	}
	return wire.DecodeShardMap(r.body)
}

// TxnPrepare votes on the open session transaction as a two-phase-commit
// participant under gtid. The response arrives when the prepare record is
// durable: wire.PreparedWrites means the coordinator owes this node a
// decision (TxnDecide), wire.PreparedReadOnly means the transaction wrote
// nothing and committed locally. An error response is a "no" vote -- the
// server has already aborted the transaction. The session transaction is
// over either way: a prepared participant belongs to the engine's decision
// path, never to this session. Prepare is never retried here -- a lost ack
// leaves the participant in-doubt, and only the coordinator's recovery
// protocol may resolve that.
func (s *Session) TxnPrepare(gtid string) (vote byte, err error) {
	r, err := s.do(wire.OpTxnPrepare, wire.EncodeTxnPrepare(gtid))
	if err == nil {
		s.inTxn = false
	} else {
		// Any definitive server answer means the transaction is gone; only
		// admission refusals (Busy/Closed) answer without executing.
		var we *wire.Error
		if errors.As(err, &we) && we.Code != wire.CodeBusy && we.Code != wire.CodeClosed {
			s.inTxn = false
		}
		if !s.w.healthy() {
			s.inTxn = false
		}
	}
	if err != nil {
		return 0, err
	}
	if len(r.body) != 1 || r.body[0] > wire.PreparedReadOnly {
		return 0, wire.ErrPayloadCorrupt
	}
	return r.body[0], nil
}

// TxnDecide delivers the coordinator's decision for a prepared gtid; the
// response (the commit CSN, 0 for abort) arrives when the decision record
// is durable and applied. Idempotent server-side, so a coordinator may
// re-deliver after a lost ack.
func (s *Session) TxnDecide(gtid string, commit bool) (uint64, error) {
	r, err := s.do(wire.OpTxnDecide, wire.EncodeTxnDecide(gtid, commit))
	if err != nil {
		return 0, err
	}
	return wire.DecodeTxnCSN(r.body)
}

// TxnStatus asks a participant for a gtid's outcome (wire.Txn* state byte
// plus commit CSN). Recovering coordinators use it against a transaction's
// home shard to learn the authoritative decision.
func (s *Session) TxnStatus(gtid string) (state byte, csn uint64, err error) {
	r, err := s.do(wire.OpTxnStatus, wire.EncodeTxnStatus(gtid))
	if err != nil {
		return 0, 0, err
	}
	return wire.DecodeTxnState(r.body)
}

// TxnRecover lists the gtids prepared on this node but still undecided --
// the in-doubt set a recovering coordinator must resolve.
func (s *Session) TxnRecover() ([]string, error) {
	r, err := s.do(wire.OpTxnRecover, nil)
	if err != nil {
		return nil, err
	}
	return wire.DecodeGTIDList(r.body)
}

// TxnForget tells a participant to prune a decided gtid's 2PC bookkeeping.
// Coordinators send it only once the decision is known durably applied at
// every participant; the response arrives when the forget record is durable.
// Best-effort -- a lost forget just retains metadata.
func (s *Session) TxnForget(gtid string) error {
	_, err := s.do(wire.OpTxnForget, wire.EncodeTxnForget(gtid))
	return err
}

// Stats fetches the server stats snapshot.
func (s *Session) Stats() (string, error) {
	r, err := s.do(wire.OpStats, nil)
	if err != nil {
		return "", err
	}
	return string(r.body), nil
}

// Ping round-trips an empty frame.
func (s *Session) Ping() error {
	_, err := s.do(wire.OpPing, nil)
	return err
}

// txnVerb reports whether sql is bare BEGIN/COMMIT/ROLLBACK text (any
// case, optional trailing semicolon), returning the normalized verb or "".
func txnVerb(sql string) string {
	switch t := strings.ToUpper(strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(sql), ";"))); t {
	case "BEGIN", "COMMIT", "ROLLBACK":
		return t
	}
	return ""
}

// Exec runs one statement. BEGIN/COMMIT/ROLLBACK text routes to the
// dedicated opcodes so interactive drivers (hishell) get pipelined
// commits and correct state tracking. Outside a transaction, retryable
// errors retry with backoff; inside one they surface immediately.
func (s *Session) Exec(sql string, args ...core.Value) (*wire.Result, error) {
	switch txnVerb(sql) {
	case "BEGIN":
		return &wire.Result{}, s.Begin()
	case "COMMIT":
		return &wire.Result{}, s.Commit()
	case "ROLLBACK":
		return &wire.Result{}, s.Rollback()
	}
	if s.inTxn {
		res, err := s.exec(sql, args)
		s.noteOutcome(err)
		return res, err
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		res, err := s.exec(sql, args)
		if err == nil {
			return res, nil
		}
		lastErr = err
		if attempt >= s.c.opts.MaxRetries || !retryable(lastErr) {
			return nil, lastErr
		}
		s.c.backoff(attempt)
	}
}

// --- prepared statements ---------------------------------------------------

// Stmt is a server-side prepared statement: parse/plan was paid once at
// Prepare, and every Exec ships only the statement id and an argument
// row. A Stmt is bound to its session (statement ids are scoped to the
// server-side session) and, like the session, is not safe for concurrent
// use. Session.Close closes any statements still open.
type Stmt struct {
	s       *Session
	id      uint64
	sql     string
	verb    string // BEGIN/COMMIT/ROLLBACK, delegated to session state tracking
	nParams int
	closed  bool
}

// Prepare compiles sql server-side and returns its statement handle.
// Retryable errors (busy admission) retry with backoff: preparing
// executes nothing, so retry is safe even inside a transaction.
func (s *Session) Prepare(sql string) (*Stmt, error) {
	if s.closed {
		return nil, ErrClientClosed
	}
	r, err := s.doRetryable(wire.OpPrepare, wire.EncodePrepare(sql))
	if err != nil {
		return nil, err
	}
	id, n, err := wire.DecodePrepareResult(r.body)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	st := &Stmt{s: s, id: id, sql: sql, verb: txnVerb(sql), nParams: n}
	if s.stmts == nil {
		s.stmts = make(map[uint64]*Stmt)
	}
	s.stmts[id] = st
	return st, nil
}

// NumParams reports the statement's parameter count.
func (st *Stmt) NumParams() int { return st.nParams }

// Exec runs the prepared statement. Prepared BEGIN/COMMIT/ROLLBACK
// delegate to the session's transaction methods so client-side state
// tracking (and the pipelined commit path) stay exactly as for text.
// Retry mirrors Session.Exec: retryable codes retry with backoff outside
// a transaction, never inside one.
func (st *Stmt) Exec(args ...core.Value) (*wire.Result, error) {
	if st.closed {
		return nil, ErrStmtClosed
	}
	s := st.s
	switch st.verb {
	case "BEGIN":
		return &wire.Result{}, s.Begin()
	case "COMMIT":
		return &wire.Result{}, s.Commit()
	case "ROLLBACK":
		return &wire.Result{}, s.Rollback()
	}
	if s.inTxn {
		res, err := st.exec(args)
		s.noteOutcome(err)
		return res, err
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		res, err := st.exec(args)
		if err == nil {
			return res, nil
		}
		lastErr = err
		if attempt >= s.c.opts.MaxRetries || !retryable(lastErr) {
			return nil, lastErr
		}
		s.c.backoff(attempt)
	}
}

// exec is one un-retried prepared round trip.
func (st *Stmt) exec(args []core.Value) (*wire.Result, error) {
	r, err := st.s.do(wire.OpExecStmt, wire.EncodeExecStmt(st.id, args))
	if err != nil {
		return nil, err
	}
	return decodeResultNote(st.s.w, r.body)
}

// ExecPipe sends a prepared execution without waiting (no retry). A
// prepared COMMIT/ROLLBACK updates the client-side transaction flag like
// CommitPipe; otherwise transaction-state tracking is the caller's
// concern when pipelining.
func (st *Stmt) ExecPipe(args ...core.Value) (*Pending, error) {
	if st.closed {
		return nil, ErrStmtClosed
	}
	if st.s.closed {
		return nil, ErrClientClosed
	}
	switch st.verb {
	case "BEGIN":
		st.s.inTxn = true
	case "COMMIT", "ROLLBACK":
		st.s.inTxn = false
	}
	tid, hop := st.s.traceIDs()
	return st.s.w.start(wire.OpExecStmt, wire.EncodeExecStmt(st.id, args), st.s.c.opts.RequestTimeout, tid, hop)
}

// Close releases the server-side statement. Closing twice (or closing
// after the session closed) is a no-op; server-side close is idempotent.
func (st *Stmt) Close() error {
	if st.closed {
		return nil
	}
	st.closed = true
	s := st.s
	delete(s.stmts, st.id)
	if s.closed || !s.w.healthy() {
		return nil
	}
	_, err := s.do(wire.OpCloseStmt, wire.EncodeCloseStmt(st.id))
	return err
}

// exec is one un-retried statement round trip.
func (s *Session) exec(sql string, args []core.Value) (*wire.Result, error) {
	r, err := s.do(wire.OpExec, wire.EncodeExec(sql, args))
	if err != nil {
		return nil, err
	}
	return decodeResultNote(s.w, r.body)
}

// execAt is one un-retried snapshot-read round trip against a replica,
// carrying minCSN as the read-your-writes token.
func (s *Session) execAt(minCSN uint64, sql string, args []core.Value) (*wire.Result, error) {
	r, err := s.do(wire.OpExecAt, wire.EncodeExecAt(minCSN, sql, args))
	if err != nil {
		return nil, err
	}
	return decodeResultNote(s.w, r.body)
}

// ExecAt runs one read-only statement at-or-after minCSN: on a replica
// the server waits (bounded) for its applied watermark to reach minCSN
// before executing, answering CodeBusy if it cannot catch up in time.
func (s *Session) ExecAt(minCSN uint64, sql string, args ...core.Value) (*wire.Result, error) {
	return s.execAt(minCSN, sql, args)
}

// decodeResultNote decodes a Result body, folding any trailing commit CSN
// (the read-your-writes token on commit responses) into the client token.
func decodeResultNote(w *wconn, body []byte) (*wire.Result, error) {
	if len(body) == 0 {
		return &wire.Result{}, nil
	}
	res, csn, err := wire.DecodeResultCSN(body)
	if err != nil {
		return nil, err
	}
	w.noteCSN(csn)
	return res, nil
}

// doRetryable round-trips with retry on retryable codes (used by Begin,
// which precedes any transaction state).
func (s *Session) doRetryable(op wire.Op, payload []byte) (response, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		r, err := s.do(op, payload)
		if err == nil {
			return r, nil
		}
		lastErr = err
		if attempt >= s.c.opts.MaxRetries || !retryable(lastErr) {
			return response{}, lastErr
		}
		s.c.backoff(attempt)
	}
}

// --- pipelined futures -----------------------------------------------------

// Pending is an in-flight request: the pipelining primitive. Start
// several, then wait; responses complete in whatever order the server
// answers (commits answer at durability).
type Pending struct {
	w  *wconn
	id uint64
	ch chan response
	t  time.Duration
}

// ExecPipe sends a statement without waiting (no retry; transaction-state
// tracking is the caller's concern when pipelining).
func (s *Session) ExecPipe(sql string, args ...core.Value) (*Pending, error) {
	if s.closed {
		return nil, ErrClientClosed
	}
	tid, hop := s.traceIDs()
	return s.w.start(wire.OpExec, wire.EncodeExec(sql, args), s.c.opts.RequestTimeout, tid, hop)
}

// CommitPipe sends a commit without waiting; Wait returns at durability.
func (s *Session) CommitPipe() (*Pending, error) {
	if s.closed {
		return nil, ErrClientClosed
	}
	s.inTxn = false
	tid, hop := s.traceIDs()
	return s.w.start(wire.OpCommit, nil, s.c.opts.RequestTimeout, tid, hop)
}

// Wait blocks for the response.
func (p *Pending) Wait() (*wire.Result, error) {
	r, err := p.wait()
	if err != nil {
		return nil, err
	}
	return decodeResultNote(p.w, r.body)
}

// --- connection ------------------------------------------------------------

// response is one decoded response.
type response struct {
	code  wire.Code
	msg   string
	body  []byte
	trace *wire.TraceInfo // stage timings, on traced terminal responses
}

// wconn is one multiplexed TCP connection.
type wconn struct {
	nc net.Conn
	br *bufio.Reader

	// csn is the owning client's shared read-your-writes token; commit
	// CSNs riding response bodies fold into it (monotonic max).
	csn        *atomic.Uint64
	onGreeting func(role byte, primary string, epoch uint64)

	writeMu sync.Mutex

	mu      sync.Mutex
	pending map[uint64]chan response
	reqSeq  uint64
	err     error // sticky: set once the connection fails
}

// noteCSN folds a commit CSN from a response body into the client's shared
// read-your-writes token (monotonic max; 0 is a no-op).
func (w *wconn) noteCSN(v uint64) {
	if v == 0 || w.csn == nil {
		return
	}
	for {
		cur := w.csn.Load()
		if v <= cur || w.csn.CompareAndSwap(cur, v) {
			return
		}
	}
}

// healthy reports whether the connection can carry more requests.
func (w *wconn) healthy() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err == nil
}

// fail marks the connection dead and wakes every pending request.
func (w *wconn) fail(err error) {
	w.mu.Lock()
	if w.err == nil {
		w.err = err
	}
	pend := w.pending
	w.pending = make(map[uint64]chan response)
	w.mu.Unlock()
	w.nc.Close()
	for _, ch := range pend {
		close(ch) // closed channel = connection-level failure; err is sticky
	}
}

// start registers a future and writes the request frame. A nonzero traceID
// flags the frame as traced, asking the server to trace the request; hop
// is the request's span id within a distributed trace (0 outside one).
func (w *wconn) start(op wire.Op, payload []byte, timeout time.Duration, traceID uint64, hop uint32) (*Pending, error) {
	ch := make(chan response, 1)
	w.mu.Lock()
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return nil, err
	}
	w.reqSeq++
	id := w.reqSeq
	w.pending[id] = ch
	w.mu.Unlock()

	bp := wire.GetBuf()
	f := wire.Frame{RequestID: id, Op: op, Payload: payload}
	if traceID != 0 {
		f.Traced, f.TraceID, f.Hop = true, traceID, hop
	}
	buf := wire.AppendFrame((*bp)[:0], f)
	w.writeMu.Lock()
	w.nc.SetWriteDeadline(time.Now().Add(timeout))
	_, err := w.nc.Write(buf)
	w.writeMu.Unlock()
	*bp = buf
	wire.PutBuf(bp)
	if err != nil {
		w.fail(fmt.Errorf("client: write: %w", err))
		return nil, fmt.Errorf("client: write: %w", err)
	}
	return &Pending{w: w, id: id, ch: ch, t: timeout}, nil
}

// wait blocks for the future's response, the connection's failure, or the
// timeout (which fails the connection: request IDs cannot be resynced
// once a response is abandoned).
func (p *Pending) wait() (response, error) {
	t := time.NewTimer(p.t)
	defer t.Stop()
	select {
	case r, ok := <-p.ch:
		if !ok {
			p.w.mu.Lock()
			err := p.w.err
			p.w.mu.Unlock()
			return response{}, err
		}
		if r.code != wire.CodeOK {
			// Return r alongside the error: traced error responses still
			// carry stage timings worth surfacing.
			return r, wire.FromCode(r.code, r.msg)
		}
		return r, nil
	case <-t.C:
		err := fmt.Errorf("client: request %d timed out after %v", p.id, p.t)
		p.w.fail(err)
		return response{}, err
	}
}

// readLoop dispatches response frames to futures. A response whose ID
// matches no pending request is a connection-level notice (the server's
// greeting rejection uses ID 0): a non-OK code fails the connection with
// that error so current and future requests see it.
func (w *wconn) readLoop() {
	fr := wire.NewFrameReader(w.br, false)
	for {
		f, err := fr.Read()
		if err != nil {
			w.fail(fmt.Errorf("client: read: %w", err))
			return
		}
		payload := f.Payload
		var ti *wire.TraceInfo
		if f.Traced {
			// Traced responses carry the stage-timing block ahead of the
			// response body.
			var rest []byte
			ti, rest, err = wire.DecodeTraceBlock(payload)
			if err != nil {
				w.fail(fmt.Errorf("client: %w", err))
				return
			}
			ti.TraceID = f.TraceID
			ti.Hop = f.Hop
			payload = rest
		}
		code, msg, body, err := wire.DecodeResponse(payload)
		if err != nil {
			w.fail(fmt.Errorf("client: %w", err))
			return
		}
		w.mu.Lock()
		ch, ok := w.pending[f.RequestID]
		delete(w.pending, f.RequestID)
		w.mu.Unlock()
		if !ok {
			if code != wire.CodeOK {
				w.fail(wire.FromCode(code, msg))
				return
			}
			if role, primary, epoch, gok := wire.DecodeGreeting(body); gok && w.onGreeting != nil {
				w.onGreeting(role, primary, epoch)
			}
			continue
		}
		// body aliases the FrameReader's reusable buffer; the future runs
		// on another goroutine, so hand it a copy.
		if len(body) > 0 {
			body = append([]byte(nil), body...)
		}
		ch <- response{code: code, msg: msg, body: body, trace: ti}
	}
}
