// Streaming queries and batch writes: the client side of the cursor
// protocol (OpScanOpen/OpScanNext/OpScanClose) and of OpExecBatch.
package client

import (
	"errors"

	"hiengine/internal/core"
	"hiengine/internal/wire"
)

// Rows iterates a streaming SELECT: the server executes the statement
// against one pinned MVCC snapshot and hands rows back in bounded pages,
// so a result of any size flows through a fixed memory footprint on both
// sides (no wire.MaxPayload limit). OpScanNext round trips are issued
// transparently as pages drain.
//
// Usage mirrors database/sql:
//
//	rows, err := c.Query("SELECT k, v FROM t WHERE s = ?", core.I(1))
//	if err != nil { ... }
//	defer rows.Close()
//	for rows.Next() {
//		row := rows.Row()
//		...
//	}
//	if err := rows.Err(); err != nil { ... }
//
// A Rows is bound to its session and, like the session, is not safe for
// concurrent use. Close is idempotent and required unless Next returned
// false (exhaustion or error closes the cursor on both sides); Rows from
// Client.Query own their session and release it on close.
type Rows struct {
	s       *Session
	ownSess bool
	id      uint64
	fetch   int
	cols    []string

	page []core.Row
	idx  int
	row  core.Row

	srvDone bool // server sent the final page and auto-closed the cursor
	closed  bool
	err     error
}

// Query opens a streaming SELECT on a pooled session and returns its row
// iterator; the session is released when the Rows closes. Open-time
// failures (parse, plan, admission) retry retryable codes with backoff
// exactly like Exec -- nothing has streamed yet, so replaying the open is
// safe.
func (c *Client) Query(sql string, args ...core.Value) (*Rows, error) {
	s, err := c.Session()
	if err != nil {
		return nil, err
	}
	r, err := s.Query(sql, args...)
	if err != nil {
		s.Close()
		return nil, err
	}
	r.ownSess = true
	return r, nil
}

// Query opens a streaming SELECT on this session. The cursor pins its own
// MVCC snapshot server-side: the stream is consistent as of the open
// regardless of concurrent writers. Refused inside an open transaction
// (the snapshot would not see the transaction's own writes).
func (s *Session) Query(sql string, args ...core.Value) (*Rows, error) {
	if s.closed {
		return nil, ErrClientClosed
	}
	fetch := s.fetchSize()
	r, err := s.doRetryable(wire.OpScanOpen, wire.EncodeScanOpen(fetch, sql, args))
	if err != nil {
		return nil, err
	}
	id, done, res, err := wire.DecodeCursorPage(r.body)
	if err != nil {
		return nil, err
	}
	return &Rows{s: s, id: id, fetch: fetch, cols: res.Columns,
		page: res.Rows, srvDone: done}, nil
}

// SetFetchSize sets the rows-per-page hint for this session's streaming
// queries (n <= 0 restores the client default). The server additionally
// bounds every page by bytes, so a large fetch size with wide rows still
// streams in bounded chunks.
func (s *Session) SetFetchSize(n int) { s.fetch = n }

// FetchSize returns the effective rows-per-page hint for this session's
// streaming queries.
func (s *Session) FetchSize() int { return s.fetchSize() }

func (s *Session) fetchSize() int {
	if s.fetch > 0 {
		return s.fetch
	}
	return s.c.opts.FetchSize
}

// Next advances to the next row, fetching the next page from the server
// when the current one drains. It returns false at exhaustion or on
// error; Err distinguishes the two.
func (r *Rows) Next() bool {
	if r.closed {
		return false
	}
	for r.idx >= len(r.page) {
		if r.srvDone {
			r.finish(nil)
			return false
		}
		if !r.fetchPage() {
			return false
		}
	}
	r.row = r.page[r.idx]
	r.idx++
	return true
}

// fetchPage issues one OpScanNext round trip. Only CodeBusy retries: busy
// means the request was rejected at admission, before touching the
// cursor, so replay is safe; any error after rows may have been consumed
// (including conflict) is terminal for the stream.
func (r *Rows) fetchPage() bool {
	var lastErr error
	for attempt := 0; ; attempt++ {
		resp, err := r.s.do(wire.OpScanNext, wire.EncodeScanNext(r.id, r.fetch))
		if err == nil {
			_, done, res, derr := wire.DecodeCursorPage(resp.body)
			if derr != nil {
				r.finish(derr)
				return false
			}
			r.page, r.idx, r.srvDone = res.Rows, 0, done
			return true
		}
		lastErr = err
		var we *wire.Error
		if attempt >= r.s.c.opts.MaxRetries || !errors.As(err, &we) || we.Code != wire.CodeBusy {
			break
		}
		r.s.c.backoff(attempt)
	}
	r.finish(lastErr)
	return false
}

// Row returns the current row (valid after Next returned true, until the
// next call to Next).
func (r *Rows) Row() core.Row { return r.row }

// Columns returns the projected column list (nil for SELECT *).
func (r *Rows) Columns() []string { return r.cols }

// Err returns the error that terminated iteration, nil after a clean
// exhaustion or before one.
func (r *Rows) Err() error { return r.err }

// Close releases the cursor (a no-op server-side if the stream already
// finished) and, for Client.Query rows, the leased session. Idempotent.
func (r *Rows) Close() error {
	r.finish(nil)
	return r.err
}

func (r *Rows) finish(err error) {
	if r.closed {
		return
	}
	r.closed = true
	r.err = err
	if !r.srvDone && !r.s.closed && r.s.w.healthy() {
		// Best effort: the server reaps abandoned cursors with the
		// connection anyway.
		r.s.do(wire.OpScanClose, wire.EncodeScanClose(r.id))
	}
	if r.ownSess {
		r.s.Close()
	}
}

// ExecBatch ships a batch of statements as one frame and waits for its
// single response, returning the per-statement affected counts. Outside a
// transaction the batch is atomic (all or nothing, acknowledged at
// durability) and retryable codes retry whole -- a failed batch left
// nothing applied; inside one it is simply N statements of the open
// transaction and errors surface immediately, like Exec.
func (s *Session) ExecBatch(stmts []wire.BatchStmt) ([]int, error) {
	if s.closed {
		return nil, ErrClientClosed
	}
	if len(stmts) == 0 {
		return nil, nil
	}
	payload := wire.EncodeExecBatch(stmts)
	if s.inTxn {
		aff, err := s.execBatch(payload)
		s.noteOutcome(err)
		return aff, err
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		aff, err := s.execBatch(payload)
		if err == nil {
			return aff, nil
		}
		lastErr = err
		if attempt >= s.c.opts.MaxRetries || !retryable(lastErr) {
			return nil, lastErr
		}
		s.c.backoff(attempt)
	}
}

// execBatch is one un-retried batch round trip.
func (s *Session) execBatch(payload []byte) ([]int, error) {
	r, err := s.do(wire.OpExecBatch, payload)
	if err != nil {
		return nil, err
	}
	aff, csn, err := wire.DecodeBatchResult(r.body)
	if err != nil {
		return nil, err
	}
	s.w.noteCSN(csn)
	return aff, nil
}

// ExecBatch runs one atomic batch on a pooled connection, retrying
// retryable wire errors with backoff (safe: a failed auto-batch applies
// nothing).
func (c *Client) ExecBatch(stmts []wire.BatchStmt) ([]int, error) {
	if len(stmts) == 0 {
		return nil, nil
	}
	payload := wire.EncodeExecBatch(stmts)
	var lastErr error
	for attempt := 0; ; attempt++ {
		s, err := c.Session()
		if err != nil {
			lastErr = err
		} else {
			aff, berr := s.execBatch(payload)
			s.Close()
			if berr == nil {
				return aff, nil
			}
			lastErr = berr
		}
		if attempt >= c.opts.MaxRetries || !retryable(lastErr) {
			return nil, lastErr
		}
		c.backoff(attempt)
	}
}
