// Distributed traces: the client side of cross-process trace stitching.
//
// A coordinator (shard.Router) that fans one transaction out to several
// shards shares a single DistTrace across every participant session. Each
// request the transaction sends carries the shared 64-bit trace id plus a
// fresh hop id from the trace's counter, so every participant's stage
// timings come back tagged (trace id, hop, shard, opcode) and the
// coordinator can stitch them into one tree: which shard's prepare was
// slow, how long the decide-point durability took, what the fan-out cost.
package client

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hiengine/internal/core"
	"hiengine/internal/wire"
)

// DistHop is one participant's completed traced unit within a distributed
// trace: the terminal response's stage block plus the coordinator's
// client-side view of the terminal round trip.
type DistHop struct {
	// Hop is the span id of the unit's first request (the participant
	// echoes it on the terminal response).
	Hop uint32
	// Op is the terminal request's opcode (OpTxnPrepare, OpTxnDecide, ...).
	Op wire.Op
	// Start is the terminal request's send offset from the trace start.
	Start time.Duration
	// RTT is the coordinator-observed round trip of the terminal request.
	RTT time.Duration
	// Info is the participant's stage-timing block, tagged with its shard.
	Info *wire.TraceInfo
}

// DistTrace is one distributed transaction's shared trace: a trace id, a
// hop-id allocator, and the hops collected so far. Safe for concurrent use
// by the parallel sessions of one distributed transaction.
type DistTrace struct {
	id  uint64
	t0  time.Time
	hop atomic.Uint32

	mu   sync.Mutex
	hops []DistHop
}

// NewDistTrace starts a distributed trace under the given id. The caller
// owns id allocation (it must be unique across the coordinator's clients;
// per-client sequences would collide).
func NewDistTrace(id uint64) *DistTrace {
	return &DistTrace{id: id, t0: time.Now()}
}

// ID returns the shared trace id.
func (d *DistTrace) ID() uint64 { return d.id }

// Start returns the trace's start time.
func (d *DistTrace) Start() time.Time { return d.t0 }

// Since returns the elapsed time since the trace started.
func (d *DistTrace) Since() time.Duration { return time.Since(d.t0) }

// nextHop allocates the next hop (span) id; hop ids start at 1 so an
// untagged frame's 0 is distinguishable.
func (d *DistTrace) nextHop() uint32 { return d.hop.Add(1) }

// record collects one completed hop (a participant's terminal traced
// response).
func (d *DistTrace) record(op wire.Op, start, rtt time.Duration, ti *wire.TraceInfo) {
	d.mu.Lock()
	d.hops = append(d.hops, DistHop{Hop: ti.Hop, Op: op, Start: start, RTT: rtt, Info: ti})
	d.mu.Unlock()
}

// Hops returns a copy of the collected hops, ordered by hop id.
func (d *DistTrace) Hops() []DistHop {
	d.mu.Lock()
	out := make([]DistHop, len(d.hops))
	copy(out, d.hops)
	d.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Hop < out[j].Hop })
	return out
}

// SetDistTrace attaches (or, with nil, detaches) a distributed trace to
// the session: while attached, every request is traced under the shared
// trace id with a fresh hop id, and each completed traced unit's stage
// block is collected into the trace. Takes precedence over Trace(on).
func (s *Session) SetDistTrace(dt *DistTrace) { s.dist = dt }

// ExecDist runs one autocommit statement on a pooled session carrying dt,
// recording the statement's hop into the trace. Retry semantics are the
// session's (autocommit statements retry retryable codes like Exec).
func (c *Client) ExecDist(dt *DistTrace, sql string, args ...core.Value) (*wire.Result, error) {
	s, err := c.Session()
	if err != nil {
		return nil, err
	}
	defer s.Close()
	s.SetDistTrace(dt)
	return s.Exec(sql, args...)
}

// ExecBatchDist runs one atomic batch on a pooled session carrying dt.
func (c *Client) ExecBatchDist(dt *DistTrace, stmts []wire.BatchStmt) ([]int, error) {
	s, err := c.Session()
	if err != nil {
		return nil, err
	}
	defer s.Close()
	s.SetDistTrace(dt)
	return s.ExecBatch(stmts)
}

// QueryDist is Client.Query with dt attached to the session for the life
// of the cursor: the open and every page fetch record hops into dt.
func (c *Client) QueryDist(dt *DistTrace, sql string, args ...core.Value) (*Rows, error) {
	s, err := c.Session()
	if err != nil {
		return nil, err
	}
	s.SetDistTrace(dt)
	r, err := s.Query(sql, args...)
	if err != nil {
		s.Close()
		return nil, err
	}
	r.ownSess = true
	return r, nil
}
