// Package delay models the latency landscape of the cloud infrastructure
// HiEngine runs on: persistent-memory appends on compute nodes, RDMA hops
// inside the compute layer, the slower cross-layer network between compute
// and storage pods, and SSD writes in the storage tier.
//
// The paper's argument is built on latency *ratios* (inter-layer latency is
// 3-5x intra-layer; PM appends are microseconds while storage commits are
// hundreds of microseconds). Profiles here encode those ratios and every
// simulated device calls back into a Model so experiments can flip between
// them (e.g. the commit-side ablation).
//
// Sleeping for single-digit microseconds with time.Sleep is unreliable on a
// stock kernel, so Wait uses a hybrid strategy: coarse sleeps for the bulk
// of long waits and a calibrated spin for the microsecond tail.
package delay

import (
	"sync/atomic"
	"time"
)

// Model is a set of latencies for the simulated hardware. A zero Model means
// "infinitely fast hardware" and is what unit tests use; benchmarks install
// one of the profiles below.
type Model struct {
	// ComputePMAppend is the cost of persisting an append into local
	// persistent memory on a compute node (CLWB+fence territory).
	ComputePMAppend time.Duration
	// IntraComputeRTT is one RDMA round trip between two compute nodes
	// (used to replicate the log tail to the two peer compute nodes).
	IntraComputeRTT time.Duration
	// CrossLayerRTT is one round trip between the compute and storage
	// layers (the paper: 3-5x IntraComputeRTT).
	CrossLayerRTT time.Duration
	// IntraStorageRTT is one round trip between storage nodes (replication
	// inside the storage tier).
	IntraStorageRTT time.Duration
	// SSDWrite is the device cost of persisting an append on a storage
	// node's SSD.
	SSDWrite time.Duration
	// SSDRead is the device cost of a random read from a storage node.
	SSDRead time.Duration
	// PMRead is the cost of a read served from compute-side persistent
	// memory through the mmap path.
	PMRead time.Duration
	// RDMAFetchAdd is one one-sided RDMA fetch-and-add against a remote
	// node (logical-clock timestamp grant).
	RDMAFetchAdd time.Duration
	// PerByteAppend adds bandwidth cost proportional to payload size for
	// append operations (per byte).
	PerByteAppend time.Duration
	// PageAccess is the CPU cost of one buffer-pool page access in a
	// storage-centric engine: hash probe, latch acquisition and LRU
	// maintenance. Memory-optimized engines avoid this per-access tax --
	// the paper's core argument for indirection arrays over buffer pools.
	PageAccess time.Duration
}

// CloudProfile mirrors the paper's Huawei Cloud deployment: microsecond PM
// appends, fast intra-layer RDMA, a 4x-slower cross-layer network and
// conventional SSDs in the storage tier.
func CloudProfile() *Model {
	return &Model{
		ComputePMAppend: 1 * time.Microsecond,
		IntraComputeRTT: 5 * time.Microsecond,
		CrossLayerRTT:   20 * time.Microsecond,
		IntraStorageRTT: 5 * time.Microsecond,
		SSDWrite:        80 * time.Microsecond,
		SSDRead:         90 * time.Microsecond,
		PMRead:          300 * time.Nanosecond,
		RDMAFetchAdd:    13 * time.Microsecond,
		PerByteAppend:   0,
		PageAccess:      400 * time.Nanosecond,
	}
}

// StorageCentricProfile is CloudProfile as experienced by an engine that must
// force its commit log across the cross-layer network (Aurora/Taurus-style
// direct deployment); used by the baselines and the commit-side ablation.
func StorageCentricProfile() *Model {
	m := CloudProfile()
	// A storage-centric engine has no compute-side persistence: its
	// "append" is a cross-layer round trip plus an SSD write.
	m.ComputePMAppend = m.CrossLayerRTT + m.SSDWrite
	m.IntraComputeRTT = 0 // replication is the storage service's problem
	return m
}

// Zero returns a model with no simulated latency (unit tests, functional
// checks).
func Zero() *Model { return &Model{} }

// Wait blocks the calling goroutine for approximately d. Durations under
// spinThreshold are spun; longer waits sleep for the bulk and spin the tail.
func Wait(d time.Duration) {
	if d <= 0 {
		return
	}
	// time.Sleep resolution is the kernel timer tick -- ~1ms on stock
	// kernels -- so any shorter sleep overshoots to ~1.1ms and would
	// destroy the modeled latency ratios. Spin everything below the
	// tick and only sleep the bulk of genuinely long waits.
	const spinThreshold = 1200 * time.Microsecond
	deadline := time.Now().Add(d)
	if d > spinThreshold {
		time.Sleep(d - spinThreshold)
	}
	for time.Now().Before(deadline) {
		// Busy wait. The loop body is kept non-empty so the compiler
		// does not elide it; Gosched would defeat the calibration.
		spinHint()
	}
}

var spinSink atomic.Uint64

func spinHint() { spinSink.Add(1) }

// Waiter is implemented by anything that can charge a latency. Devices take
// a Waiter so tests can count charged latency instead of sleeping.
type Waiter interface {
	Wait(d time.Duration)
}

// SleepWaiter charges latencies by actually waiting (the default).
type SleepWaiter struct{}

// Wait implements Waiter.
func (SleepWaiter) Wait(d time.Duration) { Wait(d) }

// CountingWaiter accumulates charged latency without blocking. It is safe
// for concurrent use and is used by tests and by the virtual-time harness.
type CountingWaiter struct {
	total atomic.Int64
	calls atomic.Int64
}

// Wait implements Waiter by recording d.
func (w *CountingWaiter) Wait(d time.Duration) {
	if d > 0 {
		w.total.Add(int64(d))
	}
	w.calls.Add(1)
}

// Total returns the accumulated charged latency.
func (w *CountingWaiter) Total() time.Duration { return time.Duration(w.total.Load()) }

// Calls returns how many waits were charged (including zero-length ones).
func (w *CountingWaiter) Calls() int64 { return w.calls.Load() }
