package delay

import (
	"testing"
	"time"
)

func TestWaitZeroAndNegative(t *testing.T) {
	start := time.Now()
	Wait(0)
	Wait(-time.Second)
	if el := time.Since(start); el > 10*time.Millisecond {
		t.Fatalf("zero/negative waits took %v", el)
	}
}

func TestWaitApproximatesDuration(t *testing.T) {
	for _, d := range []time.Duration{5 * time.Microsecond, 200 * time.Microsecond, 2 * time.Millisecond} {
		start := time.Now()
		Wait(d)
		el := time.Since(start)
		if el < d {
			t.Errorf("Wait(%v) returned after %v (< requested)", d, el)
		}
		if el > d+5*time.Millisecond {
			t.Errorf("Wait(%v) overshot to %v", d, el)
		}
	}
}

func TestCountingWaiter(t *testing.T) {
	var w CountingWaiter
	w.Wait(3 * time.Microsecond)
	w.Wait(0)
	w.Wait(7 * time.Microsecond)
	if got := w.Total(); got != 10*time.Microsecond {
		t.Fatalf("Total = %v, want 10µs", got)
	}
	if got := w.Calls(); got != 3 {
		t.Fatalf("Calls = %d, want 3", got)
	}
}

func TestCloudProfileRatios(t *testing.T) {
	m := CloudProfile()
	if m.CrossLayerRTT < 3*m.IntraComputeRTT || m.CrossLayerRTT > 5*m.IntraComputeRTT {
		t.Errorf("cross-layer latency %v not 3-5x intra-compute %v (paper Section 2.1)",
			m.CrossLayerRTT, m.IntraComputeRTT)
	}
	if m.ComputePMAppend >= m.CrossLayerRTT {
		t.Errorf("PM append %v should be far below cross-layer RTT %v", m.ComputePMAppend, m.CrossLayerRTT)
	}
}

func TestStorageCentricProfileSlowerCommit(t *testing.T) {
	cloud := CloudProfile()
	sc := StorageCentricProfile()
	if sc.ComputePMAppend <= cloud.ComputePMAppend {
		t.Fatalf("storage-centric commit persistence %v should exceed compute-side %v",
			sc.ComputePMAppend, cloud.ComputePMAppend)
	}
}

func TestZeroModelChargesNothing(t *testing.T) {
	var w CountingWaiter
	m := Zero()
	w.Wait(m.ComputePMAppend)
	w.Wait(m.CrossLayerRTT)
	if w.Total() != 0 {
		t.Fatalf("zero model charged %v", w.Total())
	}
}
