package sqlfront

import (
	"container/list"
	"sync"
	"sync/atomic"

	"hiengine/internal/core"
)

// DefaultPlanCacheSize bounds the frontend plan cache when the deployment
// does not choose its own bound.
const DefaultPlanCacheSize = 512

// compiled is one cache entry: the parse/plan/compile work for one SQL
// text, done once (Section 3.3's full-stack code generation). The closure
// is session-free -- it binds parameters and the *executing* session
// straight into engine calls -- so one entry serves every session of the
// frontend. gen stamps the catalog generation the plan was compiled
// against; a plan whose stamp no longer matches the frontend's generation
// is never executed (it may capture dead table handles or stale
// table-to-engine routing, the multi-engine hazard Skeena documents).
type compiled struct {
	nParams int
	gen     uint64
	fn      func(s *Session, args []core.Value) (*Result, error)
}

// planCache is a size-bounded, SQL-text-keyed LRU of compiled statements.
type planCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element
	lru     *list.List // front = most recently used

	hits          atomic.Uint64
	misses        atomic.Uint64
	evictions     atomic.Uint64
	invalidations atomic.Uint64
}

type cacheEntry struct {
	sql string
	c   *compiled
}

func newPlanCache(capacity int) *planCache {
	if capacity <= 0 {
		capacity = DefaultPlanCacheSize
	}
	return &planCache{
		cap:     capacity,
		entries: make(map[string]*list.Element),
		lru:     list.New(),
	}
}

// get returns the cached plan for sql iff it was compiled at generation
// gen. A stale entry (any other generation) is removed and counted as an
// invalidation: lazily discarding on lookup means a DDL never has to walk
// the cache, and a stale plan still can never be returned.
func (pc *planCache) get(sql string, gen uint64) *compiled {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	el, ok := pc.entries[sql]
	if !ok {
		pc.misses.Add(1)
		return nil
	}
	e := el.Value.(*cacheEntry)
	if e.c.gen != gen {
		pc.lru.Remove(el)
		delete(pc.entries, sql)
		pc.invalidations.Add(1)
		pc.misses.Add(1)
		return nil
	}
	pc.lru.MoveToFront(el)
	pc.hits.Add(1)
	return e.c
}

// put inserts (or replaces) the plan for sql, evicting the least recently
// used entry beyond capacity. Only successfully compiled plans are ever
// stored: compile errors (unknown table, bad plan) must re-resolve on
// every attempt, otherwise a statement that fails before CREATE TABLE
// would keep failing after it.
func (pc *planCache) put(sql string, c *compiled) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if el, ok := pc.entries[sql]; ok {
		el.Value.(*cacheEntry).c = c
		pc.lru.MoveToFront(el)
		return
	}
	pc.entries[sql] = pc.lru.PushFront(&cacheEntry{sql: sql, c: c})
	for pc.lru.Len() > pc.cap {
		back := pc.lru.Back()
		pc.lru.Remove(back)
		delete(pc.entries, back.Value.(*cacheEntry).sql)
		pc.evictions.Add(1)
	}
}

// size reports the current entry count.
func (pc *planCache) size() int {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.lru.Len()
}

// PlanCacheStats is a snapshot of the frontend plan cache counters.
type PlanCacheStats struct {
	Size          int
	Hits          uint64
	Misses        uint64
	Evictions     uint64
	Invalidations uint64
}
