package sqlfront

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"hiengine/internal/adapt"
	"hiengine/internal/core"
	"hiengine/internal/delay"
	"hiengine/internal/srss"
)

func cacheFrontend(t *testing.T) (*Frontend, *core.Engine) {
	t.Helper()
	engine, err := core.Open(core.Config{
		Service: srss.New(srss.Config{Model: delay.Zero()}),
		Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { engine.Close() })
	return NewFrontend("hiengine", adapt.New(engine)), engine
}

// TestPlanCacheHit checks that repeated executions of the same SQL text
// share one compiled plan: one miss, then hits.
func TestPlanCacheHit(t *testing.T) {
	f, _ := cacheFrontend(t)
	s := f.NewSession(0)
	if _, err := s.Exec("CREATE TABLE t (id INT, v TEXT, PRIMARY KEY(id))"); err != nil {
		t.Fatal(err)
	}
	base := f.PlanCacheStats()
	for i := 0; i < 10; i++ {
		if _, err := s.Exec("INSERT INTO t VALUES (?, ?)", core.I(int64(i)), core.S("x")); err != nil {
			t.Fatal(err)
		}
	}
	st := f.PlanCacheStats()
	if got := st.Misses - base.Misses; got != 1 {
		t.Fatalf("10 executions compiled %d times, want 1", got)
	}
	if got := st.Hits - base.Hits; got != 9 {
		t.Fatalf("cache hits = %d, want 9", got)
	}

	// A second session shares the same plan: zero additional misses.
	s2 := f.NewSession(1)
	if _, err := s2.Exec("INSERT INTO t VALUES (?, ?)", core.I(100), core.S("y")); err != nil {
		t.Fatal(err)
	}
	if st2 := f.PlanCacheStats(); st2.Misses != st.Misses {
		t.Fatalf("second session recompiled a cached plan (misses %d -> %d)", st.Misses, st2.Misses)
	}
}

// TestPlanCacheErrorNotCached is the negative-caching regression: a
// statement that fails to compile because its table does not exist yet
// must succeed after CREATE TABLE. Caching the failure (or any pre-DDL
// resolution of the text) would pin the error forever.
func TestPlanCacheErrorNotCached(t *testing.T) {
	f, _ := cacheFrontend(t)
	s := f.NewSession(0)
	const ins = "INSERT INTO late VALUES (?, ?)"
	if _, err := s.Exec(ins, core.I(1), core.S("x")); err == nil {
		t.Fatal("insert into a missing table succeeded")
	}
	if _, err := s.Prepare(ins); err == nil {
		t.Fatal("prepare against a missing table succeeded")
	}
	if _, err := s.Exec("CREATE TABLE late (id INT, v TEXT, PRIMARY KEY(id))"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec(ins, core.I(1), core.S("x")); err != nil {
		t.Fatalf("re-exec after CREATE TABLE still fails: %v", err)
	}
	res, err := s.Exec("SELECT v FROM late WHERE id = ?", core.I(1))
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("read back: %v %+v", err, res)
	}
}

// TestPlanCacheDDLInvalidation is the staleness regression required by the
// wire protocol's prepared statements: a Stmt prepared before DDL must not
// execute its original plan afterwards -- it revalidates the catalog
// generation and recompiles. The invalidation counter observes that cached
// entries stamped with the old generation are really discarded.
func TestPlanCacheDDLInvalidation(t *testing.T) {
	f, _ := cacheFrontend(t)
	s := f.NewSession(0)
	if _, err := s.Exec("CREATE TABLE a (id INT, v TEXT, PRIMARY KEY(id))"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("INSERT INTO a VALUES (?, ?)", core.I(1), core.S("one")); err != nil {
		t.Fatal(err)
	}
	sel, err := s.Prepare("SELECT v FROM a WHERE id = ?")
	if err != nil {
		t.Fatal(err)
	}
	if res, err := sel.Exec(core.I(1)); err != nil || len(res.Rows) != 1 {
		t.Fatalf("pre-DDL exec: %v %+v", err, res)
	}
	genBefore := f.schemaGen.Load()

	// DDL: every cached plan (including sel's) is now a stale generation.
	if _, err := s.Exec("CREATE TABLE b (id INT, PRIMARY KEY(id))"); err != nil {
		t.Fatal(err)
	}
	if f.schemaGen.Load() == genBefore {
		t.Fatal("CREATE TABLE did not bump the schema generation")
	}

	inv := f.PlanCacheStats().Invalidations
	res, err := sel.Exec(core.I(1))
	if err != nil || len(res.Rows) != 1 || !res.Rows[0][0].Equal(core.S("one")) {
		t.Fatalf("post-DDL exec: %v %+v", err, res)
	}
	if got := f.PlanCacheStats().Invalidations; got == inv {
		t.Fatal("stale plan was served without invalidation after DDL")
	}
	// The recompiled plan is back in the cache: a text-level Exec of the
	// same SQL hits it (Stmt.Exec itself keeps running its revalidated
	// closure without further lookups).
	hits := f.PlanCacheStats().Hits
	if _, err := s.Exec("SELECT v FROM a WHERE id = ?", core.I(1)); err != nil {
		t.Fatal(err)
	}
	if got := f.PlanCacheStats().Hits; got != hits+1 {
		t.Fatalf("recompiled plan not re-cached (hits %d -> %d)", hits, got)
	}
}

// TestPlanCacheRegisterInvalidates checks that engine registration -- the
// other catalog mutation -- also stamps cached plans stale, so no plan's
// table-to-engine routing outlives the catalog it compiled against.
func TestPlanCacheRegisterInvalidates(t *testing.T) {
	f, _ := cacheFrontend(t)
	s := f.NewSession(0)
	if _, err := s.Exec("CREATE TABLE t (id INT, PRIMARY KEY(id))"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("INSERT INTO t VALUES (?)", core.I(1)); err != nil {
		t.Fatal(err)
	}
	gen := f.schemaGen.Load()
	_, e2 := cacheFrontend(t)
	f.Register("second", adapt.New(e2))
	if f.schemaGen.Load() == gen {
		t.Fatal("Register did not bump the schema generation")
	}
	if _, err := s.Exec("INSERT INTO t VALUES (?)", core.I(2)); err != nil {
		t.Fatalf("exec after Register: %v", err)
	}
}

// TestPlanCacheEviction bounds the cache: distinct SQL texts beyond the
// capacity evict LRU entries instead of growing without bound.
func TestPlanCacheEviction(t *testing.T) {
	f, _ := cacheFrontend(t)
	f.SetPlanCacheSize(8)
	s := f.NewSession(0)
	if _, err := s.Exec("CREATE TABLE t (id INT, v TEXT, PRIMARY KEY(id))"); err != nil {
		t.Fatal(err)
	}
	// Literal-heavy traffic: every text is a distinct cache key.
	for i := 0; i < 50; i++ {
		sql := fmt.Sprintf("INSERT INTO t VALUES (%d, 'v')", i)
		if _, err := s.Exec(sql); err != nil {
			t.Fatal(err)
		}
	}
	st := f.PlanCacheStats()
	if st.Size > 8 {
		t.Fatalf("cache size %d exceeds bound 8", st.Size)
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions recorded for 50 distinct texts in an 8-entry cache")
	}
}

// TestPlanCacheParamCount checks the arity error survives caching: hit or
// miss, a wrong argument count is ErrParamCount, and a correct call on the
// same text still works.
func TestPlanCacheParamCount(t *testing.T) {
	f, _ := cacheFrontend(t)
	s := f.NewSession(0)
	if _, err := s.Exec("CREATE TABLE t (id INT, v TEXT, PRIMARY KEY(id))"); err != nil {
		t.Fatal(err)
	}
	const ins = "INSERT INTO t VALUES (?, ?)"
	if _, err := s.Exec(ins, core.I(1)); !errors.Is(err, ErrParamCount) {
		t.Fatalf("want ErrParamCount, got %v", err)
	}
	if _, err := s.Exec(ins, core.I(1), core.S("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec(ins, core.I(2), core.S("y"), core.I(3)); !errors.Is(err, ErrParamCount) {
		t.Fatalf("want ErrParamCount on cached plan, got %v", err)
	}
	st, err := s.Prepare(ins)
	if err != nil {
		t.Fatal(err)
	}
	if st.NumParams() != 2 {
		t.Fatalf("NumParams = %d, want 2", st.NumParams())
	}
	if _, err := st.Exec(core.I(4)); !errors.Is(err, ErrParamCount) {
		t.Fatalf("want ErrParamCount from Stmt.Exec, got %v", err)
	}
}

// TestPlanCacheConcurrent hammers one text and DDL from many goroutines
// under -race: the cache must stay consistent and never serve a plan that
// fails on a table that exists.
func TestPlanCacheConcurrent(t *testing.T) {
	f, _ := cacheFrontend(t)
	s0 := f.NewSession(0)
	if _, err := s0.Exec("CREATE TABLE t (id INT, v TEXT, PRIMARY KEY(id))"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := f.NewSession(w)
			for i := 0; i < 200; i++ {
				k := int64(w)<<32 | int64(i)
				if _, err := s.Exec("INSERT INTO t VALUES (?, ?)", core.I(k), core.S("x")); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				if i%50 == 25 {
					// Concurrent DDL (unique per worker/iteration).
					sql := fmt.Sprintf("CREATE TABLE ddl_%d_%d (id INT, PRIMARY KEY(id))", w, i)
					if _, err := s.Exec(sql); err != nil {
						t.Errorf("worker %d ddl: %v", w, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}
