// Package sqlfront is HiEngine's SQL engine layer (Section 3.3): a
// MySQL-compatible-flavored SQL subset with two execution models.
//
// Interpreted execution re-runs the full stack -- lexer, parser, planner,
// plan interpretation -- on every statement, the way a classic SQL layer
// does. Compiled execution ("full-stack code generation") runs the stack
// once at Prepare time and emits a closure specialized to the statement:
// parameters are bound directly into pre-resolved table/index handles and
// pre-encoded row shapes, so per-execution work collapses to the storage
// engine calls. The Figure 5 interpreted-vs-compiled gap is exactly the
// difference between these two paths.
//
// Statement coverage: CREATE TABLE (with PRIMARY KEY, INDEX, UNIQUE INDEX
// and WITH ENGINE=<name> routing), INSERT, point/prefix SELECT, UPDATE and
// DELETE by key equality, BEGIN/COMMIT/ROLLBACK.
package sqlfront

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind classifies tokens.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokPunct // single characters: ( ) , = * ? ; .
	tokKeyword
)

type token struct {
	kind tokKind
	text string // keywords uppercased; identifiers as written
	pos  int
}

var keywords = map[string]bool{
	"CREATE": true, "TABLE": true, "PRIMARY": true, "KEY": true, "INDEX": true,
	"UNIQUE": true, "WITH": true, "ENGINE": true, "INSERT": true, "INTO": true,
	"VALUES": true, "SELECT": true, "FROM": true, "WHERE": true, "AND": true,
	"UPDATE": true, "SET": true, "DELETE": true, "BEGIN": true, "COMMIT": true,
	"ROLLBACK": true, "INT": true, "BIGINT": true, "FLOAT": true, "DOUBLE": true,
	"TEXT": true, "VARCHAR": true, "STRING": true, "BYTES": true, "LIMIT": true,
	"ORDER": true, "BY": true, "NULL": true,
}

// lex tokenizes the statement.
func lex(sql string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(sql) {
		c := sql[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '\'':
			j := i + 1
			var sb strings.Builder
			for j < len(sql) {
				if sql[j] == '\'' {
					if j+1 < len(sql) && sql[j+1] == '\'' {
						sb.WriteByte('\'')
						j += 2
						continue
					}
					break
				}
				sb.WriteByte(sql[j])
				j++
			}
			if j >= len(sql) {
				return nil, fmt.Errorf("sqlfront: unterminated string at %d", i)
			}
			toks = append(toks, token{kind: tokString, text: sb.String(), pos: i})
			i = j + 1
		case c >= '0' && c <= '9' || (c == '-' && i+1 < len(sql) && sql[i+1] >= '0' && sql[i+1] <= '9'):
			j := i + 1
			for j < len(sql) && (sql[j] >= '0' && sql[j] <= '9' || sql[j] == '.' || sql[j] == 'e' || sql[j] == 'E') {
				j++
			}
			toks = append(toks, token{kind: tokNumber, text: sql[i:j], pos: i})
			i = j
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i + 1
			for j < len(sql) && (unicode.IsLetter(rune(sql[j])) || unicode.IsDigit(rune(sql[j])) || sql[j] == '_') {
				j++
			}
			word := sql[i:j]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, token{kind: tokKeyword, text: up, pos: i})
			} else {
				toks = append(toks, token{kind: tokIdent, text: word, pos: i})
			}
			i = j
		case strings.IndexByte("(),=*?;.<>", c) >= 0:
			toks = append(toks, token{kind: tokPunct, text: string(c), pos: i})
			i++
		default:
			return nil, fmt.Errorf("sqlfront: unexpected character %q at %d", c, i)
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: len(sql)})
	return toks, nil
}
