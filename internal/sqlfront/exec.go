package sqlfront

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"hiengine/internal/core"
	"hiengine/internal/engineapi"
	"hiengine/internal/obs"
)

// Errors.
var (
	ErrNoTxn       = errors.New("sqlfront: no open transaction")
	ErrCrossEngine = errors.New("sqlfront: transaction cannot span storage engines")
	ErrBadPlan     = errors.New("sqlfront: no usable index for WHERE clause")
	ErrParamCount  = errors.New("sqlfront: wrong parameter count")
	ErrNoPrepare   = errors.New("sqlfront: engine does not support two-phase commit")
)

// Frontend is the shared SQL layer (Figure 3): one parser/planner in front
// of multiple registered storage engines. Tables are routed to engines by
// their CREATE TABLE ... WITH ENGINE=<name> clause (vertical deployment).
//
// The frontend owns the plan cache: parse/plan/compile for a SQL text is
// done once and shared by every session (Section 3.3 pays that cost at
// Prepare, never per call -- the cache extends the same economics to
// unprepared Exec traffic keyed by SQL text). Catalog DDL (CREATE TABLE,
// engine registration) bumps schemaGen; plans are stamped with the
// generation they compiled against and a mismatched plan is discarded on
// lookup, so a cached plan never outlives its schema or its
// table-to-engine routing.
type Frontend struct {
	mu            sync.RWMutex
	engines       map[string]engineapi.DB
	defaultEngine string
	tables        map[string]*tableInfo

	schemaGen atomic.Uint64
	plans     *planCache
}

type tableInfo struct {
	engine string
	db     engineapi.DB
	schema *core.Schema
}

// NewFrontend builds a frontend with a default engine.
func NewFrontend(defaultName string, db engineapi.DB) *Frontend {
	f := &Frontend{
		engines:       map[string]engineapi.DB{strings.ToLower(defaultName): db},
		defaultEngine: strings.ToLower(defaultName),
		tables:        make(map[string]*tableInfo),
		plans:         newPlanCache(DefaultPlanCacheSize),
	}
	return f
}

// SetPlanCacheSize rebounds the plan cache (entries, not bytes). Existing
// entries are dropped; intended for deployment setup, not steady state.
func (f *Frontend) SetPlanCacheSize(n int) {
	f.mu.Lock()
	f.plans = newPlanCache(n)
	f.mu.Unlock()
	f.schemaGen.Add(1) // stamp outstanding Stmts stale against the new cache
}

// Register adds another storage engine under a name usable in WITH ENGINE=.
// Registration is catalog DDL: it bumps the schema generation so no cached
// plan's engine routing outlives it.
func (f *Frontend) Register(name string, db engineapi.DB) {
	f.mu.Lock()
	f.engines[strings.ToLower(name)] = db
	f.mu.Unlock()
	f.schemaGen.Add(1)
}

// Adopt registers a table that already exists inside a storage engine --
// e.g. one recovered from a replica's shipped manifest -- so statements can
// resolve it without running CREATE TABLE (which would attempt a write).
// The engine must already be registered. Catalog DDL: bumps the schema
// generation.
func (f *Frontend) Adopt(engine string, schema *core.Schema) error {
	engine = strings.ToLower(engine)
	f.mu.Lock()
	defer f.mu.Unlock()
	db, ok := f.engines[engine]
	if !ok {
		return fmt.Errorf("sqlfront: unknown engine %q", engine)
	}
	if _, dup := f.tables[schema.Name]; dup {
		return fmt.Errorf("sqlfront: table %q exists", schema.Name)
	}
	f.tables[schema.Name] = &tableInfo{engine: engine, db: db, schema: schema}
	f.schemaGen.Add(1)
	return nil
}

// AdoptAll adopts every schema whose name is not yet in the catalog and
// skips the rest. A replica's catalog trails its replayed manifest --
// tables created on the primary after bootstrap exist in the engine but
// not the frontend -- so callers re-sync by passing the engine's full
// table list after each catch-up (and before serving writes on
// promotion). Returns the number of tables newly adopted; the schema
// generation is bumped only when that count is nonzero.
func (f *Frontend) AdoptAll(engine string, schemas []*core.Schema) (int, error) {
	engine = strings.ToLower(engine)
	f.mu.Lock()
	defer f.mu.Unlock()
	db, ok := f.engines[engine]
	if !ok {
		return 0, fmt.Errorf("sqlfront: unknown engine %q", engine)
	}
	added := 0
	for _, schema := range schemas {
		if _, dup := f.tables[schema.Name]; dup {
			continue
		}
		f.tables[schema.Name] = &tableInfo{engine: engine, db: db, schema: schema}
		added++
	}
	if added > 0 {
		f.schemaGen.Add(1)
	}
	return added, nil
}

// PlanCacheStats snapshots the plan-cache counters.
func (f *Frontend) PlanCacheStats() PlanCacheStats {
	f.mu.RLock()
	pc := f.plans
	f.mu.RUnlock()
	return PlanCacheStats{
		Size:          pc.size(),
		Hits:          pc.hits.Load(),
		Misses:        pc.misses.Load(),
		Evictions:     pc.evictions.Load(),
		Invalidations: pc.invalidations.Load(),
	}
}

// prepare resolves sql to a compiled plan: a cache hit returns the shared
// entry; a miss pays parse+plan+compile once and (for cacheable statement
// kinds) publishes the result. Compile errors are never cached -- a
// statement that fails because its table does not exist yet must
// re-resolve after CREATE TABLE. The generation is captured before
// compiling: if DDL races the compile, the entry is stamped with the older
// generation and discarded on its next lookup (a wasted recompile, never a
// stale execution).
func (f *Frontend) prepare(sql string) (*compiled, bool, error) {
	f.mu.RLock()
	pc := f.plans
	f.mu.RUnlock()
	gen := f.schemaGen.Load()
	if c := pc.get(sql, gen); c != nil {
		return c, true, nil
	}
	st, nParams, err := parse(sql)
	if err != nil {
		return nil, false, err
	}
	fn, err := f.compile(st)
	if err != nil {
		return nil, false, err
	}
	c := &compiled{nParams: nParams, gen: gen, fn: fn}
	if cacheable(st) {
		pc.put(sql, c)
	}
	return c, false, nil
}

// cacheable reports whether a statement kind belongs in the plan cache.
// DML and queries are the hot path; transaction verbs compile trivially
// and DDL runs once, so caching them would only dilute the LRU.
func cacheable(st stmt) bool {
	switch st.(type) {
	case *insertStmt, *selectStmt, *updateStmt, *deleteStmt:
		return true
	}
	return false
}

func (f *Frontend) tableInfo(name string) (*tableInfo, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	ti, ok := f.tables[name]
	if !ok {
		return nil, fmt.Errorf("sqlfront: unknown table %q", name)
	}
	return ti, nil
}

// Session is one client connection: it holds the open transaction and the
// worker slot it is bound to (the paper binds sessions to worker threads).
type Session struct {
	f      *Frontend
	worker int

	txn       engineapi.Txn
	txnEngine string

	// lastCSN is the session's read-your-writes token: the highest commit
	// sequence number this session has committed at (engines that report
	// one, see engineapi.CSNReporter). Atomic because pipelined commits
	// publish it from the WAL durability callback while the session is
	// already executing its next statement.
	lastCSN atomic.Uint64

	// tr, when non-nil, is the active request trace: Exec brackets the
	// plan-cache and execution stages against it, and transactions opened
	// while it is set carry it through the engine's commit pipeline.
	tr *obs.Trace
}

// LastCSN returns the session's read-your-writes token: the commit sequence
// number of its most recent write commit (0 before the first one).
func (s *Session) LastCSN() uint64 { return s.lastCSN.Load() }

// noteCSN records t's commit CSN as the session token (monotonic max).
func (s *Session) noteCSN(t engineapi.Txn) {
	r, ok := t.(engineapi.CSNReporter)
	if !ok {
		return
	}
	csn := r.CSN()
	if csn == 0 {
		return
	}
	for {
		cur := s.lastCSN.Load()
		if csn <= cur || s.lastCSN.CompareAndSwap(cur, csn) {
			return
		}
	}
}

// commitAuto finishes an auto-commit statement: commit, then record the
// session's read-your-writes token.
func (s *Session) commitAuto(tx engineapi.Txn) error {
	if err := tx.Commit(); err != nil {
		return err
	}
	s.noteCSN(tx)
	return nil
}

// SetTrace attaches (or with nil, detaches) the active request trace. An
// already-open engine transaction is retroactively tagged so a trace
// started mid-transaction still attributes its commit stages.
func (s *Session) SetTrace(tr *obs.Trace) {
	s.tr = tr
	if t, ok := s.txn.(engineapi.Traceable); ok && s.txn != nil {
		t.SetTrace(tr)
	}
}

// NewSession opens a session bound to a worker slot.
func (f *Frontend) NewSession(worker int) *Session {
	return &Session{f: f, worker: worker}
}

// SetWorker rebinds the session to a worker slot. The slot is captured
// when a transaction begins, so rebinding is only legal while no
// transaction is open; the network server leases a slot per transaction
// and rebinds the connection's session to the leased slot.
func (s *Session) SetWorker(worker int) {
	if !s.InTxn() {
		s.worker = worker
	}
}

// Result is a statement result.
type Result struct {
	Rows     []core.Row
	Columns  []string
	Affected int
}

// Exec runs sql through the frontend plan cache: first sight of a SQL text
// pays parse+plan+compile, every later execution (from any session) binds
// parameters straight into the cached closure.
func (s *Session) Exec(sql string, args ...core.Value) (*Result, error) {
	s.tr.Begin(obs.StagePlanCache)
	c, hit, err := s.f.prepare(sql)
	if s.tr != nil {
		s.tr.PlanCache(hit)
		s.tr.End(obs.StagePlanCache)
	}
	if err != nil {
		return nil, err
	}
	if c.nParams != len(args) {
		return nil, fmt.Errorf("%w: statement has %d, got %d", ErrParamCount, c.nParams, len(args))
	}
	s.tr.Begin(obs.StageExec)
	res, err := c.fn(s, args)
	s.tr.End(obs.StageExec)
	return res, err
}

// Stmt is a compiled statement handle: the parse/plan work is done once
// and the execution closure binds parameters straight into engine calls
// (full-stack code generation, Section 3.3). A Stmt is bound to its
// session and, like the session, is not safe for concurrent use.
type Stmt struct {
	s   *Session
	sql string
	c   *compiled
}

// Prepare compiles sql (through the shared plan cache).
func (s *Session) Prepare(sql string) (*Stmt, error) {
	s.tr.Begin(obs.StagePlanCache)
	c, hit, err := s.f.prepare(sql)
	if s.tr != nil {
		s.tr.PlanCache(hit)
		s.tr.End(obs.StagePlanCache)
	}
	if err != nil {
		return nil, err
	}
	return &Stmt{s: s, sql: sql, c: c}, nil
}

// NumParams reports the statement's parameter count.
func (st *Stmt) NumParams() int { return st.c.nParams }

// Exec runs the compiled statement. The plan revalidates its catalog
// generation first: if DDL ran since compile, the statement transparently
// recompiles (through the cache) rather than execute a plan that may
// capture stale table handles or routing.
func (st *Stmt) Exec(args ...core.Value) (*Result, error) {
	s := st.s
	s.tr.Begin(obs.StagePlanCache)
	if st.c.gen != s.f.schemaGen.Load() {
		c, hit, err := s.f.prepare(st.sql)
		if err != nil {
			s.tr.End(obs.StagePlanCache)
			return nil, err
		}
		s.tr.PlanCache(hit)
		st.c = c
	} else {
		// A valid prepared handle is the ultimate plan-cache hit.
		s.tr.PlanCache(true)
	}
	s.tr.End(obs.StagePlanCache)
	if len(args) != st.c.nParams {
		return nil, fmt.Errorf("%w: statement has %d, got %d", ErrParamCount, st.c.nParams, len(args))
	}
	s.tr.Begin(obs.StageExec)
	res, err := st.c.fn(s, args)
	s.tr.End(obs.StageExec)
	return res, err
}

// --- transaction handling --------------------------------------------------

// begin opens an explicit transaction lazily bound to the first engine used.
func (s *Session) begin() error {
	if s.txn != nil {
		return errors.New("sqlfront: transaction already open")
	}
	s.txn = nil
	// Engine binding is deferred to the first table access.
	s.txnEngine = "?pending"
	return nil
}

// txnFor returns the open transaction bound to ti's engine, opening an
// auto-commit transaction when none is open. Queries in one transaction
// cannot span engines (Section 3.4's current limitation).
func (s *Session) txnFor(ti *tableInfo) (engineapi.Txn, bool, error) {
	if s.txnEngine == "?pending" {
		t, err := ti.db.Begin(s.worker)
		if err != nil {
			return nil, false, err
		}
		s.attachTrace(t)
		s.txn = t
		s.txnEngine = ti.engine
		return t, false, nil
	}
	if s.txn != nil {
		if s.txnEngine != ti.engine {
			return nil, false, fmt.Errorf("%w: open on %q, statement targets %q",
				ErrCrossEngine, s.txnEngine, ti.engine)
		}
		return s.txn, false, nil
	}
	t, err := ti.db.Begin(s.worker)
	if err != nil {
		return nil, false, err
	}
	s.attachTrace(t)
	return t, true, nil
}

// attachTrace tags a freshly opened engine transaction with the session's
// active trace, when the engine supports it (engineapi.Traceable).
func (s *Session) attachTrace(t engineapi.Txn) {
	if s.tr == nil {
		return
	}
	if tt, ok := t.(engineapi.Traceable); ok {
		tt.SetTrace(s.tr)
	}
}

func (s *Session) commit() error {
	if s.txn == nil {
		if s.txnEngine == "?pending" { // BEGIN; COMMIT with no statements
			s.txnEngine = ""
			return nil
		}
		return ErrNoTxn
	}
	t := s.txn
	err := t.Commit()
	s.txn = nil
	s.txnEngine = ""
	if err == nil {
		s.noteCSN(t)
	}
	return err
}

// CommitAsync commits the open transaction through the engine's pipelined
// commit path when it has one (engineapi.AsyncCommitter): the transaction's
// effects are visible when this returns, the session is immediately free
// for the next statement, and done(err) fires once the commit is durable.
// It returns async=true exactly when done will be invoked later; on
// async=false the commit already finished (or failed to start) with err and
// done is never called. This is the session boundary the network server
// pipelines on: many connections' commits batch into one WAL group append
// while their sessions keep executing.
func (s *Session) CommitAsync(done func(error)) (async bool, err error) {
	if s.txn == nil {
		if s.txnEngine == "?pending" { // BEGIN; COMMIT with no statements
			s.txnEngine = ""
			return false, nil
		}
		return false, ErrNoTxn
	}
	t := s.txn
	s.txn = nil
	s.txnEngine = ""
	if ac, ok := t.(engineapi.AsyncCommitter); ok {
		wrapped := func(err error) {
			if err == nil {
				// Publish the token before done: the network server builds
				// its commit response (which carries the token) inside done.
				s.noteCSN(t)
			}
			done(err)
		}
		if err := ac.CommitAsync(wrapped); err != nil {
			return false, err
		}
		return true, nil
	}
	err = t.Commit()
	if err == nil {
		s.noteCSN(t)
	}
	return false, err
}

// PrepareTxn votes on the open transaction as a two-phase-commit
// participant under gtid (the wire protocol's OpTxnPrepare). On a nil
// return, done is guaranteed to fire -- possibly before PrepareTxn returns
// -- with the vote: readOnly=true is a "yes" vote that owes no decision
// (the transaction wrote nothing and committed locally); err != nil means
// the prepare record failed durability. A non-nil return is an immediate
// "no" vote (the transaction has been aborted) and done is never called.
// Either way the session is detached from the transaction when this
// returns -- a prepared participant is finished only by the engine's
// decision path, never by this session.
func (s *Session) PrepareTxn(gtid string, done func(readOnly bool, err error)) error {
	if s.txn == nil {
		if s.txnEngine == "?pending" { // BEGIN; PREPARE with no statements
			s.txnEngine = ""
			done(true, nil)
			return nil
		}
		return ErrNoTxn
	}
	t := s.txn
	s.txn = nil
	s.txnEngine = ""
	p, ok := t.(engineapi.Preparer)
	if !ok {
		t.Abort()
		return ErrNoPrepare
	}
	return p.PrepareAsync(gtid, done)
}

func (s *Session) rollback() error {
	if s.txn == nil {
		if s.txnEngine == "?pending" {
			s.txnEngine = ""
			return nil
		}
		return ErrNoTxn
	}
	err := s.txn.Abort()
	s.txn = nil
	s.txnEngine = ""
	return err
}

// Begin opens an explicit transaction (the wire protocol's OpBegin; SQL
// BEGIN reaches the same state through Exec).
func (s *Session) Begin() error { return s.begin() }

// Rollback aborts the open transaction (the wire protocol's OpAbort).
func (s *Session) Rollback() error { return s.rollback() }

// InTxn reports whether an explicit transaction is open.
func (s *Session) InTxn() bool { return s.txn != nil || s.txnEngine == "?pending" }

// opFailed cleans up after a failed statement: auto-commit transactions are
// aborted; explicit transactions that the engine already aborted (conflict
// or duplicate-key errors abort the whole transaction in every registered
// engine) are detached from the session so a subsequent ROLLBACK/COMMIT does
// not trip over a dead handle.
func (s *Session) opFailed(tx engineapi.Txn, auto bool, err error) {
	if auto {
		tx.Abort()
		return
	}
	if errors.Is(err, engineapi.ErrConflict) || errors.Is(err, engineapi.ErrDuplicate) {
		s.txn = nil
		s.txnEngine = ""
	}
}

// --- planning ----------------------------------------------------------------

// plan resolves a WHERE equality conjunction against the table's indexes:
// the chosen index is one whose column prefix is fully covered, preferring
// a full unique match (point lookup) over a prefix (scan).
type plan struct {
	idx      int
	prefix   []expr // values for the matched index-column prefix
	point    bool   // full unique key covered
	residual []cond // conditions checked row-by-row
}

func buildPlan(schema *core.Schema, where []cond) (plan, error) {
	if len(where) == 0 {
		return plan{idx: 0, prefix: nil, point: false}, nil
	}
	byCol := make(map[int]expr, len(where))
	used := make(map[int]bool)
	for _, c := range where {
		pos := schema.ColumnIndex(c.col)
		if pos < 0 {
			return plan{}, fmt.Errorf("sqlfront: unknown column %q in WHERE", c.col)
		}
		byCol[pos] = c.rhs
	}
	best := plan{idx: -1}
	for i, def := range schema.Indexes {
		var prefix []expr
		for _, colPos := range def.Columns {
			e, ok := byCol[colPos]
			if !ok {
				break
			}
			prefix = append(prefix, e)
		}
		if len(prefix) == 0 {
			continue
		}
		point := def.Unique && len(prefix) == len(def.Columns)
		better := best.idx < 0 ||
			(point && !best.point) ||
			(point == best.point && len(prefix) > len(best.prefix))
		if better {
			best = plan{idx: i, prefix: prefix, point: point}
			// Track which conditions the index absorbs.
			used = make(map[int]bool)
			for j := 0; j < len(prefix); j++ {
				used[def.Columns[j]] = true
			}
		}
	}
	if best.idx < 0 {
		return plan{}, fmt.Errorf("%w (columns: %v)", ErrBadPlan, where)
	}
	for _, c := range where {
		if !used[schema.ColumnIndex(c.col)] {
			best.residual = append(best.residual, c)
		}
	}
	return best, nil
}

func bind(e expr, args []core.Value) core.Value {
	if e.isParam {
		return args[e.param]
	}
	return e.val
}

func bindAll(es []expr, args []core.Value) []core.Value {
	out := make([]core.Value, len(es))
	for i, e := range es {
		out[i] = bind(e, args)
	}
	return out
}

func matchResidual(schema *core.Schema, row core.Row, residual []cond, args []core.Value) bool {
	for _, c := range residual {
		pos := schema.ColumnIndex(c.col)
		if pos < 0 || !row[pos].Equal(bind(c.rhs, args)) {
			return false
		}
	}
	return true
}

func project(schema *core.Schema, row core.Row, cols []string) (core.Row, error) {
	if cols == nil {
		return row, nil
	}
	out := make(core.Row, len(cols))
	for i, c := range cols {
		pos := schema.ColumnIndex(c)
		if pos < 0 {
			return nil, fmt.Errorf("sqlfront: unknown column %q", c)
		}
		out[i] = row[pos]
	}
	return out, nil
}

// --- execution ----------------------------------------------------------------

// compile lowers a statement to a session-free execution closure over
// pre-resolved handles: the closure receives the executing session at call
// time, which is what lets one compiled plan be shared by every session
// through the frontend plan cache.
func (f *Frontend) compile(st stmt) (func(*Session, []core.Value) (*Result, error), error) {
	switch st := st.(type) {
	case *txnStmt:
		verb := st.verb
		return func(s *Session, _ []core.Value) (*Result, error) {
			var err error
			switch verb {
			case "BEGIN":
				err = s.begin()
			case "COMMIT":
				err = s.commit()
			default:
				err = s.rollback()
			}
			return &Result{}, err
		}, nil

	case *createTableStmt:
		schema := st.schema
		engine := st.engine
		return func(_ *Session, _ []core.Value) (*Result, error) {
			f.mu.Lock()
			defer f.mu.Unlock()
			name := engine
			if name == "" {
				name = f.defaultEngine
			}
			db, ok := f.engines[name]
			if !ok {
				return nil, fmt.Errorf("sqlfront: unknown engine %q", name)
			}
			if _, dup := f.tables[schema.Name]; dup {
				return nil, fmt.Errorf("sqlfront: table %q exists", schema.Name)
			}
			if len(schema.Indexes) == 0 {
				return nil, fmt.Errorf("sqlfront: table %q needs a PRIMARY KEY", schema.Name)
			}
			if err := db.CreateTable(schema); err != nil {
				return nil, err
			}
			f.tables[schema.Name] = &tableInfo{engine: name, db: db, schema: schema}
			// Catalog DDL: stamp every cached plan stale. The bump happens
			// while the new table is already visible, so recompiles resolve
			// against the post-DDL catalog.
			f.schemaGen.Add(1)
			return &Result{}, nil
		}, nil

	case *insertStmt:
		ti, err := f.tableInfo(st.table)
		if err != nil {
			return nil, err
		}
		if len(st.vals) != len(ti.schema.Columns) {
			return nil, fmt.Errorf("sqlfront: INSERT arity %d != %d columns",
				len(st.vals), len(ti.schema.Columns))
		}
		vals := st.vals
		return func(s *Session, args []core.Value) (*Result, error) {
			tx, auto, err := s.txnFor(ti)
			if err != nil {
				return nil, err
			}
			if err := tx.Insert(ti.schema.Name, bindAll(vals, args)); err != nil {
				s.opFailed(tx, auto, err)
				return nil, err
			}
			if auto {
				if err := s.commitAuto(tx); err != nil {
					return nil, err
				}
			}
			return &Result{Affected: 1}, nil
		}, nil

	case *selectStmt:
		ti, err := f.tableInfo(st.table)
		if err != nil {
			return nil, err
		}
		pl, err := buildPlan(ti.schema, st.where)
		if err != nil {
			return nil, err
		}
		cols := st.cols
		limit := st.limit
		residual := pl.residual
		return func(s *Session, args []core.Value) (*Result, error) {
			tx, auto, err := s.txnFor(ti)
			if err != nil {
				return nil, err
			}
			res := &Result{Columns: cols}
			fail := func(err error) (*Result, error) {
				s.opFailed(tx, auto, err)
				return nil, err
			}
			// limit < 0 means no LIMIT clause; LIMIT 0 is a real limit and
			// must fetch nothing at all.
			switch {
			case limit == 0:
			case pl.point:
				row, err := tx.GetByKey(ti.schema.Name, pl.idx, bindAll(pl.prefix, args)...)
				if err != nil && !errors.Is(err, engineapi.ErrNotFound) {
					return fail(err)
				}
				if err == nil && matchResidual(ti.schema, row, residual, args) {
					pr, perr := project(ti.schema, row, cols)
					if perr != nil {
						return fail(perr)
					}
					res.Rows = append(res.Rows, pr)
				}
			default:
				err := tx.ScanPrefix(ti.schema.Name, pl.idx, bindAll(pl.prefix, args),
					func(row core.Row) bool {
						if !matchResidual(ti.schema, row, residual, args) {
							return true
						}
						pr, perr := project(ti.schema, row, cols)
						if perr != nil {
							err = perr
							return false
						}
						res.Rows = append(res.Rows, pr)
						return limit < 0 || len(res.Rows) < limit
					})
				if err != nil {
					return fail(err)
				}
			}
			if auto {
				if err := s.commitAuto(tx); err != nil {
					return nil, err
				}
			}
			return res, nil
		}, nil

	case *updateStmt:
		ti, err := f.tableInfo(st.table)
		if err != nil {
			return nil, err
		}
		pl, err := buildPlan(ti.schema, st.where)
		if err != nil {
			return nil, err
		}
		if !pl.point || pl.idx != 0 {
			return nil, fmt.Errorf("%w: UPDATE requires full primary key equality", ErrBadPlan)
		}
		setPos := make([]int, len(st.sets))
		for i, sc := range st.sets {
			pos := ti.schema.ColumnIndex(sc.col)
			if pos < 0 {
				return nil, fmt.Errorf("sqlfront: unknown column %q in SET", sc.col)
			}
			setPos[i] = pos
		}
		sets := st.sets
		residual := pl.residual
		return func(s *Session, args []core.Value) (*Result, error) {
			tx, auto, err := s.txnFor(ti)
			if err != nil {
				return nil, err
			}
			key := bindAll(pl.prefix, args)
			row, err := tx.GetByKey(ti.schema.Name, 0, key...)
			if err != nil {
				if errors.Is(err, engineapi.ErrNotFound) {
					if auto {
						tx.Abort()
					}
					return &Result{Affected: 0}, nil
				}
				s.opFailed(tx, auto, err)
				return nil, err
			}
			if !matchResidual(ti.schema, row, residual, args) {
				if auto {
					tx.Abort()
				}
				return &Result{Affected: 0}, nil
			}
			newRow := append(core.Row{}, row...)
			for i, sc := range sets {
				newRow[setPos[i]] = bind(sc.rhs, args)
			}
			if err := tx.UpdateByKey(ti.schema.Name, 0, key, newRow); err != nil {
				s.opFailed(tx, auto, err)
				return nil, err
			}
			if auto {
				if err := s.commitAuto(tx); err != nil {
					return nil, err
				}
			}
			return &Result{Affected: 1}, nil
		}, nil

	case *deleteStmt:
		ti, err := f.tableInfo(st.table)
		if err != nil {
			return nil, err
		}
		pl, err := buildPlan(ti.schema, st.where)
		if err != nil {
			return nil, err
		}
		if !pl.point || pl.idx != 0 {
			return nil, fmt.Errorf("%w: DELETE requires full primary key equality", ErrBadPlan)
		}
		return func(s *Session, args []core.Value) (*Result, error) {
			tx, auto, err := s.txnFor(ti)
			if err != nil {
				return nil, err
			}
			if err := tx.DeleteByKey(ti.schema.Name, bindAll(pl.prefix, args)...); err != nil {
				if errors.Is(err, engineapi.ErrNotFound) {
					if auto {
						tx.Abort()
					}
					return &Result{Affected: 0}, nil
				}
				s.opFailed(tx, auto, err)
				return nil, err
			}
			if auto {
				if err := s.commitAuto(tx); err != nil {
					return nil, err
				}
			}
			return &Result{Affected: 1}, nil
		}, nil

	default:
		return nil, fmt.Errorf("sqlfront: unhandled statement %T", st)
	}
}
