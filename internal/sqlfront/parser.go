package sqlfront

import (
	"fmt"
	"strconv"
	"strings"

	"hiengine/internal/core"
)

// Statement ASTs.

type stmt interface{ stmtNode() }

type createTableStmt struct {
	schema *core.Schema
	engine string // WITH ENGINE=...; empty = default
}

type insertStmt struct {
	table string
	vals  []expr // one per column
}

type selectStmt struct {
	table string
	cols  []string // nil = *
	where []cond
	limit int // -1 = no LIMIT clause; 0 is a real limit (zero rows)
}

type updateStmt struct {
	table string
	sets  []setClause
	where []cond
}

type deleteStmt struct {
	table string
	where []cond
}

type txnStmt struct{ verb string } // BEGIN / COMMIT / ROLLBACK

func (*createTableStmt) stmtNode() {}
func (*insertStmt) stmtNode()      {}
func (*selectStmt) stmtNode()      {}
func (*updateStmt) stmtNode()      {}
func (*deleteStmt) stmtNode()      {}
func (*txnStmt) stmtNode()         {}

// expr is a literal value or a parameter placeholder.
type expr struct {
	isParam bool
	param   int // ordinal among ?s
	val     core.Value
}

type cond struct {
	col string
	rhs expr
}

type setClause struct {
	col string
	rhs expr
}

// parser consumes tokens.
type parser struct {
	toks   []token
	pos    int
	params int
}

func parse(sql string) (stmt, int, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, 0, err
	}
	p := &parser{toks: toks}
	s, err := p.statement()
	if err != nil {
		return nil, 0, err
	}
	if !p.at(tokEOF, "") && !(p.at(tokPunct, ";") && p.toks[p.pos+1].kind == tokEOF) {
		return nil, 0, fmt.Errorf("sqlfront: trailing input at %d", p.cur().pos)
	}
	return s, p.params, nil
}

func (p *parser) cur() token { return p.toks[p.pos] }

func (p *parser) at(k tokKind, text string) bool {
	t := p.cur()
	return t.kind == k && (text == "" || t.text == text)
}

func (p *parser) accept(k tokKind, text string) bool {
	if p.at(k, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(k tokKind, text string) (token, error) {
	t := p.cur()
	if !p.at(k, text) {
		return t, fmt.Errorf("sqlfront: expected %q at %d, got %q", text, t.pos, t.text)
	}
	p.pos++
	return t, nil
}

func (p *parser) ident() (string, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return "", fmt.Errorf("sqlfront: expected identifier at %d, got %q", t.pos, t.text)
	}
	p.pos++
	return t.text, nil
}

func (p *parser) statement() (stmt, error) {
	switch {
	case p.accept(tokKeyword, "CREATE"):
		return p.createTable()
	case p.accept(tokKeyword, "INSERT"):
		return p.insert()
	case p.accept(tokKeyword, "SELECT"):
		return p.selectStmt()
	case p.accept(tokKeyword, "UPDATE"):
		return p.update()
	case p.accept(tokKeyword, "DELETE"):
		return p.deleteStmt()
	case p.accept(tokKeyword, "BEGIN"):
		return &txnStmt{verb: "BEGIN"}, nil
	case p.accept(tokKeyword, "COMMIT"):
		return &txnStmt{verb: "COMMIT"}, nil
	case p.accept(tokKeyword, "ROLLBACK"):
		return &txnStmt{verb: "ROLLBACK"}, nil
	default:
		return nil, fmt.Errorf("sqlfront: unsupported statement starting with %q", p.cur().text)
	}
}

func kindOfType(t string) (core.Kind, error) {
	switch t {
	case "INT", "BIGINT":
		return core.KindInt, nil
	case "FLOAT", "DOUBLE":
		return core.KindFloat, nil
	case "TEXT", "VARCHAR", "STRING":
		return core.KindString, nil
	case "BYTES":
		return core.KindBytes, nil
	default:
		return 0, fmt.Errorf("sqlfront: unknown type %q", t)
	}
}

func (p *parser) createTable() (stmt, error) {
	if _, err := p.expect(tokKeyword, "TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	s := &core.Schema{Name: name}
	for {
		switch {
		case p.accept(tokKeyword, "PRIMARY"):
			if _, err := p.expect(tokKeyword, "KEY"); err != nil {
				return nil, err
			}
			cols, err := p.columnList(s)
			if err != nil {
				return nil, err
			}
			s.Indexes = append([]core.IndexDef{{Name: "pk", Columns: cols, Unique: true}}, s.Indexes...)
		case p.accept(tokKeyword, "UNIQUE"):
			if _, err := p.expect(tokKeyword, "INDEX"); err != nil {
				return nil, err
			}
			ixName, err := p.ident()
			if err != nil {
				return nil, err
			}
			cols, err := p.columnList(s)
			if err != nil {
				return nil, err
			}
			s.Indexes = append(s.Indexes, core.IndexDef{Name: ixName, Columns: cols, Unique: true})
		case p.accept(tokKeyword, "INDEX"):
			ixName, err := p.ident()
			if err != nil {
				return nil, err
			}
			cols, err := p.columnList(s)
			if err != nil {
				return nil, err
			}
			s.Indexes = append(s.Indexes, core.IndexDef{Name: ixName, Columns: cols})
		default:
			colName, err := p.ident()
			if err != nil {
				return nil, err
			}
			t := p.cur()
			if t.kind != tokKeyword {
				return nil, fmt.Errorf("sqlfront: expected type at %d", t.pos)
			}
			p.pos++
			k, err := kindOfType(t.text)
			if err != nil {
				return nil, err
			}
			// Optional length suffix: VARCHAR(64).
			if p.accept(tokPunct, "(") {
				if _, err := p.expect(tokNumber, p.cur().text); err != nil {
					return nil, err
				}
				if _, err := p.expect(tokPunct, ")"); err != nil {
					return nil, err
				}
			}
			s.Columns = append(s.Columns, core.Column{Name: colName, Kind: k})
		}
		if p.accept(tokPunct, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	engine := ""
	if p.accept(tokKeyword, "WITH") {
		if _, err := p.expect(tokKeyword, "ENGINE"); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, "="); err != nil {
			return nil, err
		}
		engine, err = p.ident()
		if err != nil {
			return nil, err
		}
		engine = strings.ToLower(engine)
	}
	return &createTableStmt{schema: s, engine: engine}, nil
}

// columnList parses (a, b, c) and resolves positions against s.Columns.
func (p *parser) columnList(s *core.Schema) ([]int, error) {
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	var cols []int
	for {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		pos := s.ColumnIndex(name)
		if pos < 0 {
			return nil, fmt.Errorf("sqlfront: index references unknown column %q", name)
		}
		cols = append(cols, pos)
		if p.accept(tokPunct, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	return cols, nil
}

func (p *parser) expr() (expr, error) {
	t := p.cur()
	switch {
	case p.accept(tokPunct, "?"):
		e := expr{isParam: true, param: p.params}
		p.params++
		return e, nil
	case t.kind == tokNumber:
		p.pos++
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return expr{}, err
			}
			return expr{val: core.F(f)}, nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return expr{}, err
		}
		return expr{val: core.I(i)}, nil
	case t.kind == tokString:
		p.pos++
		return expr{val: core.S(t.text)}, nil
	case p.accept(tokKeyword, "NULL"):
		return expr{val: core.Null}, nil
	default:
		return expr{}, fmt.Errorf("sqlfront: expected value at %d, got %q", t.pos, t.text)
	}
}

func (p *parser) insert() (stmt, error) {
	if _, err := p.expect(tokKeyword, "INTO"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "VALUES"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	var vals []expr
	for {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		vals = append(vals, e)
		if p.accept(tokPunct, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	return &insertStmt{table: table, vals: vals}, nil
}

func (p *parser) whereClause() ([]cond, error) {
	if !p.accept(tokKeyword, "WHERE") {
		return nil, nil
	}
	var conds []cond
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, "="); err != nil {
			return nil, err
		}
		rhs, err := p.expr()
		if err != nil {
			return nil, err
		}
		conds = append(conds, cond{col: col, rhs: rhs})
		if p.accept(tokKeyword, "AND") {
			continue
		}
		break
	}
	return conds, nil
}

func (p *parser) selectStmt() (stmt, error) {
	s := &selectStmt{limit: -1}
	if p.accept(tokPunct, "*") {
		s.cols = nil
	} else {
		for {
			c, err := p.ident()
			if err != nil {
				return nil, err
			}
			s.cols = append(s.cols, c)
			if p.accept(tokPunct, ",") {
				continue
			}
			break
		}
	}
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	s.table = table
	s.where, err = p.whereClause()
	if err != nil {
		return nil, err
	}
	if p.accept(tokKeyword, "LIMIT") {
		t := p.cur()
		if t.kind != tokNumber {
			return nil, fmt.Errorf("sqlfront: LIMIT needs a number at %d", t.pos)
		}
		p.pos++
		n, err := strconv.Atoi(t.text)
		if err != nil {
			return nil, err
		}
		if n < 0 {
			return nil, fmt.Errorf("sqlfront: LIMIT must be non-negative at %d", t.pos)
		}
		s.limit = n
	}
	return s, nil
}

func (p *parser) update() (stmt, error) {
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "SET"); err != nil {
		return nil, err
	}
	u := &updateStmt{table: table}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, "="); err != nil {
			return nil, err
		}
		rhs, err := p.expr()
		if err != nil {
			return nil, err
		}
		u.sets = append(u.sets, setClause{col: col, rhs: rhs})
		if p.accept(tokPunct, ",") {
			continue
		}
		break
	}
	u.where, err = p.whereClause()
	if err != nil {
		return nil, err
	}
	return u, nil
}

func (p *parser) deleteStmt() (stmt, error) {
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	where, err := p.whereClause()
	if err != nil {
		return nil, err
	}
	return &deleteStmt{table: table, where: where}, nil
}
