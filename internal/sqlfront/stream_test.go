package sqlfront

import (
	"errors"
	"testing"

	"hiengine/internal/core"
)

func TestExecStreamBasic(t *testing.T) {
	f, _ := testFrontend(t)
	s := f.NewSession(0)
	mustExec(t, s, "CREATE TABLE st (a INT, b TEXT, PRIMARY KEY(a))")
	for i := int64(0); i < 100; i++ {
		mustExec(t, s, "INSERT INTO st VALUES (?, 'v')", core.I(i))
	}
	rs, err := s.ExecStream("SELECT a FROM st")
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		row, ok, err := rs.NextRow()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if got := row[0].Int(); got != int64(n) {
			t.Fatalf("row %d: got key %d", n, got)
		}
		n++
	}
	if n != 100 {
		t.Fatalf("streamed %d rows, want 100", n)
	}
	// NextRow after exhaustion stays terminal.
	if _, ok, err := rs.NextRow(); ok || err != nil {
		t.Fatalf("post-exhaustion NextRow: ok=%v err=%v", ok, err)
	}
	// Close after exhaustion is a no-op returning the terminal status.
	if err := rs.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestExecStreamPages(t *testing.T) {
	f, _ := testFrontend(t)
	s := f.NewSession(0)
	mustExec(t, s, "CREATE TABLE pg (a INT, PRIMARY KEY(a))")
	for i := int64(0); i < 25; i++ {
		mustExec(t, s, "INSERT INTO pg VALUES (?)", core.I(i))
	}
	rs, err := s.ExecStream("SELECT * FROM pg")
	if err != nil {
		t.Fatal(err)
	}
	total, pages := 0, 0
	for {
		page, done, err := rs.Next(10)
		if err != nil {
			t.Fatal(err)
		}
		total += len(page.Rows)
		pages++
		if len(page.Rows) > 10 {
			t.Fatalf("page of %d rows exceeds max 10", len(page.Rows))
		}
		if done {
			break
		}
	}
	if total != 25 {
		t.Fatalf("streamed %d rows, want 25", total)
	}
	if pages < 3 {
		t.Fatalf("expected >= 3 pages, got %d", pages)
	}
}

func TestExecStreamEarlyClose(t *testing.T) {
	f, _ := testFrontend(t)
	s := f.NewSession(0)
	mustExec(t, s, "CREATE TABLE ec (a INT, PRIMARY KEY(a))")
	for i := int64(0); i < 50; i++ {
		mustExec(t, s, "INSERT INTO ec VALUES (?)", core.I(i))
	}
	rs, err := s.ExecStream("SELECT * FROM ec")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := rs.NextRow(); !ok || err != nil {
		t.Fatalf("first row: ok=%v err=%v", ok, err)
	}
	if err := rs.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rs.Close(); err != nil {
		t.Fatal("second close:", err)
	}
	// The session is fully usable afterwards: the stream's transaction
	// unwound cleanly.
	res := mustExec(t, s, "SELECT * FROM ec WHERE a = 7")
	if len(res.Rows) != 1 {
		t.Fatalf("post-close select: %d rows", len(res.Rows))
	}
}

func TestExecStreamSnapshotIsolation(t *testing.T) {
	f, _ := testFrontend(t)
	s := f.NewSession(0)
	mustExec(t, s, "CREATE TABLE si (a INT, PRIMARY KEY(a))")
	for i := int64(0); i < 20; i++ {
		mustExec(t, s, "INSERT INTO si VALUES (?)", core.I(i))
	}
	rs, err := s.ExecStream("SELECT * FROM si")
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	// Writes committed after the open (by a different worker) must be
	// invisible to the pinned snapshot.
	w := f.NewSession(1)
	for i := int64(20); i < 40; i++ {
		mustExec(t, w, "INSERT INTO si VALUES (?)", core.I(i))
	}
	n := 0
	for {
		_, ok, err := rs.NextRow()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		n++
	}
	if n != 20 {
		t.Fatalf("snapshot saw %d rows, want the 20 committed before open", n)
	}
}

func TestExecStreamRefusals(t *testing.T) {
	f, _ := testFrontend(t)
	s := f.NewSession(0)
	mustExec(t, s, "CREATE TABLE rf (a INT, b INT, PRIMARY KEY(a))")

	// Only SELECT streams.
	if _, err := s.ExecStream("INSERT INTO rf VALUES (1, 2)"); !errors.Is(err, ErrNotStreamable) {
		t.Fatalf("insert stream: %v", err)
	}
	// Open errors surface at open, never mid-stream.
	if _, err := s.ExecStream("SELECT zz FROM rf"); err == nil {
		t.Fatal("unknown projected column accepted")
	}
	if _, err := s.ExecStream("SELECT * FROM ghost"); err == nil {
		t.Fatal("unknown table accepted")
	}
	if _, err := s.ExecStream("SELECT * FROM rf WHERE a = ?"); !errors.Is(err, ErrParamCount) {
		t.Fatalf("param count: %v", err)
	}
	// No streaming inside an explicit transaction.
	mustExec(t, s, "BEGIN")
	if _, err := s.ExecStream("SELECT * FROM rf"); err == nil {
		t.Fatal("stream inside txn accepted")
	}
	mustExec(t, s, "ROLLBACK")
}

func TestExecStreamLimit(t *testing.T) {
	f, _ := testFrontend(t)
	s := f.NewSession(0)
	mustExec(t, s, "CREATE TABLE sl (a INT, PRIMARY KEY(a))")
	for i := int64(0); i < 30; i++ {
		mustExec(t, s, "INSERT INTO sl VALUES (?)", core.I(i))
	}
	for _, tc := range []struct {
		sql  string
		want int
	}{
		{"SELECT * FROM sl LIMIT 0", 0},
		{"SELECT * FROM sl LIMIT 7", 7},
		{"SELECT * FROM sl", 30},
	} {
		rs, err := s.ExecStream(tc.sql)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for {
			_, ok, err := rs.NextRow()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			n++
		}
		if n != tc.want {
			t.Fatalf("%q streamed %d rows, want %d", tc.sql, n, tc.want)
		}
	}
}
