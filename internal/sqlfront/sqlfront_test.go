package sqlfront

import (
	"errors"
	"strings"
	"testing"

	"hiengine/internal/adapt"
	"hiengine/internal/baseline/innosim"
	"hiengine/internal/core"
	"hiengine/internal/srss"
)

func testFrontend(t *testing.T) (*Frontend, *core.Engine) {
	t.Helper()
	e, err := core.Open(core.Config{Workers: 16, SegmentSize: 1 << 22})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return NewFrontend("hiengine", adapt.New(e)), e
}

func mustExec(t *testing.T, s *Session, sql string, args ...core.Value) *Result {
	t.Helper()
	res, err := s.Exec(sql, args...)
	if err != nil {
		t.Fatalf("exec %q: %v", sql, err)
	}
	return res
}

func TestCreateInsertSelect(t *testing.T) {
	f, _ := testFrontend(t)
	s := f.NewSession(0)
	mustExec(t, s, "CREATE TABLE users (id INT, name TEXT, age INT, PRIMARY KEY(id), INDEX by_name (name))")
	mustExec(t, s, "INSERT INTO users VALUES (1, 'ada', 36)")
	mustExec(t, s, "INSERT INTO users VALUES (2, 'bob', 25)")
	res := mustExec(t, s, "SELECT * FROM users WHERE id = 1")
	if len(res.Rows) != 1 || res.Rows[0][1].Str() != "ada" {
		t.Fatalf("select: %+v", res.Rows)
	}
	// Projection.
	res = mustExec(t, s, "SELECT name FROM users WHERE id = 2")
	if len(res.Rows) != 1 || len(res.Rows[0]) != 1 || res.Rows[0][0].Str() != "bob" {
		t.Fatalf("projection: %+v", res.Rows)
	}
	// Secondary index scan.
	res = mustExec(t, s, "SELECT id FROM users WHERE name = 'ada'")
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 1 {
		t.Fatalf("secondary: %+v", res.Rows)
	}
	// Full scan.
	res = mustExec(t, s, "SELECT * FROM users")
	if len(res.Rows) != 2 {
		t.Fatalf("full scan: %d rows", len(res.Rows))
	}
	// Miss.
	res = mustExec(t, s, "SELECT * FROM users WHERE id = 99")
	if len(res.Rows) != 0 {
		t.Fatalf("miss returned rows: %+v", res.Rows)
	}
}

func TestUpdateDelete(t *testing.T) {
	f, _ := testFrontend(t)
	s := f.NewSession(0)
	mustExec(t, s, "CREATE TABLE kv (k INT, v TEXT, PRIMARY KEY(k))")
	mustExec(t, s, "INSERT INTO kv VALUES (1, 'one')")
	res := mustExec(t, s, "UPDATE kv SET v = 'uno' WHERE k = 1")
	if res.Affected != 1 {
		t.Fatalf("update affected %d", res.Affected)
	}
	res = mustExec(t, s, "SELECT v FROM kv WHERE k = 1")
	if res.Rows[0][0].Str() != "uno" {
		t.Fatalf("update lost: %+v", res.Rows)
	}
	res = mustExec(t, s, "UPDATE kv SET v = 'x' WHERE k = 9")
	if res.Affected != 0 {
		t.Fatal("phantom update")
	}
	res = mustExec(t, s, "DELETE FROM kv WHERE k = 1")
	if res.Affected != 1 {
		t.Fatalf("delete affected %d", res.Affected)
	}
	res = mustExec(t, s, "SELECT * FROM kv WHERE k = 1")
	if len(res.Rows) != 0 {
		t.Fatal("delete lost")
	}
}

func TestParameters(t *testing.T) {
	f, _ := testFrontend(t)
	s := f.NewSession(0)
	mustExec(t, s, "CREATE TABLE p (a INT, b TEXT, PRIMARY KEY(a))")
	mustExec(t, s, "INSERT INTO p VALUES (?, ?)", core.I(5), core.S("five"))
	res := mustExec(t, s, "SELECT b FROM p WHERE a = ?", core.I(5))
	if res.Rows[0][0].Str() != "five" {
		t.Fatalf("param select: %+v", res.Rows)
	}
	if _, err := s.Exec("SELECT * FROM p WHERE a = ?"); !errors.Is(err, ErrParamCount) {
		t.Fatalf("param count: %v", err)
	}
}

func TestPreparedStatements(t *testing.T) {
	f, _ := testFrontend(t)
	s := f.NewSession(0)
	mustExec(t, s, "CREATE TABLE c (a INT, b INT, PRIMARY KEY(a))")
	ins, err := s.Prepare("INSERT INTO c VALUES (?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	sel, err := s.Prepare("SELECT b FROM c WHERE a = ?")
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 100; i++ {
		if _, err := ins.Exec(core.I(i), core.I(i*2)); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < 100; i += 13 {
		res, err := sel.Exec(core.I(i))
		if err != nil || len(res.Rows) != 1 || res.Rows[0][0].Int() != i*2 {
			t.Fatalf("compiled select %d: %+v %v", i, res, err)
		}
	}
}

func TestExplicitTransactions(t *testing.T) {
	f, _ := testFrontend(t)
	s := f.NewSession(0)
	mustExec(t, s, "CREATE TABLE t (a INT, b INT, PRIMARY KEY(a))")
	mustExec(t, s, "BEGIN")
	mustExec(t, s, "INSERT INTO t VALUES (1, 10)")
	mustExec(t, s, "INSERT INTO t VALUES (2, 20)")
	if !s.InTxn() {
		t.Fatal("not in txn")
	}
	mustExec(t, s, "ROLLBACK")
	res := mustExec(t, s, "SELECT * FROM t")
	if len(res.Rows) != 0 {
		t.Fatal("rollback leaked rows")
	}
	mustExec(t, s, "BEGIN")
	mustExec(t, s, "INSERT INTO t VALUES (3, 30)")
	mustExec(t, s, "COMMIT")
	res = mustExec(t, s, "SELECT * FROM t")
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 3 {
		t.Fatalf("commit: %+v", res.Rows)
	}
	if _, err := s.Exec("COMMIT"); !errors.Is(err, ErrNoTxn) {
		t.Fatalf("commit without begin: %v", err)
	}
}

func TestMultiEngineRoutingAndCrossEngineRejection(t *testing.T) {
	f, _ := testFrontend(t)
	inno, err := innosim.New(innosim.Config{Service: srss.New(srss.Config{}), SegmentSize: 1 << 22})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(inno.Close)
	f.Register("innodb", inno)

	s := f.NewSession(0)
	mustExec(t, s, "CREATE TABLE fast (a INT, b TEXT, PRIMARY KEY(a)) WITH ENGINE=hiengine")
	mustExec(t, s, "CREATE TABLE slow (a INT, b TEXT, PRIMARY KEY(a)) WITH ENGINE=innodb")
	mustExec(t, s, "INSERT INTO fast VALUES (1, 'hi')")
	mustExec(t, s, "INSERT INTO slow VALUES (1, 'inno')")
	r1 := mustExec(t, s, "SELECT b FROM fast WHERE a = 1")
	r2 := mustExec(t, s, "SELECT b FROM slow WHERE a = 1")
	if r1.Rows[0][0].Str() != "hi" || r2.Rows[0][0].Str() != "inno" {
		t.Fatalf("routing: %v %v", r1.Rows, r2.Rows)
	}
	// A transaction may not span engines (Section 3.4).
	mustExec(t, s, "BEGIN")
	mustExec(t, s, "INSERT INTO fast VALUES (2, 'x')")
	if _, err := s.Exec("INSERT INTO slow VALUES (2, 'y')"); !errors.Is(err, ErrCrossEngine) {
		t.Fatalf("cross-engine: %v", err)
	}
	mustExec(t, s, "ROLLBACK")
}

func TestPlannerErrors(t *testing.T) {
	f, _ := testFrontend(t)
	s := f.NewSession(0)
	mustExec(t, s, "CREATE TABLE t (a INT, b INT, c INT, PRIMARY KEY(a, b))")
	// UPDATE needs the full primary key.
	if _, err := s.Exec("UPDATE t SET c = 1 WHERE a = 1"); !errors.Is(err, ErrBadPlan) {
		t.Fatalf("partial-pk update: %v", err)
	}
	// WHERE on an unindexed column.
	if _, err := s.Exec("SELECT * FROM t WHERE c = 3"); !errors.Is(err, ErrBadPlan) {
		t.Fatalf("unindexed where: %v", err)
	}
	// Unknown table/column.
	if _, err := s.Exec("SELECT * FROM ghost"); err == nil {
		t.Fatal("unknown table accepted")
	}
	if _, err := s.Exec("SELECT * FROM t WHERE zz = 1"); err == nil {
		t.Fatal("unknown column accepted")
	}
}

func TestCompositeKeyAndResidualFilter(t *testing.T) {
	f, _ := testFrontend(t)
	s := f.NewSession(0)
	mustExec(t, s, "CREATE TABLE o (w INT, d INT, o INT, v TEXT, PRIMARY KEY(w, d, o))")
	for w := int64(1); w <= 2; w++ {
		for d := int64(1); d <= 3; d++ {
			for o := int64(1); o <= 4; o++ {
				mustExec(t, s, "INSERT INTO o VALUES (?, ?, ?, 'r')", core.I(w), core.I(d), core.I(o))
			}
		}
	}
	// Prefix scan on (w, d).
	res := mustExec(t, s, "SELECT o FROM o WHERE w = 1 AND d = 2")
	if len(res.Rows) != 4 {
		t.Fatalf("prefix scan: %d rows", len(res.Rows))
	}
	// Point on full key.
	res = mustExec(t, s, "SELECT v FROM o WHERE w = 2 AND d = 3 AND o = 4")
	if len(res.Rows) != 1 {
		t.Fatalf("point: %d rows", len(res.Rows))
	}
	// Residual filter: o = 2 is not a contiguous prefix with (w) only...
	// w = 1 AND o = 2 uses prefix (w) and filters o per row.
	res = mustExec(t, s, "SELECT d FROM o WHERE w = 1 AND o = 2")
	if len(res.Rows) != 3 {
		t.Fatalf("residual filter: %d rows", len(res.Rows))
	}
	// LIMIT.
	res = mustExec(t, s, "SELECT * FROM o WHERE w = 1 LIMIT 5")
	if len(res.Rows) != 5 {
		t.Fatalf("limit: %d rows", len(res.Rows))
	}
}

func TestLimitZeroAndNegative(t *testing.T) {
	f, _ := testFrontend(t)
	s := f.NewSession(0)
	mustExec(t, s, "CREATE TABLE lim (a INT, PRIMARY KEY(a))")
	for i := int64(1); i <= 10; i++ {
		mustExec(t, s, "INSERT INTO lim VALUES (?)", core.I(i))
	}
	// LIMIT 0 is a real limit, not "unlimited": zero rows, regardless of
	// plan shape (scan or point).
	res := mustExec(t, s, "SELECT * FROM lim LIMIT 0")
	if len(res.Rows) != 0 {
		t.Fatalf("LIMIT 0 returned %d rows", len(res.Rows))
	}
	res = mustExec(t, s, "SELECT * FROM lim WHERE a = 3 LIMIT 0")
	if len(res.Rows) != 0 {
		t.Fatalf("point LIMIT 0 returned %d rows", len(res.Rows))
	}
	// Positive limits still bound.
	res = mustExec(t, s, "SELECT * FROM lim LIMIT 5")
	if len(res.Rows) != 5 {
		t.Fatalf("LIMIT 5 returned %d rows", len(res.Rows))
	}
	// No LIMIT clause is unbounded.
	res = mustExec(t, s, "SELECT * FROM lim")
	if len(res.Rows) != 10 {
		t.Fatalf("unlimited returned %d rows", len(res.Rows))
	}
	// Negative limits are a parse error, not a silent "unlimited".
	if _, err := s.Exec("SELECT * FROM lim LIMIT -1"); err == nil ||
		!strings.Contains(err.Error(), "LIMIT must be non-negative") {
		t.Fatalf("negative limit: %v", err)
	}
}

func TestLexerEdgeCases(t *testing.T) {
	f, _ := testFrontend(t)
	s := f.NewSession(0)
	mustExec(t, s, "CREATE TABLE e (a INT, b TEXT, PRIMARY KEY(a))")
	// Escaped quote and negative number.
	mustExec(t, s, "INSERT INTO e VALUES (-5, 'it''s')")
	res := mustExec(t, s, "SELECT b FROM e WHERE a = -5")
	if res.Rows[0][0].Str() != "it's" {
		t.Fatalf("escape: %q", res.Rows[0][0].Str())
	}
	// Float literal.
	mustExec(t, s, "CREATE TABLE fl (a INT, x FLOAT, PRIMARY KEY(a))")
	mustExec(t, s, "INSERT INTO fl VALUES (1, 3.25)")
	res = mustExec(t, s, "SELECT x FROM fl WHERE a = 1")
	if res.Rows[0][0].Float() != 3.25 {
		t.Fatalf("float: %v", res.Rows[0][0])
	}
	// Garbage.
	if _, err := s.Exec("SELEKT things"); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := s.Exec("INSERT INTO e VALUES (1, 'unterminated"); err == nil {
		t.Fatal("unterminated string accepted")
	}
}

func TestInterpretedVsCompiledSameResults(t *testing.T) {
	f, _ := testFrontend(t)
	s := f.NewSession(0)
	mustExec(t, s, "CREATE TABLE cmp (a INT, b INT, PRIMARY KEY(a))")
	for i := int64(0); i < 50; i++ {
		mustExec(t, s, "INSERT INTO cmp VALUES (?, ?)", core.I(i), core.I(i*i))
	}
	stmt, err := s.Prepare("SELECT b FROM cmp WHERE a = ?")
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 50; i++ {
		interp := mustExec(t, s, "SELECT b FROM cmp WHERE a = ?", core.I(i))
		comp, err := stmt.Exec(core.I(i))
		if err != nil {
			t.Fatal(err)
		}
		if len(interp.Rows) != 1 || len(comp.Rows) != 1 ||
			interp.Rows[0][0].Int() != comp.Rows[0][0].Int() {
			t.Fatalf("divergence at %d: %v vs %v", i, interp.Rows, comp.Rows)
		}
	}
}

func TestAdoptAllSyncsTrailingCatalog(t *testing.T) {
	f, e := testFrontend(t)
	s := f.NewSession(0)
	mustExec(t, s, "CREATE TABLE seen (a INT, PRIMARY KEY(a))")

	// A second frontend over the same engine plays the primary whose DDL
	// replays into the engine behind this frontend's back (the replica
	// situation: the engine catalog advances, the frontend's does not).
	other := NewFrontend("hiengine", adapt.New(e))
	if _, err := other.AdoptAll("hiengine", nil); err != nil {
		t.Fatal(err)
	}
	mustExec(t, other.NewSession(1), "CREATE TABLE unseen (a INT, b TEXT, PRIMARY KEY(a))")
	mustExec(t, other.NewSession(1), "INSERT INTO unseen VALUES (7, 'x')")

	if _, err := s.Exec("SELECT * FROM unseen"); err == nil {
		t.Fatal("frontend resolved a table it never adopted")
	}

	var schemas []*core.Schema
	for _, name := range e.Tables() {
		tbl, err := e.Table(name)
		if err != nil {
			t.Fatal(err)
		}
		schemas = append(schemas, tbl.Schema)
	}
	added, err := f.AdoptAll("hiengine", schemas)
	if err != nil {
		t.Fatal(err)
	}
	if added != 1 {
		t.Fatalf("added = %d, want 1 (only the unseen table)", added)
	}
	res := mustExec(t, s, "SELECT b FROM unseen WHERE a = 7")
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "x" {
		t.Fatalf("post-adopt select: %+v", res.Rows)
	}

	// Idempotent: a second sync adopts nothing.
	if added, err = f.AdoptAll("hiengine", schemas); err != nil || added != 0 {
		t.Fatalf("resync: added=%d err=%v, want 0,nil", added, err)
	}
	if _, err := f.AdoptAll("bogus", schemas); err == nil {
		t.Fatal("unknown engine accepted")
	}
}
