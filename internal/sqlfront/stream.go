package sqlfront

import (
	"errors"
	"fmt"

	"hiengine/internal/core"
	"hiengine/internal/engineapi"
)

// ErrNotStreamable marks statements that cannot run through ExecStream:
// only SELECT produces a row stream.
var ErrNotStreamable = errors.New("sqlfront: only SELECT can stream")

// RowStream is a resumable scan: a SELECT executing against one pinned
// MVCC snapshot, handing rows out in demand-driven, bounded pages instead
// of materializing the full result (the server's cursor protocol sits
// directly on top of it). The scan runs in a producer goroutine parked
// inside the engine's ScanPrefix; each NextRow/Next call releases exactly
// as many rows as it asks for, so peak buffering is one row beyond the
// caller's page. The producer owns the stream's dedicated read transaction
// end to end -- it opens under the session's worker slot in ExecStream and
// is finished (committed on clean exhaustion or early Close, aborted on
// error; for a read-only snapshot the two are equivalent) only by the
// producer itself, which keeps the engine transaction single-goroutine.
//
// A RowStream is not safe for concurrent use, matching Session. Callers
// must either drain it to exhaustion or Close it; an abandoned stream pins
// its snapshot and its producer goroutine forever.
type RowStream struct {
	// Columns is the projected column list (nil for SELECT *), known at
	// open so every page can carry it.
	Columns []string

	rows chan core.Row
	stop chan struct{}
	done chan error // buffered 1: the producer's terminal status

	stopped  bool
	finished bool
	err      error
}

// ExecStream opens a streaming SELECT: parse and plan run eagerly (errors
// surface here, never mid-stream), a dedicated read transaction pins the
// MVCC snapshot, and the returned stream yields rows from that snapshot
// regardless of concurrent writers. Streaming inside an explicit
// transaction is refused: the stream's snapshot would not see the
// transaction's own writes, which is a silent-surprise semantic.
func (s *Session) ExecStream(sql string, args ...core.Value) (*RowStream, error) {
	if s.InTxn() {
		return nil, errors.New("sqlfront: cannot stream inside an explicit transaction")
	}
	st, nParams, err := parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*selectStmt)
	if !ok {
		return nil, ErrNotStreamable
	}
	if nParams != len(args) {
		return nil, fmt.Errorf("%w: statement has %d, got %d", ErrParamCount, nParams, len(args))
	}
	ti, err := s.f.tableInfo(sel.table)
	if err != nil {
		return nil, err
	}
	pl, err := buildPlan(ti.schema, sel.where)
	if err != nil {
		return nil, err
	}
	// Validate the projection eagerly: a bad column name must fail the open,
	// not the Nth page.
	if _, err := project(ti.schema, make(core.Row, len(ti.schema.Columns)), sel.cols); err != nil {
		return nil, err
	}
	tx, err := ti.db.Begin(s.worker)
	if err != nil {
		return nil, err
	}
	rs := &RowStream{
		Columns: sel.cols,
		rows:    make(chan core.Row),
		stop:    make(chan struct{}),
		done:    make(chan error, 1),
	}
	cols, limit, residual := sel.cols, sel.limit, pl.residual
	schema := ti.schema
	go func() {
		var terr error
		sent := 0
		deliver := func(row core.Row) bool {
			if !matchResidual(schema, row, residual, args) {
				return true
			}
			pr, perr := project(schema, row, cols)
			if perr != nil {
				terr = perr
				return false
			}
			select {
			case rs.rows <- pr:
				sent++
				return limit < 0 || sent < limit
			case <-rs.stop:
				return false
			}
		}
		switch {
		case limit == 0:
			// LIMIT 0: a real limit -- fetch nothing.
		case pl.point:
			row, gerr := tx.GetByKey(schema.Name, pl.idx, bindAll(pl.prefix, args)...)
			if gerr != nil && !errors.Is(gerr, engineapi.ErrNotFound) {
				terr = gerr
			} else if gerr == nil {
				deliver(row)
			}
		default:
			serr := tx.ScanPrefix(schema.Name, pl.idx, bindAll(pl.prefix, args), deliver)
			if terr == nil {
				terr = serr
			}
		}
		if terr != nil {
			tx.Abort()
		} else if cerr := tx.Commit(); cerr != nil {
			terr = cerr
		} else {
			s.noteCSN(tx)
		}
		close(rs.rows)
		rs.done <- terr
	}()
	return rs, nil
}

// NextRow returns the next row. ok=false means the stream is finished: err
// then carries the terminal status (nil on clean exhaustion; the scan or
// its read-only commit error otherwise). After ok=false the stream is
// closed and needs no Close.
func (rs *RowStream) NextRow() (row core.Row, ok bool, err error) {
	if rs.finished {
		return nil, false, rs.err
	}
	row, ok = <-rs.rows
	if !ok {
		rs.finished = true
		rs.err = <-rs.done
		return nil, false, rs.err
	}
	return row, true, nil
}

// Next collects the next bounded page of at most max rows (max <= 0 is
// treated as 1). done=true means the stream is exhausted -- the returned
// page (possibly empty) is the last one and err carries the terminal
// status.
func (rs *RowStream) Next(max int) (page *Result, done bool, err error) {
	if max <= 0 {
		max = 1
	}
	page = &Result{Columns: rs.Columns}
	for len(page.Rows) < max {
		row, ok, rerr := rs.NextRow()
		if !ok {
			return page, true, rerr
		}
		page.Rows = append(page.Rows, row)
	}
	return page, false, nil
}

// Close abandons the stream early: the producer unwinds out of the scan,
// the pinned transaction is finished, and the terminal status is returned.
// Idempotent; a stream already drained to exhaustion returns its terminal
// error unchanged.
func (rs *RowStream) Close() error {
	if rs.finished {
		return rs.err
	}
	if !rs.stopped {
		rs.stopped = true
		close(rs.stop)
	}
	for range rs.rows {
		// Drain whatever the producer had in flight so it can unwind.
	}
	rs.finished = true
	rs.err = <-rs.done
	return rs.err
}
