package adapt

import (
	"errors"
	"testing"

	"hiengine/internal/core"
	"hiengine/internal/engineapi"
)

func testDB(t *testing.T) *DB {
	t.Helper()
	e, err := core.Open(core.Config{Workers: 8, SegmentSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	db := New(e)
	if err := db.CreateTable(&core.Schema{
		Name: "t",
		Columns: []core.Column{
			{Name: "id", Kind: core.KindInt},
			{Name: "grp", Kind: core.KindInt},
			{Name: "v", Kind: core.KindString},
		},
		Indexes: []core.IndexDef{
			{Name: "pk", Columns: []int{0}, Unique: true},
			{Name: "by_grp", Columns: []int{1}},
		},
	}); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestAdapterCRUDAndErrorMapping(t *testing.T) {
	db := testDB(t)
	tx, err := db.Begin(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert("t", core.Row{core.I(1), core.I(10), core.S("a")}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// Duplicate maps to engineapi.ErrDuplicate.
	tx2, _ := db.Begin(0)
	if err := tx2.Insert("t", core.Row{core.I(1), core.I(1), core.S("dup")}); !errors.Is(err, engineapi.ErrDuplicate) {
		t.Fatalf("duplicate mapping: %v", err)
	}

	// Missing row maps to engineapi.ErrNotFound.
	tx3, _ := db.Begin(0)
	if _, err := tx3.GetByKey("t", 0, core.I(99)); !errors.Is(err, engineapi.ErrNotFound) {
		t.Fatalf("not-found mapping: %v", err)
	}

	// Conflict maps to engineapi.ErrConflict.
	t4, _ := db.Begin(1)
	t5, _ := db.Begin(2)
	if err := t4.UpdateByKey("t", 0, []core.Value{core.I(1)}, core.Row{core.I(1), core.I(11), core.S("b")}); err != nil {
		t.Fatal(err)
	}
	if err := t5.UpdateByKey("t", 0, []core.Value{core.I(1)}, core.Row{core.I(1), core.I(12), core.S("c")}); !errors.Is(err, engineapi.ErrConflict) {
		t.Fatalf("conflict mapping: %v", err)
	}
	if err := t4.Commit(); err != nil {
		t.Fatal(err)
	}
	tx3.Commit()

	// Scan through the adapter.
	t6, _ := db.Begin(0)
	n := 0
	if err := t6.ScanPrefix("t", 1, []core.Value{core.I(11)}, func(row core.Row) bool {
		if row[0].Int() != 1 {
			t.Fatalf("scan row: %v", row)
		}
		n++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("scan matched %d", n)
	}
	// Delete through the adapter.
	if err := t6.DeleteByKey("t", core.I(1)); err != nil {
		t.Fatal(err)
	}
	if err := t6.Commit(); err != nil {
		t.Fatal(err)
	}
	t7, _ := db.Begin(0)
	if _, err := t7.GetByKey("t", 0, core.I(1)); !errors.Is(err, engineapi.ErrNotFound) {
		t.Fatalf("delete through adapter: %v", err)
	}
	t7.Commit()
}

func TestAdapterMemoDoesNotGoStale(t *testing.T) {
	// The RID memo must not leak across keys: Get key A then update key B.
	db := testDB(t)
	tx, _ := db.Begin(0)
	tx.Insert("t", core.Row{core.I(1), core.I(1), core.S("a")})
	tx.Insert("t", core.Row{core.I(2), core.I(2), core.S("b")})
	tx.Commit()

	tx2, _ := db.Begin(0)
	if _, err := tx2.GetByKey("t", 0, core.I(1)); err != nil {
		t.Fatal(err)
	}
	if err := tx2.UpdateByKey("t", 0, []core.Value{core.I(2)}, core.Row{core.I(2), core.I(2), core.S("b2")}); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	tx3, _ := db.Begin(0)
	rowA, _ := tx3.GetByKey("t", 0, core.I(1))
	rowB, _ := tx3.GetByKey("t", 0, core.I(2))
	if rowA[2].Str() != "a" || rowB[2].Str() != "b2" {
		t.Fatalf("memo corruption: a=%v b=%v", rowA, rowB)
	}
	tx3.Commit()
}

func TestAdapterAsyncCommit(t *testing.T) {
	db := testDB(t)
	tx, _ := db.Begin(0)
	if err := tx.Insert("t", core.Row{core.I(7), core.I(7), core.S("async")}); err != nil {
		t.Fatal(err)
	}
	ac, ok := tx.(engineapi.AsyncCommitter)
	if !ok {
		t.Fatal("adapter transactions must support async commit")
	}
	done := make(chan error, 1)
	if err := ac.CommitAsync(func(err error) { done <- err }); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	tx2, _ := db.Begin(0)
	if _, err := tx2.GetByKey("t", 0, core.I(7)); err != nil {
		t.Fatalf("async-committed row missing: %v", err)
	}
	tx2.Commit()
}
