// Package adapt bridges the HiEngine core engine onto the engine-neutral
// engineapi interface used by the workload drivers, translating RID-centric
// core operations into the key-centric call shapes of the benchmarks and
// mapping core errors onto the canonical engineapi categories.
package adapt

import (
	"errors"
	"fmt"
	"sync"

	"hiengine/internal/core"
	"hiengine/internal/engineapi"
	"hiengine/internal/obs"
)

// DB wraps a core.Engine as an engineapi.DB.
type DB struct {
	e *core.Engine

	mu     sync.RWMutex
	tables map[string]*core.Table
}

// New wraps an engine.
func New(e *core.Engine) *DB {
	return &DB{e: e, tables: make(map[string]*core.Table)}
}

// Engine exposes the wrapped engine (for checkpoint/GC control in benches).
func (db *DB) Engine() *core.Engine { return db.e }

// Name implements engineapi.DB.
func (db *DB) Name() string { return "hiengine" }

// CreateTable implements engineapi.DB.
func (db *DB) CreateTable(s *core.Schema) error {
	t, err := db.e.CreateTable(s)
	if err != nil {
		return err
	}
	db.mu.Lock()
	db.tables[s.Name] = t
	db.mu.Unlock()
	return nil
}

func (db *DB) table(name string) (*core.Table, error) {
	db.mu.RLock()
	t, ok := db.tables[name]
	db.mu.RUnlock()
	if ok {
		return t, nil
	}
	t, err := db.e.Table(name)
	if err != nil {
		return nil, err
	}
	db.mu.Lock()
	db.tables[name] = t
	db.mu.Unlock()
	return t, nil
}

// Import implements engineapi.Importer: the row is installed as bulk-loaded
// data visible to every snapshot.
func (db *DB) Import(table string, row core.Row) error {
	t, err := db.table(table)
	if err != nil {
		return err
	}
	_, err = db.e.ImportRow(t, row)
	return mapErr(err)
}

// Begin implements engineapi.DB.
func (db *DB) Begin(worker int) (engineapi.Txn, error) {
	t, err := db.e.Begin(worker % db.e.Workers())
	if err != nil {
		return nil, err
	}
	return &Txn{db: db, t: t}, nil
}

// Txn adapts core.Txn. It memoizes the most recent key lookup so the
// common GetByKey-then-UpdateByKey driver pattern resolves the RID once.
type Txn struct {
	db *DB
	t  *core.Txn

	lastTable *core.Table
	lastIdx   int
	lastKey   []byte
	lastRID   core.RID
}

// Unwrap exposes the underlying transaction.
func (tx *Txn) Unwrap() *core.Txn { return tx.t }

// SetTrace implements engineapi.Traceable: the trace rides the core
// transaction through the WAL commit pipeline.
func (tx *Txn) SetTrace(tr *obs.Trace) { tx.t.SetTrace(tr) }

func mapErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, core.ErrConflict), errors.Is(err, core.ErrDependencyAborted):
		return fmt.Errorf("%w: %v", engineapi.ErrConflict, err)
	case errors.Is(err, core.ErrDuplicateKey):
		return fmt.Errorf("%w: %v", engineapi.ErrDuplicate, err)
	case errors.Is(err, core.ErrNotFound):
		return fmt.Errorf("%w: %v", engineapi.ErrNotFound, err)
	default:
		return err
	}
}

// Commit implements engineapi.Txn.
func (tx *Txn) Commit() error { return mapErr(tx.t.Commit()) }

// CommitAsync implements engineapi.AsyncCommitter: the transaction's
// versions are visible when this returns; cb fires on durability.
func (tx *Txn) CommitAsync(cb func(error)) error {
	return mapErr(tx.t.CommitAsync(func(err error) { cb(mapErr(err)) }))
}

// PrepareAsync implements engineapi.Preparer: the transaction becomes a 2PC
// participant under gtid; cb fires when the prepare record is durable.
func (tx *Txn) PrepareAsync(gtid string, cb func(readOnly bool, err error)) error {
	return mapErr(tx.t.PrepareAsync(gtid, func(ro bool, err error) { cb(ro, mapErr(err)) }))
}

// CSN implements engineapi.CSNReporter.
func (tx *Txn) CSN() uint64 { return tx.t.CSN() }

// Abort implements engineapi.Txn.
func (tx *Txn) Abort() error { return mapErr(tx.t.Abort()) }

// Insert implements engineapi.Txn.
func (tx *Txn) Insert(table string, row core.Row) error {
	t, err := tx.db.table(table)
	if err != nil {
		return err
	}
	_, err = tx.t.Insert(t, row)
	return mapErr(err)
}

// GetByKey implements engineapi.Txn.
func (tx *Txn) GetByKey(table string, idx int, key ...core.Value) (core.Row, error) {
	t, err := tx.db.table(table)
	if err != nil {
		return nil, err
	}
	rid, row, err := tx.t.GetByKey(t, idx, key...)
	if err == nil {
		tx.lastTable, tx.lastIdx, tx.lastRID = t, idx, rid
		tx.lastKey = core.EncodeKey(tx.lastKey[:0], key...)
	}
	return row, mapErr(err)
}

// memoRID returns the memoized RID for (t, idx, key), if it matches the
// last successful lookup.
func (tx *Txn) memoRID(t *core.Table, idx int, key []core.Value) (core.RID, bool) {
	if tx.lastTable != t || tx.lastIdx != idx {
		return 0, false
	}
	probe := core.EncodeKey(nil, key...)
	if string(probe) != string(tx.lastKey) {
		return 0, false
	}
	return tx.lastRID, true
}

// UpdateByKey implements engineapi.Txn.
func (tx *Txn) UpdateByKey(table string, idx int, key []core.Value, newRow core.Row) error {
	t, err := tx.db.table(table)
	if err != nil {
		return err
	}
	rid, ok := tx.memoRID(t, idx, key)
	if !ok {
		rid, _, err = tx.t.GetByKey(t, idx, key...)
		if err != nil {
			return mapErr(err)
		}
	}
	return mapErr(tx.t.Update(t, rid, newRow))
}

// DeleteByKey implements engineapi.Txn.
func (tx *Txn) DeleteByKey(table string, key ...core.Value) error {
	t, err := tx.db.table(table)
	if err != nil {
		return err
	}
	rid, ok := tx.memoRID(t, 0, key)
	if !ok {
		rid, _, err = tx.t.GetByKey(t, 0, key...)
		if err != nil {
			return mapErr(err)
		}
	}
	return mapErr(tx.t.Delete(t, rid))
}

// ScanPrefix implements engineapi.Txn.
func (tx *Txn) ScanPrefix(table string, idx int, prefix []core.Value, fn func(core.Row) bool) error {
	t, err := tx.db.table(table)
	if err != nil {
		return err
	}
	return mapErr(tx.t.ScanPrefix(t, idx, prefix, func(_ core.RID, row core.Row) bool {
		return fn(row)
	}))
}
