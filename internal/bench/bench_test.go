package bench

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

// The quick-mode runners double as integration tests: every figure pipeline
// must execute end to end and produce structurally sane reports.

func runQuick(t *testing.T, id string) *Report {
	t.Helper()
	r, ok := Find(id)
	if !ok {
		t.Fatalf("no runner %q", id)
	}
	rep, err := r.Run(Options{Quick: true})
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if rep.ID != id || len(rep.Header) == 0 || len(rep.Rows) == 0 {
		t.Fatalf("%s: malformed report %+v", id, rep)
	}
	if s := rep.String(); !strings.Contains(s, rep.Title) {
		t.Fatalf("%s: render missing title", id)
	}
	return rep
}

// skipShapes skips the remaining performance-shape assertions when the
// measurements are not meaningful (race detector active: its
// instrumentation multiplies CPU costs and swamps the modeled latencies).
// It is called AFTER the experiment pipeline ran, so integration coverage
// is unaffected.
func skipShapes(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("performance shapes are not meaningful under the race detector")
	}
}

func cellFloat(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(strings.TrimSuffix(s, "x"), "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestTable1(t *testing.T) {
	rep := runQuick(t, "table1")
	if len(rep.Rows) != 9 {
		t.Fatalf("table1 rows = %d", len(rep.Rows))
	}
}

func TestFig5aShape(t *testing.T) {
	rep := runQuick(t, "fig5a")
	skipShapes(t)
	// Rows: HiEngine, DBMS-T, MySQL; HiEngine write TPS must beat both
	// baselines and MySQL must trail DBMS-T.
	byName := map[string][]string{}
	for _, row := range rep.Rows {
		byName[row[0]] = row
	}
	hiW := cellFloat(t, byName["HiEngine"][2])
	dtW := cellFloat(t, byName["DBMS-T"][2])
	myW := cellFloat(t, byName["MySQL"][2])
	if !(hiW > dtW && dtW >= myW) {
		t.Fatalf("write ordering violated: hi=%v dbms-t=%v mysql=%v", hiW, dtW, myW)
	}
	hiR := cellFloat(t, byName["HiEngine"][1])
	myR := cellFloat(t, byName["MySQL"][1])
	if hiR <= myR {
		t.Fatalf("read ordering violated: hi=%v mysql=%v", hiR, myR)
	}
}

func TestFig5bShape(t *testing.T) {
	rep := runQuick(t, "fig5b")
	skipShapes(t)
	byName := map[string][]string{}
	for _, row := range rep.Rows {
		byName[row[0]] = row
	}
	hiW := cellFloat(t, byName["HiEngine"][2])
	myW := cellFloat(t, byName["MySQL"][2])
	if hiW <= myW {
		t.Fatalf("compiled write ordering violated: hi=%v mysql=%v", hiW, myW)
	}
}

func TestFig6Shape(t *testing.T) {
	rep := runQuick(t, "fig6")
	skipShapes(t)
	// Every HiEngine row should carry a ratio >= 1 against DBMS-M... the
	// paper claims 2x avg on ARM, 1.3x on x86; under quick scale we only
	// require HiEngine to not lose.
	sawARM, sawX86 := false, false
	for _, row := range rep.Rows {
		if row[2] != "HiEngine" {
			continue
		}
		switch row[0] {
		case "ARM":
			sawARM = true
		case "x86":
			sawX86 = true
		}
		if r := cellFloat(t, row[5]); r < 0.8 {
			t.Fatalf("HiEngine lost badly to DBMS-M on %s/%s: %v", row[0], row[1], r)
		}
	}
	if !sawARM || !sawX86 {
		t.Fatal("missing platform rows")
	}
}

func TestFig7Shape(t *testing.T) {
	rep := runQuick(t, "fig7")
	skipShapes(t)
	var bestRemote, worstRemote float64
	for _, row := range rep.Rows {
		if row[1] != "HiEngine" {
			continue
		}
		switch row[0] {
		case "partitioned+local":
			bestRemote = cellFloat(t, row[3])
		case "partitioned+remote":
			worstRemote = cellFloat(t, row[3])
		}
	}
	if worstRemote <= bestRemote {
		t.Fatalf("remote policy did not raise remote fraction: best=%v worst=%v", bestRemote, worstRemote)
	}
}

func TestFig8Shape(t *testing.T) {
	rep := runQuick(t, "fig8")
	// Speedup with more replay threads must be >= 1 (monotone modulo
	// noise on tiny datasets); replay time strings must parse.
	for _, row := range rep.Rows {
		if _, err := time.ParseDuration(row[1]); err != nil {
			t.Fatalf("bad duration %q", row[1])
		}
	}
	last := rep.Rows[len(rep.Rows)-1]
	if sp := cellFloat(t, last[2]); sp < 0.5 {
		t.Fatalf("parallel replay slower than serial: %v", sp)
	}
}

func TestClockBenchShape(t *testing.T) {
	rep := runQuick(t, "clock")
	skipShapes(t)
	// At 3 nodes the global clock must grant faster than the logical one.
	var logical3, global3 float64
	for _, row := range rep.Rows {
		if row[0] != "3" {
			continue
		}
		switch {
		case strings.HasPrefix(row[1], "logical"):
			logical3 = cellFloat(t, row[2])
		case strings.HasPrefix(row[1], "global (eps=10us)"):
			global3 = cellFloat(t, row[2])
		}
	}
	if global3 <= logical3 {
		t.Fatalf("global clock (%v/s) not faster than logical (%v/s) at 3 nodes", global3, logical3)
	}
}

func TestAblationsShape(t *testing.T) {
	rep := runQuick(t, "ablations")
	skipShapes(t)
	byVariant := map[string]string{}
	for _, row := range rep.Rows {
		byVariant[row[0]+"/"+row[1]] = row[2]
	}
	parse := func(k string) time.Duration {
		d, err := time.ParseDuration(byVariant[k])
		if err != nil {
			t.Fatalf("parse %q: %v", byVariant[k], err)
		}
		return d
	}
	if parse("commit persistence/compute-side") >= parse("commit persistence/storage-side") {
		t.Fatal("compute-side commit not cheaper than storage-side")
	}
	if parse("commit pipelining/pipelined") >= parse("commit pipelining/sync") {
		t.Fatal("pipelining did not reduce per-txn time")
	}
	// The checkpoint pair is asserted only at full scale (quick mode's
	// 2k-row table makes the two variants comparable in cost; the 10x gap
	// appears with realistic row counts -- see the root benchmark).
	_ = parse("checkpoint/dataless (PIA only)")
	_ = parse("checkpoint/full-data")
}

func TestFindAndAll(t *testing.T) {
	if len(All()) != 8 {
		t.Fatalf("runner count = %d", len(All()))
	}
	if _, ok := Find("ghost"); ok {
		t.Fatal("found nonexistent runner")
	}
	_ = sortInts([]int{3, 1, 2})
}
