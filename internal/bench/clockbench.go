package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hiengine/internal/clock"
	"hiengine/internal/delay"
)

// ClockBench reproduces the Section 5.3 comparison of timestamp-grant
// mechanisms for the distributed setting: a centralized logical clock
// advanced over one-sided RDMA (latency ~40us at 3 nodes and capped by the
// hosting NIC's ~1.5M packets/s) versus the high-precision global clock
// with a 10-20us uncertainty bound, which grants locally and scales with
// node count.
func ClockBench(o Options) (*Report, error) {
	dur := o.dur(500*time.Millisecond, 100*time.Millisecond)
	nodeCounts := []int{1, 3, 6, 12}
	if o.Quick {
		nodeCounts = []int{1, 3}
	}
	const clientsPerNode = 4

	model := &delay.Model{RDMAFetchAdd: 13 * time.Microsecond}
	r := &Report{
		ID:       "clock",
		Title:    "Timestamp grant latency/throughput: logical clock vs global clock",
		Expected: "logical clock ~40us average at 3 nodes, degrading with node count (NIC PPS cap); global clock grants at eps=10us (atomic clock) or 20us, ~2x faster and scalable",
		Header:   []string{"nodes", "mechanism", "grants/s", "avg latency"},
	}

	measure := func(src clock.Source, nodes int) (float64, time.Duration) {
		var grants atomic.Int64
		var totalLat atomic.Int64
		var wg sync.WaitGroup
		deadline := time.Now().Add(dur)
		for c := 0; c < nodes*clientsPerNode; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for time.Now().Before(deadline) {
					t0 := time.Now()
					src.Next()
					totalLat.Add(int64(time.Since(t0)))
					grants.Add(1)
				}
			}()
		}
		wg.Wait()
		g := grants.Load()
		if g == 0 {
			return 0, 0
		}
		return float64(g) / dur.Seconds(), time.Duration(totalLat.Load() / g)
	}

	for _, nodes := range nodeCounts {
		o.progress("clock: %d nodes", nodes)
		// The logical clock's RDMA latency grows slightly with fabric
		// contention; model the paper's 40us at 3 nodes.
		m := *model
		m.RDMAFetchAdd = time.Duration(13+9*nodes) * time.Microsecond
		lc := clock.NewLogicalClock(&m, nil, 1_500_000)
		tps, lat := measure(lc, nodes)
		r.Rows = append(r.Rows, []string{fmt.Sprint(nodes), "logical (RDMA FAA)", f0(tps), lat.Round(time.Microsecond).String()})

		gc := clock.NewGlobalClock(10*time.Microsecond, nil)
		tps, lat = measure(gc, nodes)
		r.Rows = append(r.Rows, []string{fmt.Sprint(nodes), "global (eps=10us)", f0(tps), lat.Round(time.Microsecond).String()})

		gc20 := clock.NewGlobalClock(20*time.Microsecond, nil)
		tps, lat = measure(gc20, nodes)
		r.Rows = append(r.Rows, []string{fmt.Sprint(nodes), "global (eps=20us)", f0(tps), lat.Round(time.Microsecond).String()})
	}
	r.Notes = append(r.Notes,
		"the logical clock's aggregate rate is bounded by the hosting NIC (1.5M PPS model) regardless of node count; the global clock has no shared bottleneck -- the paper's conclusion that a centralized logical clock is not the right choice for distributed HiEngine")
	return r, nil
}
