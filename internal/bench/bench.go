// Package bench contains one runner per table/figure of the paper's
// evaluation (Section 6). Each runner builds the engines it compares, runs
// the workload at the configured scale, and renders a report with the
// measured series next to the paper's expected shape. Absolute numbers are
// not comparable to the paper's testbed (128-core Kunpeng servers with
// persistent memory vs a simulated cluster in Go); ratios and trends are
// the reproduction target, as recorded in EXPERIMENTS.md.
package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"hiengine/internal/obs"
)

// Options tunes experiment scale.
type Options struct {
	// Quick shrinks datasets and durations for CI/tests. Full runs are
	// the default for cmd/hibench.
	Quick bool
	// Threads overrides the default thread counts (0 = per-experiment
	// defaults).
	Threads int
	// Duration overrides per-measurement run time (0 = default).
	Duration time.Duration
	// Stats attaches an obs registry to the HiEngine instances under test
	// and appends its snapshot (commit latency percentiles, group-commit
	// batch sizes, GC/checkpoint activity) to the report.
	Stats bool
	// Out receives progress lines (nil = silent).
	Progress func(string)
}

func (o Options) progress(format string, args ...interface{}) {
	if o.Progress != nil {
		o.Progress(fmt.Sprintf(format, args...))
	}
}

// statsReg returns a registry for this run when Stats is set, nil otherwise
// (a nil registry makes every metric a no-op).
func (o Options) statsReg(id string) *obs.Registry {
	if !o.Stats {
		return nil
	}
	return obs.NewRegistry(id)
}

func (o Options) dur(full, quick time.Duration) time.Duration {
	if o.Duration > 0 {
		return o.Duration
	}
	if o.Quick {
		return quick
	}
	return full
}

// Report is a rendered experiment result.
type Report struct {
	ID       string // e.g. "fig5a"
	Title    string
	Expected string // the paper's claim, quoted/summarized
	Header   []string
	Rows     [][]string
	Notes    []string
	// Stats is the rendered obs snapshot of the HiEngine instance(s) under
	// test, present when Options.Stats was set.
	Stats string
}

// attachStats renders reg's snapshot into the report (no-op for nil reg).
func (r *Report) attachStats(reg *obs.Registry) {
	if reg != nil {
		r.Stats = reg.Snapshot().String()
	}
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", r.ID, r.Title)
	if r.Expected != "" {
		fmt.Fprintf(&b, "paper: %s\n", r.Expected)
	}
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(r.Header)
	sep := make([]string, len(r.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	if r.Stats != "" {
		b.WriteString(r.Stats)
	}
	return b.String()
}

// Runner is one experiment.
type Runner struct {
	ID    string
	Title string
	Run   func(Options) (*Report, error)
}

// All returns every experiment runner in presentation order.
func All() []Runner {
	return []Runner{
		{ID: "table1", Title: "Logical architecture comparison (Table 1)", Run: Table1},
		{ID: "fig5a", Title: "Interpreted read/write throughput (Figure 5a)", Run: Fig5a},
		{ID: "fig5b", Title: "Compiled (stored-procedure) throughput (Figure 5b)", Run: Fig5b},
		{ID: "fig6", Title: "TPC-C scalability vs cores, ARM & x86 (Figure 6)", Run: Fig6},
		{ID: "fig7", Title: "Workload partitioning x memory policy (Figure 7)", Run: Fig7},
		{ID: "fig8", Title: "Parallel recovery RTO speedup (Figure 8)", Run: Fig8},
		{ID: "clock", Title: "Timestamp grant: logical vs global clock (Section 5.3)", Run: ClockBench},
		{ID: "ablations", Title: "Design-decision ablations (DESIGN.md)", Run: Ablations},
	}
}

// Find returns the runner with the given ID.
func Find(id string) (Runner, bool) {
	for _, r := range All() {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f0(v float64) string  { return fmt.Sprintf("%.0f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// ratio formats a/b with guard.
func ratio(a, b float64) string {
	if b == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.2fx", a/b)
}

// sortInts sorts in place and returns s (tiny helper for stable reports).
func sortInts(s []int) []int {
	sort.Ints(s)
	return s
}
