package bench

// Table1 reproduces the paper's Table 1: the logical-architecture taxonomy
// of popular database engines. It is a static comparison; reproducing it
// means encoding the same classification the paper argues from, with
// HiEngine as the only memory-centric, log-is-database, three-layer
// disaggregated engine on DRAM/NVM.
func Table1(o Options) (*Report, error) {
	r := &Report{
		ID:       "table1",
		Title:    "Logical Architecture Comparison for Popular Database Engines",
		Expected: "HiEngine uniquely combines memory-centric design, log-is-database, and a disaggregated compute+logging+storage architecture on DRAM/NVM",
		Header:   []string{"System", "Design Principle", "Log is Database", "Disaggregated Architecture", "Main Location"},
		Rows: [][]string{
			{"Aurora", "Storage-centric", "Yes", "Compute + Shared Storage", "SSD/HDD"},
			{"Taurus", "Storage-centric", "Yes", "Compute + Shared Storage", "SSD/HDD"},
			{"PolarDB", "Storage-centric", "No", "Compute + Shared Storage", "SSD/HDD"},
			{"Socrates", "Storage-centric", "Yes", "Compute + Logging + Shared Storage", "SSD/HDD"},
			{"HiEngine", "Memory-centric", "Yes", "Compute + Logging + Shared Storage", "DRAM/NVM"},
			{"ERMIA", "Memory-centric", "Yes", "Not Disaggregated", "DRAM"},
			{"Hekaton", "Memory-centric", "No", "Not Disaggregated", "DRAM/SSD"},
			{"NAM-DB", "Memory-centric", "No", "Compute + Shared Storage (Memory)", "DRAM"},
			{"FaRM", "Memory-centric", "No", "Compute + Shared Storage (Memory)", "DRAM/NVM"},
		},
		Notes: []string{
			"this repository implements the HiEngine row end-to-end: internal/core over internal/srss " +
				"(compute-side logging layer + storage tier), plus the storage-centric (innosim) and " +
				"memory-centric non-disaggregated (memocc) rows as baselines",
		},
	}
	return r, nil
}
