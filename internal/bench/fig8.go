package bench

import (
	"fmt"
	"time"

	"hiengine/internal/adapt"
	"hiengine/internal/core"
	"hiengine/internal/srss"
	"hiengine/internal/workload/tpcc"
)

// Figure 8: recovery time objective (RTO) with parallel recovery. The paper
// loads 40 warehouses, runs 40 workers to produce a large log, then
// measures replay time; parallel replay improves RTO by ~10x, and longer
// runs (more log) increase RTO linearly, motivating frequent checkpoints.
func Fig8(o Options) (*Report, error) {
	warehouses := 8
	threads := 8
	sc := tpcc.BenchScale()
	runDur := o.dur(3*time.Second, 300*time.Millisecond)
	replayThreads := []int{1, 2, 4, 8}
	if o.Quick {
		warehouses, threads = 2, 4
		sc = tpcc.SmallScale()
		replayThreads = []int{1, 4}
	}

	svc := srss.New(srss.Config{}) // zero latency: measure CPU-bound replay
	e, err := core.Open(core.Config{
		Service:     svc,
		Workers:     threads + 2,
		SegmentSize: 1 << 20, // many segments => parallel replay has work units
		Obs:         o.statsReg("fig8:hiengine"),
	})
	if err != nil {
		return nil, err
	}
	db := adapt.New(e)
	o.progress("fig8: loading %d warehouses", warehouses)
	if err := tpcc.Load(db, warehouses, sc, threads); err != nil {
		return nil, err
	}
	o.progress("fig8: generating log for %v", runDur)
	d := tpcc.NewDriver(tpcc.Config{
		DB: db, Warehouses: warehouses, Threads: threads, Scale: sc,
		Duration: runDur, Seed: 5, Partitioned: true,
	})
	res, err := d.Run()
	if err != nil {
		return nil, err
	}
	logBytes := e.Log().TotalBytes()
	segs := len(e.Log().Segments())
	manifestID := e.ManifestID()
	heReg := e.Obs()
	e.Close() // crash point

	r := &Report{
		ID:       "fig8",
		Title:    "Performance speedup from parallel recovery",
		Expected: "parallel replay improves RTO by ~10x; RTO grows with log volume, motivating frequent checkpoints",
		Header:   []string{"replay threads", "replay time", "speedup vs serial", "records/s"},
	}
	var serial time.Duration
	for _, rt := range replayThreads {
		o.progress("fig8: recovering with %d threads", rt)
		e2, stats, err := core.Recover(core.Config{
			Service: svc, Workers: 4, SegmentSize: 1 << 20,
		}, manifestID, core.RecoverOptions{ReplayThreads: rt, SkipIndexRebuild: true})
		if err != nil {
			return nil, err
		}
		e2.Close()
		if rt == replayThreads[0] {
			serial = stats.ReplayDuration
		}
		rate := float64(stats.RecordsScanned) / stats.ReplayDuration.Seconds()
		r.Rows = append(r.Rows, []string{
			fmt.Sprint(rt),
			stats.ReplayDuration.Round(time.Microsecond).String(),
			ratio(float64(serial), float64(stats.ReplayDuration)),
			f0(rate),
		})
	}

	// Checkpoint ablation: recover from a checkpointed manifest.
	e3, _, err := core.Recover(core.Config{Service: svc, Workers: 4, SegmentSize: 1 << 20},
		manifestID, core.RecoverOptions{ReplayThreads: 4})
	if err != nil {
		return nil, err
	}
	if _, err := e3.Checkpoint(); err != nil {
		return nil, err
	}
	manifest2 := e3.ManifestID()
	e3.Close()
	_, statsCk, err := core.Recover(core.Config{Service: svc, Workers: 4, SegmentSize: 1 << 20},
		manifest2, core.RecoverOptions{ReplayThreads: 4, SkipIndexRebuild: true})
	if err != nil {
		return nil, err
	}
	r.Notes = append(r.Notes, fmt.Sprintf(
		"workload produced %d committed txns, %.1f MB of log in %d segments",
		res.Total(), float64(logBytes)/(1<<20), segs))
	r.Notes = append(r.Notes, fmt.Sprintf(
		"with a fresh dataless checkpoint (%d entries), 4-thread replay takes %v -- checkpoints bound the log replayed, the paper's motivation for frequent checkpoints",
		statsCk.CheckpointEntries, statsCk.ReplayDuration.Round(time.Microsecond)))
	r.Notes = append(r.Notes,
		"recovery here rebuilds PIAs only (dataless); record data faults in lazily via SRSS mmap views, and index rebuild is measured separately")
	if o.Stats {
		r.attachStats(heReg) // log-generation phase of the crashed engine
	}
	return r, nil
}
