package bench

import (
	"fmt"
	"time"

	"hiengine/internal/delay"
	"hiengine/internal/numa"
	"hiengine/internal/workload/tpcc"
)

// Figure 7: the interaction of workload partitioning and memory-allocation
// policy on the 2-socket/4-die ARM machine, using 2 dies (32 cores each).
//
// Paper shapes: partitioning the workload cuts cross-NUMA remote accesses by
// ~26% and lifts tpmC by ~20%; HiEngine beats DBMS-M by >=60% in every
// combination; DBMS-M's thread-local row cache yields fewer remote accesses
// under partition+local; the worst placement produces ~69% remote accesses;
// and tpmC drops roughly 5% per additional 10% of remote accesses.
func Fig7(o Options) (*Report, error) {
	sc := tpcc.BenchScale()
	threads := 64 // 2 dies x 32 cores
	dur := o.dur(2*time.Second, 250*time.Millisecond)
	topo := numa.ARMKunpeng920()
	if o.Quick {
		sc = tpcc.SmallScale()
		threads = 16
		// Scale the topology down with the thread count so the 16
		// threads still span two dies of one socket (the experiment's
		// 2-die configuration).
		topo.CoresPerDie = 8
	}
	if o.Threads > 0 {
		threads = o.Threads
	}
	warehouses := threads
	model := delay.CloudProfile()

	type combo struct {
		label       string
		partitioned bool
		policy      numa.Policy
	}
	combos := []combo{
		{"partitioned+local", true, numa.PolicyLocal},   // case 1: optimal
		{"partitioned+remote", true, numa.PolicyRemote}, // case 2: worst
		{"random+interleave", false, numa.PolicyInterleave},
		{"random+local", false, numa.PolicyLocal},
	}

	r := &Report{
		ID:       "fig7",
		Title:    "Performance impact of workload partition and memory allocation policy",
		Expected: "partitioned workload: ~-26% remote accesses, ~+20% tpmC; HiEngine >=60% over DBMS-M in every combo; ~5% tpmC lost per +10% remote accesses",
		Header:   []string{"combination", "engine", "tpmC", "remote-access", "HiEngine/DBMS-M"},
	}

	type meas struct {
		tpmc   float64
		remote float64
	}
	reg := o.statsReg("fig7:hiengine")
	all := map[string]map[string]meas{}
	for _, c := range combos {
		all[c.label] = map[string]meas{}
		for _, eng := range fig6Engines(model, threads, reg) {
			o.progress("fig7: %s %s", c.label, eng.name)
			res, acct, err := runTPCC(eng, topo, threads, warehouses, sc, dur, c.partitioned, c.policy)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", c.label, eng.name, err)
			}
			all[c.label][eng.name] = meas{tpmc: res.TpmC(), remote: acct.RemoteFraction()}
		}
	}
	for _, c := range combos {
		hi := all[c.label]["HiEngine"]
		dm := all[c.label]["DBMS-M"]
		r.Rows = append(r.Rows, []string{c.label, "HiEngine", f0(hi.tpmc), pct(hi.remote), ratio(hi.tpmc, dm.tpmc)})
		r.Rows = append(r.Rows, []string{c.label, "DBMS-M", f0(dm.tpmc), pct(dm.remote), ""})
	}

	// Derived observations mirroring the paper's text.
	best := all["partitioned+local"]["HiEngine"]
	worst := all["partitioned+remote"]["HiEngine"]
	rnd := all["random+interleave"]["HiEngine"]
	if worst.remote > best.remote {
		slope := (1 - worst.tpmc/best.tpmc) / ((worst.remote - best.remote) / 0.10)
		r.Notes = append(r.Notes, fmt.Sprintf(
			"HiEngine tpmC drop per +10%% remote accesses: %.1f%% (paper: ~5%%); worst-case remote fraction %s (paper: 69%%)",
			slope*100, pct(worst.remote)))
	}
	if rnd.tpmc > 0 {
		r.Notes = append(r.Notes, fmt.Sprintf(
			"partitioning effect (HiEngine): remote accesses %s -> %s, tpmC %sx vs random placement",
			pct(rnd.remote), pct(best.remote), f2(best.tpmc/rnd.tpmc)))
	}
	r.attachStats(reg) // aggregated across HiEngine runs in every combo
	return r, nil
}
