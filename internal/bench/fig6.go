package bench

import (
	"fmt"
	"time"

	"hiengine/internal/adapt"
	"hiengine/internal/baseline/memocc"
	"hiengine/internal/core"
	"hiengine/internal/delay"
	"hiengine/internal/engineapi"
	"hiengine/internal/numa"
	"hiengine/internal/obs"
	"hiengine/internal/srss"
	"hiengine/internal/workload/tpcc"
)

// Figure 6: TPC-C throughput of HiEngine vs DBMS-M as the core count grows,
// on the ARM (128-core, 4-die) and x86 (48-core, 2-socket) platforms.
//
// Paper shapes: HiEngine outperforms DBMS-M by ~2x on average (up to 4.5x)
// on ARM and ~30% on x86; beyond 64 cores on ARM HiEngine's scalability
// degrades due to cross-socket remote accesses.
//
// The simulation binds each worker thread to a simulated core of the chosen
// topology and homes each warehouse on the die of its owning thread; every
// record access charges the local/remote-die/remote-socket latency of the
// topology. The DBMS-M driver charges only a fraction of repeated index
// accesses, modeling its transactional thread-local row cache (Section 6.3
// observes it produces fewer cross-NUMA accesses).

// fig6Engine abstracts engine construction for the TPC-C comparisons.
type fig6Engine struct {
	name string
	// rowCacheDamping is the fraction of accesses charged to the NUMA
	// accountant (1.0 = every access; DBMS-M's thread-local row cache
	// absorbs repeated accesses within a transaction).
	damping float64
	build   func() (engineapi.DB, func(), error)
}

func fig6Engines(model *delay.Model, workers int, reg *obs.Registry) []fig6Engine {
	return []fig6Engine{
		{
			name:    "HiEngine",
			damping: 1.0,
			build: func() (engineapi.DB, func(), error) {
				e, err := core.Open(core.Config{
					Service:     srss.New(srss.Config{Model: model}),
					Workers:     workers,
					SegmentSize: 64 << 20,
					Obs:         reg,
				})
				if err != nil {
					return nil, nil, err
				}
				return adapt.New(e), e.Close, nil
			},
		},
		{
			name:    "DBMS-M",
			damping: 0.6,
			build: func() (engineapi.DB, func(), error) {
				db, err := memocc.New(memocc.Config{
					Service:     srss.New(srss.Config{Model: model}),
					Workers:     workers,
					SegmentSize: 64 << 20,
				})
				if err != nil {
					return nil, nil, err
				}
				return db, db.Close, nil
			},
		},
	}
}

// runTPCC loads and runs one engine at the given thread count on a topology.
func runTPCC(eng fig6Engine, topo numa.Topology, threads, warehouses int,
	sc tpcc.Scale, dur time.Duration, partitioned bool, policy numa.Policy) (tpcc.Result, *numa.Accountant, error) {
	db, closeFn, err := eng.build()
	if err != nil {
		return tpcc.Result{}, nil, err
	}
	defer closeFn()
	if err := tpcc.Load(db, warehouses, sc, 8); err != nil {
		return tpcc.Result{}, nil, err
	}
	acct := numa.NewAccountant(topo, nil)
	activeDies := (threads + topo.CoresPerDie - 1) / topo.CoresPerDie
	if activeDies < 1 {
		activeDies = 1
	}
	if activeDies > topo.TotalDies() {
		activeDies = topo.TotalDies()
	}
	// Each warehouse is homed on the die of the thread that owns it under
	// partitioned placement; the policy can override (Figure 7).
	homeDie := func(w int) int {
		ownerThread := (w - 1) % threads
		ownerDie := topo.Core(ownerThread).Die
		return policy.Place(w, ownerDie, activeDies)
	}
	// Shared-structure cross-socket charges: when the active cores span
	// more than one socket, every commit bounces the CSN counter's and the
	// log tails' cache lines across the interconnect (Section 6.3's
	// explanation for HiEngine's >64-core dip). DBMS-M pays the same for
	// its commit TID counter.
	spansSockets := topo.Core(0).Socket != topo.Core(threads-1).Socket
	onCommit := func(thread int) {
		if !spansSockets {
			return
		}
		c := topo.Core(thread)
		remoteSocketDie := ((c.Socket + 1) % topo.Sockets) * topo.DiesPerSocket
		// CSN fetch-add + log-tail handoff.
		acct.Access(c, remoteSocketDie)
		acct.Access(c, remoteSocketDie)
	}
	counters := make([]int64, threads) // per-thread damping counters
	onAccess := func(thread, w int) {
		core := topo.Core(thread)
		if eng.damping < 1.0 {
			counters[thread]++
			if float64(counters[thread]%10) >= eng.damping*10 {
				// Served from the thread-local row cache: the access
				// stays on the worker's own die.
				acct.Access(core, core.Die)
				return
			}
		}
		acct.Access(core, homeDie(w))
	}
	d := tpcc.NewDriver(tpcc.Config{
		DB:            db,
		Warehouses:    warehouses,
		Threads:       threads,
		Scale:         sc,
		Duration:      dur,
		Seed:          99,
		Partitioned:   partitioned,
		OnAccess:      onAccess,
		OnCommit:      onCommit,
		PipelineDepth: 8, // engines without AsyncCommitter stay synchronous
	})
	res, err := d.Run()
	if err != nil {
		return tpcc.Result{}, nil, err
	}
	if err := d.Verify(); err != nil {
		return tpcc.Result{}, nil, fmt.Errorf("consistency after run: %w", err)
	}
	return res, acct, nil
}

// Fig6 regenerates Figure 6.
func Fig6(o Options) (*Report, error) {
	sc := tpcc.BenchScale()
	dur := o.dur(2*time.Second, 250*time.Millisecond)
	armCounts := []int{16, 32, 64, 96, 128}
	x86Counts := []int{12, 24, 48}
	if o.Quick {
		sc = tpcc.SmallScale()
		armCounts = []int{8, 32}
		x86Counts = []int{8, 24}
	}
	model := delay.CloudProfile()
	reg := o.statsReg("fig6:hiengine")

	r := &Report{
		ID:       "fig6",
		Title:    "Overall TPC-C performance on ARM and x86 platforms",
		Expected: "HiEngine ~2x DBMS-M on ARM (up to 4.5x), ~+30% on x86; HiEngine dips past 64 ARM cores from cross-socket accesses",
		Header:   []string{"platform", "cores", "engine", "tpmC", "remote-access", "HiEngine/DBMS-M"},
	}
	type key struct {
		platform string
		cores    int
	}
	results := map[key]map[string]float64{}
	remotes := map[key]map[string]float64{}

	run := func(platform string, topo numa.Topology, counts []int) error {
		for _, cores := range counts {
			warehouses := cores
			engines := fig6Engines(model, cores, reg)
			for _, eng := range engines {
				o.progress("fig6: %s %d cores %s", platform, cores, eng.name)
				res, acct, err := runTPCC(eng, topo, cores, warehouses, sc, dur, true, numa.PolicyLocal)
				if err != nil {
					return fmt.Errorf("%s/%d/%s: %w", platform, cores, eng.name, err)
				}
				k := key{platform, cores}
				if results[k] == nil {
					results[k] = map[string]float64{}
					remotes[k] = map[string]float64{}
				}
				results[k][eng.name] = res.TpmC()
				remotes[k][eng.name] = acct.RemoteFraction()
			}
		}
		return nil
	}
	armTopo := numa.ARMKunpeng920()
	if err := run("ARM", armTopo, armCounts); err != nil {
		return nil, err
	}
	x86Topo := numa.X86Xeon()
	if err := run("x86", x86Topo, x86Counts); err != nil {
		return nil, err
	}

	emit := func(platform string, counts []int) {
		for _, cores := range counts {
			k := key{platform, cores}
			hi := results[k]["HiEngine"]
			dm := results[k]["DBMS-M"]
			for _, name := range []string{"HiEngine", "DBMS-M"} {
				rr := ""
				if name == "HiEngine" {
					rr = ratio(hi, dm)
				}
				r.Rows = append(r.Rows, []string{
					platform, fmt.Sprint(cores), name,
					f0(results[k][name]), pct(remotes[k][name]), rr,
				})
			}
		}
	}
	emit("ARM", armCounts)
	emit("x86", x86Counts)
	r.Notes = append(r.Notes,
		"threads are bound to simulated cores; physical parallelism is capped by the host CPU, so curves flatten where the host saturates -- the HiEngine/DBMS-M ratio and the remote-access growth past one socket are the reproduced signals")
	r.attachStats(reg) // aggregated across HiEngine runs at every core count
	return r, nil
}
