package bench

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"hiengine/internal/adapt"
	"hiengine/internal/baseline/innosim"
	"hiengine/internal/core"
	"hiengine/internal/delay"
	"hiengine/internal/engineapi"
	"hiengine/internal/obs"
	"hiengine/internal/sqlfront"
	"hiengine/internal/srss"
)

// Figure 5 compares HiEngine against DBMS-T (GaussDB(for MySQL)) and vanilla
// MySQL on sysbench-style read-only and write-only microbenchmarks under the
// cloud deployment: HiEngine commits against compute-side persistence while
// the baselines force their logs across the compute/storage network.
// Figure 5(a) runs the interpreted SQL path; Figure 5(b) runs compiled
// (prepared/stored-procedure) execution.
//
// Paper shapes: (a) writes 3.6x vs DBMS-T and 7.5-8.4x vs MySQL; reads 1.6x
// and 4.2-10.8x. (b) writes 3-5x vs DBMS-T, 8-16x vs MySQL; reads 2-3x and
// 7-19x; compiled simple transactions approach 1M TPS and roughly double the
// prepare+execute path.

type fig5Engine struct {
	name  string
	front *sqlfront.Frontend
	close func()
}

func buildFig5Engines(o Options) ([]fig5Engine, *obs.Registry, error) {
	model := delay.CloudProfile()
	var out []fig5Engine

	he, err := core.Open(core.Config{
		Service:     srss.New(srss.Config{Model: model}),
		Workers:     64,
		SegmentSize: 64 << 20,
		Obs:         o.statsReg("fig5:hiengine"),
	})
	if err != nil {
		return nil, nil, err
	}
	out = append(out, fig5Engine{
		name:  "HiEngine",
		front: sqlfront.NewFrontend("hiengine", adapt.New(he)),
		close: he.Close,
	})

	dbmst, err := innosim.New(innosim.Config{
		Service:     srss.New(srss.Config{Model: model}),
		Variant:     innosim.VariantDBMST,
		SegmentSize: 64 << 20,
	})
	if err != nil {
		return nil, nil, err
	}
	out = append(out, fig5Engine{
		name:  "DBMS-T",
		front: sqlfront.NewFrontend("dbms-t", dbmst),
		close: dbmst.Close,
	})

	mysql, err := innosim.New(innosim.Config{
		Service:     srss.New(srss.Config{Model: model}),
		Variant:     innosim.VariantMySQL,
		SegmentSize: 64 << 20,
	})
	if err != nil {
		return nil, nil, err
	}
	out = append(out, fig5Engine{
		name:  "MySQL",
		front: sqlfront.NewFrontend("mysql", mysql),
		close: mysql.Close,
	})
	return out, he.Obs(), nil
}

const fig5Table = "CREATE TABLE sbtest (id INT, k INT, c TEXT, pad TEXT, PRIMARY KEY(id))"

func fig5Load(front *sqlfront.Frontend, size, threads int) error {
	s := front.NewSession(0)
	if _, err := s.Exec(fig5Table); err != nil {
		return err
	}
	var wg sync.WaitGroup
	errCh := make(chan error, threads)
	per := (size + threads - 1) / threads
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := front.NewSession(w)
			ins, err := sess.Prepare("INSERT INTO sbtest VALUES (?, ?, ?, ?)")
			if err != nil {
				errCh <- err
				return
			}
			lo, hi := w*per+1, (w+1)*per
			if hi > size {
				hi = size
			}
			for id := lo; id <= hi; id++ {
				if _, err := ins.Exec(core.I(int64(id)), core.I(int64(id%97)),
					core.S("sysbench-value-sysbench-value"), core.S("pad")); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return err
	default:
		return nil
	}
}

// fig5Run measures TPS for one engine/mix/mode combination.
func fig5Run(front *sqlfront.Frontend, size, threads, queriesPerTxn int,
	write, compiled bool, dur time.Duration) (float64, error) {
	var txns atomic.Int64
	var wg sync.WaitGroup
	errCh := make(chan error, threads)
	deadline := time.Now().Add(dur)
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := front.NewSession(w)
			rng := rand.New(rand.NewSource(int64(w)*31 + 1))
			var sel, upd, begin, commit *sqlfront.Stmt
			if compiled {
				var err error
				if sel, err = sess.Prepare("SELECT c FROM sbtest WHERE id = ?"); err != nil {
					errCh <- err
					return
				}
				if upd, err = sess.Prepare("UPDATE sbtest SET c = ? WHERE id = ?"); err != nil {
					errCh <- err
					return
				}
				if begin, err = sess.Prepare("BEGIN"); err != nil {
					errCh <- err
					return
				}
				if commit, err = sess.Prepare("COMMIT"); err != nil {
					errCh <- err
					return
				}
			}
			for time.Now().Before(deadline) {
				err := func() error {
					if compiled {
						if _, err := begin.Exec(); err != nil {
							return err
						}
					} else if _, err := sess.Exec("BEGIN"); err != nil {
						return err
					}
					for q := 0; q < queriesPerTxn; q++ {
						id := core.I(int64(rng.Intn(size) + 1))
						var err error
						if write {
							if compiled {
								_, err = upd.Exec(core.S(fmt.Sprintf("v-%d", rng.Int())), id)
							} else {
								_, err = sess.Exec("UPDATE sbtest SET c = ? WHERE id = ?",
									core.S(fmt.Sprintf("v-%d", rng.Int())), id)
							}
						} else {
							if compiled {
								_, err = sel.Exec(id)
							} else {
								_, err = sess.Exec("SELECT c FROM sbtest WHERE id = ?", id)
							}
						}
						if err != nil {
							return err
						}
					}
					if compiled {
						_, err := commit.Exec()
						return err
					}
					_, err := sess.Exec("COMMIT")
					return err
				}()
				if err != nil {
					if errors.Is(err, engineapi.ErrConflict) {
						if sess.InTxn() {
							sess.Exec("ROLLBACK")
						}
						continue // retry the transaction
					}
					errCh <- err
					return
				}
				txns.Add(1)
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return 0, err
	default:
	}
	return float64(txns.Load()) / dur.Seconds(), nil
}

func fig5(o Options, compiled bool) (*Report, error) {
	size := 50000
	threads := 16
	queries := 4
	if o.Quick {
		size, threads, queries = 2000, 4, 2
	}
	if o.Threads > 0 {
		threads = o.Threads
	}
	dur := o.dur(3*time.Second, 300*time.Millisecond)

	engines, heReg, err := buildFig5Engines(o)
	if err != nil {
		return nil, err
	}
	defer func() {
		for _, e := range engines {
			e.close()
		}
	}()
	for _, e := range engines {
		o.progress("fig5: loading %s (%d rows)", e.name, size)
		if err := fig5Load(e.front, size, threads); err != nil {
			return nil, fmt.Errorf("load %s: %w", e.name, err)
		}
	}

	type cell struct{ read, write float64 }
	results := map[string]cell{}
	for _, e := range engines {
		o.progress("fig5: running %s (compiled=%v)", e.name, compiled)
		read, err := fig5Run(e.front, size, threads, queries, false, compiled, dur)
		if err != nil {
			return nil, fmt.Errorf("%s read: %w", e.name, err)
		}
		write, err := fig5Run(e.front, size, threads, queries, true, compiled, dur)
		if err != nil {
			return nil, fmt.Errorf("%s write: %w", e.name, err)
		}
		results[e.name] = cell{read: read, write: write}
	}

	id, title := "fig5a", "Performance of inlined (interpreted) queries"
	expected := "HiEngine vs DBMS-T / MySQL: writes 3.6x / 7.5-8.4x; reads 1.6x / 4.2-10.8x"
	if compiled {
		id, title = "fig5b", "Performance of stored procedures (compiled execution)"
		expected = "HiEngine vs DBMS-T / MySQL: writes 3-5x / 8-16x; reads 2-3x / 7-19x"
	}
	r := &Report{
		ID: id, Title: title, Expected: expected,
		Header: []string{"engine", "read-only TPS", "write-only TPS",
			"read vs MySQL", "write vs MySQL", "read vs DBMS-T", "write vs DBMS-T"},
	}
	my := results["MySQL"]
	dt := results["DBMS-T"]
	for _, e := range engines {
		c := results[e.name]
		r.Rows = append(r.Rows, []string{
			e.name, f0(c.read), f0(c.write),
			ratio(c.read, my.read), ratio(c.write, my.write),
			ratio(c.read, dt.read), ratio(c.write, dt.write),
		})
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("%d threads, %d-query transactions, %d rows, cloud latency profile (compute PM append 1us, cross-layer RTT 20us, SSD write 80us)",
			threads, queries, size))
	if compiled {
		// The 1-query "simple transaction" data point and the
		// compiled-vs-interpreted factor.
		he := engines[0]
		simple, err := fig5Run(he.front, size, threads, 1, true, true, dur)
		if err != nil {
			return nil, err
		}
		interp, err := fig5Run(he.front, size, threads, 1, true, false, dur)
		if err != nil {
			return nil, err
		}
		r.Notes = append(r.Notes, fmt.Sprintf(
			"HiEngine 1-query write txns: compiled %.0f TPS vs interpreted %.0f TPS (%s; paper: compiled ~2x prepare+execute, up to ~1M TPS on 128 ARM cores)",
			simple, interp, ratio(simple, interp)))
	}
	if o.Stats {
		r.attachStats(heReg)
	}
	return r, nil
}

// Fig5a regenerates Figure 5(a).
func Fig5a(o Options) (*Report, error) { return fig5(o, false) }

// Fig5b regenerates Figure 5(b).
func Fig5b(o Options) (*Report, error) { return fig5(o, true) }
