package bench

import (
	"fmt"
	"time"

	"hiengine/internal/core"
	"hiengine/internal/delay"
	"hiengine/internal/srss"
)

// Ablations measures the design decisions DESIGN.md calls out, as wall-time
// per operation (the same measurements exist as testing.B benchmarks in the
// repository root; this runner makes them part of the hibench report set).
func Ablations(o Options) (*Report, error) {
	iters := 2000
	if o.Quick {
		iters = 300
	}
	r := &Report{
		ID:       "ablations",
		Title:    "Design-decision ablations (see DESIGN.md)",
		Expected: "compute-side commit ~10x cheaper than storage-side; pipelining ~2x; group commit amortizes appends; dataless checkpoints ~10x cheaper than full-data",
		Header:   []string{"ablation", "variant", "per-op"},
	}

	reg := o.statsReg("ablations:hiengine")
	newEngine := func(tier srss.Tier, batch int) (*core.Engine, *core.Table, error) {
		e, err := core.Open(core.Config{
			Service:          srss.New(srss.Config{Model: delay.CloudProfile()}),
			Workers:          8,
			LogTier:          tier,
			GroupCommitBatch: batch,
			Obs:              reg,
		})
		if err != nil {
			return nil, nil, err
		}
		tbl, err := e.CreateTable(&core.Schema{
			Name:    "t",
			Columns: []core.Column{{Name: "id", Kind: core.KindInt}, {Name: "v", Kind: core.KindString}},
			Indexes: []core.IndexDef{{Name: "pk", Columns: []int{0}, Unique: true}},
		})
		if err != nil {
			e.Close()
			return nil, nil, err
		}
		return e, tbl, nil
	}

	// Commit side (the paper's core claim).
	for _, c := range []struct {
		name string
		tier srss.Tier
	}{{"compute-side", srss.TierCompute}, {"storage-side", srss.TierStorage}} {
		o.progress("ablations: commit-side %s", c.name)
		e, tbl, err := newEngine(c.tier, 64)
		if err != nil {
			return nil, err
		}
		d, err := insertLoop(e, tbl, iters, false)
		e.Close()
		if err != nil {
			return nil, err
		}
		r.Rows = append(r.Rows, []string{"commit persistence", c.name, d.Round(time.Microsecond).String()})
	}

	// Pipelining.
	for _, pipeline := range []bool{false, true} {
		name := "sync"
		if pipeline {
			name = "pipelined"
		}
		o.progress("ablations: pipeline %s", name)
		e, tbl, err := newEngine(srss.TierCompute, 64)
		if err != nil {
			return nil, err
		}
		d, err := insertLoop(e, tbl, iters, pipeline)
		e.Close()
		if err != nil {
			return nil, err
		}
		r.Rows = append(r.Rows, []string{"commit pipelining", name, d.Round(time.Microsecond).String()})
	}

	// Group commit batch size (single stream, pipelined).
	for _, batch := range []int{1, 64} {
		o.progress("ablations: group commit batch %d", batch)
		e, tbl, err := newEngine(srss.TierCompute, batch)
		if err != nil {
			return nil, err
		}
		d, err := insertLoop(e, tbl, iters, true)
		e.Close()
		if err != nil {
			return nil, err
		}
		r.Rows = append(r.Rows, []string{"group commit", fmt.Sprintf("batch-%d", batch), d.Round(time.Microsecond).String()})
	}

	// Dataless vs full-data checkpoint.
	{
		e, tbl, err := newEngine(srss.TierCompute, 64)
		if err != nil {
			return nil, err
		}
		rows := 10000
		if o.Quick {
			rows = 2000
		}
		o.progress("ablations: checkpoint (loading %d rows)", rows)
		for i := 0; i < rows; i++ {
			tx, _ := e.Begin(0)
			if _, err := tx.Insert(tbl, core.Row{core.I(int64(i)), core.S("payload-payload-payload")}); err != nil {
				return nil, err
			}
			if err := tx.Commit(); err != nil {
				return nil, err
			}
		}
		start := time.Now()
		if _, err := e.Checkpoint(); err != nil {
			return nil, err
		}
		dataless := time.Since(start)
		// Full-data equivalent: write every live payload.
		start = time.Now()
		plog, err := e.Service().Create(srss.TierCompute)
		if err != nil {
			return nil, err
		}
		tx, _ := e.Begin(1)
		buf := make([]byte, 0, 64<<10)
		if err := tx.ScanKey(tbl, 0, nil, nil, func(_ core.RID, row core.Row) bool {
			buf = core.EncodeRow(buf, row)
			if len(buf) >= 64<<10 {
				plog.Append(buf)
				buf = buf[:0]
			}
			return true
		}); err != nil {
			return nil, err
		}
		if len(buf) > 0 {
			plog.Append(buf)
		}
		tx.Commit()
		fulldata := time.Since(start)
		e.Close()
		r.Rows = append(r.Rows, []string{"checkpoint", "dataless (PIA only)", dataless.Round(time.Microsecond).String()})
		r.Rows = append(r.Rows, []string{"checkpoint", "full-data", fulldata.Round(time.Microsecond).String()})
		r.Notes = append(r.Notes, fmt.Sprintf("checkpoint table had %d rows; full-data/dataless = %s", rows, ratio(float64(fulldata), float64(dataless))))
	}
	r.attachStats(reg) // aggregated across the ablation engines
	return r, nil
}

// insertLoop times n single-row insert transactions, optionally pipelining
// the durability wait through a depth-8 window.
func insertLoop(e *core.Engine, tbl *core.Table, n int, pipeline bool) (time.Duration, error) {
	window := make(chan struct{}, 8)
	start := time.Now()
	for i := 0; i < n; i++ {
		tx, err := e.Begin(0)
		if err != nil {
			return 0, err
		}
		if _, err := tx.Insert(tbl, core.Row{core.I(int64(i)), core.S("v")}); err != nil {
			return 0, err
		}
		if pipeline {
			window <- struct{}{}
			if err := tx.CommitAsync(func(error) { <-window }); err != nil {
				return 0, err
			}
		} else if err := tx.Commit(); err != nil {
			return 0, err
		}
	}
	for i := 0; i < cap(window); i++ {
		window <- struct{}{}
	}
	return time.Since(start) / time.Duration(n), nil
}
