//go:build race

package bench

// raceEnabled reports whether the race detector is active. Performance-shape
// assertions are skipped under the race detector: its instrumentation
// multiplies Go-level CPU costs, swamping the modeled hardware latencies the
// comparisons are built on. The experiment pipelines still run for
// correctness coverage.
const raceEnabled = true
