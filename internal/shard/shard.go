// Package shard adds horizontal scale-out to the single-node engine: a
// static hash-partitioned shard map routes each primary key to the node
// that owns it, single-shard transactions run exactly like unsharded ones,
// and cross-shard transactions commit atomically through presumed-abort
// two-phase commit (the participant side lives in internal/core; this
// package is the coordinator).
//
// The topology is deliberately static (the paper's HiEngine is a
// single-node engine; sharding here is the deployment layer above it): a
// versioned shard-id -> address table, persisted in each node's manifest
// and served to clients over OpShardMap for self-bootstrap. There is no
// rebalancing; changing the map is a redeploy.
//
// Commit protocol. A distributed transaction's global id (gtid) names a
// home shard -- the first shard the transaction wrote on. Phase one
// prepares every participant in parallel (each logs its whole write set in
// one durable OpPrepare record and keeps the write locks). Phase two
// writes the commit decision at the home shard first; that decision
// record's durability IS the commit point -- only after it is the client
// acknowledged, and only then are the remaining participants told. Under
// presumed abort this is crash-safe in every window: a coordinator that
// dies before the home decision leaves participants in-doubt, and since
// the home has no durable decision, no client was acknowledged and
// recovery aborts everywhere; a coordinator that dies after it leaves the
// home committed, and recovery reads the home's status and completes the
// commit fan-out.
package shard

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"hiengine/internal/chaos"
	"hiengine/internal/wire"
)

// Coordinator-side chaos injection sites: the two crash windows of phase
// two. Together with the participant sites (core.prepare.log,
// core.decide.log) and the server ack site (server.2pc.ack) they cover
// every arrow of the 2PC diagram.
const (
	// SiteCoordDecide fires after all participants voted yes, before the
	// home-shard decision is written: a crash here leaves every
	// participant in-doubt with no commit point -- recovery must abort.
	SiteCoordDecide = "shard.coord.decide"
	// SiteCoordFanout fires after the home decision is durable, before
	// the remaining participants are told: a crash here leaves the
	// transaction committed with stragglers in-doubt -- recovery must
	// complete the commit.
	SiteCoordFanout = "shard.coord.fanout"
)

func init() {
	chaos.RegisterSite(SiteCoordDecide, "crash the coordinator after the votes, before the commit point")
	chaos.RegisterSite(SiteCoordFanout, "crash the coordinator after the commit point, before the fan-out")
}

// ErrNoCommitPoint: the home shard of a cross-shard transaction voted
// read-only (its writes matched nothing), so no durable decision record is
// possible there and presumed abort forces the whole transaction down.
// Retrying re-routes with a fresh home and normally succeeds.
var ErrNoCommitPoint = errors.New("shard: home shard has no writes to anchor the commit decision")

// Map is the cluster topology: shard id -> node address, with the owning
// hash function. It wraps the wire form so the same bytes serve the
// manifest record, the OpShardMap body, and the client bootstrap.
type Map struct {
	wire.ShardMap
}

// NewMap builds a version-stamped map over addrs (index = shard id).
func NewMap(version uint64, addrs []string) (*Map, error) {
	if len(addrs) == 0 {
		return nil, errors.New("shard: empty address list")
	}
	return &Map{wire.ShardMap{Version: version, Addrs: addrs}}, nil
}

// DecodeMap parses a map from its wire/manifest encoding.
func DecodeMap(b []byte) (*Map, error) {
	m, err := wire.DecodeShardMap(b)
	if err != nil {
		return nil, err
	}
	return &Map{*m}, nil
}

// Encode renders the map in its wire/manifest form.
func (m *Map) Encode() []byte { return wire.EncodeShardMap(&m.ShardMap) }

// N is the shard count.
func (m *Map) N() int { return len(m.Addrs) }

// Addr returns the node serving shard id.
func (m *Map) Addr(id uint32) string { return m.Addrs[id] }

// ShardOf routes a key's byte form: FNV-1a over the bytes, mod the shard
// count. The hash is part of the persisted contract -- every client and
// every node must place a key identically, forever.
func (m *Map) ShardOf(key []byte) uint32 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	return uint32(h % uint64(len(m.Addrs)))
}

// ShardOfInt routes an integer primary key (8-byte big-endian form).
func (m *Map) ShardOfInt(k int64) uint32 {
	var b [8]byte
	u := uint64(k)
	for i := 7; i >= 0; i-- {
		b[i] = byte(u)
		u >>= 8
	}
	return m.ShardOf(b[:])
}

// NewGTID builds a global transaction id naming its home shard (the commit
// point), the coordinator's identity seed, and a per-coordinator sequence
// number: "h<home>.<seed>.<seq>". The home is recoverable from the string
// alone -- a resolver holding only the gtid knows whom to ask for the
// authoritative outcome.
func NewGTID(home uint32, seed, seq uint64) string {
	return fmt.Sprintf("h%d.%x.%d", home, seed, seq)
}

// HomeShard extracts the home shard id from a gtid.
func HomeShard(gtid string) (uint32, error) {
	if !strings.HasPrefix(gtid, "h") {
		return 0, fmt.Errorf("shard: malformed gtid %q", gtid)
	}
	dot := strings.IndexByte(gtid, '.')
	if dot < 2 {
		return 0, fmt.Errorf("shard: malformed gtid %q", gtid)
	}
	id, err := strconv.ParseUint(gtid[1:dot], 10, 32)
	if err != nil {
		return 0, fmt.Errorf("shard: malformed gtid %q: %v", gtid, err)
	}
	return uint32(id), nil
}
