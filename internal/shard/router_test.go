package shard

import (
	"errors"
	"net"
	"strings"
	"testing"

	"hiengine/internal/chaos"
	"hiengine/internal/client"
	"hiengine/internal/core"
	"hiengine/internal/engineapi"
	"hiengine/internal/wire"
)

func TestMapAndGTID(t *testing.T) {
	m, err := NewMap(3, []string{"a:1", "b:2", "c:3"})
	if err != nil {
		t.Fatal(err)
	}
	// Placement is deterministic and total.
	for k := int64(0); k < 1000; k++ {
		id := m.ShardOfInt(k)
		if id != m.ShardOfInt(k) || int(id) >= m.N() {
			t.Fatalf("unstable or out-of-range placement for %d: %d", k, id)
		}
	}
	// Roughly balanced (FNV over 8-byte keys: no shard should be empty or
	// hold everything over 1000 keys).
	counts := make([]int, m.N())
	for k := int64(0); k < 1000; k++ {
		counts[m.ShardOfInt(k)]++
	}
	for id, n := range counts {
		if n < 100 {
			t.Fatalf("shard %d holds only %d/1000 keys: %v", id, n, counts)
		}
	}
	// The map round-trips through its wire/manifest encoding.
	m2, err := DecodeMap(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if m2.Version != 3 || m2.N() != 3 || m2.Addr(1) != "b:2" {
		t.Fatalf("map round-trip: %+v", m2)
	}
	// GTIDs name their home shard.
	g := NewGTID(2, 0xabc, 7)
	home, err := HomeShard(g)
	if err != nil || home != 2 {
		t.Fatalf("HomeShard(%q) = %d, %v", g, home, err)
	}
	for _, bad := range []string{"", "x1.2.3", "h.1.2", "hx.1.2"} {
		if _, err := HomeShard(bad); err == nil {
			t.Fatalf("HomeShard(%q) accepted", bad)
		}
	}
}

func TestSingleShardAndCrossShard(t *testing.T) {
	c := newCluster(t, 3, 42)
	keys := c.keysOnDistinctShards(1, 3)
	c.createBench(t, keys, 100)
	r := c.router(t, nil, nil)

	// Single-shard autocommit routes to the owner; every shard sees only
	// its own keys.
	for _, k := range keys {
		if v, ok := readVal(t, r, k); !ok || v != 100 {
			t.Fatalf("key %d: %d %v", k, v, ok)
		}
		owner := c.m.ShardOfInt(k)
		for _, n := range c.nodes {
			cl := c.client(t, n.id, nil)
			res, err := cl.Exec("SELECT val FROM bench WHERE id = ?", core.I(k))
			if err != nil {
				t.Fatal(err)
			}
			if got, want := len(res.Rows) == 1, n.id == owner; got != want {
				t.Fatalf("key %d on shard %d: present=%v want %v", k, n.id, got, want)
			}
		}
	}

	// A single-shard transaction takes the ordinary commit path.
	tx := r.Begin()
	if _, err := tx.Exec(keys[0], "UPDATE bench SET val = ? WHERE id = ?", core.I(110), core.I(keys[0])); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if tx.GTID() != "" {
		t.Fatalf("single-shard commit minted a gtid: %q", tx.GTID())
	}
	if v, _ := readVal(t, r, keys[0]); v != 110 {
		t.Fatalf("single-shard commit lost: %d", v)
	}

	// A cross-shard transfer commits atomically via 2PC.
	tx = r.Begin()
	mustTx := func(key int64, val int64) {
		t.Helper()
		if _, err := tx.Exec(key, "UPDATE bench SET val = ? WHERE id = ?", core.I(val), core.I(key)); err != nil {
			t.Fatal(err)
		}
	}
	mustTx(keys[0], 80)
	mustTx(keys[1], 130)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if tx.GTID() == "" {
		t.Fatal("cross-shard commit took the non-2PC path")
	}
	if home, err := HomeShard(tx.GTID()); err != nil || home != c.m.ShardOfInt(keys[0]) {
		t.Fatalf("gtid home %q: %d, %v", tx.GTID(), home, err)
	}
	if v, _ := readVal(t, r, keys[0]); v != 80 {
		t.Fatalf("transfer debit lost: %d", v)
	}
	if v, _ := readVal(t, r, keys[1]); v != 130 {
		t.Fatalf("transfer credit lost: %d", v)
	}
	// The coordinator confirmed the commit durable at every participant
	// and pruned the gtid cluster-wide (OpTxnForget), so the home answers
	// TxnUnknown -- nobody will ever ask about this transaction again.
	cl := c.client(t, c.m.ShardOfInt(keys[0]), nil)
	s, err := cl.Session()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	st, csn, err := s.TxnStatus(tx.GTID())
	if err != nil || st != wire.TxnUnknown || csn != 0 {
		t.Fatalf("home status after confirmed commit: %d csn=%d err=%v", st, csn, err)
	}

	// Rollback undoes everything everywhere.
	tx = r.Begin()
	mustTx(keys[0], 1)
	mustTx(keys[2], 2)
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if v, _ := readVal(t, r, keys[0]); v != 80 {
		t.Fatalf("rollback leaked: %d", v)
	}
	if v, _ := readVal(t, r, keys[2]); v != 100 {
		t.Fatalf("rollback leaked: %d", v)
	}
}

// TestVoteNoAbortsEverywhere: a participant that fails phase one ("no"
// vote) forces the whole transaction down; prepared siblings abort and no
// shard applies anything.
func TestVoteNoAbortsEverywhere(t *testing.T) {
	c := newCluster(t, 2, 7)
	keys := c.keysOnDistinctShards(1, 2)
	c.createBench(t, keys, 100)
	r := c.router(t, nil, nil)

	// The shard owning keys[1] refuses its next prepare.
	victim := c.nodes[c.m.ShardOfInt(keys[1])]
	victim.arm(chaos.Rule{Site: core.SitePrepareLog, Action: chaos.Fault, OnHit: 1})

	tx := r.Begin()
	for i, k := range keys {
		if _, err := tx.Exec(k, "UPDATE bench SET val = ? WHERE id = ?", core.I(int64(200+i)), core.I(k)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err == nil {
		t.Fatal("commit succeeded past a failed vote")
	}
	for _, k := range keys {
		if v, _ := readVal(t, r, k); v != 100 {
			t.Fatalf("failed-vote txn leaked on key %d: %d", k, v)
		}
	}
	// Nothing stays in-doubt: the prepared sibling was told to abort.
	for _, n := range c.nodes {
		if got := n.engine.InDoubt(); len(got) != 0 {
			t.Fatalf("shard %d in-doubt after failed vote: %v", n.id, got)
		}
	}
}

// TestErrorIdentityThroughRouter: the single-shard routed path preserves
// error identity and wire-code classification exactly as the direct client
// path does (satellite: routing must not launder errors).
func TestErrorIdentityThroughRouter(t *testing.T) {
	t.Run("stale_epoch", func(t *testing.T) {
		c := newCluster(t, 2, 11)
		keys := c.keysOnDistinctShards(1, 2)
		c.createBench(t, keys, 100)
		r := c.router(t, nil, nil)
		// Fence the owner of keys[0]: a newer lineage claimed primacy.
		owner := c.nodes[c.m.ShardOfInt(keys[0])]
		owner.engine.ObserveEpoch(owner.engine.Epoch() + 1)
		_, err := r.Exec(keys[0], "UPDATE bench SET val = 1 WHERE id = ?", core.I(keys[0]))
		if !errors.Is(err, core.ErrStaleEpoch) {
			t.Fatalf("fenced write through router: %v", err)
		}
		var we *wire.Error
		if !errors.As(err, &we) || we.Code != wire.CodeStaleEpoch {
			t.Fatalf("fenced write code: %v", err)
		}
	})

	t.Run("busy", func(t *testing.T) {
		c := newCluster(t, 2, 12)
		keys := c.keysOnDistinctShards(1, 2)
		c.createBench(t, keys, 100)
		owner := c.m.ShardOfInt(keys[0])
		// Pin every worker slot on the owner with open transactions.
		cl := c.client(t, owner, func(o *client.Options) { o.PoolSize = 16 })
		for i := 0; i < c.nodes[owner].engine.Workers(); i++ {
			s, err := cl.Session()
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			if err := s.Begin(); err != nil {
				t.Fatal(err)
			}
		}
		r := c.router(t, nil, func(o *client.Options) { o.MaxRetries = 1 })
		_, err := r.Exec(keys[0], "UPDATE bench SET val = 1 WHERE id = ?", core.I(keys[0]))
		if !errors.Is(err, wire.ErrServerBusy) {
			t.Fatalf("slot-starved write through router: %v", err)
		}
		var we *wire.Error
		if !errors.As(err, &we) || we.Code != wire.CodeBusy {
			t.Fatalf("slot-starved code: %v", err)
		}
	})

	t.Run("no_primary", func(t *testing.T) {
		c := newCluster(t, 2, 13)
		keys := c.keysOnDistinctShards(1, 2)
		c.createBench(t, keys, 100)
		// A dead candidate address for failover to probe.
		dead, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		deadAddr := dead.Addr().String()
		dead.Close()
		r := c.router(t, nil, func(o *client.Options) {
			o.ReplicaAddrs = []string{deadAddr}
			o.FailoverRetries = 1
			o.MaxRetries = 1
		})
		// Warm the route, then kill the owner.
		if _, err := r.Exec(keys[0], "UPDATE bench SET val = 1 WHERE id = ?", core.I(keys[0])); err != nil {
			t.Fatal(err)
		}
		c.nodes[c.m.ShardOfInt(keys[0])].crash()
		_, err = r.Exec(keys[0], "UPDATE bench SET val = 2 WHERE id = ?", core.I(keys[0]))
		if !errors.Is(err, client.ErrNoPrimary) {
			t.Fatalf("dead-shard write through router: %v", err)
		}
		// The sibling shard keeps serving through the same router.
		if _, err := r.Exec(keys[1], "UPDATE bench SET val = 3 WHERE id = ?", core.I(keys[1])); err != nil {
			t.Fatalf("healthy shard collateral damage: %v", err)
		}
	})

	t.Run("conflict", func(t *testing.T) {
		c := newCluster(t, 2, 14)
		keys := c.keysOnDistinctShards(1, 2)
		c.createBench(t, keys, 100)
		r := c.router(t, nil, nil)
		// Hold an uncommitted write on keys[0] via a direct session.
		cl := c.client(t, c.m.ShardOfInt(keys[0]), nil)
		s, err := cl.Session()
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		if err := s.Begin(); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Exec("UPDATE bench SET val = 9 WHERE id = ?", core.I(keys[0])); err != nil {
			t.Fatal(err)
		}
		// The distributed transaction hits the lock: same conflict
		// identity as in-process.
		tx := r.Begin()
		_, err = tx.Exec(keys[0], "UPDATE bench SET val = 8 WHERE id = ?", core.I(keys[0]))
		if !errors.Is(err, engineapi.ErrConflict) {
			t.Fatalf("conflicting write through txn router: %v", err)
		}
		var we *wire.Error
		if !errors.As(err, &we) || we.Code != wire.CodeConflict {
			t.Fatalf("conflict code: %v", err)
		}
		tx.Rollback()
	})
}

// TestWrongShardDetection: a shard-id assertion against the wrong node is
// the typed CodeWrongShard refusal, and Bootstrap builds a working router
// from any single member address.
func TestWrongShardDetection(t *testing.T) {
	c := newCluster(t, 3, 21)
	keys := c.keysOnDistinctShards(1, 3)
	c.createBench(t, keys, 100)

	cl := c.client(t, 1, nil)
	s, err := cl.Session()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Matching assertion succeeds and returns the map.
	m, err := s.ShardMap(true, 1)
	if err != nil || m.SelfID != 1 || len(m.Addrs) != 3 {
		t.Fatalf("self map: %+v, %v", m, err)
	}
	// Mismatched assertion is the typed refusal.
	if _, err := s.ShardMap(true, 2); !errors.Is(err, wire.ErrWrongShard) {
		t.Fatalf("wrong-shard assertion: %v", err)
	} else {
		var we *wire.Error
		if !errors.As(err, &we) || we.Code != wire.CodeWrongShard {
			t.Fatalf("wrong-shard code: %v", err)
		}
	}

	// Bootstrap from one member, then read a key through the derived map.
	r, err := Bootstrap(c.nodes[2].addr, client.Options{Addr: "x"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Map().N() != 3 {
		t.Fatalf("bootstrapped map: %+v", r.Map())
	}
	if v, ok := readVal(t, r, keys[1]); !ok || v != 100 {
		t.Fatalf("bootstrapped read: %d %v", v, ok)
	}
}

// TestRecoverAfterCoordinatorCrash covers both phase-two crash windows:
// before the home decision (recovery must abort everywhere) and after it
// (recovery must complete the commit fan-out).
func TestRecoverAfterCoordinatorCrash(t *testing.T) {
	for _, window := range []struct {
		site       string
		wantCommit bool
	}{
		{SiteCoordDecide, false},
		{SiteCoordFanout, true},
	} {
		t.Run(window.site, func(t *testing.T) {
			c := newCluster(t, 2, 31)
			keys := c.keysOnDistinctShards(1, 2)
			c.createBench(t, keys, 100)

			coordCh := chaos.New(99)
			coordCh.Arm(chaos.Rule{Site: window.site, Action: chaos.Fault, OnHit: 1})
			r := c.router(t, coordCh, nil)

			tx := r.Begin()
			for i, k := range keys {
				if _, err := tx.Exec(k, "UPDATE bench SET val = ? WHERE id = ?", core.I(int64(200+i)), core.I(k)); err != nil {
					t.Fatal(err)
				}
			}
			err := tx.Commit()
			if err == nil {
				t.Fatal("commit survived an injected coordinator crash")
			}
			if !strings.Contains(err.Error(), tx.GTID()) {
				t.Fatalf("crash error does not name the gtid: %v", err)
			}

			// Some participant is now in-doubt, holding its write locks.
			total := 0
			for _, n := range c.nodes {
				total += len(n.engine.InDoubt())
			}
			if total == 0 {
				t.Fatal("no participant left in-doubt by the crash")
			}

			// A fresh resolver (the restarted coordinator) repairs the
			// cluster from the shards' own in-doubt lists.
			r2 := c.router(t, nil, nil)
			rep, err := r2.Recover()
			if err != nil {
				t.Fatal(err)
			}
			if rep.InDoubt == 0 {
				t.Fatal("resolver saw no in-doubt transactions")
			}
			if window.wantCommit && rep.Committed == 0 {
				t.Fatalf("post-commit-point crash resolved as abort: %+v", rep)
			}
			if !window.wantCommit && rep.Aborted == 0 {
				t.Fatalf("pre-commit-point crash resolved as commit: %+v", rep)
			}
			for _, n := range c.nodes {
				if got := n.engine.InDoubt(); len(got) != 0 {
					t.Fatalf("shard %d still in-doubt: %v", n.id, got)
				}
			}
			// Atomicity: both updates or neither.
			v0, _ := readVal(t, r2, keys[0])
			v1, _ := readVal(t, r2, keys[1])
			if window.wantCommit {
				if v0 != 200 || v1 != 201 {
					t.Fatalf("committed transfer incomplete: %d %d", v0, v1)
				}
			} else if v0 != 100 || v1 != 100 {
				t.Fatalf("aborted transfer leaked: %d %d", v0, v1)
			}
		})
	}
}

// TestRecoverAcrossParticipantRestart: a participant that crashes between
// prepare and decision restarts with the transaction in-doubt (write locks
// re-held) and still resolves.
func TestRecoverAcrossParticipantRestart(t *testing.T) {
	c := newCluster(t, 2, 41)
	keys := c.keysOnDistinctShards(1, 2)
	c.createBench(t, keys, 100)

	coordCh := chaos.New(77)
	coordCh.Arm(chaos.Rule{Site: SiteCoordFanout, Action: chaos.Fault, OnHit: 1})
	r := c.router(t, coordCh, nil)

	tx := r.Begin()
	for i, k := range keys {
		if _, err := tx.Exec(k, "UPDATE bench SET val = ? WHERE id = ?", core.I(int64(300+i)), core.I(k)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err == nil {
		t.Fatal("commit survived the fan-out crash")
	}

	// Crash and restart the non-home participant while it is in-doubt.
	home, err := HomeShard(tx.GTID())
	if err != nil {
		t.Fatal(err)
	}
	other := c.nodes[1-home]
	if got := other.engine.InDoubt(); len(got) != 1 {
		t.Fatalf("non-home in-doubt before crash: %v", got)
	}
	other.crash()
	stats := other.restart(t)
	if stats.InDoubt != 1 {
		t.Fatalf("restart reconstructed %d in-doubt txns, want 1", stats.InDoubt)
	}

	r2 := c.router(t, nil, nil)
	rep, err := r2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Committed != 1 {
		t.Fatalf("recovery report: %+v", rep)
	}
	v0, _ := readVal(t, r2, keys[0])
	v1, _ := readVal(t, r2, keys[1])
	if v0 != 300 || v1 != 301 {
		t.Fatalf("committed transfer incomplete after restart: %d %d", v0, v1)
	}
}

// TestResolverFencesHomeFirst: a coordinator that dies mid-prepare can leave
// a participant holding prepared writes for a gtid the home shard never saw.
// The resolver presumes abort -- but before aborting anyone it must install a
// durable abort fence AT THE HOME, so a still-live (zombie) coordinator that
// wakes up and drives its commit point cannot commit a transaction whose
// other participants the sweep just aborted (a permanent atomicity split).
func TestResolverFencesHomeFirst(t *testing.T) {
	c := newCluster(t, 2, 61)
	keys := c.keysOnDistinctShards(1, 2)
	c.createBench(t, keys, 100)

	home := c.m.ShardOfInt(keys[0])
	part := c.m.ShardOfInt(keys[1])
	gtid := NewGTID(home, 0xfe, 1)

	// Hand-drive the dead coordinator's prepare on the participant only.
	cl := c.client(t, part, nil)
	s, err := cl.Session()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("UPDATE bench SET val = 999 WHERE id = ?", core.I(keys[1])); err != nil {
		t.Fatal(err)
	}
	if vote, err := s.TxnPrepare(gtid); err != nil || vote != wire.PreparedWrites {
		t.Fatalf("prepare on participant: vote %d err %v", vote, err)
	}

	// The sweep finds the orphan, reads TxnUnknown at the home, presumes
	// abort, and resolves it.
	r := c.router(t, nil, nil)
	rep, err := r.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rep.InDoubt != 1 || rep.Aborted != 1 {
		t.Fatalf("recovery report: %+v", rep)
	}
	if v, _ := readVal(t, r, keys[1]); v != 100 {
		t.Fatalf("presume-aborted write leaked: %d", v)
	}

	// The fence: the home durably remembers the abort rather than staying
	// TxnUnknown...
	hcl := c.client(t, home, nil)
	hs, err := hcl.Session()
	if err != nil {
		t.Fatal(err)
	}
	defer hs.Close()
	st, _, err := hs.TxnStatus(gtid)
	if err != nil {
		t.Fatal(err)
	}
	if st != wire.TxnAborted {
		t.Fatalf("home status after sweep: %d, want durable abort fence", st)
	}
	// ...so the zombie coordinator's commit point fails at the home...
	if _, err := hs.TxnDecide(gtid, true); err == nil {
		t.Fatal("late commit decision slipped past the abort fence")
	}
	// ...and so does a late prepare reopening the swept gtid.
	if err := hs.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := hs.Exec("UPDATE bench SET val = 5 WHERE id = ?", core.I(keys[0])); err != nil {
		t.Fatal(err)
	}
	if _, err := hs.TxnPrepare(gtid); err == nil {
		t.Fatal("late prepare slipped past the abort fence")
	}
}

// TestCommitForgetsEverywhere: after a clean distributed commit the live
// coordinator confirms the decision durable at every participant and prunes
// the 2PC bookkeeping cluster-wide -- every shard answers TxnUnknown, so the
// metadata (and the pinned log segments behind it) cannot accrete forever.
func TestCommitForgetsEverywhere(t *testing.T) {
	c := newCluster(t, 2, 62)
	keys := c.keysOnDistinctShards(1, 2)
	c.createBench(t, keys, 100)
	r := c.router(t, nil, nil)

	tx := r.Begin()
	for i, k := range keys {
		if _, err := tx.Exec(k, "UPDATE bench SET val = ? WHERE id = ?", core.I(int64(500+i)), core.I(k)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		if v, _ := readVal(t, r, k); v != int64(500+i) {
			t.Fatalf("committed value on key %d: %d", k, v)
		}
	}
	for _, n := range c.nodes {
		if st, _ := n.engine.TxnStatus(tx.GTID()); st != core.TxnUnknown {
			t.Fatalf("shard %d retains 2PC state after confirmed commit: %v", n.id, st)
		}
	}
}
