package shard

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hiengine/internal/chaos"
	"hiengine/internal/core"
	"hiengine/internal/server"
	"hiengine/internal/wire"
)

// TestTwoPCTorture is the seeded 2PC chaos acceptance test: concurrent
// cross-shard transfers while participant nodes crash at the nastiest
// points of the protocol (mid decision-log write, after-durable-but-before
// -ack) and the coordinator loses its two phase-two windows. Crashed nodes
// restart from durable state mid-load; afterwards a resolver sweeps the
// cluster dry. The oracle: every writer stamps BOTH keys of its pair with
// the same value per transaction, so any divergence between the two keys
// of a pair is a cross-shard atomicity violation, and the surviving stamp
// must be exactly the newest transaction that actually committed
// (acked, or unknown-outcome later resolved committed by the home shard).
func TestTwoPCTorture(t *testing.T) {
	writers, rounds := 6, 40
	if testing.Short() {
		writers, rounds = 3, 12
	}
	c := newCluster(t, 3, 4242)

	// Each writer owns one cross-shard key pair.
	type pair struct{ a, b int64 }
	pairs := make([]pair, writers)
	next := int64(1)
	for w := range pairs {
		ks := c.keysOnDistinctShards(next, 2)
		pairs[w] = pair{ks[0], ks[1]}
		next = ks[1] + 1
	}
	var keys []int64
	for _, p := range pairs {
		keys = append(keys, p.a, p.b)
	}
	c.createBench(t, keys, 0) // stamp 0 = "no transaction ever applied"

	// Participant chaos: one crash apiece, at three distinct protocol
	// arrows. Crash latches the node's whole chaos engine, so everything on
	// that node fails until the monitor restarts it -- a process death.
	c.nodes[0].arm(chaos.Rule{Site: core.SiteDecideLog, Action: chaos.Crash, OnHit: 2})
	c.nodes[1].arm(chaos.Rule{Site: server.Site2PCAck, Action: chaos.Crash, OnHit: 2})
	c.nodes[2].arm(chaos.Rule{Site: core.SitePrepareLog, Action: chaos.Crash, OnHit: 3})

	// Coordinator chaos: seeded-random losses of both phase-two windows.
	coordCh := chaos.New(987)
	coordCh.Arm(chaos.Rule{Site: SiteCoordDecide, Action: chaos.Fault, Prob: 0.04, Count: 2})
	coordCh.Arm(chaos.Rule{Site: SiteCoordFanout, Action: chaos.Fault, Prob: 0.04, Count: 2})
	r := c.router(t, coordCh, nil)

	// Crash monitor: notice a latched node, restart it from durable state.
	stopMon := make(chan struct{})
	var monWG sync.WaitGroup
	var restarts atomic.Int64
	monWG.Add(1)
	go func() {
		defer monWG.Done()
		for {
			select {
			case <-stopMon:
				return
			case <-time.After(time.Millisecond):
			}
			for _, n := range c.nodes {
				if n.ch.Crashed() {
					n.crash()
					n.restart(t)
					restarts.Add(1)
				}
			}
		}
	}()

	// Load: each writer transfers stamps onto its own pair, remembering
	// every acked stamp and every unknown-outcome gtid.
	type unknown struct {
		gtid  string
		stamp int64
	}
	type writerLog struct {
		acked    int64 // newest acked stamp (stamps only grow)
		unknowns []unknown
		fails    int
	}
	logs := make([]writerLog, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := pairs[w]
			for i := 1; i <= rounds; i++ {
				stamp := int64(w)*1_000_000 + int64(i)
				tx := r.Begin()
				_, err := tx.Exec(p.a, "UPDATE bench SET val = ? WHERE id = ?", core.I(stamp), core.I(p.a))
				if err == nil {
					_, err = tx.Exec(p.b, "UPDATE bench SET val = ? WHERE id = ?", core.I(stamp), core.I(p.b))
				}
				if err != nil {
					tx.Rollback()
					logs[w].fails++
					time.Sleep(2 * time.Millisecond)
					continue
				}
				switch err := tx.Commit(); {
				case err == nil:
					logs[w].acked = stamp
				case tx.GTID() != "":
					// The commit entered 2PC and died somewhere past
					// prepare: only the home shard knows the outcome.
					logs[w].unknowns = append(logs[w].unknowns, unknown{tx.GTID(), stamp})
					logs[w].fails++
					time.Sleep(2 * time.Millisecond)
				default:
					logs[w].fails++
					time.Sleep(2 * time.Millisecond)
				}
			}
		}(w)
	}
	wg.Wait()
	close(stopMon)
	monWG.Wait()

	// Anyone still latched (crashed after the monitor's last look) restarts
	// now; from here the cluster is healthy but possibly in-doubt.
	for _, n := range c.nodes {
		if n.ch.Crashed() {
			n.crash()
			n.restart(t)
			restarts.Add(1)
		}
	}

	// Resolver passes until the cluster is dry.
	r2 := c.router(t, nil, nil)
	var firstPass RecoveryReport
	for pass := 0; ; pass++ {
		rep, err := r2.Recover()
		if err != nil {
			t.Fatalf("recovery pass %d: %v", pass, err)
		}
		if pass == 0 {
			firstPass = rep
		}
		if rep.InDoubt == 0 {
			break
		}
		if pass > 5 {
			t.Fatalf("cluster not dry after %d passes: %+v", pass, rep)
		}
	}
	for _, n := range c.nodes {
		if got := n.engine.InDoubt(); len(got) != 0 {
			t.Fatalf("shard %d still in-doubt after recovery: %v", n.id, got)
		}
	}

	// Settle every unknown outcome against the home shard's authoritative
	// answer, then check the oracle per pair.
	totalAcked, totalUnknown, resolvedCommit := 0, 0, 0
	for w := range logs {
		expect := logs[w].acked
		for _, u := range logs[w].unknowns {
			totalUnknown++
			home, err := HomeShard(u.gtid)
			if err != nil {
				t.Fatal(err)
			}
			s, err := r2.session(home)
			if err != nil {
				t.Fatal(err)
			}
			st, _, err := s.TxnStatus(u.gtid)
			s.Close()
			if err != nil {
				t.Fatalf("settling %s: %v", u.gtid, err)
			}
			if st == wire.TxnCommitted {
				resolvedCommit++
				if u.stamp > expect {
					expect = u.stamp
				}
			}
		}
		if logs[w].acked > 0 {
			totalAcked++
		}
		p := pairs[w]
		va, _ := readVal(t, r2, p.a)
		vb, _ := readVal(t, r2, p.b)
		if va != vb {
			t.Errorf("ATOMICITY VIOLATION writer %d: key %d=%d key %d=%d", w, p.a, va, p.b, vb)
		}
		if va != expect {
			t.Errorf("writer %d: final stamp %d, want %d (acked %d, %d unknowns)",
				w, va, expect, logs[w].acked, len(logs[w].unknowns))
		}
	}
	t.Logf("torture: %d writers x %d rounds, %d node restarts, first recovery pass %+v, %d unknown outcomes (%d resolved commit)",
		writers, rounds, restarts.Load(), firstPass, totalUnknown, resolvedCommit)
	if restarts.Load() == 0 {
		t.Error("no node ever crashed: the chaos rules did not exercise the protocol")
	}
}
