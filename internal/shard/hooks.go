package shard

import (
	"hiengine/internal/core"
	"hiengine/internal/server"
)

// EngineHooks adapts a core engine's 2PC participant surface onto the wire
// server's TwoPCConfig: hiserver and the in-process test harnesses wire
// their servers through this one adapter so the state mapping lives in
// exactly one place. The core TxnState values are defined to match the
// wire-stable bytes (Unknown=0, InDoubt=1, Committed=2, Aborted=3).
func EngineHooks(e *core.Engine) *server.TwoPCConfig {
	return &server.TwoPCConfig{
		Resolve: e.Resolve,
		Status: func(gtid string) (byte, uint64) {
			st, csn := e.TxnStatus(gtid)
			return byte(st), csn
		},
		InDoubt: e.InDoubt,
		Forget:  e.Forget,
	}
}
