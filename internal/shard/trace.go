// Coordinator-side distributed tracing: the Router stitches the per-hop
// stage blocks collected by a shared client.DistTrace into one tree per
// distributed transaction — coordinator wall time decomposed into the 2PC
// phases (parallel prepare, decide-point durability at the home shard,
// best-effort fan-out), each hop tagged (trace id, hop, shard, opcode)
// with the participant's own stage timings. Assembled trees go to the
// router's tracer sink, whose distributed ring backs /traces?distributed=1.
package shard

import (
	"time"

	"hiengine/internal/client"
	"hiengine/internal/obs"
	"hiengine/internal/wire"
)

// HopTrace is one participant hop of a stitched distributed trace.
type HopTrace struct {
	// Hop is the span id of the participant unit's first request.
	Hop uint32
	// Shard is the answering node's shard id (valid when HasShard).
	Shard    uint32
	HasShard bool
	// Op is the unit's terminal opcode (OpTxnPrepare, OpTxnDecide, ...).
	Op wire.Op
	// Start is the terminal request's send offset from the trace start.
	Start time.Duration
	// RTT is the coordinator-observed terminal round trip.
	RTT time.Duration
	// Info is the participant's stage-timing block.
	Info *wire.TraceInfo
}

// DistTraceTree is one distributed transaction stitched into a tree:
// coordinator wall time, its 2PC phase decomposition, and every
// participant hop with its own stage timings.
type DistTraceTree struct {
	TraceID uint64
	Start   time.Time
	Total   time.Duration
	// Prepare/Decide/Fanout decompose a cross-shard commit's wall time:
	// all zero for single-shard (or non-commit) traces.
	Prepare time.Duration
	Decide  time.Duration
	Fanout  time.Duration
	// Shards counts the distinct shards that reported hops.
	Shards int
	Hops   []HopTrace
}

// Trace turns coordinator-side distributed tracing on or off: while on,
// every transaction (and traced fast-path call) shares one trace id across
// its shards and the router stitches the returned stage blocks into a
// DistTraceTree (see LastDistTrace).
func (r *Router) Trace(on bool) { r.tracing.Store(on) }

// SetTracer attaches the sink that assembled trees are published to (its
// distributed ring backs the admin plane's /traces?distributed=1). Nil
// detaches.
func (r *Router) SetTracer(t *obs.Tracer) {
	if t == nil {
		r.traceSink.Store(nil)
		return
	}
	r.traceSink.Store(t)
}

// LastDistTrace returns the most recently assembled tree (nil before the
// first traced transaction completes).
func (r *Router) LastDistTrace() *DistTraceTree { return r.lastDist.Load() }

// distTrace allocates a fresh distributed trace when tracing is on. The
// id is router-owned: per-shard client sequences would collide across the
// coordinator's clients.
func (r *Router) distTrace() *client.DistTrace {
	if !r.tracing.Load() {
		return nil
	}
	return client.NewDistTrace(r.seed<<32 + r.distSeq.Add(1))
}

// publishDist stitches dt's collected hops into a tree, stores it as the
// router's last trace, and publishes it to the tracer sink (forced: the
// coordinator asked for this trace). Nil-safe on dt; returns the tree.
func (r *Router) publishDist(dt *client.DistTrace, prepare, decide, fanout time.Duration) *DistTraceTree {
	if dt == nil {
		return nil
	}
	tree := &DistTraceTree{
		TraceID: dt.ID(),
		Start:   dt.Start(),
		Total:   dt.Since(),
		Prepare: prepare,
		Decide:  decide,
		Fanout:  fanout,
	}
	shards := make(map[uint32]bool)
	for _, h := range dt.Hops() {
		ht := HopTrace{Hop: h.Hop, Op: h.Op, Start: h.Start, RTT: h.RTT, Info: h.Info}
		if h.Info != nil && h.Info.HasShard {
			ht.Shard, ht.HasShard = h.Info.Shard, true
			shards[h.Info.Shard] = true
		}
		tree.Hops = append(tree.Hops, ht)
	}
	tree.Shards = len(shards)
	r.lastDist.Store(tree)
	if t := r.traceSink.Load(); t != nil {
		t.PublishDistributed(tree.record(), true)
	}
	return tree
}

// record converts the tree into the obs-layer form the tracer's
// distributed ring holds.
func (t *DistTraceTree) record() *obs.DistTraceRecord {
	rec := &obs.DistTraceRecord{
		TraceID:   t.TraceID,
		Start:     t.Start,
		TotalNS:   int64(t.Total),
		PrepareNS: int64(t.Prepare),
		DecideNS:  int64(t.Decide),
		FanoutNS:  int64(t.Fanout),
		Shards:    t.Shards,
	}
	for _, h := range t.Hops {
		hr := obs.DistHopRecord{
			Hop:      h.Hop,
			Shard:    h.Shard,
			HasShard: h.HasShard,
			Op:       h.Op.String(),
			BeginNS:  int64(h.Start),
			RTTNS:    int64(h.RTT),
		}
		if h.Info != nil {
			hr.ServerNS = h.Info.TotalNS
			for _, st := range h.Info.Stages {
				hr.Stages = append(hr.Stages, obs.StageSpan{
					Stage: st.Stage, Name: st.Stage.String(),
					BeginNS: st.BeginNS, DurNS: st.DurNS,
				})
			}
		}
		rec.Hops = append(rec.Hops, hr)
	}
	return rec
}
