package shard

import (
	"net"
	"testing"
	"time"

	"hiengine/internal/adapt"
	"hiengine/internal/chaos"
	"hiengine/internal/client"
	"hiengine/internal/core"
	"hiengine/internal/delay"
	"hiengine/internal/server"
	"hiengine/internal/sqlfront"
	"hiengine/internal/srss"
	"hiengine/internal/wire"
)

// tnode is one shard: engine + frontend + wire server, with its own chaos
// engine (so crashing one node never poisons the others) and a stable
// address that survives restarts (the shard map is static).
type tnode struct {
	id     uint32
	addr   string
	ch     *chaos.Engine
	svc    *srss.Service
	engine *core.Engine
	front  *sqlfront.Frontend
	srv    *server.Server
	mapB   []byte   // this node's SelfID-stamped map encoding
	armed  []string // chaos sites armed via arm(), cleared on restart
}

// arm installs a chaos rule on this node, remembering the site so restart
// can disarm it (the restarted process starts healthy).
func (n *tnode) arm(r chaos.Rule) {
	n.ch.Arm(r)
	n.armed = append(n.armed, r.Site)
}

type cluster struct {
	t     *testing.T
	m     *Map
	nodes []*tnode
}

// newCluster reserves n loopback addresses, builds the static map over
// them, and starts one node per shard.
func newCluster(t *testing.T, n int, seed uint64) *cluster {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	m, err := NewMap(1, addrs)
	if err != nil {
		t.Fatal(err)
	}
	c := &cluster{t: t, m: m}
	for i := range lns {
		nd := &tnode{id: uint32(i), addr: addrs[i], ch: chaos.New(seed + uint64(i)*1000)}
		sm := m.ShardMap
		sm.SelfID = nd.id
		nd.mapB = wire.EncodeShardMap(&sm)
		nd.svc = srss.New(srss.Config{Model: delay.Zero(), Chaos: nd.ch})
		engine, err := core.Open(core.Config{
			Service:     nd.svc,
			Workers:     8,
			SegmentSize: 1 << 20,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := engine.SetShardMap(nd.mapB); err != nil {
			t.Fatal(err)
		}
		nd.engine = engine
		nd.front = sqlfront.NewFrontend("hiengine", adapt.New(engine))
		nd.listen(t, lns[i])
		c.nodes = append(c.nodes, nd)
		t.Cleanup(func() {
			nd.srv.Close()
			nd.engine.Close()
		})
	}
	return c
}

func (n *tnode) listen(t *testing.T, ln net.Listener) {
	t.Helper()
	engine := n.engine
	srv, err := server.New(server.Config{
		Frontend:     n.front,
		WorkerSlots:  engine.Workers(),
		Chaos:        n.ch,
		Epoch:        engine.Epoch,
		ObserveEpoch: engine.ObserveEpoch,
		DrainTimeout: 250 * time.Millisecond,
		SlotWait:     100 * time.Millisecond,
		ShardInfo: func() *wire.ShardMap {
			sm, err := wire.DecodeShardMap(n.mapB)
			if err != nil {
				return nil
			}
			return sm
		},
		TwoPC: EngineHooks(engine),
	})
	if err != nil {
		t.Fatal(err)
	}
	n.srv = srv
	go srv.Serve(ln)
}

// crash simulates a node's process death: the server drops every
// connection and the engine object is discarded. The SRSS service plays
// the durable storage that survives.
func (n *tnode) crash() {
	n.srv.Close()
	n.engine.Close()
}

// restart recovers the node from its durable state and serves again on the
// same address. Chaos is cleared: the restarted process starts healthy.
func (n *tnode) restart(t *testing.T) *core.RecoveryStats {
	t.Helper()
	n.ch.ClearCrash()
	for _, site := range n.armed {
		n.ch.Disarm(site)
	}
	n.armed = nil
	manifest := n.engine.ManifestID()
	e2, stats, err := core.Recover(core.Config{
		Service:     n.svc,
		Workers:     8,
		SegmentSize: 1 << 20,
	}, manifest, core.RecoverOptions{})
	if err != nil {
		t.Fatalf("shard %d restart: %v", n.id, err)
	}
	n.engine = e2
	n.front = sqlfront.NewFrontend("hiengine", adapt.New(e2))
	var schemas []*core.Schema
	for _, name := range e2.Tables() {
		tbl, terr := e2.Table(name)
		if terr != nil {
			continue
		}
		schemas = append(schemas, tbl.Schema)
	}
	if _, err := n.front.AdoptAll("hiengine", schemas); err != nil {
		t.Fatalf("shard %d catalog adopt: %v", n.id, err)
	}
	ln, err := net.Listen("tcp", n.addr)
	if err != nil {
		t.Fatalf("shard %d rebind %s: %v", n.id, n.addr, err)
	}
	n.listen(t, ln)
	t.Cleanup(func() {
		n.srv.Close()
		n.engine.Close()
	})
	return stats
}

// client opens a direct (router-less) client to one shard.
func (c *cluster) client(t *testing.T, id uint32, mutate func(*client.Options)) *client.Client {
	t.Helper()
	opts := client.Options{Addr: c.nodes[id].addr}
	if mutate != nil {
		mutate(&opts)
	}
	cl, err := client.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return cl
}

// router builds a router over the cluster map with a dedicated
// coordinator-side chaos engine.
func (c *cluster) router(t *testing.T, ch *chaos.Engine, mutate func(*client.Options)) *Router {
	t.Helper()
	opts := client.Options{Addr: "unused"}
	if mutate != nil {
		mutate(&opts)
	}
	r := NewRouter(c.m, opts, ch)
	t.Cleanup(r.Close)
	return r
}

// createBench creates the bench table on every shard and seeds each listed
// key with val.
func (c *cluster) createBench(t *testing.T, keys []int64, val int64) {
	t.Helper()
	for _, n := range c.nodes {
		cl := c.client(t, n.id, nil)
		s, err := cl.Session()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Exec("CREATE TABLE bench (id INT, val INT, PRIMARY KEY(id))"); err != nil {
			t.Fatalf("shard %d create: %v", n.id, err)
		}
		s.Close()
	}
	r := c.router(t, nil, nil)
	for _, k := range keys {
		if _, err := r.Exec(k, "INSERT INTO bench VALUES (?, ?)", core.I(k), core.I(val)); err != nil {
			t.Fatalf("seed key %d: %v", k, err)
		}
	}
}

// readVal reads one key's val through the router's single-shard path.
func readVal(t *testing.T, r *Router, key int64) (int64, bool) {
	t.Helper()
	res, err := r.Exec(key, "SELECT val FROM bench WHERE id = ?", core.I(key))
	if err != nil {
		t.Fatalf("read key %d: %v", key, err)
	}
	if len(res.Rows) == 0 {
		return 0, false
	}
	return res.Rows[0][0].Int(), true
}

// keysOnDistinctShards finds count keys that all land on pairwise distinct
// shards, scanning upward from start.
func (c *cluster) keysOnDistinctShards(start int64, count int) []int64 {
	keys := make([]int64, 0, count)
	used := make(map[uint32]bool)
	for k := start; len(keys) < count; k++ {
		id := c.m.ShardOfInt(k)
		if !used[id] {
			used[id] = true
			keys = append(keys, k)
		}
	}
	return keys
}

// keyOnShard finds a key owned by shard id, scanning upward from start.
func (c *cluster) keyOnShard(start int64, id uint32) int64 {
	for k := start; ; k++ {
		if c.m.ShardOfInt(k) == id {
			return k
		}
	}
}
