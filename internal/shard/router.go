package shard

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hiengine/internal/chaos"
	"hiengine/internal/client"
	"hiengine/internal/core"
	"hiengine/internal/obs"
	"hiengine/internal/wire"
)

// ErrTxnDone: the distributed transaction already committed or rolled back.
var ErrTxnDone = errors.New("shard: transaction finished")

// Router is the topology-aware client: one pooled internal/client per
// shard, lazily dialed. Single-shard traffic goes straight through the
// owning shard's client -- same retry, same failover, same error identity
// as an unsharded deployment; only cross-shard transactions pay for
// coordination.
type Router struct {
	opts client.Options // template; Addr is overridden per shard
	seed uint64         // coordinator identity, stamped into gtids
	seq  atomic.Uint64  // per-coordinator gtid sequence
	ch   *chaos.Engine  // coordinator-side fault injection (nil = inert)

	// Distributed tracing (see trace.go): while tracing is on, every
	// transaction shares one trace id across its shards and the stitched
	// tree is stored in lastDist and published to traceSink.
	tracing   atomic.Bool
	distSeq   atomic.Uint64 // per-coordinator distributed trace ids
	traceSink atomic.Pointer[obs.Tracer]
	lastDist  atomic.Pointer[DistTraceTree]

	mu      sync.Mutex
	m       *Map
	clients map[uint32]*client.Client
	closed  bool
}

// NewRouter builds a router over a known map. opts is the per-shard client
// template (Addr is ignored); ch injects coordinator-side faults (nil ok).
func NewRouter(m *Map, opts client.Options, ch *chaos.Engine) *Router {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	return &Router{opts: opts, seed: opts.Seed, ch: ch,
		m: m, clients: make(map[uint32]*client.Client)}
}

// Bootstrap builds a router by asking any cluster member for the shard map
// (OpShardMap): clients need one address, not the topology.
func Bootstrap(addr string, opts client.Options, ch *chaos.Engine) (*Router, error) {
	bo := opts
	bo.Addr = addr
	cl, err := client.New(bo)
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	s, err := cl.Session()
	if err != nil {
		return nil, err
	}
	wm, err := s.ShardMap(false, 0)
	s.Close()
	if err != nil {
		return nil, fmt.Errorf("shard: bootstrap from %s: %w", addr, err)
	}
	return NewRouter(&Map{*wm}, opts, ch), nil
}

// Map returns the current topology.
func (r *Router) Map() *Map {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.m
}

// Close closes every per-shard client.
func (r *Router) Close() {
	r.mu.Lock()
	clients := r.clients
	r.clients = make(map[uint32]*client.Client)
	r.closed = true
	r.mu.Unlock()
	for _, c := range clients {
		c.Close()
	}
}

// Client returns (dialing lazily) the pooled client for shard id.
func (r *Router) Client(id uint32) (*client.Client, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, client.ErrClientClosed
	}
	if c, ok := r.clients[id]; ok {
		return c, nil
	}
	if int(id) >= len(r.m.Addrs) {
		return nil, fmt.Errorf("shard: no shard %d in map version %d", id, r.m.Version)
	}
	o := r.opts
	o.Addr = r.m.Addr(id)
	o.Seed = r.seed + uint64(id) + 1
	c, err := client.New(o)
	if err != nil {
		return nil, err
	}
	r.clients[id] = c
	return c, nil
}

// ClientForKey returns the client owning an integer primary key.
func (r *Router) ClientForKey(key int64) (*client.Client, error) {
	return r.Client(r.Map().ShardOfInt(key))
}

// Exec runs one autocommit statement on the shard owning key. This is the
// single-shard fast path: it delegates to that shard's client.Exec
// unwrapped, so retry/backoff, replica routing, failover, and error
// identity are exactly those of an unsharded client.
func (r *Router) Exec(key int64, sql string, args ...core.Value) (*wire.Result, error) {
	c, err := r.ClientForKey(key)
	if err != nil {
		return nil, err
	}
	if dt := r.distTrace(); dt != nil {
		res, err := c.ExecDist(dt, sql, args...)
		r.publishDist(dt, 0, 0, 0)
		return res, err
	}
	return c.Exec(sql, args...)
}

// Query opens a streaming SELECT on the shard owning key. Like Exec, this
// is the single-shard fast path: it delegates to that shard's client.Query
// unwrapped, so the cursor protocol, its retry behavior, and error
// identity are exactly those of an unsharded client. Cross-shard scans are
// the caller's concern (issue one Query per shard and merge).
func (r *Router) Query(key int64, sql string, args ...core.Value) (*client.Rows, error) {
	c, err := r.ClientForKey(key)
	if err != nil {
		return nil, err
	}
	if dt := r.distTrace(); dt != nil {
		rows, err := c.QueryDist(dt, sql, args...)
		// The open hop is in; page hops keep accumulating on dt but the
		// published tree snapshots the cursor open.
		r.publishDist(dt, 0, 0, 0)
		return rows, err
	}
	return c.Query(sql, args...)
}

// ExecBatch runs one atomic batch on the shard owning key. Every statement
// in the batch must route to the same shard; the key names it.
func (r *Router) ExecBatch(key int64, stmts []wire.BatchStmt) ([]int, error) {
	c, err := r.ClientForKey(key)
	if err != nil {
		return nil, err
	}
	if dt := r.distTrace(); dt != nil {
		affected, err := c.ExecBatchDist(dt, stmts)
		r.publishDist(dt, 0, 0, 0)
		return affected, err
	}
	return c.ExecBatch(stmts)
}

func (r *Router) chaosCheck(site string) error { return r.ch.Check(site) }

// Txn is one distributed transaction: per-shard sessions opened on first
// touch, committed atomically. A transaction that only ever touches one
// shard commits through that session's ordinary pipelined commit -- 2PC
// costs nothing until a second shard joins.
type Txn struct {
	r       *Router
	dt      *client.DistTrace // shared trace across every participant (nil = untraced)
	parts   map[uint32]*client.Session
	order   []uint32        // first-touch order
	writers map[uint32]bool // shards where a statement affected rows
	gtid    string          // assigned by Commit iff the 2PC path ran
	done    bool
}

// GTID returns the global transaction id, or "" unless Commit took the
// cross-shard 2PC path. After an unknown-outcome commit error, the caller
// can learn the authoritative result by asking the gtid's home shard
// (Session.TxnStatus) once it is reachable again.
func (t *Txn) GTID() string { return t.gtid }

// Begin opens a distributed transaction. No network traffic until the
// first statement.
func (r *Router) Begin() *Txn {
	return &Txn{r: r, dt: r.distTrace(),
		parts: make(map[uint32]*client.Session), writers: make(map[uint32]bool)}
}

// Exec runs one statement on the shard owning key, opening that shard's
// session (and its server-side transaction) on first touch.
func (t *Txn) Exec(key int64, sql string, args ...core.Value) (*wire.Result, error) {
	return t.ExecOn(t.r.Map().ShardOfInt(key), sql, args...)
}

// ExecOn runs one statement on an explicit shard (for statements whose
// routing key is not the primary key, e.g. secondary-index reads).
func (t *Txn) ExecOn(id uint32, sql string, args ...core.Value) (*wire.Result, error) {
	if t.done {
		return nil, ErrTxnDone
	}
	s := t.parts[id]
	if s == nil {
		c, err := t.r.Client(id)
		if err != nil {
			return nil, err
		}
		s, err = c.Session()
		if err != nil {
			return nil, err
		}
		if t.dt != nil {
			s.SetDistTrace(t.dt)
		}
		if err := s.Begin(); err != nil {
			s.Close()
			return nil, err
		}
		t.parts[id] = s
		t.order = append(t.order, id)
	}
	res, err := s.Exec(sql, args...)
	if err == nil && res.Affected > 0 {
		t.writers[id] = true
	}
	return res, err
}

// Rollback aborts on every touched shard.
func (t *Txn) Rollback() error {
	if t.done {
		return ErrTxnDone
	}
	t.done = true
	var first error
	for _, id := range t.order {
		s := t.parts[id]
		if s.InTxn() {
			if err := s.Rollback(); err != nil && first == nil {
				first = err
			}
		}
		s.Close()
	}
	// An aborted transaction still yields its (partial) tree.
	t.r.publishDist(t.dt, 0, 0, 0)
	return first
}

// Commit commits the distributed transaction. One touched shard: the
// ordinary pipelined commit, byte-for-byte the unsharded path. Multiple
// shards: presumed-abort 2PC -- parallel prepares, then the decision at
// the home shard (the commit point; a nil return means that record is
// durable), then best-effort fan-out to the rest (recovery completes any
// straggler). An error from the home decision itself means the outcome is
// unknown until a resolver asks the home shard.
func (t *Txn) Commit() error {
	if t.done {
		return ErrTxnDone
	}
	t.done = true
	defer func() {
		for _, s := range t.parts {
			s.Close()
		}
	}()
	// Phase durations feed the stitched trace; published even on error so a
	// failed commit still yields its partial tree.
	var prepD, decideD, fanoutD time.Duration
	if t.dt != nil {
		defer func() { t.r.publishDist(t.dt, prepD, decideD, fanoutD) }()
	}
	switch len(t.order) {
	case 0:
		return nil
	case 1:
		return t.parts[t.order[0]].Commit()
	}
	home, ok := t.firstWriter()
	if !ok {
		// Read-only everywhere: each shard commits locally; no ordering
		// constraint between snapshots already read.
		var first error
		for _, id := range t.order {
			if err := t.parts[id].Commit(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	gtid := NewGTID(home, t.r.seed, t.r.seq.Add(1))
	t.gtid = gtid

	// Phase one: every participant prepares in parallel. A vote error has
	// already aborted that participant's transaction server-side.
	votes := make(map[uint32]byte, len(t.order))
	prepT0 := time.Now()
	var mu sync.Mutex
	var wg sync.WaitGroup
	var voteErr error
	for _, id := range t.order {
		wg.Add(1)
		go func(id uint32, s *client.Session) {
			defer wg.Done()
			v, err := s.TxnPrepare(gtid)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if voteErr == nil {
					voteErr = fmt.Errorf("shard %d: %w", id, err)
				}
				return
			}
			votes[id] = v
		}(id, t.parts[id])
	}
	wg.Wait()
	prepD = time.Since(prepT0)
	if voteErr != nil {
		t.abortPrepared(gtid, votes)
		return voteErr
	}
	if votes[home] != wire.PreparedWrites {
		// The designated home wrote nothing after all (its writes matched
		// zero rows), so there is nowhere to anchor a durable commit
		// decision; presumed abort forces the transaction down.
		t.abortPrepared(gtid, votes)
		return ErrNoCommitPoint
	}
	if err := t.r.chaosCheck(SiteCoordDecide); err != nil {
		// Coordinator death before the commit point: everything prepared
		// stays in-doubt; recovery will presume abort.
		return fmt.Errorf("shard: coordinator failed before decision for %s: %w", gtid, err)
	}

	// Phase two, step one: the home decision is the commit point.
	decideT0 := time.Now()
	if _, err := t.parts[home].TxnDecide(gtid, true); err != nil {
		// The decision may or may not be durable: the outcome is unknown
		// until a resolver asks the home shard for the gtid's status.
		return fmt.Errorf("shard: decision on home shard %d for %s (outcome unknown): %w", home, gtid, err)
	}
	decideD = time.Since(decideT0)
	if err := t.r.chaosCheck(SiteCoordFanout); err != nil {
		// Committed -- the home decision is durable -- but the fan-out is
		// lost; recovery reads the home status and completes it.
		return fmt.Errorf("shard: coordinator failed after commit point for %s: %w", gtid, err)
	}
	// Phase two, step two: best-effort fan-out. Failures here are repaired
	// by recovery; the transaction is already committed.
	fanT0 := time.Now()
	prepared := make([]uint32, 0, len(t.order))
	for _, id := range t.order {
		if votes[id] == wire.PreparedWrites {
			prepared = append(prepared, id)
		}
	}
	fanoutOK := true
	for _, id := range prepared {
		if id != home {
			if _, err := t.parts[id].TxnDecide(gtid, true); err != nil {
				fanoutOK = false
			}
		}
	}
	if fanoutOK {
		// Every participant holding 2PC state durably applied the commit:
		// nobody will ever ask about this gtid again, so prune the
		// bookkeeping (and unpin the backing log segments) everywhere.
		t.forgetAll(gtid, home, prepared)
	}
	fanoutD = time.Since(fanT0)
	return nil
}

// forgetAll prunes a gtid's 2PC bookkeeping on the given participants. Only
// the live coordinator may call it, and only on a DEFINITE outcome: every
// participant that prepared writes has durably acknowledged the decision, so
// no one will ever ask a participant about this gtid again. Deliberately
// home-last, so the home keeps answering TxnStatus until every other
// participant is pruned. A resolver, by contrast, must never forget:
// unknown-outcome clients (and the next sweep) settle against the home's
// retained status, and dropping the home's abort fence would let a late
// prepare reopen a gtid the sweep already presume-aborted elsewhere.
// Best effort -- a lost forget only retains metadata.
func (t *Txn) forgetAll(gtid string, home uint32, ids []uint32) {
	for _, id := range ids {
		if id != home {
			_ = t.parts[id].TxnForget(gtid)
		}
	}
	_ = t.parts[home].TxnForget(gtid)
}

// firstWriter returns the first shard (touch order) where a statement
// affected rows: the home-shard choice.
func (t *Txn) firstWriter() (uint32, bool) {
	for _, id := range t.order {
		if t.writers[id] {
			return id, true
		}
	}
	return 0, false
}

// abortPrepared delivers the abort decision to every participant that
// successfully prepared writes (best effort: unreached participants stay
// in-doubt and recovery presumes abort). If every such participant durably
// acknowledges the abort, the outcome is definite and the bookkeeping is
// pruned. A participant whose prepare ACK was lost is invisible here and
// stays in-doubt; pruning is still safe -- a later sweep finds the home
// without state (TxnUnknown) and presumes abort, which is the outcome.
func (t *Txn) abortPrepared(gtid string, votes map[uint32]byte) {
	home, err := HomeShard(gtid)
	if err != nil {
		return
	}
	acked := make([]uint32, 0, len(votes))
	allAcked := true
	for id, v := range votes {
		if v != wire.PreparedWrites {
			continue
		}
		if _, derr := t.parts[id].TxnDecide(gtid, false); derr != nil {
			allAcked = false
			continue
		}
		acked = append(acked, id)
	}
	if allAcked && len(acked) > 0 {
		t.forgetAll(gtid, home, acked)
	}
}

// RecoveryReport summarizes one resolver pass.
type RecoveryReport struct {
	InDoubt   int // distinct in-doubt gtids found across the cluster
	Committed int // resolved forward (home had a durable commit decision)
	Aborted   int // resolved by presumed abort
}

// Recover is the coordinator-recovery protocol: sweep every shard for
// in-doubt transactions (OpTxnRecover), ask each gtid's home shard for the
// authoritative outcome (OpTxnStatus), and deliver it (OpTxnDecide).
// Presumed abort supplies the default: unless the home shard shows a
// durable commit decision, the transaction aborts -- which is safe exactly
// because the commit protocol acknowledges no client before that decision
// is durable. Idempotent and safe to re-run; a conflicting-decision error
// (the status changed between read and delivery) retries with the fresh
// status.
func (r *Router) Recover() (RecoveryReport, error) {
	var rep RecoveryReport
	m := r.Map()
	indoubt := make(map[string][]uint32)
	for id := uint32(0); int(id) < m.N(); id++ {
		s, err := r.session(id)
		if err != nil {
			return rep, fmt.Errorf("shard %d recover sweep: %w", id, err)
		}
		gtids, err := s.TxnRecover()
		s.Close()
		if err != nil {
			return rep, fmt.Errorf("shard %d recover sweep: %w", id, err)
		}
		for _, g := range gtids {
			indoubt[g] = append(indoubt[g], id)
		}
	}
	rep.InDoubt = len(indoubt)
	for gtid, shards := range indoubt {
		home, err := HomeShard(gtid)
		if err != nil {
			return rep, err
		}
		if err := r.resolveOne(gtid, home, shards, &rep); err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// resolveOne drives one gtid to resolution, re-reading the home status on a
// decision failure (a concurrent decider may have gotten there first with
// the opposite verdict).
func (r *Router) resolveOne(gtid string, home uint32, shards []uint32, rep *RecoveryReport) error {
	for attempt := 0; ; attempt++ {
		s, err := r.session(home)
		if err != nil {
			return fmt.Errorf("status of %s on home shard %d: %w", gtid, home, err)
		}
		st, _, err := s.TxnStatus(gtid)
		s.Close()
		if err != nil {
			return fmt.Errorf("status of %s on home shard %d: %w", gtid, home, err)
		}
		commit := st == wire.TxnCommitted
		// Deliver the decision to the HOME shard first, whether or not the
		// home reported in-doubt state. For a presumed abort this is the
		// FENCE that makes the sweep safe against a still-live coordinator:
		// the home durably records a decision-only abort entry, so a late
		// prepare (duplicate gtid) or a late commit decision
		// (ErrConflictingDecision) fails at the home instead of committing a
		// transaction whose other participants this sweep is about to abort.
		// Only after the home's record is durable may any other participant
		// learn the outcome -- abort-ascending delivery without the fence is
		// a permanent atomicity split waiting for the race.
		order := make([]uint32, 1, len(shards)+1)
		order[0] = home
		for _, id := range shards {
			if id != home {
				order = append(order, id)
			}
		}
		ok := true
		for _, id := range order {
			ds, err := r.session(id)
			if err != nil {
				return fmt.Errorf("deciding %s on shard %d: %w", gtid, id, err)
			}
			_, derr := ds.TxnDecide(gtid, commit)
			ds.Close()
			if derr != nil {
				if attempt < 2 {
					ok = false
					break // re-read the status and retry
				}
				return fmt.Errorf("deciding %s on shard %d: %w", gtid, id, derr)
			}
		}
		if ok {
			if commit {
				rep.Committed++
			} else {
				rep.Aborted++
			}
			return nil
		}
	}
}

// session leases a session on shard id.
func (r *Router) session(id uint32) (*client.Session, error) {
	c, err := r.Client(id)
	if err != nil {
		return nil, err
	}
	return c.Session()
}
