package shard

// Cluster-plane acceptance: a 3-shard + 1-replica in-process topology, one
// admin plane per node. Verifies the ISSUE-10 cluster plane end to end:
// /clusterz on any node merges every node's status into one topology view,
// degrades to an annotated partial result when a node dies, and a traced
// cross-shard transaction stitches into a multi-hop distributed trace with
// monotone per-hop stage offsets, served by /traces?distributed=1.
//
// The shard nodes are built by hand rather than via newCluster because the
// plane needs pieces the chaos harness leaves out: a per-node Tracer (so
// traced frames come back with stage blocks), a per-node Registry, an admin
// server, and a log-shipping source on shard 0 for the replica.

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hiengine/internal/adapt"
	"hiengine/internal/admin"
	"hiengine/internal/client"
	"hiengine/internal/core"
	"hiengine/internal/delay"
	"hiengine/internal/obs"
	"hiengine/internal/replica"
	"hiengine/internal/server"
	"hiengine/internal/sqlfront"
	"hiengine/internal/srss"
	"hiengine/internal/wire"
)

// cpNode is one cluster-plane node: its wire address, trace sink, and admin
// plane over a real listener.
type cpNode struct {
	name   string
	addr   string // wire address ("" for the replica: admin-only in this test)
	tracer *obs.Tracer
	adm    *httptest.Server
}

func (n *cpNode) adminAddr() string { return strings.TrimPrefix(n.adm.URL, "http://") }

// cpGet fetches path from node n's admin plane and decodes the JSON body.
func cpGet(t *testing.T, n *cpNode, path string, out any) {
	t.Helper()
	resp, err := http.Get(n.adm.URL + path)
	if err != nil {
		t.Fatalf("%s GET %s: %v", n.name, path, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("%s GET %s: %v", n.name, path, err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("%s GET %s: HTTP %d: %s", n.name, path, resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, out); err != nil {
		t.Fatalf("%s GET %s: not JSON: %v\n%s", n.name, path, err, body)
	}
}

// cpClusterNode mirrors the /clusterz per-node document.
type cpClusterNode struct {
	Name   string         `json:"name"`
	Error  string         `json:"error"`
	Status map[string]any `json:"status"`
}

// newClusterPlane builds 3 shard nodes plus one replica of shard 0, each
// with its own admin plane whose peer list names every other node.
func newClusterPlane(t *testing.T) (*Map, []*cpNode) {
	t.Helper()
	const nShards = 3

	// Peer registry shared by every admin's Peers closure. The mutex is the
	// happens-before edge between setup (appends) and the admin handler
	// goroutines (reads).
	var (
		peerMu   sync.Mutex
		allPeers []admin.Peer
	)
	addPeer := func(name, addr string) {
		peerMu.Lock()
		allPeers = append(allPeers, admin.Peer{Name: name, Addr: addr})
		peerMu.Unlock()
	}
	peersFor := func(self string) func() []admin.Peer {
		return func() []admin.Peer {
			peerMu.Lock()
			defer peerMu.Unlock()
			out := make([]admin.Peer, 0, len(allPeers))
			for _, p := range allPeers {
				if p.Name != self {
					out = append(out, p)
				}
			}
			return out
		}
	}

	lns := make([]net.Listener, nShards)
	addrs := make([]string, nShards)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	m, err := NewMap(1, addrs)
	if err != nil {
		t.Fatal(err)
	}

	var nodes []*cpNode
	for i := range lns {
		name := fmt.Sprintf("shard%d", i)
		reg := obs.NewRegistry("cplane-" + name)
		tracer := obs.NewTracer(obs.TracerConfig{SampleEvery: 1, Registry: reg})

		sm := m.ShardMap
		sm.SelfID = uint32(i)
		mapB := wire.EncodeShardMap(&sm)
		engine, err := core.Open(core.Config{
			Service: srss.New(srss.Config{Model: delay.Zero()}),
			Workers: 8,
			Obs:     reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := engine.SetShardMap(mapB); err != nil {
			t.Fatal(err)
		}
		scfg := server.Config{
			Frontend:     sqlfront.NewFrontend("hiengine", adapt.New(engine)),
			WorkerSlots:  engine.Workers(),
			Obs:          reg,
			Tracer:       tracer,
			Epoch:        engine.Epoch,
			ObserveEpoch: engine.ObserveEpoch,
			ShardInfo: func() *wire.ShardMap {
				sm, err := wire.DecodeShardMap(mapB)
				if err != nil {
					return nil
				}
				return sm
			},
			TwoPC: EngineHooks(engine),
		}
		if i == 0 {
			scfg.ReplSource = replica.NewSource(engine)
		}
		srv, err := server.New(scfg)
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(lns[i])
		t.Cleanup(func() {
			srv.Close()
			engine.Close()
		})

		e, s := engine, srv
		adm := admin.New(admin.Config{
			Registry: reg,
			Tracer:   tracer,
			Info:     map[string]string{"name": name},
			Status: func() map[string]any {
				return map[string]any{
					"role":         "primary",
					"epoch":        e.Epoch(),
					"cursors_open": s.CursorsOpen(),
				}
			},
			Peers: peersFor(name),
		})
		n := &cpNode{name: name, addr: addrs[i], tracer: tracer, adm: httptest.NewServer(adm.Handler())}
		t.Cleanup(n.adm.Close)
		addPeer(n.name, n.adminAddr())
		nodes = append(nodes, n)
	}

	// Replica of shard 0: bootstrapped over the wire, polling continuously.
	// It only joins the admin plane here; serving reads is covered elsewhere.
	rreg := obs.NewRegistry("cplane-replica0")
	f, rep, err := replica.Bootstrap(addrs[0], core.Config{
		Service: srss.New(srss.Config{Model: delay.Zero()}),
		Workers: 8,
		Obs:     rreg,
	}, core.RecoverOptions{}, rreg)
	if err != nil {
		t.Fatalf("replica bootstrap: %v", err)
	}
	f.SetInterval(2 * time.Millisecond)
	f.Start()
	t.Cleanup(func() {
		f.Stop()
		rep.Close()
	})
	radm := admin.New(admin.Config{
		Registry: rreg,
		Info:     map[string]string{"name": "replica0"},
		Status: func() map[string]any {
			return map[string]any{
				"role":        "replica",
				"applied_csn": f.AppliedCSN(),
				"lag_csn":     f.LagCSN(),
			}
		},
		Peers: peersFor("replica0"),
	})
	rn := &cpNode{name: "replica0", adm: httptest.NewServer(radm.Handler())}
	t.Cleanup(rn.adm.Close)
	addPeer(rn.name, rn.adminAddr())
	nodes = append(nodes, rn)

	// Schema on every shard; remember shard 0's CSN so the replica's
	// applied watermark is provably past the create.
	var csn0 uint64
	for i := 0; i < nShards; i++ {
		cl, err := client.New(client.Options{Addr: addrs[i]})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Exec("CREATE TABLE bench (id INT, val INT, PRIMARY KEY(id))"); err != nil {
			cl.Close()
			t.Fatalf("shard %d create: %v", i, err)
		}
		if i == 0 {
			csn0 = cl.LastCSN()
		}
		cl.Close()
	}
	if !f.WaitCSN(csn0, 10*time.Second) {
		t.Fatalf("replica never reached CSN %d (applied %d)", csn0, f.AppliedCSN())
	}
	return m, nodes
}

func TestClusterPlaneAcceptance(t *testing.T) {
	m, nodes := newClusterPlane(t)

	// --- /clusterz merges every node, from any node ----------------------
	var view struct {
		Nodes []cpClusterNode `json:"nodes"`
	}
	cpGet(t, nodes[1], "/clusterz?timeout_ms=5000", &view)
	if len(view.Nodes) != 4 {
		t.Fatalf("clusterz from shard1: %d nodes, want 4", len(view.Nodes))
	}
	byName := make(map[string]cpClusterNode, len(view.Nodes))
	for _, n := range view.Nodes {
		byName[n.Name] = n
	}
	for _, want := range []struct{ name, role string }{
		{"shard0", "primary"}, {"shard1", "primary"}, {"shard2", "primary"}, {"replica0", "replica"},
	} {
		n, ok := byName[want.name]
		if !ok {
			t.Fatalf("clusterz missing node %s: %+v", want.name, view.Nodes)
		}
		if n.Error != "" || n.Status["role"] != want.role {
			t.Fatalf("node %s: error=%q status=%+v", want.name, n.Error, n.Status)
		}
	}
	if _, ok := byName["replica0"].Status["lag_csn"]; !ok {
		t.Fatalf("replica status misses lag_csn: %+v", byName["replica0"].Status)
	}

	// --- traced cross-shard transaction ----------------------------------
	r := NewRouter(m, client.Options{Addr: "routed"}, nil)
	defer r.Close()
	r.Trace(true)
	r.SetTracer(nodes[0].tracer)

	// Two keys on distinct shards.
	k1 := int64(1)
	k2 := k1 + 1
	for m.ShardOfInt(k2) == m.ShardOfInt(k1) {
		k2++
	}
	tx := r.Begin()
	if _, err := tx.Exec(k1, "INSERT INTO bench VALUES (?, ?)", core.I(k1), core.I(10)); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(k2, "INSERT INTO bench VALUES (?, ?)", core.I(k2), core.I(20)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	dt := r.LastDistTrace()
	if dt == nil {
		t.Fatal("no distributed trace assembled for the cross-shard commit")
	}
	if dt.Shards < 2 {
		t.Fatalf("stitched trace covers %d shards, want >= 2: %+v", dt.Shards, dt)
	}
	if len(dt.Hops) < 2 {
		t.Fatalf("stitched trace has %d hops, want >= 2", len(dt.Hops))
	}
	if dt.Total <= 0 || dt.Prepare <= 0 || dt.Decide <= 0 {
		t.Fatalf("coordinator phases not timed: total=%v prepare=%v decide=%v", dt.Total, dt.Prepare, dt.Decide)
	}
	distinct := make(map[uint32]bool)
	lastHop := uint32(0)
	for _, h := range dt.Hops {
		if h.Hop <= lastHop {
			t.Fatalf("hop ids not strictly increasing: %d after %d", h.Hop, lastHop)
		}
		lastHop = h.Hop
		if h.Info == nil || len(h.Info.Stages) == 0 {
			t.Fatalf("hop %d has no server stage block: %+v", h.Hop, h)
		}
		if h.HasShard {
			distinct[h.Shard] = true
		}
		for j := 1; j < len(h.Info.Stages); j++ {
			if h.Info.Stages[j].BeginNS < h.Info.Stages[j-1].BeginNS {
				t.Fatalf("hop %d stage offsets not monotone: %+v", h.Hop, h.Info.Stages)
			}
		}
	}
	if len(distinct) < 2 {
		t.Fatalf("hops tag %d distinct shards, want >= 2: %+v", len(distinct), dt.Hops)
	}

	// The coordinator published the tree to shard0's tracer, so shard0's
	// admin serves it from the distributed ring.
	var traces struct {
		Distributed []*obs.DistTraceRecord `json:"distributed"`
	}
	cpGet(t, nodes[0], "/traces?distributed=1", &traces)
	found := false
	for _, rec := range traces.Distributed {
		if rec.TraceID == dt.TraceID {
			found = true
			if rec.Shards != dt.Shards || len(rec.Hops) != len(dt.Hops) {
				t.Fatalf("published record diverges from tree: %+v vs %+v", rec, dt)
			}
		}
	}
	if !found {
		t.Fatalf("trace %d not in /traces?distributed=1 (%d records)", dt.TraceID, len(traces.Distributed))
	}

	// --- partial failure: one node down, /clusterz still answers ---------
	nodes[2].adm.Close()
	var after struct {
		Nodes []cpClusterNode `json:"nodes"`
	}
	cpGet(t, nodes[0], "/clusterz?timeout_ms=2000", &after)
	if len(after.Nodes) != 4 {
		t.Fatalf("clusterz after kill: %d nodes, want 4", len(after.Nodes))
	}
	for _, n := range after.Nodes {
		switch n.Name {
		case "shard2":
			if n.Error == "" {
				t.Fatalf("dead node shard2 not annotated: %+v", n)
			}
			if n.Status != nil {
				t.Fatalf("dead node shard2 carries status: %+v", n)
			}
		default:
			if n.Error != "" {
				t.Fatalf("live node %s annotated with error %q", n.Name, n.Error)
			}
		}
	}
}
