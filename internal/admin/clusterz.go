// The cluster plane: /clusterz answers from ANY node with the whole
// cluster's state in one response. The node fans out to every peer admin
// address (shard map plus replica set) in parallel under a bounded
// timeout and merges each node's live status -- role, epoch, fenced_by,
// applied_csn, lag, indoubt_2pc, cursors_open -- into one topology view.
// Failure is partial, never total: an unreachable peer contributes an
// entry with an error annotation instead of poisoning the response.
package admin

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Peer is one other node of the cluster, by admin address.
type Peer struct {
	// Name labels the node in the merged view ("shard0", "replica0", ...).
	Name string `json:"name"`
	// Addr is the node's admin (HTTP) address, host:port.
	Addr string `json:"addr"`
}

// clusterNode is one node's entry in the merged topology view: its live
// status, or an error annotation when the fetch failed.
type clusterNode struct {
	Name   string         `json:"name"`
	Addr   string         `json:"addr,omitempty"`
	Error  string         `json:"error,omitempty"`
	Status map[string]any `json:"status,omitempty"`
}

// Fan-out timeout bounds: default 2s, clamped to [100ms, 10s] when the
// request overrides it (?timeout_ms=N).
const (
	clusterzDefaultTimeout = 2 * time.Second
	clusterzMinTimeout     = 100 * time.Millisecond
	clusterzMaxTimeout     = 10 * time.Second
)

// peerStatusCap bounds how much of a peer's /statusz this node will read:
// a misbehaving peer can cost one bounded buffer, not memory.
const peerStatusCap = 1 << 20

// handleClusterz merges this node's status with every peer's into one
// topology view. Peers are fetched in parallel; each gets the full
// timeout, so the response arrives within one timeout regardless of how
// many peers are down.
func (s *Server) handleClusterz(w http.ResponseWriter, r *http.Request) {
	timeout := clusterzDefaultTimeout
	if v := r.URL.Query().Get("timeout_ms"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n <= 0 {
			http.Error(w, "timeout_ms: want a positive integer", http.StatusBadRequest)
			return
		}
		timeout = time.Duration(n) * time.Millisecond
		if timeout < clusterzMinTimeout {
			timeout = clusterzMinTimeout
		}
		if timeout > clusterzMaxTimeout {
			timeout = clusterzMaxTimeout
		}
	}
	var peers []Peer
	if s.cfg.Peers != nil {
		peers = s.cfg.Peers()
	}
	// This node answers for itself locally -- no HTTP round trip, and a
	// /clusterz never reports its own node unreachable.
	nodes := make([]clusterNode, len(peers)+1)
	self := clusterNode{Name: "self"}
	if n := s.cfg.Info["name"]; n != "" {
		self.Name = n
	}
	if s.cfg.Status != nil {
		self.Status = s.cfg.Status()
	}
	nodes[0] = self
	cl := &http.Client{Timeout: timeout}
	var wg sync.WaitGroup
	for i, p := range peers {
		wg.Add(1)
		go func(i int, p Peer) {
			defer wg.Done()
			nodes[i+1] = fetchPeerStatus(cl, p)
		}(i, p)
	}
	wg.Wait()
	writeJSON(w, map[string]any{
		"timeout_ms": timeout.Milliseconds(),
		"nodes":      nodes,
	})
}

// fetchPeerStatus pulls one peer's /statusz and extracts its live status
// map. Every failure mode -- unreachable, non-200, undecodable -- comes
// back as an annotated entry, keeping the merged view partial rather
// than failed.
func fetchPeerStatus(cl *http.Client, p Peer) clusterNode {
	n := clusterNode{Name: p.Name, Addr: p.Addr}
	resp, err := cl.Get("http://" + p.Addr + "/statusz")
	if err != nil {
		n.Error = err.Error()
		return n
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		n.Error = fmt.Sprintf("statusz: HTTP %d", resp.StatusCode)
		return n
	}
	var st struct {
		Status map[string]any `json:"status"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, peerStatusCap)).Decode(&st); err != nil {
		n.Error = "statusz: " + err.Error()
		return n
	}
	n.Status = st.Status
	return n
}
