package admin

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hiengine/internal/obs"
)

func TestHealthzUnready(t *testing.T) {
	var reason error
	s := New(Config{Ready: func() error { return reason }})

	if code, body := get(t, s, "/healthz"); code != 200 || strings.TrimSpace(body) != "ok" {
		t.Fatalf("ready healthz = %d %q", code, body)
	}
	reason = errors.New("fenced by epoch 9 (own epoch 3)")
	code, body := get(t, s, "/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("unready healthz status = %d, want 503", code)
	}
	if !strings.Contains(body, "unready: fenced by epoch 9") {
		t.Fatalf("unready healthz body = %q, want the reason", body)
	}
	reason = nil
	if code, _ := get(t, s, "/healthz"); code != 200 {
		t.Fatalf("recovered healthz status = %d", code)
	}
}

// clusterzNodes fetches /clusterz from s and decodes the node list.
func clusterzNodes(t *testing.T, s *Server, path string) []clusterNode {
	t.Helper()
	code, body := get(t, s, path)
	if code != 200 {
		t.Fatalf("clusterz status = %d: %s", code, body)
	}
	var out struct {
		Nodes []clusterNode `json:"nodes"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("clusterz not JSON: %v\n%s", err, body)
	}
	return out.Nodes
}

// TestClusterzMergeAndPartialFailure: /clusterz must merge every reachable
// peer's status into one view and annotate (not fail on) a dead peer.
func TestClusterzMergeAndPartialFailure(t *testing.T) {
	// Two live peers, each a real admin server over a real listener.
	mkPeer := func(role string, epoch int) *httptest.Server {
		adm := New(Config{Status: func() map[string]any {
			return map[string]any{"role": role, "epoch": epoch}
		}})
		return httptest.NewServer(adm.Handler())
	}
	p1 := mkPeer("primary", 3)
	defer p1.Close()
	p2 := mkPeer("replica", 3)
	defer p2.Close()
	// A third peer that is down: reserve an address and close it.
	dead := httptest.NewServer(http.NotFoundHandler())
	deadAddr := strings.TrimPrefix(dead.URL, "http://")
	dead.Close()

	s := New(Config{
		Info:   map[string]string{"name": "shard0"},
		Status: func() map[string]any { return map[string]any{"role": "primary", "epoch": 5} },
		Peers: func() []Peer {
			return []Peer{
				{Name: "shard1", Addr: strings.TrimPrefix(p1.URL, "http://")},
				{Name: "replica0", Addr: strings.TrimPrefix(p2.URL, "http://")},
				{Name: "shard2", Addr: deadAddr},
			}
		},
	})

	nodes := clusterzNodes(t, s, "/clusterz?timeout_ms=1000")
	if len(nodes) != 4 {
		t.Fatalf("got %d nodes, want 4 (self + 3 peers)", len(nodes))
	}
	byName := make(map[string]clusterNode, len(nodes))
	for _, n := range nodes {
		byName[n.Name] = n
	}
	self := byName["shard0"]
	if self.Error != "" || self.Status["role"] != "primary" || self.Status["epoch"] != float64(5) {
		t.Fatalf("self node: %+v", self)
	}
	for name, role := range map[string]string{"shard1": "primary", "replica0": "replica"} {
		n := byName[name]
		if n.Error != "" || n.Status["role"] != role {
			t.Fatalf("peer %s: %+v", name, n)
		}
	}
	down := byName["shard2"]
	if down.Error == "" {
		t.Fatalf("dead peer not annotated: %+v", down)
	}
	if down.Status != nil {
		t.Fatalf("dead peer carries status: %+v", down)
	}

	if code, _ := get(t, s, "/clusterz?timeout_ms=bogus"); code != 400 {
		t.Fatalf("bad timeout_ms: status = %d", code)
	}
}

// TestClusterzNoPeers: a node with no peer list still answers with itself.
func TestClusterzNoPeers(t *testing.T) {
	s := New(Config{Status: func() map[string]any { return map[string]any{"role": "primary"} }})
	nodes := clusterzNodes(t, s, "/clusterz")
	if len(nodes) != 1 || nodes[0].Name != "self" || nodes[0].Status["role"] != "primary" {
		t.Fatalf("nodes = %+v", nodes)
	}
}

// TestTracesDistributed: ?distributed=1 serves the tracer's stitched
// multi-hop ring, honoring min_us against the tree's total.
func TestTracesDistributed(t *testing.T) {
	reg := obs.NewRegistry("admintest")
	tc := obs.NewTracer(obs.TracerConfig{SampleEvery: 1, Registry: reg})
	s := New(Config{Registry: reg, Tracer: tc})

	tc.PublishDistributed(&obs.DistTraceRecord{
		TraceID: 42,
		TotalNS: 4_000_000,
		Shards:  2,
		Hops: []obs.DistHopRecord{
			{Hop: 1, Shard: 0, HasShard: true, Op: "txn_prepare"},
			{Hop: 2, Shard: 1, HasShard: true, Op: "txn_prepare"},
		},
	}, true)

	code, body := get(t, s, "/traces?distributed=1")
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	var out struct {
		Enabled     bool                   `json:"enabled"`
		Distributed []*obs.DistTraceRecord `json:"distributed"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("distributed traces not JSON: %v\n%s", err, body)
	}
	if !out.Enabled || len(out.Distributed) != 1 {
		t.Fatalf("distributed traces = %s", body)
	}
	rec := out.Distributed[0]
	if rec.TraceID != 42 || rec.Shards != 2 || len(rec.Hops) != 2 || rec.Hops[1].Shard != 1 {
		t.Fatalf("distributed record = %+v", rec)
	}

	// min_us above the tree's total filters it out.
	if _, body := get(t, s, "/traces?distributed=1&min_us=10000"); strings.Contains(body, `"id": 42`) {
		t.Fatalf("min_us filter kept distributed trace: %s", body)
	}
}
