// Package admin is the HTTP admin plane for hiserver: a stdlib-only
// net/http server (own mux, never http.DefaultServeMux) exposing the
// process's observability surface on a loopback-or-operator port, separate
// from the wire-protocol data port:
//
//	/healthz        readiness probe: "ok", or 503 with the unready reason
//	/metrics        metrics in Prometheus text exposition format
//	/statusz        JSON status: uptime, build info, full metrics snapshot
//	/traces         recent/slow request traces as JSON (?min_us=N filters;
//	                ?distributed=1 switches to stitched multi-hop trees)
//	/clusterz       cluster topology: this node's status merged with every
//	                peer's, fetched in parallel under a bounded timeout
//	/promote        POST: promote a replica process to primary
//	/debug/pprof/   the standard Go profiling handlers
//
// The admin plane is read-only except /promote, the one control verb:
// it is POST-only, wired only when the process can promote (a replica
// with a follower), and idempotent -- promoting a primary returns its
// current epoch. Everything else never mutates engine state.
package admin

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"time"

	"hiengine/internal/obs"
)

// Config wires the admin server to the process's observability state.
type Config struct {
	// Registry supplies /metrics and the /statusz snapshot (nil = empty).
	Registry *obs.Registry
	// Tracer supplies /traces (nil = endpoint reports tracing disabled).
	Tracer *obs.Tracer
	// Info adds static key/value pairs (version, addr, profile) to /statusz.
	Info map[string]string
	// Status supplies live key/value pairs (role, epoch, replication
	// watermarks) merged into /statusz on each request (nil = omitted).
	Status func() map[string]any
	// Ready, when non-nil, gates /healthz: a non-nil error turns the probe
	// into a 503 carrying the reason (fenced by a higher epoch, draining,
	// replica lag beyond threshold). Nil Ready means always ready.
	Ready func() error
	// Peers names every other node's admin address (from the shard map and
	// replica set) for /clusterz fan-out (nil = this node only).
	Peers func() []Peer
	// Promote, when non-nil, enables POST /promote: it promotes the
	// process to primary and returns the new epoch. Implementations must
	// be idempotent (promoting a primary reports its current epoch).
	Promote func() (uint64, error)
}

// Server serves the admin plane over HTTP.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	hs    *http.Server
	start time.Time
}

// New builds an admin server (not yet listening).
func New(cfg Config) *Server {
	s := &Server{cfg: cfg, mux: http.NewServeMux(), start: time.Now()}
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/statusz", s.handleStatusz)
	s.mux.HandleFunc("/traces", s.handleTraces)
	s.mux.HandleFunc("/clusterz", s.handleClusterz)
	s.mux.HandleFunc("/promote", s.handlePromote)
	// pprof.Index routes the named profiles (heap, goroutine, block, ...)
	// under the /debug/pprof/ prefix; the four below need explicit routes.
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// Handler exposes the admin mux (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Serve serves HTTP on ln until Shutdown or a listener error.
func (s *Server) Serve(ln net.Listener) error {
	s.hs = &http.Server{Handler: s.mux, ReadHeaderTimeout: 5 * time.Second}
	err := s.hs.Serve(ln)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// Shutdown gracefully stops a Serve-ing server.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.hs == nil {
		return nil
	}
	return s.hs.Shutdown(ctx)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.cfg.Ready != nil {
		if err := s.cfg.Ready(); err != nil {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, "unready: %v\n", err)
			return
		}
	}
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if s.cfg.Registry == nil {
		return
	}
	fmt.Fprint(w, s.cfg.Registry.Snapshot().Prometheus())
}

func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	type statusz struct {
		Name          string            `json:"name"`
		UptimeSeconds float64           `json:"uptime_seconds"`
		GoVersion     string            `json:"go_version"`
		Goroutines    int               `json:"goroutines"`
		Info          map[string]string `json:"info,omitempty"`
		Status        map[string]any    `json:"status,omitempty"`
		Metrics       json.RawMessage   `json:"metrics,omitempty"`
	}
	st := statusz{
		UptimeSeconds: time.Since(s.start).Seconds(),
		GoVersion:     runtime.Version(),
		Goroutines:    runtime.NumGoroutine(),
		Info:          s.cfg.Info,
	}
	if s.cfg.Status != nil {
		st.Status = s.cfg.Status()
	}
	if s.cfg.Registry != nil {
		st.Name = s.cfg.Registry.Name()
		st.Metrics = json.RawMessage(s.cfg.Registry.Snapshot().JSON())
	}
	writeJSON(w, st)
}

// handlePromote promotes the process to primary (POST-only; the one
// admin verb that mutates state). 404 on processes that cannot promote,
// 405 on non-POST, 500 with the error text when promotion fails; on
// success the JSON body reports the node's new primary epoch.
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Promote == nil {
		http.Error(w, "promote: not a promotable replica", http.StatusNotFound)
		return
	}
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "promote: POST required", http.StatusMethodNotAllowed)
		return
	}
	epoch, err := s.cfg.Promote()
	if err != nil {
		http.Error(w, "promote: "+err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, map[string]any{"promoted": true, "epoch": epoch})
}

// handleTraces returns the tracer's recent and slow rings, oldest first.
// ?min_us=N keeps only traces at least N microseconds long;
// ?distributed=1 switches to the stitched multi-hop distributed ring.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	minUS := int64(0)
	if v := r.URL.Query().Get("min_us"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			http.Error(w, "min_us: want a non-negative integer", http.StatusBadRequest)
			return
		}
		minUS = n
	}
	if r.URL.Query().Get("distributed") == "1" {
		type dtraces struct {
			Enabled     bool                   `json:"enabled"`
			MinUS       int64                  `json:"min_us,omitempty"`
			Distributed []*obs.DistTraceRecord `json:"distributed"`
		}
		out := dtraces{Enabled: s.cfg.Tracer != nil, MinUS: minUS}
		if t := s.cfg.Tracer; t != nil {
			for _, rec := range t.Distributed() {
				if rec.TotalNS >= minUS*1000 {
					out.Distributed = append(out.Distributed, rec)
				}
			}
		}
		writeJSON(w, out)
		return
	}
	type traces struct {
		Enabled bool               `json:"enabled"`
		MinUS   int64              `json:"min_us,omitempty"`
		Recent  []*obs.TraceRecord `json:"recent"`
		Slow    []*obs.TraceRecord `json:"slow"`
	}
	out := traces{Enabled: s.cfg.Tracer != nil, MinUS: minUS}
	if t := s.cfg.Tracer; t != nil {
		out.Recent = filterTraces(t.Recent(), out.MinUS*1000)
		out.Slow = filterTraces(t.Slow(), out.MinUS*1000)
	}
	writeJSON(w, out)
}

func filterTraces(recs []*obs.TraceRecord, minNS int64) []*obs.TraceRecord {
	out := recs[:0]
	for _, rec := range recs {
		if rec.TotalNS >= minNS {
			out = append(out, rec)
		}
	}
	return out
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
