package admin

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"hiengine/internal/obs"
)

func newTestServer(t *testing.T) (*Server, *obs.Registry, *obs.Tracer) {
	t.Helper()
	reg := obs.NewRegistry("admintest")
	reg.Counter("reqs.total").Add(3)
	reg.Gauge("conns.open").Set(2)
	reg.Histogram("lat_ns").Record(100)
	tr := obs.NewTracer(obs.TracerConfig{SampleEvery: 1, Registry: reg})
	return New(Config{Registry: reg, Tracer: tr, Info: map[string]string{"addr": ":0"}}), reg, tr
}

func get(t *testing.T, s *Server, path string) (int, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	body, _ := io.ReadAll(rec.Result().Body)
	return rec.Code, string(body)
}

func TestHealthz(t *testing.T) {
	s, _, _ := newTestServer(t)
	code, body := get(t, s, "/healthz")
	if code != 200 || strings.TrimSpace(body) != "ok" {
		t.Fatalf("healthz = %d %q", code, body)
	}
}

var (
	typeLine   = regexp.MustCompile(`^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$`)
	sampleLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{le="(\+Inf|[0-9]+)"\})? -?[0-9]+$`)
)

// TestMetricsScrape is the e2e scrape smoke test: every line of /metrics
// must be well-formed Prometheus 0.0.4 text exposition, each metric's TYPE
// line must precede its samples, and each histogram must carry +Inf/_sum/
// _count series.
func TestMetricsScrape(t *testing.T) {
	s, _, _ := newTestServer(t)
	code, body := get(t, s, "/metrics")
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	declared := map[string]bool{}
	sampled := map[string]bool{}
	for i, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		switch {
		case typeLine.MatchString(line):
			declared[strings.Fields(line)[2]] = true
		case sampleLine.MatchString(line):
			name := line[:strings.IndexAny(line, "{ ")]
			base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
			if !declared[name] && !declared[base] {
				t.Errorf("line %d: sample %q precedes its # TYPE line", i+1, name)
			}
			sampled[name] = true
		default:
			t.Errorf("line %d: malformed exposition line %q", i+1, line)
		}
	}
	for _, want := range []string{
		"admintest_reqs_total", "admintest_conns_open",
		"admintest_lat_ns_bucket", "admintest_lat_ns_sum", "admintest_lat_ns_count",
	} {
		if !sampled[want] {
			t.Errorf("missing series %q", want)
		}
	}
	if !strings.Contains(body, `admintest_lat_ns_bucket{le="+Inf"}`) {
		t.Errorf("histogram missing +Inf bucket:\n%s", body)
	}
}

func TestStatusz(t *testing.T) {
	s, _, _ := newTestServer(t)
	code, body := get(t, s, "/statusz")
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	var st struct {
		Name          string            `json:"name"`
		UptimeSeconds float64           `json:"uptime_seconds"`
		GoVersion     string            `json:"go_version"`
		Info          map[string]string `json:"info"`
		Metrics       json.RawMessage   `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("statusz not JSON: %v\n%s", err, body)
	}
	if st.Name != "admintest" || st.GoVersion == "" || st.UptimeSeconds < 0 {
		t.Fatalf("statusz = %+v", st)
	}
	if st.Info["addr"] != ":0" || len(st.Metrics) == 0 {
		t.Fatalf("statusz missing info/metrics: %+v", st)
	}
}

func TestTraces(t *testing.T) {
	s, _, tc := newTestServer(t)
	tr := tc.Start(7, true)
	tr.Begin(obs.StageExec)
	time.Sleep(2 * time.Millisecond)
	tr.End(obs.StageExec)
	tr.Finish()

	code, body := get(t, s, "/traces")
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	var out struct {
		Enabled bool               `json:"enabled"`
		Recent  []*obs.TraceRecord `json:"recent"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("traces not JSON: %v\n%s", err, body)
	}
	if !out.Enabled || len(out.Recent) != 1 || out.Recent[0].ID != 7 {
		t.Fatalf("traces = %s", body)
	}

	// min_us above the trace's duration filters it out.
	if _, body := get(t, s, "/traces?min_us=10000000"); !strings.Contains(body, `"recent": []`) {
		t.Fatalf("min_us filter kept trace: %s", body)
	}
	if code, _ := get(t, s, "/traces?min_us=bogus"); code != 400 {
		t.Fatalf("bad min_us: status = %d", code)
	}
}

func TestPprofIndex(t *testing.T) {
	s, _, _ := newTestServer(t)
	if code, body := get(t, s, "/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index = %d", code)
	}
}
