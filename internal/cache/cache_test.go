package cache

import (
	"errors"
	"fmt"
	"testing"

	"hiengine/internal/adapt"
	"hiengine/internal/baseline/innosim"
	"hiengine/internal/core"
	"hiengine/internal/engineapi"
	"hiengine/internal/srss"
)

func schema() *core.Schema {
	return &core.Schema{
		Name: "items",
		Columns: []core.Column{
			{Name: "id", Kind: core.KindInt},
			{Name: "v", Kind: core.KindString},
		},
		Indexes: []core.IndexDef{{Name: "pk", Columns: []int{0}, Unique: true}},
	}
}

// setup builds a cache over HiEngine (front) and innosim (back), optionally
// pre-seeding rows directly into the back engine (cold data).
func setup(t *testing.T, mode Mode, backRows int) (*DB, engineapi.DB) {
	t.Helper()
	front, err := core.Open(core.Config{Workers: 8, SegmentSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(front.Close)
	back, err := innosim.New(innosim.Config{Service: srss.New(srss.Config{}), SegmentSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(back.Close)

	db, err := New(Config{Front: adapt.New(front), Back: back, Mode: mode})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	if err := db.CreateTable(schema()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < backRows; i++ {
		tx, _ := back.Begin(0)
		if err := tx.Insert("items", core.Row{core.I(int64(i)), core.S(fmt.Sprintf("cold-%d", i))}); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	return db, back
}

func TestReadFaultsInFromBack(t *testing.T) {
	db, _ := setup(t, WriteThrough, 10)
	tx, err := db.Begin(0)
	if err != nil {
		t.Fatal(err)
	}
	row, err := tx.GetByKey("items", 0, core.I(3))
	if err != nil {
		t.Fatal(err)
	}
	if row[1].Str() != "cold-3" {
		t.Fatalf("faulted row: %v", row)
	}
	tx.Commit()
	// Second read hits the cache (front engine), no loader involvement
	// observable, value unchanged.
	tx2, _ := db.Begin(0)
	row, err = tx2.GetByKey("items", 0, core.I(3))
	if err != nil || row[1].Str() != "cold-3" {
		t.Fatalf("cached read: %v %v", row, err)
	}
	tx2.Commit()
}

func TestMissNegativeCaching(t *testing.T) {
	db, _ := setup(t, WriteThrough, 0)
	tx, _ := db.Begin(0)
	if _, err := tx.GetByKey("items", 0, core.I(42)); !errors.Is(err, engineapi.ErrNotFound) {
		t.Fatalf("miss: %v", err)
	}
	// The key can still be inserted afterwards.
	if err := tx.Insert("items", core.Row{core.I(42), core.S("new")}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx2, _ := db.Begin(0)
	row, err := tx2.GetByKey("items", 0, core.I(42))
	if err != nil || row[1].Str() != "new" {
		t.Fatalf("after insert: %v %v", row, err)
	}
	tx2.Commit()
}

func TestWriteThroughPropagates(t *testing.T) {
	db, back := setup(t, WriteThrough, 5)
	tx, _ := db.Begin(0)
	if err := tx.UpdateByKey("items", 0, []core.Value{core.I(1)}, core.Row{core.I(1), core.S("hot-1")}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert("items", core.Row{core.I(100), core.S("fresh")}); err != nil {
		t.Fatal(err)
	}
	if err := tx.DeleteByKey("items", core.I(2)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// The back engine observed all three post-images.
	btx, _ := back.Begin(1)
	row, err := btx.GetByKey("items", 0, core.I(1))
	if err != nil || row[1].Str() != "hot-1" {
		t.Fatalf("back update: %v %v", row, err)
	}
	row, err = btx.GetByKey("items", 0, core.I(100))
	if err != nil || row[1].Str() != "fresh" {
		t.Fatalf("back insert: %v %v", row, err)
	}
	if _, err := btx.GetByKey("items", 0, core.I(2)); !errors.Is(err, engineapi.ErrNotFound) {
		t.Fatalf("back delete: %v", err)
	}
	btx.Commit()
}

func TestWriteBehindFlush(t *testing.T) {
	db, back := setup(t, WriteBehind, 0)
	for i := 0; i < 50; i++ {
		tx, _ := db.Begin(0)
		if err := tx.Insert("items", core.Row{core.I(int64(i)), core.S("wb")}); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	btx, _ := back.Begin(1)
	n := 0
	btx.ScanPrefix("items", 0, nil, func(core.Row) bool { n++; return true })
	btx.Commit()
	if n != 50 {
		t.Fatalf("back has %d rows after flush, want 50", n)
	}
}

func TestAbortPropagatesNothing(t *testing.T) {
	db, back := setup(t, WriteThrough, 0)
	tx, _ := db.Begin(0)
	if err := tx.Insert("items", core.Row{core.I(1), core.S("ghost")}); err != nil {
		t.Fatal(err)
	}
	tx.Abort()
	btx, _ := back.Begin(1)
	if _, err := btx.GetByKey("items", 0, core.I(1)); !errors.Is(err, engineapi.ErrNotFound) {
		t.Fatalf("aborted write reached back: %v", err)
	}
	btx.Commit()
}

func TestDuplicateAgainstColdRow(t *testing.T) {
	// Inserting a key that exists only in the back engine must fail: the
	// cache faults it in before the uniqueness check.
	db, _ := setup(t, WriteThrough, 3)
	tx, _ := db.Begin(0)
	if err := tx.Insert("items", core.Row{core.I(1), core.S("dup")}); !errors.Is(err, engineapi.ErrDuplicate) {
		t.Fatalf("cold duplicate: %v", err)
	}
}

func TestPreloadEnablesScans(t *testing.T) {
	db, _ := setup(t, WriteThrough, 20)
	tx, _ := db.Begin(0)
	if err := tx.ScanPrefix("items", 0, nil, func(core.Row) bool { return true }); !errors.Is(err, ErrNotCached) {
		t.Fatalf("scan before preload: %v", err)
	}
	tx.Abort()
	n, err := db.Preload("items")
	if err != nil {
		t.Fatal(err)
	}
	if n != 20 {
		t.Fatalf("preloaded %d, want 20", n)
	}
	tx2, _ := db.Begin(0)
	cnt := 0
	if err := tx2.ScanPrefix("items", 0, nil, func(core.Row) bool { cnt++; return true }); err != nil {
		t.Fatal(err)
	}
	if cnt != 20 {
		t.Fatalf("scan found %d, want 20", cnt)
	}
	tx2.Commit()
}

func TestConflictSemanticsThroughCache(t *testing.T) {
	db, _ := setup(t, WriteThrough, 2)
	t1, _ := db.Begin(0)
	t2, _ := db.Begin(1)
	if err := t1.UpdateByKey("items", 0, []core.Value{core.I(0)}, core.Row{core.I(0), core.S("a")}); err != nil {
		t.Fatal(err)
	}
	if err := t2.UpdateByKey("items", 0, []core.Value{core.I(0)}, core.Row{core.I(0), core.S("b")}); !errors.Is(err, engineapi.ErrConflict) {
		t.Fatalf("conflict through cache: %v", err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestClosedCache(t *testing.T) {
	db, _ := setup(t, WriteBehind, 0)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Begin(0); !errors.Is(err, ErrClosed) {
		t.Fatalf("begin after close: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatal("double close errored")
	}
}
