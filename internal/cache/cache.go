// Package cache implements HiEngine's horizontal deployment mode (Figure 3,
// right): HiEngine as a transparent ACID cache in front of a conventional
// storage engine. Applications talk to the cache through the same
// engineapi interface; hot rows are served and mutated at main-memory speed
// in the front engine, and committed changes propagate to the backing
// engine either synchronously (write-through) or from an asynchronous
// write-behind queue.
//
// Caching is per-row and demand-driven on primary-key access: a read that
// misses the front engine faults the row in from the backing engine before
// serving it. Preload caches a whole table, after which scans and secondary
// lookups are served too. The front engine's MVCC provides the
// transactional semantics (snapshot isolation, first-committer-wins); the
// backing engine observes committed post-images and must not be written
// out-of-band while the cache is live.
package cache

import (
	"errors"
	"fmt"
	"sync"

	"hiengine/internal/core"
	"hiengine/internal/engineapi"
	"hiengine/internal/obs"
)

// Mode selects how committed writes reach the backing engine.
type Mode int

const (
	// WriteThrough applies changes to the backing engine before Commit
	// returns. The front commit remains the transaction's atomicity
	// point; a backing-engine failure is surfaced but does not undo it.
	WriteThrough Mode = iota
	// WriteBehind queues committed changes and applies them from a
	// background goroutine; Flush forces the queue empty.
	WriteBehind
)

// Errors.
var (
	ErrClosed = errors.New("cache: closed")
	// ErrNotCached is returned for scans and secondary lookups on tables
	// that were not preloaded (per-row caching cannot answer them).
	ErrNotCached = errors.New("cache: table not preloaded; scans need Preload")
)

// Config configures the cache.
type Config struct {
	// Front is the caching engine (HiEngine).
	Front engineapi.DB
	// Back is the backing engine (e.g. the storage-centric baseline).
	Back engineapi.DB
	// Mode selects write-through (default) or write-behind.
	Mode Mode
	// QueueDepth bounds the write-behind queue (default 1024).
	QueueDepth int
	// LoaderWorker is the front-engine worker slot reserved for fault-in
	// loads (default 7). Application sessions must not use it.
	LoaderWorker int
	// Obs, when non-nil, receives cache metrics (fault-ins, negative
	// entries, write-behind throughput and queue depth).
	Obs *obs.Registry
}

// DB is the cache deployment.
type DB struct {
	cfg Config

	mu        sync.Mutex
	schemas   map[string]*core.Schema
	cached    map[string]bool // table\x00pk -> resident (or known-absent)
	preloaded map[string]bool
	closed    bool

	loaderMu sync.Mutex // serializes the fault-in loader worker

	queue chan backWrite
	wg    sync.WaitGroup

	wbMu  sync.Mutex
	wbErr error

	mFaultIns    *obs.Counter
	mNegatives   *obs.Counter
	mPreloadRows *obs.Counter
	mWBApplied   *obs.Counter
	mWBErrors    *obs.Counter
}

type backWrite struct {
	table string
	pk    []core.Value
	row   core.Row // nil = delete
	flush chan struct{}
}

// New builds a cache over the two engines.
func New(cfg Config) (*DB, error) {
	if cfg.Front == nil || cfg.Back == nil {
		return nil, errors.New("cache: Front and Back engines are required")
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1024
	}
	if cfg.LoaderWorker == 0 {
		cfg.LoaderWorker = 7
	}
	db := &DB{
		cfg:       cfg,
		schemas:   make(map[string]*core.Schema),
		cached:    make(map[string]bool),
		preloaded: make(map[string]bool),
	}
	if reg := cfg.Obs; reg != nil {
		db.mFaultIns = reg.Counter("cache.fault_ins")
		db.mNegatives = reg.Counter("cache.negative_entries")
		db.mPreloadRows = reg.Counter("cache.preload_rows")
		db.mWBApplied = reg.Counter("cache.write_behind_applied")
		db.mWBErrors = reg.Counter("cache.write_behind_errors")
		reg.GaugeFunc("cache.write_behind_queue_depth", func() int64 {
			if db.queue == nil {
				return 0
			}
			return int64(len(db.queue))
		})
	}
	if cfg.Mode == WriteBehind {
		db.queue = make(chan backWrite, cfg.QueueDepth)
		db.wg.Add(1)
		go db.writeBehindLoop()
	}
	return db, nil
}

// Name implements engineapi.DB.
func (db *DB) Name() string {
	return fmt.Sprintf("cache(%s->%s)", db.cfg.Front.Name(), db.cfg.Back.Name())
}

// CreateTable registers the table in both engines. Backing engines that do
// not support secondary indexes get a primary-only schema.
func (db *DB) CreateTable(s *core.Schema) error {
	if err := db.cfg.Front.CreateTable(s); err != nil {
		return err
	}
	backSchema := s
	if err := db.cfg.Back.CreateTable(backSchema); err != nil {
		// Retry with the primary key only (e.g. innosim).
		trimmed := *s
		trimmed.Indexes = s.Indexes[:1]
		if err2 := db.cfg.Back.CreateTable(&trimmed); err2 != nil {
			return fmt.Errorf("cache: back engine rejected %q: %v (and primary-only: %v)", s.Name, err, err2)
		}
	}
	db.mu.Lock()
	db.schemas[s.Name] = s
	db.mu.Unlock()
	return nil
}

func (db *DB) schema(table string) (*core.Schema, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	s, ok := db.schemas[table]
	if !ok {
		return nil, fmt.Errorf("cache: unknown table %q", table)
	}
	return s, nil
}

func cacheKey(table string, pk []core.Value) string {
	return table + "\x00" + string(core.EncodeKey(nil, pk...))
}

// pkOf extracts the primary key values of row.
func pkOf(s *core.Schema, row core.Row) []core.Value {
	cols := s.Indexes[0].Columns
	pk := make([]core.Value, len(cols))
	for i, c := range cols {
		pk[i] = row[c]
	}
	return pk
}

// ensureCached faults the row for (table, pk) into the front engine if it
// has never been resolved. Safe for concurrent callers.
func (db *DB) ensureCached(table string, pk []core.Value) error {
	key := cacheKey(table, pk)
	db.mu.Lock()
	if db.cached[key] || db.preloaded[table] || db.closed {
		closed := db.closed
		db.mu.Unlock()
		if closed {
			return ErrClosed
		}
		return nil
	}
	db.mu.Unlock()

	db.loaderMu.Lock()
	defer db.loaderMu.Unlock()
	// Re-check under the loader lock (another loader may have won).
	db.mu.Lock()
	if db.cached[key] {
		db.mu.Unlock()
		return nil
	}
	db.mu.Unlock()

	btx, err := db.cfg.Back.Begin(db.cfg.LoaderWorker)
	if err != nil {
		return err
	}
	row, err := btx.GetByKey(table, 0, pk...)
	if errors.Is(err, engineapi.ErrNotFound) {
		btx.Abort()
		db.markCached(key) // negative entry: the back has nothing either
		db.mNegatives.Inc()
		return nil
	}
	if err != nil {
		btx.Abort()
		return err
	}
	btx.Commit()

	if err := db.loadIntoFront(table, row); err != nil {
		return err
	}
	db.markCached(key)
	db.mFaultIns.Inc()
	return nil
}

// loadIntoFront installs one cold row in the front engine. Engines
// implementing engineapi.Importer install it as bulk-loaded data visible to
// every snapshot (the correct visibility: cold rows logically predate the
// cache); otherwise a normal loader transaction is used, which snapshots
// opened before the fault-in will not see.
func (db *DB) loadIntoFront(table string, row core.Row) error {
	if imp, ok := db.cfg.Front.(engineapi.Importer); ok {
		err := imp.Import(table, row)
		if errors.Is(err, engineapi.ErrDuplicate) {
			return nil // raced another loader; already resident
		}
		return err
	}
	ftx, err := db.cfg.Front.Begin(db.cfg.LoaderWorker)
	if err != nil {
		return err
	}
	if err := ftx.Insert(table, row); err != nil {
		ftx.Abort()
		if errors.Is(err, engineapi.ErrDuplicate) {
			return nil
		}
		return err
	}
	return ftx.Commit()
}

func (db *DB) markCached(key string) {
	db.mu.Lock()
	db.cached[key] = true
	db.mu.Unlock()
}

// Preload caches every row of a table, enabling scans and secondary-index
// access through the cache.
func (db *DB) Preload(table string) (int, error) {
	db.loaderMu.Lock()
	defer db.loaderMu.Unlock()
	btx, err := db.cfg.Back.Begin(db.cfg.LoaderWorker)
	if err != nil {
		return 0, err
	}
	var rows []core.Row
	if err := btx.ScanPrefix(table, 0, nil, func(row core.Row) bool {
		rows = append(rows, append(core.Row{}, row...))
		return true
	}); err != nil {
		btx.Abort()
		return 0, err
	}
	btx.Commit()
	s, err := db.schema(table)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, row := range rows {
		key := cacheKey(table, pkOf(s, row))
		db.mu.Lock()
		already := db.cached[key]
		db.mu.Unlock()
		if already {
			continue
		}
		if err := db.loadIntoFront(table, row); err != nil {
			return n, err
		}
		db.markCached(key)
		db.mPreloadRows.Inc()
		n++
	}
	db.mu.Lock()
	db.preloaded[table] = true
	db.mu.Unlock()
	return n, nil
}

// Begin implements engineapi.DB.
func (db *DB) Begin(worker int) (engineapi.Txn, error) {
	db.mu.Lock()
	closed := db.closed
	db.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	ftx, err := db.cfg.Front.Begin(worker)
	if err != nil {
		return nil, err
	}
	return &Txn{db: db, front: ftx}, nil
}

// Close drains the write-behind queue and stops the applier.
func (db *DB) Close() error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil
	}
	db.closed = true
	db.mu.Unlock()
	if db.queue != nil {
		close(db.queue)
		db.wg.Wait()
	}
	return db.takeWBErr()
}

// Flush blocks until all queued write-behind changes are applied.
func (db *DB) Flush() error {
	if db.queue == nil {
		return nil
	}
	done := make(chan struct{})
	db.queue <- backWrite{flush: done}
	<-done
	return db.takeWBErr()
}

func (db *DB) takeWBErr() error {
	db.wbMu.Lock()
	defer db.wbMu.Unlock()
	err := db.wbErr
	db.wbErr = nil
	return err
}

func (db *DB) writeBehindLoop() {
	defer db.wg.Done()
	for w := range db.queue {
		if w.flush != nil {
			close(w.flush)
			continue
		}
		if err := db.applyToBack(w); err != nil {
			db.mWBErrors.Inc()
			db.wbMu.Lock()
			if db.wbErr == nil {
				db.wbErr = err
			}
			db.wbMu.Unlock()
		} else {
			db.mWBApplied.Inc()
		}
	}
}

// applyToBack upserts/deletes one committed post-image in the back engine.
func (db *DB) applyToBack(w backWrite) error {
	btx, err := db.cfg.Back.Begin(db.cfg.LoaderWorker)
	if err != nil {
		return err
	}
	if w.row == nil {
		err = btx.DeleteByKey(w.table, w.pk...)
		if errors.Is(err, engineapi.ErrNotFound) {
			err = nil
		}
	} else {
		err = btx.UpdateByKey(w.table, 0, w.pk, w.row)
		if errors.Is(err, engineapi.ErrNotFound) {
			err = btx.Insert(w.table, w.row)
		}
	}
	if err != nil {
		btx.Abort()
		return fmt.Errorf("cache: write-back %s: %w", w.table, err)
	}
	return btx.Commit()
}

// Txn is one cache transaction: it runs in the front engine and records the
// committed post-images for back propagation.
type Txn struct {
	db      *DB
	front   engineapi.Txn
	pending []backWrite
}

// GetByKey implements engineapi.Txn. Primary-key lookups fault rows in on
// demand; secondary unique lookups require Preload.
func (t *Txn) GetByKey(table string, idx int, key ...core.Value) (core.Row, error) {
	if idx == 0 {
		if err := t.db.ensureCached(table, key); err != nil {
			return nil, err
		}
	} else if !t.db.isPreloaded(table) {
		return nil, ErrNotCached
	}
	return t.front.GetByKey(table, idx, key...)
}

func (db *DB) isPreloaded(table string) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.preloaded[table]
}

// ScanPrefix implements engineapi.Txn (preloaded tables only).
func (t *Txn) ScanPrefix(table string, idx int, prefix []core.Value, fn func(core.Row) bool) error {
	if !t.db.isPreloaded(table) {
		return ErrNotCached
	}
	return t.front.ScanPrefix(table, idx, prefix, fn)
}

// Insert implements engineapi.Txn.
func (t *Txn) Insert(table string, row core.Row) error {
	s, err := t.db.schema(table)
	if err != nil {
		return err
	}
	pk := pkOf(s, row)
	// Fault in any existing row first so uniqueness is checked against
	// the full dataset, not just the cached subset.
	if err := t.db.ensureCached(table, pk); err != nil {
		return err
	}
	if err := t.front.Insert(table, row); err != nil {
		return err
	}
	t.pending = append(t.pending, backWrite{table: table, pk: pk, row: append(core.Row{}, row...)})
	return nil
}

// UpdateByKey implements engineapi.Txn (primary key only).
func (t *Txn) UpdateByKey(table string, idx int, key []core.Value, newRow core.Row) error {
	if idx != 0 {
		return fmt.Errorf("cache: update via secondary index unsupported")
	}
	if err := t.db.ensureCached(table, key); err != nil {
		return err
	}
	if err := t.front.UpdateByKey(table, 0, key, newRow); err != nil {
		return err
	}
	s, err := t.db.schema(table)
	if err != nil {
		return err
	}
	t.pending = append(t.pending, backWrite{table: table, pk: pkOf(s, newRow), row: append(core.Row{}, newRow...)})
	return nil
}

// DeleteByKey implements engineapi.Txn.
func (t *Txn) DeleteByKey(table string, key ...core.Value) error {
	if err := t.db.ensureCached(table, key); err != nil {
		return err
	}
	if err := t.front.DeleteByKey(table, key...); err != nil {
		return err
	}
	t.pending = append(t.pending, backWrite{table: table, pk: append([]core.Value{}, key...), row: nil})
	return nil
}

// Commit commits the front transaction (the atomicity point) and propagates
// the post-images to the backing engine per the configured mode.
func (t *Txn) Commit() error {
	if err := t.front.Commit(); err != nil {
		return err
	}
	for _, w := range t.pending {
		if t.db.cfg.Mode == WriteBehind {
			t.db.queue <- w
		} else if err := t.db.applyToBack(w); err != nil {
			return fmt.Errorf("cache: committed in front but back propagation failed: %w", err)
		}
	}
	t.pending = nil
	return nil
}

// Abort implements engineapi.Txn.
func (t *Txn) Abort() error {
	t.pending = nil
	return t.front.Abort()
}
