package sysbench

import (
	"sync"
	"testing"

	"hiengine/internal/adapt"
	"hiengine/internal/baseline/innosim"
	"hiengine/internal/baseline/memocc"
	"hiengine/internal/core"
	"hiengine/internal/engineapi"
	"hiengine/internal/srss"
)

func engines(t *testing.T) map[string]engineapi.DB {
	t.Helper()
	e, err := core.Open(core.Config{Workers: 16, SegmentSize: 1 << 22})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	inno, err := innosim.New(innosim.Config{Service: srss.New(srss.Config{}), SegmentSize: 1 << 22})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(inno.Close)
	mysql, err := innosim.New(innosim.Config{Service: srss.New(srss.Config{}),
		Variant: innosim.VariantMySQL, SegmentSize: 1 << 22})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mysql.Close)
	mo, err := memocc.New(memocc.Config{Service: srss.New(srss.Config{}), Workers: 16, SegmentSize: 1 << 22})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mo.Close)
	return map[string]engineapi.DB{
		"hiengine": adapt.New(e),
		"dbms-t":   inno,
		"mysql":    mysql,
		"memocc":   mo,
	}
}

func TestLoadAndRunAllEnginesAllMixes(t *testing.T) {
	for name, db := range engines(t) {
		t.Run(name, func(t *testing.T) {
			const size = 500
			if err := Load(db, size, 4); err != nil {
				t.Fatalf("load: %v", err)
			}
			for _, mix := range []Mix{ReadOnly, WriteOnly, ReadWrite} {
				res, err := Run(Config{
					DB: db, TableSize: size, Threads: 4,
					QueriesPerTxn: 5, Mix: mix, TxnsPerThread: 50, Seed: 7,
				})
				if err != nil {
					t.Fatalf("%v run: %v", mix, err)
				}
				if res.Txns == 0 {
					t.Fatalf("%v: no transactions committed", mix)
				}
				if res.Queries < res.Txns {
					t.Fatalf("%v: queries %d < txns %d", mix, res.Queries, res.Txns)
				}
				if res.TPS() <= 0 || res.LatP50 <= 0 {
					t.Fatalf("%v: bogus metrics %+v", mix, res)
				}
			}
		})
	}
}

func TestWritesActuallyPersist(t *testing.T) {
	e, err := core.Open(core.Config{Workers: 8, SegmentSize: 1 << 22})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	db := adapt.New(e)
	if err := Load(db, 100, 2); err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{DB: db, TableSize: 100, Threads: 2, QueriesPerTxn: 3,
		Mix: WriteOnly, TxnsPerThread: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Txns == 0 {
		t.Fatal("no write transactions")
	}
	// Writes reached the log (redo-only durability).
	if e.Log().TotalBytes() == 0 {
		t.Fatal("write-only workload produced no log bytes")
	}
}

func TestOnOpHookFires(t *testing.T) {
	e, err := core.Open(core.Config{Workers: 8, SegmentSize: 1 << 22})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	db := adapt.New(e)
	if err := Load(db, 50, 2); err != nil {
		t.Fatal(err)
	}
	var ops int64
	var mu sync.Mutex
	res, err := Run(Config{DB: db, TableSize: 50, Threads: 2, QueriesPerTxn: 4,
		Mix: ReadOnly, TxnsPerThread: 25, Seed: 2,
		OnOp: func(int, int64) { mu.Lock(); ops++; mu.Unlock() }})
	if err != nil {
		t.Fatal(err)
	}
	if ops != res.Queries {
		t.Fatalf("hook fired %d times for %d queries", ops, res.Queries)
	}
}
