// Package sysbench implements the OLTP microbenchmarks of Section 6.1.3:
// sysbench-style point-read / point-write workloads modeled after YCSB,
// with short transactions of configurable query count over a single keyed
// table. These drive the Figure 5 comparisons between HiEngine and the
// storage-centric baselines under interpreted and compiled execution.
package sysbench

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hiengine/internal/core"
	"hiengine/internal/engineapi"
)

// TableName is the benchmark table.
const TableName = "sbtest"

// Schema returns the sysbench table: id (pk), k, c, pad.
func Schema() *core.Schema {
	return &core.Schema{
		Name: TableName,
		Columns: []core.Column{
			{Name: "id", Kind: core.KindInt},
			{Name: "k", Kind: core.KindInt},
			{Name: "c", Kind: core.KindString},
			{Name: "pad", Kind: core.KindString},
		},
		Indexes: []core.IndexDef{{Name: "pk", Columns: []int{0}, Unique: true}},
	}
}

// Mix selects the operation mix.
type Mix int

const (
	// ReadOnly issues point selects only.
	ReadOnly Mix = iota
	// WriteOnly issues point updates only.
	WriteOnly
	// ReadWrite issues a mixed transaction (default sysbench-ish ratio:
	// 70% reads, 30% writes).
	ReadWrite
)

// String names the mix.
func (m Mix) String() string {
	switch m {
	case ReadOnly:
		return "read-only"
	case WriteOnly:
		return "write-only"
	default:
		return "read-write"
	}
}

// Config configures a run.
type Config struct {
	DB        engineapi.DB
	TableSize int
	Threads   int
	// QueriesPerTxn is the number of point operations per transaction
	// (Figure 5(b)'s "simple transactions" use 1).
	QueriesPerTxn int
	Mix           Mix
	// TxnsPerThread bounds the run (used when Duration is zero).
	TxnsPerThread int
	// Duration bounds the run by wall-clock time when non-zero.
	Duration time.Duration
	// Seed makes runs reproducible.
	Seed int64
	// OnOp, when set, is invoked once per point operation (NUMA
	// accounting hooks).
	OnOp func(thread int, key int64)
}

// Result summarizes a run.
type Result struct {
	Mix     Mix
	Txns    int64
	Queries int64
	Aborts  int64
	Elapsed time.Duration
	LatP50  time.Duration
	LatP99  time.Duration
	LatMean time.Duration
}

// TPS returns transactions per second.
func (r Result) TPS() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Txns) / r.Elapsed.Seconds()
}

// QPS returns queries per second.
func (r Result) QPS() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Queries) / r.Elapsed.Seconds()
}

// String renders the result.
func (r Result) String() string {
	return fmt.Sprintf("%s: %.0f tps (%.0f qps), p50=%v p99=%v aborts=%d",
		r.Mix, r.TPS(), r.QPS(), r.LatP50, r.LatP99, r.Aborts)
}

// cValue builds the sysbench 120-char c column.
func cValue(rng *rand.Rand) string {
	const chars = "abcdefghijklmnopqrstuvwxyz0123456789"
	b := make([]byte, 120)
	for i := range b {
		b[i] = chars[rng.Intn(len(chars))]
	}
	return string(b)
}

// Load populates the table with rows 1..size using `threads` loaders.
func Load(db engineapi.DB, size, threads int) error {
	if err := db.CreateTable(Schema()); err != nil {
		return err
	}
	if threads <= 0 {
		threads = 4
	}
	var wg sync.WaitGroup
	errCh := make(chan error, threads)
	per := (size + threads - 1) / threads
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			lo, hi := w*per+1, (w+1)*per
			if hi > size {
				hi = size
			}
			const batch = 100
			for id := lo; id <= hi; {
				tx, err := db.Begin(w)
				if err != nil {
					errCh <- err
					return
				}
				for j := 0; j < batch && id <= hi; j++ {
					err := tx.Insert(TableName, core.Row{
						core.I(int64(id)),
						core.I(int64(rng.Intn(size) + 1)),
						core.S(cValue(rng)),
						core.S("sysbench-pad-sysbench-pad-sysbench-pad"),
					})
					if err != nil {
						tx.Abort()
						errCh <- err
						return
					}
					id++
				}
				if err := tx.Commit(); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return err
	default:
		return nil
	}
}

// Run executes the configured workload and returns aggregate results.
func Run(cfg Config) (Result, error) {
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	if cfg.QueriesPerTxn <= 0 {
		cfg.QueriesPerTxn = 10
	}
	if cfg.TxnsPerThread <= 0 && cfg.Duration <= 0 {
		cfg.TxnsPerThread = 1000
	}
	var txns, queries, aborts atomic.Int64
	var latMu sync.Mutex
	var lats []time.Duration

	deadline := time.Time{}
	if cfg.Duration > 0 {
		deadline = time.Now().Add(cfg.Duration)
	}

	var wg sync.WaitGroup
	errCh := make(chan error, cfg.Threads)
	start := time.Now()
	for w := 0; w < cfg.Threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)*7919 + 1))
			local := make([]time.Duration, 0, 4096)
			for i := 0; ; i++ {
				if cfg.Duration > 0 {
					if time.Now().After(deadline) {
						break
					}
				} else if i >= cfg.TxnsPerThread {
					break
				}
				t0 := time.Now()
				q, err := runTxn(cfg, w, rng)
				if err != nil {
					if errors.Is(err, engineapi.ErrConflict) {
						aborts.Add(1)
						continue
					}
					errCh <- err
					return
				}
				txns.Add(1)
				queries.Add(int64(q))
				if len(local) < cap(local) {
					local = append(local, time.Since(t0))
				}
			}
			latMu.Lock()
			lats = append(lats, local...)
			latMu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		return Result{}, err
	default:
	}
	res := Result{
		Mix:     cfg.Mix,
		Txns:    txns.Load(),
		Queries: queries.Load(),
		Aborts:  aborts.Load(),
		Elapsed: elapsed,
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		res.LatP50 = lats[len(lats)/2]
		res.LatP99 = lats[len(lats)*99/100]
		var sum time.Duration
		for _, l := range lats {
			sum += l
		}
		res.LatMean = sum / time.Duration(len(lats))
	}
	return res, nil
}

// runTxn executes one transaction and returns the query count.
func runTxn(cfg Config, w int, rng *rand.Rand) (int, error) {
	tx, err := cfg.DB.Begin(w)
	if err != nil {
		return 0, err
	}
	q := 0
	for j := 0; j < cfg.QueriesPerTxn; j++ {
		key := int64(rng.Intn(cfg.TableSize) + 1)
		if cfg.OnOp != nil {
			cfg.OnOp(w, key)
		}
		write := false
		switch cfg.Mix {
		case WriteOnly:
			write = true
		case ReadWrite:
			write = rng.Intn(10) < 3
		}
		if write {
			row, err := tx.GetByKey(TableName, 0, core.I(key))
			if err != nil {
				if errors.Is(err, engineapi.ErrNotFound) {
					continue
				}
				tx.Abort()
				return 0, err
			}
			err = tx.UpdateByKey(TableName, 0, []core.Value{core.I(key)},
				core.Row{core.I(key), row[1], core.S(cValue(rng)), row[3]})
			if err != nil {
				return 0, err // conflict paths already aborted
			}
		} else {
			if _, err := tx.GetByKey(TableName, 0, core.I(key)); err != nil &&
				!errors.Is(err, engineapi.ErrNotFound) {
				tx.Abort()
				return 0, err
			}
		}
		q++
	}
	if err := tx.Commit(); err != nil {
		return 0, err
	}
	return q, nil
}
