package tpcc

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"

	"hiengine/internal/core"
	"hiengine/internal/engineapi"
)

// errUserRollback is the intentional 1% NewOrder rollback (spec 2.4.1.4).
var errUserRollback = errors.New("tpcc: user-initiated rollback")

// session holds per-thread execution state.
type session struct {
	d      *Driver
	thread int
	rng    *rand.Rand
	homeW  int

	// inflight bounds pipelined commits awaiting durability (nil = sync).
	inflight chan struct{}
	asyncErr atomic.Pointer[error]
}

// access reports one record access in warehouse w to the NUMA hook.
func (s *session) access(w int) {
	if s.d.cfg.OnAccess != nil {
		s.d.cfg.OnAccess(s.thread, w)
	}
}

// pickCustomer resolves a customer by id (60%) or last name (40%),
// returning (c_id, row).
func (s *session) pickCustomer(tx engineapi.Txn, w, d int) (int64, core.Row, error) {
	s.access(w)
	if s.rng.Intn(100) < 60 {
		cid := int64(randomCustomerID(s.rng, s.d.cfg.Scale))
		row, err := tx.GetByKey(TCustomer, 0, core.I(int64(w)), core.I(int64(d)), core.I(cid))
		if err != nil {
			return 0, nil, err
		}
		return cid, row, nil
	}
	last := LastName(randomLastNameNum(s.rng, s.d.cfg.Scale))
	var matches []core.Row
	err := tx.ScanPrefix(TCustomer, 1, []core.Value{core.I(int64(w)), core.I(int64(d)), core.S(last)},
		func(row core.Row) bool {
			matches = append(matches, row)
			return true
		})
	if err != nil {
		return 0, nil, err
	}
	if len(matches) == 0 {
		// Fall back to an id lookup (reduced-scale name spaces can miss).
		cid := int64(randomCustomerID(s.rng, s.d.cfg.Scale))
		row, err := tx.GetByKey(TCustomer, 0, core.I(int64(w)), core.I(int64(d)), core.I(cid))
		if err != nil {
			return 0, nil, err
		}
		return cid, row, nil
	}
	row := matches[len(matches)/2] // spec: ceiling(n/2)-th by first name
	return row[2].Int(), row, nil
}

// newOrder is TPC-C 2.4.
func (s *session) newOrder(w int) error {
	tx, err := s.d.cfg.DB.Begin(s.thread)
	if err != nil {
		return err
	}
	d := s.rng.Intn(s.d.cfg.Scale.Districts) + 1
	cid := int64(randomCustomerID(s.rng, s.d.cfg.Scale))
	olCnt := s.rng.Intn(11) + 5
	rollback := s.rng.Intn(100) == 0

	s.access(w)
	wRow, err := tx.GetByKey(TWarehouse, 0, core.I(int64(w)))
	if err != nil {
		tx.Abort()
		return err
	}
	wTax := wRow[6].Float()

	s.access(w)
	dRow, err := tx.GetByKey(TDistrict, 0, core.I(int64(w)), core.I(int64(d)))
	if err != nil {
		tx.Abort()
		return err
	}
	dTax := dRow[4].Float()
	oID := dRow[6].Int()
	newD := append(core.Row{}, dRow...)
	newD[6] = core.I(oID + 1)
	if err := tx.UpdateByKey(TDistrict, 0, []core.Value{core.I(int64(w)), core.I(int64(d))}, newD); err != nil {
		return err
	}

	s.access(w)
	cRow, err := tx.GetByKey(TCustomer, 0, core.I(int64(w)), core.I(int64(d)), core.I(cid))
	if err != nil {
		tx.Abort()
		return err
	}
	discount := cRow[7].Float()

	allLocal := int64(1)
	type line struct {
		iID     int64
		supplyW int64
		qty     int64
	}
	lines := make([]line, olCnt)
	for i := range lines {
		iID := int64(randomItemID(s.rng, s.d.cfg.Scale))
		if rollback && i == olCnt-1 {
			iID = int64(s.d.cfg.Scale.Items) + 999999 // unused item: forces rollback
		}
		supplyW := int64(w)
		if s.d.cfg.Warehouses > 1 && s.rng.Intn(100) == 0 {
			for {
				sw := s.rng.Intn(s.d.cfg.Warehouses) + 1
				if sw != w {
					supplyW = int64(sw)
					break
				}
			}
			allLocal = 0
		}
		lines[i] = line{iID: iID, supplyW: supplyW, qty: int64(s.rng.Intn(10) + 1)}
	}

	if err := tx.Insert(TOrder, core.Row{
		core.I(int64(w)), core.I(int64(d)), core.I(oID), core.I(cid),
		core.I(s.d.entrySeq.Add(1)), core.I(0), core.I(int64(olCnt)), core.I(allLocal),
	}); err != nil {
		return err
	}
	if err := tx.Insert(TNewOrder, core.Row{core.I(int64(w)), core.I(int64(d)), core.I(oID)}); err != nil {
		return err
	}

	total := 0.0
	for i, ln := range lines {
		s.access(w)
		iRow, err := tx.GetByKey(TItem, 0, core.I(ln.iID))
		if err != nil {
			if errors.Is(err, engineapi.ErrNotFound) {
				tx.Abort()
				return errUserRollback
			}
			tx.Abort()
			return err
		}
		price := iRow[3].Float()

		s.access(int(ln.supplyW))
		sRow, err := tx.GetByKey(TStock, 0, core.I(ln.supplyW), core.I(ln.iID))
		if err != nil {
			tx.Abort()
			return err
		}
		qty := sRow[2].Int()
		if qty >= ln.qty+10 {
			qty -= ln.qty
		} else {
			qty = qty - ln.qty + 91
		}
		newS := append(core.Row{}, sRow...)
		newS[2] = core.I(qty)
		newS[4] = core.I(sRow[4].Int() + ln.qty)
		newS[5] = core.I(sRow[5].Int() + 1)
		if ln.supplyW != int64(w) {
			newS[6] = core.I(sRow[6].Int() + 1)
		}
		if err := tx.UpdateByKey(TStock, 0, []core.Value{core.I(ln.supplyW), core.I(ln.iID)}, newS); err != nil {
			return err
		}
		amount := float64(ln.qty) * price
		total += amount
		if err := tx.Insert(TOrderLine, core.Row{
			core.I(int64(w)), core.I(int64(d)), core.I(oID), core.I(int64(i + 1)),
			core.I(ln.iID), core.I(ln.supplyW), core.I(0), core.I(ln.qty),
			core.F(amount), core.S(sRow[3].Str()),
		}); err != nil {
			return err
		}
	}
	_ = total * (1 - discount) * (1 + wTax + dTax) // computed per spec; not stored
	return s.finish(tx)
}

// payment is TPC-C 2.5.
func (s *session) payment(w int) error {
	tx, err := s.d.cfg.DB.Begin(s.thread)
	if err != nil {
		return err
	}
	d := s.rng.Intn(s.d.cfg.Scale.Districts) + 1
	amount := float64(s.rng.Intn(500000)+100) / 100

	// 85% local customer, 15% from a remote warehouse.
	cw, cd := w, d
	if s.d.cfg.Warehouses > 1 && s.rng.Intn(100) >= 85 {
		for {
			rw := s.rng.Intn(s.d.cfg.Warehouses) + 1
			if rw != w {
				cw = rw
				break
			}
		}
		cd = s.rng.Intn(s.d.cfg.Scale.Districts) + 1
	}

	s.access(w)
	wRow, err := tx.GetByKey(TWarehouse, 0, core.I(int64(w)))
	if err != nil {
		tx.Abort()
		return err
	}
	newW := append(core.Row{}, wRow...)
	newW[7] = core.F(wRow[7].Float() + amount)
	if err := tx.UpdateByKey(TWarehouse, 0, []core.Value{core.I(int64(w))}, newW); err != nil {
		return err
	}

	s.access(w)
	dRow, err := tx.GetByKey(TDistrict, 0, core.I(int64(w)), core.I(int64(d)))
	if err != nil {
		tx.Abort()
		return err
	}
	newD := append(core.Row{}, dRow...)
	newD[5] = core.F(dRow[5].Float() + amount)
	if err := tx.UpdateByKey(TDistrict, 0, []core.Value{core.I(int64(w)), core.I(int64(d))}, newD); err != nil {
		return err
	}

	s.access(cw)
	cid, cRow, err := s.pickCustomer(tx, cw, cd)
	if err != nil {
		tx.Abort()
		return err
	}
	newC := append(core.Row{}, cRow...)
	newC[8] = core.F(cRow[8].Float() - amount)
	newC[9] = core.F(cRow[9].Float() + amount)
	newC[10] = core.I(cRow[10].Int() + 1)
	if cRow[6].Str() == "BC" {
		data := fmt.Sprintf("%d,%d,%d,%d,%.2f|%s", cid, cd, cw, d, amount, cRow[12].Str())
		if len(data) > 200 {
			data = data[:200]
		}
		newC[12] = core.S(data)
	}
	if err := tx.UpdateByKey(TCustomer, 0,
		[]core.Value{core.I(int64(cw)), core.I(int64(cd)), core.I(cid)}, newC); err != nil {
		return err
	}

	if err := tx.Insert(THistory, core.Row{
		core.I(s.d.historySeq.Add(1)), core.I(int64(cw)), core.I(int64(cd)), core.I(cid),
		core.F(amount), core.S(wRow[1].Str() + "    " + dRow[2].Str()),
	}); err != nil {
		return err
	}
	return s.finish(tx)
}

// orderStatus is TPC-C 2.6 (read-only).
func (s *session) orderStatus(w int) error {
	tx, err := s.d.cfg.DB.Begin(s.thread)
	if err != nil {
		return err
	}
	d := s.rng.Intn(s.d.cfg.Scale.Districts) + 1
	s.access(w)
	cid, _, err := s.pickCustomer(tx, w, d)
	if err != nil {
		tx.Abort()
		return err
	}
	// Most recent order for the customer through the by_cust index.
	var lastOrder core.Row
	err = tx.ScanPrefix(TOrder, 1, []core.Value{core.I(int64(w)), core.I(int64(d)), core.I(cid)},
		func(row core.Row) bool {
			lastOrder = row
			return true // keep going: entries are o_id-ascending
		})
	if err != nil {
		tx.Abort()
		return err
	}
	if lastOrder != nil {
		oID := lastOrder[2].Int()
		s.access(w)
		err = tx.ScanPrefix(TOrderLine, 0,
			[]core.Value{core.I(int64(w)), core.I(int64(d)), core.I(oID)},
			func(core.Row) bool { return true })
		if err != nil {
			tx.Abort()
			return err
		}
	}
	return s.finish(tx)
}

// delivery is TPC-C 2.7: one batch delivering the oldest undelivered order
// of every district.
func (s *session) delivery(w int) error {
	carrier := int64(s.rng.Intn(10) + 1)
	tx, err := s.d.cfg.DB.Begin(s.thread)
	if err != nil {
		return err
	}
	for d := 1; d <= s.d.cfg.Scale.Districts; d++ {
		s.access(w)
		// Oldest undelivered order: first new_order entry in pk order.
		var oID int64 = -1
		err := tx.ScanPrefix(TNewOrder, 0, []core.Value{core.I(int64(w)), core.I(int64(d))},
			func(row core.Row) bool {
				oID = row[2].Int()
				return false
			})
		if err != nil {
			tx.Abort()
			return err
		}
		if oID < 0 {
			continue // district fully delivered
		}
		if err := tx.DeleteByKey(TNewOrder, core.I(int64(w)), core.I(int64(d)), core.I(oID)); err != nil {
			if errors.Is(err, engineapi.ErrNotFound) {
				continue // another delivery raced us
			}
			return err
		}
		oRow, err := tx.GetByKey(TOrder, 0, core.I(int64(w)), core.I(int64(d)), core.I(oID))
		if err != nil {
			tx.Abort()
			return err
		}
		cid := oRow[3].Int()
		newO := append(core.Row{}, oRow...)
		newO[5] = core.I(carrier)
		if err := tx.UpdateByKey(TOrder, 0,
			[]core.Value{core.I(int64(w)), core.I(int64(d)), core.I(oID)}, newO); err != nil {
			return err
		}
		// Stamp order lines and sum amounts.
		var total float64
		var lineKeys []int64
		err = tx.ScanPrefix(TOrderLine, 0,
			[]core.Value{core.I(int64(w)), core.I(int64(d)), core.I(oID)},
			func(row core.Row) bool {
				total += row[8].Float()
				lineKeys = append(lineKeys, row[3].Int())
				return true
			})
		if err != nil {
			tx.Abort()
			return err
		}
		for _, ol := range lineKeys {
			olRow, err := tx.GetByKey(TOrderLine, 0,
				core.I(int64(w)), core.I(int64(d)), core.I(oID), core.I(ol))
			if err != nil {
				tx.Abort()
				return err
			}
			newOL := append(core.Row{}, olRow...)
			newOL[6] = core.I(s.d.entrySeq.Add(1))
			if err := tx.UpdateByKey(TOrderLine, 0,
				[]core.Value{core.I(int64(w)), core.I(int64(d)), core.I(oID), core.I(ol)}, newOL); err != nil {
				return err
			}
		}
		cRow, err := tx.GetByKey(TCustomer, 0, core.I(int64(w)), core.I(int64(d)), core.I(cid))
		if err != nil {
			tx.Abort()
			return err
		}
		newC := append(core.Row{}, cRow...)
		newC[8] = core.F(cRow[8].Float() + total)
		newC[11] = core.I(cRow[11].Int() + 1)
		if err := tx.UpdateByKey(TCustomer, 0,
			[]core.Value{core.I(int64(w)), core.I(int64(d)), core.I(cid)}, newC); err != nil {
			return err
		}
	}
	return s.finish(tx)
}

// stockLevel is TPC-C 2.8 (read-only).
func (s *session) stockLevel(w int) error {
	tx, err := s.d.cfg.DB.Begin(s.thread)
	if err != nil {
		return err
	}
	d := s.rng.Intn(s.d.cfg.Scale.Districts) + 1
	threshold := int64(s.rng.Intn(11) + 10)

	s.access(w)
	dRow, err := tx.GetByKey(TDistrict, 0, core.I(int64(w)), core.I(int64(d)))
	if err != nil {
		tx.Abort()
		return err
	}
	nextO := dRow[6].Int()
	lo := nextO - 20
	if lo < 1 {
		lo = 1
	}
	items := make(map[int64]bool)
	for o := lo; o < nextO; o++ {
		err := tx.ScanPrefix(TOrderLine, 0,
			[]core.Value{core.I(int64(w)), core.I(int64(d)), core.I(o)},
			func(row core.Row) bool {
				items[row[4].Int()] = true
				return true
			})
		if err != nil {
			tx.Abort()
			return err
		}
	}
	low := 0
	for iID := range items {
		s.access(w)
		sRow, err := tx.GetByKey(TStock, 0, core.I(int64(w)), core.I(iID))
		if err != nil {
			if errors.Is(err, engineapi.ErrNotFound) {
				continue
			}
			tx.Abort()
			return err
		}
		if sRow[2].Int() < threshold {
			low++
		}
	}
	_ = low
	return s.finish(tx)
}

// finish commits tx, pipelining the durability wait when the engine
// supports asynchronous commit and the driver enables it. With pipelining,
// the transaction's effects are already visible when finish returns; the
// durability acknowledgement is tracked by the session's in-flight window
// (the paper's commit pipelining: the worker is free once the log buffer is
// handed to the I/O thread).
func (s *session) finish(tx engineapi.Txn) error {
	if s.inflight != nil {
		if ac, ok := tx.(engineapi.AsyncCommitter); ok {
			s.inflight <- struct{}{}
			err := ac.CommitAsync(func(err error) {
				if err != nil {
					s.asyncErr.CompareAndSwap(nil, &err)
				}
				<-s.inflight
			})
			if err != nil {
				<-s.inflight
				return err
			}
			return nil
		}
	}
	return tx.Commit()
}

// drain waits out the in-flight commit window and reports any asynchronous
// durability error.
func (s *session) drain() error {
	if s.inflight == nil {
		return nil
	}
	for i := 0; i < cap(s.inflight); i++ {
		s.inflight <- struct{}{}
	}
	for i := 0; i < cap(s.inflight); i++ {
		<-s.inflight
	}
	if p := s.asyncErr.Load(); p != nil {
		return *p
	}
	return nil
}
